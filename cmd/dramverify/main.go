// Command dramverify regenerates the datasheet verification of
// Section IV.A of the paper: Figure 8 (1 Gb DDR2) and Figure 9 (1 Gb
// DDR3). For every comparison point it prints the five-vendor datasheet
// values, their spread and the model's prediction on the two technology
// nodes typical for the part's market window.
//
// Usage:
//
//	dramverify            # both figures
//	dramverify -ddr2      # Figure 8 only
//	dramverify -ddr3      # Figure 9 only
//	dramverify -vendors   # include the per-vendor columns
package main

import (
	"flag"
	"fmt"
	"sort"

	"drampower/internal/cli"
	"drampower/internal/datasheet"
	"drampower/internal/engine"
)

// batch carries the -workers flag to the comparison model builds.
var batch engine.Options

func main() {
	ddr2 := flag.Bool("ddr2", false, "show only the DDR2 comparison (Figure 8)")
	ddr3 := flag.Bool("ddr3", false, "show only the DDR3 comparison (Figure 9)")
	vendors := flag.Bool("vendors", false, "print per-vendor datasheet columns")
	cli.WorkersVar(&batch.Workers, "the model builds")
	flag.Parse()

	both := !*ddr2 && !*ddr3
	if *ddr2 || both {
		run(datasheet.DDR2, "Figure 8: model vs datasheet, 1Gb DDR2 (model at 75nm and 65nm)", *vendors)
	}
	if *ddr3 || both {
		run(datasheet.DDR3, "Figure 9: model vs datasheet, 1Gb DDR3 (model at 65nm and 55nm)", *vendors)
	}
}

func run(std datasheet.Standard, title string, vendors bool) {
	rows, err := datasheet.CompareOpts(std, batch)
	if err != nil {
		cli.Fatal("dramverify", err)
	}
	fmt.Println(title)
	if vendors {
		fmt.Printf("  %-16s", "point")
		for _, v := range datasheet.Vendors {
			fmt.Printf(" %9s", v)
		}
		fmt.Printf(" | %17s | %s\n", "model [mA]", "verdict")
	} else {
		fmt.Printf("  %-16s %9s %9s %9s | %17s | %s\n",
			"point", "sheet min", "mean", "max", "model [mA]", "verdict")
	}
	within := 0
	for _, c := range rows {
		p := c.Point
		if vendors {
			fmt.Printf("  %-16s", p.Label())
			for _, v := range datasheet.Vendors {
				fmt.Printf(" %9.0f", p.VendorMA[v])
			}
		} else {
			fmt.Printf("  %-16s %9.0f %9.0f %9.0f", p.Label(), p.Min(), p.Mean(), p.Max())
		}
		var nodes []string
		for n := range c.ModelMA {
			nodes = append(nodes, n)
		}
		sort.Strings(nodes)
		fmt.Print(" |")
		for _, n := range nodes {
			fmt.Printf(" %s:%6.1f", n, c.ModelMA[n])
		}
		verdict := "within spread"
		if c.WithinSpread(0.25) {
			within++
		} else {
			verdict = "OUTSIDE spread"
		}
		fmt.Printf(" | %s\n", verdict)
	}
	spread := datasheet.SpreadStats(rowsPoints(rows))
	fmt.Printf("  -> %d/%d points within the vendor spread (mean max/min ratio %.2f)\n\n",
		within, len(rows), spread)
}

func rowsPoints(rows []datasheet.Comparison) []datasheet.Point {
	pts := make([]datasheet.Point, len(rows))
	for i, r := range rows {
		pts[i] = r.Point
	}
	return pts
}
