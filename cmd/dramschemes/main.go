// Command dramschemes regenerates the comparison of proposed DRAM power
// reduction schemes of Section V of the paper: selective bitline
// activation and single sub-array access (Udipi et al.), segmented data
// lines (Jeong et al.), the paper's own reduced-page 8:1 column
// architecture, and a per-device view of mini-rank style width reduction
// (Zheng et al.). For each scheme it reports the energy per bit in the
// interleaved pattern and the die-area impact.
//
// Usage:
//
//	dramschemes                # evaluate on the built-in 1 Gb DDR3 sample
//	dramschemes -node 36       # evaluate on a roadmap device
//	dramschemes -f device.dram # evaluate on a description file
package main

import (
	"flag"
	"fmt"

	"drampower/internal/cli"
	"drampower/internal/engine"
	"drampower/internal/schemes"
)

func main() {
	src := cli.NewSource("dramschemes", "f", true)
	notes := flag.Bool("notes", false, "print the feasibility notes")
	var batch engine.Options
	cli.WorkersVar(&batch.Workers, "the scheme evaluations")
	flag.Parse()

	d := src.Description()
	res, err := schemes.EvaluateOpts(d, batch)
	if err != nil {
		cli.Fatal("dramschemes", err)
	}
	fmt.Printf("Section V: power reduction schemes on %s\n", d.Name)
	fmt.Printf("  %-36s %12s %8s %11s %8s %8s\n",
		"scheme", "e/bit [pJ]", "Δenergy", "area [mm²]", "Δarea", "IDD7")
	for _, r := range res {
		fmt.Printf("  %-36s %12.2f %+7.1f%% %11.1f %+7.1f%% %6.0fmA\n",
			r.Name, r.EnergyPerBit.Picojoules(), r.EnergyDeltaPct,
			r.DieAreaMM2, r.AreaDeltaPct, r.IDD7.Milliamps())
	}
	fmt.Println()
	for _, r := range res[1:] {
		fmt.Printf("  %-36s %s\n", r.Name, schemes.ParetoNote(r))
		if *notes && r.Notes != "" {
			fmt.Printf("  %36s   %s (%s)\n", "", r.Notes, r.Source)
		}
	}
}
