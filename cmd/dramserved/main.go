// Command dramserved runs the DRAM power model as a long-lived HTTP
// service: descriptors and traces go in, JSON power/energy accounting
// comes out, with a model cache so repeated evaluations of the same
// device skip the build, a bounded admission queue so overload degrades
// into 429s instead of memory growth, and Prometheus metrics built in.
//
// Usage:
//
//	dramserved                         # serve on 127.0.0.1:8457
//	dramserved -addr :0                # any free port (printed on stdout)
//	dramserved -max-inflight 8 -queue-wait 100ms -timeout 30s
//
// Endpoints: POST /v1/evaluate, /v1/sweep, /v1/schemes, /v1/trace;
// GET /v1/roadmap, /metrics, /healthz, /readyz. See the README "Serving"
// section for a worked curl session.
//
// On SIGINT/SIGTERM the server stops accepting work, /readyz flips to
// 503, in-flight requests drain (up to -drain), and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"drampower/internal/cli"
	"drampower/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8457", "listen address (host:port; port 0 picks a free port)")
	cacheSize := flag.Int("cache", 128, "model cache capacity (entries)")
	maxInflight := flag.Int("max-inflight", 64, "maximum concurrently executing /v1/* requests")
	queueWait := flag.Duration("queue-wait", 2*time.Second, "how long an over-limit request waits for a slot before 429")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request timeout")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain limit")
	maxBody := flag.Int64("max-body", 1<<20, "descriptor request body limit (bytes)")
	maxTrace := flag.Int64("max-trace", 256<<20, "trace upload limit (bytes)")
	var workers int
	cli.WorkersVar(&workers, "the shared evaluation pool")
	quiet := flag.Bool("quiet", false, "disable the JSON access log on stderr")
	calib := cli.OverlayVar()
	flag.Parse()

	opts := server.Options{
		CacheSize:          *cacheSize,
		MaxInflight:        *maxInflight,
		QueueWait:          *queueWait,
		RequestTimeout:     *timeout,
		MaxDescriptorBytes: *maxBody,
		MaxTraceBytes:      *maxTrace,
		Workers:            workers,
		// A -calib overlay becomes the server-wide default calibration,
		// applied to any model a request does not calibrate itself.
		Calibration: cli.LoadOverlay("dramserved", *calib),
	}
	if !*quiet {
		opts.AccessLog = os.Stderr
	}
	s := server.New(opts)
	defer s.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		cli.Fatal("dramserved", err)
	}
	// The resolved address on stdout is the service's one line of
	// plain-text output; tooling (make serve-smoke) parses it to find a
	// randomly assigned port.
	fmt.Printf("dramserved listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := s.Serve(ctx, ln, *drain); err != nil {
		cli.Fatal("dramserved", err)
	}
}
