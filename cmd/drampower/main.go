// Command drampower evaluates a DRAM description: it parses a .dram input
// file (or uses the built-in 1 Gb DDR3 sample), runs the power engine and
// prints the per-operation energies, the datasheet-style IDD currents, the
// pattern power and the component breakdown — the outputs of the program
// flow in Figure 4 of the paper.
//
// Usage:
//
//	drampower [-f device.dram] [-pattern "act nop rd nop pre nop"] [-v]
//	drampower -f device.dram -calib measured.calib   # with a calibration overlay
//	drampower -params      # list all Table I technology parameters
//	drampower -emit        # print the sample description in the input language
package main

import (
	"flag"
	"fmt"
	"sort"
	"strings"

	"drampower/internal/circuits"
	"drampower/internal/cli"
	"drampower/internal/core"
	"drampower/internal/desc"
)

func main() {
	src := cli.NewSource("drampower", "f", false)
	pattern := flag.String("pattern", "", "override the command pattern, e.g. \"act nop rd nop pre nop\"")
	verbose := flag.Bool("v", false, "print the full charge-item breakdown per operation")
	emit := flag.Bool("emit", false, "print the description in the input language and exit")
	params := flag.Bool("params", false, "list the technology parameter names (Table I) and exit")
	calib := cli.OverlayVar()
	flag.Parse()

	if *params {
		for _, n := range desc.TechnologyParameterNames() {
			fmt.Println(n)
		}
		return
	}

	d := src.Description()
	if *emit {
		fmt.Print(desc.Format(d))
		return
	}
	if *pattern != "" {
		loop, err := parsePattern(*pattern)
		if err != nil {
			cli.Fatal("drampower", err)
		}
		d.Pattern = desc.Pattern{Loop: loop}
	}

	m, err := core.BuildCalibrated(d, cli.LoadOverlay("drampower", *calib))
	if err != nil {
		cli.Fatal("drampower", err)
	}
	report(m, *verbose)
}

func parsePattern(s string) ([]desc.Op, error) {
	var loop []desc.Op
	for _, tok := range strings.Fields(s) {
		op, err := desc.ParseOp(tok)
		if err != nil {
			return nil, err
		}
		loop = append(loop, op)
	}
	if len(loop) == 0 {
		return nil, fmt.Errorf("empty pattern")
	}
	return loop, nil
}

func report(m *core.Model, verbose bool) {
	d := m.D
	fmt.Printf("Device: %s\n", d.Name)
	fmt.Printf("  die %.1f x %.1f mm = %.1f mm², %d banks, page %d bits, %d sub-arrays/bank\n",
		m.Grid.Width.Micrometers()/1000, m.Grid.Height.Micrometers()/1000,
		float64(m.DieArea())/1e-6, d.Spec.Banks(), m.Array.PageBits,
		m.Array.SubarraysAlongBL*m.Array.SubarraysAlongWL)
	fmt.Printf("  interface x%d @ %s, Vdd %s / Vint %s / Vbl %s / Vpp %s\n",
		d.Spec.IOWidth, d.Spec.DataRate, d.Electrical.Vdd, d.Electrical.Vint,
		d.Electrical.Vbl, d.Electrical.Vpp)
	if m.Calibrated() {
		name := m.CalibrationName()
		if name == "" {
			name = "unnamed"
		}
		fmt.Printf("  calibration %q applied; energies and currents below are the resolved values\n", name)
	}
	fmt.Println()

	// The headline numbers come from the resolved parameter set (derived
	// circuit values with any calibration overlay applied); the verbose
	// charge-item breakdown stays purely derived.
	fmt.Println("Per-operation energy (referred to Vdd):")
	for _, op := range []desc.Op{desc.OpActivate, desc.OpPrecharge, desc.OpRead,
		desc.OpWrite, desc.OpRefresh} {
		fmt.Printf("  %-4s %10s", op, m.OpEnergy(op))
		if op == desc.OpRead || op == desc.OpWrite {
			perBit := float64(m.OpEnergy(op)) / float64(m.BitsPerBurst())
			fmt.Printf("  (%5.2f pJ/bit over %d bits)", perBit/1e-12, m.BitsPerBurst())
		}
		fmt.Println()
		if verbose {
			oc := m.Charges(op)
			for _, it := range oc.Items {
				v, _ := d.Electrical.DomainVoltageAndEff(it.Domain)
				fmt.Printf("        %-32s %-9s %-5s x%-8.1f %10s\n",
					it.Name, it.Group, it.Domain, it.Events, it.Energy(v))
			}
		}
	}

	bg := m.Background()
	fmt.Printf("\nBackground power: %s\n", m.BackgroundPower())
	if verbose {
		for _, it := range bg.Items {
			fmt.Printf("        %-32s %-9s %10s\n", it.Name, it.Group, it.Power)
		}
	}

	idd := m.IDD()
	fmt.Println("\nDatasheet currents:")
	fmt.Printf("  IDD0  %8.1f mA   (activate-precharge cycling)\n", idd.IDD0.Milliamps())
	fmt.Printf("  IDD2N %8.1f mA   (precharge standby)\n", idd.IDD2N.Milliamps())
	fmt.Printf("  IDD2P %8.1f mA   (precharge power-down)\n", m.IDD2P().Milliamps())
	fmt.Printf("  IDD3N %8.1f mA   (active standby)\n", idd.IDD3N.Milliamps())
	fmt.Printf("  IDD4R %8.1f mA   (gapless reads)\n", idd.IDD4R.Milliamps())
	fmt.Printf("  IDD4W %8.1f mA   (gapless writes)\n", idd.IDD4W.Milliamps())
	fmt.Printf("  IDD5  %8.1f mA   (auto refresh)\n", idd.IDD5.Milliamps())
	fmt.Printf("  IDD7  %8.1f mA   (interleaved act/rd/pre)\n", idd.IDD7.Milliamps())

	res := m.Evaluate()
	fmt.Printf("\nPattern \"%s\":\n", d.Pattern.String())
	fmt.Printf("  power %s  current %s", res.Power, res.Current)
	if res.EnergyPerBit > 0 {
		fmt.Printf("  energy/bit %.2f pJ", res.EnergyPerBit.Picojoules())
	}
	fmt.Println()

	fmt.Println("  by group:")
	type kv struct {
		g circuits.Group
		p float64
	}
	var rows []kv
	for g, p := range res.ByGroup {
		rows = append(rows, kv{g, float64(p)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].p > rows[j].p })
	for _, r := range rows {
		fmt.Printf("    %-9s %10.2f mW  (%4.1f%%)\n", r.g, r.p/1e-3,
			100*r.p/float64(res.Power))
	}
	fmt.Println("  by domain:")
	for _, dom := range desc.AllDomains {
		if p, ok := res.ByDomain[dom]; ok {
			fmt.Printf("    %-9s %10.2f mW  (%4.1f%%)\n", dom, float64(p)/1e-3,
				100*float64(p)/float64(res.Power))
		}
	}
}
