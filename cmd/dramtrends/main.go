// Command dramtrends regenerates the technology-scaling figures of the
// paper: the parameter shrink curves of Figures 5–7, the disruptive
// changes of Table II, the voltage trends of Figure 11, the data-rate and
// row-timing trends of Figure 12 and the energy-per-bit / die-area trends
// of Figure 13 (including the headline 1.5x-per-generation historic and
// 1.2x-per-generation forecast energy reduction).
//
// Usage:
//
//	dramtrends              # everything
//	dramtrends -fig13       # a single artifact (fig5..fig13, tableII)
package main

import (
	"flag"
	"fmt"

	"drampower/internal/cli"
	"drampower/internal/engine"
	"drampower/internal/scaling"
)

// batch carries the -workers flag to the node builds of Figure 13.
var batch engine.Options

func main() {
	fig5 := flag.Bool("fig5", false, "Figure 5: technology parameter scaling")
	fig6 := flag.Bool("fig6", false, "Figure 6: capacitance / stripe scaling")
	fig7 := flag.Bool("fig7", false, "Figure 7: core device scaling")
	fig11 := flag.Bool("fig11", false, "Figure 11: voltage trends")
	fig12 := flag.Bool("fig12", false, "Figure 12: data rate and row timing trends")
	fig13 := flag.Bool("fig13", false, "Figure 13: energy per bit and die area trends")
	tab2 := flag.Bool("tableII", false, "Table II: disruptive technology changes")
	cli.WorkersVar(&batch.Workers, "the node builds")
	flag.Parse()

	all := !(*fig5 || *fig6 || *fig7 || *fig11 || *fig12 || *fig13 || *tab2)
	if *tab2 || all {
		tableII()
	}
	if *fig5 || all {
		shrinkFigure("Figure 5: scaling of technology related parameters", scaling.Figure5Families())
	}
	if *fig6 || all {
		shrinkFigure("Figure 6: scaling of miscellaneous technology parameters", scaling.Figure6Families())
	}
	if *fig7 || all {
		shrinkFigure("Figure 7: scaling of core device width and length parameters", scaling.Figure7Families())
	}
	if *fig11 || all {
		voltageTrends()
	}
	if *fig12 || all {
		timingTrends()
	}
	if *fig13 || all {
		energyTrends()
	}
}

func tableII() {
	fmt.Println("Table II: disruptive DRAM technology changes")
	for _, d := range scaling.DisruptiveChanges() {
		fmt.Printf("  %-16s %-55s %s\n", d.Transition, d.Change, d.Background)
	}
	fmt.Println()
}

func shrinkFigure(title string, families []string) {
	nodes, rows := scaling.ShrinkTable(families)
	fmt.Println(title)
	fmt.Printf("  %-20s", "node [nm]")
	for _, n := range nodes {
		fmt.Printf(" %6.0f", n.FeatureNm)
	}
	fmt.Println()
	fmt.Printf("  %-20s", "f-shrink")
	for _, v := range scaling.FShrinkSeries() {
		fmt.Printf(" %6.2f", v)
	}
	fmt.Println()
	for _, fam := range sortedKeys(rows) {
		fmt.Printf("  %-20s", fam)
		for _, v := range rows[fam] {
			fmt.Printf(" %6.2f", v)
		}
		fmt.Println()
	}
	fmt.Println()
}

func sortedKeys(m map[string][]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func voltageTrends() {
	fmt.Println("Figure 11: voltage trends")
	fmt.Printf("  %-6s %-10s %6s %6s %6s %6s\n", "node", "interface", "Vdd", "Vint", "Vbl", "Vpp")
	for _, n := range scaling.Roadmap() {
		fmt.Printf("  %-6.0f %-10s %6.2f %6.2f %6.2f %6.2f\n",
			n.FeatureNm, n.Interface, float64(n.Vdd), float64(n.Vint),
			float64(n.Vbl), float64(n.Vpp))
	}
	fmt.Println()
}

func timingTrends() {
	fmt.Println("Figure 12: data rate and row timing trends")
	fmt.Printf("  %-6s %-10s %10s %9s %8s %8s\n",
		"node", "interface", "rate/pin", "prefetch", "tRC", "tRCD")
	for _, n := range scaling.Roadmap() {
		fmt.Printf("  %-6.0f %-10s %7.0f Mbps %6d %7.1fns %7.1fns\n",
			n.FeatureNm, n.Interface, float64(n.DataRate)/1e6,
			n.Interface.Prefetch(), n.TRC.Nanoseconds(), n.TRCD.Nanoseconds())
	}
	fmt.Println()
}

func energyTrends() {
	// Build every node before printing, so a failure exits without
	// leaving a half-emitted table on stdout.
	pts, err := scaling.EnergyTrend(batch)
	if err != nil {
		cli.Fatal("dramtrends", err)
	}
	fmt.Println("Figure 13: energy consumption and die area trends")
	fmt.Printf("  %-18s %6s %10s %12s %10s\n",
		"device", "year", "die [mm²]", "e/bit [pJ]", "gen ratio")
	for _, p := range pts {
		ratio := "-"
		if p.GenRatio > 0 {
			ratio = fmt.Sprintf("x%.2f", p.GenRatio)
		}
		fmt.Printf("  %-18s %6.1f %10.1f %12.1f %10s\n",
			p.Node.Name(), p.Node.Year, p.DieAreaMM2, p.EnergyPerBitPJ, ratio)
	}
	hist := scaling.ReductionPerGeneration(pts, 170, 44)
	fore := scaling.ReductionPerGeneration(pts, 44, 16)
	fmt.Printf("  -> historic reduction (170nm..44nm, 2000-2010): x%.2f per generation (paper: ~1.5)\n", hist)
	fmt.Printf("  -> forecast reduction (44nm..16nm, 2010-2018):  x%.2f per generation (paper: ~1.2)\n", fore)
	fmt.Println()
}
