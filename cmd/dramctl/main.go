// Command dramctl is the memory-controller front-end: it schedules an
// access trace (timestamped read/write requests against a flat physical
// address space) into a legal DRAM command trace, replays it against the
// power model, and reports the row-buffer outcomes alongside the energy
// accounting. It is the tool that answers the paper's controller-side
// questions — what a page policy, an address map or a power-down
// threshold costs in joules on a given request stream.
//
// Usage:
//
//	dramctl access.dab                         # schedule + replay, report energy
//	dramctl -policy closed access.txt          # closed-page policy
//	dramctl -policy timeout=64 -pd-timeout 32 access.txt
//	dramctl -map ro:ch:ba:co -channels 2 access.txt
//	dramctl -emit text access.txt > trace.txt  # emit the scheduled trace instead
//	dramctl -emit binary access.txt > t.dtb    # ... in dtb binary
//	dramctl -gen -n 100000 -rowhit 0.8 > a.dab # generate an access trace
//	dramctl -format json access.txt            # machine-readable report
//
// The access-trace text format is one request per line, `<slot> <r|w>
// <addr>` ('#' comments; rd/wr/read/write also accepted; decimal or 0x
// hex addresses). The equivalent .dab binary encoding is sniffed from
// the first byte, like dtb for command traces. -policy selects open,
// closed or timeout=N page management; -pd-timeout/-sr-after arm the
// power-down policy (enter precharge power-down / self-refresh once a
// channel has been idle with all banks closed that many slots). Refresh
// scheduling is on by default whenever the spec carries a refresh
// interval: an all-bank ref every tREFI per channel, postponed
// JEDEC-style while requests are in flight; -refresh-every overrides
// tREFI in slots, -max-postponed the postponement bound (default 8),
// and -no-refresh disables it (the report then shows the retention
// deadlines the trace missed). With -gen, a synthetic access stream is
// written to stdout instead (-rowhit sets the row-locality probability,
// -gap the arrival spacing).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"drampower"
	"drampower/internal/cli"
)

func main() {
	src := cli.NewSource("dramctl", "desc", false)
	policyFlag := flag.String("policy", "open", "page policy: open, closed or timeout=N (idle slots)")
	mapSpec := flag.String("map", drampower.DefaultAddressMap, "address interleave spec (fields ch, ba, ro, co joined by ':', MSB first)")
	channels := flag.Int("channels", 1, "number of channels the flat address space spreads over (power of two)")
	pdTimeout := flag.Int64("pd-timeout", 0, "enter precharge power-down after this many idle all-banks-closed slots (0 = never)")
	srAfter := flag.Int64("sr-after", 0, "prefer self-refresh for idle gaps at least this long (0 = never)")
	refreshEvery := flag.Int64("refresh-every", 0, "refresh interval tREFI in slots (0 = resolve from the spec)")
	maxPostponed := flag.Int("max-postponed", 0, "JEDEC refresh postponement bound (0 = default 8)")
	noRefresh := flag.Bool("no-refresh", false, "disable refresh scheduling (report the missed retention deadlines instead)")
	emit := flag.String("emit", "", "emit the scheduled command trace to stdout (text or binary) instead of replaying")
	var workers int
	cli.WorkersVar(&workers, "the schedule+replay pipeline")
	format := cli.FormatVar()
	prof := cli.ProfileVars()
	gen := flag.Bool("gen", false, "generate a synthetic access trace to stdout instead of scheduling")
	n := flag.Int("n", 100000, "request count for -gen")
	rowhit := flag.Float64("rowhit", 0.5, "with -gen: probability a request reuses its bank's open row, in [0,1]")
	readShare := flag.Float64("readshare", 0.7, "with -gen: read share of generated requests")
	gap := flag.Int64("gap", 8, "with -gen: arrival spacing between requests in slots")
	seed := flag.Uint64("seed", 1, "with -gen: RNG seed")
	genFormat := flag.String("gen-format", "text", "with -gen: output encoding (text or binary)")
	calib := cli.OverlayVar()
	flag.Parse()
	cli.MustFormat("dramctl", *format)
	defer prof.Start("dramctl")()

	policy, pageTimeout, err := drampower.ParseControllerPolicy(*policyFlag)
	if err != nil {
		cli.Fatal("dramctl", err)
	}
	d := src.Description()
	m, err := drampower.BuildCalibrated(d, cli.LoadOverlay("dramctl", *calib))
	if err != nil {
		cli.Fatal("dramctl", err)
	}

	if *gen {
		if err := generate(m, *n, *rowhit, *readShare, *gap, *seed, *mapSpec, *channels, *genFormat); err != nil {
			cli.Fatal("dramctl", err)
		}
		return
	}

	opts := drampower.ControllerOptions{
		Policy:           policy,
		PageTimeout:      pageTimeout,
		Map:              *mapSpec,
		Channels:         *channels,
		PowerDownAfter:   *pdTimeout,
		SelfRefreshAfter: *srAfter,
		RefreshEvery:     *refreshEvery,
		MaxPostponed:     *maxPostponed,
		DisableRefresh:   *noRefresh,
		Workers:          workers,
	}
	in, name := openInput()
	start := time.Now()

	// -emit materializes the merged trace (it is the output); the default
	// replay path runs the fused schedule→replay pipeline instead, so peak
	// memory is one batch per channel, not the whole command trace, and
	// the energy report is still exactly what dramtrace would print for
	// the emitted trace.
	if *emit != "" {
		cmds, _, err := drampower.ScheduleTrace(m, in, opts)
		if err != nil {
			cli.FatalInput("dramctl", name, err)
		}
		switch *emit {
		case "text":
			err = drampower.WriteTrace(os.Stdout, cmds)
		case "binary":
			err = drampower.WriteBinaryTrace(os.Stdout, cmds)
		default:
			cli.Fatalf("dramctl", "bad -emit %q (want text or binary)", *emit)
		}
		if err != nil {
			cli.Fatal("dramctl", err)
		}
		return
	}

	stats, res, err := drampower.ScheduleAndReplay(m, in, opts,
		drampower.ReplayOptions{Workers: workers})
	if err != nil {
		cli.FatalInput("dramctl", name, err)
	}
	report(*policyFlag, opts, stats, res, time.Since(start), *format)
}

// openInput returns the access-trace input: the positional file
// argument, or stdin.
func openInput() (io.Reader, string) {
	if flag.NArg() == 0 {
		return os.Stdin, "<stdin>"
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		cli.Fatal("dramctl", err)
	}
	return f, flag.Arg(0)
}

// generate writes a synthetic access trace to stdout.
func generate(m *drampower.Model, n int, rowhit, readShare float64, gap int64, seed uint64, mapSpec string, channels int, format string) error {
	reqs, err := drampower.GenerateAccesses(m, drampower.AccessGenOptions{
		N: n, RowHit: rowhit, ReadShare: readShare, Gap: gap, Seed: seed,
		Map: mapSpec, Channels: channels,
	})
	if err != nil {
		return err
	}
	switch format {
	case "text":
		return drampower.WriteAccessTrace(os.Stdout, reqs)
	case "binary":
		return drampower.WriteBinaryAccessTrace(os.Stdout, reqs)
	default:
		return fmt.Errorf("bad -gen-format %q (want text or binary)", format)
	}
}

// output is the JSON shape of a scheduling report.
type output struct {
	Policy           string                  `json:"policy"`
	Map              string                  `json:"map"`
	Channels         int                     `json:"channels"`
	Schedule         drampower.ScheduleStats `json:"schedule"`
	RowHitRate       float64                 `json:"row_hit_rate"`
	Slots            int64                   `json:"slots"`
	DurationSeconds  float64                 `json:"duration_seconds"`
	CommandEnergyJ   float64                 `json:"command_energy_j"`
	BackgroundJ      float64                 `json:"background_energy_j"`
	TotalJ           float64                 `json:"total_energy_j"`
	AveragePowerW    float64                 `json:"average_power_w"`
	EnergyPerBitPJ   float64                 `json:"energy_per_bit_pj"`
	PowerDownSlots   int64                   `json:"power_down_slots"`
	SelfRefreshSlots int64                   `json:"self_refresh_slots"`
	// Retention audit of the scheduled trace (see TraceResult): zero
	// missed deadlines for every configuration except -no-refresh.
	MaxRefreshIntervalSlots int64 `json:"max_refresh_interval_slots"`
	MissedRefreshDeadlines  int64 `json:"missed_refresh_deadlines"`
	// Scheduling and replay run fused (overlapped), so the two timings
	// are one measurement; ScheduleSeconds is kept for report
	// compatibility.
	ScheduleSeconds   float64 `json:"schedule_seconds"`
	WallSeconds       float64 `json:"wall_seconds"`
	RequestsPerSecond float64 `json:"requests_per_second"`
}

func report(policy string, opts drampower.ControllerOptions, stats drampower.ScheduleStats, res drampower.TraceResult, wall time.Duration, format string) {
	mapSpec := opts.Map
	if mapSpec == "" {
		mapSpec = drampower.DefaultAddressMap
	}
	o := output{
		Policy:                  policy,
		Map:                     mapSpec,
		Channels:                opts.Channels,
		Schedule:                stats,
		RowHitRate:              stats.RowHitRate(),
		Slots:                   res.Slots,
		DurationSeconds:         float64(res.Duration),
		CommandEnergyJ:          float64(res.CommandEnergy),
		BackgroundJ:             float64(res.Background),
		TotalJ:                  float64(res.Total),
		AveragePowerW:           float64(res.AveragePower),
		EnergyPerBitPJ:          float64(res.EnergyPerBit) * 1e12,
		PowerDownSlots:          res.PowerDownSlots,
		SelfRefreshSlots:        res.SelfRefreshSlots,
		MaxRefreshIntervalSlots: res.MaxRefreshInterval,
		MissedRefreshDeadlines:  res.MissedRefreshDeadlines,
		ScheduleSeconds:         wall.Seconds(),
		WallSeconds:             wall.Seconds(),
	}
	if s := wall.Seconds(); s > 0 {
		o.RequestsPerSecond = float64(stats.Requests) / s
	}
	if format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(o); err != nil {
			cli.Fatal("dramctl", err)
		}
		return
	}
	fmt.Printf("scheduled %d requests (%d rd, %d wr) -> %d commands over %d channel(s), policy %s, map %s\n",
		stats.Requests, stats.Reads, stats.Writes, stats.Commands, o.Channels, o.Policy, o.Map)
	fmt.Printf("  row buffer:      %.1f%% hits (%d hit / %d miss / %d conflict)\n",
		100*o.RowHitRate, stats.RowHits, stats.RowMisses, stats.RowConflicts)
	if stats.TimeoutPrecharges > 0 {
		fmt.Printf("  page timeout:    %d precharges\n", stats.TimeoutPrecharges)
	}
	if stats.PowerDowns+stats.SelfRefreshes > 0 {
		fmt.Printf("  low power:       %d power-down, %d self-refresh entries (%d + %d slots resident)\n",
			stats.PowerDowns, stats.SelfRefreshes, o.PowerDownSlots, o.SelfRefreshSlots)
	}
	if stats.Refreshes > 0 {
		fmt.Printf("  refresh:         %d issued (%d postponed, %d forced), max interval %d slots\n",
			stats.Refreshes, stats.PostponedRefreshes, stats.ForcedRefreshes, o.MaxRefreshIntervalSlots)
	}
	if o.MissedRefreshDeadlines > 0 {
		fmt.Printf("  retention:       %d missed tREFI deadlines\n", o.MissedRefreshDeadlines)
	}
	fmt.Printf("  trace:           %d slots (%.3f ms simulated)\n", o.Slots, o.DurationSeconds*1e3)
	fmt.Printf("  command energy:  %.4g J\n", o.CommandEnergyJ)
	fmt.Printf("  background:      %.4g J\n", o.BackgroundJ)
	fmt.Printf("  total:           %.4g J  (%.1f mW avg, %.2f pJ/bit)\n",
		o.TotalJ, o.AveragePowerW*1e3, o.EnergyPerBitPJ)
	fmt.Printf("  throughput:      %.2f Mreq/s scheduled+replayed (%.3f s wall)\n",
		o.RequestsPerSecond/1e6, o.WallSeconds)
}
