// Command dramsweep regenerates the power-sensitivity Pareto of
// Section IV.B of the paper: Figure 10 (change of power consumption per
// ±20 % parameter variation) and Table III (the top-10 ranking for the
// 128M SDR 170nm, 2G DDR3 55nm and 16G DDR5 18nm devices).
//
// Usage:
//
//	dramsweep                 # Figure 10 bars for the three paper devices
//	dramsweep -top10          # Table III
//	dramsweep -node 55        # a single node
//	dramsweep -f device.dram  # sweep a description file
//	dramsweep -f device.dram -calib measured.calib  # ... with a calibration overlay
package main

import (
	"flag"
	"fmt"
	"strings"

	"drampower/internal/cli"
	"drampower/internal/desc"
	"drampower/internal/engine"
	"drampower/internal/scaling"
	"drampower/internal/sensitivity"
)

var paperNodes = []float64{170, 55, 18}

// batch carries the -workers flag to every sweep.
var batch engine.Options

// overlay carries the -calib flag to every sweep: scaling entries ride on
// top of each variant, absolute overrides pin their parameter (see
// sensitivity.SweepCalibratedOpts).
var overlay *desc.Overlay

func main() {
	src := cli.NewSource("dramsweep", "f", true)
	top10 := flag.Bool("top10", false, "print Table III (top-10 ranking per device)")
	calib := cli.OverlayVar()
	cli.WorkersVar(&batch.Workers, "the sweep")
	flag.Parse()
	overlay = cli.LoadOverlay("dramsweep", *calib)

	switch {
	case src.File() != "":
		d := src.Description()
		sweepOne(src.Label(), d, false)
	case src.Node() != 0:
		d := src.Description()
		sweepOne(src.Label(), d, *top10)
	case *top10:
		tableIII()
	default:
		for _, nm := range paperNodes {
			n, err := scaling.NodeFor(nm)
			if err != nil {
				cli.Fatal("dramsweep", err)
			}
			sweepOne(n.Name(), n.Description(), false)
		}
	}
}

func sweepOne(name string, d *desc.Description, top10 bool) {
	if !overlay.Empty() {
		name += " (calibrated)"
	}
	all, err := sensitivity.SweepCalibratedOpts(d, overlay, batch)
	if err != nil {
		cli.Fatal("dramsweep", err)
	}
	res := sensitivity.ChartRows(all)
	if top10 {
		res = sensitivity.Top(res, 10)
	}
	fmt.Printf("Figure 10: power change per ±20%% parameter variation — %s\n", name)
	fmt.Printf("  %-40s %7s %8s %8s\n", "parameter", "range", "+20%", "-20%")
	for _, r := range res {
		bar := strings.Repeat("#", int(r.RangePct/2+0.5))
		fmt.Printf("  %-40s %6.1f%% %+7.1f%% %+7.1f%%  %s\n",
			r.Name, r.RangePct, r.DeltaUpPct, r.DeltaDownPct, bar)
	}
	fmt.Println()
}

func tableIII() {
	fmt.Println("Table III: top 10 ranking of sensitivity to model parameters")
	type column struct {
		name string
		rows []string
	}
	var cols []column
	for _, nm := range paperNodes {
		n, err := scaling.NodeFor(nm)
		if err != nil {
			cli.Fatal("dramsweep", err)
		}
		all, err := sensitivity.SweepCalibratedOpts(n.Description(), overlay, batch)
		if err != nil {
			cli.Fatal("dramsweep", err)
		}
		res := sensitivity.ChartRows(all)
		c := column{name: n.Name()}
		for _, r := range sensitivity.Top(res, 10) {
			c.rows = append(c.rows, r.Name)
		}
		cols = append(cols, c)
	}
	fmt.Printf("%4s", "")
	for _, c := range cols {
		fmt.Printf(" | %-38s", c.name)
	}
	fmt.Println()
	for i := 0; i < 10; i++ {
		fmt.Printf("%4d", i+1)
		for _, c := range cols {
			row := ""
			if i < len(c.rows) {
				row = c.rows[i]
			}
			fmt.Printf(" | %-38s", row)
		}
		fmt.Println()
	}
}
