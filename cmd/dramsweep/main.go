// Command dramsweep regenerates the power-sensitivity Pareto of
// Section IV.B of the paper: Figure 10 (change of power consumption per
// ±20 % parameter variation) and Table III (the top-10 ranking for the
// 128M SDR 170nm, 2G DDR3 55nm and 16G DDR5 18nm devices).
//
// Usage:
//
//	dramsweep                 # Figure 10 bars for the three paper devices
//	dramsweep -top10          # Table III
//	dramsweep -node 55        # a single node
//	dramsweep -f device.dram  # sweep a description file
package main

import (
	"flag"
	"fmt"
	"strings"

	"drampower/internal/cli"
	"drampower/internal/desc"
	"drampower/internal/engine"
	"drampower/internal/scaling"
	"drampower/internal/sensitivity"
)

var paperNodes = []float64{170, 55, 18}

// batch carries the -workers flag to every sweep.
var batch engine.Options

func main() {
	top10 := flag.Bool("top10", false, "print Table III (top-10 ranking per device)")
	node := flag.Float64("node", 0, "sweep a single roadmap node (feature size in nm)")
	file := flag.String("f", "", "sweep a description file instead of roadmap devices")
	flag.IntVar(&batch.Workers, "workers", 0,
		"worker pool size for the sweep (0 = one per CPU, 1 = serial)")
	flag.Parse()

	switch {
	case *file != "":
		d, err := desc.ParseFile(*file)
		if err != nil {
			cli.FatalInput("dramsweep", *file, err)
		}
		sweepOne(d.Name, d, false)
	case *node != 0:
		n, err := scaling.NodeFor(*node)
		if err != nil {
			cli.Fatal("dramsweep", err)
		}
		sweepOne(n.Name(), n.Description(), *top10)
	case *top10:
		tableIII()
	default:
		for _, nm := range paperNodes {
			n, err := scaling.NodeFor(nm)
			if err != nil {
				cli.Fatal("dramsweep", err)
			}
			sweepOne(n.Name(), n.Description(), false)
		}
	}
}

func sweepOne(name string, d *desc.Description, top10 bool) {
	res, err := sensitivity.SweepOpts(d, batch)
	if err != nil {
		cli.Fatal("dramsweep", err)
	}
	if top10 {
		res = sensitivity.Top(res, 10)
	}
	fmt.Printf("Figure 10: power change per ±20%% parameter variation — %s\n", name)
	fmt.Printf("  %-40s %7s %8s %8s\n", "parameter", "range", "+20%", "-20%")
	for _, r := range res {
		bar := strings.Repeat("#", int(r.RangePct/2+0.5))
		fmt.Printf("  %-40s %6.1f%% %+7.1f%% %+7.1f%%  %s\n",
			r.Name, r.RangePct, r.DeltaUpPct, r.DeltaDownPct, bar)
	}
	fmt.Println()
}

func tableIII() {
	fmt.Println("Table III: top 10 ranking of sensitivity to model parameters")
	type column struct {
		name string
		rows []string
	}
	var cols []column
	for _, nm := range paperNodes {
		n, err := scaling.NodeFor(nm)
		if err != nil {
			cli.Fatal("dramsweep", err)
		}
		res, err := sensitivity.SweepOpts(n.Description(), batch)
		if err != nil {
			cli.Fatal("dramsweep", err)
		}
		c := column{name: n.Name()}
		for _, r := range sensitivity.Top(res, 10) {
			c.rows = append(c.rows, r.Name)
		}
		cols = append(cols, c)
	}
	fmt.Printf("%4s", "")
	for _, c := range cols {
		fmt.Printf(" | %-38s", c.name)
	}
	fmt.Println()
	for i := 0; i < 10; i++ {
		fmt.Printf("%4d", i+1)
		for _, c := range cols {
			row := ""
			if i < len(c.rows) {
				row = c.rows[i]
			}
			fmt.Printf(" | %-38s", row)
		}
		fmt.Println()
	}
}
