// Command dramtrace replays DRAM command traces against the power model
// and reports the integrated energy accounting. Traces stream through a
// fixed buffer, so multi-gigabyte files replay in constant memory; a
// multi-channel trace (global bank indices spanning several devices) is
// sharded across one simulator per channel and replayed concurrently.
//
// Usage:
//
//	dramtrace trace.txt                      # replay a trace file
//	dramtrace < trace.txt                    # ... or stdin
//	dramtrace -channels 8 -workers 8 t.txt   # 8-channel parallel replay
//	dramtrace -format json t.txt             # machine-readable result
//	dramtrace -desc device.dram t.txt        # replay against a description
//	dramtrace -calib measured.calib t.txt    # replay a calibrated model
//	dramtrace -gen closed -n 100000          # emit a generated trace
//	dramtrace -gen streaming -channels 4 -n 1000000 | dramtrace -channels 4
//	dramtrace -gen refresh -idle 1 -n 1000   # power-down in every idle gap
//	dramtrace -gen mixed -rowhit 0.8         # controller-scheduled locality mix
//	dramtrace -gen closed -format binary > t.dtb   # generate dtb binary
//	dramtrace -convert binary t.txt > t.dtb  # text -> dtb binary
//	dramtrace -convert text t.dtb            # dtb binary -> text
//
// The text trace format is one command per line, `<slot> <op> [<bank>
// [<row>]]`, '#' comments; ops are the pattern mnemonics act, pre, rd,
// wrt, nop, ref plus the power-state commands pde, pdx, sre, srx
// (power-down / self-refresh entry and exit). Traces may equivalently be
// stored in the compact dtb binary encoding (see the README's "Binary
// trace format" section); replay input auto-detects the encoding from
// the first byte, -convert translates between the two, and `-gen -format
// binary` emits dtb directly. With -gen, -n sets the approximate command
// count and the trace is written to stdout instead of replaying; -idle N
// additionally parks the device in precharge power-down during every
// idle gap of at least N slots (1 = every gap that fits a legal
// power-down window). The streaming and closed kinds sit at the locality
// extremes (every access hits its row / no access does); `-gen mixed`
// fills the middle by scheduling a synthetic access stream through the
// open-page memory controller, with -rowhit setting the probability a
// request reuses its bank's open row (default 0.5; see dramctl for the
// full controller front-end).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"drampower"
	"drampower/internal/cli"
	"drampower/internal/trace"
)

func main() {
	src := cli.NewSource("dramtrace", "desc", false)
	channels := flag.Int("channels", 1, "number of channels the trace's global bank indices span")
	var workers int
	cli.WorkersVar(&workers, "the replay")
	format := cli.FormatVar()
	convert := flag.String("convert", "", "convert the input trace to the given encoding (text or binary) on stdout instead of replaying")
	gen := flag.String("gen", "", "generate a trace to stdout instead of replaying: streaming, closed, refresh or mixed")
	n := flag.Int("n", 100000, "approximate command count for -gen")
	readShare := flag.Float64("readshare", 0.7, "read share of generated column commands")
	rowhit := flag.Float64("rowhit", 0.5, "with -gen mixed: probability an access reuses its bank's open row, in [0,1]")
	seed := flag.Int64("seed", 1, "base RNG seed for -gen")
	idle := flag.Int64("idle", 0, "with -gen: enter power-down in idle gaps of at least this many slots (0 = never)")
	calib := cli.OverlayVar()
	prof := cli.ProfileVars()
	flag.Parse()
	defer prof.Start("dramtrace")()

	// -format binary selects the dtb trace encoding for -gen output; the
	// replay report itself is text or json.
	if *format == "binary" {
		if *gen == "" {
			cli.Fatalf("dramtrace", "-format binary only applies to -gen output (use -convert binary to re-encode a trace)")
		}
	} else {
		cli.MustFormat("dramtrace", *format)
	}

	if *convert != "" {
		in, name := openInput()
		if err := convertTrace(in, *convert); err != nil {
			cli.FatalInput("dramtrace", name, err)
		}
		return
	}

	d := src.Description()
	m, err := drampower.BuildCalibrated(d, cli.LoadOverlay("dramtrace", *calib))
	if err != nil {
		cli.Fatal("dramtrace", err)
	}

	if *gen != "" {
		if err := generate(m, *gen, *channels, *n, *readShare, *rowhit, *seed, *idle, *format == "binary"); err != nil {
			cli.Fatal("dramtrace", err)
		}
		return
	}

	in, name := openInput()
	cr := &countingReader{r: in}
	start := time.Now()
	res, err := drampower.ReplayTrace(m, cr, drampower.ReplayOptions{Channels: *channels, Workers: workers})
	if err != nil {
		cli.FatalInput("dramtrace", name, err)
	}
	report(res, cr.n, *channels, workers, time.Since(start), *format)
}

// openInput returns the trace input: the positional file argument, or
// stdin. The file (if any) stays open until the process exits, which is
// when replay or conversion finishes.
func openInput() (io.Reader, string) {
	if flag.NArg() == 0 {
		return os.Stdin, "<stdin>"
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		cli.Fatal("dramtrace", err)
	}
	return f, flag.Arg(0)
}

// convertTrace streams the input trace (either encoding, sniffed) to
// stdout in the requested encoding. No model is involved: conversion
// re-encodes the command stream verbatim, without timing checks.
func convertTrace(in io.Reader, out string) error {
	src := drampower.NewTraceSource(in)
	switch out {
	case "text":
		bw := bufio.NewWriter(os.Stdout)
		var line []byte
		for src.Scan() {
			line = trace.AppendCommand(line[:0], src.Command())
			if _, err := bw.Write(line); err != nil {
				return err
			}
		}
		if err := src.Err(); err != nil {
			return err
		}
		return bw.Flush()
	case "binary":
		bw := drampower.NewBinaryTraceWriter(os.Stdout)
		for src.Scan() {
			if err := bw.WriteCommand(src.Command()); err != nil {
				return err
			}
		}
		if err := src.Err(); err != nil {
			return err
		}
		return bw.Flush()
	default:
		return fmt.Errorf("bad -convert %q (want text or binary)", out)
	}
}

// generate writes a synthetic trace to stdout: per-channel workloads from
// the generators in internal/trace, optionally parked in power-down
// during idle gaps (-idle), interleaved into one global-bank trace, in
// the text or (with -format binary) the dtb binary encoding. The mixed
// kind instead drives the controller front-end: a random access stream
// with -rowhit row locality, scheduled open-page into a legal trace.
func generate(m *drampower.Model, kind string, channels, n int, readShare, rowhit float64, seed, idle int64, binary bool) error {
	if channels < 1 {
		channels = 1
	}
	if kind == "mixed" {
		if idle > 0 {
			return fmt.Errorf("-idle does not apply to -gen mixed (schedule with dramctl -pd-timeout instead)")
		}
		// A hit emits one command, a miss or conflict up to three; size the
		// request count so the output lands near -n commands.
		reqs := int(float64(n) / (1 + 2*(1-rowhit)))
		if reqs < 1 {
			reqs = 1
		}
		accesses, err := drampower.GenerateAccesses(m, drampower.AccessGenOptions{
			N: reqs, RowHit: rowhit, ReadShare: readShare,
			Gap: int64(m.BurstSlots()), Seed: uint64(seed), Channels: channels,
		})
		if err != nil {
			return err
		}
		cmds, _, err := drampower.ScheduleAccesses(m, accesses, drampower.ControllerOptions{Channels: channels})
		if err != nil {
			return err
		}
		if binary {
			return drampower.WriteBinaryTrace(os.Stdout, cmds)
		}
		return drampower.WriteTrace(os.Stdout, cmds)
	}
	perChannel := (n + channels - 1) / channels
	chans := make([][]drampower.Command, channels)
	for ch := range chans {
		s := seed + int64(ch)
		switch kind {
		case "streaming":
			chans[ch] = trace.Streaming(m, perChannel, readShare, s)
		case "closed":
			// Three commands (act/col/pre) per access.
			chans[ch] = trace.RandomClosedPage(m, (perChannel+2)/3, readShare, s)
		case "refresh":
			chans[ch] = trace.RefreshOnly(m, perChannel)
		default:
			return fmt.Errorf("bad -gen %q (want streaming, closed, refresh or mixed)", kind)
		}
		if idle > 0 {
			// The insertion policy runs per channel: power-down legality
			// (banks closed, refresh complete) is a per-device property.
			chans[ch] = trace.WithPowerDown(m, chans[ch], idle)
		}
	}
	cmds := drampower.InterleaveChannels(chans, m.D.Spec.Banks())
	if binary {
		return drampower.WriteBinaryTrace(os.Stdout, cmds)
	}
	return drampower.WriteTrace(os.Stdout, cmds)
}

// countingReader counts the trace bytes consumed, for throughput
// reporting.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// output is the JSON shape of a replay report.
type output struct {
	Channels          int              `json:"channels"`
	Workers           int              `json:"workers"`
	Commands          int64            `json:"commands"`
	Slots             int64            `json:"slots"`
	DurationSeconds   float64          `json:"duration_seconds"`
	CommandEnergyJ    float64          `json:"command_energy_j"`
	BackgroundJ       float64          `json:"background_energy_j"`
	TotalJ            float64          `json:"total_energy_j"`
	AveragePowerW     float64          `json:"average_power_w"`
	AverageCurrentA   float64          `json:"average_current_a"`
	Bits              int64            `json:"bits"`
	EnergyPerBitPJ    float64          `json:"energy_per_bit_pj"`
	BusUtilization    float64          `json:"bus_utilization"`
	ActiveSlots       int64            `json:"active_slots"`
	PrechargedSlots   int64            `json:"precharged_slots"`
	PowerDownSlots    int64            `json:"power_down_slots"`
	SelfRefreshSlots  int64            `json:"self_refresh_slots"`
	ActiveBgJ         float64          `json:"active_background_j"`
	PrechargedBgJ     float64          `json:"precharged_background_j"`
	PowerDownBgJ      float64          `json:"power_down_background_j"`
	SelfRefreshBgJ    float64          `json:"self_refresh_background_j"`
	Counts            map[string]int64 `json:"counts"`
	TraceBytes        int64            `json:"trace_bytes"`
	WallSeconds       float64          `json:"wall_seconds"`
	CommandsPerSecond float64          `json:"commands_per_second"`
	MBPerSecond       float64          `json:"mb_per_second"`
}

func report(res drampower.TraceResult, bytes int64, channels, workers int, wall time.Duration, format string) {
	var commands int64
	counts := map[string]int64{}
	for op, c := range res.Counts {
		commands += c
		counts[drampower.TraceOpName(op)] = c
	}
	o := output{
		Channels:         channels,
		Workers:          workers,
		Commands:         commands,
		Slots:            res.Slots,
		DurationSeconds:  float64(res.Duration),
		CommandEnergyJ:   float64(res.CommandEnergy),
		BackgroundJ:      float64(res.Background),
		TotalJ:           float64(res.Total),
		AveragePowerW:    float64(res.AveragePower),
		AverageCurrentA:  float64(res.AverageCurrent),
		Bits:             res.Bits,
		EnergyPerBitPJ:   float64(res.EnergyPerBit) * 1e12,
		BusUtilization:   res.BusUtilization,
		ActiveSlots:      res.ActiveSlots,
		PrechargedSlots:  res.PrechargedSlots,
		PowerDownSlots:   res.PowerDownSlots,
		SelfRefreshSlots: res.SelfRefreshSlots,
		ActiveBgJ:        float64(res.ActiveBackground),
		PrechargedBgJ:    float64(res.PrechargedBackground),
		PowerDownBgJ:     float64(res.PowerDownBackground),
		SelfRefreshBgJ:   float64(res.SelfRefreshBackground),
		Counts:           counts,
		TraceBytes:       bytes,
		WallSeconds:      wall.Seconds(),
	}
	if s := wall.Seconds(); s > 0 {
		o.CommandsPerSecond = float64(commands) / s
		o.MBPerSecond = float64(bytes) / 1e6 / s
	}
	if format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(o); err != nil {
			cli.Fatal("dramtrace", err)
		}
		return
	}
	fmt.Printf("replayed %d commands over %d channel(s): %d slots (%.3f ms simulated)\n",
		o.Commands, o.Channels, o.Slots, o.DurationSeconds*1e3)
	fmt.Printf("  counts:          %v\n", o.Counts)
	fmt.Printf("  command energy:  %.4g J\n", o.CommandEnergyJ)
	fmt.Printf("  background:      %.4g J\n", o.BackgroundJ)
	fmt.Printf("  total:           %.4g J  (%.1f mW avg, %.1f mA avg)\n",
		o.TotalJ, o.AveragePowerW*1e3, o.AverageCurrentA*1e3)
	fmt.Printf("  data:            %d bits, %.2f pJ/bit, bus utilization %.2f\n",
		o.Bits, o.EnergyPerBitPJ, o.BusUtilization)
	totalStateSlots := o.ActiveSlots + o.PrechargedSlots + o.PowerDownSlots + o.SelfRefreshSlots
	if totalStateSlots > 0 {
		pct := func(s int64) float64 { return 100 * float64(s) / float64(totalStateSlots) }
		fmt.Printf("  residency:       active %.1f%%, precharged %.1f%%, power-down %.1f%%, self-refresh %.1f%%\n",
			pct(o.ActiveSlots), pct(o.PrechargedSlots), pct(o.PowerDownSlots), pct(o.SelfRefreshSlots))
		fmt.Printf("  bg by state:     %.4g / %.4g / %.4g / %.4g J\n",
			o.ActiveBgJ, o.PrechargedBgJ, o.PowerDownBgJ, o.SelfRefreshBgJ)
	}
	fmt.Printf("  throughput:      %.2f Mcmd/s, %.1f MB/s (%.3f s wall)\n",
		o.CommandsPerSecond/1e6, o.MBPerSecond, o.WallSeconds)
}
