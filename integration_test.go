package drampower

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Integration tests: full .dram files through parser, validator, engine.

func parseTestdata(t *testing.T, name string) *Description {
	t.Helper()
	d, err := ParseFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestTestdataFilesParseAndBuild(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".dram") {
			continue
		}
		n++
		t.Run(e.Name(), func(t *testing.T) {
			d := parseTestdata(t, e.Name())
			if err := d.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
			m, err := Build(d)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			idd := m.IDD()
			if idd.IDD0 <= 0 || idd.IDD0 > 0.5 {
				t.Errorf("IDD0 = %v implausible", idd.IDD0)
			}
			res := m.Evaluate()
			if res.Power <= 0 || res.Power > 3 {
				t.Errorf("pattern power %v implausible", res.Power)
			}
		})
	}
	if n < 4 {
		t.Errorf("expected at least 4 testdata descriptions, found %d", n)
	}
}

func TestFileRoundTripsThroughEngine(t *testing.T) {
	// The DDR3 testdata file is the serialized sample device: both paths
	// must produce identical power results.
	fromFile, err := Build(parseTestdata(t, "ddr3_1gb_x16_55nm.dram"))
	if err != nil {
		t.Fatal(err)
	}
	fromCode, err := Build(Sample1GbDDR3())
	if err != nil {
		t.Fatal(err)
	}
	fIDD, cIDD := fromFile.IDD(), fromCode.IDD()
	if d := relDiff(float64(fIDD.IDD0), float64(cIDD.IDD0)); d > 1e-9 {
		t.Errorf("IDD0 differs between file and code: %v vs %v", fIDD.IDD0, cIDD.IDD0)
	}
	if d := relDiff(float64(fromFile.Evaluate().Power), float64(fromCode.Evaluate().Power)); d > 1e-9 {
		t.Error("pattern power differs between file and code path")
	}
}

func TestGenerationFilesMatchRoadmap(t *testing.T) {
	// The SDR / DDR2 / DDR5 testdata files are frozen snapshots of the
	// generation builder; they must still agree with the live builder.
	cases := map[string]float64{
		"sdr_128mb_x16_170nm.dram": 170,
		"ddr2_1gb_x16_75nm.dram":   75,
		"ddr5_16gb_x16_18nm.dram":  18,
	}
	for name, nm := range cases {
		t.Run(name, func(t *testing.T) {
			fileModel, err := Build(parseTestdata(t, name))
			if err != nil {
				t.Fatal(err)
			}
			n, err := NodeFor(nm)
			if err != nil {
				t.Fatal(err)
			}
			liveModel, err := Build(n.Description())
			if err != nil {
				t.Fatal(err)
			}
			f := float64(fileModel.Evaluate().Power)
			l := float64(liveModel.Evaluate().Power)
			if relDiff(f, l) > 0.02 {
				t.Errorf("pattern power drifted: file %g W vs builder %g W "+
					"(regenerate testdata after builder changes)", f, l)
			}
		})
	}
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return 1
	}
	d := (a - b) / b
	if d < 0 {
		return -d
	}
	return d
}
