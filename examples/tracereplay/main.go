// Trace replay: write a multi-channel command trace as text, then stream
// it back through the parallel replayer without materializing it. Each
// channel gets its own timing-checked simulator; the merged result is
// deterministic regardless of worker count, and a single-channel replay
// is bit-identical to the in-memory simulator.
package main

import (
	"bytes"
	"fmt"
	"log"

	"drampower"
)

func main() {
	m, err := drampower.Build(drampower.Sample1GbDDR3())
	if err != nil {
		log.Fatal(err)
	}
	banks := m.D.Spec.Banks()

	// Two channels with different personalities: channel 0 streams row
	// hits, channel 1 does random closed-page accesses. Interleaving
	// renumbers channel 1's banks into the global bank space
	// (bank 8..15 for an 8-bank device).
	perChannel := [][]drampower.Command{
		drampower.StreamingWorkload(m, 4000, 0.67, 1),
		drampower.RandomClosedPageWorkload(m, 1000, 0.5, 2),
	}
	trace := drampower.InterleaveChannels(perChannel, banks)

	// Serialize to the line-oriented trace text format. In production the
	// reader would be a file or pipe; the replayer streams it in bounded
	// rounds either way.
	var buf bytes.Buffer
	if err := drampower.WriteTrace(&buf, trace); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d commands, %d bytes of text\n\n", len(trace), buf.Len())

	res, err := drampower.ReplayTrace(m, &buf, drampower.ReplayOptions{
		Channels: 2,
		Workers:  2,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %12v\n", "command energy", res.CommandEnergy)
	fmt.Printf("%-22s %12v\n", "background energy", res.Background)
	fmt.Printf("%-22s %12v\n", "total energy", res.Total)
	fmt.Printf("%-22s %12v\n", "average power", res.AveragePower)
	fmt.Printf("%-22s %12.2f pJ\n", "energy per bit", res.EnergyPerBit*1e12)
	fmt.Printf("%-22s %11.1f%%\n", "bus utilization", 100*res.BusUtilization)
	fmt.Printf("%-22s %12d\n", "slots simulated", res.Slots)
	fmt.Printf("\nper-op counts (both channels merged):\n")
	for _, op := range []drampower.Op{
		drampower.OpActivate, drampower.OpRead, drampower.OpWrite,
		drampower.OpPrecharge, drampower.OpRefresh,
	} {
		if n := res.Counts[op]; n > 0 {
			fmt.Printf("  %-10v %8d\n", op, n)
		}
	}
}
