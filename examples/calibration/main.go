// Calibration: close the gap between the derived model and a measured
// device. Hardware measurement studies (e.g. Ghose et al., "What Your
// DRAM Power Models Are Not Telling You", SIGMETRICS 2018) report that
// real DRAM modules draw currents that differ from both datasheet
// maxima and first-principles models — vendor to vendor, and operation
// to operation. A calibration overlay records those measurements as a
// small text document and pins or scales the derived parameters without
// touching the circuit model underneath.
package main

import (
	"fmt"
	"log"
	"strings"

	"drampower"
)

// measurements plays the role of a bench characterization of one
// specific module: absolute entries pin a parameter to the measured
// value, scale entries correct a systematic bias.
const measurements = `Calibration bench-2026-08
# Measured on powered hardware; derived values in parentheses.
idd0 = 58mA          # cycling current measured low (derived ~78mA)
idd2p = 5mA          # deeper power-down than the model's gating guess
op.rd.energy *= 1.07 # reads burn ~7% more than derived
standby *= 0.94      # this module idles a bit cool
`

func main() {
	d := drampower.Sample1GbDDR3()

	derived, err := drampower.Build(d)
	if err != nil {
		log.Fatal(err)
	}

	ov, err := drampower.ParseOverlayString(measurements)
	if err != nil {
		log.Fatal(err)
	}
	measured, err := drampower.BuildCalibrated(d, ov)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("device: %s, calibration %q (%d entries)\n\n",
		d.Name, measured.CalibrationName(), len(ov.Entries))

	// The derived-vs-measured gap, parameter by parameter. Everything the
	// overlay does not name stays bit-identical to the derived model.
	fmt.Printf("%-22s %12s %12s %8s\n", "parameter", "derived", "measured", "gap")
	row := func(name string, dv, mv float64, unit string) {
		gap := "    -"
		if dv != mv {
			gap = fmt.Sprintf("%+.1f%%", 100*(mv-dv)/dv)
		}
		fmt.Printf("%-22s %10.2f %s %10.2f %s %8s\n", name, dv, unit, mv, unit, gap)
	}
	di, mi := derived.IDD(), measured.IDD()
	row("IDD0", di.IDD0.Milliamps(), mi.IDD0.Milliamps(), "mA")
	row("IDD2N (standby)", di.IDD2N.Milliamps(), mi.IDD2N.Milliamps(), "mA")
	row("IDD2P (power-down)", derived.IDD2P().Milliamps(), measured.IDD2P().Milliamps(), "mA")
	row("IDD4R", di.IDD4R.Milliamps(), mi.IDD4R.Milliamps(), "mA")
	for _, op := range []drampower.Op{drampower.OpActivate, drampower.OpRead, drampower.OpWrite} {
		row("E("+op.String()+")",
			float64(derived.OpEnergy(op))/1e-9, float64(measured.OpEnergy(op))/1e-9, "nJ")
	}

	// The gap propagates into every downstream consumer: pattern power...
	dres, mres := derived.Evaluate(), measured.Evaluate()
	fmt.Printf("\npattern %q:\n", d.Pattern.String())
	fmt.Printf("  derived  %6.1f mW  (%.2f pJ/bit)\n",
		dres.Power.Milliwatts(), dres.EnergyPerBit.Picojoules())
	fmt.Printf("  measured %6.1f mW  (%.2f pJ/bit)  %+.1f%%\n",
		mres.Power.Milliwatts(), mres.EnergyPerBit.Picojoules(),
		100*(float64(mres.Power)-float64(dres.Power))/float64(dres.Power))

	// ...and trace replay, where the calibrated standby and power-down
	// draws reprice the background integral.
	trace := "0 act 0 1\n11 rd 0 1\n28 pre 0 1\n60 pde\n600 pdx\n700 nop\n"
	dt, err := drampower.ReplayTrace(derived, strings.NewReader(trace), drampower.ReplayOptions{})
	if err != nil {
		log.Fatal(err)
	}
	mt, err := drampower.ReplayTrace(measured, strings.NewReader(trace), drampower.ReplayOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrace (%d slots, mostly power-down):\n", dt.Slots)
	fmt.Printf("  derived  background %8.2f nJ, total %8.2f nJ\n",
		float64(dt.Background)/1e-9, float64(dt.Total)/1e-9)
	fmt.Printf("  measured background %8.2f nJ, total %8.2f nJ  %+.1f%%\n",
		float64(mt.Background)/1e-9, float64(mt.Total)/1e-9,
		100*(float64(mt.Total)-float64(dt.Total))/float64(dt.Total))

	// The overlay's canonical form is a stable fingerprint: the server's
	// model cache keys on it, so the same measurements always hit the
	// same cached model.
	fmt.Printf("\ncanonical overlay:\n%s", indent(drampower.FormatOverlay(ov)))
	fmt.Printf("model key: %s\n", drampower.ModelKeyCalibrated(d, ov)[:16])
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ") + "\n"
}
