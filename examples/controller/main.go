// Page-policy energy crossover: drive the memory-controller front-end
// over a locality sweep and watch the cheapest page policy flip. An
// open-page controller keeps rows open hoping the next request hits
// them, so high-locality streams pay only RD/WR — but an open row pins
// the bank active and blocks power-down, so at low locality it pays
// conflict precharges AND full standby through every idle gap. A
// closed-page controller precharges immediately: every request costs
// ACT+RD/WR+PRE, but the rank returns to all-banks-closed and the idle
// gaps drop into precharge power-down (IDD2P). The timeout policy sits
// between the two. The sweep makes the crossover visible in one table.
//
// A second table isolates the refresh overhead per policy: the same
// stream scheduled with the tREFI refresh scheduler on (the default)
// versus off, with the replayer's retention audit confirming that the
// refresh-free trace misses deadlines the scheduled one meets. Refresh
// costs open-page more than its energy bill suggests — every all-bank
// ref precharges the open rows first, turning would-be row hits into
// conflicts.
package main

import (
	"fmt"
	"log"

	"drampower"
)

const (
	requests = 2000
	gap      = 100 // idle slots between arrivals: room for power-down
	pdAfter  = 24  // power-down threshold (slots idle, all banks closed)
)

// policies are the contenders, in flag spelling.
var policies = []string{"open", "closed", "timeout=48"}

func main() {
	m, err := drampower.Build(drampower.Sample1GbDDR3())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("policy energy over a row-locality sweep (%d requests, gap %d slots, pd after %d)\n\n",
		requests, gap, pdAfter)
	fmt.Printf("%8s", "rowhit")
	for _, p := range policies {
		fmt.Printf("  %16s", p)
	}
	fmt.Printf("  %10s\n", "winner")

	for _, rowhit := range []float64{0.05, 0.25, 0.50, 0.75, 0.98} {
		reqs, err := drampower.GenerateAccesses(m, drampower.AccessGenOptions{
			N: requests, RowHit: rowhit, ReadShare: 0.7, Gap: gap, Seed: 42,
		})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%7.0f%%", 100*rowhit)
		best, bestJ := "", 0.0
		for _, p := range policies {
			policy, window, err := drampower.ParseControllerPolicy(p)
			if err != nil {
				log.Fatal(err)
			}
			cmds, stats, err := drampower.ScheduleAccesses(m, reqs, drampower.ControllerOptions{
				Policy:         policy,
				PageTimeout:    window,
				PowerDownAfter: pdAfter,
			})
			if err != nil {
				log.Fatalf("%s: %v", p, err)
			}
			res, err := drampower.RunTrace(m, cmds)
			if err != nil {
				log.Fatalf("%s: %v", p, err)
			}
			fmt.Printf("  %8.2fuJ %5.0f%%", float64(res.Total)*1e6, 100*stats.RowHitRate())
			if best == "" || float64(res.Total) < bestJ {
				best, bestJ = p, float64(res.Total)
			}
		}
		fmt.Printf("  %10s\n", best)
	}

	fmt.Println("\n(each cell: total energy, row-hit rate achieved)")
	fmt.Println("closed-page wins at low locality: the rank parks in power-down between requests.")
	fmt.Println("open-page wins at high locality: row hits skip the ACT+PRE pair entirely.")

	// Refresh overhead per policy: same stream, scheduler's tREFI refresh
	// on (default) vs off, at moderate locality.
	reqs, err := drampower.GenerateAccesses(m, drampower.AccessGenOptions{
		N: requests, RowHit: 0.5, ReadShare: 0.7, Gap: gap, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrefresh overhead at 50%% locality (tREFI scheduler on vs off)\n\n")
	fmt.Printf("%12s  %10s  %10s  %9s  %5s  %7s\n",
		"policy", "with ref", "no ref", "overhead", "refs", "missed")
	for _, p := range policies {
		policy, window, err := drampower.ParseControllerPolicy(p)
		if err != nil {
			log.Fatal(err)
		}
		var totals [2]float64
		var refs, missed int64
		for i, disable := range []bool{false, true} {
			cmds, stats, err := drampower.ScheduleAccesses(m, reqs, drampower.ControllerOptions{
				Policy:         policy,
				PageTimeout:    window,
				PowerDownAfter: pdAfter,
				DisableRefresh: disable,
			})
			if err != nil {
				log.Fatalf("%s: %v", p, err)
			}
			res, err := drampower.RunTrace(m, cmds)
			if err != nil {
				log.Fatalf("%s: %v", p, err)
			}
			totals[i] = float64(res.Total)
			if !disable {
				refs = stats.Refreshes
			} else {
				missed = res.MissedRefreshDeadlines
			}
		}
		fmt.Printf("%12s  %8.2fuJ  %8.2fuJ  %8.2f%%  %5d  %7d\n",
			p, totals[0]*1e6, totals[1]*1e6, 100*(totals[0]-totals[1])/totals[1], refs, missed)
	}
	fmt.Println("\n(refs: all-bank refreshes scheduled; missed: tREFI deadlines the")
	fmt.Println("refresh-free trace blows past — data loss, not a config choice.)")
}
