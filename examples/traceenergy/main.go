// Trace energy: run timing-validated command traces against the model and
// compare workload classes — streaming row hits, random closed-page
// access and refresh-only standby. The trace simulator enforces tRC,
// tRCD, tRP, tRAS, tRRD, tFAW and data-bus occupancy, making the paper's
// operating patterns (Section III.B.4) concrete.
package main

import (
	"fmt"
	"log"

	"drampower"
)

func main() {
	m, err := drampower.Build(drampower.Sample1GbDDR3())
	if err != nil {
		log.Fatal(err)
	}

	streaming := drampower.StreamingWorkload(m, 2000, 0.67, 42)
	random := drampower.RandomClosedPageWorkload(m, 500, 0.67, 42)

	fmt.Printf("%-28s %10s %10s %10s %12s %8s\n",
		"workload", "power", "current", "bandwidth", "energy/bit", "bus use")
	for _, w := range []struct {
		name string
		cmds []drampower.Command
	}{
		{"streaming (row hits)", streaming},
		{"random closed-page", random},
	} {
		res, err := drampower.RunTrace(m, w.cmds)
		if err != nil {
			log.Fatalf("%s: %v", w.name, err)
		}
		bw := float64(res.Bits) / float64(res.Duration) / 1e9 // Gb/s
		fmt.Printf("%-28s %8.1fmW %8.1fmA %7.2fGb/s %10.2fpJ %7.0f%%\n",
			w.name, res.AveragePower.Milliwatts(), res.AverageCurrent.Milliamps(),
			bw, res.EnergyPerBit.Picojoules(), 100*res.BusUtilization)
	}

	// A timing violation is caught, not silently mispriced.
	s := drampower.NewSimulator(m)
	if err := s.Issue(drampower.Command{Slot: 0, Op: drampower.OpActivate, Bank: 0, Row: 1}); err != nil {
		log.Fatal(err)
	}
	err = s.Issue(drampower.Command{Slot: 2, Op: drampower.OpRead, Bank: 0, Row: 1})
	fmt.Printf("\nillegal read 2 slots after activate -> %v\n", err)
}
