// DDR3 power breakdown: where does the energy of each operation go?
// This example reproduces the paper's central diagnostic ability — the
// detailed charge-item breakdown that datasheet calculations cannot give
// ("not detailed enough to understand exactly when and where in a DRAM the
// power is consumed", Section I) — for a 2 Gb DDR3 device of the 55 nm
// generation.
package main

import (
	"fmt"
	"log"
	"sort"

	"drampower"
)

func main() {
	node, err := drampower.NodeFor(55)
	if err != nil {
		log.Fatal(err)
	}
	d := node.Description()
	m, err := drampower.Build(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device: %s\n\n", d.Name)

	// Break one activate down into its charge items.
	for _, op := range []drampower.Op{drampower.OpActivate, drampower.OpRead} {
		oc := m.Charges(op)
		total := float64(oc.EnergyFromVdd(d.Electrical))
		fmt.Printf("%s: %.2f nJ total\n", op, total/1e-9)
		type row struct {
			name string
			e    float64
		}
		var rows []row
		for _, it := range oc.Items {
			v, eff := d.Electrical.DomainVoltageAndEff(it.Domain)
			e := float64(it.Charge(v)) * float64(d.Electrical.Vdd) / eff
			rows = append(rows, row{fmt.Sprintf("%-32s (%s, %s)", it.Name, it.Group, it.Domain), e})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].e > rows[j].e })
		for _, r := range rows {
			fmt.Printf("  %-48s %8.1f pJ  %5.1f%%\n", r.name, r.e/1e-12, 100*r.e/total)
		}
		fmt.Println()
	}

	// The same rollup over the interleaved pattern, by group and domain.
	res := m.EvaluatePattern(m.PatternIDD7(0.5))
	fmt.Printf("interleaved pattern: %.1f mW at %.2f pJ/bit\n",
		res.Power.Milliwatts(), res.EnergyPerBit.Picojoules())
	for g, p := range res.ByGroup {
		fmt.Printf("  group %-9s %6.1f mW (%4.1f%%)\n", g, p.Milliwatts(),
			100*float64(p)/float64(res.Power))
	}
}
