// Mobile vs commodity: Section II of the paper notes that mobile DRAMs
// (LP-DDR2) share the commodity architecture but are "optimized for low
// standby current", with edge pads and aggressive leakage reduction. This
// example builds an LPDDR2-style variant of a 1 Gb DDR2-class device —
// lower supply, no DLL (no constant bias), lean always-on logic — and
// compares standby and active power against the commodity part.
package main

import (
	"fmt"
	"log"

	"drampower"
)

func main() {
	commodity, err := drampower.DeviceFor(65, drampower.DDR2, 1<<30, 16, 0.8)
	if err != nil {
		log.Fatal(err)
	}
	cd := commodity.Build()

	// LPDDR2-style: same 65 nm technology and bandwidth class, mobile
	// optimizations applied to the description.
	mobile, err := drampower.DeviceFor(65, drampower.DDR2, 1<<30, 16, 0.8)
	if err != nil {
		log.Fatal(err)
	}
	md := mobile.Build()
	md.Name = "1G LPDDR2-style x16 800Mbps 65nm"
	md.Electrical.Vdd = 1.2 // LPDDR2 VDD1/VDD2 simplification
	md.Electrical.Vint = 1.1
	md.Electrical.Vbl = 1.0
	md.Electrical.Vpp = 2.5
	md.Electrical.ConstantCurrent = 0.5e-3 // no DLL, weak-bias receivers
	for i := range md.LogicBlocks {
		b := &md.LogicBlocks[i]
		if len(b.ActiveDuring) == 0 {
			// Clock-gated always-on logic: half the gates toggle.
			b.Toggle *= 0.5
		}
	}

	cm, err := drampower.Build(cd)
	if err != nil {
		log.Fatal(err)
	}
	mm, err := drampower.Build(md)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-36s %12s %12s\n", "", "commodity", "mobile")
	cIDD, mIDD := cm.IDD(), mm.IDD()
	rows := []struct {
		name string
		c, m float64
	}{
		{"IDD2N standby [mA]", cIDD.IDD2N.Milliamps(), mIDD.IDD2N.Milliamps()},
		{"IDD0 row cycling [mA]", cIDD.IDD0.Milliamps(), mIDD.IDD0.Milliamps()},
		{"IDD4R gapless reads [mA]", cIDD.IDD4R.Milliamps(), mIDD.IDD4R.Milliamps()},
		{"standby power [mW]", cIDD.IDD2N.Milliamps() * 1.8, mIDD.IDD2N.Milliamps() * 1.2},
		{"energy/bit interleaved [pJ]", cm.EnergyPerBitIDD7().Picojoules(),
			mm.EnergyPerBitIDD7().Picojoules()},
	}
	for _, r := range rows {
		fmt.Printf("%-36s %12.1f %12.1f   (%.0f%%)\n", r.name, r.c, r.m, 100*r.m/r.c)
	}
	fmt.Println("\nThe mobile part wins most where it was designed to: standby.")
}
