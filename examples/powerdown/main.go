// Power-down residency: demonstrate the power-state-aware trace engine on
// an idle-heavy workload. A refresh-only trace spends >99% of its slots
// doing nothing, yet the flat background integral used to charge full
// standby power for every one of them. Inserting precharge power-down
// (pde/pdx) into the idle gaps parks the device at the IDD2P-level draw,
// and the residency-weighted accounting shows the background energy
// collapse while refresh correctness is preserved.
package main

import (
	"fmt"
	"log"

	"drampower"
)

func main() {
	m, err := drampower.Build(drampower.Sample1GbDDR3())
	if err != nil {
		log.Fatal(err)
	}

	// 100 refresh intervals of standby: the idle-heavy workload a memory
	// controller sees on a mostly-sleeping rank.
	plain := drampower.RefreshOnlyWorkload(m, 100)
	// The same trace with every idle gap parked in precharge power-down
	// (minIdle 1 = every gap that fits a legal pde ... pdx window).
	parked := drampower.InsertPowerDown(m, plain, 1)

	fmt.Printf("%-26s %12s %12s %10s %10s\n",
		"trace", "background", "total", "avg power", "pd slots")
	var results []drampower.TraceResult
	for _, w := range []struct {
		name string
		cmds []drampower.Command
	}{
		{"refresh-only (flat idle)", plain},
		{"with power-down windows", parked},
	} {
		res, err := drampower.RunTrace(m, w.cmds)
		if err != nil {
			log.Fatalf("%s: %v", w.name, err)
		}
		results = append(results, res)
		fmt.Printf("%-26s %10.2fuJ %10.2fuJ %8.1fmW %9.1f%%\n",
			w.name, float64(res.Background)*1e6, float64(res.Total)*1e6,
			res.AveragePower.Milliwatts(),
			100*float64(res.PowerDownSlots)/float64(res.Slots))
	}

	saved := 1 - float64(results[1].Background)/float64(results[0].Background)
	fmt.Printf("\nbackground energy saved by power-down: %.0f%%\n", 100*saved)
	fmt.Printf("residency (parked trace): active %d, precharged %d, power-down %d, self-refresh %d slots\n",
		results[1].ActiveSlots, results[1].PrechargedSlots,
		results[1].PowerDownSlots, results[1].SelfRefreshSlots)
	fmt.Printf("power-down draw: %.1f mA (IDD2P %.1f mA; standby IDD2N %.1f mA)\n",
		1e3*float64(results[1].PowerDownBackground)/
			(float64(results[1].PowerDownSlots)/float64(m.D.Spec.ControlClock))/
			float64(m.D.Electrical.Vdd),
		m.IDD2P().Milliamps(), m.IDD().IDD2N.Milliamps())

	// The state machine rejects traffic while the device sleeps.
	s := drampower.NewSimulator(m)
	if err := s.Issue(drampower.Command{Slot: 0, Op: drampower.OpPowerDownEnter}); err != nil {
		log.Fatal(err)
	}
	err = s.Issue(drampower.Command{Slot: 10, Op: drampower.OpActivate, Bank: 0, Row: 1})
	fmt.Printf("\nactivate during power-down -> %v\n", err)
}
