// Quickstart: build the calibrated 1 Gb DDR3-1600 sample device, print its
// datasheet-style IDD currents and evaluate the paper's example pattern
// ("act nop wrt nop rd nop pre nop", Section III.B.4).
package main

import (
	"fmt"
	"log"

	"drampower"
)

func main() {
	// The description holds everything Table I of the paper lists:
	// floorplan, signaling, technology, specification, pattern.
	d := drampower.Sample1GbDDR3()

	// Build resolves the floorplan geometry and all wire/device
	// capacitances (steps 1-2 of the Figure 4 program flow).
	m, err := drampower.Build(d)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("device: %s (%.1f mm²)\n", d.Name, float64(m.DieArea())/1e-6)

	// Datasheet currents (Section IV.A).
	idd := m.IDD()
	fmt.Printf("IDD0  = %6.1f mA\n", idd.IDD0.Milliamps())
	fmt.Printf("IDD2N = %6.1f mA\n", idd.IDD2N.Milliamps())
	fmt.Printf("IDD4R = %6.1f mA\n", idd.IDD4R.Milliamps())
	fmt.Printf("IDD4W = %6.1f mA\n", idd.IDD4W.Milliamps())
	fmt.Printf("IDD7  = %6.1f mA\n", idd.IDD7.Milliamps())

	// Pattern power (steps 3-6 of Figure 4): the description's own loop
	// spends 12.5% of the slots on each command and 50% on nops.
	res := m.Evaluate()
	fmt.Printf("pattern %q:\n", d.Pattern.String())
	fmt.Printf("  power      = %.1f mW\n", res.Power.Milliwatts())
	fmt.Printf("  current    = %.1f mA\n", res.Current.Milliamps())
	fmt.Printf("  energy/bit = %.2f pJ\n", res.EnergyPerBit.Picojoules())

	// Per-operation energies referred to the external supply.
	for _, op := range []drampower.Op{drampower.OpActivate, drampower.OpRead} {
		e := m.Charges(op).EnergyFromVdd(d.Electrical)
		fmt.Printf("  one %-3s costs %.2f nJ\n", op, float64(e)/1e-9)
	}
}
