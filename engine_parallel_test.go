package drampower

// Determinism and cache-coherence tests for the shared evaluation engine:
// the *Parallel entry points must reproduce the serial results exactly for
// any worker count, and the charge ledgers cached at Build time must equal
// a from-scratch recomputation on every device we ship. Run with -race to
// exercise the worker pool under the race detector.

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"drampower/internal/desc"
)

// formatSweep renders sweep results exhaustively so a byte-wise comparison
// catches any ordering or numeric difference.
func formatSweep(rs []SensitivityResult) string {
	s := ""
	for _, r := range rs {
		s += fmt.Sprintf("%s|%.17g|%.17g|%.17g\n",
			r.Name, r.DeltaUpPct, r.DeltaDownPct, r.RangePct)
	}
	return s
}

func TestSweepParallelMatchesSerial(t *testing.T) {
	d := Sample1GbDDR3()
	serial, err := Sweep(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		parallel, err := SweepParallel(d, BatchOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := formatSweep(parallel), formatSweep(serial); got != want {
			t.Errorf("workers=%d: parallel sweep differs from serial:\n got:\n%s\nwant:\n%s",
				workers, got, want)
		}
	}
}

func TestEvaluateSchemesParallelMatchesSerial(t *testing.T) {
	d := Sample1GbDDR3()
	serial, err := EvaluateSchemes(d)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := EvaluateSchemesParallel(d, BatchOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprintf("%+v", parallel), fmt.Sprintf("%+v", serial); got != want {
		t.Errorf("parallel schemes differ from serial:\n got: %s\nwant: %s", got, want)
	}
}

func TestCompareDatasheetParallelMatchesSerial(t *testing.T) {
	serial, err := CompareDatasheetDDR3()
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := CompareDatasheetDDR3Parallel(BatchOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprintf("%+v", parallel), fmt.Sprintf("%+v", serial); got != want {
		t.Errorf("parallel datasheet comparison differs from serial:\n got: %s\nwant: %s", got, want)
	}
}

func TestGenerationTrendMatchesSerial(t *testing.T) {
	serial, err := GenerationTrend(BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(Roadmap()) {
		t.Fatalf("trend points: got %d, want %d", len(serial), len(Roadmap()))
	}
	parallel, err := GenerationTrend(BatchOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprintf("%+v", parallel), fmt.Sprintf("%+v", serial); got != want {
		t.Errorf("parallel trend differs from serial:\n got: %s\nwant: %s", got, want)
	}
}

func TestEvalBatch(t *testing.T) {
	ds := []*Description{Sample1GbDDR3(), Sample1GbDDR3(), Sample1GbDDR3()}
	results, err := EvalBatch(ds, BatchOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ds) {
		t.Fatalf("results: got %d, want %d", len(results), len(ds))
	}
	for i, r := range results {
		if r == nil || r.Power <= 0 {
			t.Errorf("result %d: got %+v, want positive power", i, r)
		}
		if i > 0 && r.Power != results[0].Power {
			t.Errorf("result %d: power %v differs from result 0 (%v)", i, r.Power, results[0].Power)
		}
	}
}

func TestEvalBatchPartialResults(t *testing.T) {
	bad := Sample1GbDDR3()
	bad.Floorplan.BitsPerBitline = 0 // fails validation in Build
	ds := []*Description{Sample1GbDDR3(), bad, Sample1GbDDR3()}
	results, err := EvalBatch(ds, BatchOptions{Workers: 4})
	if err == nil {
		t.Fatal("expected an error for the invalid description")
	}
	if len(results) != len(ds) {
		t.Fatalf("partial results: got %d entries, want %d", len(results), len(ds))
	}
	if results[1] != nil {
		t.Errorf("failed job's result: got %+v, want nil", results[1])
	}
	if results[0] == nil || results[2] == nil {
		t.Errorf("healthy jobs must still evaluate: got [%v, _, %v]", results[0], results[2])
	}
}

// TestChargesLedgerMatchesRecompute verifies the tentpole cache contract on
// every shipped device: for all six operations the ledger cached at Build
// time is item-for-item identical to a from-scratch recomputation, repeated
// Charges calls return the same shared ledger, and the cached per-op
// energy matches the ledger's.
func TestChargesLedgerMatchesRecompute(t *testing.T) {
	files, err := filepath.Glob("testdata/*.dram")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 4 {
		t.Fatalf("testdata devices: got %d, want 4", len(files))
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			d, err := ParseFile(f)
			if err != nil {
				t.Fatal(err)
			}
			m, err := Build(d)
			if err != nil {
				t.Fatal(err)
			}
			for _, op := range desc.AllOps {
				cached := m.Charges(op)
				if again := m.Charges(op); again != cached {
					t.Errorf("%v: repeated Charges returned a different ledger", op)
				}
				fresh := m.RecomputeCharges(op)
				if fresh == cached {
					t.Errorf("%v: RecomputeCharges returned the cached ledger", op)
				}
				if len(fresh.Items) != len(cached.Items) {
					t.Fatalf("%v: item count %d (cached) vs %d (recomputed)",
						op, len(cached.Items), len(fresh.Items))
				}
				for i := range fresh.Items {
					if cached.Items[i] != fresh.Items[i] {
						t.Errorf("%v item %d: cached %+v != recomputed %+v",
							op, i, cached.Items[i], fresh.Items[i])
					}
				}
				if got, want := m.OpEnergy(op), cached.EnergyFromVdd(d.Electrical); got != want {
					t.Errorf("%v: OpEnergy %v != ledger energy %v", op, got, want)
				}
			}
			bg := m.Background()
			fresh := m.RecomputeBackground()
			if bg.Power != fresh.Power {
				t.Errorf("background power: cached %v != recomputed %v", bg.Power, fresh.Power)
			}
		})
	}
}

func TestParseErrorSurfacesThroughPublicAPI(t *testing.T) {
	_, err := ParseString("Technology\nFluxCapacitance 1fF\n")
	if err == nil {
		t.Fatal("expected error")
	}
	var pe *desc.ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T, want *desc.ParseError", err)
	}
	if pe.Line != 2 || pe.Col != 1 {
		t.Errorf("position: got line %d col %d, want line 2 col 1", pe.Line, pe.Col)
	}
}
