package drampower

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// The public API test doubles as executable documentation: everything the
// README shows must work through the facade alone.

func TestQuickstartFlow(t *testing.T) {
	d := Sample1GbDDR3()
	m, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	idd := m.IDD()
	if idd.IDD0 <= 0 || idd.IDD4R <= 0 {
		t.Fatalf("IDD: %+v", idd)
	}
	res := m.Evaluate()
	if res.Power <= 0 || res.EnergyPerBit <= 0 {
		t.Fatalf("pattern result: %+v", res)
	}
}

func TestParseRoundTripThroughFacade(t *testing.T) {
	d := Sample1GbDDR3()
	src := Format(d)
	back, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if Format(back) != src {
		t.Error("facade round trip not a fixpoint")
	}
	if _, err := Parse(strings.NewReader(src)); err != nil {
		t.Errorf("Parse: %v", err)
	}
}

func TestRoadmapThroughFacade(t *testing.T) {
	nodes := Roadmap()
	if len(nodes) < 12 {
		t.Fatalf("roadmap: %d nodes", len(nodes))
	}
	n, err := NodeFor(55)
	if err != nil {
		t.Fatal(err)
	}
	if n.Interface != DDR3 {
		t.Errorf("55nm interface: %v", n.Interface)
	}
	m, err := Build(n.Description())
	if err != nil {
		t.Fatal(err)
	}
	if m.IDD().IDD0 <= 0 {
		t.Error("roadmap device has no IDD0")
	}
}

func TestDeviceForThroughFacade(t *testing.T) {
	dv, err := DeviceFor(65, DDR3, 1<<30, 8, 1.066)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build(dv.Build())
	if err != nil {
		t.Fatal(err)
	}
	if m.D.Spec.IOWidth != 8 {
		t.Errorf("IO width: %d", m.D.Spec.IOWidth)
	}
}

func TestAnalysesThroughFacade(t *testing.T) {
	d := Sample1GbDDR3()
	sens, err := Sweep(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(sens) == 0 || sens[0].RangePct <= 0 {
		t.Error("sweep returned nothing")
	}
	sch, err := EvaluateSchemes(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(sch) < 5 {
		t.Errorf("schemes: %d results", len(sch))
	}
	ddr2, err := CompareDatasheetDDR2()
	if err != nil {
		t.Fatal(err)
	}
	ddr3, err := CompareDatasheetDDR3()
	if err != nil {
		t.Fatal(err)
	}
	if len(ddr2) == 0 || len(ddr3) == 0 {
		t.Error("datasheet comparisons empty")
	}
}

func TestTraceThroughFacade(t *testing.T) {
	m, err := Build(Sample1GbDDR3())
	if err != nil {
		t.Fatal(err)
	}
	cmds := RandomClosedPageWorkload(m, 50, 0.5, 1)
	res, err := RunTrace(m, cmds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bits == 0 || res.EnergyPerBit <= 0 {
		t.Errorf("trace result: %+v", res)
	}
	st := StreamingWorkload(m, 100, 1.0, 2)
	if _, err := RunTrace(m, st); err != nil {
		t.Errorf("streaming: %v", err)
	}
	s := NewSimulator(m)
	if err := s.Issue(Command{Slot: 0, Op: OpActivate, Bank: 0, Row: 3}); err != nil {
		t.Errorf("simulator: %v", err)
	}
}

func TestReplayTraceThroughFacade(t *testing.T) {
	m, err := Build(Sample1GbDDR3())
	if err != nil {
		t.Fatal(err)
	}
	banks := m.D.Spec.Banks()
	per := [][]Command{
		RandomClosedPageWorkload(m, 80, 0.5, 1),
		StreamingWorkload(m, 200, 0.7, 2),
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, InterleaveChannels(per, banks)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	res, err := ReplayTrace(m, bytes.NewReader(data), ReplayOptions{Channels: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bits == 0 || res.EnergyPerBit <= 0 {
		t.Errorf("replay result: %+v", res)
	}
	if got := res.Counts[OpActivate]; got != 88 { // 80 closed-page + 8 streaming bank-opens
		t.Errorf("merged activate count: got %d, want 88", got)
	}

	// The streaming scanner sees the same commands WriteTrace emitted.
	sc := NewTraceScanner(bytes.NewReader(data))
	n := 0
	for sc.Scan() {
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if want := len(per[0]) + len(per[1]); n != want {
		t.Errorf("scanner saw %d commands, want %d", n, want)
	}
}

func TestTraceParseErrorThroughFacade(t *testing.T) {
	m, err := Build(Sample1GbDDR3())
	if err != nil {
		t.Fatal(err)
	}
	_, err = ReplayTrace(m, strings.NewReader("0 act 0 1\nnot a command\n"), ReplayOptions{})
	var pe *TraceParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T (%v), want *TraceParseError", err, err)
	}
	if pe.Line != 2 {
		t.Errorf("parse error line: got %d, want 2", pe.Line)
	}
}
