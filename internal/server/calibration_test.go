package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"drampower/internal/desc"
)

const testOverlay = "Calibration measured\nidd0 = 58mA\nop.rd.energy *= 1.07\n"

func TestCalibratedKeyDistinguishesOverlays(t *testing.T) {
	d := desc.Sample1GbDDR3()
	ov1, err := desc.ParseOverlayString("idd0 = 58mA\n")
	if err != nil {
		t.Fatal(err)
	}
	ov2, err := desc.ParseOverlayString("idd0 = 59mA\n")
	if err != nil {
		t.Fatal(err)
	}
	base := DescriptorKey(d)
	k0 := CalibratedKey(d, nil)
	kEmpty := CalibratedKey(d, &desc.Overlay{Name: "noop"})
	k1 := CalibratedKey(d, ov1)
	k2 := CalibratedKey(d, ov2)
	if k0 != base || kEmpty != base {
		t.Errorf("empty overlays must collapse onto DescriptorKey: %s / %s vs %s", k0, kEmpty, base)
	}
	if k1 == base || k2 == base || k1 == k2 {
		t.Errorf("calibrated keys not distinct: base=%s k1=%s k2=%s", base, k1, k2)
	}
}

// TestEvaluateCalibrationBodySection checks a combined descriptor +
// Calibration body: the response flags the calibration, the model key
// differs from the uncalibrated one, and the cache serves both models
// without cross-contamination.
func TestEvaluateCalibrationBodySection(t *testing.T) {
	s, hs := newTestServer(t, Options{})
	src := desc.Format(desc.Sample1GbDDR3())

	resp, body := post(t, hs.URL+"/v1/evaluate", src)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plain: status %d: %s", resp.StatusCode, body)
	}
	var plain EvaluateResponse
	if err := json.Unmarshal(body, &plain); err != nil {
		t.Fatal(err)
	}

	resp, body = post(t, hs.URL+"/v1/evaluate", src+"\n"+testOverlay)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("calibrated: status %d: %s", resp.StatusCode, body)
	}
	var calib EvaluateResponse
	if err := json.Unmarshal(body, &calib); err != nil {
		t.Fatal(err)
	}

	if !calib.Calibrated || calib.Calibration != "measured" {
		t.Errorf("calibrated flags wrong: %+v", calib)
	}
	if plain.Calibrated || plain.Calibration != "" {
		t.Errorf("plain response carries calibration flags: %+v", plain)
	}
	if calib.ModelKey == plain.ModelKey {
		t.Error("calibrated and uncalibrated responses share a model key")
	}
	if calib.IDDMA.IDD0 != 58 {
		t.Errorf("calibrated idd0 = %v mA, want 58", calib.IDDMA.IDD0)
	}
	if calib.IDDMA.IDD0 == plain.IDDMA.IDD0 {
		t.Error("calibration did not move idd0")
	}
	if s.cache.len() != 2 {
		t.Errorf("cache holds %d entries, want 2", s.cache.len())
	}

	// Re-posting the plain descriptor must hit the uncalibrated entry and
	// reproduce the original bytes — no cross-contamination.
	resp, again := post(t, hs.URL+"/v1/evaluate", src)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay: status %d", resp.StatusCode)
	}
	var replay EvaluateResponse
	if err := json.Unmarshal(again, &replay); err != nil {
		t.Fatal(err)
	}
	if replay.ModelKey != plain.ModelKey || replay.IDDMA.IDD0 != plain.IDDMA.IDD0 {
		t.Error("uncalibrated model contaminated by calibrated build")
	}
}

func TestEvaluateCalibrationQueryParam(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	q := url.QueryEscape("idd0 = 58mA;op.rd.energy *= 1.07")
	resp, body := post(t, hs.URL+"/v1/evaluate?calibration="+q, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out EvaluateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Calibrated || out.IDDMA.IDD0 != 58 {
		t.Errorf("query calibration not applied: %+v", out)
	}

	// Query + body section together is ambiguous.
	src := desc.Format(desc.Sample1GbDDR3())
	resp, body = post(t, hs.URL+"/v1/evaluate?calibration="+q, src+"\n"+testOverlay)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("query+body: status %d, want 400: %s", resp.StatusCode, body)
	}

	// A bad overlay is a positioned 400.
	resp, body = post(t, hs.URL+"/v1/evaluate?calibration="+url.QueryEscape("bogus = 1mA"), "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad overlay: status %d: %s", resp.StatusCode, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Line < 1 {
		t.Errorf("bad overlay error not positioned: %s", body)
	}
}

func TestServerDefaultCalibration(t *testing.T) {
	ov, err := desc.ParseOverlayString("idd0 = 58mA\n")
	if err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, Options{Calibration: ov})
	resp, body := post(t, hs.URL+"/v1/evaluate", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out EvaluateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Calibrated || out.IDDMA.IDD0 != 58 {
		t.Errorf("server default calibration not applied: %+v", out)
	}

	// A request-scoped overlay overrides the server default.
	q := url.QueryEscape("idd0 = 60mA")
	resp, body = post(t, hs.URL+"/v1/evaluate?calibration="+q, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.IDDMA.IDD0 != 60 {
		t.Errorf("request overlay did not override default: %+v", out)
	}
}

func TestSweepCalibrationFlag(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	src := desc.Format(desc.Sample1GbDDR3())
	resp, body := post(t, hs.URL+"/v1/sweep?top=3", src+"\nCalibration\nstandby *= 0.9\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out SweepResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Calibrated || len(out.Rows) != 3 {
		t.Errorf("calibrated sweep response: %+v", out)
	}
}

func TestSchemesRejectCalibration(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	src := desc.Format(desc.Sample1GbDDR3())
	resp, body := post(t, hs.URL+"/v1/schemes", src+"\n"+testOverlay)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("body overlay: status %d, want 400: %s", resp.StatusCode, body)
	}
	resp, body = post(t, hs.URL+"/v1/schemes?calibration="+url.QueryEscape("idd0=58mA"), src)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("query overlay: status %d, want 400: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "not supported") {
		t.Errorf("rejection does not explain itself: %s", body)
	}
}

// TestTraceCalibration checks the replay path: a calibration query
// parameter builds a calibrated model, the response is flagged, and a
// standby scaling moves the background energy. model= with calibration=
// is rejected as contradictory.
func TestTraceCalibration(t *testing.T) {
	s, hs := newTestServer(t, Options{})
	traceText := "0 act 0 1\n11 rd 0 1\n28 pre 0 1\n100 nop\n"

	resp, body := post(t, hs.URL+"/v1/trace", traceText)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plain: status %d: %s", resp.StatusCode, body)
	}
	var plain TraceResponse
	if err := json.Unmarshal(body, &plain); err != nil {
		t.Fatal(err)
	}

	q := url.QueryEscape("standby *= 0.5")
	resp, body = post(t, hs.URL+"/v1/trace?calibration="+q, traceText)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("calibrated: status %d: %s", resp.StatusCode, body)
	}
	var calib TraceResponse
	if err := json.Unmarshal(body, &calib); err != nil {
		t.Fatal(err)
	}
	if !calib.Calibrated || plain.Calibrated {
		t.Errorf("calibrated flags: plain=%v calib=%v", plain.Calibrated, calib.Calibrated)
	}
	if calib.ModelKey == plain.ModelKey {
		t.Error("calibrated trace shares the uncalibrated model key")
	}
	if got, want := calib.BackgroundJ, plain.BackgroundJ*0.5; got <= want*0.999999 || got >= want*1.000001 {
		t.Errorf("calibrated background energy %v, want %v", got, want)
	}
	if calib.CommandEnergyJ != plain.CommandEnergyJ {
		t.Error("standby calibration moved command energy")
	}
	if s.cache.len() != 2 {
		t.Errorf("cache holds %d entries, want 2", s.cache.len())
	}

	// model= + calibration= is contradictory.
	resp, body = post(t, hs.URL+"/v1/trace?model="+plain.ModelKey+"&calibration="+q, traceText)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("model+calibration: status %d, want 400: %s", resp.StatusCode, body)
	}
}

// TestCalibratedBuildsCounter checks the dramserved_calibrated_builds_total
// metric counts only overlay-applying builds, once per cache miss.
func TestCalibratedBuildsCounter(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	metric := func() string {
		resp, err := http.Get(hs.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(raw), "\n") {
			if strings.HasPrefix(line, "dramserved_calibrated_builds_total") {
				return line
			}
		}
		return ""
	}

	post(t, hs.URL+"/v1/evaluate", "")
	if got := metric(); !strings.HasSuffix(got, " 0") {
		t.Errorf("after plain build: %q, want 0", got)
	}
	q := url.QueryEscape("idd0 = 58mA")
	post(t, hs.URL+"/v1/evaluate?calibration="+q, "")
	post(t, hs.URL+"/v1/evaluate?calibration="+q, "") // cache hit, no build
	if got := metric(); !strings.HasSuffix(got, " 1") {
		t.Errorf("after calibrated build + hit: %q, want 1", got)
	}
}
