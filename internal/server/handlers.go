package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"drampower/internal/core"
	"drampower/internal/ctl"
	"drampower/internal/desc"
	"drampower/internal/engine"
	"drampower/internal/metrics"
	"drampower/internal/scaling"
	"drampower/internal/schemes"
	"drampower/internal/sensitivity"
	"drampower/internal/trace"
)

// errorResponse is the uniform error body. Parse failures carry the
// 1-based input position, mirroring the CLI diagnostics.
type errorResponse struct {
	Error string `json:"error"`
	Line  int    `json:"line,omitempty"`
	Col   int    `json:"col,omitempty"`
}

// writeError emits a JSON error body with the given status.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// statusClientClosedRequest is nginx's non-standard 499: the client went
// away before we finished. Nobody receives the response body, but the
// status keeps access logs and the per-code request counter from filing
// client disconnects under 504 "request timed out".
const statusClientClosedRequest = 499

// writeParseAwareError maps an evaluation error to a response: positioned
// parse errors become 400 with line/col, timeouts 504, client
// cancellations 499, body-size limits 413, anything else the provided
// fallback status. The stream-failure checks run before the
// trace.ParseError one because the scanner wraps reader errors in a
// positioned ParseError: a trace upload that dies on the request
// deadline, the client hanging up or the body cap is an I/O outcome, not
// bad trace text.
func writeParseAwareError(w http.ResponseWriter, err error, fallback int) {
	var dpe *desc.ParseError
	if errors.As(err, &dpe) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error(), Line: dpe.Line, Col: dpe.Col})
		return
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("request body exceeds the %d-byte limit", mbe.Limit))
		return
	}
	if errors.Is(err, context.DeadlineExceeded) {
		writeError(w, http.StatusGatewayTimeout, "request timed out")
		return
	}
	if errors.Is(err, context.Canceled) {
		writeError(w, statusClientClosedRequest, "client closed request")
		return
	}
	var tpe *trace.ParseError
	if errors.As(err, &tpe) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error(), Line: tpe.Line, Col: tpe.Col})
		return
	}
	var cpe *ctl.ParseError
	if errors.As(err, &cpe) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error(), Line: cpe.Line, Col: cpe.Col})
		return
	}
	writeError(w, fallback, err.Error())
}

// jsonBufPool recycles response encoding buffers across requests: the
// cached /v1/evaluate path allocates a fresh marshal buffer per response
// otherwise, the largest single term of its allocation profile.
var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledBufBytes caps the buffers the pool retains; a one-off giant
// response (a long sweep, a roadmap dump) shouldn't pin its buffer for
// the process lifetime.
const maxPooledBufBytes = 1 << 20

// writeJSON encodes v with a trailing newline through a pooled buffer.
// Encoding is deterministic (struct order fixed, map keys sorted by
// encoding/json) and byte-identical to json.Marshal plus '\n', which is
// what lets tests assert byte-identical responses across cache
// hits/misses — and across this pooling.
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		jsonBufPool.Put(buf)
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf.Bytes())
	if buf.Cap() <= maxPooledBufBytes {
		jsonBufPool.Put(buf)
	}
}

// readDocument reads and parses the request body as a combined document:
// descriptor text optionally followed by a Calibration section (see
// desc.ParseDocument). A body with no descriptor lines — empty,
// whitespace, or calibration-only — selects the built-in 1 Gb DDR3
// sample (handy for smoke tests and examples). The overlay is nil when
// the body has no Calibration section. The bool result reports success;
// on failure the response has already been written.
func (s *Server) readDocument(w http.ResponseWriter, r *http.Request) (*desc.Description, *desc.Overlay, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxDescriptorBytes))
	if err != nil {
		writeParseAwareError(w, err, http.StatusBadRequest)
		return nil, nil, false
	}
	d, ov, err := desc.ParseDocument(bytes.NewReader(body))
	if err != nil {
		writeParseAwareError(w, err, http.StatusBadRequest)
		return nil, nil, false
	}
	if d == nil {
		d = desc.Sample1GbDDR3()
	}
	return d, ov, true
}

// effectiveOverlay resolves the calibration applying to a request, in
// precedence order: the calibration query parameter (';' accepted as a
// line separator so an overlay fits in a URL), the request body's
// Calibration section, then the server-wide default (Options.Calibration).
// Supplying both the query parameter and a body section is ambiguous and
// rejected. The bool result reports success; on failure the response has
// been written.
func (s *Server) effectiveOverlay(w http.ResponseWriter, r *http.Request, bodyOv *desc.Overlay) (*desc.Overlay, bool) {
	q := r.URL.Query().Get("calibration")
	if q == "" {
		if bodyOv != nil {
			return bodyOv, true
		}
		return s.opts.Calibration, true
	}
	if bodyOv != nil {
		writeError(w, http.StatusBadRequest,
			"calibration supplied both as a query parameter and a body Calibration section; pick one")
		return nil, false
	}
	ov, err := desc.ParseOverlayString(strings.ReplaceAll(q, ";", "\n"))
	if err != nil {
		writeParseAwareError(w, err, http.StatusBadRequest)
		return nil, false
	}
	return ov, true
}

// getModel returns the (possibly calibrated) model for the description
// and overlay through the model cache, keyed by CalibratedKey so a
// calibrated model never shares an entry with its uncalibrated base.
func (s *Server) getModel(d *desc.Description, ov *desc.Overlay) (string, *core.Model, error) {
	key := CalibratedKey(d, ov)
	m, err := s.cache.get(key, func() (*core.Model, error) {
		if !ov.Empty() {
			s.calibratedBuilds.Inc()
		}
		return core.BuildCalibrated(d, ov)
	})
	return key, m, err
}

// checkCtx reports whether the request is still live, answering 504 when
// its deadline already expired or 499 when the client hung up (no point
// burning CPU on a dead request either way).
func checkCtx(w http.ResponseWriter, r *http.Request) bool {
	if err := r.Context().Err(); err != nil {
		writeParseAwareError(w, err, http.StatusInternalServerError)
		return false
	}
	return true
}

// EvaluateResponse is the POST /v1/evaluate body: the library's
// Build+Evaluate results plus the model's cache key, which /v1/trace
// accepts to replay traces against an already-hot model.
type EvaluateResponse struct {
	ModelKey     string  `json:"model_key"`
	Name         string  `json:"name"`
	DieAreaMM2   float64 `json:"die_area_mm2"`
	BitsPerBurst int     `json:"bits_per_burst"`
	Pattern      string  `json:"pattern"`
	// Calibrated marks a model built with a non-empty calibration overlay;
	// Calibration carries the overlay's name when it has one. Both are
	// omitted for uncalibrated models, keeping those responses byte-
	// identical to pre-calibration servers.
	Calibrated  bool            `json:"calibrated,omitempty"`
	Calibration string          `json:"calibration,omitempty"`
	IDDMA       IDDResponse     `json:"idd_ma"`
	Result      PatternResponse `json:"result"`
}

// IDDResponse reports the datasheet currents in milliamps.
type IDDResponse struct {
	IDD0  float64 `json:"idd0"`
	IDD2N float64 `json:"idd2n"`
	IDD2P float64 `json:"idd2p"`
	IDD3N float64 `json:"idd3n"`
	IDD4R float64 `json:"idd4r"`
	IDD4W float64 `json:"idd4w"`
	IDD5  float64 `json:"idd5"`
	IDD6  float64 `json:"idd6"`
	IDD7  float64 `json:"idd7"`
}

// PatternResponse is core.PatternResult in JSON-friendly SI scalars.
type PatternResponse struct {
	BackgroundW    float64            `json:"background_w"`
	CommandW       float64            `json:"command_w"`
	PowerW         float64            `json:"power_w"`
	CurrentA       float64            `json:"current_a"`
	BitsPerLoop    int                `json:"bits_per_loop"`
	EnergyPerBitPJ float64            `json:"energy_per_bit_pj"`
	ByOpW          map[string]float64 `json:"by_op_w"`
	ByGroupW       map[string]float64 `json:"by_group_w"`
	ByDomainW      map[string]float64 `json:"by_domain_w"`
}

// EvaluateResponseFor assembles the /v1/evaluate response from a built
// model. It is the single encoding path for both the handler and the
// bit-identity tests: whatever bytes the server sends are exactly
// json.Marshal of this value over a direct library call's results.
func EvaluateResponseFor(m *core.Model, key string) EvaluateResponse {
	idd := m.IDD()
	res := m.Evaluate()
	out := EvaluateResponse{
		ModelKey:     key,
		Name:         m.D.Name,
		DieAreaMM2:   float64(m.DieArea()) / 1e-6,
		BitsPerBurst: m.BitsPerBurst(),
		Pattern:      m.D.Pattern.String(),
		Calibrated:   m.Calibrated(),
		Calibration:  m.CalibrationName(),
		IDDMA: IDDResponse{
			IDD0:  idd.IDD0.Milliamps(),
			IDD2N: idd.IDD2N.Milliamps(),
			IDD2P: m.IDD2P().Milliamps(),
			IDD3N: idd.IDD3N.Milliamps(),
			IDD4R: idd.IDD4R.Milliamps(),
			IDD4W: idd.IDD4W.Milliamps(),
			IDD5:  idd.IDD5.Milliamps(),
			IDD6:  m.IDD6().Milliamps(),
			IDD7:  idd.IDD7.Milliamps(),
		},
		Result: PatternResponse{
			BackgroundW:    float64(res.Background),
			CommandW:       float64(res.Command),
			PowerW:         float64(res.Power),
			CurrentA:       float64(res.Current),
			BitsPerLoop:    res.BitsPerLoop,
			EnergyPerBitPJ: float64(res.EnergyPerBit) * 1e12,
			ByOpW:          make(map[string]float64, len(res.ByOp)),
			ByGroupW:       make(map[string]float64, len(res.ByGroup)),
			ByDomainW:      make(map[string]float64, len(res.ByDomain)),
		},
	}
	for op, p := range res.ByOp {
		out.Result.ByOpW[op.String()] = float64(p)
	}
	for g, p := range res.ByGroup {
		out.Result.ByGroupW[g.String()] = float64(p)
	}
	for dom, p := range res.ByDomain {
		out.Result.ByDomainW[dom.String()] = float64(p)
	}
	return out
}

// handleEvaluate: descriptor text in, full evaluation out, through the
// model cache — and, for byte-identical bodies, through the document
// cache, which skips the parse and canonical re-rendering that otherwise
// dominate a cache-hit request's allocations.
func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxDescriptorBytes))
	if err != nil {
		writeParseAwareError(w, err, http.StatusBadRequest)
		return
	}
	q := r.URL.Query()
	// With no overriding query parameters, the resolved (description,
	// overlay, key) triple is a pure function of the body bytes, so it can
	// be memoized by body hash. A pattern or calibration parameter takes
	// the full path: pattern mutates the description (cached entries are
	// shared and must stay immutable) and calibration changes the key.
	plain := q.Get("calibration") == "" && q.Get("pattern") == ""
	var sum [sha256.Size]byte
	if plain {
		sum = sha256.Sum256(body)
		if ent, ok := s.docs.get(sum); ok {
			if !checkCtx(w, r) {
				return
			}
			m, err := s.cache.get(ent.key, func() (*core.Model, error) {
				if !ent.ov.Empty() {
					s.calibratedBuilds.Inc()
				}
				return core.BuildCalibrated(ent.d, ent.ov)
			})
			if err != nil {
				writeParseAwareError(w, err, http.StatusUnprocessableEntity)
				return
			}
			writeJSON(w, http.StatusOK, EvaluateResponseFor(m, ent.key))
			return
		}
	}
	d, bodyOv, err := desc.ParseDocument(bytes.NewReader(body))
	if err != nil {
		writeParseAwareError(w, err, http.StatusBadRequest)
		return
	}
	if d == nil {
		d = desc.Sample1GbDDR3()
	}
	ov, ok := s.effectiveOverlay(w, r, bodyOv)
	if !ok {
		return
	}
	if p := q.Get("pattern"); p != "" {
		loop, err := parsePattern(p)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad pattern: %v", err))
			return
		}
		d.Pattern = desc.Pattern{Loop: loop}
	}
	if !checkCtx(w, r) {
		return
	}
	key, m, err := s.getModel(d, ov)
	if err != nil {
		writeParseAwareError(w, err, http.StatusUnprocessableEntity)
		return
	}
	if plain {
		s.docs.put(sum, docEntry{d: d, ov: ov, key: key})
	}
	writeJSON(w, http.StatusOK, EvaluateResponseFor(m, key))
}

// parsePattern decodes a space-separated op list ("act nop rd pre").
func parsePattern(s string) ([]desc.Op, error) {
	var loop []desc.Op
	for _, tok := range strings.Fields(s) {
		op, err := desc.ParseOp(tok)
		if err != nil {
			return nil, err
		}
		loop = append(loop, op)
	}
	if len(loop) == 0 {
		return nil, fmt.Errorf("empty pattern")
	}
	return loop, nil
}

// SweepResponse is the POST /v1/sweep body.
type SweepResponse struct {
	Name string `json:"name"`
	// Calibrated marks a sweep run with a non-empty calibration overlay
	// applied to the base and every variant (omitted otherwise).
	Calibrated bool       `json:"calibrated,omitempty"`
	Rows       []SweepRow `json:"rows"`
}

// SweepRow is one Figure 10 bar.
type SweepRow struct {
	Parameter    string  `json:"parameter"`
	RangePct     float64 `json:"range_pct"`
	DeltaUpPct   float64 `json:"delta_up_pct"`
	DeltaDownPct float64 `json:"delta_down_pct"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	d, bodyOv, ok := s.readDocument(w, r)
	if !ok {
		return
	}
	ov, ok := s.effectiveOverlay(w, r, bodyOv)
	if !ok {
		return
	}
	if !checkCtx(w, r) {
		return
	}
	all, err := sensitivity.SweepCalibratedOpts(d, ov, engine.Options{Pool: s.pool})
	if err != nil {
		writeParseAwareError(w, err, http.StatusUnprocessableEntity)
		return
	}
	rows := sensitivity.ChartRows(all)
	if topS := r.URL.Query().Get("top"); topS != "" {
		top, err := strconv.Atoi(topS)
		if err != nil || top < 1 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad top %q (want positive integer)", topS))
			return
		}
		rows = sensitivity.Top(rows, top)
	}
	out := SweepResponse{Name: d.Name, Calibrated: !ov.Empty(), Rows: make([]SweepRow, len(rows))}
	for i, row := range rows {
		out.Rows[i] = SweepRow{row.Name, row.RangePct, row.DeltaUpPct, row.DeltaDownPct}
	}
	writeJSON(w, http.StatusOK, out)
}

// SchemesResponse is the POST /v1/schemes body.
type SchemesResponse struct {
	Name string      `json:"name"`
	Rows []SchemeRow `json:"rows"`
}

// SchemeRow is one Section V comparison row (baseline first).
type SchemeRow struct {
	Scheme         string  `json:"scheme"`
	Source         string  `json:"source,omitempty"`
	EnergyPerBitPJ float64 `json:"energy_per_bit_pj"`
	EnergyDeltaPct float64 `json:"energy_delta_pct"`
	DieAreaMM2     float64 `json:"die_area_mm2"`
	AreaDeltaPct   float64 `json:"area_delta_pct"`
	IDD7MA         float64 `json:"idd7_ma"`
}

func (s *Server) handleSchemes(w http.ResponseWriter, r *http.Request) {
	d, bodyOv, ok := s.readDocument(w, r)
	if !ok {
		return
	}
	// The scheme comparison rewrites each description (banking, prefetch,
	// interface variants), so a calibration measured on the baseline would
	// silently mislabel every variant; reject rather than mislead. The
	// server-wide default overlay is likewise not applied here.
	if bodyOv != nil || r.URL.Query().Get("calibration") != "" {
		writeError(w, http.StatusBadRequest,
			"calibration is not supported for /v1/schemes: overlays calibrate one device, schemes rebuild many")
		return
	}
	if !checkCtx(w, r) {
		return
	}
	rows, err := schemes.EvaluateOpts(d, engine.Options{Pool: s.pool})
	if err != nil {
		writeParseAwareError(w, err, http.StatusUnprocessableEntity)
		return
	}
	out := SchemesResponse{Name: d.Name, Rows: make([]SchemeRow, len(rows))}
	for i, row := range rows {
		out.Rows[i] = SchemeRow{
			Scheme:         row.Name,
			Source:         row.Source,
			EnergyPerBitPJ: row.EnergyPerBit.Picojoules(),
			EnergyDeltaPct: row.EnergyDeltaPct,
			DieAreaMM2:     row.DieAreaMM2,
			AreaDeltaPct:   row.AreaDeltaPct,
			IDD7MA:         row.IDD7.Milliamps(),
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// TraceResponse is the POST /v1/trace body: the merged replay accounting,
// including the per-power-state residency and background breakdown (over
// all channels, so the four slot counters sum to channels x slots).
type TraceResponse struct {
	ModelKey string `json:"model_key"`
	// Calibrated marks a replay against a calibrated model (omitted
	// otherwise, keeping uncalibrated responses byte-identical).
	Calibrated       bool             `json:"calibrated,omitempty"`
	Channels         int              `json:"channels"`
	Commands         int64            `json:"commands"`
	Slots            int64            `json:"slots"`
	DurationSeconds  float64          `json:"duration_seconds"`
	CommandEnergyJ   float64          `json:"command_energy_j"`
	BackgroundJ      float64          `json:"background_energy_j"`
	TotalJ           float64          `json:"total_energy_j"`
	AveragePowerW    float64          `json:"average_power_w"`
	AverageCurrentA  float64          `json:"average_current_a"`
	Bits             int64            `json:"bits"`
	EnergyPerBitPJ   float64          `json:"energy_per_bit_pj"`
	BusUtilization   float64          `json:"bus_utilization"`
	ActiveSlots      int64            `json:"active_slots"`
	PrechargedSlots  int64            `json:"precharged_slots"`
	PowerDownSlots   int64            `json:"power_down_slots"`
	SelfRefreshSlots int64            `json:"self_refresh_slots"`
	ActiveBgJ        float64          `json:"active_background_j"`
	PrechargedBgJ    float64          `json:"precharged_background_j"`
	PowerDownBgJ     float64          `json:"power_down_background_j"`
	SelfRefreshBgJ   float64          `json:"self_refresh_background_j"`
	Counts           map[string]int64 `json:"counts"`
}

// TraceResponseFor converts a replay result (shared with the bit-identity
// tests, like EvaluateResponseFor).
func TraceResponseFor(res trace.Result, key string, channels int) TraceResponse {
	out := TraceResponse{
		ModelKey:         key,
		Channels:         channels,
		Slots:            res.Slots,
		DurationSeconds:  float64(res.Duration),
		CommandEnergyJ:   float64(res.CommandEnergy),
		BackgroundJ:      float64(res.Background),
		TotalJ:           float64(res.Total),
		AveragePowerW:    float64(res.AveragePower),
		AverageCurrentA:  float64(res.AverageCurrent),
		Bits:             res.Bits,
		EnergyPerBitPJ:   float64(res.EnergyPerBit) * 1e12,
		BusUtilization:   res.BusUtilization,
		ActiveSlots:      res.ActiveSlots,
		PrechargedSlots:  res.PrechargedSlots,
		PowerDownSlots:   res.PowerDownSlots,
		SelfRefreshSlots: res.SelfRefreshSlots,
		ActiveBgJ:        float64(res.ActiveBackground),
		PrechargedBgJ:    float64(res.PrechargedBackground),
		PowerDownBgJ:     float64(res.PowerDownBackground),
		SelfRefreshBgJ:   float64(res.SelfRefreshBackground),
		Counts:           make(map[string]int64, len(res.Counts)),
	}
	for op, n := range res.Counts {
		out.Commands += n
		out.Counts[trace.OpName(op)] = n
	}
	return out
}

// TraceBinaryContentType is the media type of a dtb binary trace body on
// POST /v1/trace. With this Content-Type the body is decoded strictly as
// dtb (a malformed header is a 400, not a fallback to text); any other
// type sniffs the encoding from the first byte.
const TraceBinaryContentType = "application/x-dram-trace"

// parseChannels reads the channels query parameter (default 1). The bool
// result reports success; on failure the response has been written.
func parseChannels(w http.ResponseWriter, q string) (int, bool) {
	if q == "" {
		return 1, true
	}
	c, err := strconv.Atoi(q)
	if err != nil || c < 1 {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad channels %q (want positive integer)", q))
		return 0, false
	}
	return c, true
}

// selectModel resolves the model a trace-style request evaluates against,
// from its query parameters: model=<key> references a cached model from a
// prior /v1/evaluate, node=<nm> builds a roadmap device, and neither
// selects the built-in sample. The body of these requests is trace text,
// so calibration only arrives via the query parameter (or the server
// default); model= references an already-built model whose calibration —
// if any — is baked into its key, so combining it with a fresh overlay is
// contradictory and rejected. The bool result reports success; on failure
// the response has been written.
func (s *Server) selectModel(w http.ResponseWriter, r *http.Request) (string, *core.Model, bool) {
	q := r.URL.Query()
	switch {
	case q.Get("model") != "":
		if q.Get("calibration") != "" {
			writeError(w, http.StatusBadRequest,
				"model= references an already-built model; its calibration is part of the key, calibration= cannot apply")
			return "", nil, false
		}
		key := q.Get("model")
		m := s.cache.peek(key)
		if m == nil {
			writeError(w, http.StatusNotFound,
				fmt.Sprintf("model %q not cached; POST its descriptor to /v1/evaluate first", key))
			return "", nil, false
		}
		return key, m, true
	case q.Get("node") != "":
		nm, err := strconv.ParseFloat(q.Get("node"), 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad node %q (want feature size in nm)", q.Get("node")))
			return "", nil, false
		}
		n, err := scaling.NodeFor(nm)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return "", nil, false
		}
		ov, ok := s.effectiveOverlay(w, r, nil)
		if !ok {
			return "", nil, false
		}
		key, m, err := s.getModel(n.Description(), ov)
		if err != nil {
			writeParseAwareError(w, err, http.StatusUnprocessableEntity)
			return "", nil, false
		}
		return key, m, true
	default:
		ov, ok := s.effectiveOverlay(w, r, nil)
		if !ok {
			return "", nil, false
		}
		key, m, err := s.getModel(desc.Sample1GbDDR3(), ov)
		if err != nil {
			writeParseAwareError(w, err, http.StatusUnprocessableEntity)
			return "", nil, false
		}
		return key, m, true
	}
}

// handleTrace streams the request body (trace text, or dtb binary — see
// TraceBinaryContentType) through the replayer against a model selected
// by query parameter (see selectModel). The body never materializes: it
// flows from the socket through the scanner into the per-channel
// simulators in bounded rounds, with decode pipelined against simulation.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	channels, ok := parseChannels(w, r.URL.Query().Get("channels"))
	if !ok {
		return
	}
	key, m, ok := s.selectModel(w, r)
	if !ok {
		return
	}

	body := http.MaxBytesReader(w, r.Body, s.opts.MaxTraceBytes)
	rd := io.Reader(&ctxReader{ctx: r.Context(), r: body})
	var src trace.Source
	if ct, _, _ := strings.Cut(r.Header.Get("Content-Type"), ";"); strings.TrimSpace(ct) == TraceBinaryContentType {
		src = trace.NewBinaryScanner(rd)
	} else {
		src = trace.NewSource(rd)
	}
	rep := trace.NewReplayer(m, trace.ReplayOptions{Channels: channels, Pool: s.pool})
	if err := rep.ReplaySource(src); err != nil {
		writeParseAwareError(w, err, http.StatusBadRequest)
		return
	}
	res := rep.Result(rep.Now() + int64(m.BurstSlots()))
	s.traceSlots.Add(res.Slots)
	s.tracePowerDownSlots.Add(res.PowerDownSlots)
	s.traceSelfRefreshSlots.Add(res.SelfRefreshSlots)
	out := TraceResponseFor(res, key, channels)
	out.Calibrated = m.Calibrated()
	writeJSON(w, http.StatusOK, out)
}

// ctxReader aborts a streaming read once the request context is done, so
// the per-request timeout actually cancels long trace replays instead of
// only being checked at the start.
type ctxReader struct {
	ctx context.Context
	r   io.Reader
}

func (c *ctxReader) Read(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return c.r.Read(p)
}

// AccessBinaryContentType is the media type of a .dab binary access
// trace body on POST /v1/schedule. With this Content-Type the body is
// decoded strictly as .dab (a malformed header is a 400, not a fallback
// to text); any other type sniffs the encoding from the first byte.
const AccessBinaryContentType = "application/x-dram-access"

// ScheduleResponse is the POST /v1/schedule body: the replay accounting
// of the scheduled command trace (the same fields /v1/trace reports),
// plus the controller's configuration and row-buffer statistics.
type ScheduleResponse struct {
	TraceResponse
	Policy     string    `json:"policy"`
	Map        string    `json:"map"`
	Schedule   ctl.Stats `json:"schedule"`
	RowHitRate float64   `json:"row_hit_rate"`
	// Retention audit of the scheduled trace (the replay engine's
	// auditor): the widest observed refresh-to-refresh gap in slots, and
	// the count of tREFI obligations that slipped past their JEDEC
	// postponement deadline — zero for every scheduler configuration
	// except refresh=off.
	MaxRefreshIntervalSlots int64 `json:"max_refresh_interval_slots"`
	MissedRefreshDeadlines  int64 `json:"missed_refresh_deadlines"`
}

// ScheduleResponseFor assembles the /v1/schedule response (shared with
// the bit-identity tests, like TraceResponseFor).
func ScheduleResponseFor(stats ctl.Stats, res trace.Result, key string, channels int, policy, mapSpec string) ScheduleResponse {
	return ScheduleResponse{
		TraceResponse:           TraceResponseFor(res, key, channels),
		Policy:                  policy,
		Map:                     mapSpec,
		Schedule:                stats,
		RowHitRate:              stats.RowHitRate(),
		MaxRefreshIntervalSlots: res.MaxRefreshInterval,
		MissedRefreshDeadlines:  res.MissedRefreshDeadlines,
	}
}

// scheduleOptions parses the controller configuration from the query:
// policy (open, closed or timeout=N; default open), map (interleave
// spec), channels, pd_timeout and sr_after (idle thresholds in slots),
// refresh_every (tREFI override in slots; 0 resolves from the spec),
// max_postponed (JEDEC postponement bound; 0 means the default of 8)
// and refresh=off (disable refresh scheduling for A/B comparisons).
// The canonical policy spelling is returned for the response. The bool
// result reports success; on failure the response has been written.
func scheduleOptions(w http.ResponseWriter, q map[string][]string) (ctl.Options, string, bool) {
	get := func(k string) string {
		if v := q[k]; len(v) > 0 {
			return v[0]
		}
		return ""
	}
	policyStr := get("policy")
	if policyStr == "" {
		policyStr = "open"
	}
	policy, pageTimeout, err := ctl.ParsePolicy(policyStr)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return ctl.Options{}, "", false
	}
	channels, ok := parseChannels(w, get("channels"))
	if !ok {
		return ctl.Options{}, "", false
	}
	opts := ctl.Options{
		Policy:      policy,
		PageTimeout: pageTimeout,
		Map:         get("map"),
		Channels:    channels,
	}
	for _, p := range []struct {
		name string
		dst  *int64
	}{{"pd_timeout", &opts.PowerDownAfter}, {"sr_after", &opts.SelfRefreshAfter}} {
		if v := get(p.name); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				writeError(w, http.StatusBadRequest,
					fmt.Sprintf("bad %s %q (want idle threshold in slots, >= 0)", p.name, v))
				return ctl.Options{}, "", false
			}
			*p.dst = n
		}
	}
	if v := get("refresh_every"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("bad refresh_every %q (want tREFI in slots, >= 0)", v))
			return ctl.Options{}, "", false
		}
		opts.RefreshEvery = n
	}
	if v := get("max_postponed"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("bad max_postponed %q (want refresh postponement bound, >= 0)", v))
			return ctl.Options{}, "", false
		}
		opts.MaxPostponed = n
	}
	switch v := get("refresh"); v {
	case "", "on":
	case "off":
		opts.DisableRefresh = true
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("bad refresh %q (want on or off)", v))
		return ctl.Options{}, "", false
	}
	if policy == ctl.PolicyTimeout {
		policyStr = fmt.Sprintf("timeout=%d", pageTimeout)
	}
	return opts, policyStr, true
}

// countingSink wraps a schedule sink to count the per-channel command
// batches the fused pipeline emits. Consume runs concurrently across
// channels; the counter is atomic.
type countingSink struct {
	sink    ctl.Sink
	batches *metrics.Counter
}

func (cs countingSink) Consume(ch int, batch []trace.Command) error {
	cs.batches.Inc()
	return cs.sink.Consume(ch, batch)
}

// handleSchedule runs the memory-controller front-end server-side: the
// request body is an access trace (text, or .dab binary — see
// AccessBinaryContentType), scheduled into a legal command trace by the
// page policy, address map and power-down thresholds in the query, and
// by default (replay=on) replayed as it is scheduled on the fused
// schedule→replay pipeline — schedule and energy accounting in one
// request, with peak memory bounded by the pipeline's batch size rather
// than the trace length, and a response bit-identical to scheduling
// first and replaying the materialized trace. With replay=off only the
// scheduling half runs: the response keeps its shape but the replay-
// derived energy fields are zero. Both halves run on the server's
// shared worker pool.
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	opts, policyStr, ok := scheduleOptions(w, r.URL.Query())
	if !ok {
		return
	}
	replay := true
	switch v := r.URL.Query().Get("replay"); v {
	case "", "on", "1":
	case "off", "0":
		replay = false
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad replay %q (want on or off)", v))
		return
	}
	key, m, ok := s.selectModel(w, r)
	if !ok {
		return
	}
	opts.Pool = s.pool
	ctrl, err := ctl.NewController(m, opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	body := http.MaxBytesReader(w, r.Body, s.opts.MaxTraceBytes)
	rd := io.Reader(&ctxReader{ctx: r.Context(), r: body})
	var src ctl.Source
	if ct, _, _ := strings.Cut(r.Header.Get("Content-Type"), ";"); strings.TrimSpace(ct) == AccessBinaryContentType {
		src = ctl.NewBinaryScanner(rd)
	} else {
		src = ctl.NewAccessSource(rd)
	}

	// The scheduler's legality contract guarantees the fused replay
	// cannot fail on well-formed input (a timing violation here would be
	// a server bug), so every ScheduleInto error is a client-side input
	// error.
	var rep *trace.Replayer
	sink := ctl.Discard
	if replay {
		rep = trace.NewReplayer(m, trace.ReplayOptions{Channels: ctrl.Channels(), Pool: s.pool})
		sink = ctl.ReplaySink(rep)
	}
	stats, err := ctrl.ScheduleInto(src, countingSink{sink: sink, batches: s.scheduleBatches})
	if err != nil {
		writeParseAwareError(w, err, http.StatusBadRequest)
		return
	}
	var res trace.Result
	if replay {
		res = rep.Result(rep.Now() + int64(m.BurstSlots()))
		s.scheduleReplays.Inc()
	}
	s.scheduleRequests.Add(stats.Requests)
	s.scheduleRowHits.Add(stats.RowHits)
	s.scheduleCommands.Add(stats.Commands)
	s.scheduledRefreshes.Add(stats.Refreshes)
	out := ScheduleResponseFor(stats, res, key, opts.Channels, policyStr, ctrl.Mapper().Spec())
	out.Calibrated = m.Calibrated()
	writeJSON(w, http.StatusOK, out)
}

// RoadmapNode is one GET /v1/roadmap entry.
type RoadmapNode struct {
	Name         string  `json:"name"`
	FeatureNm    float64 `json:"feature_nm"`
	Year         float64 `json:"year"`
	Interface    string  `json:"interface"`
	DensityMbit  int64   `json:"density_mbit"`
	DataRateMbps float64 `json:"data_rate_mbps"`
	VddV         float64 `json:"vdd_v"`
	VintV        float64 `json:"vint_v"`
	VblV         float64 `json:"vbl_v"`
	VppV         float64 `json:"vpp_v"`
	TRCNs        float64 `json:"trc_ns"`
	TRCDNs       float64 `json:"trcd_ns"`
	TRPNs        float64 `json:"trp_ns"`
}

func (s *Server) handleRoadmap(w http.ResponseWriter, _ *http.Request) {
	nodes := scaling.Roadmap()
	out := make([]RoadmapNode, len(nodes))
	for i, n := range nodes {
		out[i] = RoadmapNode{
			Name:         n.Name(),
			FeatureNm:    n.FeatureNm,
			Year:         n.Year,
			Interface:    n.Interface.String(),
			DensityMbit:  n.DensityMbit(),
			DataRateMbps: float64(n.DataRate) / 1e6,
			VddV:         float64(n.Vdd),
			VintV:        float64(n.Vint),
			VblV:         float64(n.Vbl),
			VppV:         float64(n.Vpp),
			TRCNs:        n.TRC.Nanoseconds(),
			TRCDNs:       n.TRCD.Nanoseconds(),
			TRPNs:        n.TRP.Nanoseconds(),
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}
