package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"drampower/internal/core"
	"drampower/internal/ctl"
	"drampower/internal/desc"
	"drampower/internal/trace"
)

// genAccessTrace renders a deterministic synthetic access stream against
// the sample device, shared by the bit-identity and golden tests.
func genAccessTrace(t *testing.T, m *core.Model, n int, rowHit float64, gap int64) ([]ctl.Request, string) {
	t.Helper()
	reqs, err := ctl.GenerateAccesses(m, ctl.GenOptions{
		N: n, RowHit: rowHit, ReadShare: 0.7, Gap: gap, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ctl.WriteAccessTrace(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	return reqs, buf.String()
}

// TestScheduleEndpointMatchesLibrary pins the bit-identity contract: the
// served response is exactly json.Marshal of ScheduleResponseFor over a
// direct library schedule-and-replay.
func TestScheduleEndpointMatchesLibrary(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	d := desc.Sample1GbDDR3()
	m, err := core.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	reqs, text := genAccessTrace(t, m, 400, 0.6, 12)

	resp, body := post(t, hs.URL+"/v1/schedule?policy=timeout=64&pd_timeout=32", text)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}

	opts := ctl.Options{
		Policy: ctl.PolicyTimeout, PageTimeout: 64,
		PowerDownAfter: 32, Channels: 1,
	}
	cmds, stats, err := ctl.ScheduleRequests(m, reqs, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep := trace.NewReplayer(m, trace.ReplayOptions{Channels: 1})
	if err := rep.ReplaySource(trace.NewSliceSource(cmds)); err != nil {
		t.Fatal(err)
	}
	res := rep.Result(rep.Now() + int64(m.BurstSlots()))
	want, err := json.Marshal(ScheduleResponseFor(stats, res, DescriptorKey(d), 1, "timeout=64", ctl.DefaultMap))
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(body, want) {
		t.Fatalf("served schedule result differs from direct library call:\nserved: %s\nlib:    %s", body, want)
	}
}

// A .dab binary access trace under Content-Type application/x-dram-access
// produces a response byte-identical to the same requests as text; a text
// body declared binary is a positioned 400; an undeclared binary body
// still works via sniffing.
func TestScheduleBinaryBody(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	m, err := core.Build(desc.Sample1GbDDR3())
	if err != nil {
		t.Fatal(err)
	}
	reqs, text := genAccessTrace(t, m, 200, 0.5, 10)
	var bin bytes.Buffer
	if err := ctl.WriteBinaryAccessTrace(&bin, reqs); err != nil {
		t.Fatal(err)
	}

	postCT := func(ct string, body []byte) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(hs.URL+"/v1/schedule?policy=closed", ct, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, b
	}

	resp, wantBody := postCT("text/plain", []byte(text))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("text body status %d: %s", resp.StatusCode, wantBody)
	}
	for name, ct := range map[string]string{
		"declared": AccessBinaryContentType,
		"params":   AccessBinaryContentType + "; charset=binary",
		"sniffed":  "application/octet-stream",
	} {
		resp, body := postCT(ct, bin.Bytes())
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s binary body status %d: %s", name, resp.StatusCode, body)
		}
		if !bytes.Equal(body, wantBody) {
			t.Errorf("%s binary schedule differs from text schedule:\nbinary: %s\ntext:   %s", name, body, wantBody)
		}
	}

	resp, body := postCT(AccessBinaryContentType, []byte(text))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("text body declared binary: status %d, want 400: %s", resp.StatusCode, body)
	}
}

// TestScheduleResponseShape checks the controller-side fields the trace
// endpoint doesn't have: canonical policy echo, resolved map spec, the
// row-buffer outcome split, and the metrics counters.
func TestScheduleResponseShape(t *testing.T) {
	s, hs := newTestServer(t, Options{})
	m, err := core.Build(desc.Sample1GbDDR3())
	if err != nil {
		t.Fatal(err)
	}
	_, text := genAccessTrace(t, m, 300, 0.9, 8)

	resp, body := post(t, hs.URL+"/v1/schedule", text)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out ScheduleResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Policy != "open" || out.Map != ctl.DefaultMap || out.Channels != 1 {
		t.Fatalf("defaults not echoed: %+v", out)
	}
	if out.Schedule.Requests != 300 ||
		out.Schedule.RowHits+out.Schedule.RowMisses+out.Schedule.RowConflicts != 300 {
		t.Fatalf("row outcomes don't cover the requests: %+v", out.Schedule)
	}
	if out.RowHitRate < 0.5 {
		t.Fatalf("row-hit rate %.2f under a 0.9-locality stream", out.RowHitRate)
	}
	if out.Commands != out.Schedule.Commands || out.TotalJ <= 0 {
		t.Fatalf("replay accounting inconsistent: %+v", out)
	}
	if got := s.scheduleRequests.Value(); got != 300 {
		t.Fatalf("scheduleRequests counter = %d, want 300", got)
	}
	if got := s.scheduleRowHits.Value(); got != out.Schedule.RowHits {
		t.Fatalf("scheduleRowHits counter = %d, want %d", got, out.Schedule.RowHits)
	}
	if got := s.scheduleCommands.Value(); got != out.Schedule.Commands {
		t.Fatalf("scheduleCommands counter = %d, want %d", got, out.Schedule.Commands)
	}

	// The non-default knobs are echoed canonically. A sparser stream
	// (gap 200) leaves room for the 48-slot power-down threshold.
	_, sparse := genAccessTrace(t, m, 300, 0.9, 200)
	resp, body = post(t, hs.URL+"/v1/schedule?policy=closed&map=ro:ch:ba:co&channels=2&pd_timeout=48", sparse)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Policy != "closed" || out.Map != "ro:ch:ba:co" || out.Channels != 2 {
		t.Fatalf("knobs not echoed: %+v", out)
	}
	if out.Schedule.RowHits != 0 {
		t.Fatalf("closed policy reported %d row hits", out.Schedule.RowHits)
	}
	if out.Schedule.PowerDowns == 0 {
		t.Fatal("pd_timeout=48 inserted no power-downs on a gap-8 closed-page stream")
	}
	if out.PowerDownSlots == 0 {
		t.Fatal("replay saw no power-down residency")
	}
}

// TestScheduleReplayParam pins the replay query parameter: the default
// and replay=on replay the scheduled commands in place (fused pipeline)
// and are byte-identical; replay=off schedules only, returning the same
// scheduler stats with zeroed energy accounting; anything else is a 400.
// The batch/replay counters track the streamed rounds.
func TestScheduleReplayParam(t *testing.T) {
	s, hs := newTestServer(t, Options{})
	m, err := core.Build(desc.Sample1GbDDR3())
	if err != nil {
		t.Fatal(err)
	}
	_, text := genAccessTrace(t, m, 300, 0.7, 10)

	resp, def := post(t, hs.URL+"/v1/schedule?policy=closed", text)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, def)
	}
	resp, on := post(t, hs.URL+"/v1/schedule?policy=closed&replay=on", text)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay=on status %d: %s", resp.StatusCode, on)
	}
	if !bytes.Equal(def, on) {
		t.Fatalf("replay=on differs from the default:\non:      %s\ndefault: %s", on, def)
	}
	if got := s.scheduleReplays.Value(); got != 2 {
		t.Fatalf("scheduleReplays counter = %d, want 2", got)
	}
	batches := s.scheduleBatches.Value()
	if batches == 0 {
		t.Fatal("no command batches counted through the pipeline")
	}

	resp, off := post(t, hs.URL+"/v1/schedule?policy=closed&replay=off", text)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay=off status %d: %s", resp.StatusCode, off)
	}
	var outOn, outOff ScheduleResponse
	if err := json.Unmarshal(on, &outOn); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(off, &outOff); err != nil {
		t.Fatal(err)
	}
	if outOff.Schedule != outOn.Schedule {
		t.Fatalf("replay=off changed scheduler stats:\noff: %+v\non:  %+v", outOff.Schedule, outOn.Schedule)
	}
	if outOn.TotalJ <= 0 {
		t.Fatalf("replay=on reported no energy: %+v", outOn)
	}
	if outOff.TotalJ != 0 || outOff.Slots != 0 {
		t.Fatalf("replay=off still carries energy accounting: %+v", outOff)
	}
	if got := s.scheduleReplays.Value(); got != 2 {
		t.Fatalf("replay=off bumped scheduleReplays to %d", got)
	}
	if got := s.scheduleBatches.Value(); got <= batches {
		t.Fatalf("replay=off streamed no batches (counter %d -> %d)", batches, got)
	}

	resp, body := post(t, hs.URL+"/v1/schedule?replay=maybe", text)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("replay=maybe status %d, want 400: %s", resp.StatusCode, body)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "replay") {
		t.Fatalf("error %q does not mention replay", e.Error)
	}
}

func TestScheduleErrors(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	for name, tc := range map[string]struct {
		path   string
		body   string
		status int
		substr string
	}{
		"bad-policy":    {"/v1/schedule?policy=fifo", "0 r 0\n", 400, "unknown policy"},
		"bad-window":    {"/v1/schedule?policy=timeout=0", "0 r 0\n", 400, "page timeout"},
		"bad-map":       {"/v1/schedule?map=ro:ba", "0 r 0\n", 400, "map"},
		"bad-channels":  {"/v1/schedule?channels=3", "0 r 0\n", 400, "power of two"},
		"bad-pd":        {"/v1/schedule?pd_timeout=-1", "0 r 0\n", 400, "pd_timeout"},
		"bad-sr":        {"/v1/schedule?sr_after=x", "0 r 0\n", 400, "sr_after"},
		"out-of-order":  {"/v1/schedule", "10 r 0\n5 r 0\n", 400, "order"},
		"addr-overflow": {"/v1/schedule", "0 r 0x7fffffffffffffff\n", 400, "address"},
		"unknown-model": {"/v1/schedule?model=deadbeef", "0 r 0\n", 404, "not cached"},
	} {
		t.Run(name, func(t *testing.T) {
			resp, body := post(t, hs.URL+tc.path, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, body)
			}
			var e errorResponse
			if err := json.Unmarshal(body, &e); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(e.Error, tc.substr) {
				t.Fatalf("error %q does not contain %q", e.Error, tc.substr)
			}
		})
	}

	// A malformed access trace is a positioned 400.
	resp, body := post(t, hs.URL+"/v1/schedule", "0 r 0\nzz r 0\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Line != 2 {
		t.Fatalf("error line = %d, want 2: %+v", e.Line, e)
	}
}
