package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"drampower/internal/core"
	"drampower/internal/desc"
	"drampower/internal/metrics"
)

// DescriptorKey derives the model-cache key for a description: the
// SHA-256 of its canonical rendering (desc.Format). Because Format is a
// normal form — Parse(Format(d)) == d, field order and spacing fixed —
// any two descriptor texts that parse to the same description share a
// key, so whitespace or comment differences still hit the cache. The key
// doubles as the public model handle: /v1/evaluate returns it and
// /v1/trace accepts it, so clients replay traces against a model that is
// already hot without re-uploading the descriptor.
func DescriptorKey(d *desc.Description) string {
	sum := sha256.Sum256([]byte(desc.Format(d)))
	return hex.EncodeToString(sum[:])
}

// CalibratedKey derives the model-cache key for a description plus a
// calibration overlay. An empty (or nil) overlay collapses onto
// DescriptorKey — a no-op calibration and no calibration are the same
// model, so they share the cache entry — while any non-empty overlay
// hashes its canonical rendering (desc.FormatOverlay, a normal form like
// desc.Format) alongside the descriptor's. The NUL-delimited domain tag
// keeps descriptor bytes from colliding with overlay bytes, so the cache
// can never conflate a calibrated model with its uncalibrated base.
func CalibratedKey(d *desc.Description, ov *desc.Overlay) string {
	if ov.Empty() {
		return DescriptorKey(d)
	}
	h := sha256.New()
	h.Write([]byte(desc.Format(d)))
	h.Write([]byte("\x00calibration\x00"))
	h.Write([]byte(desc.FormatOverlay(ov)))
	return hex.EncodeToString(h.Sum(nil))
}

// modelCache is a concurrency-safe LRU of built models keyed by
// DescriptorKey. Hits skip core.Build entirely (models are immutable
// after Build and safe for concurrent readers); concurrent misses on the
// same key build once and share the result (waiters block on the entry's
// done channel, closed by the one goroutine that inserted it), so a
// thundering herd of identical descriptors costs one build.
type modelCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses, evictions, builds *metrics.Counter
	size                            *metrics.Gauge
}

// cacheEntry is one cached (or in-flight) build. Only the goroutine that
// inserted the entry runs the build and closes done; everyone else waits
// on done before reading model/err. (A sync.Once is not enough here: a
// hit racing the inserter could consume the Once with a no-op, leaving
// model and err permanently nil.)
type cacheEntry struct {
	key   string
	done  chan struct{} // closed once model/err are final
	model *core.Model
	err   error
}

// newModelCache creates a cache holding at most capacity models
// (capacity < 1 is clamped to 1) with its counters registered in reg.
func newModelCache(capacity int, reg *metrics.Registry) *modelCache {
	if capacity < 1 {
		capacity = 1
	}
	return &modelCache{
		cap:       capacity,
		ll:        list.New(),
		entries:   map[string]*list.Element{},
		hits:      reg.Counter("dramserved_model_cache_hits_total", "", "Model cache hits."),
		misses:    reg.Counter("dramserved_model_cache_misses_total", "", "Model cache misses."),
		evictions: reg.Counter("dramserved_model_cache_evictions_total", "", "Models evicted from the cache."),
		builds:    reg.Counter("dramserved_model_builds_total", "", "core.Build invocations."),
		size:      reg.Gauge("dramserved_model_cache_entries", "", "Models currently cached."),
	}
}

// get returns the model for key, building it with build on a miss. The
// build runs outside the cache lock; other goroutines requesting the same
// key wait for it rather than building again. A failed build is not
// cached: its entry is removed so the key can be retried, and every
// waiter receives the same error.
func (c *modelCache) get(key string, build func() (*core.Model, error)) (*core.Model, error) {
	c.mu.Lock()
	if elem, ok := c.entries[key]; ok {
		c.ll.MoveToFront(elem)
		e := elem.Value.(*cacheEntry)
		c.hits.Inc()
		c.mu.Unlock()
		// A hit on an entry still building waits for the builder.
		<-e.done
		return e.model, e.err
	}
	c.misses.Inc()
	e := &cacheEntry{key: key, done: make(chan struct{})}
	elem := c.ll.PushFront(e)
	c.entries[key] = elem
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
	c.size.Set(int64(c.ll.Len()))
	c.mu.Unlock()

	c.builds.Inc()
	e.model, e.err = build()
	close(e.done)
	if e.err != nil {
		c.mu.Lock()
		if cur, ok := c.entries[key]; ok && cur == elem {
			c.ll.Remove(elem)
			delete(c.entries, key)
			c.size.Set(int64(c.ll.Len()))
		}
		c.mu.Unlock()
	}
	return e.model, e.err
}

// peek returns the cached model for key without building, or nil. It
// counts as a cache hit (and refreshes recency) only when present.
func (c *modelCache) peek(key string) *core.Model {
	c.mu.Lock()
	elem, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		return nil
	}
	c.ll.MoveToFront(elem)
	e := elem.Value.(*cacheEntry)
	c.hits.Inc()
	c.mu.Unlock()
	<-e.done
	if e.err != nil {
		return nil
	}
	return e.model
}

// len reports the current entry count.
func (c *modelCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// keys returns the cached keys from most to least recently used (for
// eviction-order tests).
func (c *modelCache) keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.ll.Len())
	for elem := c.ll.Front(); elem != nil; elem = elem.Next() {
		out = append(out, elem.Value.(*cacheEntry).key)
	}
	return out
}

// docEntry is a memoized /v1/evaluate body resolution: the parsed
// description, the effective overlay (body section or server default) and
// the model-cache key they hash to. Entries are shared across requests
// and therefore immutable — any handler path that would mutate the
// description (the pattern query override) must bypass the cache.
type docEntry struct {
	d   *desc.Description
	ov  *desc.Overlay
	key string
}

// docCache memoizes descriptor-body parsing by the SHA-256 of the raw
// body bytes. The model cache already makes repeat evaluations skip
// core.Build, but deriving the *key* still re-parses the body and
// re-renders it canonically on every request — which is where most of the
// hot path's allocations live. Byte-identical bodies (the steady state
// for a client hammering one device) skip straight to the key.
//
// Eviction is deliberately crude: when the map fills, it is dropped
// wholesale. Entries are tiny (a parsed description), the refill cost is
// one parse per distinct body, and the common population is a handful of
// devices, so LRU bookkeeping would be all overhead.
type docCache struct {
	mu  sync.Mutex
	max int
	m   map[[sha256.Size]byte]docEntry
}

func newDocCache(max int) *docCache {
	if max < 1 {
		max = 1
	}
	return &docCache{max: max, m: make(map[[sha256.Size]byte]docEntry)}
}

func (c *docCache) get(sum [sha256.Size]byte) (docEntry, bool) {
	c.mu.Lock()
	e, ok := c.m[sum]
	c.mu.Unlock()
	return e, ok
}

func (c *docCache) put(sum [sha256.Size]byte, e docEntry) {
	c.mu.Lock()
	if len(c.m) >= c.max {
		c.m = make(map[[sha256.Size]byte]docEntry)
	}
	c.m[sum] = e
	c.mu.Unlock()
}
