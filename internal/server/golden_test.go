package server

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"drampower/internal/core"
	"drampower/internal/ctl"
	"drampower/internal/desc"
	"drampower/internal/trace"
)

// -update rewrites the golden response files from the current code:
//
//	go test ./internal/server -run TestGolden -update
//
// The goldens pin the exact response bytes of every POST endpoint. They
// serve two purposes: field renames or omissions in the JSON shapes are
// caught at review time (the golden diff shows exactly what clients
// would see), and the calibration pipeline's "empty overlay is a strict
// no-op" guarantee is enforced byte-for-byte — these files were
// generated before the derive/overlay/seal refactor and must never
// change for uncalibrated requests.
var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares got against testdata/<name> (or rewrites it
// under -update).
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: response differs from golden\ngot:  %s\nwant: %s", name, got, want)
	}
}

// goldenTrace renders a deterministic mixed workload against the sample
// device: a seeded random closed-page burst with power-down entry on
// idle gaps, so the golden exercises command energy, all four power
// states, and the residency-weighted background split.
func goldenTrace(t *testing.T) string {
	t.Helper()
	m, err := core.Build(desc.Sample1GbDDR3())
	if err != nil {
		t.Fatal(err)
	}
	cmds := trace.WithPowerDown(m, trace.RandomClosedPage(m, 200, 0.7, 42), 64)
	var buf bytes.Buffer
	if err := trace.WriteTrace(&buf, cmds); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// goldenAccess renders a deterministic access stream for the schedule
// golden: moderate locality with gaps wide enough that the timeout page
// policy and the power-down threshold both fire.
func goldenAccess(t *testing.T) string {
	t.Helper()
	m, err := core.Build(desc.Sample1GbDDR3())
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := ctl.GenerateAccesses(m, ctl.GenOptions{
		N: 200, RowHit: 0.7, ReadShare: 0.7, Gap: 120, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ctl.WriteAccessTrace(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestGoldenResponses(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	src := desc.Format(desc.Sample1GbDDR3())

	cases := []struct {
		golden string
		path   string
		body   string
	}{
		{"evaluate.golden.json", "/v1/evaluate", src},
		{"sweep.golden.json", "/v1/sweep", src},
		{"schemes.golden.json", "/v1/schemes", src},
		{"trace.golden.json", "/v1/trace", goldenTrace(t)},
		{"schedule.golden.json", "/v1/schedule?policy=timeout=32&pd_timeout=64", goldenAccess(t)},
	}
	for _, tc := range cases {
		t.Run(tc.golden, func(t *testing.T) {
			resp, body := post(t, hs.URL+tc.path, tc.body)
			if resp.StatusCode != 200 {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			checkGolden(t, tc.golden, body)
		})
	}
}
