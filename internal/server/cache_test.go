package server

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"drampower/internal/core"
	"drampower/internal/desc"
	"drampower/internal/metrics"
)

// variant returns the sample description with a distinguishing name, so
// each i yields a distinct cache key but an equally buildable device.
func variant(i int) *desc.Description {
	d := desc.Sample1GbDDR3()
	d.Name = fmt.Sprintf("cache-test-%d", i)
	return d
}

func buildVariant(i int) func() (*core.Model, error) {
	return func() (*core.Model, error) { return core.Build(variant(i)) }
}

func TestDescriptorKeyCanonical(t *testing.T) {
	a := desc.Sample1GbDDR3()
	b, err := desc.ParseString(desc.Format(a))
	if err != nil {
		t.Fatal(err)
	}
	if DescriptorKey(a) != DescriptorKey(b) {
		t.Fatal("round-tripped description produced a different cache key")
	}
	b.Name = "other"
	if DescriptorKey(a) == DescriptorKey(b) {
		t.Fatal("distinct descriptions share a cache key")
	}
	if len(DescriptorKey(a)) != 64 {
		t.Fatalf("key %q is not hex SHA-256", DescriptorKey(a))
	}
}

func TestCacheHitSkipsBuild(t *testing.T) {
	reg := metrics.NewRegistry()
	c := newModelCache(4, reg)
	key := DescriptorKey(variant(0))
	m1, err := c.get(key, buildVariant(0))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := c.get(key, func() (*core.Model, error) {
		t.Fatal("build called on a cache hit")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("hit returned a different model instance")
	}
	if got := c.builds.Value(); got != 1 {
		t.Fatalf("builds = %d, want 1", got)
	}
	if c.hits.Value() != 1 || c.misses.Value() != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", c.hits.Value(), c.misses.Value())
	}
}

func TestCacheEvictionOrder(t *testing.T) {
	c := newModelCache(2, metrics.NewRegistry())
	k := make([]string, 3)
	for i := 0; i < 2; i++ {
		k[i] = DescriptorKey(variant(i))
		if _, err := c.get(k[i], buildVariant(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch 0 so 1 becomes least recently used.
	if m := c.peek(k[0]); m == nil {
		t.Fatal("peek missed a cached model")
	}
	k[2] = DescriptorKey(variant(2))
	if _, err := c.get(k[2], buildVariant(2)); err != nil {
		t.Fatal(err)
	}
	got := c.keys()
	want := []string{k[2], k[0]} // most recent first; 1 evicted
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("keys after eviction = %v, want %v", got, want)
	}
	if c.peek(k[1]) != nil {
		t.Fatal("evicted model still served")
	}
	if c.evictions.Value() != 1 {
		t.Fatalf("evictions = %d, want 1", c.evictions.Value())
	}
}

func TestCacheFailedBuildNotCached(t *testing.T) {
	c := newModelCache(4, metrics.NewRegistry())
	boom := errors.New("boom")
	if _, err := c.get("bad", func() (*core.Model, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.len() != 0 {
		t.Fatal("failed build left a cache entry")
	}
	// The key is retryable and a subsequent success is cached.
	m, err := c.get("bad", buildVariant(9))
	if err != nil || m == nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
}

func TestCacheConcurrentHitMissEviction(t *testing.T) {
	// Hammer a capacity-4 cache with 8 distinct keys from 16 goroutines:
	// constant hits, misses and evictions racing. Run under -race this
	// exercises the locking; the invariants below catch logic breaks.
	reg := metrics.NewRegistry()
	c := newModelCache(4, reg)
	const workers = 16
	const iters = 50
	keys := make([]string, 8)
	for i := range keys {
		keys[i] = DescriptorKey(variant(i))
	}
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				idx := (w + i) % len(keys)
				m, err := c.get(keys[idx], buildVariant(idx))
				if err != nil {
					errCh <- err
					return
				}
				if got := m.D.Name; got != fmt.Sprintf("cache-test-%d", idx) {
					errCh <- fmt.Errorf("key %d returned model %q", idx, got)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got := c.len(); got != 4 {
		t.Fatalf("len = %d, want capacity 4", got)
	}
	total := c.hits.Value() + c.misses.Value()
	if total != workers*iters {
		t.Fatalf("hits+misses = %d, want %d", total, workers*iters)
	}
	// Every miss creates one entry whose creator performs the build;
	// hits (even on an in-flight entry) never build.
	if c.builds.Value() != c.misses.Value() {
		t.Fatalf("builds %d != misses %d", c.builds.Value(), c.misses.Value())
	}
}

func TestCacheHitDuringBuildWaitsForModel(t *testing.T) {
	// Regression: a hit or peek racing an in-flight build must wait for
	// the inserting goroutine's build and then see the real model. The
	// original sync.Once scheme let a racing hit consume the Once with a
	// no-op, so the build never ran and (nil, nil) was cached forever.
	c := newModelCache(4, metrics.NewRegistry())
	key := DescriptorKey(variant(0))
	buildStarted := make(chan struct{})
	release := make(chan struct{})
	builderDone := make(chan struct{})
	go func() {
		defer close(builderDone)
		m, err := c.get(key, func() (*core.Model, error) {
			close(buildStarted)
			<-release
			return core.Build(variant(0))
		})
		if err != nil || m == nil {
			t.Errorf("inserting get returned (%v, %v)", m, err)
		}
	}()
	<-buildStarted

	// The entry is in the map with its build blocked on release. Hits and
	// peeks must block here, not return a nil model.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := c.get(key, func() (*core.Model, error) {
				t.Error("build called on a hit")
				return nil, nil
			})
			if err != nil || m == nil {
				t.Errorf("hit during in-flight build returned (%v, %v)", m, err)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if m := c.peek(key); m == nil {
				t.Error("peek during in-flight build returned nil")
			}
		}()
	}
	close(release)
	wg.Wait()
	<-builderDone
	if got := c.builds.Value(); got != 1 {
		t.Fatalf("builds = %d, want 1", got)
	}
}

func TestCacheConcurrentSameKeyBuildsOnce(t *testing.T) {
	c := newModelCache(4, metrics.NewRegistry())
	key := DescriptorKey(variant(0))
	var wg sync.WaitGroup
	start := make(chan struct{})
	models := make([]*core.Model, 12)
	for i := range models {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			m, err := c.get(key, buildVariant(0))
			if err != nil {
				t.Error(err)
				return
			}
			models[i] = m
		}()
	}
	close(start)
	wg.Wait()
	if got := c.builds.Value(); got != 1 {
		t.Fatalf("concurrent same-key gets performed %d builds, want 1", got)
	}
	for i := 1; i < len(models); i++ {
		if models[i] != models[0] {
			t.Fatal("goroutines received different model instances")
		}
	}
}
