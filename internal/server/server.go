// Package server is the HTTP model-evaluation service behind the
// dramserved binary: a dependency-free net/http JSON API over the power
// model, built for long-lived serving rather than one-shot CLI runs.
//
// Endpoints:
//
//	POST /v1/evaluate  descriptor text -> pattern power/energy + IDD JSON
//	POST /v1/sweep     descriptor text -> Figure 10 sensitivity rows
//	POST /v1/schemes   descriptor text -> Section V scheme comparison
//	POST /v1/trace     trace text      -> replayed energy accounting
//	POST /v1/schedule  access trace    -> scheduled trace energy + row-buffer stats
//	GET  /v1/roadmap   the 170 nm -> 16 nm technology roadmap
//	GET  /metrics      Prometheus text exposition
//	GET  /healthz      liveness (always 200 while the process runs)
//	GET  /readyz       readiness (503 before serving and while draining)
//
// Three mechanisms make it hold up under load:
//
//   - A model cache (cache.go): built models are immutable and shared,
//     keyed by the SHA-256 of the canonical descriptor rendering, so
//     repeated evaluations of the same device skip core.Build entirely.
//   - A bounded admission queue: at most MaxInflight /v1/* requests run
//     at once; excess requests wait up to QueueWait for a slot and are
//     then rejected with 429 + Retry-After instead of queueing without
//     bound.
//   - One shared engine.Pool: every batch evaluation (sweep, schemes,
//     multi-channel replay) runs on the same fixed worker set, so CPU
//     parallelism stays bounded no matter how many requests are in
//     flight.
//
// Responses are bit-identical to direct library calls: handlers feed the
// exact library results through one encoder, and a cache hit returns the
// very model a miss built.
package server

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"drampower/internal/desc"
	"drampower/internal/engine"
	"drampower/internal/metrics"
)

// Options configures a Server. The zero value serves with the defaults
// noted on each field.
type Options struct {
	// CacheSize bounds the model cache (entries); default 128.
	CacheSize int
	// MaxInflight bounds concurrently executing /v1/* requests;
	// default 64.
	MaxInflight int
	// QueueWait is how long an over-limit request waits for an admission
	// slot before 429; default 2s. Negative means reject immediately.
	QueueWait time.Duration
	// RequestTimeout cancels a request's context after this long;
	// default 60s.
	RequestTimeout time.Duration
	// MaxDescriptorBytes bounds descriptor request bodies; default 1 MiB.
	MaxDescriptorBytes int64
	// MaxTraceBytes bounds trace uploads; default 256 MiB.
	MaxTraceBytes int64
	// Workers sizes the shared evaluation pool; <= 0 selects one worker
	// per CPU.
	Workers int
	// AccessLog receives one structured JSON line per request; nil
	// disables access logging.
	AccessLog io.Writer
	// Registry receives the server's metrics; nil creates a fresh one.
	Registry *metrics.Registry
	// Calibration is a default calibration overlay applied to every model
	// the server builds unless the request carries its own (a Calibration
	// section in the body or a calibration query parameter). Nil serves
	// uncalibrated models.
	Calibration *desc.Overlay
}

// withDefaults resolves the zero values.
func (o Options) withDefaults() Options {
	if o.CacheSize == 0 {
		o.CacheSize = 128
	}
	if o.MaxInflight == 0 {
		o.MaxInflight = 64
	}
	if o.QueueWait == 0 {
		o.QueueWait = 2 * time.Second
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 60 * time.Second
	}
	if o.MaxDescriptorBytes == 0 {
		o.MaxDescriptorBytes = 1 << 20
	}
	if o.MaxTraceBytes == 0 {
		o.MaxTraceBytes = 256 << 20
	}
	if o.Registry == nil {
		o.Registry = metrics.NewRegistry()
	}
	return o
}

// Server is the model-evaluation service. Create with New, mount via
// Handler (or run with Serve), release the worker pool with Close.
type Server struct {
	opts  Options
	mux   *http.ServeMux
	cache *modelCache
	docs  *docCache
	pool  *engine.Pool
	reg   *metrics.Registry

	sem    chan struct{}
	ready  atomic.Bool
	reqID  atomic.Int64
	idBase string

	inflight *metrics.Gauge
	rejected *metrics.Counter
	panics   *metrics.Counter
	readyG   *metrics.Gauge

	// Trace replay accounting: total slots and low-power residency slots
	// served by /v1/trace, so operators can see the fleet-wide power-down
	// and self-refresh share their workloads would enjoy.
	traceSlots            *metrics.Counter
	tracePowerDownSlots   *metrics.Counter
	traceSelfRefreshSlots *metrics.Counter

	// calibratedBuilds counts model builds that applied a non-empty
	// calibration overlay (the overlay half of the derive → overlay → seal
	// pipeline running server-side).
	calibratedBuilds *metrics.Counter

	// Controller front-end accounting: requests scheduled, the row hits
	// among them (their ratio is the fleet-wide row-hit rate), and the
	// commands emitted by /v1/schedule.
	scheduleRequests *metrics.Counter
	scheduleRowHits  *metrics.Counter
	scheduleCommands *metrics.Counter
	// scheduledRefreshes counts the all-bank ref commands the refresh
	// scheduler emitted into /v1/schedule traces.
	scheduledRefreshes *metrics.Counter
	// scheduleBatches counts the per-channel command batches streamed
	// through the fused schedule→replay pipeline; scheduleReplays the
	// /v1/schedule requests that carried in-place energy accounting
	// (replay=off requests schedule only).
	scheduleBatches *metrics.Counter
	scheduleReplays *metrics.Counter
}

// New builds a server. The caller owns the returned server's lifecycle:
// Close releases the shared worker pool.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:   opts,
		mux:    http.NewServeMux(),
		cache:  newModelCache(opts.CacheSize, opts.Registry),
		docs:   newDocCache(opts.CacheSize * 2),
		pool:   engine.NewPool(opts.Workers),
		reg:    opts.Registry,
		sem:    make(chan struct{}, opts.MaxInflight),
		idBase: time.Now().Format("150405"),
	}
	s.inflight = s.reg.Gauge("dramserved_inflight_requests", "", "Requests currently executing.")
	s.rejected = s.reg.Counter("dramserved_rejected_total", "", "Requests rejected with 429 by the admission queue.")
	s.panics = s.reg.Counter("dramserved_handler_panics_total", "", "Recovered handler panics.")
	s.readyG = s.reg.Gauge("dramserved_ready", "", "1 while serving, 0 before startup and while draining.")
	s.traceSlots = s.reg.Counter("dramserved_trace_slots_total", "",
		"Control-clock slots replayed by /v1/trace (per channel).")
	s.tracePowerDownSlots = s.reg.Counter("dramserved_trace_powerdown_slots_total", "",
		"Replayed slots spent in precharge power-down (IDD2P residency).")
	s.traceSelfRefreshSlots = s.reg.Counter("dramserved_trace_selfrefresh_slots_total", "",
		"Replayed slots spent in self-refresh (IDD6 residency).")
	s.calibratedBuilds = s.reg.Counter("dramserved_calibrated_builds_total", "",
		"Model builds that applied a non-empty calibration overlay.")
	s.scheduleRequests = s.reg.Counter("dramserved_schedule_requests_total", "",
		"Access requests scheduled by /v1/schedule.")
	s.scheduleRowHits = s.reg.Counter("dramserved_schedule_row_hits_total", "",
		"Scheduled requests that hit an open row.")
	s.scheduleCommands = s.reg.Counter("dramserved_schedule_commands_total", "",
		"DRAM commands emitted by /v1/schedule.")
	s.scheduledRefreshes = s.reg.Counter("dramserved_scheduled_refreshes_total", "",
		"All-bank refresh commands scheduled by /v1/schedule.")
	s.scheduleBatches = s.reg.Counter("dramserved_schedule_batches_total", "",
		"Per-channel command batches streamed through the fused schedule-replay pipeline.")
	s.scheduleReplays = s.reg.Counter("dramserved_schedule_replays_total", "",
		"Schedule requests replayed in place for energy accounting (replay=on).")

	s.mux.Handle("POST /v1/evaluate", s.api(s.handleEvaluate))
	s.mux.Handle("POST /v1/sweep", s.api(s.handleSweep))
	s.mux.Handle("POST /v1/schemes", s.api(s.handleSchemes))
	s.mux.Handle("POST /v1/trace", s.api(s.handleTrace))
	s.mux.Handle("POST /v1/schedule", s.api(s.handleSchedule))
	s.mux.Handle("GET /v1/roadmap", s.observe(http.HandlerFunc(s.handleRoadmap)))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	s.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("draining\n"))
			return
		}
		w.Write([]byte("ok\n"))
	})
	return s
}

// Handler returns the root handler (all endpoints mounted).
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the server's metrics registry.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// SetReady flips the /readyz state; Serve manages it automatically.
func (s *Server) SetReady(ready bool) {
	s.ready.Store(ready)
	if ready {
		s.readyG.Set(1)
	} else {
		s.readyG.Set(0)
	}
}

// Close releases the shared worker pool. Call after the HTTP server has
// stopped; in-flight batch evaluations must have finished.
func (s *Server) Close() { s.pool.Close() }

// Serve runs the service on ln until ctx is cancelled, then drains
// gracefully: /readyz flips to 503 (so load balancers stop sending
// traffic), in-flight requests get up to drainTimeout to finish, and only
// then does the listener close. It returns nil after a clean drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener, drainTimeout time.Duration) error {
	hs := &http.Server{Handler: s.mux}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	s.SetReady(true)
	select {
	case err := <-errCh:
		s.SetReady(false)
		return err
	case <-ctx.Done():
	}
	s.SetReady(false)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	err := hs.Shutdown(shutdownCtx)
	if serveErr := <-errCh; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) && err == nil {
		err = serveErr
	}
	return err
}
