package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"drampower/internal/metrics"
)

// api wraps a /v1/* handler with the full serving stack, outside-in:
// request ID + access log + per-path metrics (observe), then admission
// control, then the per-request timeout, then panic recovery.
func (s *Server) api(h http.HandlerFunc) http.Handler {
	return s.observe(s.admit(s.timed(s.recovered(h))))
}

// statusWriter captures the status code and body size for logs/metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// logMu serializes access-log lines across requests.
var logMu sync.Mutex

// accessRecord is one structured access-log line.
type accessRecord struct {
	Time      string  `json:"time"`
	Level     string  `json:"level"`
	Msg       string  `json:"msg"`
	RequestID string  `json:"request_id"`
	Method    string  `json:"method"`
	Path      string  `json:"path"`
	Status    int     `json:"status"`
	Bytes     int64   `json:"bytes"`
	DurMS     float64 `json:"dur_ms"`
	Remote    string  `json:"remote"`
}

// observe assigns a request ID, logs the request as one JSON line and
// records the per-path counter and latency histogram.
func (s *Server) observe(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("r%s-%06x", s.idBase, s.reqID.Add(1))
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		dur := time.Since(start)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		path := r.URL.Path
		s.reg.Counter("dramserved_requests_total",
			metrics.Labels("path", path, "code", strconv.Itoa(sw.status)),
			"Requests served by path and status code.").Inc()
		s.reg.Histogram("dramserved_request_seconds",
			metrics.Labels("path", path),
			"Request latency by path.", metrics.LatencyBuckets).Observe(dur.Seconds())
		if s.opts.AccessLog != nil {
			line, err := json.Marshal(accessRecord{
				Time:      start.UTC().Format(time.RFC3339Nano),
				Level:     "info",
				Msg:       "request",
				RequestID: id,
				Method:    r.Method,
				Path:      path,
				Status:    sw.status,
				Bytes:     sw.bytes,
				DurMS:     float64(dur.Microseconds()) / 1e3,
				Remote:    r.RemoteAddr,
			})
			if err == nil {
				logMu.Lock()
				s.opts.AccessLog.Write(append(line, '\n'))
				logMu.Unlock()
			}
		}
	})
}

// admit applies the bounded admission queue: at most MaxInflight requests
// execute concurrently; a request that cannot get a slot within QueueWait
// is rejected with 429 and a Retry-After hint, so overload sheds load
// instead of accumulating goroutines until the process dies.
func (s *Server) admit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
		default:
			switch s.waitForSlot(r.Context()) {
			case slotAcquired:
			case slotClientGone:
				// The client hung up while queued: not an overload
				// rejection, so leave the rejected counter and the 429
				// alone — just record the disconnect for logs/metrics.
				w.WriteHeader(statusClientClosedRequest)
				return
			case slotTimedOut:
				s.rejected.Inc()
				retry := int(s.opts.QueueWait / time.Second)
				if retry < 1 {
					retry = 1
				}
				w.Header().Set("Retry-After", strconv.Itoa(retry))
				writeError(w, http.StatusTooManyRequests,
					fmt.Sprintf("server at capacity (%d in flight); retry later", s.opts.MaxInflight))
				return
			}
		}
		s.inflight.Inc()
		defer func() {
			s.inflight.Dec()
			<-s.sem
		}()
		next.ServeHTTP(w, r)
	})
}

// slotResult says how a queued request's wait for admission ended.
type slotResult int

const (
	slotAcquired   slotResult = iota // got a slot; caller must release it
	slotTimedOut                     // QueueWait elapsed: genuine overload
	slotClientGone                   // request context ended while queued
)

// waitForSlot blocks up to QueueWait for an admission slot,
// distinguishing queue-wait expiry (overload, counts as a rejection)
// from the client giving up while queued (does not).
func (s *Server) waitForSlot(ctx context.Context) slotResult {
	if s.opts.QueueWait <= 0 {
		return slotTimedOut
	}
	t := time.NewTimer(s.opts.QueueWait)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		return slotAcquired
	case <-t.C:
		return slotTimedOut
	case <-ctx.Done():
		return slotClientGone
	}
}

// timed attaches the per-request timeout to the request context.
// Handlers observe it at their evaluation boundaries, and the streaming
// trace endpoint aborts mid-body through ctxReader.
func (s *Server) timed(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// recovered converts a handler panic into a 500 instead of killing the
// connection (and, pre-Go 1.8 style, the process).
func (s *Server) recovered(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.panics.Inc()
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", v))
			}
		}()
		next.ServeHTTP(w, r)
	})
}
