package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"drampower/internal/core"
	"drampower/internal/desc"
	"drampower/internal/trace"
)

// newTestServer creates a quiet server plus its httptest frontend.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestEvaluateBitIdenticalToLibrary(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	src := desc.Format(desc.Sample1GbDDR3())
	resp, body := post(t, hs.URL+"/v1/evaluate", src)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}

	// The direct library call, encoded through the same response type,
	// must produce byte-identical JSON.
	d, err := desc.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(EvaluateResponseFor(m, DescriptorKey(d)))
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(body, want) {
		t.Fatalf("served response differs from direct library call:\nserved: %s\nlib:    %s", body, want)
	}
}

func TestEvaluateCacheHitIsByteIdenticalAndBuildFree(t *testing.T) {
	s, hs := newTestServer(t, Options{})
	src := desc.Format(desc.Sample1GbDDR3())

	resp1, miss := post(t, hs.URL+"/v1/evaluate", src)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("miss status %d: %s", resp1.StatusCode, miss)
	}
	buildsAfterMiss := s.cache.builds.Value()
	if buildsAfterMiss != 1 {
		t.Fatalf("builds after first evaluate = %d, want 1", buildsAfterMiss)
	}

	// Re-serve the same descriptor — and a differently formatted but
	// canonically identical one — and require zero additional builds
	// plus byte-identical bodies.
	resp2, hit := post(t, hs.URL+"/v1/evaluate", src)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("hit status %d", resp2.StatusCode)
	}
	respCanon, hitCanon := post(t, hs.URL+"/v1/evaluate", "# leading comment\n\n"+src)
	if respCanon.StatusCode != http.StatusOK {
		t.Fatalf("canonical-hit status %d: %s", respCanon.StatusCode, hitCanon)
	}
	if !bytes.Equal(miss, hit) {
		t.Fatal("cache-hit response differs from cache-miss response")
	}
	if !bytes.Equal(miss, hitCanon) {
		t.Fatal("reformatted descriptor produced a different response")
	}
	if got := s.cache.builds.Value(); got != buildsAfterMiss {
		t.Fatalf("cache hits performed %d extra core.Build calls", got-buildsAfterMiss)
	}
	if s.cache.hits.Value() < 2 {
		t.Fatalf("hits = %d, want >= 2", s.cache.hits.Value())
	}
}

func TestEvaluateParseErrorIsPositioned400(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	resp, body := post(t, hs.URL+"/v1/evaluate", "Name x\nGarbageLine foo\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Line == 0 || e.Error == "" {
		t.Fatalf("error response not positioned: %+v", e)
	}
}

func TestEvaluatePatternOverride(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	resp, body := post(t, hs.URL+"/v1/evaluate?pattern=act+nop+rd+nop+pre+nop", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out EvaluateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Pattern != "act nop rd nop pre nop" {
		t.Fatalf("pattern = %q", out.Pattern)
	}
	resp, _ = post(t, hs.URL+"/v1/evaluate?pattern=bogus", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad pattern status %d, want 400", resp.StatusCode)
	}
}

// The document cache memoizes body parsing for plain requests only.
// Requests with pattern or calibration query parameters must bypass it
// in both directions: they neither read a cached entry (pattern mutates
// the description, and cached entries are shared) nor insert one, so a
// plain request after an overridden one still serves the original bytes.
func TestEvaluateDocumentCacheIsolation(t *testing.T) {
	s, hs := newTestServer(t, Options{})
	src := desc.Format(desc.Sample1GbDDR3())

	_, plain1 := post(t, hs.URL+"/v1/evaluate", src)
	if n := len(s.docs.m); n != 1 {
		t.Fatalf("doc cache entries after plain request = %d, want 1", n)
	}

	resp, patterned := post(t, hs.URL+"/v1/evaluate?pattern=act+nop+rd+nop+pre+nop", src)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pattern status %d: %s", resp.StatusCode, patterned)
	}
	if bytes.Equal(plain1, patterned) {
		t.Fatal("pattern override returned the plain response")
	}
	if n := len(s.docs.m); n != 1 {
		t.Fatalf("doc cache entries after pattern request = %d, want 1 (must not insert)", n)
	}

	// The cached entry must be untouched by the override: a plain request
	// for the same body still serves the original bytes, without a parse.
	_, plain2 := post(t, hs.URL+"/v1/evaluate", src)
	if !bytes.Equal(plain1, plain2) {
		t.Fatal("plain response changed after a pattern-override request on the same body")
	}

	// A body differing only in comments is a different byte string, so it
	// occupies its own document-cache slot but shares the model.
	builds := s.cache.builds.Value()
	_, reformatted := post(t, hs.URL+"/v1/evaluate", "# comment\n"+src)
	if !bytes.Equal(plain1, reformatted) {
		t.Fatal("reformatted body produced different response bytes")
	}
	if n := len(s.docs.m); n != 2 {
		t.Fatalf("doc cache entries after reformatted body = %d, want 2", n)
	}
	if got := s.cache.builds.Value(); got != builds {
		t.Fatalf("reformatted body triggered %d extra builds", got-builds)
	}
}

func TestDescriptorBodyLimit(t *testing.T) {
	_, hs := newTestServer(t, Options{MaxDescriptorBytes: 64})
	resp, _ := post(t, hs.URL+"/v1/evaluate", strings.Repeat("x", 1000))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

func TestTraceEndpointMatchesLibraryReplay(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	d := desc.Sample1GbDDR3()
	m, err := core.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	cmds := trace.Streaming(m, 200, 0.7, 1)
	var tr bytes.Buffer
	if err := trace.WriteTrace(&tr, cmds); err != nil {
		t.Fatal(err)
	}

	resp, body := post(t, hs.URL+"/v1/trace", tr.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	res, err := trace.Replay(m, bytes.NewReader(tr.Bytes()), trace.ReplayOptions{Channels: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(TraceResponseFor(res, DescriptorKey(d), 1))
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(body, want) {
		t.Fatalf("served trace result differs from library replay:\nserved: %s\nlib:    %s", body, want)
	}
}

func TestTraceByModelKey(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	// Evaluate caches the model and returns its key.
	resp, body := post(t, hs.URL+"/v1/evaluate", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate status %d", resp.StatusCode)
	}
	var ev EvaluateResponse
	if err := json.Unmarshal(body, &ev); err != nil {
		t.Fatal(err)
	}
	resp, body = post(t, hs.URL+"/v1/trace?model="+ev.ModelKey, "0 act 2 17\n11 rd 2 17\n28 pre 2 17\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d: %s", resp.StatusCode, body)
	}
	var out TraceResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.ModelKey != ev.ModelKey || out.Commands != 3 {
		t.Fatalf("trace response %+v", out)
	}
	// An unknown key is 404, pointing at /v1/evaluate.
	resp, body = post(t, hs.URL+"/v1/trace?model=deadbeef", "0 act 0 0\n")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model status %d: %s", resp.StatusCode, body)
	}
}

// A dtb binary trace body under Content-Type application/x-dram-trace
// produces a response byte-identical to the same commands as text —
// encoding is transport, not semantics. A text body under the binary
// Content-Type is a positioned 400 (no silent fallback), and a binary
// body without the Content-Type still works via sniffing.
func TestTraceBinaryBody(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	d := desc.Sample1GbDDR3()
	m, err := core.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	cmds := trace.Streaming(m, 200, 0.7, 1)
	var text, bin bytes.Buffer
	if err := trace.WriteTrace(&text, cmds); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteBinaryTrace(&bin, cmds); err != nil {
		t.Fatal(err)
	}

	postCT := func(ct string, body []byte) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(hs.URL+"/v1/trace", ct, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, b
	}

	resp, wantBody := postCT("text/plain", text.Bytes())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("text body status %d: %s", resp.StatusCode, wantBody)
	}
	for name, ct := range map[string]string{
		"declared": TraceBinaryContentType,
		"params":   TraceBinaryContentType + "; charset=binary",
		"sniffed":  "application/octet-stream",
	} {
		resp, body := postCT(ct, bin.Bytes())
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s binary body status %d: %s", name, resp.StatusCode, body)
		}
		if !bytes.Equal(body, wantBody) {
			t.Errorf("%s binary replay differs from text replay:\nbinary: %s\ntext:   %s", name, body, wantBody)
		}
	}

	resp, body := postCT(TraceBinaryContentType, text.Bytes())
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("text body declared binary: status %d, want 400: %s", resp.StatusCode, body)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "dtb") {
		t.Errorf("error %q does not mention the dtb format", e.Error)
	}
}

func TestTraceParseErrorPositioned(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	resp, body := post(t, hs.URL+"/v1/trace", "0 act 0 0\nxx rd 0 0\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Line != 2 {
		t.Fatalf("error line = %d, want 2: %+v", e.Line, e)
	}
}

func TestSweepAndSchemesEndpoints(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	resp, body := post(t, hs.URL+"/v1/sweep?top=5", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, body)
	}
	var sw SweepResponse
	if err := json.Unmarshal(body, &sw); err != nil {
		t.Fatal(err)
	}
	if len(sw.Rows) != 5 || sw.Rows[0].RangePct <= 0 {
		t.Fatalf("sweep rows %+v", sw.Rows)
	}
	resp, body = post(t, hs.URL+"/v1/schemes", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schemes status %d: %s", resp.StatusCode, body)
	}
	var sc SchemesResponse
	if err := json.Unmarshal(body, &sc); err != nil {
		t.Fatal(err)
	}
	if len(sc.Rows) < 2 || sc.Rows[0].EnergyDeltaPct != 0 {
		t.Fatalf("schemes rows %+v", sc.Rows)
	}
}

func TestRoadmapEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	resp, err := http.Get(hs.URL + "/v1/roadmap")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var nodes []RoadmapNode
	if err := json.NewDecoder(resp.Body).Decode(&nodes); err != nil {
		t.Fatal(err)
	}
	if len(nodes) < 10 || nodes[0].FeatureNm != 170 {
		t.Fatalf("roadmap %d nodes, first %+v", len(nodes), nodes[0])
	}
}

func TestBackpressureReturns429(t *testing.T) {
	// One slot, no queueing: with a request parked in the handler, every
	// concurrent request must be rejected with 429 + Retry-After instead
	// of queueing unboundedly.
	s, hs := newTestServer(t, Options{MaxInflight: 1, QueueWait: -1})
	release := make(chan struct{})
	var inHandler sync.WaitGroup
	inHandler.Add(1)
	s.mux.Handle("POST /v1/block", s.api(func(w http.ResponseWriter, r *http.Request) {
		inHandler.Done()
		<-release
		w.WriteHeader(http.StatusOK)
	}))

	go http.Post(hs.URL+"/v1/block", "text/plain", nil)
	inHandler.Wait()

	var rejected atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(hs.URL+"/v1/evaluate", "text/plain", nil)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			if resp.StatusCode == http.StatusTooManyRequests {
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
				rejected.Add(1)
			}
		}()
	}
	wg.Wait()
	close(release)
	if rejected.Load() != 8 {
		t.Fatalf("rejected %d of 8 over-capacity requests, want all", rejected.Load())
	}
	if s.rejected.Value() != 8 {
		t.Fatalf("rejected counter = %d, want 8", s.rejected.Value())
	}
	// The slot frees up and the server serves again.
	resp, body := post(t, hs.URL+"/v1/evaluate", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-overload status %d: %s", resp.StatusCode, body)
	}
}

func TestQueueWaitAdmitsWhenSlotFrees(t *testing.T) {
	s, hs := newTestServer(t, Options{MaxInflight: 1, QueueWait: 5 * time.Second})
	release := make(chan struct{})
	var inHandler sync.WaitGroup
	inHandler.Add(1)
	s.mux.Handle("POST /v1/block", s.api(func(w http.ResponseWriter, r *http.Request) {
		inHandler.Done()
		<-release
		w.WriteHeader(http.StatusOK)
	}))
	go http.Post(hs.URL+"/v1/block", "text/plain", nil)
	inHandler.Wait()

	done := make(chan int, 1)
	go func() {
		resp, err := http.Post(hs.URL+"/v1/evaluate", "text/plain", nil)
		if err != nil {
			done <- -1
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		done <- resp.StatusCode
	}()
	// Let the second request park in the admission queue, then free the
	// slot: it must be admitted and succeed, not 429.
	time.Sleep(50 * time.Millisecond)
	close(release)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("queued request finished with %d, want 200", code)
	}
}

func TestTraceTimeoutMidStreamReturns504(t *testing.T) {
	// The per-request deadline firing in the middle of a streamed trace
	// body must be reported as a 504 timeout, not a 400 parse error: the
	// scanner wraps the context error in a positioned trace.ParseError,
	// and writeParseAwareError has to see through the wrapper.
	_, hs := newTestServer(t, Options{RequestTimeout: 100 * time.Millisecond})
	pr, pw := io.Pipe()
	defer pr.Close()
	go func() {
		// Trickle valid lines well past the deadline so the server is
		// mid-stream (reads keep succeeding) when it fires, then end the
		// body so the client finishes promptly after the early response.
		defer pw.Close()
		for slot := int64(0); slot < 100*60; slot += 100 {
			if _, err := pw.Write([]byte(fmt.Sprintf("%d ref\n", slot))); err != nil {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	req, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/trace", pr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("mid-stream timeout status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "timed out") {
		t.Fatalf("body %q does not mention the timeout", body)
	}
}

func TestQueuedClientCancelNotCountedRejected(t *testing.T) {
	// A client that gives up while parked in the admission queue is not an
	// overload rejection: the rejected counter must not move and the
	// request must not be answered 429 (it is logged as a 499 instead).
	s, hs := newTestServer(t, Options{MaxInflight: 1, QueueWait: 5 * time.Second})
	release := make(chan struct{})
	var inHandler sync.WaitGroup
	inHandler.Add(1)
	s.mux.Handle("POST /v1/block", s.api(func(w http.ResponseWriter, r *http.Request) {
		inHandler.Done()
		<-release
		w.WriteHeader(http.StatusOK)
	}))
	go http.Post(hs.URL+"/v1/block", "text/plain", nil)
	inHandler.Wait()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/v1/evaluate", nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	// Let the request park in the queue, then hang up.
	time.Sleep(50 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled queued request returned %v, want context.Canceled", err)
	}
	close(release)
	if got := s.rejected.Value(); got != 0 {
		t.Fatalf("rejected counter = %d after client cancel, want 0", got)
	}
	// The slot was never handed to the cancelled request; the server still
	// serves normally.
	resp, body := post(t, hs.URL+"/v1/evaluate", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-cancel status %d: %s", resp.StatusCode, body)
	}
}

func TestHealthAndReadiness(t *testing.T) {
	s, hs := newTestServer(t, Options{})
	get := func(path string) int {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if get("/healthz") != http.StatusOK {
		t.Fatal("healthz not 200")
	}
	if get("/readyz") != http.StatusServiceUnavailable {
		t.Fatal("readyz should be 503 before Serve")
	}
	s.SetReady(true)
	if get("/readyz") != http.StatusOK {
		t.Fatal("readyz not 200 when ready")
	}
	s.SetReady(false)
	if get("/readyz") != http.StatusServiceUnavailable {
		t.Fatal("readyz not 503 when draining")
	}
}

func TestServeDrainsInflightRequests(t *testing.T) {
	// Cancel the serve context while a request is in flight: Serve must
	// flip readiness, wait for the response to finish, and return nil.
	s := New(Options{})
	defer s.Close()
	release := make(chan struct{})
	s.mux.Handle("POST /v1/block", s.api(func(w http.ResponseWriter, r *http.Request) {
		<-release
		w.Write([]byte("drained ok"))
	}))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ctx, ln, 5*time.Second) }()

	url := "http://" + ln.Addr().String()
	waitReady(t, url)

	respCh := make(chan string, 1)
	go func() {
		resp, err := http.Post(url+"/v1/block", "text/plain", nil)
		if err != nil {
			respCh <- "error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		respCh <- string(b)
	}()
	// Wait until the request is parked in the handler, then start the
	// drain; the in-flight request must still complete.
	waitInflight(t, s)
	cancel()
	time.Sleep(50 * time.Millisecond) // shutdown under way
	close(release)
	if got := <-respCh; got != "drained ok" {
		t.Fatalf("in-flight request got %q, want full response", got)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v after drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
}

func waitReady(t *testing.T, url string) {
	t.Helper()
	for i := 0; i < 100; i++ {
		resp, err := http.Get(url + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("server never became ready")
}

func waitInflight(t *testing.T, s *Server) {
	t.Helper()
	for i := 0; i < 100; i++ {
		if s.inflight.Value() > 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("request never entered the handler")
}

func TestMetricsExposition(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	post(t, hs.URL+"/v1/evaluate", "")
	post(t, hs.URL+"/v1/evaluate", "")
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	out := string(b)
	for _, want := range []string{
		"dramserved_model_cache_hits_total 1",
		"dramserved_model_cache_misses_total 1",
		"dramserved_model_builds_total 1",
		`dramserved_requests_total{path="/v1/evaluate",code="200"} 2`,
		`dramserved_request_seconds_bucket{path="/v1/evaluate",le="+Inf"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestAccessLogAndRequestID(t *testing.T) {
	var buf syncBuffer
	_, hs := newTestServer(t, Options{AccessLog: &buf})
	resp, _ := post(t, hs.URL+"/v1/evaluate", "")
	id := resp.Header.Get("X-Request-Id")
	if id == "" {
		t.Fatal("no X-Request-Id header")
	}
	var rec map[string]any
	line := strings.TrimSpace(buf.String())
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("access log line %q: %v", line, err)
	}
	if rec["request_id"] != id || rec["path"] != "/v1/evaluate" || rec["status"] != float64(200) {
		t.Fatalf("access record %v", rec)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for log capture.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestConcurrentMixedTraffic(t *testing.T) {
	// A race-detector workout across every endpoint at once.
	_, hs := newTestServer(t, Options{MaxInflight: 8, CacheSize: 2})
	paths := []struct{ path, body string }{
		{"/v1/evaluate", ""},
		{"/v1/evaluate", "Name other\n"}, // parse error; exercises 400 path
		{"/v1/trace", "0 act 2 17\n11 rd 2 17\n28 pre 2 17\n"},
		{"/v1/sweep?top=3", ""},
		{"/v1/schemes", ""},
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				p := paths[(w+i)%len(paths)]
				resp, err := http.Post(hs.URL+p.path, "text/plain", strings.NewReader(p.body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode >= 500 {
					t.Errorf("%s: status %d", p.path, resp.StatusCode)
					return
				}
			}
			// Interleave reads of the metrics endpoint.
			resp, err := http.Get(hs.URL + "/metrics")
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
	}
	wg.Wait()
}

func TestMethodNotAllowed(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	resp, err := http.Get(hs.URL + "/v1/evaluate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/evaluate = %d, want 405", resp.StatusCode)
	}
}

// Acceptance: a ~90%-power-down-residency trace served through /v1/trace
// reports the power-state breakdown bit-identically to the library replay,
// with the background within the residency-weighted sum, and the trace
// residency counters exported on /metrics.
func TestTracePowerStateBreakdownAndMetrics(t *testing.T) {
	s, hs := newTestServer(t, Options{})
	d := desc.Sample1GbDDR3()
	m, err := core.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	cmds := trace.WithPowerDown(m, trace.RefreshOnly(m, 50), 1)
	var tr bytes.Buffer
	if err := trace.WriteTrace(&tr, cmds); err != nil {
		t.Fatal(err)
	}

	resp, body := post(t, hs.URL+"/v1/trace", tr.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	res, err := trace.Replay(m, bytes.NewReader(tr.Bytes()), trace.ReplayOptions{Channels: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(TraceResponseFor(res, DescriptorKey(d), 1))
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(body, want) {
		t.Fatalf("served power-state result differs from library replay:\nserved: %s\nlib:    %s", body, want)
	}

	var out TraceResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if share := float64(out.PowerDownSlots) / float64(out.Slots); share < 0.9 {
		t.Errorf("power-down residency %.2f, want >= 0.9", share)
	}
	if out.Counts["pde"] == 0 || out.Counts["pde"] != out.Counts["pdx"] {
		t.Errorf("power-state counts: %v", out.Counts)
	}
	clock := float64(m.D.Spec.ControlClock)
	wantBg := float64(m.Background().Power)*(float64(out.ActiveSlots+out.PrechargedSlots)/clock) +
		float64(m.PowerDownPower())*(float64(out.PowerDownSlots)/clock)
	if gotBg := out.BackgroundJ; gotBg < 0.95*wantBg || gotBg > 1.05*wantBg {
		t.Errorf("served background %g outside 5%% of residency-weighted %g", gotBg, wantBg)
	}

	// The residency counters feed the metrics endpoint.
	if got := s.traceSlots.Value(); got != res.Slots {
		t.Errorf("trace_slots_total = %d, want %d", got, res.Slots)
	}
	if got := s.tracePowerDownSlots.Value(); got != res.PowerDownSlots {
		t.Errorf("trace_powerdown_slots_total = %d, want %d", got, res.PowerDownSlots)
	}
	if got := s.traceSelfRefreshSlots.Value(); got != 0 {
		t.Errorf("trace_selfrefresh_slots_total = %d, want 0", got)
	}
	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"dramserved_trace_slots_total",
		"dramserved_trace_powerdown_slots_total",
		"dramserved_trace_selfrefresh_slots_total",
	} {
		if !strings.Contains(string(mb), series) {
			t.Errorf("/metrics missing %s", series)
		}
	}
}

// The IDD block served by /v1/evaluate includes the self-refresh current.
func TestEvaluateReportsIDD6(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	resp, body := post(t, hs.URL+"/v1/evaluate", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out EvaluateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.IDDMA.IDD6 <= 0 || out.IDDMA.IDD6 >= out.IDDMA.IDD2P {
		t.Errorf("IDD6 %.3f mA should be positive and below IDD2P %.3f mA", out.IDDMA.IDD6, out.IDDMA.IDD2P)
	}
}
