// Package tech implements the device and wire capacitance models of
// Section III.B.2–3 of the paper: gate capacitance from gate area and
// equivalent oxide thickness, junction capacitance from junction width and
// a specific capacitance per width, and wire capacitance from length and a
// specific capacitance per length. Everything the power engine charges or
// discharges is expressed through these three calculators.
package tech

import (
	"math"

	"drampower/internal/desc"
	"drampower/internal/units"
)

// Permittivity constants.
const (
	// Epsilon0 is the vacuum permittivity in F/m.
	Epsilon0 = 8.8541878128e-12
	// EpsilonSiO2 is the relative permittivity of silicon dioxide. Gate
	// oxide thicknesses in the model are equivalent (SiO2) thicknesses, so
	// high-k stacks are already folded into the thickness value.
	EpsilonSiO2 = 3.9
	// EpsilonOx is the absolute gate oxide permittivity in F/m.
	EpsilonOx = Epsilon0 * EpsilonSiO2
)

// GateCap returns the gate capacitance of a transistor of the given width,
// length and equivalent oxide thickness: C = εox · W · L / tox.
func GateCap(w, l, tox units.Length) units.Capacitance {
	if tox <= 0 {
		return 0
	}
	return units.Capacitance(EpsilonOx * float64(w) * float64(l) / float64(tox))
}

// JunctionCap returns the junction (drain/source) capacitance of a device
// of the given width: C = cj · W with cj the specific junction capacitance
// per meter of device width.
func JunctionCap(w units.Length, cj units.CapacitancePerLength) units.Capacitance {
	return units.Capacitance(float64(cj) * float64(w))
}

// WireCap returns the capacitance of a wire: C = c · len.
func WireCap(l units.Length, c units.CapacitancePerLength) units.Capacitance {
	return units.Capacitance(float64(c) * float64(l))
}

// DeviceClass selects which oxide / junction parameters apply to a device.
type DeviceClass int

// Device classes of the model: general logic transistors (Vint domain),
// thick-oxide high-voltage transistors (Vpp domain) and the cell access
// transistor.
const (
	ClassLogic DeviceClass = iota
	ClassHV
	ClassCell
)

// Params bundles the technology description with derived accessors.
type Params struct {
	T *desc.Technology
}

// Oxide returns the equivalent gate oxide thickness of the class.
func (p Params) Oxide(c DeviceClass) units.Length {
	switch c {
	case ClassHV:
		return p.T.GateOxideHV
	case ClassCell:
		return p.T.GateOxideCell
	}
	return p.T.GateOxideLogic
}

// Junction returns the specific junction capacitance of the class. The
// cell access transistor junction is dominated by the cell contact and is
// folded into the bitline capacitance, so ClassCell reports the HV value
// (its gate oxide class) for the rare cases where a junction estimate is
// needed.
func (p Params) Junction(c DeviceClass) units.CapacitancePerLength {
	if c == ClassLogic {
		return p.T.JunctionCapLogic
	}
	return p.T.JunctionCapHV
}

// GateLoad returns the gate capacitance of a device of width w and length
// l in class c. A zero length selects the class's minimum gate length.
func (p Params) GateLoad(w, l units.Length, c DeviceClass) units.Capacitance {
	if l == 0 {
		switch c {
		case ClassHV:
			l = p.T.MinGateLengthHV
		case ClassCell:
			l = p.T.CellAccessLength
		default:
			l = p.T.MinGateLengthLogic
		}
	}
	return GateCap(w, l, p.Oxide(c))
}

// DrainLoad returns the junction capacitance a device of width w in class
// c presents to the node at its drain.
func (p Params) DrainLoad(w units.Length, c DeviceClass) units.Capacitance {
	return JunctionCap(w, p.Junction(c))
}

// BufferLoad returns the switching load of a CMOS buffer/re-driver with
// the given NMOS and PMOS widths: the input gate capacitance of both
// devices plus their output junction capacitance (the self-load the buffer
// adds to the wire it drives). Buffers in the signaling floorplan are
// general-logic devices.
func (p Params) BufferLoad(wn, wp units.Length) units.Capacitance {
	in := p.GateLoad(wn, 0, ClassLogic) + p.GateLoad(wp, 0, ClassLogic)
	out := p.DrainLoad(wn, ClassLogic) + p.DrainLoad(wp, ClassLogic)
	return in + out
}

// CellAccessGateCap returns the gate capacitance of one cell access
// transistor, the dominant load of a local wordline.
func (p Params) CellAccessGateCap() units.Capacitance {
	return GateCap(p.T.CellAccessWidth, p.T.CellAccessLength, p.T.GateOxideCell)
}

// LogicGateCap returns the average switched capacitance per gate of a
// miscellaneous logic block: the gate and junction capacitance of its
// average transistors plus an area-derived local wiring load
// (Section III.B.5: "the wire load as function of the block size").
func (p Params) LogicGateCap(b *desc.LogicBlock, wireCap units.CapacitancePerLength) units.Capacitance {
	avgW := units.Length((float64(b.AvgNMOSWidth) + float64(b.AvgPMOSWidth)) / 2)
	perTransistor := p.GateLoad(avgW, 0, ClassLogic) + p.DrainLoad(avgW, ClassLogic)
	device := perTransistor.Times(b.TransistorsPerGate)

	// Block area from the gate count: each transistor occupies
	// W × L / density. Local wiring charges each gate with a routed wire
	// several gate pitches long (fanout routing within the block), scaled
	// by the wiring density. DRAM periphery has few metal levels, so
	// routes detour: logicRoutingFactor pitches per net is typical.
	if b.GateDensity > 0 && wireCap > 0 {
		areaPerGate := float64(avgW) * float64(p.T.MinGateLengthLogic) *
			b.TransistorsPerGate / b.GateDensity
		wireLen := units.Length(math.Sqrt(areaPerGate) * logicRoutingFactor)
		device += WireCap(wireLen, wireCap).Times(b.WiringDensity * b.TransistorsPerGate)
	}
	return device
}

// logicRoutingFactor is the average routed wire length per gate of
// peripheral logic, in units of the gate pitch.
const logicRoutingFactor = 6
