package tech

import (
	"math"
	"testing"
	"testing/quick"

	"drampower/internal/desc"
	"drampower/internal/units"
)

func sampleParams() Params {
	d := desc.Sample1GbDDR3()
	return Params{T: &d.Technology}
}

func TestGateCap(t *testing.T) {
	// 1um x 100nm gate over 4nm oxide:
	// C = 3.9*8.854e-12 * 1e-6 * 1e-7 / 4e-9 = 0.863 fF
	c := GateCap(units.Micrometers(1), units.Nanometers(100), units.Nanometers(4))
	want := EpsilonOx * 1e-6 * 1e-7 / 4e-9
	if math.Abs(float64(c)-want) > 1e-9*want {
		t.Errorf("gate cap: got %v, want %g", c, want)
	}
	// Sanity: the number should be in the sub-femtofarad ballpark.
	if ff := c.Femtofarads(); ff < 0.5 || ff > 1.5 {
		t.Errorf("gate cap out of physical ballpark: %g fF", ff)
	}
	if GateCap(1, 1, 0) != 0 {
		t.Error("zero oxide thickness should yield zero capacitance")
	}
}

func TestJunctionCap(t *testing.T) {
	c := JunctionCap(units.Micrometers(2), units.FemtofaradsPerMicrometer(0.8))
	if got := c.Femtofarads(); math.Abs(got-1.6) > 1e-9 {
		t.Errorf("junction cap: got %gfF, want 1.6fF", got)
	}
}

func TestWireCap(t *testing.T) {
	c := WireCap(units.Micrometers(1000), units.FemtofaradsPerMicrometer(0.2))
	if got := c.Femtofarads(); math.Abs(got-200) > 1e-6 {
		t.Errorf("wire cap: got %gfF, want 200fF", got)
	}
}

func TestOxideSelection(t *testing.T) {
	p := sampleParams()
	if p.Oxide(ClassLogic) != p.T.GateOxideLogic {
		t.Error("logic oxide mismatch")
	}
	if p.Oxide(ClassHV) != p.T.GateOxideHV {
		t.Error("HV oxide mismatch")
	}
	if p.Oxide(ClassCell) != p.T.GateOxideCell {
		t.Error("cell oxide mismatch")
	}
}

func TestJunctionSelection(t *testing.T) {
	p := sampleParams()
	if p.Junction(ClassLogic) != p.T.JunctionCapLogic {
		t.Error("logic junction mismatch")
	}
	if p.Junction(ClassHV) != p.T.JunctionCapHV {
		t.Error("HV junction mismatch")
	}
}

func TestGateLoadDefaultLength(t *testing.T) {
	p := sampleParams()
	w := units.Micrometers(1)
	// Explicit minimum length equals default (zero) length.
	if p.GateLoad(w, p.T.MinGateLengthLogic, ClassLogic) != p.GateLoad(w, 0, ClassLogic) {
		t.Error("default logic gate length should be the minimum gate length")
	}
	if p.GateLoad(w, p.T.MinGateLengthHV, ClassHV) != p.GateLoad(w, 0, ClassHV) {
		t.Error("default HV gate length should be the minimum HV gate length")
	}
	if p.GateLoad(w, p.T.CellAccessLength, ClassCell) != p.GateLoad(w, 0, ClassCell) {
		t.Error("default cell gate length should be the access transistor length")
	}
}

func TestBufferLoad(t *testing.T) {
	p := sampleParams()
	got := p.BufferLoad(units.Micrometers(9.6), units.Micrometers(19.2))
	// Must equal the sum of its parts.
	want := p.GateLoad(units.Micrometers(9.6), 0, ClassLogic) +
		p.GateLoad(units.Micrometers(19.2), 0, ClassLogic) +
		p.DrainLoad(units.Micrometers(9.6), ClassLogic) +
		p.DrainLoad(units.Micrometers(19.2), ClassLogic)
	if math.Abs(float64(got)-float64(want)) > 1e-9*float64(want) {
		t.Errorf("buffer load: got %v, want %v", got, want)
	}
	// Physical ballpark: tens of fF for a large re-driver.
	if ff := got.Femtofarads(); ff < 10 || ff > 200 {
		t.Errorf("buffer load out of ballpark: %g fF", ff)
	}
}

func TestCellAccessGateCap(t *testing.T) {
	p := sampleParams()
	c := p.CellAccessGateCap()
	// 55nm x 100nm gate over 6.5nm: ~0.03 fF.
	if ff := c.Femtofarads(); ff < 0.01 || ff > 0.1 {
		t.Errorf("cell access gate cap out of ballpark: %g fF", ff)
	}
}

func TestLogicGateCap(t *testing.T) {
	p := sampleParams()
	d := desc.Sample1GbDDR3()
	b := &d.LogicBlocks[0]
	c := p.LogicGateCap(b, p.T.WireCapSignal)
	// A 4-transistor gate with ~1um devices: a few fF including wiring.
	if ff := c.Femtofarads(); ff < 1 || ff > 30 {
		t.Errorf("logic gate cap out of ballpark: %g fF", ff)
	}
	// Without wiring the load must be strictly smaller.
	noWire := p.LogicGateCap(b, 0)
	if noWire >= c {
		t.Errorf("wiring load missing: %v >= %v", noWire, c)
	}
}

// Property: gate capacitance is linear in width and inversely proportional
// to oxide thickness.
func TestPropGateCapScaling(t *testing.T) {
	f := func(wRaw, toxRaw uint16) bool {
		w := units.Length(float64(wRaw%1000+1) * 1e-9)
		tox := units.Length(float64(toxRaw%20+1) * 1e-9)
		l := units.Nanometers(100)
		c1 := GateCap(w, l, tox)
		c2 := GateCap(w*2, l, tox)
		c3 := GateCap(w, l, tox*2)
		lin := math.Abs(float64(c2)-2*float64(c1)) < 1e-9*float64(c2)
		inv := math.Abs(float64(c3)-0.5*float64(c1)) < 1e-9*float64(c1)
		return lin && inv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: LogicGateCap grows monotonically with transistor count.
func TestPropLogicGateCapMonotonic(t *testing.T) {
	p := sampleParams()
	d := desc.Sample1GbDDR3()
	f := func(nRaw uint8) bool {
		b1 := d.LogicBlocks[0]
		b2 := b1
		b1.TransistorsPerGate = float64(nRaw%8 + 1)
		b2.TransistorsPerGate = b1.TransistorsPerGate + 1
		return p.LogicGateCap(&b2, p.T.WireCapSignal) > p.LogicGateCap(&b1, p.T.WireCapSignal)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
