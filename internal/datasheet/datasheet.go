// Package datasheet embeds the vendor datasheet IDD values the paper
// verifies its model against (Section IV.A, Figures 8–9, references [22]
// and [23]): 1 Gb DDR2 parts (Samsung K4T1G044QQ family, Hynix
// H5PS1G63EFR, Micron MT47H64M16, Elpida EDE1116ACBG, Qimonda
// HYI18T1G160C2) and 1 Gb DDR3 parts (Samsung K4B1G0446D family, Hynix
// H5TQ1G63AFP, Micron MT41J64M16, Elpida EDJ1116BBSE, Qimonda
// IDSH1G-04A1F1C).
//
// The numbers are the typical IDD specifications published in the
// 2007–2010 datasheets, transcribed to the nearest 5 mA. They are a
// comparison target, not a calibration input: the point of Figures 8–9 is
// that datasheet values show a large vendor spread ("due to the different
// technologies used ... and differences in the power efficiencies of the
// approach used by different DRAM vendors") and that the model lands
// within it.
package datasheet

import (
	"fmt"
	"sort"

	"drampower/internal/core"
	"drampower/internal/engine"
	"drampower/internal/scaling"
	"drampower/internal/units"
)

// Metric is one of the compared supply currents.
type Metric string

// Compared metrics (Idd0 is the row operation current, Idd4R/Idd4W the
// gapless read/write currents; the labels follow the figures).
const (
	Idd0  Metric = "Idd0"
	Idd4R Metric = "Idd4R"
	Idd4W Metric = "Idd4W"
)

// Vendors in the dataset, keyed like the references.
var Vendors = []string{"Samsung", "Hynix", "Micron", "Elpida", "Qimonda"}

// Point is one comparison point of Figure 8 or 9: a metric at a data rate
// and device width, with the per-vendor datasheet values in milliamperes.
type Point struct {
	Metric       Metric
	DataRateMbps int
	IOWidth      int
	// VendorMA maps vendor name to the typical datasheet value in mA.
	VendorMA map[string]float64
}

// Label renders the x-axis label of the figures, e.g. "Idd0 533 x4".
func (p Point) Label() string {
	return fmt.Sprintf("%s %d x%d", p.Metric, p.DataRateMbps, p.IOWidth)
}

// Min, Max and Mean summarize the vendor spread.
func (p Point) Min() float64 {
	first := true
	var m float64
	for _, v := range p.VendorMA {
		if first || v < m {
			m, first = v, false
		}
	}
	return m
}

// Max returns the largest vendor value.
func (p Point) Max() float64 {
	var m float64
	for _, v := range p.VendorMA {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the average vendor value.
func (p Point) Mean() float64 {
	var s float64
	for _, v := range p.VendorMA {
		s += v
	}
	return s / float64(len(p.VendorMA))
}

func pt(metric Metric, rate, width int, samsung, hynix, micron, elpida, qimonda float64) Point {
	return Point{Metric: metric, DataRateMbps: rate, IOWidth: width,
		VendorMA: map[string]float64{
			"Samsung": samsung, "Hynix": hynix, "Micron": micron,
			"Elpida": elpida, "Qimonda": qimonda,
		}}
}

// DDR2Points returns the comparison points of Figure 8 (1 Gb DDR2).
func DDR2Points() []Point {
	return []Point{
		pt(Idd0, 533, 4, 65, 70, 85, 60, 75),
		pt(Idd0, 800, 8, 75, 80, 95, 70, 85),
		pt(Idd4R, 533, 4, 95, 105, 115, 90, 100),
		pt(Idd4R, 533, 8, 100, 110, 125, 95, 105),
		pt(Idd4R, 800, 8, 135, 145, 160, 125, 140),
		pt(Idd4R, 800, 16, 175, 190, 210, 160, 185),
		pt(Idd4W, 533, 4, 90, 100, 110, 85, 95),
		pt(Idd4W, 800, 8, 125, 135, 155, 120, 135),
		pt(Idd4W, 800, 16, 165, 185, 205, 155, 180),
	}
}

// DDR3Points returns the comparison points of Figure 9 (1 Gb DDR3).
func DDR3Points() []Point {
	return []Point{
		pt(Idd0, 1066, 8, 55, 60, 70, 50, 65),
		pt(Idd0, 1600, 16, 65, 70, 85, 60, 75),
		pt(Idd4R, 1066, 8, 95, 105, 120, 90, 110),
		pt(Idd4R, 1600, 8, 130, 140, 160, 120, 145),
		pt(Idd4R, 1600, 16, 175, 190, 220, 160, 200),
		pt(Idd4W, 1066, 8, 90, 100, 115, 85, 105),
		pt(Idd4W, 1600, 8, 125, 135, 155, 115, 140),
		pt(Idd4W, 1600, 16, 170, 185, 215, 155, 195),
	}
}

// Comparison is one row of the model-vs-datasheet tables behind
// Figures 8–9.
type Comparison struct {
	Point Point
	// ModelMA maps a technology label ("65nm", "55nm") to the model's
	// value in mA.
	ModelMA map[string]float64
}

// WithinSpread reports whether at least one of the model's technology
// points lands within the vendor spread widened by the given relative
// margin (the paper's "good agreement" criterion — datasheet values
// themselves spread by 30 % and more).
func (c Comparison) WithinSpread(margin float64) bool {
	lo := c.Point.Min() * (1 - margin)
	hi := c.Point.Max() * (1 + margin)
	for _, v := range c.ModelMA {
		if v >= lo && v <= hi {
			return true
		}
	}
	return false
}

// Standard selects the figure to reproduce.
type Standard int

// The two verification standards.
const (
	DDR2 Standard = iota
	DDR3
)

// String names the standard.
func (s Standard) String() string {
	if s == DDR2 {
		return "DDR2"
	}
	return "DDR3"
}

// Compare evaluates the model against the datasheet points of the given
// standard. Following Section IV.A, DDR2 devices are modeled in typical
// 75 nm and 65 nm technologies and DDR3 devices in 65 nm and 55 nm — "the
// comparison assumed technology nodes which were typically used for high
// volume parts in the time frame the DRAMs ... were on the market".
func Compare(std Standard) ([]Comparison, error) {
	return CompareOpts(std, engine.Options{Workers: 1})
}

// CompareOpts is Compare with batch-evaluation options: the distinct
// (node, width, rate) models build concurrently, then the comparison rows
// assemble serially from the cache. Any worker count produces the same
// rows in the same order.
func CompareOpts(std Standard, opts engine.Options) ([]Comparison, error) {
	var points []Point
	var nodesNm []float64
	var iface scaling.Interface
	switch std {
	case DDR2:
		points = DDR2Points()
		nodesNm = []float64{75, 65}
		iface = scaling.DDR2
	default:
		points = DDR3Points()
		nodesNm = []float64{65, 55}
		iface = scaling.DDR3
	}

	// Model cache: one build per (node, width, rate).
	type key struct {
		nm    float64
		width int
		rate  int
	}
	var keys []key
	seen := map[key]bool{}
	for _, p := range points {
		for _, nm := range nodesNm {
			k := key{nm, p.IOWidth, p.DataRateMbps}
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	built, err := engine.Map(keys, func(_ int, k key) (*core.Model, error) {
		dv, err := scaling.DeviceFor(k.nm, iface, 1<<30, k.width,
			units.DataRate(float64(k.rate)*1e6))
		if err != nil {
			return nil, err
		}
		m, err := core.Build(dv.Build())
		if err != nil {
			return nil, fmt.Errorf("datasheet: %s x%d @%dMbps %gnm: %w",
				std, k.width, k.rate, k.nm, err)
		}
		return m, nil
	}, opts)
	if err != nil {
		return nil, err
	}
	models := make(map[key]*core.Model, len(keys))
	for i, k := range keys {
		models[k] = built[i]
	}

	var out []Comparison
	for _, p := range points {
		c := Comparison{Point: p, ModelMA: map[string]float64{}}
		for _, nm := range nodesNm {
			m := models[key{nm, p.IOWidth, p.DataRateMbps}]
			idd := m.IDD()
			var val units.Current
			switch p.Metric {
			case Idd0:
				val = idd.IDD0
			case Idd4R:
				val = idd.IDD4R
			case Idd4W:
				val = idd.IDD4W
			}
			c.ModelMA[fmt.Sprintf("%.0fnm", nm)] = val.Milliamps()
		}
		out = append(out, c)
	}
	return out, nil
}

// SpreadStats reports the vendor spread of a point set: the mean of
// max/min ratios, demonstrating the "quite large spread" of Section IV.A.
func SpreadStats(points []Point) (meanRatio float64) {
	if len(points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range points {
		sum += p.Max() / p.Min()
	}
	return sum / float64(len(points))
}

// SortedVendors returns the vendor values of a point in a stable vendor
// order for table output.
func (p Point) SortedVendors() []struct {
	Vendor string
	MA     float64
} {
	keys := make([]string, 0, len(p.VendorMA))
	for k := range p.VendorMA {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]struct {
		Vendor string
		MA     float64
	}, len(keys))
	for i, k := range keys {
		out[i] = struct {
			Vendor string
			MA     float64
		}{k, p.VendorMA[k]}
	}
	return out
}
