package datasheet

import (
	"testing"
)

func TestDatasetShape(t *testing.T) {
	for _, set := range [][]Point{DDR2Points(), DDR3Points()} {
		if len(set) < 8 {
			t.Fatalf("dataset too small: %d points", len(set))
		}
		for _, p := range set {
			if len(p.VendorMA) != len(Vendors) {
				t.Errorf("%s: %d vendors, want %d", p.Label(), len(p.VendorMA), len(Vendors))
			}
			for _, v := range Vendors {
				val, ok := p.VendorMA[v]
				if !ok {
					t.Errorf("%s: missing vendor %s", p.Label(), v)
					continue
				}
				if val < 20 || val > 400 {
					t.Errorf("%s %s: %g mA implausible", p.Label(), v, val)
				}
			}
			if p.Min() > p.Mean() || p.Mean() > p.Max() {
				t.Errorf("%s: min/mean/max ordering broken", p.Label())
			}
		}
	}
}

func TestPointLabel(t *testing.T) {
	p := DDR2Points()[0]
	if p.Label() != "Idd0 533 x4" {
		t.Errorf("label: got %q, want the paper's axis format", p.Label())
	}
}

func TestVendorSpreadIsLarge(t *testing.T) {
	// Section IV.A: "the data sheet values show a quite large spread".
	for _, c := range []struct {
		name   string
		points []Point
	}{{"DDR2", DDR2Points()}, {"DDR3", DDR3Points()}} {
		ratio := SpreadStats(c.points)
		if ratio < 1.2 {
			t.Errorf("%s: vendor spread ratio %.2f, expected > 1.2", c.name, ratio)
		}
		if ratio > 2.0 {
			t.Errorf("%s: vendor spread ratio %.2f implausibly large", c.name, ratio)
		}
	}
}

func TestFig8DDR2Comparison(t *testing.T) {
	rows, err := Compare(DDR2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(DDR2Points()) {
		t.Fatalf("rows: got %d", len(rows))
	}
	for _, c := range rows {
		if len(c.ModelMA) != 2 {
			t.Errorf("%s: want 2 technology points, got %v", c.Point.Label(), c.ModelMA)
		}
		if _, ok := c.ModelMA["75nm"]; !ok {
			t.Errorf("%s: missing 75nm model value", c.Point.Label())
		}
		if !c.WithinSpread(0.25) {
			t.Errorf("%s: model %v outside sheet [%g, %g] ±25%%",
				c.Point.Label(), c.ModelMA, c.Point.Min(), c.Point.Max())
		}
	}
}

func TestFig9DDR3Comparison(t *testing.T) {
	rows, err := Compare(DDR3)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rows {
		if _, ok := c.ModelMA["55nm"]; !ok {
			t.Errorf("%s: missing 55nm model value", c.Point.Label())
		}
		if !c.WithinSpread(0.25) {
			t.Errorf("%s: model %v outside sheet [%g, %g] ±25%%",
				c.Point.Label(), c.ModelMA, c.Point.Min(), c.Point.Max())
		}
	}
}

func TestModelDescribesDependencies(t *testing.T) {
	// "The dependency of current on operating frequency, interface
	// standard, I/O width and type of operation is described correctly."
	rows, err := Compare(DDR3)
	if err != nil {
		t.Fatal(err)
	}
	get := func(metric Metric, rate, width int) map[string]float64 {
		for _, c := range rows {
			if c.Point.Metric == metric && c.Point.DataRateMbps == rate &&
				c.Point.IOWidth == width {
				return c.ModelMA
			}
		}
		t.Fatalf("point %s %d x%d not found", metric, rate, width)
		return nil
	}
	// Frequency dependency: Idd4R rises with data rate.
	lo := get(Idd4R, 1066, 8)["55nm"]
	hi := get(Idd4R, 1600, 8)["55nm"]
	if hi <= lo {
		t.Errorf("Idd4R should rise with data rate: %g (1066) vs %g (1600)", lo, hi)
	}
	// Width dependency: Idd4R rises with I/O width at fixed rate.
	x8 := get(Idd4R, 1600, 8)["55nm"]
	x16 := get(Idd4R, 1600, 16)["55nm"]
	if x16 <= x8 {
		t.Errorf("Idd4R should rise with width: x8=%g, x16=%g", x8, x16)
	}
	// Operation dependency: Idd0 < Idd4R at the same point.
	if i0 := get(Idd0, 1600, 16)["55nm"]; i0 >= x16 {
		t.Errorf("Idd0 (%g) should be below Idd4R (%g)", i0, x16)
	}
	// Technology dependency: the newer node draws less.
	for _, c := range rows {
		if c.ModelMA["55nm"] >= c.ModelMA["65nm"] {
			t.Errorf("%s: 55nm (%g) should draw less than 65nm (%g)",
				c.Point.Label(), c.ModelMA["55nm"], c.ModelMA["65nm"])
		}
	}
}

func TestSortedVendorsStable(t *testing.T) {
	p := DDR3Points()[0]
	rows := p.SortedVendors()
	if len(rows) != len(Vendors) {
		t.Fatalf("rows: %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Vendor >= rows[i].Vendor {
			t.Errorf("vendors not sorted: %s >= %s", rows[i-1].Vendor, rows[i].Vendor)
		}
	}
}

func TestStandardString(t *testing.T) {
	if DDR2.String() != "DDR2" || DDR3.String() != "DDR3" {
		t.Error("standard names wrong")
	}
}
