package trace

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"drampower/internal/core"
	"drampower/internal/desc"
)

func model(t *testing.T) *core.Model {
	t.Helper()
	m, err := core.Build(desc.Sample1GbDDR3())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTimingSlotsResolution(t *testing.T) {
	m := model(t)
	s := New(m)
	tRC, tRCD, tRP, tRAS, tRRD, tFAW, burst := s.TimingSlots()
	// 800 MHz control clock: tRC 48.75ns -> 39 slots, tRCD/tRP 13.75ns ->
	// 11, tRAS = 39-11 = 28, tRRD 7.5ns -> 6, tFAW 40ns -> 32, burst 4.
	for _, c := range []struct {
		name string
		got  int64
		want int64
	}{
		{"tRC", tRC, 39}, {"tRCD", tRCD, 11}, {"tRP", tRP, 11},
		{"tRAS", tRAS, 28}, {"tRRD", tRRD, 6}, {"tFAW", tFAW, 32},
		{"burst", burst, 4},
	} {
		if c.got != c.want {
			t.Errorf("%s: got %d slots, want %d", c.name, c.got, c.want)
		}
	}
}

func TestLegalActReadPrecharge(t *testing.T) {
	m := model(t)
	s := New(m)
	cmds := []Command{
		{Slot: 0, Op: desc.OpActivate, Bank: 0, Row: 42},
		{Slot: 11, Op: desc.OpRead, Bank: 0, Row: 42},
		{Slot: 28, Op: desc.OpPrecharge, Bank: 0, Row: 42},
		{Slot: 39, Op: desc.OpActivate, Bank: 0, Row: 7},
	}
	if err := s.Run(cmds); err != nil {
		t.Fatalf("legal trace rejected: %v", err)
	}
	res := s.Result(50)
	if res.Counts[desc.OpActivate] != 2 || res.Counts[desc.OpRead] != 1 {
		t.Errorf("counts: %v", res.Counts)
	}
	if res.Bits != int64(m.BitsPerBurst()) {
		t.Errorf("bits: got %d, want %d", res.Bits, m.BitsPerBurst())
	}
}

func expectViolation(t *testing.T, m *core.Model, cmds []Command, substr string) {
	t.Helper()
	s := New(m)
	err := s.Run(cmds)
	if err == nil {
		t.Fatalf("expected %q violation, trace accepted", substr)
	}
	var te *TimingError
	if !errors.As(err, &te) {
		t.Fatalf("error is %T, want *TimingError", err)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Errorf("error %q does not mention %q", err, substr)
	}
}

func TestTimingViolations(t *testing.T) {
	m := model(t)
	t.Run("read before tRCD", func(t *testing.T) {
		expectViolation(t, m, []Command{
			{Slot: 0, Op: desc.OpActivate, Bank: 0, Row: 1},
			{Slot: 5, Op: desc.OpRead, Bank: 0, Row: 1},
		}, "tRCD")
	})
	t.Run("read on idle bank", func(t *testing.T) {
		expectViolation(t, m, []Command{
			{Slot: 0, Op: desc.OpRead, Bank: 0, Row: 1},
		}, "not active")
	})
	t.Run("read wrong row", func(t *testing.T) {
		expectViolation(t, m, []Command{
			{Slot: 0, Op: desc.OpActivate, Bank: 0, Row: 1},
			{Slot: 20, Op: desc.OpRead, Bank: 0, Row: 2},
		}, "row")
	})
	t.Run("double activate", func(t *testing.T) {
		expectViolation(t, m, []Command{
			{Slot: 0, Op: desc.OpActivate, Bank: 0, Row: 1},
			{Slot: 20, Op: desc.OpActivate, Bank: 0, Row: 2},
		}, "already active")
	})
	t.Run("precharge before tRAS", func(t *testing.T) {
		expectViolation(t, m, []Command{
			{Slot: 0, Op: desc.OpActivate, Bank: 0, Row: 1},
			{Slot: 12, Op: desc.OpPrecharge, Bank: 0, Row: 1},
		}, "tRAS")
	})
	t.Run("activate before tRP", func(t *testing.T) {
		expectViolation(t, m, []Command{
			{Slot: 0, Op: desc.OpActivate, Bank: 0, Row: 1},
			{Slot: 30, Op: desc.OpPrecharge, Bank: 0, Row: 1},
			{Slot: 40, Op: desc.OpActivate, Bank: 0, Row: 2}, // tRC ok, tRP 10 < 11
		}, "tRP")
	})
	t.Run("tRRD across banks", func(t *testing.T) {
		expectViolation(t, m, []Command{
			{Slot: 0, Op: desc.OpActivate, Bank: 0, Row: 1},
			{Slot: 2, Op: desc.OpActivate, Bank: 1, Row: 1},
		}, "tRRD")
	})
	t.Run("tFAW fifth activate", func(t *testing.T) {
		expectViolation(t, m, []Command{
			{Slot: 0, Op: desc.OpActivate, Bank: 0, Row: 1},
			{Slot: 6, Op: desc.OpActivate, Bank: 1, Row: 1},
			{Slot: 12, Op: desc.OpActivate, Bank: 2, Row: 1},
			{Slot: 18, Op: desc.OpActivate, Bank: 3, Row: 1},
			{Slot: 24, Op: desc.OpActivate, Bank: 4, Row: 1},
		}, "tFAW")
	})
	t.Run("bus conflict", func(t *testing.T) {
		expectViolation(t, m, []Command{
			{Slot: 0, Op: desc.OpActivate, Bank: 0, Row: 1},
			{Slot: 6, Op: desc.OpActivate, Bank: 1, Row: 1},
			{Slot: 17, Op: desc.OpRead, Bank: 0, Row: 1},
			{Slot: 19, Op: desc.OpRead, Bank: 1, Row: 1}, // bus held until 21
		}, "bus busy")
	})
	t.Run("refresh with open bank", func(t *testing.T) {
		expectViolation(t, m, []Command{
			{Slot: 0, Op: desc.OpActivate, Bank: 0, Row: 1},
			{Slot: 20, Op: desc.OpRefresh},
		}, "active at refresh")
	})
	t.Run("out of order", func(t *testing.T) {
		expectViolation(t, m, []Command{
			{Slot: 10, Op: desc.OpNop},
			{Slot: 5, Op: desc.OpNop},
		}, "out of order")
	})
	t.Run("bad bank", func(t *testing.T) {
		expectViolation(t, m, []Command{
			{Slot: 0, Op: desc.OpActivate, Bank: 99, Row: 1},
		}, "bank 99")
	})
}

func TestRejectedCommandLeavesStateUnchanged(t *testing.T) {
	m := model(t)
	s := New(m)
	if err := s.Issue(Command{Slot: 0, Op: desc.OpActivate, Bank: 0, Row: 1}); err != nil {
		t.Fatal(err)
	}
	// Illegal read (tRCD) must not consume bus or energy.
	before := s.Result(100)
	if err := s.Issue(Command{Slot: 3, Op: desc.OpRead, Bank: 0, Row: 1}); err == nil {
		t.Fatal("expected violation")
	}
	after := s.Result(100)
	if before.CommandEnergy != after.CommandEnergy || before.Bits != after.Bits {
		t.Error("rejected command changed accounting")
	}
	// The legal read at tRCD still works.
	if err := s.Issue(Command{Slot: 11, Op: desc.OpRead, Bank: 0, Row: 1}); err != nil {
		t.Errorf("legal read after rejection failed: %v", err)
	}
}

func TestEnergyAccountingMatchesEngine(t *testing.T) {
	m := model(t)
	s := New(m)
	cmds := []Command{
		{Slot: 0, Op: desc.OpActivate, Bank: 0, Row: 1},
		{Slot: 11, Op: desc.OpRead, Bank: 0, Row: 1},
		{Slot: 28, Op: desc.OpPrecharge, Bank: 0, Row: 1},
	}
	if err := s.Run(cmds); err != nil {
		t.Fatal(err)
	}
	res := s.Result(39)
	el := m.D.Electrical
	want := float64(m.Charges(desc.OpActivate).EnergyFromVdd(el)) +
		float64(m.Charges(desc.OpRead).EnergyFromVdd(el)) +
		float64(m.Charges(desc.OpPrecharge).EnergyFromVdd(el))
	if math.Abs(float64(res.CommandEnergy)-want) > 1e-9*want {
		t.Errorf("command energy: got %v, want %g", res.CommandEnergy, want)
	}
	// Background = bg power x duration.
	dur := 39.0 / float64(m.D.Spec.ControlClock)
	wantBg := float64(m.Background().Power) * dur
	if math.Abs(float64(res.Background)-wantBg) > 1e-9*wantBg {
		t.Errorf("background energy: got %v, want %g", res.Background, wantBg)
	}
	if math.Abs(float64(res.Total)-(want+wantBg)) > 1e-9*(want+wantBg) {
		t.Errorf("total energy mismatch")
	}
}

func TestStreamingWorkload(t *testing.T) {
	m := model(t)
	cmds := Streaming(m, 200, 0.7, 1)
	res, err := Evaluate(m, cmds)
	if err != nil {
		t.Fatalf("streaming trace illegal: %v", err)
	}
	if res.Counts[desc.OpRead]+res.Counts[desc.OpWrite] != 200 {
		t.Errorf("bursts: got %d", res.Counts[desc.OpRead]+res.Counts[desc.OpWrite])
	}
	// Streaming keeps the bus nearly saturated.
	if res.BusUtilization < 0.85 {
		t.Errorf("streaming bus utilization %.2f, want near 1", res.BusUtilization)
	}
	if res.EnergyPerBit <= 0 {
		t.Error("no energy per bit")
	}
}

func TestRandomClosedPageWorkload(t *testing.T) {
	m := model(t)
	cmds := RandomClosedPage(m, 120, 0.5, 7)
	res, err := Evaluate(m, cmds)
	if err != nil {
		t.Fatalf("closed-page trace illegal: %v", err)
	}
	if res.Counts[desc.OpActivate] != 120 || res.Counts[desc.OpPrecharge] != 120 {
		t.Errorf("act/pre counts: %v", res.Counts)
	}
	// Random closed-page costs more energy per bit than streaming.
	st, err := Evaluate(m, Streaming(m, 360, 0.5, 7))
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.EnergyPerBit) <= float64(st.EnergyPerBit) {
		t.Errorf("closed-page e/bit (%v) should exceed streaming (%v)",
			res.EnergyPerBit, st.EnergyPerBit)
	}
}

func TestRefreshOnlyWorkload(t *testing.T) {
	m := model(t)
	cmds := RefreshOnly(m, 8)
	res, err := Evaluate(m, cmds)
	if err != nil {
		t.Fatalf("refresh trace illegal: %v", err)
	}
	if res.Counts[desc.OpRefresh] != 8 {
		t.Errorf("refreshes: got %d", res.Counts[desc.OpRefresh])
	}
	if res.Bits != 0 || res.EnergyPerBit != 0 {
		t.Error("refresh-only trace moved data")
	}
	// Standby-with-refresh power is slightly above the pure background.
	bg := float64(m.Background().Power)
	if p := float64(res.AveragePower); p <= bg || p > bg*1.3 {
		t.Errorf("refresh standby power %g vs background %g out of band", p, bg)
	}
}

// Property: trace energy is additive — two traces concatenated (with the
// second shifted beyond all constraints) cost the sum of their command
// energies.
func TestPropTraceEnergyAdditive(t *testing.T) {
	m := model(t)
	f := func(n1Raw, n2Raw uint8) bool {
		n1 := int(n1Raw%20) + 1
		n2 := int(n2Raw%20) + 1
		c1 := RandomClosedPage(m, n1, 0.5, 3)
		c2 := RandomClosedPage(m, n2, 0.5, 4)
		r1, err1 := Evaluate(m, c1)
		r2, err2 := Evaluate(m, c2)
		if err1 != nil || err2 != nil {
			return false
		}
		// Concatenate with a large shift.
		shift := r1.Slots + 1000
		var joined []Command
		joined = append(joined, c1...)
		for _, c := range c2 {
			c.Slot += shift
			joined = append(joined, c)
		}
		rj, err := Evaluate(m, joined)
		if err != nil {
			return false
		}
		sum := float64(r1.CommandEnergy) + float64(r2.CommandEnergy)
		return math.Abs(float64(rj.CommandEnergy)-sum) < 1e-9*sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Cross-validation: the trace simulator's random closed-page workload and
// the power engine's IDD7 pattern describe the same traffic class, so
// their average currents must agree within a modest margin.
func TestClosedPageTraceMatchesIDD7Pattern(t *testing.T) {
	m := model(t)
	res, err := Evaluate(m, RandomClosedPage(m, 400, 0.5, 11))
	if err != nil {
		t.Fatal(err)
	}
	pat := m.EvaluatePattern(m.PatternIDD7(0.5))
	traceMA := res.AverageCurrent.Milliamps()
	patMA := pat.Current.Milliamps()
	// The pattern fills the bus with BurstsPerActivation bursts per
	// activate while the closed-page trace issues one; scale the pattern's
	// column share out by comparing against a one-burst pattern bound
	// instead: the trace must land between the IDD0-style floor and the
	// IDD7 ceiling.
	idd := m.IDD()
	lo := idd.IDD0.Milliamps()
	hi := patMA * 1.05
	if traceMA < lo*0.9 || traceMA > hi {
		t.Errorf("closed-page trace current %.1f mA outside [%.1f, %.1f]",
			traceMA, lo*0.9, hi)
	}
	_ = traceMA
}
