package trace

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"drampower/internal/core"
	"drampower/internal/desc"
)

func model(t *testing.T) *core.Model {
	t.Helper()
	m, err := core.Build(desc.Sample1GbDDR3())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTimingSlotsResolution(t *testing.T) {
	m := model(t)
	s := New(m)
	tRC, tRCD, tRP, tRAS, tRRD, tFAW, burst := s.TimingSlots()
	// 800 MHz control clock: tRC 48.75ns -> 39 slots, tRCD/tRP 13.75ns ->
	// 11, tRAS = 39-11 = 28, tRRD 7.5ns -> 6, tFAW 40ns -> 32, burst 4.
	for _, c := range []struct {
		name string
		got  int64
		want int64
	}{
		{"tRC", tRC, 39}, {"tRCD", tRCD, 11}, {"tRP", tRP, 11},
		{"tRAS", tRAS, 28}, {"tRRD", tRRD, 6}, {"tFAW", tFAW, 32},
		{"burst", burst, 4},
	} {
		if c.got != c.want {
			t.Errorf("%s: got %d slots, want %d", c.name, c.got, c.want)
		}
	}
}

func TestLegalActReadPrecharge(t *testing.T) {
	m := model(t)
	s := New(m)
	cmds := []Command{
		{Slot: 0, Op: desc.OpActivate, Bank: 0, Row: 42},
		{Slot: 11, Op: desc.OpRead, Bank: 0, Row: 42},
		{Slot: 28, Op: desc.OpPrecharge, Bank: 0, Row: 42},
		{Slot: 39, Op: desc.OpActivate, Bank: 0, Row: 7},
	}
	if err := s.Run(cmds); err != nil {
		t.Fatalf("legal trace rejected: %v", err)
	}
	res := s.Result(50)
	if res.Counts[desc.OpActivate] != 2 || res.Counts[desc.OpRead] != 1 {
		t.Errorf("counts: %v", res.Counts)
	}
	if res.Bits != int64(m.BitsPerBurst()) {
		t.Errorf("bits: got %d, want %d", res.Bits, m.BitsPerBurst())
	}
}

func expectViolation(t *testing.T, m *core.Model, cmds []Command, substr string) {
	t.Helper()
	s := New(m)
	err := s.Run(cmds)
	if err == nil {
		t.Fatalf("expected %q violation, trace accepted", substr)
	}
	var te *TimingError
	if !errors.As(err, &te) {
		t.Fatalf("error is %T, want *TimingError", err)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Errorf("error %q does not mention %q", err, substr)
	}
}

func TestTimingViolations(t *testing.T) {
	m := model(t)
	t.Run("read before tRCD", func(t *testing.T) {
		expectViolation(t, m, []Command{
			{Slot: 0, Op: desc.OpActivate, Bank: 0, Row: 1},
			{Slot: 5, Op: desc.OpRead, Bank: 0, Row: 1},
		}, "tRCD")
	})
	t.Run("read on idle bank", func(t *testing.T) {
		expectViolation(t, m, []Command{
			{Slot: 0, Op: desc.OpRead, Bank: 0, Row: 1},
		}, "not active")
	})
	t.Run("read wrong row", func(t *testing.T) {
		expectViolation(t, m, []Command{
			{Slot: 0, Op: desc.OpActivate, Bank: 0, Row: 1},
			{Slot: 20, Op: desc.OpRead, Bank: 0, Row: 2},
		}, "row")
	})
	t.Run("double activate", func(t *testing.T) {
		expectViolation(t, m, []Command{
			{Slot: 0, Op: desc.OpActivate, Bank: 0, Row: 1},
			{Slot: 20, Op: desc.OpActivate, Bank: 0, Row: 2},
		}, "already active")
	})
	t.Run("precharge before tRAS", func(t *testing.T) {
		expectViolation(t, m, []Command{
			{Slot: 0, Op: desc.OpActivate, Bank: 0, Row: 1},
			{Slot: 12, Op: desc.OpPrecharge, Bank: 0, Row: 1},
		}, "tRAS")
	})
	t.Run("activate before tRP", func(t *testing.T) {
		expectViolation(t, m, []Command{
			{Slot: 0, Op: desc.OpActivate, Bank: 0, Row: 1},
			{Slot: 30, Op: desc.OpPrecharge, Bank: 0, Row: 1},
			{Slot: 40, Op: desc.OpActivate, Bank: 0, Row: 2}, // tRC ok, tRP 10 < 11
		}, "tRP")
	})
	t.Run("tRRD across banks", func(t *testing.T) {
		expectViolation(t, m, []Command{
			{Slot: 0, Op: desc.OpActivate, Bank: 0, Row: 1},
			{Slot: 2, Op: desc.OpActivate, Bank: 1, Row: 1},
		}, "tRRD")
	})
	t.Run("tFAW fifth activate", func(t *testing.T) {
		expectViolation(t, m, []Command{
			{Slot: 0, Op: desc.OpActivate, Bank: 0, Row: 1},
			{Slot: 6, Op: desc.OpActivate, Bank: 1, Row: 1},
			{Slot: 12, Op: desc.OpActivate, Bank: 2, Row: 1},
			{Slot: 18, Op: desc.OpActivate, Bank: 3, Row: 1},
			{Slot: 24, Op: desc.OpActivate, Bank: 4, Row: 1},
		}, "tFAW")
	})
	t.Run("bus conflict", func(t *testing.T) {
		expectViolation(t, m, []Command{
			{Slot: 0, Op: desc.OpActivate, Bank: 0, Row: 1},
			{Slot: 6, Op: desc.OpActivate, Bank: 1, Row: 1},
			{Slot: 17, Op: desc.OpRead, Bank: 0, Row: 1},
			{Slot: 19, Op: desc.OpRead, Bank: 1, Row: 1}, // bus held until 21
		}, "bus busy")
	})
	t.Run("refresh with open bank", func(t *testing.T) {
		expectViolation(t, m, []Command{
			{Slot: 0, Op: desc.OpActivate, Bank: 0, Row: 1},
			{Slot: 20, Op: desc.OpRefresh},
		}, "active at refresh")
	})
	t.Run("out of order", func(t *testing.T) {
		expectViolation(t, m, []Command{
			{Slot: 10, Op: desc.OpNop},
			{Slot: 5, Op: desc.OpNop},
		}, "out of order")
	})
	t.Run("bad bank", func(t *testing.T) {
		expectViolation(t, m, []Command{
			{Slot: 0, Op: desc.OpActivate, Bank: 99, Row: 1},
		}, "bank 99")
	})
}

func TestRejectedCommandLeavesStateUnchanged(t *testing.T) {
	m := model(t)
	s := New(m)
	if err := s.Issue(Command{Slot: 0, Op: desc.OpActivate, Bank: 0, Row: 1}); err != nil {
		t.Fatal(err)
	}
	// Illegal read (tRCD) must not consume bus or energy.
	before := s.Result(100)
	if err := s.Issue(Command{Slot: 3, Op: desc.OpRead, Bank: 0, Row: 1}); err == nil {
		t.Fatal("expected violation")
	}
	after := s.Result(100)
	if before.CommandEnergy != after.CommandEnergy || before.Bits != after.Bits {
		t.Error("rejected command changed accounting")
	}
	// The legal read at tRCD still works.
	if err := s.Issue(Command{Slot: 11, Op: desc.OpRead, Bank: 0, Row: 1}); err != nil {
		t.Errorf("legal read after rejection failed: %v", err)
	}
}

func TestEnergyAccountingMatchesEngine(t *testing.T) {
	m := model(t)
	s := New(m)
	cmds := []Command{
		{Slot: 0, Op: desc.OpActivate, Bank: 0, Row: 1},
		{Slot: 11, Op: desc.OpRead, Bank: 0, Row: 1},
		{Slot: 28, Op: desc.OpPrecharge, Bank: 0, Row: 1},
	}
	if err := s.Run(cmds); err != nil {
		t.Fatal(err)
	}
	res := s.Result(39)
	el := m.D.Electrical
	want := float64(m.Charges(desc.OpActivate).EnergyFromVdd(el)) +
		float64(m.Charges(desc.OpRead).EnergyFromVdd(el)) +
		float64(m.Charges(desc.OpPrecharge).EnergyFromVdd(el))
	if math.Abs(float64(res.CommandEnergy)-want) > 1e-9*want {
		t.Errorf("command energy: got %v, want %g", res.CommandEnergy, want)
	}
	// Background = bg power x duration.
	dur := 39.0 / float64(m.D.Spec.ControlClock)
	wantBg := float64(m.Background().Power) * dur
	if math.Abs(float64(res.Background)-wantBg) > 1e-9*wantBg {
		t.Errorf("background energy: got %v, want %g", res.Background, wantBg)
	}
	if math.Abs(float64(res.Total)-(want+wantBg)) > 1e-9*(want+wantBg) {
		t.Errorf("total energy mismatch")
	}
}

func TestStreamingWorkload(t *testing.T) {
	m := model(t)
	cmds := Streaming(m, 200, 0.7, 1)
	res, err := Evaluate(m, cmds)
	if err != nil {
		t.Fatalf("streaming trace illegal: %v", err)
	}
	if res.Counts[desc.OpRead]+res.Counts[desc.OpWrite] != 200 {
		t.Errorf("bursts: got %d", res.Counts[desc.OpRead]+res.Counts[desc.OpWrite])
	}
	// Streaming keeps the bus nearly saturated.
	if res.BusUtilization < 0.85 {
		t.Errorf("streaming bus utilization %.2f, want near 1", res.BusUtilization)
	}
	if res.EnergyPerBit <= 0 {
		t.Error("no energy per bit")
	}
}

func TestRandomClosedPageWorkload(t *testing.T) {
	m := model(t)
	cmds := RandomClosedPage(m, 120, 0.5, 7)
	res, err := Evaluate(m, cmds)
	if err != nil {
		t.Fatalf("closed-page trace illegal: %v", err)
	}
	if res.Counts[desc.OpActivate] != 120 || res.Counts[desc.OpPrecharge] != 120 {
		t.Errorf("act/pre counts: %v", res.Counts)
	}
	// Random closed-page costs more energy per bit than streaming.
	st, err := Evaluate(m, Streaming(m, 360, 0.5, 7))
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.EnergyPerBit) <= float64(st.EnergyPerBit) {
		t.Errorf("closed-page e/bit (%v) should exceed streaming (%v)",
			res.EnergyPerBit, st.EnergyPerBit)
	}
}

func TestRefreshOnlyWorkload(t *testing.T) {
	m := model(t)
	cmds := RefreshOnly(m, 8)
	res, err := Evaluate(m, cmds)
	if err != nil {
		t.Fatalf("refresh trace illegal: %v", err)
	}
	if res.Counts[desc.OpRefresh] != 8 {
		t.Errorf("refreshes: got %d", res.Counts[desc.OpRefresh])
	}
	if res.Bits != 0 || res.EnergyPerBit != 0 {
		t.Error("refresh-only trace moved data")
	}
	// Standby-with-refresh power is slightly above the pure background.
	bg := float64(m.Background().Power)
	if p := float64(res.AveragePower); p <= bg || p > bg*1.3 {
		t.Errorf("refresh standby power %g vs background %g out of band", p, bg)
	}
}

// Property: trace energy is additive — two traces concatenated (with the
// second shifted beyond all constraints) cost the sum of their command
// energies.
func TestPropTraceEnergyAdditive(t *testing.T) {
	m := model(t)
	f := func(n1Raw, n2Raw uint8) bool {
		n1 := int(n1Raw%20) + 1
		n2 := int(n2Raw%20) + 1
		c1 := RandomClosedPage(m, n1, 0.5, 3)
		c2 := RandomClosedPage(m, n2, 0.5, 4)
		r1, err1 := Evaluate(m, c1)
		r2, err2 := Evaluate(m, c2)
		if err1 != nil || err2 != nil {
			return false
		}
		// Concatenate with a large shift.
		shift := r1.Slots + 1000
		var joined []Command
		joined = append(joined, c1...)
		for _, c := range c2 {
			c.Slot += shift
			joined = append(joined, c)
		}
		rj, err := Evaluate(m, joined)
		if err != nil {
			return false
		}
		sum := float64(r1.CommandEnergy) + float64(r2.CommandEnergy)
		return math.Abs(float64(rj.CommandEnergy)-sum) < 1e-9*sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Cross-validation: the trace simulator's random closed-page workload and
// the power engine's IDD7 pattern describe the same traffic class, so
// their average currents must agree within a modest margin.
func TestClosedPageTraceMatchesIDD7Pattern(t *testing.T) {
	m := model(t)
	res, err := Evaluate(m, RandomClosedPage(m, 400, 0.5, 11))
	if err != nil {
		t.Fatal(err)
	}
	pat := m.EvaluatePattern(m.PatternIDD7(0.5))
	traceMA := res.AverageCurrent.Milliamps()
	patMA := pat.Current.Milliamps()
	// The pattern fills the bus with BurstsPerActivation bursts per
	// activate while the closed-page trace issues one; scale the pattern's
	// column share out by comparing against a one-burst pattern bound
	// instead: the trace must land between the IDD0-style floor and the
	// IDD7 ceiling.
	idd := m.IDD()
	lo := idd.IDD0.Milliamps()
	hi := patMA * 1.05
	if traceMA < lo*0.9 || traceMA > hi {
		t.Errorf("closed-page trace current %.1f mA outside [%.1f, %.1f]",
			traceMA, lo*0.9, hi)
	}
	_ = traceMA
}

// The Issue accept path is provably allocation-free: per-op counters and
// energies are fixed arrays and the activate history is a ring buffer.
func TestIssueZeroAllocs(t *testing.T) {
	ov, err := desc.ParseOverlayString("standby *= 0.9\nop.rd.energy *= 1.07\nidd6 = 4mA\n")
	if err != nil {
		t.Fatal(err)
	}
	calibrated, err := core.BuildCalibrated(desc.Sample1GbDDR3(), ov)
	if err != nil {
		t.Fatal(err)
	}
	// The hot path must stay allocation-free for calibrated models too:
	// the overlay resolves at Build time, never on Issue.
	for _, tc := range []struct {
		name string
		m    *core.Model
	}{
		{"derived", model(t)},
		{"calibrated", calibrated},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cmds := RandomClosedPage(tc.m, 400, 0.5, 2) // 1200 commands
			s := New(tc.m)
			i := 0
			allocs := testing.AllocsPerRun(1100, func() {
				if err := s.Issue(cmds[i]); err != nil {
					panic(err)
				}
				i++
			})
			if allocs != 0 {
				t.Errorf("Issue allocated %.2f times per command, want 0", allocs)
			}
		})
	}
}

// TestCalibratedTraceEnergy checks the seal stage reaches the trace
// simulator: a standby scaling moves the background residency energy and
// a read-energy scaling moves the command energy.
func TestCalibratedTraceEnergy(t *testing.T) {
	base := model(t)
	ov, err := desc.ParseOverlayString("standby *= 0.5\n")
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.BuildCalibrated(desc.Sample1GbDDR3(), ov)
	if err != nil {
		t.Fatal(err)
	}
	cmds := RandomClosedPage(base, 100, 0.5, 7)
	br, err := Evaluate(base, cmds)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := Evaluate(m, cmds)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := float64(cr.Background), float64(br.Background)*0.5; math.Abs(got-want) > want*1e-12 {
		t.Errorf("calibrated background energy %v, want %v", got, want)
	}
	if cr.CommandEnergy != br.CommandEnergy {
		t.Errorf("standby calibration moved command energy: %v vs %v", cr.CommandEnergy, br.CommandEnergy)
	}
}

// tRRD binds against the most recent activate only (activates arrive in
// slot order, so older history entries can never be the tighter bound).
func TestTRRDMostRecentActivate(t *testing.T) {
	m := model(t)
	// tRRD = 6 on the sample device.
	prologue := []Command{
		{Slot: 0, Op: desc.OpActivate, Bank: 0, Row: 1},
		{Slot: 8, Op: desc.OpActivate, Bank: 1, Row: 1},
	}
	t.Run("violation names the most recent activate", func(t *testing.T) {
		s := New(m)
		if err := s.Run(prologue); err != nil {
			t.Fatal(err)
		}
		err := s.Issue(Command{Slot: 13, Op: desc.OpActivate, Bank: 2, Row: 1})
		if err == nil {
			t.Fatal("activate 5 slots after the last one accepted, want tRRD violation")
		}
		if !strings.Contains(err.Error(), "tRRD: activate at 8") {
			t.Errorf("error %q should blame the most recent activate (slot 8)", err)
		}
	})
	t.Run("exactly tRRD after the most recent is legal", func(t *testing.T) {
		s := New(m)
		if err := s.Run(prologue); err != nil {
			t.Fatal(err)
		}
		if err := s.Issue(Command{Slot: 14, Op: desc.OpActivate, Bank: 2, Row: 1}); err != nil {
			t.Errorf("activate exactly tRRD after the last rejected: %v", err)
		}
	})
}

// The activate ring buffer survives wrap-around: the 9th+ activates must
// still see the correct 4th-most-recent entry for tFAW.
func TestActivateRingWrap(t *testing.T) {
	m := model(t)
	// Eight activates at slots 0,8,...,56 (every tFAW boundary is exact),
	// precharges squeezed in so banks 0 and 1 can re-activate.
	prologue := []Command{
		{Slot: 0, Op: desc.OpActivate, Bank: 0, Row: 1},
		{Slot: 8, Op: desc.OpActivate, Bank: 1, Row: 1},
		{Slot: 16, Op: desc.OpActivate, Bank: 2, Row: 1},
		{Slot: 24, Op: desc.OpActivate, Bank: 3, Row: 1},
		{Slot: 28, Op: desc.OpPrecharge, Bank: 0, Row: 1},
		{Slot: 32, Op: desc.OpActivate, Bank: 4, Row: 1},
		{Slot: 40, Op: desc.OpActivate, Bank: 5, Row: 1},
		{Slot: 41, Op: desc.OpPrecharge, Bank: 1, Row: 1},
		{Slot: 48, Op: desc.OpActivate, Bank: 6, Row: 1},
		{Slot: 56, Op: desc.OpActivate, Bank: 7, Row: 1},
	}
	t.Run("ninth activate at the exact tFAW boundary", func(t *testing.T) {
		s := New(m)
		if err := s.Run(prologue); err != nil {
			t.Fatal(err)
		}
		// 4th-most-recent activate is slot 32; 32 + tFAW(32) = 64.
		if err := s.Issue(Command{Slot: 64, Op: desc.OpActivate, Bank: 0, Row: 2}); err != nil {
			t.Errorf("ninth activate at exact tFAW boundary rejected: %v", err)
		}
	})
	t.Run("ninth activate one slot early", func(t *testing.T) {
		s := New(m)
		if err := s.Run(prologue); err != nil {
			t.Fatal(err)
		}
		err := s.Issue(Command{Slot: 63, Op: desc.OpActivate, Bank: 0, Row: 2})
		if err == nil || !strings.Contains(err.Error(), "tFAW") {
			t.Errorf("ninth activate inside the tFAW window: got %v, want tFAW violation", err)
		}
	})
}

// Pin the intended per-op semantics at a slot where the data bus is still
// carrying a burst: only column commands contend for the data bus;
// activate, precharge, refresh and nop ride the command bus and issue
// normally.
func TestIssueAtContendedBusSlot(t *testing.T) {
	m := model(t)
	// Prologue A: read on bank 0 at slot 25 holds the bus over [25, 29).
	twoBanks := []Command{
		{Slot: 0, Op: desc.OpActivate, Bank: 0, Row: 1},
		{Slot: 8, Op: desc.OpActivate, Bank: 1, Row: 1},
		{Slot: 25, Op: desc.OpRead, Bank: 0, Row: 1},
	}
	// Prologue B: the burst lives on bank 1 (read at 26, bus over
	// [26, 30)) so a bank-0 precharge can land inside the burst window
	// without cutting off its own data.
	otherBank := []Command{
		{Slot: 0, Op: desc.OpActivate, Bank: 0, Row: 1},
		{Slot: 6, Op: desc.OpActivate, Bank: 1, Row: 1},
		{Slot: 26, Op: desc.OpRead, Bank: 1, Row: 1},
	}
	cases := []struct {
		name     string
		prologue []Command
		cmd      Command
		allowed  bool
		substr   string
	}{
		{"read rejected", twoBanks, Command{Slot: 26, Op: desc.OpRead, Bank: 1, Row: 1}, false, "bus busy"},
		{"write rejected", twoBanks, Command{Slot: 26, Op: desc.OpWrite, Bank: 1, Row: 1}, false, "bus busy"},
		{"nop allowed", twoBanks, Command{Slot: 26, Op: desc.OpNop}, true, ""},
		{"activate allowed", twoBanks, Command{Slot: 26, Op: desc.OpActivate, Bank: 2, Row: 1}, true, ""},
		{"precharge of other bank allowed", otherBank, Command{Slot: 28, Op: desc.OpPrecharge, Bank: 0, Row: 1}, true, ""},
		{"precharge of burst owner rejected", twoBanks, Command{Slot: 28, Op: desc.OpPrecharge, Bank: 0, Row: 1}, false, "drains"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := New(m)
			if err := s.Run(c.prologue); err != nil {
				t.Fatal(err)
			}
			err := s.Issue(c.cmd)
			if c.allowed && err != nil {
				t.Errorf("%v at contended slot rejected: %v", c.cmd, err)
			}
			if !c.allowed {
				if err == nil {
					t.Fatalf("%v at contended slot accepted, want rejection", c.cmd)
				}
				if !strings.Contains(err.Error(), c.substr) {
					t.Errorf("error %q should contain %q", err, c.substr)
				}
			}
		})
	}
}

// Boundary conditions: every timing window is exclusive of its end slot —
// a command exactly at the boundary is legal, one slot earlier is not.
func TestTimingBoundaries(t *testing.T) {
	m := model(t)
	t.Run("tFAW fifth activate exactly at the window edge", func(t *testing.T) {
		s := New(m)
		for b, slot := range []int64{0, 8, 16, 24} {
			if err := s.Issue(Command{Slot: slot, Op: desc.OpActivate, Bank: b, Row: 1}); err != nil {
				t.Fatal(err)
			}
		}
		// First-of-four at 0, tFAW 32: slot 32 is the first legal slot.
		if err := s.Issue(Command{Slot: 32, Op: desc.OpActivate, Bank: 4, Row: 1}); err != nil {
			t.Errorf("fifth activate at exact tFAW edge rejected: %v", err)
		}
	})
	t.Run("activate exactly at refUntil", func(t *testing.T) {
		s := New(m)
		if err := s.Issue(Command{Slot: 0, Op: desc.OpRefresh}); err != nil {
			t.Fatal(err)
		}
		tRFC := s.RefreshCycleSlots()
		if err := s.Issue(Command{Slot: tRFC - 1, Op: desc.OpActivate, Bank: 0, Row: 1}); err == nil {
			t.Error("activate one slot inside tRFC accepted")
		}
		if err := s.Issue(Command{Slot: tRFC, Op: desc.OpActivate, Bank: 0, Row: 1}); err != nil {
			t.Errorf("activate exactly at refresh completion rejected: %v", err)
		}
	})
	t.Run("precharge exactly at actSlot+tRAS", func(t *testing.T) {
		s := New(m)
		if err := s.Issue(Command{Slot: 0, Op: desc.OpActivate, Bank: 0, Row: 1}); err != nil {
			t.Fatal(err)
		}
		if err := s.Issue(Command{Slot: 28, Op: desc.OpPrecharge, Bank: 0, Row: 1}); err != nil {
			t.Errorf("precharge at exact tRAS rejected: %v", err)
		}
	})
	t.Run("same-slot commands to different banks", func(t *testing.T) {
		s := New(m)
		cmds := []Command{
			{Slot: 0, Op: desc.OpActivate, Bank: 0, Row: 1},
			{Slot: 11, Op: desc.OpRead, Bank: 0, Row: 1},
			{Slot: 11, Op: desc.OpActivate, Bank: 1, Row: 3}, // same slot, other bank
		}
		if err := s.Run(cmds); err != nil {
			t.Errorf("same-slot commands to different banks rejected: %v", err)
		}
		res := s.Result(50)
		if res.Counts[desc.OpActivate] != 2 || res.Counts[desc.OpRead] != 1 {
			t.Errorf("counts after same-slot issue: %v", res.Counts)
		}
	})
}

// A trace that issued nothing reports a nil Counts map (no allocation,
// and nil-map reads still return zero for every op).
func TestResultEmptyTraceCounts(t *testing.T) {
	m := model(t)
	s := New(m)
	res := s.Result(100)
	if res.Counts != nil {
		t.Errorf("empty trace materialized a counts map: %v", res.Counts)
	}
	if res.Counts[desc.OpActivate] != 0 {
		t.Error("nil counts map read nonzero")
	}
	if res.CommandEnergy != 0 || res.Bits != 0 || res.BusUtilization != 0 {
		t.Errorf("empty trace accounted activity: %+v", res)
	}
	if res.Background <= 0 {
		t.Error("empty trace over 100 slots should still accumulate background energy")
	}
}

// BusUtilization stays in [0, 1] even when endSlot truncates the final
// burst's occupancy window.
func TestBusUtilizationClamped(t *testing.T) {
	d := desc.Sample1GbDDR3()
	d.Spec.RowToColumnDelay = 0 // tRCD resolves to the 1-slot floor
	m, err := core.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	s := New(m)
	if err := s.Issue(Command{Slot: 0, Op: desc.OpActivate, Bank: 0, Row: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Issue(Command{Slot: 1, Op: desc.OpRead, Bank: 0, Row: 1}); err != nil {
		t.Fatal(err)
	}
	// The 4-slot burst runs [1, 5) but the accounting ends at slot 1: the
	// raw ratio would be 4/1 = 4.
	res := s.Result(1)
	if res.BusUtilization != 1 {
		t.Errorf("truncated burst: utilization %v, want clamped to 1", res.BusUtilization)
	}
	// And a full accounting window reports the true sub-1 share.
	res = s.Result(8)
	if res.BusUtilization != 0.5 {
		t.Errorf("full window: utilization %v, want 0.5", res.BusUtilization)
	}
}
