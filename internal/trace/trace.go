// Package trace implements a cycle-accounted DRAM command-trace simulator
// on top of the power engine: a bank state machine that enforces the JEDEC
// timing constraints (tRC, tRCD, tRP, tRAS, tRRD, tFAW, tRFC and data-bus
// occupancy) and integrates the per-command charges of package core over
// the trace. It is the substrate that makes the paper's operating patterns
// (Section III.B.4) well defined: the canned IDD loops are exactly the
// traces this simulator accepts at the maximum legal rate, and arbitrary
// workloads (streaming, random closed-page, mixed) can be evaluated the
// same way.
package trace

import (
	"fmt"
	"math"

	"drampower/internal/core"
	"drampower/internal/desc"
	"drampower/internal/units"
)

// Command is one trace entry: an operation issued to a bank at a slot
// (control-clock cycle).
type Command struct {
	Slot int64
	Op   desc.Op
	Bank int
	Row  int
}

// String renders the command compactly.
func (c Command) String() string {
	return fmt.Sprintf("@%d %s b%d r%d", c.Slot, c.Op, c.Bank, c.Row)
}

// TimingError reports a constraint violation.
type TimingError struct {
	Cmd    Command
	Reason string
}

// Error implements the error interface.
func (e *TimingError) Error() string {
	return fmt.Sprintf("trace: %v: %s", e.Cmd, e.Reason)
}

// bankState tracks one bank.
type bankState struct {
	active     bool
	row        int
	actSlot    int64 // slot of the last activate
	preSlot    int64 // slot of the last precharge
	everActive bool
}

// ringSize is the depth of the activate-history ring buffer. A power of
// two (for cheap index masking) of at least 4: the tRRD check needs the
// most recent activate, the tFAW check the 4th-most-recent.
const ringSize = 8

// Simulator executes a command trace against a model, enforcing timing and
// accumulating energy. The Issue hot path is allocation-free: per-op
// counters and energies live in fixed [desc.NumOps] arrays and the
// activate history in a fixed ring buffer (see TestIssueZeroAllocs).
type Simulator struct {
	m *core.Model

	// Timing constraints in slots.
	tRC, tRCD, tRP, tRAS, tRRD, tFAW, tRFC int64
	burstSlots                             int64

	banks    []bankState
	actRing  [ringSize]int64 // last ringSize activate slots (circular)
	actPos   int             // next write position in actRing
	actCount int64           // total activates issued
	busUntil int64           // first slot the data bus is free again
	refUntil int64           // refresh completion
	now      int64

	counts    [desc.NumOps]int64
	opEnergy  [desc.NumOps]float64 // per-op energy, hoisted from the model at New
	cmdEnergy float64              // accumulated command energy (J)
	bits      int64
}

// New creates a simulator for the model.
func New(m *core.Model) *Simulator {
	spec := m.D.Spec
	toSlots := func(d units.Duration) int64 {
		// Guard against float noise pushing an exact multiple (7.5 ns at
		// 800 MHz = 6.0 slots) over the next integer.
		return int64(math.Ceil(float64(d)*float64(spec.ControlClock) - 1e-9))
	}
	tRP := toSlots(spec.PrechargeTime)
	if tRP < 1 {
		tRP = 1
	}
	tRC := toSlots(spec.RowCycle)
	if tRC < 2 {
		tRC = 2
	}
	tRAS := tRC - tRP
	if tRAS < 1 {
		tRAS = 1
	}
	s := &Simulator{
		m:          m,
		tRC:        tRC,
		tRCD:       maxI64(1, toSlots(spec.RowToColumnDelay)),
		tRP:        tRP,
		tRAS:       tRAS,
		tRRD:       maxI64(1, toSlots(spec.RowToRowDelay)),
		tFAW:       toSlots(spec.FourBankWindow),
		tRFC:       maxI64(1, toSlots(spec.RefreshCycle)),
		burstSlots: int64(m.BurstSlots()),
		banks:      make([]bankState, spec.Banks()),
	}
	for op, e := range m.OpEnergies() {
		s.opEnergy[op] = float64(e)
	}
	for i := range s.banks {
		s.banks[i].actSlot = math.MinInt64 / 2
		s.banks[i].preSlot = math.MinInt64 / 2
	}
	s.busUntil = math.MinInt64 / 2
	s.refUntil = math.MinInt64 / 2
	return s
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Now returns the current slot (the latest issue or advance time).
func (s *Simulator) Now() int64 { return s.now }

// Issue validates and executes one command. Commands must arrive in
// non-decreasing slot order. On a timing violation the command is rejected
// with a *TimingError and the simulator state is unchanged.
//
// Data-bus contention gates only column commands: at a slot where a
// previous burst still occupies the data bus (slot < busUntil),
//
//   - OpRead and OpWrite are rejected ("data bus busy"),
//   - OpActivate, OpPrecharge, OpRefresh and OpNop issue normally — they
//     travel on the command/address bus, which the model treats as
//     uncontended, and never touch the data bus.
//
// These semantics are pinned by TestIssueAtContendedBusSlot. The accept
// path performs no heap allocations; only a rejection allocates (for its
// *TimingError).
func (s *Simulator) Issue(c Command) error {
	if c.Slot < s.now {
		return &TimingError{c, fmt.Sprintf("out of order (now at slot %d)", s.now)}
	}
	if c.Bank < 0 || c.Bank >= len(s.banks) {
		return &TimingError{c, fmt.Sprintf("bank %d outside 0..%d", c.Bank, len(s.banks)-1)}
	}
	b := &s.banks[c.Bank]
	switch c.Op {
	case desc.OpActivate:
		if b.active {
			return &TimingError{c, "bank already active"}
		}
		if c.Slot < b.actSlot+s.tRC {
			return &TimingError{c, fmt.Sprintf("tRC: last activate at %d", b.actSlot)}
		}
		if c.Slot < b.preSlot+s.tRP {
			return &TimingError{c, fmt.Sprintf("tRP: precharge at %d not complete", b.preSlot)}
		}
		if c.Slot < s.refUntil {
			return &TimingError{c, "tRFC: refresh in progress"}
		}
		// tRRD binds against the most recent activate only: activates
		// arrive in slot order, so an older activate can never be the
		// tighter constraint.
		if s.actCount > 0 {
			if t := s.actRing[(s.actPos+ringSize-1)&(ringSize-1)]; c.Slot < t+s.tRRD {
				return &TimingError{c, fmt.Sprintf("tRRD: activate at %d", t)}
			}
		}
		if s.tFAW > 0 && s.actCount >= 4 {
			if w := s.actRing[(s.actPos+ringSize-4)&(ringSize-1)]; c.Slot < w+s.tFAW {
				return &TimingError{c, fmt.Sprintf("tFAW: fourth activate at %d", w)}
			}
		}
		b.active, b.row, b.actSlot, b.everActive = true, c.Row, c.Slot, true
		s.actRing[s.actPos] = c.Slot
		s.actPos = (s.actPos + 1) & (ringSize - 1)
		s.actCount++
	case desc.OpRead, desc.OpWrite:
		if !b.active {
			return &TimingError{c, "bank not active"}
		}
		if b.row != c.Row {
			return &TimingError{c, fmt.Sprintf("row %d open, access to row %d", b.row, c.Row)}
		}
		if c.Slot < b.actSlot+s.tRCD {
			return &TimingError{c, fmt.Sprintf("tRCD: activate at %d", b.actSlot)}
		}
		if c.Slot < s.busUntil {
			return &TimingError{c, fmt.Sprintf("data bus busy until slot %d", s.busUntil)}
		}
		s.busUntil = c.Slot + s.burstSlots
		s.bits += int64(s.m.BitsPerBurst())
	case desc.OpPrecharge:
		if !b.active {
			return &TimingError{c, "bank not active"}
		}
		if c.Slot < b.actSlot+s.tRAS {
			return &TimingError{c, fmt.Sprintf("tRAS: activate at %d", b.actSlot)}
		}
		b.active = false
		b.preSlot = c.Slot
	case desc.OpRefresh:
		for i := range s.banks {
			if s.banks[i].active {
				return &TimingError{c, fmt.Sprintf("bank %d active at refresh", i)}
			}
		}
		if c.Slot < s.refUntil {
			return &TimingError{c, "tRFC: previous refresh in progress"}
		}
		s.refUntil = c.Slot + s.tRFC
	case desc.OpNop:
		// nothing
	default:
		return &TimingError{c, "unknown operation"}
	}
	s.now = c.Slot
	// Every op the switch accepts is in [0, desc.NumOps), so these array
	// reads are in range. The energy integration is a flat read of the
	// per-op ledger hoisted from the model at New.
	s.counts[c.Op]++
	s.cmdEnergy += s.opEnergy[c.Op]
	return nil
}

// Run issues a whole trace, stopping at the first violation.
func (s *Simulator) Run(cmds []Command) error {
	for _, c := range cmds {
		if err := s.Issue(c); err != nil {
			return err
		}
	}
	return nil
}

// RunStream issues every command the scanner produces, stopping at the
// first timing violation (*TimingError) or malformed line (*ParseError).
// The trace streams through the scanner's fixed buffer, so arbitrarily
// long trace files never need to fit in memory; the energy totals are
// identical to Run on the equivalent materialized slice.
func (s *Simulator) RunStream(sc *Scanner) error {
	for sc.Scan() {
		if err := s.Issue(sc.Command()); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Result summarizes the energy accounting of a finished trace.
type Result struct {
	// Slots is the trace duration in control-clock slots; Duration the
	// wall-clock time.
	Slots    int64
	Duration units.Duration
	// CommandEnergy is the accumulated per-command energy; Background the
	// standby energy over the duration; Total their sum.
	CommandEnergy units.Energy
	Background    units.Energy
	Total         units.Energy
	// AveragePower and AverageCurrent over the duration.
	AveragePower   units.Power
	AverageCurrent units.Current
	// Bits transferred and the resulting energy per bit (0 if no data).
	Bits         int64
	EnergyPerBit units.Energy
	// Counts per operation; only operations that occurred have entries,
	// and a trace that issued no commands leaves Counts nil (reads of a
	// nil map return zero, so callers may index it unconditionally).
	Counts map[desc.Op]int64
	// BusUtilization is the share of slots the data bus carried a burst,
	// clamped to [0, 1] (an endSlot that truncates a final burst would
	// otherwise overcount the burst's full occupancy).
	BusUtilization float64
}

// Result closes the trace at the given end slot and reports the totals.
func (s *Simulator) Result(endSlot int64) Result {
	if endSlot < s.now {
		endSlot = s.now
	}
	spec := s.m.D.Spec
	dur := units.Duration(float64(endSlot) / float64(spec.ControlClock))
	bg := float64(s.m.Background().Power) * float64(dur)
	total := s.cmdEnergy + bg
	r := Result{
		Slots:         endSlot,
		Duration:      dur,
		CommandEnergy: units.Energy(s.cmdEnergy),
		Background:    units.Energy(bg),
		Total:         units.Energy(total),
		Bits:          s.bits,
	}
	// The counts map is only materialized when something was issued; an
	// empty trace reports a nil map instead of allocating one.
	var issued int64
	for _, n := range s.counts {
		issued += n
	}
	if issued > 0 {
		r.Counts = make(map[desc.Op]int64, desc.NumOps)
		for op, n := range s.counts {
			if n > 0 {
				r.Counts[desc.Op(op)] = n
			}
		}
	}
	if dur > 0 {
		r.AveragePower = units.Power(total / float64(dur))
		if v := s.m.D.Electrical.Vdd; v > 0 {
			r.AverageCurrent = units.Current(float64(r.AveragePower) / float64(v))
		}
	}
	if s.bits > 0 {
		r.EnergyPerBit = units.Energy(total / float64(s.bits))
	}
	if endSlot > 0 {
		burstCmds := s.counts[desc.OpRead] + s.counts[desc.OpWrite]
		u := float64(burstCmds*s.burstSlots) / float64(endSlot)
		if u > 1 {
			u = 1
		}
		r.BusUtilization = u
	}
	return r
}

// TimingSlots exposes the resolved constraints (in slots) for tests and
// workload generators.
func (s *Simulator) TimingSlots() (tRC, tRCD, tRP, tRAS, tRRD, tFAW, burst int64) {
	return s.tRC, s.tRCD, s.tRP, s.tRAS, s.tRRD, s.tFAW, s.burstSlots
}

// RefreshCycleSlots exposes the resolved tRFC in slots.
func (s *Simulator) RefreshCycleSlots() int64 { return s.tRFC }
