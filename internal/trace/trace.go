// Package trace implements a cycle-accounted DRAM command-trace simulator
// on top of the power engine: a bank state machine that enforces the JEDEC
// timing constraints (tRC, tRCD, tRP, tRAS, tRRD, tFAW, tRFC and data-bus
// occupancy) and integrates the per-command charges of package core over
// the trace. It is the substrate that makes the paper's operating patterns
// (Section III.B.4) well defined: the canned IDD loops are exactly the
// traces this simulator accepts at the maximum legal rate, and arbitrary
// workloads (streaming, random closed-page, mixed) can be evaluated the
// same way.
package trace

import (
	"fmt"
	"math"

	"drampower/internal/core"
	"drampower/internal/desc"
	"drampower/internal/units"
)

// Command is one trace entry: an operation issued to a bank at a slot
// (control-clock cycle).
type Command struct {
	Slot int64
	Op   desc.Op
	Bank int
	Row  int
}

// String renders the command compactly.
func (c Command) String() string {
	return fmt.Sprintf("@%d %s b%d r%d", c.Slot, OpName(c.Op), c.Bank, c.Row)
}

// TimingError reports a constraint violation.
type TimingError struct {
	Cmd    Command
	Reason string
}

// Error implements the error interface.
func (e *TimingError) Error() string {
	return fmt.Sprintf("trace: %v: %s", e.Cmd, e.Reason)
}

// bankState tracks one bank.
type bankState struct {
	active     bool
	row        int
	actSlot    int64 // slot of the last activate
	preSlot    int64 // slot of the last precharge
	everActive bool
}

// ringSize is the depth of the activate-history ring buffer. A power of
// two (for cheap index masking) of at least 4: the tRRD check needs the
// most recent activate, the tFAW check the 4th-most-recent.
const ringSize = 8

// MaxPostponedRefreshes is the JEDEC all-bank refresh postponement bound:
// a controller may defer up to 8 refresh commands while traffic is in
// flight, so the k-th refresh obligation (nominally due at k*tREFI) must
// complete by (k+8)*tREFI. The retention auditor flags refreshes that
// land past that deadline, and the controller in internal/ctl uses it as
// the default for Options.MaxPostponed.
const MaxPostponedRefreshes = 8

// Simulator executes a command trace against a model, enforcing timing and
// accumulating energy. The Issue hot path is allocation-free: per-op
// counters and energies live in fixed [numTraceOps] arrays, the per-state
// residency in a fixed [NumStates] array, and the activate history in a
// fixed ring buffer (see TestIssueZeroAllocs).
type Simulator struct {
	m *core.Model

	// Timing constraints in slots.
	tRC, tRCD, tRP, tRAS, tRRD, tFAW, tRFC int64
	burstSlots                             int64
	// Power-state timing constraints in slots: minimum CKE-low residency,
	// power-down exit to first valid command, self-refresh exit to first
	// valid command.
	tCKE, tXP, tXS int64

	banks     []bankState
	actRing   [ringSize]int64 // last ringSize activate slots (circular)
	actPos    int             // next write position in actRing
	actCount  int64           // total activates issued
	busUntil  int64           // first slot the data bus is free again
	burstBank int             // bank whose burst occupies the bus (-1 none)
	refUntil  int64           // refresh completion
	now       int64

	// Retention auditor: refresh coverage against the spec's tREFI. The
	// audit is report-only — it never rejects a command — so traces that
	// predate refresh scheduling replay with identical energy totals and
	// merely report their missed deadlines in Result. refi == 0 (no
	// RefreshInterval in the spec) disables the audit entirely.
	refi        int64 // tREFI in slots (0 = auditing off)
	refBaseSlot int64 // epoch origin: 0, or the slot of the last srx
	refCredit   int64 // refreshes issued since refBaseSlot
	refCount    int64 // refreshes issued over the whole trace
	lastRefSlot int64 // slot of the last refresh (or epoch origin)
	maxRefGap   int64 // widest observed refresh-to-refresh gap
	refMissed   int64 // obligations served or abandoned past their deadline

	// Power-state machine: the current background state, when it began,
	// and the per-state slot residency accumulated at every transition.
	state      State
	stateSince int64
	stateSlots [NumStates]int64
	openBanks  int    // banks with an open row (drives Active vs Precharged)
	lpEnter    int64  // slot of the last pde/sre, for the tCKEmin check
	exitValid  int64  // first slot row/column/refresh commands are legal after pdx/srx
	exitRule   string // "tXP" or "tXS", for rejection messages

	counts     [numTraceOps]int64
	opEnergy   [numTraceOps]float64 // per-op energy, hoisted from the model at New
	statePower [NumStates]float64   // per-state background power (W), hoisted at New
	cmdEnergy  float64              // accumulated command energy (J)
	bits       int64
}

// New creates a simulator for the model.
func New(m *core.Model) *Simulator {
	spec := m.D.Spec
	toSlots := func(d units.Duration) int64 {
		// Guard against float noise pushing an exact multiple (7.5 ns at
		// 800 MHz = 6.0 slots) over the next integer.
		return int64(math.Ceil(float64(d)*float64(spec.ControlClock) - 1e-9))
	}
	tRP := toSlots(spec.PrechargeTime)
	if tRP < 1 {
		tRP = 1
	}
	tRC := toSlots(spec.RowCycle)
	if tRC < 2 {
		tRC = 2
	}
	tRAS := tRC - tRP
	if tRAS < 1 {
		tRAS = 1
	}
	s := &Simulator{
		m:          m,
		tRC:        tRC,
		tRCD:       maxI64(1, toSlots(spec.RowToColumnDelay)),
		tRP:        tRP,
		tRAS:       tRAS,
		tRRD:       maxI64(1, toSlots(spec.RowToRowDelay)),
		tFAW:       toSlots(spec.FourBankWindow),
		tRFC:       maxI64(1, toSlots(spec.RefreshCycle)),
		burstSlots: int64(m.BurstSlots()),
		banks:      make([]bankState, spec.Banks()),
		burstBank:  -1,
	}
	// tREFI for the retention auditor. A spec without a refresh interval
	// leaves refi at 0 and the audit off; the epoch starts at slot 0 with
	// the array assumed freshly refreshed (lastRefSlot 0).
	s.refi = toSlots(spec.RefreshInterval)
	if s.refi < 0 {
		s.refi = 0
	}
	// Power-state timings, derived from the row timings the description
	// already carries (the input language has no tCKE/tXP/tXS fields).
	// The derivations land on the DDR3-1600 datasheet ballpark: tCKEmin
	// ~ tRP/2 (4 nCK), tXP ~ tRCD/2 (5 nCK), tXS ~ tRFC + tRP
	// (tRFC + 10 ns). See DESIGN §9.
	s.tCKE = maxI64(3, s.tRP/2)
	s.tXP = maxI64(3, (s.tRCD+1)/2)
	s.tXS = s.tRFC + maxI64(2, s.tRP)
	for op, e := range m.OpEnergies() {
		s.opEnergy[op] = float64(e)
	}
	// Power-state entry/exit commands carry no charge events of their own
	// (CKE is a control pin); their energy effect is entirely the
	// background-state change, so their opEnergy slots stay zero.
	// Resolved background power, not the derived itemized ledger: a
	// calibration overlay that pins standby must move the residency
	// accounting with it.
	s.statePower[StateActive] = float64(m.BackgroundPower())
	s.statePower[StatePrecharged] = float64(m.BackgroundPower())
	s.statePower[StatePowerDown] = float64(m.PowerDownPower())
	s.statePower[StateSelfRefresh] = float64(m.SelfRefreshPower())
	s.state = StatePrecharged
	for i := range s.banks {
		s.banks[i].actSlot = math.MinInt64 / 2
		s.banks[i].preSlot = math.MinInt64 / 2
	}
	s.busUntil = math.MinInt64 / 2
	s.refUntil = math.MinInt64 / 2
	s.exitValid = math.MinInt64 / 2
	return s
}

// setState closes the residency of the current background state at slot
// and enters the next one. Allocation-free (called on the Issue hot path).
func (s *Simulator) setState(st State, slot int64) {
	s.stateSlots[s.state] += slot - s.stateSince
	s.state = st
	s.stateSince = slot
}

// checkPowerState rejects row/column/refresh commands while the device is
// in a CKE-low state or still inside the tXP/tXS exit-to-valid window.
// Only the rejection path allocates.
func (s *Simulator) checkPowerState(c Command) error {
	if s.state.lowPower() {
		return &TimingError{c, "device in " + s.state.String() + " state"}
	}
	if c.Slot < s.exitValid {
		return &TimingError{c, fmt.Sprintf("%s: low-power exit not complete until slot %d", s.exitRule, s.exitValid)}
	}
	return nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Now returns the current slot (the latest issue or advance time).
func (s *Simulator) Now() int64 { return s.now }

// Issue validates and executes one command. Commands must arrive in
// non-decreasing slot order. On a timing violation the command is rejected
// with a *TimingError and the simulator state is unchanged.
//
// Data-bus contention gates only column commands: at a slot where a
// previous burst still occupies the data bus (slot < busUntil),
//
//   - OpRead and OpWrite are rejected ("data bus busy"),
//   - OpActivate, OpPrecharge, OpRefresh and OpNop issue normally — they
//     travel on the command/address bus, which the model treats as
//     uncontended, and never touch the data bus. The one exception is a
//     precharge aimed at the bank whose own burst is still draining: that
//     would cut the burst short, so it is rejected until busUntil.
//
// These semantics are pinned by TestIssueAtContendedBusSlot. The accept
// path performs no heap allocations; only a rejection allocates (for its
// *TimingError).
//
// Power-state commands (OpPowerDownEnter/Exit, OpSelfRefreshEnter/Exit)
// drive the background-state machine: entry requires all banks closed, no
// refresh in progress and no burst in flight; exit is legal tCKEmin slots
// after entry; and row/column/refresh commands stay illegal until tXP
// (after pdx) or tXS (after srx) has elapsed. Bank and Row are ignored on
// these commands (CKE is a rank-wide pin).
func (s *Simulator) Issue(c Command) error {
	if c.Slot < s.now {
		return &TimingError{c, fmt.Sprintf("out of order (now at slot %d)", s.now)}
	}
	if c.Bank < 0 || c.Bank >= len(s.banks) {
		return &TimingError{c, fmt.Sprintf("bank %d outside 0..%d", c.Bank, len(s.banks)-1)}
	}
	b := &s.banks[c.Bank]
	switch c.Op {
	case desc.OpActivate:
		if err := s.checkPowerState(c); err != nil {
			return err
		}
		if b.active {
			return &TimingError{c, "bank already active"}
		}
		if c.Slot < b.actSlot+s.tRC {
			return &TimingError{c, fmt.Sprintf("tRC: last activate at %d", b.actSlot)}
		}
		if c.Slot < b.preSlot+s.tRP {
			return &TimingError{c, fmt.Sprintf("tRP: precharge at %d not complete", b.preSlot)}
		}
		if c.Slot < s.refUntil {
			return &TimingError{c, "tRFC: refresh in progress"}
		}
		// tRRD binds against the most recent activate only: activates
		// arrive in slot order, so an older activate can never be the
		// tighter constraint.
		if s.actCount > 0 {
			if t := s.actRing[(s.actPos+ringSize-1)&(ringSize-1)]; c.Slot < t+s.tRRD {
				return &TimingError{c, fmt.Sprintf("tRRD: activate at %d", t)}
			}
		}
		if s.tFAW > 0 && s.actCount >= 4 {
			if w := s.actRing[(s.actPos+ringSize-4)&(ringSize-1)]; c.Slot < w+s.tFAW {
				return &TimingError{c, fmt.Sprintf("tFAW: fourth activate at %d", w)}
			}
		}
		b.active, b.row, b.actSlot, b.everActive = true, c.Row, c.Slot, true
		s.actRing[s.actPos] = c.Slot
		s.actPos = (s.actPos + 1) & (ringSize - 1)
		s.actCount++
		s.openBanks++
		if s.openBanks == 1 {
			s.setState(StateActive, c.Slot)
		}
	case desc.OpRead, desc.OpWrite:
		if err := s.checkPowerState(c); err != nil {
			return err
		}
		if !b.active {
			return &TimingError{c, "bank not active"}
		}
		if b.row != c.Row {
			return &TimingError{c, fmt.Sprintf("row %d open, access to row %d", b.row, c.Row)}
		}
		if c.Slot < b.actSlot+s.tRCD {
			return &TimingError{c, fmt.Sprintf("tRCD: activate at %d", b.actSlot)}
		}
		if c.Slot < s.busUntil {
			return &TimingError{c, fmt.Sprintf("data bus busy until slot %d", s.busUntil)}
		}
		s.busUntil = c.Slot + s.burstSlots
		s.burstBank = c.Bank
		s.bits += int64(s.m.BitsPerBurst())
	case desc.OpPrecharge:
		if err := s.checkPowerState(c); err != nil {
			return err
		}
		if !b.active {
			return &TimingError{c, "bank not active"}
		}
		if c.Slot < b.actSlot+s.tRAS {
			return &TimingError{c, fmt.Sprintf("tRAS: activate at %d", b.actSlot)}
		}
		// A precharge may not cut off its own bank's burst: the read or
		// write that owns the data bus must drain first. Other banks'
		// precharges pass — the bus is not theirs.
		if c.Slot < s.busUntil && c.Bank == s.burstBank {
			return &TimingError{c, fmt.Sprintf("burst on bank %d drains until slot %d", c.Bank, s.busUntil)}
		}
		b.active = false
		b.preSlot = c.Slot
		s.openBanks--
		if s.openBanks == 0 {
			s.setState(StatePrecharged, c.Slot)
		}
	case desc.OpRefresh:
		if err := s.checkPowerState(c); err != nil {
			return err
		}
		for i := range s.banks {
			if s.banks[i].active {
				return &TimingError{c, fmt.Sprintf("bank %d active at refresh", i)}
			}
		}
		if c.Slot < s.refUntil {
			return &TimingError{c, "tRFC: previous refresh in progress"}
		}
		s.refUntil = c.Slot + s.tRFC
		// Retention audit: this refresh serves obligation refCredit+1 of
		// the current epoch; landing past that obligation's postponement
		// deadline is a miss. Pure integer bookkeeping — no allocation.
		if s.refi > 0 {
			if g := c.Slot - s.lastRefSlot; g > s.maxRefGap {
				s.maxRefGap = g
			}
			if c.Slot > s.refBaseSlot+(s.refCredit+1+MaxPostponedRefreshes)*s.refi {
				s.refMissed++
			}
			s.refCredit++
			s.refCount++
			s.lastRefSlot = c.Slot
		}
	case OpPowerDownEnter, OpSelfRefreshEnter:
		if s.state.lowPower() {
			return &TimingError{c, "already in " + s.state.String() + " state"}
		}
		if c.Slot < s.exitValid {
			return &TimingError{c, fmt.Sprintf("%s: low-power exit not complete until slot %d", s.exitRule, s.exitValid)}
		}
		if s.openBanks > 0 {
			return &TimingError{c, fmt.Sprintf("%d bank(s) open (precharge power-down/self-refresh require all banks closed)", s.openBanks)}
		}
		if c.Slot < s.refUntil {
			return &TimingError{c, "tRFC: refresh in progress"}
		}
		if c.Slot < s.busUntil {
			return &TimingError{c, fmt.Sprintf("data bus busy until slot %d", s.busUntil)}
		}
		st := StatePowerDown
		if c.Op == OpSelfRefreshEnter {
			st = StateSelfRefresh
			// Self-refresh covers retention internally: close the audit
			// epoch here. Obligations whose deadlines had already passed
			// unserved are missed; everything not yet due is forgiven.
			if s.refi > 0 {
				if g := c.Slot - s.lastRefSlot; g > s.maxRefGap {
					s.maxRefGap = g
				}
				passed := (c.Slot-1-s.refBaseSlot)/s.refi - MaxPostponedRefreshes
				if m := passed - s.refCredit; m > 0 {
					s.refMissed += m
				}
			}
		}
		s.setState(st, c.Slot)
		s.lpEnter = c.Slot
	case OpPowerDownExit:
		if s.state != StatePowerDown {
			return &TimingError{c, "not in power-down"}
		}
		if c.Slot < s.lpEnter+s.tCKE {
			return &TimingError{c, fmt.Sprintf("tCKEmin: power-down entered at %d, earliest exit %d", s.lpEnter, s.lpEnter+s.tCKE)}
		}
		s.setState(StatePrecharged, c.Slot)
		s.exitValid, s.exitRule = c.Slot+s.tXP, "tXP"
	case OpSelfRefreshExit:
		if s.state != StateSelfRefresh {
			return &TimingError{c, "not in self-refresh"}
		}
		if c.Slot < s.lpEnter+s.tCKE {
			return &TimingError{c, fmt.Sprintf("tCKEmin: self-refresh entered at %d, earliest exit %d", s.lpEnter, s.lpEnter+s.tCKE)}
		}
		s.setState(StatePrecharged, c.Slot)
		s.exitValid, s.exitRule = c.Slot+s.tXS, "tXS"
		// Leaving self-refresh starts a fresh retention epoch: the array
		// was refreshed throughout, so the clock restarts here.
		if s.refi > 0 {
			s.refBaseSlot = c.Slot
			s.refCredit = 0
			s.lastRefSlot = c.Slot
		}
	case desc.OpNop:
		// nothing: legal in every state (DESELECT keeps CKE unchanged)
	default:
		return &TimingError{c, "unknown operation"}
	}
	s.now = c.Slot
	// Every op the switch accepts is in [0, numTraceOps), so these array
	// reads are in range. The energy integration is a flat read of the
	// per-op ledger hoisted from the model at New.
	s.counts[c.Op]++
	s.cmdEnergy += s.opEnergy[c.Op]
	return nil
}

// Run issues a whole trace, stopping at the first violation.
func (s *Simulator) Run(cmds []Command) error {
	for _, c := range cmds {
		if err := s.Issue(c); err != nil {
			return err
		}
	}
	return nil
}

// RunStream issues every command the scanner produces, stopping at the
// first timing violation (*TimingError) or malformed line (*ParseError).
// The trace streams through the scanner's fixed buffer, so arbitrarily
// long trace files never need to fit in memory; the energy totals are
// identical to Run on the equivalent materialized slice.
func (s *Simulator) RunStream(sc *Scanner) error {
	for sc.Scan() {
		if err := s.Issue(sc.Command()); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Result summarizes the energy accounting of a finished trace.
type Result struct {
	// Slots is the trace duration in control-clock slots; Duration the
	// wall-clock time.
	Slots    int64
	Duration units.Duration
	// CommandEnergy is the accumulated per-command energy; Background the
	// residency-weighted standby energy over the duration (active standby
	// while any bank is open, precharged standby otherwise, IDD2P-derived
	// power during power-down, IDD6-derived power during self-refresh);
	// Total their sum.
	CommandEnergy units.Energy
	Background    units.Energy
	Total         units.Energy
	// AveragePower and AverageCurrent over the duration.
	AveragePower   units.Power
	AverageCurrent units.Current
	// Bits transferred and the resulting energy per bit (0 if no data).
	Bits         int64
	EnergyPerBit units.Energy
	// Counts per operation; only operations that occurred have entries,
	// and a trace that issued no commands leaves Counts nil (reads of a
	// nil map return zero, so callers may index it unconditionally).
	Counts map[desc.Op]int64
	// BusUtilization is the share of slots the data bus carried a burst,
	// clamped to [0, 1] (an endSlot that truncates a final burst would
	// otherwise overcount the burst's full occupancy).
	BusUtilization float64
	// Per-state slot residency: every slot of the trace is in exactly one
	// background state, so the four counters sum to Slots.
	ActiveSlots      int64
	PrechargedSlots  int64
	PowerDownSlots   int64
	SelfRefreshSlots int64
	// Per-state background energy. Active and precharged standby draw the
	// same model power (IDD3N == IDD2N, see core.IDD), so their split is
	// informational; power-down and self-refresh draw PowerDownPower and
	// SelfRefreshPower. Each entry is rounded independently, so their sum
	// can differ from Background by an ulp: Background combines the
	// equal-power active+precharged slots in one multiply to stay
	// bit-identical to the pre-power-state engine on traces without
	// power-state commands (pinned by TestGoldenResultUnchanged).
	ActiveBackground      units.Energy
	PrechargedBackground  units.Energy
	PowerDownBackground   units.Energy
	SelfRefreshBackground units.Energy
	// Retention audit (report-only; all zero when the spec carries no
	// RefreshInterval). Refreshes counts ref commands issued.
	// MaxRefreshInterval is the widest gap in slots between consecutive
	// refreshes — including the trace edges, with slot 0 and any
	// self-refresh window treated as refreshed — so a retention-clean
	// trace keeps it at or under (MaxPostponedRefreshes+1)*tREFI.
	// MissedRefreshDeadlines counts tREFI obligations served or abandoned
	// past their JEDEC postponement deadline.
	Refreshes              int64
	MaxRefreshInterval     int64
	MissedRefreshDeadlines int64
}

// Result closes the trace at the given end slot and reports the totals.
// The background integral is residency-weighted: the trailing slots from
// the last state change to endSlot are attributed to the state the
// simulator is still in (Result does not mutate the simulator, so it can
// be called repeatedly or mid-trace).
func (s *Simulator) Result(endSlot int64) Result {
	if endSlot < s.now {
		endSlot = s.now
	}
	spec := s.m.D.Spec
	clock := float64(spec.ControlClock)
	dur := units.Duration(float64(endSlot) / clock)
	slots := s.stateSlots // copy; close the open residency without mutating s
	if endSlot > s.stateSince {
		slots[s.state] += endSlot - s.stateSince
	}
	// Residency-weighted background. Active and precharged standby share
	// one power (IDD3N == IDD2N in this model), so their slots combine in
	// a single multiply: a trace that never left the standby states
	// integrates background exactly as the flat pre-power-state engine
	// did, bit for bit. The low-power terms add literal 0.0 when unused.
	standby := slots[StateActive] + slots[StatePrecharged]
	bg := s.statePower[StatePrecharged] * (float64(standby) / clock)
	if slots[StatePowerDown] > 0 {
		bg += s.statePower[StatePowerDown] * (float64(slots[StatePowerDown]) / clock)
	}
	if slots[StateSelfRefresh] > 0 {
		bg += s.statePower[StateSelfRefresh] * (float64(slots[StateSelfRefresh]) / clock)
	}
	total := s.cmdEnergy + bg
	r := Result{
		Slots:            endSlot,
		Duration:         dur,
		CommandEnergy:    units.Energy(s.cmdEnergy),
		Background:       units.Energy(bg),
		Total:            units.Energy(total),
		Bits:             s.bits,
		ActiveSlots:      slots[StateActive],
		PrechargedSlots:  slots[StatePrecharged],
		PowerDownSlots:   slots[StatePowerDown],
		SelfRefreshSlots: slots[StateSelfRefresh],
		ActiveBackground: units.Energy(s.statePower[StateActive] * (float64(slots[StateActive]) / clock)),
		PrechargedBackground: units.Energy(
			s.statePower[StatePrecharged] * (float64(slots[StatePrecharged]) / clock)),
		PowerDownBackground: units.Energy(
			s.statePower[StatePowerDown] * (float64(slots[StatePowerDown]) / clock)),
		SelfRefreshBackground: units.Energy(
			s.statePower[StateSelfRefresh] * (float64(slots[StateSelfRefresh]) / clock)),
	}
	// Close the retention audit at endSlot without mutating the
	// simulator: the tail from the last refresh to endSlot widens the
	// observed gap, and obligations whose deadline falls inside the trace
	// but were never served are missed — unless the trace ends parked in
	// self-refresh, which covers retention on its own.
	r.Refreshes = s.refCount
	if s.refi > 0 {
		gap, missed := s.maxRefGap, s.refMissed
		if s.state != StateSelfRefresh {
			if g := endSlot - s.lastRefSlot; g > gap {
				gap = g
			}
			due := (endSlot-s.refBaseSlot)/s.refi - MaxPostponedRefreshes
			if m := due - s.refCredit; m > 0 {
				missed += m
			}
		}
		r.MaxRefreshInterval = gap
		r.MissedRefreshDeadlines = missed
	}
	// The counts map is only materialized when something was issued; an
	// empty trace reports a nil map instead of allocating one.
	var issued int64
	for _, n := range s.counts {
		issued += n
	}
	if issued > 0 {
		r.Counts = make(map[desc.Op]int64, numTraceOps)
		for op, n := range s.counts {
			if n > 0 {
				r.Counts[desc.Op(op)] = n
			}
		}
	}
	if dur > 0 {
		r.AveragePower = units.Power(total / float64(dur))
		if v := s.m.D.Electrical.Vdd; v > 0 {
			r.AverageCurrent = units.Current(float64(r.AveragePower) / float64(v))
		}
	}
	if s.bits > 0 {
		r.EnergyPerBit = units.Energy(total / float64(s.bits))
	}
	if endSlot > 0 {
		burstCmds := s.counts[desc.OpRead] + s.counts[desc.OpWrite]
		u := float64(burstCmds*s.burstSlots) / float64(endSlot)
		if u > 1 {
			u = 1
		}
		r.BusUtilization = u
	}
	return r
}

// TimingSlots exposes the resolved constraints (in slots) for tests and
// workload generators.
func (s *Simulator) TimingSlots() (tRC, tRCD, tRP, tRAS, tRRD, tFAW, burst int64) {
	return s.tRC, s.tRCD, s.tRP, s.tRAS, s.tRRD, s.tFAW, s.burstSlots
}

// RefreshCycleSlots exposes the resolved tRFC in slots.
func (s *Simulator) RefreshCycleSlots() int64 { return s.tRFC }

// RefreshIntervalSlots exposes the resolved tREFI in slots (0 when the
// spec carries no RefreshInterval; the retention audit is off then).
func (s *Simulator) RefreshIntervalSlots() int64 { return s.refi }

// PowerStateSlots exposes the resolved power-state constraints (in slots):
// minimum CKE-low residency (tCKEmin), power-down exit to first valid
// command (tXP) and self-refresh exit to first valid command (tXS).
func (s *Simulator) PowerStateSlots() (tCKE, tXP, tXS int64) {
	return s.tCKE, s.tXP, s.tXS
}

// PowerState returns the background state the simulator is currently in.
func (s *Simulator) PowerState() State { return s.state }
