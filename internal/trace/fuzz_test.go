package trace

import (
	"bytes"
	"errors"
	"os"
	"testing"

	"drampower/internal/core"
	"drampower/internal/desc"
)

// FuzzTraceScanner drives the streaming trace scanner with mutated
// inputs, seeded from generated workloads and edge-case lines. The
// scanner must never panic, must only fail with positioned *ParseError,
// and every accepted command must survive the AppendCommand round-trip
// (the canonical rendering reparses to the same command).
func FuzzTraceScanner(f *testing.F) {
	if m, err := core.Build(desc.Sample1GbDDR3()); err == nil {
		var b bytes.Buffer
		WriteTrace(&b, Streaming(m, 50, 0.7, 1))
		f.Add(b.Bytes())
		b.Reset()
		WriteTrace(&b, RandomClosedPage(m, 30, 0.5, 2))
		f.Add(b.Bytes())
	}
	f.Add([]byte("0 act 2 17\n11 rd 2 17\n28 pre 2 17\n100 ref\n"))
	f.Add([]byte("# comment\n\n  \t\n5 ACTIVATE 1 2 # trailing\n"))
	f.Add([]byte("9223372036854775807 nop\n"))
	f.Add([]byte("-1 act 0 0\n"))
	f.Add([]byte("0 wr 0\n0 write 0 0 0\n"))
	f.Add([]byte("0 ref\n200 pde\n800 pdx\n900 sre\n12000 SRX\n"))
	f.Add([]byte("0"))

	f.Fuzz(func(t *testing.T, data []byte) {
		sc := NewScanner(bytes.NewReader(data))
		var cmds []Command
		for sc.Scan() {
			cmds = append(cmds, sc.Command())
			if len(cmds) >= 4096 {
				break
			}
		}
		if err := sc.Err(); err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("non-positioned scanner error %T: %v", err, err)
			}
			if pe.Line < 1 {
				t.Fatalf("scanner error with line %d: %v", pe.Line, pe)
			}
		}
		if len(cmds) == 0 {
			return
		}
		// Canonical round-trip: re-render and re-scan.
		var buf []byte
		for _, c := range cmds {
			buf = AppendCommand(buf, c)
		}
		rt := NewScanner(bytes.NewReader(buf))
		for i := 0; rt.Scan(); i++ {
			if got := rt.Command(); got != cmds[i] {
				t.Fatalf("round-trip command %d = %+v, want %+v", i, got, cmds[i])
			}
		}
		if err := rt.Err(); err != nil {
			t.Fatalf("canonical rendering failed to rescan: %v", err)
		}
	})
}

// convertTextTrace renders a text trace's commands in the dtb binary
// encoding, for seeding the binary fuzz corpus from the testdata traces.
func convertTextTrace(f *testing.F, text []byte) []byte {
	f.Helper()
	sc := NewScanner(bytes.NewReader(text))
	var cmds []Command
	for sc.Scan() {
		cmds = append(cmds, sc.Command())
	}
	if err := sc.Err(); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinaryTrace(&buf, cmds); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzBinaryScanner drives the dtb binary scanner with mutated inputs,
// seeded from converted testdata traces, generated workloads (including
// the power-state commands) and handcrafted edge cases. The scanner must
// never panic, must only fail with positioned *ParseError (ordinal >= 1),
// and every accepted command stream must survive the BinaryWriter
// round-trip bit-identically — the binary counterpart of the text
// scanner's canonical-rendering property.
func FuzzBinaryScanner(f *testing.F) {
	for _, name := range []string{"testdata/golden_single_trace.txt", "testdata/golden_multi_trace.txt"} {
		if text, err := os.ReadFile(name); err == nil {
			f.Add(convertTextTrace(f, text))
		}
	}
	if m, err := core.Build(desc.Sample1GbDDR3()); err == nil {
		var b bytes.Buffer
		WriteBinaryTrace(&b, Streaming(m, 50, 0.7, 1))
		f.Add(append([]byte(nil), b.Bytes()...))
		b.Reset()
		WriteBinaryTrace(&b, WithPowerDown(m, RefreshOnly(m, 5), 1))
		f.Add(append([]byte(nil), b.Bytes()...))
	}
	header := []byte{0xD7, 'D', 'T', 'B', 1}
	f.Add(append([]byte(nil), header...))                                                                                 // empty trace
	f.Add(append(append([]byte(nil), header...), 0x01, 0x00))                                                             // one act at slot 0
	f.Add(append(append([]byte(nil), header...), 0x31, 0x02, 0x04, 0x22))                                                 // act 2 17
	f.Add(append(append([]byte(nil), header...), 0xC1, 0x00))                                                             // reserved flags
	f.Add(append(append([]byte(nil), header...), 0x00, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x00)) // overlong varint
	f.Add([]byte{0xD7, 'D', 'T', 'B', 9})                                                                                 // bad version
	f.Add([]byte{0xD7, 'D'})                                                                                              // truncated header
	f.Add([]byte("0 act 0 1\n"))                                                                                          // text handed to the binary scanner

	f.Fuzz(func(t *testing.T, data []byte) {
		sc := NewBinaryScanner(bytes.NewReader(data))
		var cmds []Command
		for sc.Scan() {
			cmds = append(cmds, sc.Command())
			if len(cmds) >= 4096 {
				break
			}
		}
		if err := sc.Err(); err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("non-positioned scanner error %T: %v", err, err)
			}
			if pe.Line < 1 {
				t.Fatalf("scanner error with command ordinal %d: %v", pe.Line, pe)
			}
		}
		if len(cmds) == 0 {
			return
		}
		// Round-trip: re-encode and re-decode bit-identically.
		var buf bytes.Buffer
		if err := WriteBinaryTrace(&buf, cmds); err != nil {
			t.Fatalf("accepted commands failed to re-encode: %v", err)
		}
		rt := NewBinaryScanner(bytes.NewReader(buf.Bytes()))
		for i := 0; rt.Scan(); i++ {
			if got := rt.Command(); got != cmds[i] {
				t.Fatalf("round-trip command %d = %+v, want %+v", i, got, cmds[i])
			}
		}
		if err := rt.Err(); err != nil {
			t.Fatalf("re-encoded trace failed to rescan: %v", err)
		}
	})
}
