package trace

import (
	"bytes"
	"errors"
	"testing"

	"drampower/internal/core"
	"drampower/internal/desc"
)

// FuzzTraceScanner drives the streaming trace scanner with mutated
// inputs, seeded from generated workloads and edge-case lines. The
// scanner must never panic, must only fail with positioned *ParseError,
// and every accepted command must survive the AppendCommand round-trip
// (the canonical rendering reparses to the same command).
func FuzzTraceScanner(f *testing.F) {
	if m, err := core.Build(desc.Sample1GbDDR3()); err == nil {
		var b bytes.Buffer
		WriteTrace(&b, Streaming(m, 50, 0.7, 1))
		f.Add(b.Bytes())
		b.Reset()
		WriteTrace(&b, RandomClosedPage(m, 30, 0.5, 2))
		f.Add(b.Bytes())
	}
	f.Add([]byte("0 act 2 17\n11 rd 2 17\n28 pre 2 17\n100 ref\n"))
	f.Add([]byte("# comment\n\n  \t\n5 ACTIVATE 1 2 # trailing\n"))
	f.Add([]byte("9223372036854775807 nop\n"))
	f.Add([]byte("-1 act 0 0\n"))
	f.Add([]byte("0 wr 0\n0 write 0 0 0\n"))
	f.Add([]byte("0 ref\n200 pde\n800 pdx\n900 sre\n12000 SRX\n"))
	f.Add([]byte("0"))

	f.Fuzz(func(t *testing.T, data []byte) {
		sc := NewScanner(bytes.NewReader(data))
		var cmds []Command
		for sc.Scan() {
			cmds = append(cmds, sc.Command())
			if len(cmds) >= 4096 {
				break
			}
		}
		if err := sc.Err(); err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("non-positioned scanner error %T: %v", err, err)
			}
			if pe.Line < 1 {
				t.Fatalf("scanner error with line %d: %v", pe.Line, pe)
			}
		}
		if len(cmds) == 0 {
			return
		}
		// Canonical round-trip: re-render and re-scan.
		var buf []byte
		for _, c := range cmds {
			buf = AppendCommand(buf, c)
		}
		rt := NewScanner(bytes.NewReader(buf))
		for i := 0; rt.Scan(); i++ {
			if got := rt.Command(); got != cmds[i] {
				t.Fatalf("round-trip command %d = %+v, want %+v", i, got, cmds[i])
			}
		}
		if err := rt.Err(); err != nil {
			t.Fatalf("canonical rendering failed to rescan: %v", err)
		}
	})
}
