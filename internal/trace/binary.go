package trace

// Binary trace encoding ("dtb"): a compact, streaming-friendly rendering
// of command traces built for ingest at simulator rates. The text format
// (scanner.go) spends ~20 bytes and a tokenizing scan per command; dtb
// spends 3-6 bytes and a handful of branchless varint reads, which is
// what closes the gap between parsing and the zero-alloc Issue hot path
// (see DESIGN §11 and BenchmarkTraceReplay8ChBinary).
//
// Layout:
//
//	header   5 bytes: 0xD7 'D' 'T' 'B' <version=0x01>
//	command  1 flag/op byte, then 1-3 zigzag varints:
//	         bits 0-3  op (0..numTraceOps-1: nop, act, pre, rd, wrt,
//	                   ref, pde, pdx, sre, srx — the desc.Op /
//	                   power-state numbering)
//	         bit 4     a bank varint follows (omitted when bank == 0)
//	         bit 5     a row varint follows (omitted when row == 0)
//	         bits 6-7  reserved, must be zero
//	         varint    slot delta from the previous command's slot
//	                   (zigzag-encoded; the first command's delta is its
//	                   absolute slot)
//	         [varint]  bank, [varint] row (zigzag-encoded)
//
// Every command stream the text scanner accepts is representable: slots
// are non-negative but need not be monotone (the simulator, not the
// parser, enforces ordering), and bank/row may be negative on the way to
// a bank-range rejection, hence zigzag rather than unsigned varints. The
// leading 0xD7 byte cannot start a well-formed text trace line, so the
// two encodings are sniffable from the first byte (see NewSource).

import (
	"bufio"
	"fmt"
	"io"

	"drampower/internal/desc"
)

// dtbMagic is the file header: three printable identifying bytes behind a
// guard byte that is invalid at the start of trace text (and of UTF-8).
var dtbMagic = [4]byte{0xD7, 'D', 'T', 'B'}

// dtbVersion is the current encoding version, bumped on incompatible
// layout changes.
const dtbVersion = 1

// binHeaderLen is the full header size: magic plus version byte.
const binHeaderLen = len(dtbMagic) + 1

// maxBinCmdBytes bounds one encoded command: the flag/op byte plus three
// 10-byte varints.
const maxBinCmdBytes = 1 + 3*10

// binBufSize is the BinaryScanner's read buffer. Commands average ~4
// bytes, so one refill covers thousands of commands.
const binBufSize = 32 << 10

const (
	flagBank     = 0x10
	flagRow      = 0x20
	flagReserved = 0xC0
	opMask       = 0x0F
)

// zigzag folds a signed value into an unsigned varint payload so small
// negative deltas stay short.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag is the inverse of zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// BinaryScanner streams commands from a dtb-encoded trace. It mirrors the
// text Scanner's interface (Scan/Command/Err) and allocation discipline:
// after construction the accept path performs no heap allocations —
// commands decode straight out of a fixed refill buffer. Errors are
// *ParseError like the text scanner's; for binary input Line carries the
// 1-based ordinal of the offending command and Col is zero.
type BinaryScanner struct {
	r        io.Reader
	buf      []byte
	pos, end int
	eof      bool
	started  bool // header consumed
	prev     int64
	n        int64 // commands decoded so far
	cmd      Command
	err      error
}

// NewBinaryScanner returns a BinaryScanner reading a dtb trace from r.
// The header is validated on the first Scan.
func NewBinaryScanner(r io.Reader) *BinaryScanner {
	return &BinaryScanner{r: r, buf: make([]byte, binBufSize)}
}

// fail records a positioned decode error at the current command ordinal.
func (sc *BinaryScanner) fail(format string, args ...any) bool {
	sc.err = &ParseError{Line: int(sc.n + 1), Msg: fmt.Sprintf(format, args...)}
	return false
}

// fill slides the unread bytes to the front of the buffer and reads until
// it holds at least maxBinCmdBytes (or the input ends or errors).
func (sc *BinaryScanner) fill() {
	if sc.pos > 0 {
		copy(sc.buf, sc.buf[sc.pos:sc.end])
		sc.end -= sc.pos
		sc.pos = 0
	}
	for sc.end-sc.pos < maxBinCmdBytes && !sc.eof {
		n, err := sc.r.Read(sc.buf[sc.end:])
		sc.end += n
		if err == io.EOF {
			sc.eof = true
			return
		}
		if err != nil {
			sc.err = &ParseError{Line: int(sc.n + 1), Msg: err.Error(), err: err}
			return
		}
	}
}

// readHeader consumes and validates the magic + version header.
func (sc *BinaryScanner) readHeader() bool {
	sc.fill()
	if sc.err != nil {
		return false
	}
	if sc.end-sc.pos < binHeaderLen {
		return sc.fail("truncated dtb header (%d bytes, want %d: not a binary trace?)", sc.end-sc.pos, binHeaderLen)
	}
	h := sc.buf[sc.pos : sc.pos+binHeaderLen]
	if h[0] != dtbMagic[0] || h[1] != dtbMagic[1] || h[2] != dtbMagic[2] || h[3] != dtbMagic[3] {
		return sc.fail("bad magic %q (not a dtb binary trace)", string(h[:len(dtbMagic)]))
	}
	if h[4] != dtbVersion {
		return sc.fail("unsupported dtb version %d (this reader speaks %d)", h[4], dtbVersion)
	}
	sc.pos += binHeaderLen
	sc.started = true
	return true
}

// binVarint decodes one zigzag varint from b starting at i, never reading
// at or past end. ok is false on truncation or a >10-byte (overflowing)
// encoding.
func binVarint(b []byte, i, end int) (v int64, next int, ok bool) {
	var u uint64
	var shift uint
	for i < end {
		c := b[i]
		i++
		if shift == 63 && c > 1 {
			return 0, i, false // would overflow uint64
		}
		u |= uint64(c&0x7F) << shift
		if c < 0x80 {
			return unzigzag(u), i, true
		}
		shift += 7
		if shift > 63 {
			return 0, i, false
		}
	}
	return 0, i, false
}

// Scan advances to the next command. It returns false at end of input or
// on the first error; Err disambiguates the two.
func (sc *BinaryScanner) Scan() bool {
	if sc.err != nil {
		return false
	}
	if !sc.started && !sc.readHeader() {
		return false
	}
	if sc.end-sc.pos < maxBinCmdBytes && !sc.eof {
		sc.fill()
		if sc.err != nil {
			return false
		}
	}
	return sc.decode()
}

// decode decodes one command from the buffered bytes (the caller has
// ensured the buffer holds a full command or the input's final bytes).
func (sc *BinaryScanner) decode() bool {
	i, end := sc.pos, sc.end
	if i == end {
		return false // clean end of input
	}
	b := sc.buf
	h := b[i]
	i++
	if h&flagReserved != 0 {
		return sc.fail("reserved flag bits 0x%02x set", h&flagReserved)
	}
	op := desc.Op(h & opMask)
	if int(op) >= numTraceOps {
		return sc.fail("op %d out of range (want 0..%d)", op, numTraceOps-1)
	}
	delta, i, ok := binVarint(b, i, end)
	if !ok {
		return sc.fail("truncated or overlong slot delta")
	}
	slot := sc.prev + delta
	if (delta > 0 && slot < sc.prev) || (delta < 0 && slot > sc.prev) {
		return sc.fail("slot overflow (delta %d from slot %d)", delta, sc.prev)
	}
	if slot < 0 {
		return sc.fail("negative slot %d", slot)
	}
	var bank, row int64
	if h&flagBank != 0 {
		if bank, i, ok = binVarint(b, i, end); !ok {
			return sc.fail("truncated or overlong bank")
		}
	}
	if h&flagRow != 0 {
		if row, i, ok = binVarint(b, i, end); !ok {
			return sc.fail("truncated or overlong row")
		}
	}
	sc.pos = i
	sc.prev = slot
	sc.n++
	sc.cmd = Command{Slot: slot, Op: op, Bank: int(bank), Row: int(row)}
	return true
}

// fastVarint decodes one varint from b (caller guarantees at least 10
// readable bytes). size is 0 on an overlong or overflowing encoding.
func fastVarint(b []byte) (u uint64, size int) {
	if b[0] < 0x80 {
		return uint64(b[0]), 1
	}
	var shift uint
	for i := 0; i < 10; i++ {
		c := b[i]
		if i == 9 && c > 1 {
			return 0, 0 // would overflow uint64
		}
		u |= uint64(c&0x7F) << shift
		if c < 0x80 {
			return u, i + 1
		}
		shift += 7
	}
	return 0, 0
}

// ScanBatch decodes up to len(dst) commands into dst and returns how many
// it produced. A short count means the input ended or errored (check Err)
// — it never means "try again". This is the replay pipeline's fast path:
// while a whole command is guaranteed buffered, it decodes in a tight
// loop on locals; buffer boundaries, truncation and malformed input fall
// back to Scan, which re-decodes and positions the error.
func (sc *BinaryScanner) ScanBatch(dst []Command) int {
	if sc.err != nil || (!sc.started && !sc.readHeader()) {
		return 0
	}
	n := 0
	for n < len(dst) {
		if sc.end-sc.pos < maxBinCmdBytes && !sc.eof {
			sc.fill()
			if sc.err != nil {
				return n
			}
		}
		b := sc.buf
		i, end, prev := sc.pos, sc.end, sc.prev
		count := sc.n
		for n < len(dst) && end-i >= maxBinCmdBytes {
			start := i
			h := b[i]
			i++
			op := desc.Op(h & opMask)
			if h&flagReserved != 0 || int(op) >= numTraceOps {
				i = start
				break // Scan reports the error
			}
			u, sz := fastVarint(b[i:])
			if sz == 0 {
				i = start
				break
			}
			i += sz
			delta := unzigzag(u)
			slot := prev + delta
			if slot < 0 || (delta > 0 && slot < prev) || (delta < 0 && slot > prev) {
				i = start
				break
			}
			var bank, row int64
			if h&flagBank != 0 {
				if u, sz = fastVarint(b[i:]); sz == 0 {
					i = start
					break
				}
				i += sz
				bank = unzigzag(u)
			}
			if h&flagRow != 0 {
				if u, sz = fastVarint(b[i:]); sz == 0 {
					i = start
					break
				}
				i += sz
				row = unzigzag(u)
			}
			dst[n] = Command{Slot: slot, Op: op, Bank: int(bank), Row: int(row)}
			n++
			prev = slot
			count++
		}
		sc.pos, sc.prev, sc.n = i, prev, count
		if n == len(dst) {
			return n
		}
		// Near the buffer end, at end of input, or on malformed bytes:
		// one command through the general path, which refills or errors.
		if !sc.Scan() {
			return n
		}
		dst[n] = sc.cmd
		n++
	}
	return n
}

// Command returns the command of the last successful Scan.
func (sc *BinaryScanner) Command() Command { return sc.cmd }

// Err returns the first error encountered (a *ParseError), or nil after a
// clean end of input.
func (sc *BinaryScanner) Err() error { return sc.err }

// Commands returns the number of commands decoded so far.
func (sc *BinaryScanner) Commands() int64 { return sc.n }

// BinaryWriter encodes commands into the dtb binary format, buffered.
// The header is written on creation, so flushing a fresh writer produces
// a valid empty trace. Call Flush when done; the writer does not own or
// close the underlying writer.
type BinaryWriter struct {
	w    *bufio.Writer
	prev int64
	err  error
	buf  [maxBinCmdBytes]byte
}

// NewBinaryWriter returns a BinaryWriter emitting a dtb stream to w.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	bw := &BinaryWriter{w: bufio.NewWriter(w)}
	_, bw.err = bw.w.Write(append(dtbMagic[:len(dtbMagic):len(dtbMagic)], dtbVersion))
	return bw
}

// appendVarint appends the zigzag varint encoding of v to dst.
func appendVarint(dst []byte, v int64) []byte {
	u := zigzag(v)
	for u >= 0x80 {
		dst = append(dst, byte(u)|0x80)
		u >>= 7
	}
	return append(dst, byte(u))
}

// WriteCommand appends one command to the stream. Commands with negative
// slots are rejected (they could not round-trip: the scanner refuses
// them, mirroring the text parser).
func (bw *BinaryWriter) WriteCommand(c Command) error {
	if bw.err != nil {
		return bw.err
	}
	if c.Slot < 0 {
		bw.err = fmt.Errorf("trace: negative slot %d not encodable", c.Slot)
		return bw.err
	}
	h := byte(c.Op) & opMask
	if int(c.Op) >= numTraceOps || c.Op < 0 {
		bw.err = fmt.Errorf("trace: op %d not encodable (want 0..%d)", c.Op, numTraceOps-1)
		return bw.err
	}
	if c.Bank != 0 {
		h |= flagBank
	}
	if c.Row != 0 {
		h |= flagRow
	}
	buf := append(bw.buf[:0], h)
	buf = appendVarint(buf, c.Slot-bw.prev)
	if c.Bank != 0 {
		buf = appendVarint(buf, int64(c.Bank))
	}
	if c.Row != 0 {
		buf = appendVarint(buf, int64(c.Row))
	}
	if _, err := bw.w.Write(buf); err != nil {
		bw.err = err
		return err
	}
	bw.prev = c.Slot
	return nil
}

// Flush drains the buffer to the underlying writer and reports the first
// error of the stream.
func (bw *BinaryWriter) Flush() error {
	if bw.err != nil {
		return bw.err
	}
	return bw.w.Flush()
}

// WriteBinaryTrace renders commands in the dtb binary format. The output
// round-trips through NewBinaryScanner, and converting a text trace
// produces the identical Command stream (pinned by the round-trip
// property test and FuzzBinaryScanner).
func WriteBinaryTrace(w io.Writer, cmds []Command) error {
	bw := NewBinaryWriter(w)
	for i := range cmds {
		if err := bw.WriteCommand(cmds[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Source is a stream of commands: the common face of the text Scanner and
// the BinaryScanner, and what the replay pipeline consumes. Scan advances
// (false at end of input or on error), Command returns the last command,
// Err reports the first error (nil after a clean end).
type Source interface {
	Scan() bool
	Command() Command
	Err() error
}

// batchSource is the optional bulk-decode fast path a Source may offer;
// the replay pipeline uses it to decode whole rounds with one call.
type batchSource interface {
	ScanBatch(dst []Command) int
}

// ScanBatch decodes up to len(dst) commands into dst, the text scanner's
// counterpart of BinaryScanner.ScanBatch (a short count means end of
// input or error, never "try again").
func (sc *Scanner) ScanBatch(dst []Command) int {
	n := 0
	for n < len(dst) && sc.Scan() {
		dst[n] = sc.cmd
		n++
	}
	return n
}

// NewSource returns a Source for either trace encoding, sniffing the
// format from the first byte: 0xD7 (the dtb magic's guard byte, which
// cannot start a well-formed text line) selects the binary scanner,
// anything else the text one. An empty input yields an empty text trace.
func NewSource(r io.Reader) Source {
	var first [1]byte
	n, err := io.ReadFull(r, first[:])
	if n == 0 {
		if err == io.EOF {
			return NewScanner(io.MultiReader()) // empty input: empty text trace
		}
		return NewScanner(&errReader{err: err})
	}
	rest := io.MultiReader(&oneByteReader{b: first[0]}, r)
	if first[0] == dtbMagic[0] {
		return NewBinaryScanner(rest)
	}
	return NewScanner(rest)
}

// oneByteReader replays the sniffed byte ahead of the rest of the stream.
type oneByteReader struct {
	b    byte
	done bool
}

func (o *oneByteReader) Read(p []byte) (int, error) {
	if o.done || len(p) == 0 {
		return 0, io.EOF
	}
	o.done = true
	p[0] = o.b
	return 1, nil
}

// errReader surfaces a sniff-time read error through the scanner's
// error path.
type errReader struct{ err error }

func (e *errReader) Read([]byte) (int, error) { return 0, e.err }
