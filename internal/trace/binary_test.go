package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"drampower/internal/desc"
)

// binData renders commands into the dtb binary encoding for tests.
func binData(t *testing.T, cmds []Command) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinaryTrace(&buf, cmds); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// scanAll drains a source and returns its commands, failing on error.
func scanAll(t *testing.T, src Source) []Command {
	t.Helper()
	var cmds []Command
	for src.Scan() {
		cmds = append(cmds, src.Command())
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	return cmds
}

func TestBinaryRoundTrip(t *testing.T) {
	cases := map[string][]Command{
		"empty": nil,
		"basic": {
			{Slot: 0, Op: desc.OpActivate, Bank: 2, Row: 17},
			{Slot: 11, Op: desc.OpRead, Bank: 2, Row: 17},
			{Slot: 28, Op: desc.OpPrecharge, Bank: 2, Row: 17},
			{Slot: 100, Op: desc.OpRefresh},
		},
		"power-state": {
			{Slot: 0, Op: desc.OpRefresh},
			{Slot: 200, Op: OpPowerDownEnter},
			{Slot: 800, Op: OpPowerDownExit},
			{Slot: 900, Op: OpSelfRefreshEnter},
			{Slot: 12000, Op: OpSelfRefreshExit},
		},
		// The text parser accepts negative bank/row (rejected later, at
		// Issue) and non-monotone slots; the binary encoding must carry
		// them so the two scanners yield identical streams on any
		// parseable trace.
		"negative-fields":  {{Slot: 5, Op: desc.OpActivate, Bank: -3, Row: -9}},
		"decreasing-slots": {{Slot: 100, Op: desc.OpNop}, {Slot: 1, Op: desc.OpNop}, {Slot: 100, Op: desc.OpNop}},
		"extremes": {
			{Slot: 1<<63 - 1, Op: desc.OpWrite, Bank: 1<<31 - 1, Row: -1 << 31},
			{Slot: 0, Op: desc.OpNop},
		},
		"omitted-fields": {
			{Slot: 1, Op: desc.OpActivate},          // no bank, no row
			{Slot: 2, Op: desc.OpActivate, Row: 7},  // row without bank
			{Slot: 3, Op: desc.OpActivate, Bank: 7}, // bank without row
		},
	}
	for name, cmds := range cases {
		t.Run(name, func(t *testing.T) {
			got := scanAll(t, NewBinaryScanner(bytes.NewReader(binData(t, cmds))))
			if len(got) != len(cmds) {
				t.Fatalf("round-trip produced %d commands, want %d", len(got), len(cmds))
			}
			for i := range cmds {
				if got[i] != cmds[i] {
					t.Errorf("command %d: got %+v, want %+v", i, got[i], cmds[i])
				}
			}
		})
	}
}

// Satellite: both scanners yield identical Command streams — a text trace
// converted to binary decodes to exactly the commands the text scanner
// produces, including the power-state ops, and converting back to text is
// canonical-identical.
func TestBinaryTextEquivalence(t *testing.T) {
	m := model(t)
	cmds := append(WithPowerDown(m, RefreshOnly(m, 40), 1), RandomClosedPage(m, 400, 0.5, 7)...)
	hasPDE := false
	for _, c := range cmds {
		if c.Op == OpPowerDownEnter {
			hasPDE = true
		}
	}
	if !hasPDE {
		t.Fatal("workload has no power-down commands; equivalence test lost its point")
	}

	text := traceText(t, cmds)
	fromText := scanAll(t, NewScanner(bytes.NewReader(text)))
	fromBin := scanAll(t, NewBinaryScanner(bytes.NewReader(binData(t, fromText))))
	if len(fromBin) != len(fromText) {
		t.Fatalf("binary stream has %d commands, text %d", len(fromBin), len(fromText))
	}
	for i := range fromText {
		if fromBin[i] != fromText[i] {
			t.Fatalf("command %d: binary %+v, text %+v", i, fromBin[i], fromText[i])
		}
	}

	// text -> binary -> text is canonical-identical.
	var back bytes.Buffer
	if err := WriteTrace(&back, fromBin); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Bytes(), text) {
		t.Error("text -> binary -> text round-trip is not canonical-identical")
	}
}

// ScanBatch must produce exactly the Scan stream for both scanners, at
// any batch size, including batches that straddle the refill boundary
// (the workload encodes to several times the scanner's 32KB buffer).
func TestScanBatchMatchesScan(t *testing.T) {
	m := model(t)
	cmds := RandomClosedPage(m, 12000, 0.5, 3) // ~36k commands, >100KB encoded
	text := traceText(t, cmds)
	bin := binData(t, cmds)
	if len(bin) < 2*binBufSize {
		t.Fatalf("encoded trace is %d bytes; want > %d to cross refill boundaries", len(bin), 2*binBufSize)
	}
	want := scanAll(t, NewScanner(bytes.NewReader(text)))

	for _, batch := range []int{1, 3, 61, 4096} {
		sources := map[string]Source{
			"binary": NewBinaryScanner(bytes.NewReader(bin)),
			"text":   NewScanner(bytes.NewReader(text)),
		}
		for name, src := range sources {
			bs := src.(batchSource)
			dst := make([]Command, batch)
			var got []Command
			for {
				n := bs.ScanBatch(dst)
				got = append(got, dst[:n]...)
				if n < batch {
					break
				}
			}
			if err := src.Err(); err != nil {
				t.Fatalf("%s batch=%d: %v", name, batch, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s batch=%d: %d commands, want %d", name, batch, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s batch=%d: command %d = %+v, want %+v", name, batch, i, got[i], want[i])
				}
			}
		}
	}
}

func TestBinaryScannerErrors(t *testing.T) {
	header := string([]byte{0xD7, 'D', 'T', 'B', 1})
	cases := []struct {
		name string
		data string
		want string // substring of the error
	}{
		{"empty", "", "truncated dtb header"},
		{"short-header", header[:3], "truncated dtb header"},
		{"bad-magic", "0 act 0 1\n", "bad magic"},
		{"bad-version", string([]byte{0xD7, 'D', 'T', 'B', 9}), "unsupported dtb version"},
		{"reserved-flags", header + string([]byte{0xC1, 0x00}), "reserved flag"},
		{"bad-op", header + string([]byte{0x0F, 0x00}), "op 15 out of range"},
		{"negative-slot", header + string([]byte{0x00, 0x01}), "negative slot"}, // delta -1 from 0
		{"truncated-delta", header + string([]byte{0x00}), "truncated or overlong slot delta"},
		{"truncated-bank", header + string([]byte{0x10, 0x00}), "truncated or overlong bank"},
		{"overlong-varint", header + string([]byte{0x00, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x00}), "slot delta"},
		{"overflow-varint", header + string([]byte{0x00, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}), "slot delta"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := NewBinaryScanner(strings.NewReader(tc.data))
			for sc.Scan() {
			}
			err := sc.Err()
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error is %T (%v), want *ParseError", err, err)
			}
			if pe.Line < 1 {
				t.Errorf("error ordinal %d, want >= 1", pe.Line)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// The error ordinal counts commands, so a decode failure deep into a
// stream points at the offending command, not just "somewhere".
func TestBinaryScannerErrorOrdinal(t *testing.T) {
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	for i := 0; i < 3; i++ {
		if err := bw.WriteCommand(Command{Slot: int64(10 * i), Op: desc.OpNop}); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	buf.Write([]byte{0xC1}) // 4th command: reserved flag bits
	sc := NewBinaryScanner(&buf)
	n := 0
	for sc.Scan() {
		n++
	}
	var pe *ParseError
	if !errors.As(sc.Err(), &pe) {
		t.Fatalf("error is %T (%v), want *ParseError", sc.Err(), sc.Err())
	}
	if n != 3 || pe.Line != 4 {
		t.Errorf("scanned %d commands with error at ordinal %d, want 3 and 4", n, pe.Line)
	}
}

func TestBinaryWriterRejects(t *testing.T) {
	if err := WriteBinaryTrace(io.Discard, []Command{{Slot: -1, Op: desc.OpNop}}); err == nil {
		t.Error("negative slot encoded without error")
	}
	if err := WriteBinaryTrace(io.Discard, []Command{{Slot: 0, Op: desc.Op(numTraceOps)}}); err == nil {
		t.Error("out-of-range op encoded without error")
	}
}

func TestNewSourceSniffs(t *testing.T) {
	cmds := []Command{
		{Slot: 0, Op: desc.OpActivate, Bank: 1, Row: 2},
		{Slot: 9, Op: OpPowerDownEnter},
	}
	text := traceText(t, cmds)
	bin := binData(t, cmds)

	if _, ok := NewSource(bytes.NewReader(bin)).(*BinaryScanner); !ok {
		t.Error("binary input did not select the BinaryScanner")
	}
	if _, ok := NewSource(bytes.NewReader(text)).(*Scanner); !ok {
		t.Error("text input did not select the text Scanner")
	}
	for name, data := range map[string][]byte{"text": text, "binary": bin} {
		got := scanAll(t, NewSource(bytes.NewReader(data)))
		if len(got) != len(cmds) {
			t.Fatalf("%s: sniffed source produced %d commands, want %d", name, len(got), len(cmds))
		}
		for i := range cmds {
			if got[i] != cmds[i] {
				t.Errorf("%s: command %d = %+v, want %+v", name, i, got[i], cmds[i])
			}
		}
	}
	if got := scanAll(t, NewSource(strings.NewReader(""))); len(got) != 0 {
		t.Errorf("empty input produced %d commands", len(got))
	}
}

// An empty binary trace (header only) is valid and distinct from empty
// text input.
func TestBinaryEmptyTrace(t *testing.T) {
	data := binData(t, nil)
	if len(data) != binHeaderLen {
		t.Fatalf("empty trace is %d bytes, want %d (header only)", len(data), binHeaderLen)
	}
	if got := scanAll(t, NewBinaryScanner(bytes.NewReader(data))); len(got) != 0 {
		t.Errorf("empty trace produced %d commands", len(got))
	}
}

// Replay must sniff binary input and enforce the same channel-range
// semantics as text replay.
func TestReplayBinaryBankOutOfRange(t *testing.T) {
	m := model(t)
	banks := m.D.Spec.Banks()
	data := binData(t, []Command{{Slot: 0, Op: desc.OpActivate, Bank: 2 * banks, Row: 1}})
	_, err := Replay(m, bytes.NewReader(data), ReplayOptions{Channels: 2})
	var te *TimingError
	if !errors.As(err, &te) {
		t.Fatalf("error is %T (%v), want *TimingError", err, err)
	}
	if !strings.Contains(err.Error(), "2-channel") {
		t.Errorf("error %q does not mention the channel system", err)
	}
}

// A truncated binary body surfaces as a positioned *ParseError through
// Replay, like bad trace text does.
func TestReplayBinaryTruncated(t *testing.T) {
	m := model(t)
	data := binData(t, []Command{{Slot: 0, Op: desc.OpActivate, Bank: 0, Row: 1}})
	_, err := Replay(m, bytes.NewReader(data[:len(data)-1]), ReplayOptions{})
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T (%v), want *ParseError", err, err)
	}
}

// The binary encoding is substantially denser than text — the reason to
// convert. Pin "at least 3x" so the claim in README stays honest.
func TestBinaryDensity(t *testing.T) {
	m := model(t)
	cmds := RandomClosedPage(m, 2000, 0.5, 11)
	text := len(traceText(t, cmds))
	bin := len(binData(t, cmds))
	if bin*3 > text {
		t.Errorf("binary trace %d bytes vs text %d: less than 3x denser", bin, text)
	}
}

func TestInterleaveChunked(t *testing.T) {
	// Regression guard for the sniffing reader composition: a reader
	// delivering one byte at a time must still decode correctly through
	// NewSource (exercises oneByteReader + refill logic).
	cmds := []Command{{Slot: 3, Op: desc.OpActivate, Bank: 1, Row: 2}, {Slot: 8, Op: desc.OpRead, Bank: 1, Row: 2}}
	for name, data := range map[string][]byte{"binary": binData(t, cmds), "text": traceText(t, cmds)} {
		got := scanAll(t, NewSource(iotest_oneByte{bytes.NewReader(data)}))
		if len(got) != len(cmds) {
			t.Fatalf("%s: %d commands, want %d", name, len(got), len(cmds))
		}
		for i := range cmds {
			if got[i] != cmds[i] {
				t.Errorf("%s: command %d = %+v, want %+v", name, i, got[i], cmds[i])
			}
		}
	}
}

// iotest_oneByte delivers one byte per Read, the worst-case streaming
// reader (iotest.OneByteReader without the import).
type iotest_oneByte struct{ r io.Reader }

func (o iotest_oneByte) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	return o.r.Read(p[:1])
}
