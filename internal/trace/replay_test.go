package trace

import (
	"bytes"
	"errors"
	"strconv"
	"strings"
	"testing"

	"drampower/internal/desc"
)

// traceText renders commands into trace text for replay tests.
func traceText(t *testing.T, cmds []Command) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, cmds); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReplaySingleChannelMatchesRun(t *testing.T) {
	m := model(t)
	cmds := RandomClosedPage(m, 500, 0.5, 21)
	want, err := Evaluate(m, cmds)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Replay(m, bytes.NewReader(traceText(t, cmds)), ReplayOptions{Channels: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Bit-identical, not approximately equal: same simulator, same order,
	// same float accumulation.
	if got.CommandEnergy != want.CommandEnergy || got.Background != want.Background ||
		got.Total != want.Total || got.Bits != want.Bits || got.Slots != want.Slots ||
		got.BusUtilization != want.BusUtilization {
		t.Errorf("replay differs from in-memory run:\n run:    %+v\n replay: %+v", want, got)
	}
	for _, op := range desc.AllOps {
		if got.Counts[op] != want.Counts[op] {
			t.Errorf("count %v: got %d, want %d", op, got.Counts[op], want.Counts[op])
		}
	}
}

func TestReplayMultiChannelDeterministic(t *testing.T) {
	m := model(t)
	banks := m.D.Spec.Banks()
	const channels = 4
	per := make([][]Command, channels)
	for ch := range per {
		per[ch] = RandomClosedPage(m, 120, 0.5, int64(ch+1))
	}
	data := traceText(t, Interleave(per, banks))

	var results []Result
	for _, workers := range []int{1, 2, channels, 2 * channels} {
		res, err := Replay(m, bytes.NewReader(data), ReplayOptions{Channels: channels, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		results = append(results, res)
	}
	for i, r := range results[1:] {
		if r.CommandEnergy != results[0].CommandEnergy || r.Total != results[0].Total ||
			r.Bits != results[0].Bits || r.Slots != results[0].Slots {
			t.Errorf("result with workers variant %d differs from serial:\n serial: %+v\n got:    %+v",
				i+1, results[0], r)
		}
	}
}

func TestReplayMergesChannels(t *testing.T) {
	m := model(t)
	banks := m.D.Spec.Banks()
	c0 := RandomClosedPage(m, 100, 0.7, 5)
	c1 := Streaming(m, 300, 0.3, 6)
	data := traceText(t, Interleave([][]Command{c0, c1}, banks))

	got, err := Replay(m, bytes.NewReader(data), ReplayOptions{Channels: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Reference: run each channel on its own simulator and merge by hand
	// at the common end slot.
	s0, s1 := New(m), New(m)
	if err := s0.Run(c0); err != nil {
		t.Fatal(err)
	}
	if err := s1.Run(c1); err != nil {
		t.Fatal(err)
	}
	end := s0.Now()
	if s1.Now() > end {
		end = s1.Now()
	}
	end += int64(m.BurstSlots())
	r0, r1 := s0.Result(end), s1.Result(end)

	if got.Slots != end {
		t.Errorf("slots: got %d, want %d", got.Slots, end)
	}
	if got.CommandEnergy != r0.CommandEnergy+r1.CommandEnergy {
		t.Errorf("command energy: got %v, want %v", got.CommandEnergy, r0.CommandEnergy+r1.CommandEnergy)
	}
	if got.Background != r0.Background+r1.Background {
		t.Errorf("background: got %v, want %v", got.Background, r0.Background+r1.Background)
	}
	if got.Bits != r0.Bits+r1.Bits {
		t.Errorf("bits: got %d, want %d", got.Bits, r0.Bits+r1.Bits)
	}
	for _, op := range desc.AllOps {
		if got.Counts[op] != r0.Counts[op]+r1.Counts[op] {
			t.Errorf("count %v: got %d, want %d", op, got.Counts[op], r0.Counts[op]+r1.Counts[op])
		}
	}
	wantUtil := (r0.BusUtilization + r1.BusUtilization) / 2
	if got.BusUtilization != wantUtil {
		t.Errorf("bus utilization: got %v, want %v", got.BusUtilization, wantUtil)
	}
}

func TestReplayBankOutOfRange(t *testing.T) {
	m := model(t)
	banks := m.D.Spec.Banks()
	// Global bank just past the 2-channel system.
	src := "0 act " + strconv.Itoa(2*banks) + " 1\n"
	_, err := Replay(m, strings.NewReader(src), ReplayOptions{Channels: 2})
	var te *TimingError
	if !errors.As(err, &te) {
		t.Fatalf("error is %T (%v), want *TimingError", err, err)
	}
	if !strings.Contains(err.Error(), "2-channel") {
		t.Errorf("error %q does not mention the channel system", err)
	}
}

func TestReplayParseErrorPropagates(t *testing.T) {
	m := model(t)
	_, err := Replay(m, strings.NewReader("0 act 0 1\nbogus line\n"), ReplayOptions{})
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T (%v), want *ParseError", err, err)
	}
	if pe.Line != 2 {
		t.Errorf("error line: got %d, want 2", pe.Line)
	}
}

// Acceptance: a 1M+ command trace streams through the replayer in bounded
// rounds (never materialized as one slice) with energy totals bit-identical
// to the in-memory Run path — from both the text and the dtb binary
// encoding, through the pipelined decoder.
func TestMillionCommandStreamMatchesRun(t *testing.T) {
	m := model(t)
	cmds := RandomClosedPage(m, 333334, 0.5, 42) // 1,000,002 commands
	if len(cmds) <= 1_000_000 {
		t.Fatalf("generated only %d commands, want > 1M", len(cmds))
	}
	want, err := Evaluate(m, cmds)
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if err := WriteBinaryTrace(&bin, cmds); err != nil {
		t.Fatal(err)
	}
	encodings := map[string][]byte{"text": traceText(t, cmds), "binary": bin.Bytes()}
	for name, data := range encodings {
		got, err := Replay(m, bytes.NewReader(data), ReplayOptions{Channels: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.CommandEnergy != want.CommandEnergy || got.Background != want.Background ||
			got.Total != want.Total || got.Bits != want.Bits || got.Slots != want.Slots {
			t.Errorf("%s 1M-command stream differs from in-memory run:\n run:    %+v\n stream: %+v", name, want, got)
		}
	}
}

// A timing violation in the final, parse-error-truncated round outranks
// the parse error: the violation happened at a slot the stream actually
// reached, while the parse error merely ended it.
func TestReplayViolationBeatsParseError(t *testing.T) {
	m := model(t)
	src := "10 rd 0 1\nbogus line\n" // rd on a bank that was never activated
	_, err := Replay(m, strings.NewReader(src), ReplayOptions{})
	var te *TimingError
	if !errors.As(err, &te) {
		t.Fatalf("error is %T (%v), want *TimingError (the violation, not the parse error)", err, err)
	}
	if te.Cmd.Slot != 10 {
		t.Errorf("violation at slot %d, want 10", te.Cmd.Slot)
	}
}

// Satellite bugfix: when several channels violate in the same round, the
// replayer must report the violation at the smallest slot, not the one on
// the lowest channel. Here channel 0 violates at slot 900 and channel 1 at
// slot 10; the old channel-order selection reported slot 900.
func TestReplayReportsEarliestViolation(t *testing.T) {
	m := model(t)
	banks := m.D.Spec.Banks()
	src := strings.Join([]string{
		"0 act 0 1",
		"10 rd " + strconv.Itoa(banks) + " 1", // channel 1: bank not active
		"900 act 0 2",                         // channel 0: bank already active
	}, "\n")
	_, err := Replay(m, strings.NewReader(src), ReplayOptions{Channels: 2, Workers: 2})
	var te *TimingError
	if !errors.As(err, &te) {
		t.Fatalf("error is %T (%v), want *TimingError", err, err)
	}
	if te.Cmd.Slot != 10 {
		t.Errorf("reported violation at slot %d, want the earliest (10): %v", te.Cmd.Slot, te)
	}
	if !strings.Contains(te.Error(), "not active") {
		t.Errorf("violation %q should be channel 1's bank-not-active", te)
	}
}

// Same-slot violations on two channels resolve to the lowest channel.
func TestReplayViolationTieResolvesToLowestChannel(t *testing.T) {
	m := model(t)
	banks := m.D.Spec.Banks()
	src := strings.Join([]string{
		"10 rd 0 1",                          // channel 0: bank not active
		"10 pdx " + strconv.Itoa(banks) + "", // channel 1: not in power-down
	}, "\n")
	_, err := Replay(m, strings.NewReader(src), ReplayOptions{Channels: 2, Workers: 2})
	var te *TimingError
	if !errors.As(err, &te) {
		t.Fatalf("error is %T (%v), want *TimingError", err, err)
	}
	if te.Cmd.Slot != 10 || !strings.Contains(te.Error(), "not active") {
		t.Errorf("tie at slot 10 should report channel 0's violation, got %v", te)
	}
}

// Satellite: merging when channel 0 issued zero commands — its Result has
// a nil Counts map, and the merge must still seed the map from the later
// channels and keep the residency/background sums intact.
func TestReplayMergeEmptyFirstChannel(t *testing.T) {
	m := model(t)
	banks := m.D.Spec.Banks()
	c1 := RandomClosedPage(m, 80, 0.5, 13)
	data := traceText(t, Interleave([][]Command{nil, c1}, banks))
	got, err := Replay(m, bytes.NewReader(data), ReplayOptions{Channels: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Evaluate(m, c1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counts == nil {
		t.Fatal("merged Counts map is nil despite channel 1 activity")
	}
	for _, op := range desc.AllOps {
		if got.Counts[op] != want.Counts[op] {
			t.Errorf("count %v: got %d, want %d", op, got.Counts[op], want.Counts[op])
		}
	}
	if got.Bits != want.Bits {
		t.Errorf("bits: got %d, want %d", got.Bits, want.Bits)
	}
	// Channel 0 idles in precharged standby for the whole duration, so the
	// merged background is channel 1's plus one full standby integral, and
	// the residency counters cover both channels.
	idle := New(m).Result(got.Slots)
	if got.Background != want.Background+idle.Background {
		t.Errorf("background: got %v, want %v + idle %v", got.Background, want.Background, idle.Background)
	}
	if sum := got.ActiveSlots + got.PrechargedSlots + got.PowerDownSlots + got.SelfRefreshSlots; sum != 2*got.Slots {
		t.Errorf("residency sum %d, want 2 x %d", sum, got.Slots)
	}
}

func TestInterleave(t *testing.T) {
	c0 := []Command{{Slot: 0, Op: desc.OpActivate, Bank: 1}, {Slot: 10, Op: desc.OpRead, Bank: 1}}
	c1 := []Command{{Slot: 5, Op: desc.OpActivate, Bank: 0}, {Slot: 10, Op: desc.OpRead, Bank: 0}}
	got := Interleave([][]Command{c0, c1}, 8)
	want := []Command{
		{Slot: 0, Op: desc.OpActivate, Bank: 1},
		{Slot: 5, Op: desc.OpActivate, Bank: 8},
		{Slot: 10, Op: desc.OpRead, Bank: 1}, // tie resolves in channel order
		{Slot: 10, Op: desc.OpRead, Bank: 8},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d commands, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("command %d: got %v, want %v", i, got[i], want[i])
		}
	}
}
