package trace

import (
	"math/rand"

	"drampower/internal/core"
	"drampower/internal/desc"
)

// Workload generators: each produces a timing-legal command trace for the
// given model. They correspond to the traffic classes the paper's patterns
// abstract — streaming row hits (IDD4-like), random closed-page access
// (IDD7-like) and refresh-only standby.

// Streaming generates an open-page streaming workload: one activate per
// bank, then gapless bursts cycling through the open rows, with the given
// read share. It produces roughly `bursts` column commands.
func Streaming(m *core.Model, bursts int, readShare float64, seed int64) []Command {
	rng := rand.New(rand.NewSource(seed))
	s := New(m)
	banks := m.D.Spec.Banks()
	_, tRCD, _, _, tRRD, tFAW, burst := s.TimingSlots()
	var cmds []Command

	// Open one row in every bank, spaced by the stricter of tRRD and
	// tFAW/4.
	gap := tRRD
	if tFAW > 0 && (tFAW+3)/4 > gap {
		gap = (tFAW + 3) / 4
	}
	slot := int64(0)
	for b := 0; b < banks; b++ {
		cmds = append(cmds, Command{Slot: slot, Op: desc.OpActivate, Bank: b, Row: 1})
		slot += gap
	}
	// Gapless bursts once the first rows are open.
	slot += tRCD
	for i := 0; i < bursts; i++ {
		op := desc.OpRead
		if rng.Float64() >= readShare {
			op = desc.OpWrite
		}
		cmds = append(cmds, Command{Slot: slot, Op: op, Bank: i % banks, Row: 1})
		slot += burst
	}
	return cmds
}

// RandomClosedPage generates a closed-page random-access workload: each
// access activates a random row in the next bank, bursts once and
// precharges — the traffic the IDD7 pattern idealizes. It produces
// `accesses` activate/burst/precharge triples.
func RandomClosedPage(m *core.Model, accesses int, readShare float64, seed int64) []Command {
	rng := rand.New(rand.NewSource(seed))
	s := New(m)
	banks := m.D.Spec.Banks()
	tRC, tRCD, tRP, tRAS, tRRD, tFAW, burst := s.TimingSlots()

	// Activate spacing honoring tRRD, tFAW/4 and same-bank tRC over the
	// bank rotation. The tFAW term rounds up like Streaming's: floor would
	// squeeze four activates into less than the window whenever tFAW is
	// not a multiple of 4.
	group := tRRD
	if tFAW > 0 && (tFAW+3)/4 > group {
		group = (tFAW + 3) / 4
	}
	if banks > 0 {
		// Same-bank turnaround over the rotation: the next activate on a
		// bank must clear tRC and — when the burst drains past tRAS — the
		// delayed precharge plus tRP.
		cycle := maxI64(tRC, tRCD+burst+tRP)
		if per := (cycle + int64(banks) - 1) / int64(banks); per > group {
			group = per
		}
	}
	if burst > group {
		group = burst
	}

	rows := 1 << uint(m.D.Spec.RowAddrBits)
	var cmds []Command
	for i := 0; i < accesses; i++ {
		base := int64(i) * group
		bank := i % banks
		row := rng.Intn(rows)
		op := desc.OpRead
		if rng.Float64() >= readShare {
			op = desc.OpWrite
		}
		colSlot := base + tRCD
		preSlot := base + tRAS
		// The precharge must wait for both tRAS and the burst to drain
		// (the simulator rejects a precharge that cuts off its own bank's
		// burst).
		if preSlot < colSlot+burst {
			preSlot = colSlot + burst
		}
		cmds = append(cmds, Command{Slot: base, Op: desc.OpActivate, Bank: bank, Row: row})
		cmds = append(cmds, Command{Slot: colSlot, Op: op, Bank: bank, Row: row})
		cmds = append(cmds, Command{Slot: preSlot, Op: desc.OpPrecharge, Bank: bank, Row: row})
	}
	return sortCommands(cmds)
}

// RefreshOnly generates the standby-with-refresh trace over the given
// number of refresh intervals. The spacing is the spec's tREFI, floored
// at tRFC: a spec whose refresh cycle is as long as (or longer than) its
// refresh interval would otherwise emit the next ref while the previous
// one is still in progress, which the simulator rejects.
func RefreshOnly(m *core.Model, intervals int) []Command {
	spec := m.D.Spec
	perInterval := int64(float64(spec.RefreshInterval) * float64(spec.ControlClock))
	if perInterval < 1 {
		perInterval = 1
	}
	if tRFC := New(m).RefreshCycleSlots(); perInterval < tRFC {
		perInterval = tRFC
	}
	var cmds []Command
	for i := 0; i < intervals; i++ {
		cmds = append(cmds, Command{Slot: int64(i) * perInterval, Op: desc.OpRefresh})
	}
	return cmds
}

// WithPowerDown inserts power-down entry/exit pairs into the idle gaps of
// a sorted single-channel trace: whenever the gap before the next command
// is at least minIdle slots and leaves room for a legal pde ... pdx window
// (tCKEmin residency plus the tXP exit-to-valid delay before the next
// command), the device is put into precharge power-down for the gap. A
// candidate entry that is illegal at that slot (bank open, refresh or
// burst still in flight) is skipped, so the returned trace is always
// timing-legal; legality is enforced by actually issuing every command —
// original and inserted — on a scratch simulator. minIdle < 1 defaults to
// the smallest insertable window.
func WithPowerDown(m *core.Model, cmds []Command, minIdle int64) []Command {
	s := New(m)
	tCKE, tXP, _ := s.PowerStateSlots()
	tRFC := s.RefreshCycleSlots()
	_, _, _, _, _, _, burst := s.TimingSlots()
	if minIdle < 1 {
		minIdle = tCKE + tXP + 1
	}
	out := make([]Command, 0, len(cmds)+len(cmds)/2)
	emit := func(c Command) bool {
		if err := s.Issue(c); err != nil {
			return false
		}
		out = append(out, c)
		return true
	}
	for i, c := range cmds {
		if i > 0 {
			prev := cmds[i-1]
			// Earliest slot the device is quiet after the previous
			// command: past its refresh cycle or data burst, if any.
			enter := prev.Slot + 1
			switch prev.Op {
			case desc.OpRefresh:
				enter = prev.Slot + tRFC
			case desc.OpRead, desc.OpWrite:
				enter = prev.Slot + burst
			}
			exit := c.Slot - tXP // pdx here makes c legal again
			if c.Slot-prev.Slot >= minIdle && exit-enter >= tCKE {
				if emit(Command{Slot: enter, Op: OpPowerDownEnter}) {
					emit(Command{Slot: exit, Op: OpPowerDownExit})
				}
			}
		}
		if err := s.Issue(c); err != nil {
			// The input trace itself is illegal here; return what was
			// legal so far plus the remainder untouched (the caller's
			// replay will surface the violation exactly as without
			// insertion).
			return append(out, cmds[i:]...)
		}
		out = append(out, c)
	}
	return out
}

// sortCommands orders a trace by slot (stable for equal slots).
func sortCommands(cmds []Command) []Command {
	// Insertion sort: traces are generated nearly sorted.
	for i := 1; i < len(cmds); i++ {
		for j := i; j > 0 && cmds[j].Slot < cmds[j-1].Slot; j-- {
			cmds[j], cmds[j-1] = cmds[j-1], cmds[j]
		}
	}
	return cmds
}

// Evaluate runs a generated trace and returns its result, ending the
// accounting one group after the last command.
func Evaluate(m *core.Model, cmds []Command) (Result, error) {
	s := New(m)
	if err := s.Run(cmds); err != nil {
		return Result{}, err
	}
	end := s.Now() + int64(m.BurstSlots())
	return s.Result(end), nil
}
