package trace

// Power-state commands and background states: the trace-level extension
// of the command set that makes low-power residency (Section V's
// controller-side power management; IDD2P / IDD6 in the datasheet
// verification of Section IV.A) expressible in a trace. The four ops are
// deliberately defined here, not in desc: patterns (the paper's canned
// IDD loops) never contain them, only traces do, so the pattern language
// and its per-op charge ledgers stay untouched.

import "drampower/internal/desc"

// Trace-level operations, contiguous after desc's pattern ops so the
// simulator's fixed per-op arrays extend without a second index space.
const (
	// OpPowerDownEnter ("pde") enters precharge power-down: CKE low with
	// all banks closed. Background drops to PowerDownPower (IDD2P).
	OpPowerDownEnter = desc.Op(desc.NumOps) + iota
	// OpPowerDownExit ("pdx") raises CKE again; row/column/refresh
	// commands become legal tXP slots later.
	OpPowerDownExit
	// OpSelfRefreshEnter ("sre") enters self-refresh: the device refreshes
	// itself and background drops to SelfRefreshPower (IDD6). Controller
	// refresh commands are neither needed nor legal until exit.
	OpSelfRefreshEnter
	// OpSelfRefreshExit ("srx") leaves self-refresh; row/column/refresh
	// commands become legal tXS slots later.
	OpSelfRefreshExit
)

// numTraceOps is the size of per-op ledgers covering pattern ops plus the
// power-state commands. Every op a Scanner produces is in [0, numTraceOps).
const numTraceOps = desc.NumOps + 4

// OpName renders any trace op, including the power-state commands that
// desc.Op.String does not know. It is the single naming path for
// Command.String, AppendCommand and the Counts maps surfaced by the CLI
// and the server.
func OpName(op desc.Op) string {
	switch op {
	case OpPowerDownEnter:
		return "pde"
	case OpPowerDownExit:
		return "pdx"
	case OpSelfRefreshEnter:
		return "sre"
	case OpSelfRefreshExit:
		return "srx"
	}
	return op.String()
}

// State is a background power state of the simulated device. At any slot
// the device is in exactly one state; the simulator accounts residency
// per state and integrates each state's power over its slots.
type State int

const (
	// StateActive: at least one bank holds an open row (active standby,
	// IDD3N). The model does not distinguish active from precharged
	// standby leakage (IDD3N == IDD2N, see core.IDD), but the residency
	// split is still reported so the accounting stays honest when it does.
	StateActive State = iota
	// StatePrecharged: all banks closed, clock running (precharge
	// standby, IDD2N).
	StatePrecharged
	// StatePowerDown: precharge power-down, CKE low (IDD2P).
	StatePowerDown
	// StateSelfRefresh: self-refresh (IDD6).
	StateSelfRefresh
	// NumStates sizes per-state residency arrays.
	NumStates
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateActive:
		return "active"
	case StatePrecharged:
		return "precharged"
	case StatePowerDown:
		return "power_down"
	case StateSelfRefresh:
		return "self_refresh"
	}
	return "unknown"
}

// lowPower reports whether the state is a CKE-low state in which
// row/column/refresh commands are illegal.
func (s State) lowPower() bool { return s == StatePowerDown || s == StateSelfRefresh }
