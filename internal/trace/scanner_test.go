package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"drampower/internal/desc"
)

func TestScannerRoundTrip(t *testing.T) {
	m := model(t)
	cmds := RandomClosedPage(m, 50, 0.5, 3)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, cmds); err != nil {
		t.Fatal(err)
	}
	sc := NewScanner(&buf)
	var got []Command
	for sc.Scan() {
		got = append(got, sc.Command())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cmds) {
		t.Fatalf("round trip: got %d commands, want %d", len(got), len(cmds))
	}
	for i := range cmds {
		if got[i] != cmds[i] {
			t.Fatalf("command %d: got %v, want %v", i, got[i], cmds[i])
		}
	}
}

func TestScannerFormat(t *testing.T) {
	src := strings.Join([]string{
		"# header comment",
		"",
		"   ",
		"0 act 2 17",
		"\t11\trd\t2\t17   # inline comment",
		"28 PRE 2", // row omitted, case-insensitive op
		"100 ref",  // bank and row omitted
		"110 write 1 5",
		"120 nop # alias-free",
	}, "\n")
	want := []Command{
		{Slot: 0, Op: desc.OpActivate, Bank: 2, Row: 17},
		{Slot: 11, Op: desc.OpRead, Bank: 2, Row: 17},
		{Slot: 28, Op: desc.OpPrecharge, Bank: 2},
		{Slot: 100, Op: desc.OpRefresh},
		{Slot: 110, Op: desc.OpWrite, Bank: 1, Row: 5},
		{Slot: 120, Op: desc.OpNop},
	}
	sc := NewScanner(strings.NewReader(src))
	for i, w := range want {
		if !sc.Scan() {
			t.Fatalf("Scan stopped at command %d: %v", i, sc.Err())
		}
		if sc.Command() != w {
			t.Errorf("command %d: got %v, want %v", i, sc.Command(), w)
		}
	}
	if sc.Scan() {
		t.Errorf("extra command %v", sc.Command())
	}
	if err := sc.Err(); err != nil {
		t.Errorf("clean input reported error: %v", err)
	}
}

func TestScannerErrors(t *testing.T) {
	cases := []struct {
		name, src         string
		wantLine, wantCol int
		wantSub           string
	}{
		{"bad slot", "x act 0 0\n", 1, 1, "bad slot"},
		{"negative slot", "-3 act 0 0\n", 1, 1, "negative slot"},
		{"missing op", "# c\n42\n", 2, 0, "missing operation"},
		{"unknown op", "0 jump 0 0\n", 1, 3, "unknown operation"},
		{"bad bank", "0 act banana\n", 1, 7, "bad bank"},
		{"bad row", "0 act 0 1.5\n", 1, 9, "bad row"},
		{"trailing field", "0 act 0 0 extra\n", 1, 11, "trailing field"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sc := NewScanner(strings.NewReader(c.src))
			for sc.Scan() {
			}
			err := sc.Err()
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", c.wantSub)
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error is %T, want *ParseError", err)
			}
			if pe.Line != c.wantLine || pe.Col != c.wantCol {
				t.Errorf("position: got line %d col %d, want line %d col %d (%v)",
					pe.Line, pe.Col, c.wantLine, c.wantCol, pe)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not contain %q", err, c.wantSub)
			}
			// The error is sticky: Scan keeps returning false.
			if sc.Scan() {
				t.Error("Scan returned true after an error")
			}
		})
	}
}

// failAfterReader yields its content, then fails with err.
type failAfterReader struct {
	content string
	err     error
	done    bool
}

func (r *failAfterReader) Read(p []byte) (int, error) {
	if !r.done {
		r.done = true
		return copy(p, r.content), nil
	}
	return 0, r.err
}

func TestScannerReaderErrorUnwraps(t *testing.T) {
	// A stream failure surfaces as a positioned ParseError that still
	// unwraps to the reader's own error, so callers can tell I/O outcomes
	// (cancelled context, body-size cap) apart from bad trace text.
	cause := errors.New("stream torn down")
	sc := NewScanner(&failAfterReader{content: "0 act 0 0\n", err: cause})
	n := 0
	for sc.Scan() {
		n++
	}
	if n != 1 {
		t.Fatalf("scanned %d commands before the failure, want 1", n)
	}
	err := sc.Err()
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T, want *ParseError", err)
	}
	if pe.Line != 2 {
		t.Errorf("failure position: line %d, want 2", pe.Line)
	}
	if !errors.Is(err, cause) {
		t.Errorf("error %v does not unwrap to the reader error", err)
	}
	// Ordinary syntax errors unwrap to nothing.
	sc = NewScanner(strings.NewReader("x act\n"))
	for sc.Scan() {
	}
	if !errors.As(sc.Err(), &pe) {
		t.Fatalf("syntax error is %T, want *ParseError", sc.Err())
	}
	if pe.Unwrap() != nil {
		t.Errorf("syntax error unwraps to %v, want nil", pe.Unwrap())
	}
}

// The scanner performs no per-line allocations: scanning thousands of
// lines costs only the fixed scanner setup.
func TestScannerAllocationFree(t *testing.T) {
	m := model(t)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, RandomClosedPage(m, 3000, 0.5, 5)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	lines := bytes.Count(data, []byte{'\n'})
	allocs := testing.AllocsPerRun(5, func() {
		sc := NewScanner(bytes.NewReader(data))
		n := 0
		for sc.Scan() {
			n++
		}
		if sc.Err() != nil || n != lines {
			panic("scan failed")
		}
	})
	if allocs > 8 {
		t.Errorf("scanning %d lines cost %.0f allocs, want <= 8 (setup only)", lines, allocs)
	}
}

func TestRunStreamMatchesRun(t *testing.T) {
	m := model(t)
	cmds := RandomClosedPage(m, 300, 0.5, 9)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, cmds); err != nil {
		t.Fatal(err)
	}

	ref := New(m)
	if err := ref.Run(cmds); err != nil {
		t.Fatal(err)
	}
	st := New(m)
	if err := st.RunStream(NewScanner(&buf)); err != nil {
		t.Fatal(err)
	}
	end := ref.Now() + int64(m.BurstSlots())
	a, b := ref.Result(end), st.Result(end)
	if a.CommandEnergy != b.CommandEnergy || a.Bits != b.Bits || a.Slots != b.Slots {
		t.Errorf("stream result differs from in-memory run:\n run:    %+v\n stream: %+v", a, b)
	}
}

func TestRunStreamSurfacesTimingError(t *testing.T) {
	m := model(t)
	s := New(m)
	err := s.RunStream(NewScanner(strings.NewReader("0 rd 0 1\n")))
	var te *TimingError
	if !errors.As(err, &te) {
		t.Fatalf("error is %T (%v), want *TimingError", err, err)
	}
}
