package trace

// Multi-channel parallel replay: a Replayer shards one global command
// stream across one Simulator per channel and drives the channels
// concurrently on the shared batch engine (package engine), in bounded
// rounds so memory stays O(batch) regardless of trace length.
//
// Channel addressing is by global bank index: in a C-channel system whose
// devices have B banks each, global bank g addresses channel g/B, local
// bank g%B. A single-channel replay therefore accepts exactly the bank
// numbering Simulator.Run does, and its energy totals are bit-identical
// to the in-memory Run path (same simulator, same issue order, same
// float accumulation).

import (
	"fmt"
	"io"
	"sync"

	"drampower/internal/core"
	"drampower/internal/desc"
	"drampower/internal/engine"
	"drampower/internal/units"
)

// ReplayOptions configures a multi-channel replay.
type ReplayOptions struct {
	// Channels is the number of independent channels (devices) the trace
	// addresses; <= 0 means 1.
	Channels int
	// Workers bounds the worker pool driving the channels (engine
	// semantics: <= 0 selects one worker per CPU, 1 replays serially).
	Workers int
	// Pool, when set, drives the channels on a shared long-lived engine
	// pool instead of per-round goroutines (see engine.Options.Pool);
	// long-running servers use this so concurrent replays share one
	// bounded worker set.
	Pool *engine.Pool
}

// replayBatch is the number of commands buffered per scheduling round.
// Each round shards up to this many commands to the channels and issues
// the per-channel batches concurrently; the shard buffers are reused, so
// replay memory is bounded by the round size, not the trace length.
const replayBatch = 1 << 15

// Replayer shards a multi-channel command trace across one Simulator per
// channel. The per-channel results merge deterministically (in channel
// order), so the merged Result is independent of the worker count.
type Replayer struct {
	m     *core.Model
	sims  []*Simulator
	banks int // banks per channel
	opts  engine.Options
}

// NewReplayer creates a replayer with one simulator per channel, all
// against the same (immutable, concurrently readable) model.
func NewReplayer(m *core.Model, opts ReplayOptions) *Replayer {
	ch := opts.Channels
	if ch < 1 {
		ch = 1
	}
	r := &Replayer{
		m:     m,
		sims:  make([]*Simulator, ch),
		banks: m.D.Spec.Banks(),
		opts:  engine.Options{Workers: opts.Workers, Pool: opts.Pool},
	}
	for i := range r.sims {
		r.sims[i] = New(m)
	}
	return r
}

// Channels returns the channel count.
func (r *Replayer) Channels() int { return len(r.sims) }

// roundBuf is one double-buffered replay round: a decode slab the source
// fills in bulk plus the per-channel shard slices the engine issues. Round
// buffers are pooled across Replay* calls (roundPool), so steady-state
// replay performs no per-call slab or shard allocations — the dominant
// term of the old 4.9MB/op on BenchmarkTraceReplay1Ch.
type roundBuf struct {
	slab   []Command   // decoded commands, in stream order
	shards [][]Command // per-channel commands, bank rebased to the channel
	n      int         // commands decoded into this round
	err    error       // parse error (issue the round first) or shard error
	abort  bool        // err is a shard-range error: do NOT issue the round
}

// roundPool recycles round buffers across replays. The slabs are ~1MB
// each (replayBatch commands), so reuse — not per-call make — is what
// keeps the replay path's allocation profile flat.
var roundPool = sync.Pool{New: func() any { return new(roundBuf) }}

// getRound takes a pooled round buffer and sizes it for one replay round
// over the given channel count, retaining previously grown capacities.
func getRound(channels int) *roundBuf {
	b := roundPool.Get().(*roundBuf)
	if cap(b.slab) < replayBatch {
		b.slab = make([]Command, replayBatch)
	}
	b.slab = b.slab[:replayBatch]
	for len(b.shards) < channels {
		b.shards = append(b.shards, nil)
	}
	b.shards = b.shards[:channels]
	b.reset()
	return b
}

// reset clears a round for refilling, keeping the allocated capacity.
func (b *roundBuf) reset() {
	for i := range b.shards {
		b.shards[i] = b.shards[i][:0]
	}
	b.n, b.err, b.abort = 0, nil, false
}

// fillRound decodes the next round from src into buf and shards it by
// global bank index. It reports whether the stream is exhausted (end of
// input, parse error, or shard-range error) — the caller stops asking for
// rounds once true.
func (r *Replayer) fillRound(src Source, buf *roundBuf) (terminal bool) {
	n := 0
	if bs, ok := src.(batchSource); ok {
		n = bs.ScanBatch(buf.slab)
	} else {
		for n < replayBatch && src.Scan() {
			buf.slab[n] = src.Command()
			n++
		}
	}
	for i := 0; i < n; i++ {
		c := buf.slab[i]
		ch := 0
		if r.banks > 0 {
			ch = c.Bank / r.banks
		}
		if c.Bank < 0 || ch >= len(r.sims) {
			// A shard-range error aborts the round: the commands before it
			// are not issued (matching the pre-pipeline behavior, which
			// returned before running the round).
			buf.n = i
			buf.err = &TimingError{c, fmt.Sprintf("bank %d outside the %d-channel x %d-bank system",
				c.Bank, len(r.sims), r.banks)}
			buf.abort = true
			return true
		}
		c.Bank -= ch * r.banks
		buf.shards[ch] = append(buf.shards[ch], c)
	}
	buf.n = n
	if n < replayBatch {
		buf.err = src.Err()
		return true
	}
	return false
}

// ReplaySource streams commands through the per-channel simulators with
// decode and simulation pipelined: a decoder goroutine fills round N+1
// (bulk-decoding and sharding up to replayBatch commands by global bank
// index) while the engine issues round N's per-channel batches, the two
// rounds double-buffered through a 2-slot ring. Results are identical to
// the serial loop — rounds are issued in stream order, the per-channel
// command sequences don't depend on pipelining, and the merge stays in
// channel order (see DESIGN §11 for the determinism argument).
//
// It stops at the first parse error or timing violation; when several
// channels of one round violate, the reported violation is the one at the
// smallest slot (ties resolving to the lowest channel), not merely the
// lowest-channel one — a slot-10 violation on channel 3 is never masked
// by a slot-900 violation on channel 0.
func (r *Replayer) ReplaySource(src Source) error {
	// Each channel returns its own violation as a value (not as the job
	// error) so the earliest-slot one can be selected across channels;
	// Run only ever fails with a *TimingError.
	issue := func(i int, cmds []Command) (*TimingError, error) {
		err := r.sims[i].Run(cmds)
		if err == nil {
			return nil, nil
		}
		te, ok := err.(*TimingError)
		if !ok {
			return nil, err
		}
		return te, nil
	}

	bufA, bufB := getRound(len(r.sims)), getRound(len(r.sims))
	free := make(chan *roundBuf, 2)
	full := make(chan *roundBuf, 2)
	quit := make(chan struct{})
	done := make(chan struct{})
	free <- bufA
	free <- bufB

	// Decoder: pull an empty round from the ring, fill it from the
	// source, hand it to the consumer. Only this goroutine touches src.
	go func() {
		defer close(done)
		defer close(full)
		for {
			var buf *roundBuf
			select {
			case buf = <-free:
			case <-quit:
				return
			}
			buf.reset()
			terminal := r.fillRound(src, buf)
			select {
			case full <- buf:
			case <-quit:
				return
			}
			if terminal {
				return
			}
		}
	}()
	defer func() {
		// On every exit: stop the decoder, then reclaim both rounds (the
		// channel handoffs order all decoder writes before this point).
		close(quit)
		<-done
		roundPool.Put(bufA)
		roundPool.Put(bufB)
	}()

	for buf := range full {
		if buf.abort {
			return buf.err
		}
		if buf.n > 0 {
			violations, err := engine.Map(buf.shards, issue, r.opts)
			if err != nil {
				return err
			}
			var first *TimingError
			for _, te := range violations {
				if te != nil && (first == nil || te.Cmd.Slot < first.Cmd.Slot) {
					first = te
				}
			}
			if first != nil {
				// A violation in the final partial round outranks the parse
				// error that truncated it: the violation happened first.
				return first
			}
		}
		if buf.err != nil {
			return buf.err
		}
		free <- buf
	}
	return nil
}

// ReplayScanner streams the text scanner's commands through the
// per-channel simulators on the decode/simulate pipeline.
func (r *Replayer) ReplayScanner(sc *Scanner) error {
	return r.ReplaySource(sc)
}

// Replay streams a trace from rd through the channels, sniffing the
// encoding (dtb binary or text) from the first byte.
func (r *Replayer) Replay(rd io.Reader) error {
	return r.ReplaySource(NewSource(rd))
}

// RunChannel issues one channel's command batch on that channel's
// simulator. Banks are channel-local (0..banks-1), not global — exactly
// the numbering the scheduler's per-channel streams carry, so the fused
// schedule→replay pipeline feeds batches here without the
// Interleave-then-reshard round trip. Batches for one channel must
// arrive in trace order; batches for distinct channels may be issued
// concurrently (each channel owns its simulator). The accumulated state
// is identical to replaying the interleaved trace: Run is a stateful
// sequential loop, so batch boundaries don't exist to it.
func (r *Replayer) RunChannel(ch int, cmds []Command) error {
	if ch < 0 || ch >= len(r.sims) {
		return fmt.Errorf("trace: channel %d outside the %d-channel replayer", ch, len(r.sims))
	}
	return r.sims[ch].Run(cmds)
}

// Now returns the latest slot any channel has reached.
func (r *Replayer) Now() int64 {
	var n int64
	for _, s := range r.sims {
		if s.Now() > n {
			n = s.Now()
		}
	}
	return n
}

// Result closes the replay at endSlot (extended to the latest channel's
// slot if smaller) and merges the per-channel results deterministically:
// energies, bits, counts and the per-state residency/background fields
// sum in channel order over the common duration (the four slot counters
// therefore sum to Channels x Slots), rates are recomputed from the
// merged totals, and the bus utilization averages across the channels
// (each channel owns a data bus). With one channel the result is exactly
// Simulator.Result's.
func (r *Replayer) Result(endSlot int64) Result {
	if e := r.Now(); endSlot < e {
		endSlot = e
	}
	merged := r.sims[0].Result(endSlot)
	if len(r.sims) == 1 {
		return merged
	}
	util := merged.BusUtilization
	for _, s := range r.sims[1:] {
		cr := s.Result(endSlot)
		merged.CommandEnergy += cr.CommandEnergy
		merged.Background += cr.Background
		merged.Total += cr.Total
		merged.Bits += cr.Bits
		merged.ActiveSlots += cr.ActiveSlots
		merged.PrechargedSlots += cr.PrechargedSlots
		merged.PowerDownSlots += cr.PowerDownSlots
		merged.SelfRefreshSlots += cr.SelfRefreshSlots
		merged.ActiveBackground += cr.ActiveBackground
		merged.PrechargedBackground += cr.PrechargedBackground
		merged.PowerDownBackground += cr.PowerDownBackground
		merged.SelfRefreshBackground += cr.SelfRefreshBackground
		// Retention audit: refresh counts and misses sum across channels;
		// the widest per-channel gap is the trace's worst case.
		merged.Refreshes += cr.Refreshes
		merged.MissedRefreshDeadlines += cr.MissedRefreshDeadlines
		if cr.MaxRefreshInterval > merged.MaxRefreshInterval {
			merged.MaxRefreshInterval = cr.MaxRefreshInterval
		}
		for op, n := range cr.Counts {
			if merged.Counts == nil {
				merged.Counts = make(map[desc.Op]int64, numTraceOps)
			}
			merged.Counts[op] += n
		}
		util += cr.BusUtilization
	}
	merged.BusUtilization = util / float64(len(r.sims))
	merged.AveragePower, merged.AverageCurrent, merged.EnergyPerBit = 0, 0, 0
	if merged.Duration > 0 {
		merged.AveragePower = units.Power(float64(merged.Total) / float64(merged.Duration))
		if v := r.m.D.Electrical.Vdd; v > 0 {
			merged.AverageCurrent = units.Current(float64(merged.AveragePower) / float64(v))
		}
	}
	if merged.Bits > 0 {
		merged.EnergyPerBit = units.Energy(float64(merged.Total) / float64(merged.Bits))
	}
	return merged
}

// Replay streams a trace against the model over the given channel/worker
// configuration and reports the merged result, ending the accounting one
// burst after the last command (matching Evaluate, so a single-channel
// replay of a trace equals Evaluate on the materialized commands exactly).
func Replay(m *core.Model, rd io.Reader, opts ReplayOptions) (Result, error) {
	r := NewReplayer(m, opts)
	if err := r.Replay(rd); err != nil {
		return Result{}, err
	}
	return r.Result(r.Now() + int64(m.BurstSlots())), nil
}

// Interleave merges per-channel traces into one multi-channel trace with
// global bank indices, ordered by slot (ties resolve in channel order):
// channel ch's bank b becomes global bank ch*banksPerChannel+b. It is the
// inverse of the Replayer's sharding and is used to compose multi-channel
// traces from the single-device workload generators.
func Interleave(channels [][]Command, banksPerChannel int) []Command {
	total := 0
	for _, c := range channels {
		total += len(c)
	}
	out := make([]Command, 0, total)
	idx := make([]int, len(channels))
	for len(out) < total {
		best := -1
		var bestSlot int64
		for ch := range channels {
			i := idx[ch]
			if i >= len(channels[ch]) {
				continue
			}
			if s := channels[ch][i].Slot; best < 0 || s < bestSlot {
				best, bestSlot = ch, s
			}
		}
		c := channels[best][idx[best]]
		c.Bank += best * banksPerChannel
		out = append(out, c)
		idx[best]++
	}
	return out
}

// cmdSliceSource adapts an in-memory command slice to the Source
// interface, so already-materialized traces (e.g. a scheduler's output)
// replay without a serialize/re-parse round trip.
type cmdSliceSource struct {
	cmds []Command
	i    int
}

// NewSliceSource returns a Source over an in-memory command slice.
func NewSliceSource(cmds []Command) Source { return &cmdSliceSource{cmds: cmds} }

func (s *cmdSliceSource) Scan() bool {
	if s.i >= len(s.cmds) {
		return false
	}
	s.i++
	return true
}

func (s *cmdSliceSource) Command() Command { return s.cmds[s.i-1] }

func (s *cmdSliceSource) Err() error { return nil }
