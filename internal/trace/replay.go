package trace

// Multi-channel parallel replay: a Replayer shards one global command
// stream across one Simulator per channel and drives the channels
// concurrently on the shared batch engine (package engine), in bounded
// rounds so memory stays O(batch) regardless of trace length.
//
// Channel addressing is by global bank index: in a C-channel system whose
// devices have B banks each, global bank g addresses channel g/B, local
// bank g%B. A single-channel replay therefore accepts exactly the bank
// numbering Simulator.Run does, and its energy totals are bit-identical
// to the in-memory Run path (same simulator, same issue order, same
// float accumulation).

import (
	"fmt"
	"io"

	"drampower/internal/core"
	"drampower/internal/desc"
	"drampower/internal/engine"
	"drampower/internal/units"
)

// ReplayOptions configures a multi-channel replay.
type ReplayOptions struct {
	// Channels is the number of independent channels (devices) the trace
	// addresses; <= 0 means 1.
	Channels int
	// Workers bounds the worker pool driving the channels (engine
	// semantics: <= 0 selects one worker per CPU, 1 replays serially).
	Workers int
	// Pool, when set, drives the channels on a shared long-lived engine
	// pool instead of per-round goroutines (see engine.Options.Pool);
	// long-running servers use this so concurrent replays share one
	// bounded worker set.
	Pool *engine.Pool
}

// replayBatch is the number of commands buffered per scheduling round.
// Each round shards up to this many commands to the channels and issues
// the per-channel batches concurrently; the shard buffers are reused, so
// replay memory is bounded by the round size, not the trace length.
const replayBatch = 1 << 15

// Replayer shards a multi-channel command trace across one Simulator per
// channel. The per-channel results merge deterministically (in channel
// order), so the merged Result is independent of the worker count.
type Replayer struct {
	m     *core.Model
	sims  []*Simulator
	banks int // banks per channel
	opts  engine.Options
}

// NewReplayer creates a replayer with one simulator per channel, all
// against the same (immutable, concurrently readable) model.
func NewReplayer(m *core.Model, opts ReplayOptions) *Replayer {
	ch := opts.Channels
	if ch < 1 {
		ch = 1
	}
	r := &Replayer{
		m:     m,
		sims:  make([]*Simulator, ch),
		banks: m.D.Spec.Banks(),
		opts:  engine.Options{Workers: opts.Workers, Pool: opts.Pool},
	}
	for i := range r.sims {
		r.sims[i] = New(m)
	}
	return r
}

// Channels returns the channel count.
func (r *Replayer) Channels() int { return len(r.sims) }

// ReplayScanner streams the scanner's commands through the per-channel
// simulators: each round shards up to replayBatch commands by global bank
// index and issues the per-channel batches concurrently on the engine
// pool. It stops at the first parse error or timing violation; when
// several channels of one round violate, the reported violation is the
// one at the smallest slot (ties resolving to the lowest channel), not
// merely the lowest-channel one — a slot-10 violation on channel 3 is
// never masked by a slot-900 violation on channel 0.
func (r *Replayer) ReplayScanner(sc *Scanner) error {
	shards := make([][]Command, len(r.sims))
	// Each channel returns its own violation as a value (not as the job
	// error) so the earliest-slot one can be selected across channels;
	// Run only ever fails with a *TimingError.
	issue := func(i int, cmds []Command) (*TimingError, error) {
		err := r.sims[i].Run(cmds)
		if err == nil {
			return nil, nil
		}
		te, ok := err.(*TimingError)
		if !ok {
			return nil, err
		}
		return te, nil
	}
	for {
		for i := range shards {
			shards[i] = shards[i][:0]
		}
		n := 0
		for n < replayBatch && sc.Scan() {
			c := sc.Command()
			ch := 0
			if r.banks > 0 {
				ch = c.Bank / r.banks
			}
			if c.Bank < 0 || ch >= len(r.sims) {
				return &TimingError{c, fmt.Sprintf("bank %d outside the %d-channel x %d-bank system",
					c.Bank, len(r.sims), r.banks)}
			}
			c.Bank -= ch * r.banks
			shards[ch] = append(shards[ch], c)
			n++
		}
		if n == 0 {
			break
		}
		violations, err := engine.Map(shards, issue, r.opts)
		if err != nil {
			return err
		}
		var first *TimingError
		for _, te := range violations {
			if te != nil && (first == nil || te.Cmd.Slot < first.Cmd.Slot) {
				first = te
			}
		}
		if first != nil {
			return first
		}
	}
	return sc.Err()
}

// Replay streams trace text from rd through the channels.
func (r *Replayer) Replay(rd io.Reader) error {
	return r.ReplayScanner(NewScanner(rd))
}

// Now returns the latest slot any channel has reached.
func (r *Replayer) Now() int64 {
	var n int64
	for _, s := range r.sims {
		if s.Now() > n {
			n = s.Now()
		}
	}
	return n
}

// Result closes the replay at endSlot (extended to the latest channel's
// slot if smaller) and merges the per-channel results deterministically:
// energies, bits, counts and the per-state residency/background fields
// sum in channel order over the common duration (the four slot counters
// therefore sum to Channels x Slots), rates are recomputed from the
// merged totals, and the bus utilization averages across the channels
// (each channel owns a data bus). With one channel the result is exactly
// Simulator.Result's.
func (r *Replayer) Result(endSlot int64) Result {
	if e := r.Now(); endSlot < e {
		endSlot = e
	}
	merged := r.sims[0].Result(endSlot)
	if len(r.sims) == 1 {
		return merged
	}
	util := merged.BusUtilization
	for _, s := range r.sims[1:] {
		cr := s.Result(endSlot)
		merged.CommandEnergy += cr.CommandEnergy
		merged.Background += cr.Background
		merged.Total += cr.Total
		merged.Bits += cr.Bits
		merged.ActiveSlots += cr.ActiveSlots
		merged.PrechargedSlots += cr.PrechargedSlots
		merged.PowerDownSlots += cr.PowerDownSlots
		merged.SelfRefreshSlots += cr.SelfRefreshSlots
		merged.ActiveBackground += cr.ActiveBackground
		merged.PrechargedBackground += cr.PrechargedBackground
		merged.PowerDownBackground += cr.PowerDownBackground
		merged.SelfRefreshBackground += cr.SelfRefreshBackground
		for op, n := range cr.Counts {
			if merged.Counts == nil {
				merged.Counts = make(map[desc.Op]int64, numTraceOps)
			}
			merged.Counts[op] += n
		}
		util += cr.BusUtilization
	}
	merged.BusUtilization = util / float64(len(r.sims))
	merged.AveragePower, merged.AverageCurrent, merged.EnergyPerBit = 0, 0, 0
	if merged.Duration > 0 {
		merged.AveragePower = units.Power(float64(merged.Total) / float64(merged.Duration))
		if v := r.m.D.Electrical.Vdd; v > 0 {
			merged.AverageCurrent = units.Current(float64(merged.AveragePower) / float64(v))
		}
	}
	if merged.Bits > 0 {
		merged.EnergyPerBit = units.Energy(float64(merged.Total) / float64(merged.Bits))
	}
	return merged
}

// Replay streams a trace against the model over the given channel/worker
// configuration and reports the merged result, ending the accounting one
// burst after the last command (matching Evaluate, so a single-channel
// replay of a trace equals Evaluate on the materialized commands exactly).
func Replay(m *core.Model, rd io.Reader, opts ReplayOptions) (Result, error) {
	r := NewReplayer(m, opts)
	if err := r.Replay(rd); err != nil {
		return Result{}, err
	}
	return r.Result(r.Now() + int64(m.BurstSlots())), nil
}

// Interleave merges per-channel traces into one multi-channel trace with
// global bank indices, ordered by slot (ties resolve in channel order):
// channel ch's bank b becomes global bank ch*banksPerChannel+b. It is the
// inverse of the Replayer's sharding and is used to compose multi-channel
// traces from the single-device workload generators.
func Interleave(channels [][]Command, banksPerChannel int) []Command {
	total := 0
	for _, c := range channels {
		total += len(c)
	}
	out := make([]Command, 0, total)
	idx := make([]int, len(channels))
	for len(out) < total {
		best := -1
		var bestSlot int64
		for ch := range channels {
			i := idx[ch]
			if i >= len(channels[ch]) {
				continue
			}
			if s := channels[ch][i].Slot; best < 0 || s < bestSlot {
				best, bestSlot = ch, s
			}
		}
		c := channels[best][idx[best]]
		c.Bank += best * banksPerChannel
		out = append(out, c)
		idx[best]++
	}
	return out
}
