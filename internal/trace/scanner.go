package trace

// Streaming trace ingestion: a line-oriented text format for command
// traces and an allocation-free Scanner over any io.Reader, so
// multi-gigabyte traces stream through a fixed buffer instead of being
// materialized as a []Command.
//
// The format is one command per line,
//
//	<slot> <op> [<bank> [<row>]]
//
// with fields separated by spaces or tabs, '#' starting a comment that
// runs to the end of the line, and blank lines ignored. <op> is a
// pattern-language mnemonic (nop, act, pre, rd, wrt, ref), one of the
// aliases desc.ParseOp accepts (activate, precharge, read, write, wr,
// refresh), or a power-state command (pde, pdx, sre, srx — power-down and
// self-refresh entry/exit), matched ASCII-case-insensitively. <bank> and
// <row> default to 0 when omitted (refresh, nop and power-state commands
// usually carry neither).
//
//	# one closed-page access on bank 2, then a power-down window
//	0   act 2 17
//	11  rd  2 17
//	28  pre 2 17
//	100 ref
//	200 pde
//	800 pdx

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"drampower/internal/desc"
)

// ParseError reports a malformed trace line at a specific input position.
// It mirrors the shape of desc.ParseError — Line is 1-based, Col the
// 1-based byte column of the offending field, 0 for whole-line problems —
// so tooling can surface description and trace errors uniformly.
type ParseError struct {
	Line int
	Col  int
	Msg  string
	err  error // underlying reader error, when the input itself failed
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	if e.Col > 0 {
		return fmt.Sprintf("trace: line %d, col %d: %s", e.Line, e.Col, e.Msg)
	}
	return fmt.Sprintf("trace: line %d: %s", e.Line, e.Msg)
}

// Unwrap exposes the reader error behind a stream failure, so callers can
// errors.Is/As through the positioned wrapper (e.g. to tell a cancelled
// context or an http.MaxBytesError apart from genuinely bad trace text).
// It is nil for ordinary syntax errors.
func (e *ParseError) Unwrap() error { return e.err }

// maxLineBytes bounds a single trace line; a well-formed line is a few
// dozen bytes, so the cap only guards against pathological input.
const maxLineBytes = 1 << 16

// Scanner reads a command trace from an io.Reader one line at a time.
// After construction it performs no per-line heap allocations: lines are
// tokenized in place on the underlying bufio buffer and integers and
// mnemonics are decoded without forming strings (no strings.Split, no
// strconv on the hot path). Use it directly with Simulator.RunStream or
// Replayer.ReplayScanner:
//
//	sc := trace.NewScanner(f)
//	for sc.Scan() {
//		cmd := sc.Command()
//		...
//	}
//	if err := sc.Err(); err != nil { ... }
type Scanner struct {
	s    *bufio.Scanner
	line int
	cmd  Command
	err  error
}

// NewScanner returns a Scanner reading trace text from r.
func NewScanner(r io.Reader) *Scanner {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 4096), maxLineBytes)
	return &Scanner{s: s}
}

// Scan advances to the next command, skipping blank and comment lines.
// It returns false at end of input or on the first error; Err
// disambiguates the two.
func (sc *Scanner) Scan() bool {
	if sc.err != nil {
		return false
	}
	for sc.s.Scan() {
		sc.line++
		cmd, ok, err := parseLine(sc.s.Bytes(), sc.line)
		if err != nil {
			sc.err = err
			return false
		}
		if ok {
			sc.cmd = cmd
			return true
		}
	}
	if err := sc.s.Err(); err != nil {
		sc.err = &ParseError{Line: sc.line + 1, Msg: err.Error(), err: err}
	}
	return false
}

// Command returns the command of the last successful Scan.
func (sc *Scanner) Command() Command { return sc.cmd }

// Err returns the first error encountered (a *ParseError), or nil after a
// clean end of input.
func (sc *Scanner) Err() error { return sc.err }

// Line returns the 1-based number of the last line read.
func (sc *Scanner) Line() int { return sc.line }

// parseLine decodes one trace line. ok is false for blank and
// comment-only lines.
func parseLine(b []byte, line int) (cmd Command, ok bool, err error) {
	i := skipSpace(b, 0)
	if i >= len(b) || b[i] == '#' {
		return Command{}, false, nil
	}
	slot, j, numOK := parseInt(b, i)
	if !numOK {
		return Command{}, false, &ParseError{Line: line, Col: i + 1, Msg: fmt.Sprintf("bad slot %q (want integer)", field(b, i))}
	}
	if slot < 0 {
		return Command{}, false, &ParseError{Line: line, Col: i + 1, Msg: fmt.Sprintf("negative slot %d", slot)}
	}
	cmd.Slot = slot

	i = skipSpace(b, j)
	if i >= len(b) || b[i] == '#' {
		return Command{}, false, &ParseError{Line: line, Col: 0, Msg: "missing operation"}
	}
	j = endOfField(b, i)
	op, opOK := parseOpBytes(b[i:j])
	if !opOK {
		return Command{}, false, &ParseError{Line: line, Col: i + 1, Msg: fmt.Sprintf("unknown operation %q (want nop, act, pre, rd, wrt, ref, pde, pdx, sre or srx)", field(b, i))}
	}
	cmd.Op = op

	i = skipSpace(b, j)
	if i < len(b) && b[i] != '#' {
		bank, k, bankOK := parseInt(b, i)
		if !bankOK {
			return Command{}, false, &ParseError{Line: line, Col: i + 1, Msg: fmt.Sprintf("bad bank %q (want integer)", field(b, i))}
		}
		cmd.Bank = int(bank)
		i = skipSpace(b, k)
	}
	if i < len(b) && b[i] != '#' {
		row, k, rowOK := parseInt(b, i)
		if !rowOK {
			return Command{}, false, &ParseError{Line: line, Col: i + 1, Msg: fmt.Sprintf("bad row %q (want integer)", field(b, i))}
		}
		cmd.Row = int(row)
		i = skipSpace(b, k)
	}
	if i < len(b) && b[i] != '#' {
		return Command{}, false, &ParseError{Line: line, Col: i + 1, Msg: fmt.Sprintf("trailing field %q (want <slot> <op> [<bank> [<row>]])", field(b, i))}
	}
	return cmd, true, nil
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' }

// skipSpace returns the index of the first non-space byte at or after i.
func skipSpace(b []byte, i int) int {
	for i < len(b) && isSpace(b[i]) {
		i++
	}
	return i
}

// endOfField returns the index just past the field starting at i.
func endOfField(b []byte, i int) int {
	for i < len(b) && !isSpace(b[i]) && b[i] != '#' {
		i++
	}
	return i
}

// field extracts the field starting at i for error messages (this path
// may allocate; the accept path never calls it).
func field(b []byte, i int) string { return string(b[i:endOfField(b, i)]) }

// parseInt decodes a decimal integer field starting at i without
// allocating. It returns the value, the index just past the field, and
// whether the field was a well-formed integer ending at a field boundary.
func parseInt(b []byte, i int) (int64, int, bool) {
	j := i
	neg := false
	if j < len(b) && (b[j] == '-' || b[j] == '+') {
		neg = b[j] == '-'
		j++
	}
	start := j
	var v int64
	for j < len(b) && b[j] >= '0' && b[j] <= '9' {
		// Bound before the multiply: v*10 can wrap past negative back
		// into the positive range, so a post-hoc v < 0 check is not
		// enough.
		if v > ((1<<63-1)-9)/10 {
			return 0, j, false // overflow
		}
		v = v*10 + int64(b[j]-'0')
		j++
	}
	if j == start {
		return 0, j, false
	}
	if j < len(b) && !isSpace(b[j]) && b[j] != '#' {
		return 0, j, false
	}
	if neg {
		v = -v
	}
	return v, j, true
}

// parseOpBytes matches an operation mnemonic ASCII-case-insensitively
// without allocating. The accepted set matches desc.ParseOp.
func parseOpBytes(b []byte) (desc.Op, bool) {
	switch {
	case eqFold(b, "nop"):
		return desc.OpNop, true
	case eqFold(b, "act"), eqFold(b, "activate"):
		return desc.OpActivate, true
	case eqFold(b, "pre"), eqFold(b, "precharge"):
		return desc.OpPrecharge, true
	case eqFold(b, "rd"), eqFold(b, "read"):
		return desc.OpRead, true
	case eqFold(b, "wrt"), eqFold(b, "wr"), eqFold(b, "write"):
		return desc.OpWrite, true
	case eqFold(b, "ref"), eqFold(b, "refresh"):
		return desc.OpRefresh, true
	case eqFold(b, "pde"):
		return OpPowerDownEnter, true
	case eqFold(b, "pdx"):
		return OpPowerDownExit, true
	case eqFold(b, "sre"):
		return OpSelfRefreshEnter, true
	case eqFold(b, "srx"):
		return OpSelfRefreshExit, true
	}
	return 0, false
}

// eqFold reports whether b equals the lower-case string s under ASCII
// case folding, without allocating.
func eqFold(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != s[i] {
			return false
		}
	}
	return true
}

// WriteTrace renders commands in the trace text format, one line per
// command, buffered. The output round-trips through NewScanner.
func WriteTrace(w io.Writer, cmds []Command) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	for i := range cmds {
		buf = AppendCommand(buf[:0], cmds[i])
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// AppendCommand appends the trace-format line for c, including the
// trailing newline, to dst and returns the extended slice.
func AppendCommand(dst []byte, c Command) []byte {
	dst = strconv.AppendInt(dst, c.Slot, 10)
	dst = append(dst, ' ')
	dst = append(dst, OpName(c.Op)...)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(c.Bank), 10)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(c.Row), 10)
	return append(dst, '\n')
}
