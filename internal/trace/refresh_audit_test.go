package trace

import (
	"strings"
	"testing"

	"drampower/internal/core"
	"drampower/internal/desc"
	"drampower/internal/units"
)

// TestRefreshRejectedWhileCKELow pins the CKE gating: ref is a CKE-high
// command, illegal inside both low-power states.
func TestRefreshRejectedWhileCKELow(t *testing.T) {
	m := model(t)
	for _, tc := range []struct {
		name  string
		enter desc.Op
	}{
		{"power-down", OpPowerDownEnter},
		{"self-refresh", OpSelfRefreshEnter},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := New(m)
			if err := s.Issue(Command{Slot: 0, Op: tc.enter}); err != nil {
				t.Fatal(err)
			}
			err := s.Issue(Command{Slot: 10, Op: desc.OpRefresh})
			if err == nil || !strings.Contains(err.Error(), "state") {
				t.Fatalf("ref accepted with CKE low: %v", err)
			}
		})
	}
}

// TestRetentionAuditCounts exercises the auditor's three Result fields on
// hand-built traces with known obligation arithmetic.
func TestRetentionAuditCounts(t *testing.T) {
	m := model(t)
	refi := New(m).RefreshIntervalSlots()
	if refi <= 0 {
		t.Fatal("sample spec lost its refresh interval")
	}

	t.Run("clean", func(t *testing.T) {
		// One refresh per interval, on time: no misses, max gap == tREFI.
		s := New(m)
		for k := int64(1); k <= 5; k++ {
			if err := s.Issue(Command{Slot: k * refi, Op: desc.OpRefresh}); err != nil {
				t.Fatal(err)
			}
		}
		res := s.Result(5*refi + 1)
		if res.Refreshes != 5 || res.MissedRefreshDeadlines != 0 {
			t.Fatalf("refreshes %d missed %d, want 5 and 0", res.Refreshes, res.MissedRefreshDeadlines)
		}
		if res.MaxRefreshInterval != refi {
			t.Fatalf("max interval %d, want %d", res.MaxRefreshInterval, refi)
		}
	})

	t.Run("late-refresh-misses", func(t *testing.T) {
		// A lone refresh one slot past obligation 1's deadline of
		// (1+8)*tREFI: exactly one miss, recorded at issue time.
		s := New(m)
		late := 9*refi + 1
		if err := s.Issue(Command{Slot: late, Op: desc.OpRefresh}); err != nil {
			t.Fatal(err)
		}
		res := s.Result(late + 1)
		if res.Refreshes != 1 || res.MissedRefreshDeadlines != 1 {
			t.Fatalf("refreshes %d missed %d, want 1 and 1", res.Refreshes, res.MissedRefreshDeadlines)
		}
		if res.MaxRefreshInterval != late {
			t.Fatalf("max interval %d, want %d", res.MaxRefreshInterval, late)
		}
	})

	t.Run("idle-tail-misses", func(t *testing.T) {
		// No refreshes at all over 10*tREFI: obligations 1 and 2 have
		// deadlines 9*tREFI and 10*tREFI inside the trace.
		s := New(m)
		res := s.Result(10 * refi)
		if res.Refreshes != 0 || res.MissedRefreshDeadlines != 2 {
			t.Fatalf("refreshes %d missed %d, want 0 and 2", res.Refreshes, res.MissedRefreshDeadlines)
		}
	})

	t.Run("self-refresh-resets-epoch", func(t *testing.T) {
		// Self-refresh covers the array internally: a span parked in sre
		// needs no ref commands, and the epoch restarts at srx.
		s := New(m)
		if err := s.Issue(Command{Slot: 0, Op: OpSelfRefreshEnter}); err != nil {
			t.Fatal(err)
		}
		if err := s.Issue(Command{Slot: 5 * refi, Op: OpSelfRefreshExit}); err != nil {
			t.Fatal(err)
		}
		if res := s.Result(12 * refi); res.MissedRefreshDeadlines != 0 {
			t.Fatalf("missed %d deadlines across a self-refresh span", res.MissedRefreshDeadlines)
		}
	})

	t.Run("late-self-refresh-entry-misses", func(t *testing.T) {
		// Entering self-refresh does not forgive deadlines that had
		// already passed unserved before the entry.
		s := New(m)
		if err := s.Issue(Command{Slot: 10 * refi, Op: OpSelfRefreshEnter}); err != nil {
			t.Fatal(err)
		}
		if res := s.Result(10*refi + 100); res.MissedRefreshDeadlines != 1 {
			t.Fatalf("missed %d, want 1 (obligation 1's deadline passed before sre)", res.MissedRefreshDeadlines)
		}
	})
}

// TestRandomClosedPageOddTFAW is the satellite-1 regression: with a tFAW
// that is not a multiple of four slots, the generator's per-window
// activate spacing must round up, not down — the floor division used to
// emit a fourth activate one slot inside the window.
func TestRandomClosedPageOddTFAW(t *testing.T) {
	d := desc.Sample1GbDDR3()
	d.Spec.FourBankWindow = units.Nanoseconds(37.5) // 30 slots at 800 MHz: 30/4 floors to 7
	m, err := core.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	s := New(m)
	_, _, _, _, _, tFAW, _ := s.TimingSlots()
	if tFAW%4 == 0 {
		t.Fatalf("tFAW resolved to %d slots — pick a spec value that exercises the rounding", tFAW)
	}
	cmds := RandomClosedPage(m, 400, 0.5, 3)
	if err := s.Run(cmds); err != nil {
		t.Fatalf("closed-page workload illegal under odd tFAW: %v", err)
	}
}

// TestRefreshOnlyTightInterval is the satellite-2 regression: a spec
// whose refresh interval is shorter than its refresh cycle (possible on
// high-density parts) must space the standby-refresh workload by tRFC,
// not tREFI.
func TestRefreshOnlyTightInterval(t *testing.T) {
	d := desc.Sample1GbDDR3()
	d.Spec.RefreshInterval = units.Nanoseconds(100) // 80 slots, below tRFC's 88
	m, err := core.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	s := New(m)
	if s.RefreshIntervalSlots() >= s.RefreshCycleSlots() {
		t.Fatalf("tREFI %d not below tRFC %d — spec no longer exercises the clamp",
			s.RefreshIntervalSlots(), s.RefreshCycleSlots())
	}
	cmds := RefreshOnly(m, 20)
	if err := s.Run(cmds); err != nil {
		t.Fatalf("refresh-only workload illegal under tREFI < tRFC: %v", err)
	}
	if got := s.Result(s.Now() + 1).Refreshes; got < 20 {
		t.Fatalf("workload carried %d refreshes, want >= 20", got)
	}
}
