// Package geom derives physical geometry from a DRAM description's
// floorplan: block positions and sizes, die dimensions, signal segment
// lengths (center-to-center Manhattan routing, Section III.B.2 of the
// paper) and array-block internals such as sub-array counts and stripe
// counts (Section II, Figure 1).
package geom

import (
	"fmt"

	"drampower/internal/desc"
	"drampower/internal/units"
)

// Grid is the resolved floorplan: per-axis block extents and cumulative
// coordinates.
type Grid struct {
	fp *desc.Floorplan

	// colWidth[i] is the width of grid column i; colCenter[i] the x
	// coordinate of its center. Likewise for rows.
	colWidth, rowHeight  []units.Length
	colCenter, rowCenter []units.Length

	// Die extents.
	Width, Height units.Length
}

// NewGrid resolves the floorplan into a grid. The description should have
// passed Validate; NewGrid still reports missing sizes as errors rather
// than panicking.
func NewGrid(fp *desc.Floorplan) (*Grid, error) {
	g := &Grid{fp: fp}
	g.colWidth = make([]units.Length, len(fp.HorizontalBlocks))
	g.colCenter = make([]units.Length, len(fp.HorizontalBlocks))
	var x units.Length
	for i, name := range fp.HorizontalBlocks {
		w, ok := fp.BlockWidth[name]
		if !ok {
			return nil, fmt.Errorf("geom: block %q has no horizontal size", name)
		}
		g.colWidth[i] = w
		g.colCenter[i] = x + w/2
		x += w
	}
	g.Width = x
	g.rowHeight = make([]units.Length, len(fp.VerticalBlocks))
	g.rowCenter = make([]units.Length, len(fp.VerticalBlocks))
	var y units.Length
	for i, name := range fp.VerticalBlocks {
		h, ok := fp.BlockHeight[name]
		if !ok {
			return nil, fmt.Errorf("geom: block %q has no vertical size", name)
		}
		g.rowHeight[i] = h
		g.rowCenter[i] = y + h/2
		y += h
	}
	g.Height = y
	return g, nil
}

// DieArea returns the die area.
func (g *Grid) DieArea() units.Area {
	return units.Area(float64(g.Width) * float64(g.Height))
}

// BlockName returns the name of the block at r.
func (g *Grid) BlockName(r desc.BlockRef) string {
	return g.fp.HorizontalBlocks[r.X] // column name; equal along the column
}

// BlockSize returns the width and height of the block at r.
func (g *Grid) BlockSize(r desc.BlockRef) (w, h units.Length, err error) {
	if err := g.check(r); err != nil {
		return 0, 0, err
	}
	return g.colWidth[r.X], g.rowHeight[r.Y], nil
}

// BlockCenter returns the die coordinates of the center of block r.
func (g *Grid) BlockCenter(r desc.BlockRef) (x, y units.Length, err error) {
	if err := g.check(r); err != nil {
		return 0, 0, err
	}
	return g.colCenter[r.X], g.rowCenter[r.Y], nil
}

// IsArray reports whether the grid cell at r is part of an array block:
// both its column and its row must be named as array strips.
func (g *Grid) IsArray(r desc.BlockRef) bool {
	if g.check(r) != nil {
		return false
	}
	return desc.IsArrayBlock(g.fp.HorizontalBlocks[r.X]) &&
		desc.IsArrayBlock(g.fp.VerticalBlocks[r.Y])
}

// ArrayBlocks returns the grid references of all array blocks (banks), in
// row-major order.
func (g *Grid) ArrayBlocks() []desc.BlockRef {
	var out []desc.BlockRef
	for y := range g.fp.VerticalBlocks {
		for x := range g.fp.HorizontalBlocks {
			r := desc.BlockRef{X: x, Y: y}
			if g.IsArray(r) {
				out = append(out, r)
			}
		}
	}
	return out
}

// SegmentLength computes the routed wire length of a signal segment:
// inside-form segments take fraction × block extent along their direction,
// span-form segments take the Manhattan distance between the two block
// centers.
func (g *Grid) SegmentLength(s *desc.Segment) (units.Length, error) {
	switch {
	case s.Inside != nil:
		w, h, err := g.BlockSize(*s.Inside)
		if err != nil {
			return 0, fmt.Errorf("geom: signal %s: %v", s.Name, err)
		}
		ext := w
		if s.Dir == desc.Vertical {
			ext = h
		}
		return units.Length(float64(ext) * s.Fraction), nil
	case s.Start != nil && s.End != nil:
		x1, y1, err := g.BlockCenter(*s.Start)
		if err != nil {
			return 0, fmt.Errorf("geom: signal %s: %v", s.Name, err)
		}
		x2, y2, err := g.BlockCenter(*s.End)
		if err != nil {
			return 0, fmt.Errorf("geom: signal %s: %v", s.Name, err)
		}
		return absLen(x2-x1) + absLen(y2-y1), nil
	}
	return 0, fmt.Errorf("geom: signal %s has neither inside nor span form", s.Name)
}

func absLen(l units.Length) units.Length {
	if l < 0 {
		return -l
	}
	return l
}

func (g *Grid) check(r desc.BlockRef) error {
	if r.X < 0 || r.X >= len(g.colWidth) || r.Y < 0 || r.Y >= len(g.rowHeight) {
		return fmt.Errorf("geom: block %v outside %dx%d grid", r, len(g.colWidth), len(g.rowHeight))
	}
	return nil
}

// ArrayLayout describes the internal organization of one array block
// (bank), derived from the floorplan parameters (Section II).
type ArrayLayout struct {
	// BankWidth/BankHeight are the block extents.
	BankWidth, BankHeight units.Length
	// CellsPerBLDir is the number of cells along the bitline direction in
	// the whole bank (wordline count), CellsPerWLDir the number across.
	CellsPerBLDir, CellsPerWLDir int
	// SubarraysAlongBL is the number of sub-arrays stacked along the
	// bitline direction; SubarraysAlongWL across the wordline direction.
	SubarraysAlongBL, SubarraysAlongWL int
	// BLSAStripes and LWDStripes count the sense-amplifier and local
	// wordline driver stripes in the bank (fence-post: subarrays + 1).
	BLSAStripes, LWDStripes int
	// LocalBLLength and LocalWLLength are the wire lengths of one local
	// bitline and one local wordline.
	LocalBLLength, LocalWLLength units.Length
	// MasterWLLength is the length of a master wordline (spans the bank
	// across the bitline direction); CSLLength the length of a column
	// select line (spans along the bitline direction over BlocksPerCSL
	// blocks); MDQLength the length of the master array data lines
	// (parallel to master wordlines).
	MasterWLLength, CSLLength, MDQLength units.Length
	// PageBits is the number of cells sensed by one activation: one local
	// wordline per sub-array across the full bank width.
	PageBits int
	// BLSAPairsPerStripe is the number of sense amplifiers in one stripe
	// that participate in a page activation.
	BLSAPairsPerStripe int
}

// ResolveArray derives the array layout for one bank. The bank footprint
// is taken from the named array block's grid extents; the cell counts from
// the pitches after subtracting stripe overhead.
func ResolveArray(fp *desc.Floorplan, bankW, bankH units.Length) (*ArrayLayout, error) {
	if fp.WordlinePitch <= 0 || fp.BitlinePitch <= 0 {
		return nil, fmt.Errorf("geom: cell pitches must be positive")
	}
	if fp.BitsPerBitline <= 0 || fp.BitsPerLocalWordline <= 0 {
		return nil, fmt.Errorf("geom: bits per bitline / local wordline must be positive")
	}
	a := &ArrayLayout{BankWidth: bankW, BankHeight: bankH}

	// Extents along the bitline direction and across it.
	alongBL, acrossBL := bankH, bankW
	if fp.BitlineDir == desc.Horizontal {
		alongBL, acrossBL = bankW, bankH
	}

	// Along the bitline: sub-arrays of BitsPerBitline cells separated by
	// BLSA stripes (fence-post). Solve for the sub-array count that fits.
	subLen := units.Length(float64(fp.BitsPerBitline) * float64(fp.WordlinePitch))
	nBL := int(float64(alongBL-fp.BLSAStripeWidth) / float64(subLen+fp.BLSAStripeWidth))
	if nBL < 1 {
		nBL = 1
	}
	a.SubarraysAlongBL = nBL
	a.BLSAStripes = nBL + 1
	a.CellsPerBLDir = nBL * fp.BitsPerBitline
	a.LocalBLLength = subLen

	// Across the bitline: sub-arrays of BitsPerLocalWordline cells
	// separated by LWD stripes.
	lwlLen := units.Length(float64(fp.BitsPerLocalWordline) * float64(fp.BitlinePitch))
	nWL := int(float64(acrossBL-fp.LWDStripeWidth) / float64(lwlLen+fp.LWDStripeWidth))
	if nWL < 1 {
		nWL = 1
	}
	a.SubarraysAlongWL = nWL
	a.LWDStripes = nWL + 1
	a.CellsPerWLDir = nWL * fp.BitsPerLocalWordline
	a.LocalWLLength = lwlLen

	a.MasterWLLength = acrossBL
	a.MDQLength = acrossBL
	a.CSLLength = units.Length(float64(alongBL) * float64(fp.BlocksPerCSL))

	// One activation raises one local wordline in each sub-array across
	// the bank: PageBits = BitsPerLocalWordline × SubarraysAlongWL cells.
	// In a folded architecture only every other bitline has a cell on a
	// given wordline, which is already captured by BitsPerLocalWordline
	// counting cells (not bitline tracks).
	a.PageBits = fp.BitsPerLocalWordline * nWL
	a.BLSAPairsPerStripe = a.PageBits / nBL // page cells served per stripe row
	return a, nil
}

// ArrayBlockExtents finds the grid extents of the first array block and
// returns its layout; most descriptions have identical banks so this is
// the canonical per-bank layout.
func ArrayBlockExtents(g *Grid) (bankW, bankH units.Length, err error) {
	refs := g.ArrayBlocks()
	if len(refs) == 0 {
		return 0, 0, fmt.Errorf("geom: floorplan has no array blocks")
	}
	w, h, err := g.BlockSize(refs[0])
	if err != nil {
		return 0, 0, err
	}
	return w, h, nil
}
