package geom

import (
	"math"
	"testing"
	"testing/quick"

	"drampower/internal/desc"
	"drampower/internal/units"
)

func sampleGrid(t *testing.T) (*desc.Description, *Grid) {
	t.Helper()
	d := desc.Sample1GbDDR3()
	g, err := NewGrid(&d.Floorplan)
	if err != nil {
		t.Fatal(err)
	}
	return d, g
}

func TestGridDimensions(t *testing.T) {
	_, g := sampleGrid(t)
	// width: 4 banks x 1900 + 2 row logic x 150 + spine 260 = 7960 um
	wantW := 4*1900.0 + 2*150 + 260
	if got := g.Width.Micrometers(); math.Abs(got-wantW) > 1e-6 {
		t.Errorf("die width: got %gum, want %gum", got, wantW)
	}
	// height: 2 bank strips x 1700 + 2 column logic x 180 + center 700 = 4460 um
	wantH := 2*1700.0 + 2*180 + 700
	if got := g.Height.Micrometers(); math.Abs(got-wantH) > 1e-6 {
		t.Errorf("die height: got %gum, want %gum", got, wantH)
	}
	wantArea := wantW * wantH * 1e-12 // m^2
	if got := float64(g.DieArea()); math.Abs(got-wantArea) > 1e-9*wantArea {
		t.Errorf("die area: got %g, want %g", got, wantArea)
	}
}

func TestGridMissingSize(t *testing.T) {
	d := desc.Sample1GbDDR3()
	delete(d.Floorplan.BlockWidth, "R1")
	if _, err := NewGrid(&d.Floorplan); err == nil {
		t.Error("expected error for missing block size")
	}
	d = desc.Sample1GbDDR3()
	delete(d.Floorplan.BlockHeight, "P2")
	if _, err := NewGrid(&d.Floorplan); err == nil {
		t.Error("expected error for missing block height")
	}
}

func TestBlockCenterMonotonic(t *testing.T) {
	_, g := sampleGrid(t)
	var prev units.Length = -1
	for x := 0; x < 7; x++ {
		cx, _, err := g.BlockCenter(desc.BlockRef{X: x, Y: 0})
		if err != nil {
			t.Fatal(err)
		}
		if cx <= prev {
			t.Errorf("column centers not monotonic at x=%d: %v <= %v", x, cx, prev)
		}
		prev = cx
	}
}

func TestBlockCenterValues(t *testing.T) {
	_, g := sampleGrid(t)
	// x=0 is a bank of width 1900um: center at 950um.
	cx, cy, err := g.BlockCenter(desc.BlockRef{X: 0, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := cx.Micrometers(); math.Abs(got-950) > 1e-6 {
		t.Errorf("center x: got %gum, want 950um", got)
	}
	if got := cy.Micrometers(); math.Abs(got-850) > 1e-6 {
		t.Errorf("center y: got %gum, want 850um", got)
	}
	// x=1 is row logic (width 150) after the bank: center at 1900+75.
	cx, _, err = g.BlockCenter(desc.BlockRef{X: 1, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := cx.Micrometers(); math.Abs(got-1975) > 1e-6 {
		t.Errorf("center x of col 1: got %gum, want 1975um", got)
	}
}

func TestBlockRefOutOfRange(t *testing.T) {
	_, g := sampleGrid(t)
	for _, r := range []desc.BlockRef{{X: 7, Y: 0}, {X: 0, Y: 5}, {X: -1, Y: 0}} {
		if _, _, err := g.BlockCenter(r); err == nil {
			t.Errorf("BlockCenter(%v): expected error", r)
		}
		if _, _, err := g.BlockSize(r); err == nil {
			t.Errorf("BlockSize(%v): expected error", r)
		}
		if g.IsArray(r) {
			t.Errorf("IsArray(%v): out-of-range ref reported as array", r)
		}
	}
}

func TestArrayBlocks(t *testing.T) {
	_, g := sampleGrid(t)
	refs := g.ArrayBlocks()
	// 4 bank columns x 2 bank rows = 8 banks, matching Figure 1.
	if len(refs) != 8 {
		t.Fatalf("array blocks: got %d, want 8", len(refs))
	}
	for _, r := range refs {
		if !g.IsArray(r) {
			t.Errorf("block %v not classified as array", r)
		}
		if r.Y != 0 && r.Y != 4 {
			t.Errorf("bank at unexpected row %v", r)
		}
	}
}

func TestSegmentLengthInside(t *testing.T) {
	d, g := sampleGrid(t)
	// DataW0: inside (3,2) (the center spine x center stripe), 25% of the
	// horizontal extent (260um) = 65um.
	s := &d.Signals[0]
	l, err := g.SegmentLength(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Micrometers(); math.Abs(got-65) > 1e-6 {
		t.Errorf("DataW0 length: got %gum, want 65um", got)
	}
}

func TestSegmentLengthSpan(t *testing.T) {
	d, g := sampleGrid(t)
	// DataW1: (3,2) -> (1,2): Manhattan distance between the centers of
	// column 3 (center spine) and column 1 (row logic), same row.
	s := &d.Signals[1]
	l, err := g.SegmentLength(s)
	if err != nil {
		t.Fatal(err)
	}
	// centers: col3 = 1900+150+1900+130 = 4080; col1 = 1975; dist = 2105.
	if got := l.Micrometers(); math.Abs(got-2105) > 1e-6 {
		t.Errorf("DataW1 length: got %gum, want 2105um", got)
	}
}

func TestSegmentLengthManhattan(t *testing.T) {
	d, g := sampleGrid(t)
	s := &desc.Segment{
		Name: "DataW9", Kind: desc.SigDataWrite,
		Start: &desc.BlockRef{X: 1, Y: 2}, End: &desc.BlockRef{X: 1, Y: 0},
	}
	l, err := g.SegmentLength(s)
	if err != nil {
		t.Fatal(err)
	}
	// y centers: row2 = 1700+180+350 = 2230; row0 = 850; dist = 1380.
	if got := l.Micrometers(); math.Abs(got-1380) > 1e-6 {
		t.Errorf("vertical span: got %gum, want 1380um", got)
	}
	_ = d
}

func TestSegmentLengthErrors(t *testing.T) {
	_, g := sampleGrid(t)
	bad := &desc.Segment{Name: "DataW9"}
	if _, err := g.SegmentLength(bad); err == nil {
		t.Error("expected error for formless segment")
	}
	oob := &desc.Segment{Name: "DataW9", Inside: &desc.BlockRef{X: 99, Y: 0}, Fraction: 0.5}
	if _, err := g.SegmentLength(oob); err == nil {
		t.Error("expected error for out-of-range inside block")
	}
}

func TestResolveArraySample(t *testing.T) {
	d, g := sampleGrid(t)
	w, h, err := ArrayBlockExtents(g)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ResolveArray(&d.Floorplan, w, h)
	if err != nil {
		t.Fatal(err)
	}
	// Along bitlines (vertical, 1700um): sub-array = 512*165nm = 84.48um;
	// (1700-20)/(84.48+20) = 16.07 -> 16 sub-arrays, 17 BLSA stripes.
	if a.SubarraysAlongBL != 16 {
		t.Errorf("subarrays along BL: got %d, want 16", a.SubarraysAlongBL)
	}
	if a.BLSAStripes != 17 {
		t.Errorf("BLSA stripes: got %d, want 17", a.BLSAStripes)
	}
	if a.CellsPerBLDir != 8192 {
		t.Errorf("wordlines per bank: got %d, want 8192", a.CellsPerBLDir)
	}
	// Across (horizontal, 1900um): LWL = 512*110nm = 56.32um;
	// (1900-3)/(56.32+3) = 31.98 -> 31 sub-arrays... verify computed value
	// is in the paper's 16-32 range and consistent.
	if a.SubarraysAlongWL < 16 || a.SubarraysAlongWL > 32 {
		t.Errorf("subarrays along WL: got %d, want within [16,32]", a.SubarraysAlongWL)
	}
	if a.LWDStripes != a.SubarraysAlongWL+1 {
		t.Errorf("LWD stripes: got %d, want %d", a.LWDStripes, a.SubarraysAlongWL+1)
	}
	if a.PageBits != a.SubarraysAlongWL*512 {
		t.Errorf("page bits: got %d, want %d", a.PageBits, a.SubarraysAlongWL*512)
	}
	if got := a.LocalBLLength.Micrometers(); math.Abs(got-84.48) > 1e-6 {
		t.Errorf("local BL length: got %gum, want 84.48um", got)
	}
	if got := a.MasterWLLength.Micrometers(); math.Abs(got-1900) > 1e-6 {
		t.Errorf("master WL length: got %gum, want 1900um", got)
	}
	if got := a.CSLLength.Micrometers(); math.Abs(got-1700) > 1e-6 {
		t.Errorf("CSL length: got %gum, want 1700um", got)
	}
}

func TestResolveArrayHorizontalBitlines(t *testing.T) {
	d := desc.Sample1GbDDR3()
	d.Floorplan.BitlineDir = desc.Horizontal
	a, err := ResolveArray(&d.Floorplan, units.Micrometers(1900), units.Micrometers(1700))
	if err != nil {
		t.Fatal(err)
	}
	// Axes swap: bitlines now run along the 1900um extent.
	subLen := 512 * 0.165 // um
	want := int((1900 - 20) / (subLen + 20))
	if a.SubarraysAlongBL != want {
		t.Errorf("subarrays along BL: got %d, want %d", a.SubarraysAlongBL, want)
	}
	if got := a.MasterWLLength.Micrometers(); math.Abs(got-1700) > 1e-6 {
		t.Errorf("master WL length: got %gum, want 1700um", got)
	}
}

func TestResolveArrayErrors(t *testing.T) {
	d := desc.Sample1GbDDR3()
	d.Floorplan.WordlinePitch = 0
	if _, err := ResolveArray(&d.Floorplan, 1, 1); err == nil {
		t.Error("expected error for zero pitch")
	}
	d = desc.Sample1GbDDR3()
	d.Floorplan.BitsPerBitline = 0
	if _, err := ResolveArray(&d.Floorplan, 1, 1); err == nil {
		t.Error("expected error for zero bits per bitline")
	}
}

func TestResolveArrayTinyBank(t *testing.T) {
	// A bank smaller than one sub-array still resolves to one sub-array.
	d := desc.Sample1GbDDR3()
	a, err := ResolveArray(&d.Floorplan, units.Micrometers(10), units.Micrometers(10))
	if err != nil {
		t.Fatal(err)
	}
	if a.SubarraysAlongBL != 1 || a.SubarraysAlongWL != 1 {
		t.Errorf("tiny bank: got %dx%d sub-arrays, want 1x1",
			a.SubarraysAlongBL, a.SubarraysAlongWL)
	}
}

// Property: die dimensions equal the sum of block extents, for random
// block sizes.
func TestPropGridSums(t *testing.T) {
	f := func(rawW, rawH [3]uint16) bool {
		fp := desc.Floorplan{
			HorizontalBlocks: []string{"A1", "B1", "C1"},
			VerticalBlocks:   []string{"A1", "B1"},
			BlockWidth:       map[string]units.Length{},
			BlockHeight:      map[string]units.Length{},
		}
		var sumW, sumH float64
		for i, n := range fp.HorizontalBlocks {
			w := float64(rawW[i]%5000+1) * 1e-6
			fp.BlockWidth[n] = units.Length(w)
			sumW += w
		}
		for i, n := range fp.VerticalBlocks {
			h := float64(rawH[i]%5000+1) * 1e-6
			fp.BlockHeight[n] = units.Length(h)
			sumH += h
		}
		g, err := NewGrid(&fp)
		if err != nil {
			return false
		}
		return math.Abs(float64(g.Width)-sumW) < 1e-12 &&
			math.Abs(float64(g.Height)-sumH) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Manhattan segment length is symmetric in start and end.
func TestPropSegmentSymmetric(t *testing.T) {
	_, g := sampleGrid(t)
	f := func(x1, y1, x2, y2 uint8) bool {
		a := desc.BlockRef{X: int(x1 % 7), Y: int(y1 % 5)}
		b := desc.BlockRef{X: int(x2 % 7), Y: int(y2 % 5)}
		s1 := &desc.Segment{Name: "Data1", Start: &a, End: &b}
		s2 := &desc.Segment{Name: "Data2", Start: &b, End: &a}
		l1, err1 := g.SegmentLength(s1)
		l2, err2 := g.SegmentLength(s2)
		return err1 == nil && err2 == nil && l1 == l2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
