// Package sensitivity implements the power-consumption Pareto of
// Section IV.B of the paper (Figure 10, Table III): every model parameter
// is varied by ±20 % and the resulting change of pattern power is
// recorded, ranking the parameters by their impact — "not only to learn
// where power can be saved but also which parameters need to be
// understood well to have an accurate model".
package sensitivity

import (
	"fmt"
	"runtime"
	"sort"

	"drampower/internal/core"
	"drampower/internal/desc"
	"drampower/internal/engine"
	"drampower/internal/units"
)

// Parameter is one knob of the sweep: a named, dimensionless scaling
// applied to a clone of the description.
type Parameter struct {
	// Name follows the paper's labels ("Internal voltage Vint",
	// "Specific wire capacitance", "Number of logic gates", ...).
	Name string
	// ExcludedFromChart marks parameters the paper leaves out of
	// Figure 10 (the external supply voltage, whose ±20 % trivially moves
	// power by 40 %).
	ExcludedFromChart bool
	// Apply scales the parameter by the given factor on d.
	Apply func(d *desc.Description, factor float64)
}

// Registry returns the swept parameters. Aggregate entries scale all
// members of a family together, mirroring the paper's grouping (e.g. one
// "Specific wire capacitance" knob, one "Number of logic gates" knob).
func Registry() []Parameter {
	scaleLen := func(l *units.Length, f float64) { *l = units.Length(float64(*l) * f) }
	return []Parameter{
		{Name: "External voltage Vdd", ExcludedFromChart: true,
			Apply: func(d *desc.Description, f float64) {
				d.Electrical.Vdd = units.Voltage(float64(d.Electrical.Vdd) * f)
			}},
		{Name: "Internal voltage Vint",
			Apply: func(d *desc.Description, f float64) {
				d.Electrical.Vint = units.Voltage(float64(d.Electrical.Vint) * f)
			}},
		{Name: "Bitline voltage",
			Apply: func(d *desc.Description, f float64) {
				d.Electrical.Vbl = units.Voltage(float64(d.Electrical.Vbl) * f)
			}},
		{Name: "Wordline voltage Vpp",
			Apply: func(d *desc.Description, f float64) {
				d.Electrical.Vpp = units.Voltage(float64(d.Electrical.Vpp) * f)
			}},
		{Name: "Generator efficiency Vint",
			Apply: func(d *desc.Description, f float64) {
				d.Electrical.EffInt = clampEff(d.Electrical.EffInt * f)
			}},
		{Name: "Generator efficiency bitline voltage",
			Apply: func(d *desc.Description, f float64) {
				d.Electrical.EffBl = clampEff(d.Electrical.EffBl * f)
			}},
		{Name: "Generator efficiency wordline voltage",
			Apply: func(d *desc.Description, f float64) {
				d.Electrical.EffPp = clampEff(d.Electrical.EffPp * f)
			}},
		{Name: "Constant current adder",
			Apply: func(d *desc.Description, f float64) {
				d.Electrical.ConstantCurrent = units.Current(float64(d.Electrical.ConstantCurrent) * f)
			}},
		{Name: "Specific wire capacitance",
			Apply: func(d *desc.Description, f float64) {
				t := &d.Technology
				t.WireCapSignal = units.CapacitancePerLength(float64(t.WireCapSignal) * f)
				t.WireCapMWL = units.CapacitancePerLength(float64(t.WireCapMWL) * f)
				t.WireCapLWL = units.CapacitancePerLength(float64(t.WireCapLWL) * f)
			}},
		{Name: "Bitline capacitance",
			Apply: func(d *desc.Description, f float64) {
				d.Technology.BitlineCap = d.Technology.BitlineCap.Times(f)
			}},
		{Name: "Cell capacitance",
			Apply: func(d *desc.Description, f float64) {
				d.Technology.CellCap = d.Technology.CellCap.Times(f)
			}},
		{Name: "Gate oxide thickness",
			Apply: func(d *desc.Description, f float64) {
				t := &d.Technology
				scaleLen(&t.GateOxideLogic, f)
				scaleLen(&t.GateOxideHV, f)
				scaleLen(&t.GateOxideCell, f)
			}},
		{Name: "Junction capacitance logic",
			Apply: func(d *desc.Description, f float64) {
				t := &d.Technology
				t.JunctionCapLogic = units.CapacitancePerLength(float64(t.JunctionCapLogic) * f)
				t.JunctionCapHV = units.CapacitancePerLength(float64(t.JunctionCapHV) * f)
			}},
		{Name: "Number of logic gates",
			Apply: func(d *desc.Description, f float64) {
				for i := range d.LogicBlocks {
					d.LogicBlocks[i].Gates = int(float64(d.LogicBlocks[i].Gates)*f + 0.5)
				}
			}},
		{Name: "Width NFET logic",
			Apply: func(d *desc.Description, f float64) {
				for i := range d.LogicBlocks {
					scaleLen(&d.LogicBlocks[i].AvgNMOSWidth, f)
				}
				for i := range d.Signals {
					scaleLen(&d.Signals[i].BufNWidth, f)
				}
			}},
		{Name: "Width PFET logic",
			Apply: func(d *desc.Description, f float64) {
				for i := range d.LogicBlocks {
					scaleLen(&d.LogicBlocks[i].AvgPMOSWidth, f)
				}
				for i := range d.Signals {
					scaleLen(&d.Signals[i].BufPWidth, f)
				}
			}},
		{Name: "Logic device density",
			Apply: func(d *desc.Description, f float64) {
				for i := range d.LogicBlocks {
					d.LogicBlocks[i].GateDensity = clampFrac(d.LogicBlocks[i].GateDensity * f)
				}
			}},
		{Name: "Logic wiring density",
			Apply: func(d *desc.Description, f float64) {
				for i := range d.LogicBlocks {
					d.LogicBlocks[i].WiringDensity = clampFrac(d.LogicBlocks[i].WiringDensity * f)
				}
			}},
		{Name: "Sense amplifier device width",
			Apply: func(d *desc.Description, f float64) {
				t := &d.Technology
				for _, w := range []*units.Length{
					&t.BLSASenseNMOSWidth, &t.BLSASensePMOSWidth,
					&t.BLSAEqualizeWidth, &t.BLSABitSwitchWidth,
					&t.BLSAMuxWidth, &t.BLSANSetWidth, &t.BLSAPSetWidth,
				} {
					scaleLen(w, f)
				}
			}},
		{Name: "Row driver device width",
			Apply: func(d *desc.Description, f float64) {
				t := &d.Technology
				for _, w := range []*units.Length{
					&t.MWLDecoderNMOS, &t.MWLDecoderPMOS,
					&t.WLControlLoadNMOS, &t.WLControlLoadPMOS,
					&t.SWDriverNMOS, &t.SWDriverPMOS, &t.SWDriverRestore,
				} {
					scaleLen(w, f)
				}
			}},
		{Name: "Cell access transistor size",
			Apply: func(d *desc.Description, f float64) {
				scaleLen(&d.Technology.CellAccessWidth, f)
				scaleLen(&d.Technology.CellAccessLength, f)
			}},
	}
}

func clampEff(e float64) float64 {
	if e > 1 {
		return 1
	}
	return e
}

func clampFrac(x float64) float64 {
	if x > 1 {
		return 1
	}
	return x
}

// Result records the power response of one parameter.
type Result struct {
	Name string
	// DeltaUpPct / DeltaDownPct are the relative power changes (percent)
	// at +20 % and −20 % of the parameter.
	DeltaUpPct, DeltaDownPct float64
	// RangePct is the full variation |P(+20%) − P(−20%)| / P(base), the
	// quantity of Figure 10 (40 % means directly proportional).
	RangePct float64
}

// Variation is the relative parameter excursion of the sweep (the paper
// uses ±20 %).
const Variation = 0.20

// Sweep varies every registry parameter on the given description and
// returns the results sorted by descending range, evaluating the
// description's pattern. Parameters excluded from the chart are omitted;
// use SweepAll to include them. Evaluation is serial; SweepOpts runs the
// same sweep on a worker pool.
func Sweep(d *desc.Description) ([]Result, error) {
	return SweepOpts(d, engine.Options{Workers: 1})
}

// SweepOpts is Sweep with batch-evaluation options: one worker per
// parameter up to the pool size (Workers <= 0 uses one worker per CPU).
// The results are identical to Sweep's for any worker count.
func SweepOpts(d *desc.Description, opts engine.Options) ([]Result, error) {
	all, err := SweepAllOpts(d, opts)
	if err != nil {
		return nil, err
	}
	return ChartRows(all), nil
}

// ChartRows filters a full sweep down to the Figure 10 chart rows,
// dropping parameters marked ExcludedFromChart (in place; the input
// slice is reused).
func ChartRows(all []Result) []Result {
	out := all[:0]
	excluded := map[string]bool{}
	for _, p := range Registry() {
		if p.ExcludedFromChart {
			excluded[p.Name] = true
		}
	}
	for _, r := range all {
		if !excluded[r.Name] {
			out = append(out, r)
		}
	}
	return out
}

// SweepAll is Sweep including chart-excluded parameters.
func SweepAll(d *desc.Description) ([]Result, error) {
	return SweepAllOpts(d, engine.Options{Workers: 1})
}

// SweepAllOpts is SweepAll with batch-evaluation options. Each parameter's
// up/down pair is one job: the jobs only read the shared base description
// (every evaluation works on its own deep clone), so any worker count
// produces the same results.
func SweepAllOpts(d *desc.Description, opts engine.Options) ([]Result, error) {
	return SweepCalibratedOpts(d, nil, opts)
}

// SweepCalibratedOpts runs the full sweep with a calibration overlay
// applied to the base and to every parameter variant. Scaling-style
// calibration entries compose naturally with the varied circuit
// parameters (the overlay ratio rides on top of each variant's derived
// value); absolute overrides pin their parameter and null its
// sensitivity, which is the physically honest reading of "this value was
// measured". A nil or empty overlay reproduces SweepAllOpts bit for bit.
func SweepCalibratedOpts(d *desc.Description, ov *desc.Overlay, opts engine.Options) ([]Result, error) {
	if sweepInline(opts) {
		opts = engine.Options{Workers: 1}
	}
	base, err := core.BuildCalibrated(d.Clone(), ov)
	if err != nil {
		return nil, err
	}
	// The IDD7 measurement pattern depends only on Spec-derived geometry
	// (bank count, burst and activation grouping), which no registry knob
	// touches — every variant would derive the identical pattern, so it is
	// derived once from the base and shared (the ledger each variant builds
	// is what differs; see TestSweepPatternInvariantAcrossKnobs).
	pattern := base.PatternIDD7(0.5)
	basePower := float64(base.EvaluatePattern(pattern).Power)
	if basePower <= 0 {
		return nil, fmt.Errorf("sensitivity: base power is %g", basePower)
	}

	eval := func(p Parameter, factor float64) (float64, error) {
		c := d.Clone()
		p.Apply(c, factor)
		m, err := core.BuildCalibrated(c, ov)
		if err != nil {
			return 0, fmt.Errorf("sensitivity: %s x%g: %w", p.Name, factor, err)
		}
		return float64(m.EvaluatePattern(pattern).Power), nil
	}

	results, err := engine.Map(Registry(), func(_ int, p Parameter) (Result, error) {
		up, err := eval(p, 1+Variation)
		if err != nil {
			return Result{}, err
		}
		down, err := eval(p, 1-Variation)
		if err != nil {
			return Result{}, err
		}
		return Result{
			Name:         p.Name,
			DeltaUpPct:   100 * (up - basePower) / basePower,
			DeltaDownPct: 100 * (down - basePower) / basePower,
			RangePct:     100 * abs(up-down) / basePower,
		}, nil
	}, opts)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(results, func(i, j int) bool {
		return results[i].RangePct > results[j].RangePct
	})
	return results, nil
}

// sweepInline reports whether the sweep should bypass parallel dispatch
// and take the engine's serial fast path (no goroutines, no channel
// traffic, jobs run on the caller). A sweep point is only two
// cached-ledger builds — tens of microseconds — so fan-out pays solely
// when there is real CPU parallelism to buy: with a single schedulable
// CPU, a one-worker pool, or an explicit single worker, dispatch is pure
// overhead and the inline path is strictly faster. Results are identical
// either way (the engine orders results by job index).
func sweepInline(opts engine.Options) bool {
	if runtime.GOMAXPROCS(0) == 1 {
		return true
	}
	if opts.Pool != nil {
		return opts.Pool.Size() == 1
	}
	return opts.Workers == 1
}

// Top returns the n highest-impact results (Table III shows the top 10).
func Top(results []Result, n int) []Result {
	if n > len(results) {
		n = len(results)
	}
	return results[:n]
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
