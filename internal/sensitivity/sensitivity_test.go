package sensitivity

import (
	"math"
	"runtime"
	"testing"

	"drampower/internal/core"
	"drampower/internal/desc"
	"drampower/internal/engine"
	"drampower/internal/scaling"
)

func sweepFor(t *testing.T, nm float64) []Result {
	t.Helper()
	n, err := scaling.NodeFor(nm)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sweep(n.Description())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func rankOf(results []Result, name string) int {
	for i, r := range results {
		if r.Name == name {
			return i + 1
		}
	}
	return -1
}

func TestRegistryApplies(t *testing.T) {
	// Every parameter must actually change the power when varied.
	d := desc.Sample1GbDDR3()
	res, err := SweepAll(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(Registry()) {
		t.Fatalf("results: got %d, want %d", len(res), len(Registry()))
	}
	for _, r := range res {
		if r.RangePct <= 0 {
			t.Errorf("parameter %q has no effect on power", r.Name)
		}
		if r.RangePct > 45 {
			t.Errorf("parameter %q range %.1f%% exceeds the direct-proportionality bound", r.Name, r.RangePct)
		}
	}
}

func TestResultsSorted(t *testing.T) {
	res := sweepFor(t, 55)
	for i := 1; i < len(res); i++ {
		if res[i].RangePct > res[i-1].RangePct+1e-12 {
			t.Errorf("results not sorted at %d: %g > %g", i, res[i].RangePct, res[i-1].RangePct)
		}
	}
}

func TestVddDirectlyProportional(t *testing.T) {
	// "A variation of 40% would mean that the power consumption is
	// directly proportional to the value of the varied parameter. This is
	// only the case for the external supply voltage Vdd which is not
	// shown in the chart."
	d := desc.Sample1GbDDR3()
	d.Electrical.ConstantCurrent = 0 // the constant sink scales linearly, not quadratically
	all, err := SweepAll(d)
	if err != nil {
		t.Fatal(err)
	}
	vdd := -1.0
	for _, r := range all {
		if r.Name == "External voltage Vdd" {
			vdd = r.RangePct
		}
	}
	if vdd < 0 {
		t.Fatal("Vdd not in SweepAll results")
	}
	if math.Abs(vdd-40) > 0.5 {
		t.Errorf("Vdd range: got %.2f%%, want 40%%", vdd)
	}
	// ... and it is excluded from the chart sweep.
	chart, err := Sweep(d)
	if err != nil {
		t.Fatal(err)
	}
	if rankOf(chart, "External voltage Vdd") != -1 {
		t.Error("Vdd should be excluded from the Figure 10 chart")
	}
	// Every charted parameter stays below direct proportionality.
	for _, r := range chart {
		if r.RangePct >= 40 {
			// Vint comes closest but must stay below 40 with the constant
			// sink removed... it can exceed 40*share only if share>1.
			if r.Name != "Internal voltage Vint" && r.RangePct > 40 {
				t.Errorf("%s: range %.1f%% exceeds 40%%", r.Name, r.RangePct)
			}
		}
	}
}

func TestTableIII_VintRanksFirstEverywhere(t *testing.T) {
	// Table III: "Internal voltage Vint" is the #1 sensitivity for the
	// 128M SDR 170nm, the 2G DDR3 55nm and the 16G DDR5 18nm device.
	for _, nm := range []float64{170, 55, 18} {
		res := sweepFor(t, nm)
		if got := res[0].Name; got != "Internal voltage Vint" {
			t.Errorf("%gnm: top sensitivity is %q, want Internal voltage Vint", nm, got)
		}
	}
}

func TestTableIII_ArrayAndLogicPresence(t *testing.T) {
	// Bitline voltage and bitline capacitance rank in the top 10 for the
	// DDR3 and DDR5 devices; the logic gate count ranks in the top 6
	// everywhere (Table III lists both families on every device).
	for _, nm := range []float64{170, 55, 18} {
		res := sweepFor(t, nm)
		if r := rankOf(res, "Number of logic gates"); r < 1 || r > 6 {
			t.Errorf("%gnm: Number of logic gates rank %d, want top 6", nm, r)
		}
	}
	for _, nm := range []float64{55, 18} {
		res := sweepFor(t, nm)
		if r := rankOf(res, "Bitline voltage"); r < 1 || r > 10 {
			t.Errorf("%gnm: Bitline voltage rank %d, want top 10", nm, r)
		}
		if r := rankOf(res, "Bitline capacitance"); r < 1 || r > 10 {
			t.Errorf("%gnm: Bitline capacitance rank %d, want top 10", nm, r)
		}
	}
}

func TestShiftTowardsWiringAndLogic(t *testing.T) {
	// Section IV.B: "Comparing the different DRAM generations shows a
	// shift from direct array related power consumption to signal wiring
	// and logic circuitry power consumption". The specific wire
	// capacitance sensitivity must grow from the SDR device to the DDR5
	// device.
	sdr := sweepFor(t, 170)
	ddr5 := sweepFor(t, 18)
	get := func(res []Result, name string) float64 {
		for _, r := range res {
			if r.Name == name {
				return r.RangePct
			}
		}
		t.Fatalf("parameter %q missing", name)
		return 0
	}
	wireSDR := get(sdr, "Specific wire capacitance")
	wireDDR5 := get(ddr5, "Specific wire capacitance")
	if wireDDR5 <= wireSDR {
		t.Errorf("wire capacitance sensitivity should grow: SDR %.1f%%, DDR5 %.1f%%",
			wireSDR, wireDDR5)
	}
}

func TestCellCapacitanceMattersLittle(t *testing.T) {
	// Section III.C: "The power consumption of a DRAM depends only very
	// little on the cell capacitance."
	for _, nm := range []float64{170, 55, 18} {
		res := sweepFor(t, nm)
		for _, r := range res {
			if r.Name == "Cell capacitance" && r.RangePct > 5 {
				t.Errorf("%gnm: cell capacitance range %.1f%%, expected small", nm, r.RangePct)
			}
		}
	}
}

func TestVoltageLinearity(t *testing.T) {
	// With the charge-referred supply accounting, power responds linearly
	// and symmetrically to each individual internal voltage (the
	// quadratic CV² response only appears when all voltages scale
	// together, i.e. for Vdd with derived domains — Section IV.B).
	res := sweepFor(t, 55)
	for _, r := range res {
		if r.Name == "Internal voltage Vint" || r.Name == "Bitline voltage" {
			if !(r.DeltaUpPct > 0 && r.DeltaDownPct < 0) {
				t.Errorf("%s: deltas not signed as expected: %+.1f / %+.1f",
					r.Name, r.DeltaUpPct, r.DeltaDownPct)
			}
			if math.Abs(r.DeltaUpPct+r.DeltaDownPct) > 0.05*math.Abs(r.DeltaUpPct) {
				t.Errorf("%s: response not symmetric: %+.1f / %+.1f",
					r.Name, r.DeltaUpPct, r.DeltaDownPct)
			}
		}
	}
}

func TestEfficiencyImprovesPower(t *testing.T) {
	// Better generator efficiency lowers power: DeltaUp negative.
	res := sweepFor(t, 55)
	for _, r := range res {
		switch r.Name {
		case "Generator efficiency Vint", "Generator efficiency bitline voltage",
			"Generator efficiency wordline voltage":
			if r.DeltaUpPct >= 0 {
				t.Errorf("%s: +20%% efficiency should reduce power, got %+.1f%%",
					r.Name, r.DeltaUpPct)
			}
		}
	}
}

func TestOxideThicknessInverse(t *testing.T) {
	// Thicker oxide means less gate capacitance and less power.
	res := sweepFor(t, 55)
	for _, r := range res {
		if r.Name == "Gate oxide thickness" && r.DeltaUpPct >= 0 {
			t.Errorf("thicker oxide should reduce power, got %+.1f%%", r.DeltaUpPct)
		}
	}
}

func TestTopHelper(t *testing.T) {
	res := sweepFor(t, 55)
	top := Top(res, 10)
	if len(top) != 10 {
		t.Fatalf("Top(10): got %d", len(top))
	}
	if len(Top(res, 1000)) != len(res) {
		t.Error("Top should clamp to available results")
	}
}

func TestSweepDoesNotMutateInput(t *testing.T) {
	d := desc.Sample1GbDDR3()
	before := desc.Format(d)
	if _, err := Sweep(d); err != nil {
		t.Fatal(err)
	}
	if desc.Format(d) != before {
		t.Error("Sweep mutated the input description")
	}
}

func TestSweepCalibratedEmptyOverlayIdentical(t *testing.T) {
	d := desc.Sample1GbDDR3()
	plain, err := SweepAllOpts(d, engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	calib, err := SweepCalibratedOpts(d, &desc.Overlay{Name: "noop"}, engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(calib) {
		t.Fatalf("result count differs: %d vs %d", len(plain), len(calib))
	}
	for i := range plain {
		if plain[i] != calib[i] {
			t.Errorf("result %d differs: %+v vs %+v", i, plain[i], calib[i])
		}
	}
}

func TestSweepCalibratedScalesRideAlong(t *testing.T) {
	d := desc.Sample1GbDDR3()
	ov, err := desc.ParseOverlayString("op.rd.energy *= 1.5\nstandby *= 1.5\n")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := SweepAllOpts(d, engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	calib, err := SweepCalibratedOpts(d, ov, engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A pure scaling keeps every sensitivity finite and the ranking
	// non-degenerate: the swept circuit parameters still move power.
	if len(calib) != len(plain) {
		t.Fatalf("result count differs")
	}
	var nonzero int
	for _, r := range calib {
		if r.RangePct > 0.01 {
			nonzero++
		}
	}
	if nonzero < len(calib)/2 {
		t.Errorf("calibrated sweep degenerate: only %d/%d parameters move power", nonzero, len(calib))
	}
}

// TestSweepPatternInvariantAcrossKnobs pins the precondition behind the
// sweep's shared-pattern optimization: SweepCalibratedOpts derives the
// IDD7 measurement pattern once from the base model and reuses it for
// every variant. That is only sound while no registry knob changes the
// Spec-derived pattern geometry (banks, bursts, activation grouping) —
// a future knob that does must fail here, not silently skew Figure 10.
func TestSweepPatternInvariantAcrossKnobs(t *testing.T) {
	d := desc.Sample1GbDDR3()
	base, err := core.BuildCalibrated(d.Clone(), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := base.PatternIDD7(0.5)
	for _, p := range Registry() {
		for _, f := range []float64{1 + Variation, 1 - Variation} {
			c := d.Clone()
			p.Apply(c, f)
			m, err := core.BuildCalibrated(c, nil)
			if err != nil {
				t.Fatalf("%s x%g: %v", p.Name, f, err)
			}
			got := m.PatternIDD7(0.5)
			if len(got.Loop) != len(want.Loop) {
				t.Fatalf("%s x%g: pattern length %d, base %d", p.Name, f, len(got.Loop), len(want.Loop))
			}
			for i := range got.Loop {
				if got.Loop[i] != want.Loop[i] {
					t.Fatalf("%s x%g: pattern diverges from base at op %d", p.Name, f, i)
				}
			}
		}
	}
}

// TestSweepInlineFallback pins the inline-dispatch decision: with one
// schedulable CPU (always true under GOMAXPROCS=1 runners), a one-worker
// pool or an explicit single worker, the sweep must take the serial fast
// path; otherwise parallel dispatch stands.
func TestSweepInlineFallback(t *testing.T) {
	pool1 := engine.NewPool(1)
	defer pool1.Close()
	pool4 := engine.NewPool(4)
	defer pool4.Close()
	single := runtime.GOMAXPROCS(0) == 1
	cases := []struct {
		name string
		opts engine.Options
		want bool
	}{
		{"serial", engine.Options{Workers: 1}, true},
		{"pool-of-one", engine.Options{Pool: pool1}, true},
		{"default", engine.Options{}, single},
		{"eight-workers", engine.Options{Workers: 8}, single},
		{"pool-of-four", engine.Options{Pool: pool4}, single},
	}
	for _, c := range cases {
		if got := sweepInline(c.opts); got != c.want {
			t.Errorf("sweepInline(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}
