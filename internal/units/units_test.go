package units

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Abs(want)+1e-30 {
		t.Errorf("%s: got %g, want %g", what, got, want)
	}
}

func TestParseLength(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"165nm", 165e-9},
		{"110nm", 110e-9},
		{"3396um", 3396e-6},
		{"3396µm", 3396e-6},
		{"0.2mm", 0.2e-3},
		{"1m", 1},
		{"2.5", 2.5}, // bare number = meters
		{"1e-6m", 1e-6},
	}
	for _, c := range cases {
		got, err := ParseLength(c.in)
		if err != nil {
			t.Fatalf("ParseLength(%q): %v", c.in, err)
		}
		approx(t, float64(got), c.want, 1e-12, "ParseLength("+c.in+")")
	}
}

func TestParseLengthErrors(t *testing.T) {
	for _, in := range []string{"", "nm", "12xF", "12qm", "12 parsecs"} {
		if _, err := ParseLength(in); err == nil {
			t.Errorf("ParseLength(%q): expected error", in)
		}
	}
}

func TestParseCapacitance(t *testing.T) {
	got, err := ParseCapacitance("80fF")
	if err != nil {
		t.Fatal(err)
	}
	approx(t, float64(got), 80e-15, 1e-12, "80fF")
	got, err = ParseCapacitance("1.4pF")
	if err != nil {
		t.Fatal(err)
	}
	approx(t, float64(got), 1.4e-12, 1e-12, "1.4pF")
}

func TestParseVoltage(t *testing.T) {
	got, err := ParseVoltage("1.5V")
	if err != nil {
		t.Fatal(err)
	}
	approx(t, float64(got), 1.5, 1e-12, "1.5V")
	got, err = ParseVoltage("2900mV")
	if err != nil {
		t.Fatal(err)
	}
	approx(t, float64(got), 2.9, 1e-12, "2900mV")
}

func TestParseFrequency(t *testing.T) {
	got, err := ParseFrequency("800MHz")
	if err != nil {
		t.Fatal(err)
	}
	approx(t, float64(got), 800e6, 1e-12, "800MHz")
}

func TestParseDataRate(t *testing.T) {
	for _, in := range []string{"1.6Gbps", "1.6Gbit/s", "1.6Gb/s"} {
		got, err := ParseDataRate(in)
		if err != nil {
			t.Fatalf("ParseDataRate(%q): %v", in, err)
		}
		approx(t, float64(got), 1.6e9, 1e-12, in)
	}
}

func TestParseDuration(t *testing.T) {
	got, err := ParseDuration("48.75ns")
	if err != nil {
		t.Fatal(err)
	}
	approx(t, float64(got), 48.75e-9, 1e-12, "48.75ns")
}

func TestParseCapacitancePerLength(t *testing.T) {
	got, err := ParseCapacitancePerLength("0.2fF/um")
	if err != nil {
		t.Fatal(err)
	}
	approx(t, float64(got), 0.2e-15/1e-6, 1e-12, "0.2fF/um")
	got, err = ParseCapacitancePerLength("200pF/m")
	if err != nil {
		t.Fatal(err)
	}
	approx(t, float64(got), 200e-12, 1e-12, "200pF/m")
}

func TestParseFraction(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"25%", 0.25},
		{"0.25", 0.25},
		{"1:8", 0.125},
		{"100%", 1},
		{"3:2", 1.5},
	}
	for _, c := range cases {
		got, err := ParseFraction(c.in)
		if err != nil {
			t.Fatalf("ParseFraction(%q): %v", c.in, err)
		}
		approx(t, got, c.want, 1e-12, "ParseFraction("+c.in+")")
	}
	for _, in := range []string{"", "x%", "1:0", "a:b"} {
		if _, err := ParseFraction(in); err == nil {
			t.Errorf("ParseFraction(%q): expected error", in)
		}
	}
}

func TestSwitchingEnergy(t *testing.T) {
	// ½·C·V²: 100fF at 1.5V = 112.5fJ
	e := SwitchingEnergy(Femtofarads(100), 1.5)
	approx(t, float64(e), 112.5e-15, 1e-12, "switching energy")
}

func TestChargeCurrentPower(t *testing.T) {
	q := ChargeFor(Picofarads(1), 1.0) // 1pC
	i := q.CurrentAt(Megahertz(100))   // 1pC * 100MHz = 100uA
	approx(t, float64(i), 100e-6, 1e-12, "current")
	e := SwitchingEnergy(Picofarads(2), 2) // 4pJ
	p := e.PowerAt(Megahertz(1))           // 4uW
	approx(t, float64(p), 4e-6, 1e-12, "power")
}

func TestPeriodFrequencyInverse(t *testing.T) {
	f := Megahertz(800)
	approx(t, float64(f.Period()), 1.25e-9, 1e-12, "period")
	if got := Frequency(0).Period(); got != 0 {
		t.Errorf("zero frequency period: got %v", got)
	}
	if got := Duration(0).Frequency(); got != 0 {
		t.Errorf("zero duration frequency: got %v", got)
	}
}

func TestFormatSI(t *testing.T) {
	cases := []struct {
		v    float64
		unit string
		want string
	}{
		{80e-15, "F", "80fF"},
		{1.5, "V", "1.5V"},
		{800e6, "Hz", "800MHz"},
		{0, "W", "0W"},
		{48.75e-9, "s", "48.75ns"},
		{-3e-3, "A", "-3mA"},
	}
	for _, c := range cases {
		if got := FormatSI(c.v, c.unit); got != c.want {
			t.Errorf("FormatSI(%g, %q) = %q, want %q", c.v, c.unit, got, c.want)
		}
	}
}

// Property: switching energy is quadratic in voltage.
func TestPropEnergyQuadraticInVoltage(t *testing.T) {
	f := func(cRaw, vRaw float64) bool {
		c := Capacitance(math.Abs(math.Mod(cRaw, 1e-9)))
		v := Voltage(math.Abs(math.Mod(vRaw, 10)))
		e1 := SwitchingEnergy(c, v)
		e2 := SwitchingEnergy(c, 2*v)
		return math.Abs(float64(e2)-4*float64(e1)) <= 1e-9*math.Abs(float64(e2))+1e-30
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: charge and current scale linearly with capacitance and frequency.
func TestPropCurrentLinear(t *testing.T) {
	f := func(cRaw, fRaw float64) bool {
		c := Capacitance(math.Abs(math.Mod(cRaw, 1e-9)))
		fq := Frequency(math.Abs(math.Mod(fRaw, 1e10)))
		q := ChargeFor(c, 1)
		i1 := q.CurrentAt(fq)
		i2 := q.Times(2).CurrentAt(fq)
		return math.Abs(float64(i2)-2*float64(i1)) <= 1e-9*math.Abs(float64(i2))+1e-30
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: parse/format round trip for lengths within format precision.
func TestPropLengthRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		v := math.Abs(math.Mod(raw, 1e-3))
		if v < 1e-12 {
			return true // below femto formatting range
		}
		s := Length(v).String()
		back, err := ParseLength(s)
		if err != nil {
			return false
		}
		return math.Abs(float64(back)-v) <= 1e-3*v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
