// Package units provides typed physical quantities in SI base units,
// together with parsing and formatting of engineering notation such as
// "165nm", "80fF", "1.6Gbps" or "800MHz".
//
// The DRAM description language (package desc) is written almost entirely
// in terms of these quantities, and the power engine (package core) keeps
// all arithmetic in SI base units so that ½·C·V²·f directly yields watts.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Length is a physical length in meters.
type Length float64

// Capacitance is an electrical capacitance in farads.
type Capacitance float64

// Voltage is an electrical potential in volts.
type Voltage float64

// Duration is a time span in seconds. The name avoids a clash with
// time.Duration, which has nanosecond integer resolution and is not
// convenient for picosecond-scale analog quantities.
type Duration float64

// Frequency is a rate in hertz.
type Frequency float64

// Power is a power in watts.
type Power float64

// Current is an electrical current in amperes.
type Current float64

// Charge is an electrical charge in coulombs.
type Charge float64

// Energy is an energy in joules.
type Energy float64

// DataRate is a data rate in bits per second.
type DataRate float64

// CapacitancePerLength is a specific wire capacitance in farads per meter.
type CapacitancePerLength float64

// Area is an area in square meters.
type Area float64

// Common scale constants, usable as e.g. 165 * units.Nano * units.Length(1)
// or simply units.Nanometers(165).
const (
	Femto = 1e-15
	Pico  = 1e-12
	Nano  = 1e-9
	Micro = 1e-6
	Milli = 1e-3
	Kilo  = 1e3
	Mega  = 1e6
	Giga  = 1e9
	Tera  = 1e12
)

// Nanometers returns a Length of n nanometers.
func Nanometers(n float64) Length { return Length(n * Nano) }

// Micrometers returns a Length of n micrometers.
func Micrometers(n float64) Length { return Length(n * Micro) }

// Millimeters returns a Length of n millimeters.
func Millimeters(n float64) Length { return Length(n * Milli) }

// Femtofarads returns a Capacitance of n femtofarads.
func Femtofarads(n float64) Capacitance { return Capacitance(n * Femto) }

// Picofarads returns a Capacitance of n picofarads.
func Picofarads(n float64) Capacitance { return Capacitance(n * Pico) }

// Nanoseconds returns a Duration of n nanoseconds.
func Nanoseconds(n float64) Duration { return Duration(n * Nano) }

// Megahertz returns a Frequency of n megahertz.
func Megahertz(n float64) Frequency { return Frequency(n * Mega) }

// Gbps returns a DataRate of n gigabits per second.
func Gbps(n float64) DataRate { return DataRate(n * Giga) }

// Milliamps returns a Current of n milliamperes.
func Milliamps(n float64) Current { return Current(n * Milli) }

// Milliwatts returns a Power of n milliwatts.
func Milliwatts(n float64) Power { return Power(n * Milli) }

// Picojoules returns an Energy of n picojoules.
func Picojoules(n float64) Energy { return Energy(n * Pico) }

// FemtofaradsPerMicrometer returns a specific wire capacitance of
// n fF/µm, the customary unit for on-chip wiring (1 fF/µm = 1e-9 F/m).
func FemtofaradsPerMicrometer(n float64) CapacitancePerLength {
	return CapacitancePerLength(n * Femto / Micro)
}

// Micrometers reports the length in micrometers.
func (l Length) Micrometers() float64 { return float64(l) / Micro }

// Nanometers reports the length in nanometers.
func (l Length) Nanometers() float64 { return float64(l) / Nano }

// Femtofarads reports the capacitance in femtofarads.
func (c Capacitance) Femtofarads() float64 { return float64(c) / Femto }

// Picofarads reports the capacitance in picofarads.
func (c Capacitance) Picofarads() float64 { return float64(c) / Pico }

// Nanoseconds reports the duration in nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / Nano }

// Megahertz reports the frequency in megahertz.
func (f Frequency) Megahertz() float64 { return float64(f) / Mega }

// Gbps reports the data rate in gigabits per second.
func (r DataRate) Gbps() float64 { return float64(r) / Giga }

// Milliamps reports the current in milliamperes.
func (i Current) Milliamps() float64 { return float64(i) / Milli }

// Milliwatts reports the power in milliwatts.
func (p Power) Milliwatts() float64 { return float64(p) / Milli }

// Picojoules reports the energy in picojoules.
func (e Energy) Picojoules() float64 { return float64(e) / Pico }

// Period returns the cycle time of the frequency, or 0 for f == 0.
func (f Frequency) Period() Duration {
	if f == 0 {
		return 0
	}
	return Duration(1 / float64(f))
}

// Frequency returns the repetition rate of the duration, or 0 for d == 0.
func (d Duration) Frequency() Frequency {
	if d == 0 {
		return 0
	}
	return Frequency(1 / float64(d))
}

// SwitchingEnergy returns the energy dissipated when charging or
// discharging capacitance c across voltage v: ε = ½·C·V² (paper Eq. 1).
func SwitchingEnergy(c Capacitance, v Voltage) Energy {
	return Energy(0.5 * float64(c) * float64(v) * float64(v))
}

// ChargeFor returns the charge moved when capacitance c swings by v:
// Q = C·V.
func ChargeFor(c Capacitance, v Voltage) Charge {
	return Charge(float64(c) * float64(v))
}

// CurrentAt converts a charge moved per event into the average current when
// the event repeats with frequency f: I = Q·f.
func (q Charge) CurrentAt(f Frequency) Current {
	return Current(float64(q) * float64(f))
}

// PowerAt converts an energy per event into average power at repetition
// frequency f: P = ε·f.
func (e Energy) PowerAt(f Frequency) Power {
	return Power(float64(e) * float64(f))
}

// Times scales the charge by a dimensionless factor.
func (q Charge) Times(x float64) Charge { return Charge(float64(q) * x) }

// Times scales the energy by a dimensionless factor.
func (e Energy) Times(x float64) Energy { return Energy(float64(e) * x) }

// Times scales the capacitance by a dimensionless factor.
func (c Capacitance) Times(x float64) Capacitance { return Capacitance(float64(c) * x) }

// siPrefixes maps metric prefix runes to their multiplier. "u" and "µ" are
// both accepted for micro.
var siPrefixes = map[string]float64{
	"f": Femto, "p": Pico, "n": Nano, "u": Micro, "µ": Micro,
	"m": Milli, "k": Kilo, "K": Kilo, "M": Mega, "G": Giga, "T": Tera,
	"": 1,
}

// splitNumber splits s into its leading numeric part and trailing suffix.
func splitNumber(s string) (num float64, suffix string, err error) {
	s = strings.TrimSpace(s)
	i := 0
	for i < len(s) {
		c := s[i]
		if (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' ||
			c == 'e' || c == 'E' {
			// Accept 'e'/'E' only when followed by a digit or sign so that
			// unit strings like "80fF" don't swallow the 'F'.
			if c == 'e' || c == 'E' {
				if i+1 >= len(s) {
					break
				}
				n := s[i+1]
				if !(n >= '0' && n <= '9') && n != '-' && n != '+' {
					break
				}
			}
			i++
			continue
		}
		break
	}
	if i == 0 {
		return 0, "", fmt.Errorf("units: %q has no numeric part", s)
	}
	num, err = strconv.ParseFloat(s[:i], 64)
	if err != nil {
		return 0, "", fmt.Errorf("units: bad number in %q: %v", s, err)
	}
	return num, strings.TrimSpace(s[i:]), nil
}

// parseWithUnit parses a number followed by an optional SI prefix and the
// given base unit symbol(s). An empty suffix is accepted and means the base
// unit (value in SI base units).
func parseWithUnit(s string, base ...string) (float64, error) {
	num, suffix, err := splitNumber(s)
	if err != nil {
		return 0, err
	}
	if suffix == "" {
		return num, nil
	}
	for _, b := range base {
		if !strings.HasSuffix(suffix, b) {
			continue
		}
		prefix := strings.TrimSuffix(suffix, b)
		mult, ok := siPrefixes[prefix]
		if !ok {
			return 0, fmt.Errorf("units: unknown SI prefix %q in %q", prefix, s)
		}
		return num * mult, nil
	}
	return 0, fmt.Errorf("units: %q does not end in one of %v", s, base)
}

// ParseLength parses strings such as "165nm", "3396um", "0.11µm", "1mm".
func ParseLength(s string) (Length, error) {
	v, err := parseWithUnit(s, "m")
	return Length(v), err
}

// ParseCapacitance parses strings such as "80fF", "1.2pF".
func ParseCapacitance(s string) (Capacitance, error) {
	v, err := parseWithUnit(s, "F")
	return Capacitance(v), err
}

// ParseVoltage parses strings such as "1.5V", "2900mV".
func ParseVoltage(s string) (Voltage, error) {
	v, err := parseWithUnit(s, "V")
	return Voltage(v), err
}

// ParseCurrent parses strings such as "58mA", "1.2A".
func ParseCurrent(s string) (Current, error) {
	v, err := parseWithUnit(s, "A")
	return Current(v), err
}

// ParsePower parses strings such as "45mW", "1.1W".
func ParsePower(s string) (Power, error) {
	v, err := parseWithUnit(s, "W")
	return Power(v), err
}

// ParseEnergy parses strings such as "2.4nJ", "135pJ".
func ParseEnergy(s string) (Energy, error) {
	v, err := parseWithUnit(s, "J")
	return Energy(v), err
}

// ParseDuration parses strings such as "48.75ns", "13.75ns", "7.8us".
func ParseDuration(s string) (Duration, error) {
	v, err := parseWithUnit(s, "s")
	return Duration(v), err
}

// ParseFrequency parses strings such as "800MHz", "1.6GHz".
func ParseFrequency(s string) (Frequency, error) {
	v, err := parseWithUnit(s, "Hz")
	return Frequency(v), err
}

// ParseDataRate parses strings such as "1.6Gbps", "533Mbps", "800Mbit/s".
func ParseDataRate(s string) (DataRate, error) {
	v, err := parseWithUnit(s, "bps", "bit/s", "b/s")
	return DataRate(v), err
}

// ParseCapacitancePerLength parses specific wire capacitance such as
// "0.2fF/um", "200pF/m".
func ParseCapacitancePerLength(s string) (CapacitancePerLength, error) {
	parts := strings.SplitN(s, "/", 2)
	if len(parts) != 2 {
		// Bare number: already F/m.
		num, suffix, err := splitNumber(s)
		if err != nil {
			return 0, err
		}
		if suffix != "" {
			return 0, fmt.Errorf("units: %q is not a capacitance per length", s)
		}
		return CapacitancePerLength(num), nil
	}
	c, err := ParseCapacitance(parts[0])
	if err != nil {
		return 0, err
	}
	// The denominator is a bare unit like "um" or "m" (no number).
	l, err := ParseLength("1" + strings.TrimSpace(parts[1]))
	if err != nil {
		return 0, err
	}
	if l == 0 {
		return 0, fmt.Errorf("units: zero denominator in %q", s)
	}
	return CapacitancePerLength(float64(c) / float64(l)), nil
}

// ParseFraction parses "25%", "0.25" or "1:8"-style ratios into a plain
// float64 fraction (0.25, 0.25, 0.125 respectively).
func ParseFraction(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if strings.Contains(s, ":") {
		parts := strings.SplitN(s, ":", 2)
		a, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		b, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err1 != nil || err2 != nil || b == 0 {
			return 0, fmt.Errorf("units: bad ratio %q", s)
		}
		return a / b, nil
	}
	if strings.HasSuffix(s, "%") {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			return 0, fmt.Errorf("units: bad percentage %q", s)
		}
		return v / 100, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad fraction %q", s)
	}
	return v, nil
}

// FormatSI renders v with an engineering SI prefix and the given unit
// symbol, e.g. FormatSI(8e-14, "F") == "80fF".
func FormatSI(v float64, unit string) string {
	if v == 0 {
		return "0" + unit
	}
	type step struct {
		mult float64
		pfx  string
	}
	steps := []step{
		{Tera, "T"}, {Giga, "G"}, {Mega, "M"}, {Kilo, "k"},
		{1, ""}, {Milli, "m"}, {Micro, "u"}, {Nano, "n"},
		{Pico, "p"}, {Femto, "f"},
	}
	abs := math.Abs(v)
	for _, st := range steps {
		if abs >= st.mult*0.9995 {
			return trimFloat(v/st.mult) + st.pfx + unit
		}
	}
	last := steps[len(steps)-1]
	return trimFloat(v/last.mult) + last.pfx + unit
}

// trimFloat formats f with up to 4 significant digits, trimming zeros.
func trimFloat(f float64) string {
	s := strconv.FormatFloat(f, 'g', 4, 64)
	return s
}

// String renders the length in engineering notation.
func (l Length) String() string { return FormatSI(float64(l), "m") }

// String renders the capacitance in engineering notation.
func (c Capacitance) String() string { return FormatSI(float64(c), "F") }

// String renders the voltage in engineering notation.
func (v Voltage) String() string { return FormatSI(float64(v), "V") }

// String renders the duration in engineering notation.
func (d Duration) String() string { return FormatSI(float64(d), "s") }

// String renders the frequency in engineering notation.
func (f Frequency) String() string { return FormatSI(float64(f), "Hz") }

// String renders the power in engineering notation.
func (p Power) String() string { return FormatSI(float64(p), "W") }

// String renders the current in engineering notation.
func (i Current) String() string { return FormatSI(float64(i), "A") }

// String renders the charge in engineering notation.
func (q Charge) String() string { return FormatSI(float64(q), "C") }

// String renders the energy in engineering notation.
func (e Energy) String() string { return FormatSI(float64(e), "J") }

// String renders the data rate in engineering notation.
func (r DataRate) String() string { return FormatSI(float64(r), "bps") }
