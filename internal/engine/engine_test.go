package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunOrderIsDeterministic(t *testing.T) {
	// Jobs finish in reverse submission order; results must still come
	// back in submission order.
	const n = 16
	jobs := make([]func() (int, error), n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = func() (int, error) {
			time.Sleep(time.Duration(n-i) * time.Millisecond)
			return i * i, nil
		}
	}
	got, err := Run(jobs, Options{Workers: n})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Errorf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestRunFirstErrorAndPartialResults(t *testing.T) {
	sentinel3 := errors.New("job 3 failed")
	sentinel7 := errors.New("job 7 failed")
	jobs := make([]func() (string, error), 10)
	var ran atomic.Int32
	for i := range jobs {
		i := i
		jobs[i] = func() (string, error) {
			ran.Add(1)
			switch i {
			case 3:
				return "", sentinel3
			case 7:
				return "", sentinel7
			}
			return fmt.Sprintf("ok-%d", i), nil
		}
	}
	got, err := Run(jobs, Options{Workers: 4})
	if !errors.Is(err, sentinel3) {
		t.Errorf("error = %v, want first error (job 3)", err)
	}
	if ran.Load() != 10 {
		t.Errorf("ran %d jobs, want all 10 despite failures", ran.Load())
	}
	if got[3] != "" || got[7] != "" {
		t.Errorf("failed slots not zeroed: %q, %q", got[3], got[7])
	}
	if got[0] != "ok-0" || got[9] != "ok-9" {
		t.Errorf("partial results lost: %q, %q", got[0], got[9])
	}
}

func TestRunEmptyAndSingle(t *testing.T) {
	if got, err := Run[int](nil, Options{}); err != nil || len(got) != 0 {
		t.Errorf("empty run: %v, %v", got, err)
	}
	got, err := Run([]func() (int, error){func() (int, error) { return 42, nil }}, Options{Workers: 8})
	if err != nil || len(got) != 1 || got[0] != 42 {
		t.Errorf("single run: %v, %v", got, err)
	}
}

func TestWorkersClamp(t *testing.T) {
	cases := []struct {
		workers, jobs, want int
	}{
		{0, 100, 0},  // 0 -> NumCPU (exact value machine-dependent; want>0 checked below)
		{-5, 100, 0}, // negative -> NumCPU
		{8, 3, 3},    // never more workers than jobs
		{1, 10, 1},
		{4, 10, 4},
	}
	for _, c := range cases {
		got := Options{Workers: c.workers}.workers(c.jobs)
		if c.want > 0 && got != c.want {
			t.Errorf("Options{%d}.workers(%d) = %d, want %d", c.workers, c.jobs, got, c.want)
		}
		if got < 1 || got > c.jobs {
			t.Errorf("Options{%d}.workers(%d) = %d outside [1,%d]", c.workers, c.jobs, got, c.jobs)
		}
	}
}

func TestMapPassesIndexAndItem(t *testing.T) {
	items := []string{"a", "b", "c"}
	got, err := Map(items, func(i int, s string) (string, error) {
		return fmt.Sprintf("%d:%s", i, s), nil
	}, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"0:a", "1:b", "2:c"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("map[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRunSerialMatchesParallel(t *testing.T) {
	jobs := make([]func() (float64, error), 33)
	for i := range jobs {
		i := i
		jobs[i] = func() (float64, error) { return float64(i) * 1.5, nil }
	}
	serial, err1 := Run(jobs, Options{Workers: 1})
	parallel, err2 := Run(jobs, Options{Workers: 8})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("serial[%d]=%v parallel[%d]=%v", i, serial[i], i, parallel[i])
		}
	}
}

func TestPoolRunMatchesSerial(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	jobs := make([]func() (float64, error), 57)
	for i := range jobs {
		i := i
		jobs[i] = func() (float64, error) { return float64(i) * 0.5, nil }
	}
	serial, err1 := Run(jobs, Options{Workers: 1})
	pooled, err2 := Run(jobs, Options{Pool: pool})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := range serial {
		if serial[i] != pooled[i] {
			t.Errorf("serial[%d]=%v pooled[%d]=%v", i, serial[i], i, pooled[i])
		}
	}
}

func TestPoolSharedAcrossConcurrentCalls(t *testing.T) {
	// Many concurrent Run calls share one pool; every call still gets
	// complete, ordered results and first-error semantics.
	pool := NewPool(3)
	defer pool.Close()
	var wg sync.WaitGroup
	const callers = 16
	errCh := make(chan error, callers)
	for c := 0; c < callers; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := Map(make([]int, 25), func(i int, _ int) (int, error) {
				if c == 7 && i == 13 {
					return 0, errors.New("boom")
				}
				return c*100 + i, nil
			}, Options{Pool: pool})
			if c == 7 {
				if err == nil || err.Error() != "boom" {
					errCh <- fmt.Errorf("caller 7: err = %v, want boom", err)
					return
				}
			} else if err != nil {
				errCh <- fmt.Errorf("caller %d: unexpected err %v", c, err)
				return
			}
			for i, v := range out {
				if c == 7 && i == 13 {
					if v != 0 {
						errCh <- fmt.Errorf("caller 7 slot 13 = %d, want zero value", v)
						return
					}
					continue
				}
				if v != c*100+i {
					errCh <- fmt.Errorf("caller %d slot %d = %d", c, i, v)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

func TestPoolWorkersOneStaysSerial(t *testing.T) {
	// Workers == 1 must bypass the pool entirely: jobs run on the caller's
	// goroutine even when a pool is supplied.
	pool := NewPool(2)
	defer pool.Close()
	caller := make(chan struct{})
	done := false
	jobs := []func() (int, error){
		func() (int, error) { done = true; close(caller); return 1, nil },
	}
	out, err := Run(jobs, Options{Workers: 1, Pool: pool})
	<-caller
	if err != nil || out[0] != 1 || !done {
		t.Fatalf("serial-with-pool run: out=%v err=%v done=%v", out, err, done)
	}
}

func TestReentrantRunOnPoolExecutesInline(t *testing.T) {
	// A job that itself calls Run/Map on the same pool used to deadlock
	// once every worker was occupied: the inner submission waited for a
	// slot only the waiting workers could free. Re-entrant submissions are
	// now detected and executed inline on the submitting worker.
	pool := NewPool(2)
	defer pool.Close()

	run := func() error {
		outer := make([]func() (int, error), 4)
		for i := range outer {
			i := i
			outer[i] = func() (int, error) {
				inner := []func() (int, error){
					func() (int, error) { return 10 * i, nil },
					func() (int, error) { return 10*i + 1, nil },
				}
				vals, err := Run(inner, Options{Pool: pool})
				if err != nil {
					return 0, err
				}
				return vals[0] + vals[1], nil
			}
		}
		out, err := Run(outer, Options{Pool: pool})
		if err != nil {
			return err
		}
		for i, v := range out {
			if want := 20*i + 1; v != want {
				return fmt.Errorf("job %d = %d, want %d", i, v, want)
			}
		}
		return nil
	}

	done := make(chan error, 1)
	go func() { done <- run() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("nested Run on the shared pool deadlocked")
	}
}
