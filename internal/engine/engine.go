// Package engine is the shared batch-evaluation layer of the model: a
// bounded worker pool that fans independent evaluation jobs out across
// CPUs and collects their results in deterministic (submission) order.
//
// The paper's program flow (Section III.B.6, Figure 4) resolves a
// description once and then evaluates many operating points against it —
// the sensitivity sweep builds ~40 model variants, the scheme comparison
// six, the datasheet verification a dozen, the generation-trend builder
// one per roadmap node. All of those call sites are embarrassingly
// parallel: every job clones its inputs, builds its own Model and reads
// only immutable cached state. This package gives them one execution
// substrate instead of four hand-rolled serial loops.
//
// Semantics:
//
//   - Results are returned in job order regardless of completion order,
//     so a parallel run is byte-identical to a serial one.
//   - Every job runs even if an earlier job failed ("partial results"):
//     the result slice always has one slot per job, holding the zero
//     value for failed jobs.
//   - The returned error is the first failure in job order (not in
//     completion order), wrapped untouched so errors.As/Is keep working.
//   - Workers <= 0 selects runtime.NumCPU(); the pool never exceeds the
//     job count and never goes below one worker.
package engine

import (
	"runtime"
	"sync"
)

// Options configures a batch evaluation.
type Options struct {
	// Workers bounds the worker pool. Zero or negative selects
	// runtime.NumCPU(). One worker reproduces the serial evaluation
	// exactly (same order, same allocations per job).
	Workers int
}

// workers resolves the pool size for n jobs.
func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes the jobs on a bounded worker pool and returns their
// results in job order. All jobs are attempted; the error is the first
// failure in job order, with the zero value left in that job's result
// slot (first-error + partial-results semantics).
func Run[T any](jobs []func() (T, error), opts Options) ([]T, error) {
	results := make([]T, len(jobs))
	if len(jobs) == 0 {
		return results, nil
	}
	errs := make([]error, len(jobs))
	w := opts.workers(len(jobs))
	if w == 1 {
		// Serial fast path: no goroutines, no channel traffic.
		for i, job := range jobs {
			results[i], errs[i] = job()
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(w)
		for g := 0; g < w; g++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					results[i], errs[i] = jobs[i]()
				}
			}()
		}
		for i := range jobs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// Map runs f over every item on the worker pool and returns the outputs
// in item order. f receives the item index alongside the item so error
// messages and labels can be positional. Semantics match Run.
func Map[In, Out any](items []In, f func(i int, item In) (Out, error), opts Options) ([]Out, error) {
	jobs := make([]func() (Out, error), len(items))
	for i := range items {
		i := i
		jobs[i] = func() (Out, error) { return f(i, items[i]) }
	}
	return Run(jobs, opts)
}
