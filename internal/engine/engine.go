// Package engine is the shared batch-evaluation layer of the model: a
// bounded worker pool that fans independent evaluation jobs out across
// CPUs and collects their results in deterministic (submission) order.
//
// The paper's program flow (Section III.B.6, Figure 4) resolves a
// description once and then evaluates many operating points against it —
// the sensitivity sweep builds ~40 model variants, the scheme comparison
// six, the datasheet verification a dozen, the generation-trend builder
// one per roadmap node. All of those call sites are embarrassingly
// parallel: every job clones its inputs, builds its own Model and reads
// only immutable cached state. This package gives them one execution
// substrate instead of four hand-rolled serial loops.
//
// Semantics:
//
//   - Results are returned in job order regardless of completion order,
//     so a parallel run is byte-identical to a serial one.
//   - Every job runs even if an earlier job failed ("partial results"):
//     the result slice always has one slot per job, holding the zero
//     value for failed jobs.
//   - The returned error is the first failure in job order (not in
//     completion order), wrapped untouched so errors.As/Is keep working.
//   - Workers <= 0 selects runtime.NumCPU(); the pool never exceeds the
//     job count and never goes below one worker.
package engine

import (
	"runtime"
	"sync"
)

// Options configures a batch evaluation.
type Options struct {
	// Workers bounds the worker pool. Zero or negative selects
	// runtime.NumCPU(). One worker reproduces the serial evaluation
	// exactly (same order, same allocations per job).
	Workers int
	// Pool, when set, executes the jobs on a shared long-lived worker
	// pool instead of spawning per-call goroutines. A long-running
	// process (the dramserved server) creates one Pool at startup and
	// threads it through every batch call, so concurrent requests share
	// one bounded set of CPU workers instead of multiplying goroutines.
	// Workers == 1 still forces the serial fast path; otherwise Workers
	// is ignored when Pool is set (the pool's size bounds parallelism).
	Pool *Pool
}

// Pool is a fixed set of long-lived workers shared across many Run/Map
// calls, typically across concurrent server requests. Jobs from separate
// calls interleave on the same workers, which caps the process's total
// evaluation parallelism at the pool size regardless of request
// concurrency. A Run/Map call issued from inside a pool worker (a job
// that itself fans out) is detected and executed inline on that worker
// instead of being resubmitted — resubmission could deadlock with every
// worker waiting for capacity only they can free. Inline execution keeps
// the deterministic result order; it merely forgoes extra parallelism for
// the nested batch.
type Pool struct {
	jobs chan func()
	size int
	// workerIDs holds the goroutine IDs of the pool's workers, so run can
	// recognize a re-entrant submission from one of its own workers.
	workerIDs sync.Map // map[int64]struct{}
}

// NewPool starts a pool of the given size (<= 0 selects runtime.NumCPU()).
func NewPool(size int) *Pool {
	if size <= 0 {
		size = runtime.NumCPU()
	}
	p := &Pool{jobs: make(chan func()), size: size}
	for i := 0; i < size; i++ {
		go func() {
			p.workerIDs.Store(goid(), struct{}{})
			defer p.workerIDs.Delete(goid())
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// goid returns the current goroutine's ID, parsed from the runtime.Stack
// header ("goroutine 123 [running]:"). The runtime intentionally offers
// no cheaper accessor; one small fixed-buffer Stack call per Pool.run
// submission (not per job) is an acceptable price for making re-entrant
// submissions safe.
func goid() int64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	var id int64
	for _, c := range buf[len("goroutine "):n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	return id
}

// Size returns the worker count.
func (p *Pool) Size() int { return p.size }

// Close stops the workers after the queued jobs finish. Run calls in
// flight must have completed; submitting after Close panics.
func (p *Pool) Close() { close(p.jobs) }

// run executes the jobs on the shared workers and blocks until all are
// done. Result order is by job index, as in Run. Called from inside one
// of p's own workers it executes the jobs inline instead (see Pool).
func (p *Pool) run(n int, exec func(i int)) {
	if _, reentrant := p.workerIDs.Load(goid()); reentrant {
		for i := 0; i < n; i++ {
			exec(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		p.jobs <- func() {
			defer wg.Done()
			exec(i)
		}
	}
	wg.Wait()
}

// workers resolves the pool size for n jobs.
func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes the jobs on a bounded worker pool and returns their
// results in job order. All jobs are attempted; the error is the first
// failure in job order, with the zero value left in that job's result
// slot (first-error + partial-results semantics).
func Run[T any](jobs []func() (T, error), opts Options) ([]T, error) {
	results := make([]T, len(jobs))
	if len(jobs) == 0 {
		return results, nil
	}
	errs := make([]error, len(jobs))
	w := opts.workers(len(jobs))
	if w == 1 {
		// Serial fast path: no goroutines, no channel traffic.
		for i, job := range jobs {
			results[i], errs[i] = job()
		}
	} else if opts.Pool != nil {
		opts.Pool.run(len(jobs), func(i int) {
			results[i], errs[i] = jobs[i]()
		})
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(w)
		for g := 0; g < w; g++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					results[i], errs[i] = jobs[i]()
				}
			}()
		}
		for i := range jobs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// Map runs f over every item on the worker pool and returns the outputs
// in item order. f receives the item index alongside the item so error
// messages and labels can be positional. Semantics match Run.
func Map[In, Out any](items []In, f func(i int, item In) (Out, error), opts Options) ([]Out, error) {
	jobs := make([]func() (Out, error), len(items))
	for i := range items {
		i := i
		jobs[i] = func() (Out, error) { return f(i, items[i]) }
	}
	return Run(jobs, opts)
}
