// Package schemes implements the comparison of proposed DRAM power
// reduction schemes of Section V of the paper. Each scheme is a transform
// of a baseline device description; the evaluation reports the energy per
// bit in the interleaved (IDD7-style) pattern together with the die-area
// impact — the two axes the paper insists must be judged together ("the
// detailed description ... allows also quantifying the die size impact").
package schemes

import (
	"fmt"
	"math"

	"drampower/internal/core"
	"drampower/internal/desc"
	"drampower/internal/engine"
	"drampower/internal/units"
)

// Scheme is one power-reduction proposal.
type Scheme struct {
	// Name and Source identify the proposal like Section V does.
	Name   string
	Source string
	// Notes summarizes the paper's feasibility judgement.
	Notes string
	// Apply transforms a clone of the baseline description.
	Apply func(d *desc.Description)
}

// lwdSegmentation is the wordline segmentation factor of the selective
// bitline activation scheme: the row is split into 16 independently
// activatable segments (Udipi et al. activate only the segment holding
// the target cache line).
const lwdSegmentation = 16

// All returns the evaluated schemes in presentation order. The baseline is
// implicit (see Evaluate).
func All() []Scheme {
	return []Scheme{
		{
			Name:   "selective bitline activation",
			Source: "Udipi et al., ISCA 2010",
			Notes: "activates 1/16 of the row once the column address is " +
				"known; needs 16x finer wordline segmentation, growing the " +
				"local wordline driver stripe count and the bank width",
			Apply: func(d *desc.Description) {
				fp := &d.Floorplan
				fp.ActivationFraction = 1.0 / lwdSegmentation
				oldLWL := fp.BitsPerLocalWordline
				fp.BitsPerLocalWordline = maxInt(16, oldLWL/lwdSegmentation)
				resizeBankWidth(d)
			},
		},
		{
			Name:   "single sub-array access",
			Source: "Udipi et al., ISCA 2010",
			Notes: "fetches the full cache line from one sub-array: only one " +
				"local wordline rises, but the sense-amplifier stripe needs " +
				"a much wider local data path (area grows; the paper judges " +
				"this infeasible without re-architecting the array block)",
			Apply: func(d *desc.Description) {
				fp := &d.Floorplan
				// One local wordline out of the row's sub-arrays.
				fp.ActivationFraction = activationForOneSubarray(d)
				// Wider local data path: 4x the bits per column select and
				// a half wider sense-amplifier stripe.
				d.Technology.BitsPerCSL *= 4
				fp.BLSAStripeWidth = units.Length(float64(fp.BLSAStripeWidth) * 2.5)
				resizeBankHeight(d)
			},
		},
		{
			Name:   "segmented data lines",
			Source: "Jeong et al., ISSCC 2009 (LPDDR2 on-the-fly power cut)",
			Notes: "cut-off switches in the main data lines drive on average " +
				"55% of the bus length; off-pitch center-stripe change, " +
				"negligible area",
			Apply: func(d *desc.Description) {
				for i := range d.Signals {
					s := &d.Signals[i]
					if s.Kind == desc.SigDataRead || s.Kind == desc.SigDataWrite ||
						s.Kind == desc.SigDataShared {
						s.ActiveFrac = 0.55
					}
				}
			},
		},
		{
			Name:   "reduced page (8:1 CSL ratio)",
			Source: "this paper, Section V",
			Notes: "re-architected column path: dense metal-3 tracks become " +
				"master data lines, an 8x smaller page (512B for a 64B line) " +
				"is activated; compatible with the bitline stripe pitch",
			Apply: func(d *desc.Description) {
				d.Floorplan.ActivationFraction = 1.0 / 8
				// Eight times more bits move per column select pulse.
				d.Technology.BitsPerCSL *= 8
				// Slightly denser sense-amplifier stripe wiring.
				d.Floorplan.BLSAStripeWidth =
					units.Length(float64(d.Floorplan.BLSAStripeWidth) * 1.05)
				resizeBankHeight(d)
			},
		},
		{
			Name:   "half datapath width (mini-rank style)",
			Source: "Zheng et al., MICRO 2008",
			Notes: "per-device view of a narrower rank: half the DQ width at " +
				"the same per-pin rate halves the bits per burst; the row " +
				"energy amortizes over fewer bits, so the per-device energy " +
				"per bit rises — the system win comes from activating fewer " +
				"devices per access",
			Apply: func(d *desc.Description) {
				d.Spec.IOWidth /= 2
				d.Spec.ColAddrBits++ // same density, deeper columns
			},
		},
	}
}

// activationForOneSubarray returns the activation fraction that raises a
// single local wordline.
func activationForOneSubarray(d *desc.Description) float64 {
	// Sub-arrays across the bank: page cells / cells per local wordline.
	page := d.Spec.PageBits()
	if d.Floorplan.BitsPerLocalWordline <= 0 || page <= 0 {
		return 1
	}
	subs := float64(page) / float64(d.Floorplan.BitsPerLocalWordline)
	if subs < 1 {
		return 1
	}
	return 1 / subs
}

// resizeBankWidth recomputes the bank (array block) width after the local
// wordline segmentation changed: more LWD stripes widen the bank and the
// die.
func resizeBankWidth(d *desc.Description) {
	fp := &d.Floorplan
	name := arrayBlockName(fp)
	if name == "" {
		return
	}
	page := d.Spec.PageBits()
	subsWL := (page + fp.BitsPerLocalWordline - 1) / fp.BitsPerLocalWordline
	w := units.Length(float64(page)*float64(fp.BitlinePitch) +
		float64(subsWL+1)*float64(fp.LWDStripeWidth) + 1e-9)
	fp.BlockWidth[name] = w
}

// resizeBankHeight recomputes the bank height after the BLSA stripe width
// changed.
func resizeBankHeight(d *desc.Description) {
	fp := &d.Floorplan
	name := arrayBlockName(fp)
	if name == "" {
		return
	}
	rows := rowsPerBank(d)
	subsBL := (rows + fp.BitsPerBitline - 1) / fp.BitsPerBitline
	h := units.Length(float64(rows)*float64(fp.WordlinePitch) +
		float64(subsBL+1)*float64(fp.BLSAStripeWidth) + 1e-9)
	fp.BlockHeight[name] = h
}

func rowsPerBank(d *desc.Description) int {
	return 1 << uint(d.Spec.RowAddrBits)
}

func arrayBlockName(fp *desc.Floorplan) string {
	for _, n := range fp.HorizontalBlocks {
		if desc.IsArrayBlock(n) {
			return n
		}
	}
	return ""
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Result is the evaluation of one scheme against the baseline.
type Result struct {
	Name   string
	Source string
	Notes  string
	// EnergyPerBit in the interleaved pattern.
	EnergyPerBit units.Energy
	// EnergyDeltaPct is the energy-per-bit change vs. baseline (negative
	// = saving).
	EnergyDeltaPct float64
	// DieAreaMM2 and AreaDeltaPct quantify the cost side.
	DieAreaMM2   float64
	AreaDeltaPct float64
	// IDD7 of the variant, for reference.
	IDD7 units.Current
}

// Evaluate runs the baseline and every scheme on the given description and
// returns the results, baseline first. Evaluation is serial; EvaluateOpts
// runs the schemes on a worker pool.
func Evaluate(base *desc.Description) ([]Result, error) {
	return EvaluateOpts(base, engine.Options{Workers: 1})
}

// EvaluateOpts is Evaluate with batch-evaluation options. The baseline is
// built first (its figures feed every delta); the schemes then evaluate
// concurrently, each on its own deep clone of the baseline description, so
// any worker count produces the same results.
func EvaluateOpts(base *desc.Description, opts engine.Options) ([]Result, error) {
	baseModel, err := core.Build(base.Clone())
	if err != nil {
		return nil, fmt.Errorf("schemes: baseline: %w", err)
	}
	baseE := float64(baseModel.EnergyPerBitIDD7())
	baseA := float64(baseModel.DieArea()) / 1e-6
	if baseE <= 0 || baseA <= 0 {
		return nil, fmt.Errorf("schemes: degenerate baseline (E=%g, A=%g)", baseE, baseA)
	}
	variants, err := engine.Map(All(), func(_ int, s Scheme) (Result, error) {
		d := base.Clone()
		s.Apply(d)
		m, err := core.Build(d)
		if err != nil {
			return Result{}, fmt.Errorf("schemes: %s: %w", s.Name, err)
		}
		e := float64(m.EnergyPerBitIDD7())
		a := float64(m.DieArea()) / 1e-6
		return Result{
			Name:           s.Name,
			Source:         s.Source,
			Notes:          s.Notes,
			EnergyPerBit:   units.Energy(e),
			EnergyDeltaPct: 100 * (e - baseE) / baseE,
			DieAreaMM2:     a,
			AreaDeltaPct:   100 * (a - baseA) / baseA,
			IDD7:           m.IDD().IDD7,
		}, nil
	}, opts)
	if err != nil {
		return nil, err
	}
	results := make([]Result, 0, len(variants)+1)
	results = append(results, Result{
		Name:         "baseline (commodity)",
		Source:       "Section II floorplan",
		EnergyPerBit: units.Energy(baseE),
		DieAreaMM2:   baseA,
		IDD7:         baseModel.IDD().IDD7,
	})
	return append(results, variants...), nil
}

// ParetoNote classifies a result: schemes that save energy without area
// cost dominate; the paper's point is that most row-activation schemes
// trade area for energy.
func ParetoNote(r Result) string {
	switch {
	case r.EnergyDeltaPct < -1 && r.AreaDeltaPct <= 0.5:
		return "saves energy at negligible area cost"
	case r.EnergyDeltaPct < -1:
		return fmt.Sprintf("saves %.0f%% energy for %.1f%% area", -r.EnergyDeltaPct, r.AreaDeltaPct)
	case math.Abs(r.EnergyDeltaPct) <= 1:
		return "energy neutral"
	default:
		return fmt.Sprintf("costs %.0f%% energy per device bit", r.EnergyDeltaPct)
	}
}
