package schemes

import (
	"math"
	"strings"
	"testing"

	"drampower/internal/desc"
	"drampower/internal/scaling"
)

func evaluate(t *testing.T) []Result {
	t.Helper()
	res, err := Evaluate(desc.Sample1GbDDR3())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func byName(t *testing.T, res []Result, name string) Result {
	t.Helper()
	for _, r := range res {
		if strings.Contains(r.Name, name) {
			return r
		}
	}
	t.Fatalf("scheme %q not in results", name)
	return Result{}
}

func TestEvaluateShape(t *testing.T) {
	res := evaluate(t)
	if len(res) != len(All())+1 {
		t.Fatalf("results: got %d, want %d", len(res), len(All())+1)
	}
	if !strings.Contains(res[0].Name, "baseline") {
		t.Errorf("first result should be the baseline, got %q", res[0].Name)
	}
	if res[0].EnergyDeltaPct != 0 || res[0].AreaDeltaPct != 0 {
		t.Errorf("baseline deltas should be zero: %+v", res[0])
	}
	for _, r := range res {
		if r.EnergyPerBit <= 0 {
			t.Errorf("%s: non-positive energy per bit", r.Name)
		}
		if r.DieAreaMM2 <= 0 {
			t.Errorf("%s: non-positive die area", r.Name)
		}
	}
}

func TestSelectiveBitlineActivation(t *testing.T) {
	res := evaluate(t)
	r := byName(t, res, "selective bitline activation")
	// Row-activation energy dominates random traffic, so activating 1/16
	// of the row saves a large share of the energy per bit...
	if r.EnergyDeltaPct > -25 {
		t.Errorf("SBA energy delta %.1f%%, want a saving beyond 25%%", r.EnergyDeltaPct)
	}
	// ...but the 16x wordline segmentation must cost substantial area
	// (Section II: doubling the number of on-pitch blocks is "even worse").
	if r.AreaDeltaPct < 20 {
		t.Errorf("SBA area delta %.1f%%, want a substantial increase", r.AreaDeltaPct)
	}
}

func TestSingleSubarrayAccess(t *testing.T) {
	res := evaluate(t)
	r := byName(t, res, "single sub-array")
	if r.EnergyDeltaPct > -30 {
		t.Errorf("SSA energy delta %.1f%%, want a saving beyond 30%%", r.EnergyDeltaPct)
	}
	if r.AreaDeltaPct < 10 {
		t.Errorf("SSA area delta %.1f%%, want a clear increase", r.AreaDeltaPct)
	}
}

func TestSegmentedDataLines(t *testing.T) {
	res := evaluate(t)
	r := byName(t, res, "segmented data lines")
	// A center-stripe-only change: small energy saving, no area cost.
	if r.EnergyDeltaPct >= 0 {
		t.Errorf("segmented data lines should save energy, got %+.2f%%", r.EnergyDeltaPct)
	}
	if r.EnergyDeltaPct < -15 {
		t.Errorf("segmented data lines saving %.1f%% implausibly large", r.EnergyDeltaPct)
	}
	if math.Abs(r.AreaDeltaPct) > 0.5 {
		t.Errorf("segmented data lines area delta %.2f%%, want ~0", r.AreaDeltaPct)
	}
}

func TestReducedPageScheme(t *testing.T) {
	res := evaluate(t)
	r := byName(t, res, "reduced page")
	// The paper's own proposal: row-energy saving comparable to the
	// re-architecting schemes at a small area cost.
	if r.EnergyDeltaPct > -25 {
		t.Errorf("reduced page energy delta %.1f%%, want beyond 25%% saving", r.EnergyDeltaPct)
	}
	if r.AreaDeltaPct > 5 {
		t.Errorf("reduced page area delta %.1f%%, want small", r.AreaDeltaPct)
	}
	sba := byName(t, res, "selective bitline activation")
	if r.AreaDeltaPct >= sba.AreaDeltaPct {
		t.Errorf("reduced page (%.1f%% area) should be cheaper than SBA (%.1f%%)",
			r.AreaDeltaPct, sba.AreaDeltaPct)
	}
}

func TestMiniRankPerDevicePenalty(t *testing.T) {
	res := evaluate(t)
	r := byName(t, res, "half datapath")
	// Per device, halving the width amortizes the row energy over fewer
	// bits: energy per bit rises.
	if r.EnergyDeltaPct <= 0 {
		t.Errorf("mini-rank per-device energy should rise, got %+.1f%%", r.EnergyDeltaPct)
	}
	if math.Abs(r.AreaDeltaPct) > 1 {
		t.Errorf("mini-rank area delta %.2f%%, want ~0", r.AreaDeltaPct)
	}
}

func TestSchemesDoNotMutateBaseline(t *testing.T) {
	d := desc.Sample1GbDDR3()
	before := desc.Format(d)
	if _, err := Evaluate(d); err != nil {
		t.Fatal(err)
	}
	if desc.Format(d) != before {
		t.Error("Evaluate mutated the baseline description")
	}
}

func TestSchemesOnGenerationDevices(t *testing.T) {
	// The transforms must stay valid on other generations too.
	for _, nm := range []float64{65, 36} {
		n, err := scaling.NodeFor(nm)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Evaluate(n.Description())
		if err != nil {
			t.Fatalf("%gnm: %v", nm, err)
		}
		sba := byName(t, res, "selective bitline activation")
		if sba.EnergyDeltaPct >= 0 {
			t.Errorf("%gnm: SBA should save energy, got %+.1f%%", nm, sba.EnergyDeltaPct)
		}
	}
}

func TestParetoNote(t *testing.T) {
	cases := []struct {
		r    Result
		want string
	}{
		{Result{EnergyDeltaPct: -40, AreaDeltaPct: 0.2}, "negligible area cost"},
		{Result{EnergyDeltaPct: -40, AreaDeltaPct: 30}, "saves 40% energy for 30.0% area"},
		{Result{EnergyDeltaPct: 0.5}, "energy neutral"},
		{Result{EnergyDeltaPct: 90}, "costs 90% energy per device bit"},
	}
	for _, c := range cases {
		if got := ParetoNote(c.r); !strings.Contains(got, c.want) {
			t.Errorf("ParetoNote(%+v) = %q, want containing %q", c.r, got, c.want)
		}
	}
}

func TestActivationFractionValidated(t *testing.T) {
	d := desc.Sample1GbDDR3()
	d.Floorplan.ActivationFraction = 1.5
	if err := d.Validate(); err == nil {
		t.Error("activation fraction > 1 should fail validation")
	}
	d.Floorplan.ActivationFraction = 0.5
	if err := d.Validate(); err != nil {
		t.Errorf("activation fraction 0.5 should validate: %v", err)
	}
}
