// Package scaling implements the technology-scaling model of Section III.C
// and the trend analyses of Section IV.C of the paper: a roadmap of DRAM
// process generations from 170 nm (SDR, year 2000) to 16 nm (DDR5,
// forecast 2018), the per-parameter shrink curves of Figures 5–7, the
// disruptive technology changes of Table II, and a generation builder that
// produces a complete desc.Description for any node — the input to the
// power engine for the voltage/timing/energy trend reproductions
// (Figures 11–13) and the Pareto devices of Figure 10 / Table III.
package scaling

import (
	"fmt"
	"math"

	"drampower/internal/units"
)

// Interface is a DRAM interface generation.
type Interface int

// Interface generations in roadmap order.
const (
	SDR Interface = iota
	DDR
	DDR2
	DDR3
	DDR4
	DDR5
)

var interfaceNames = map[Interface]string{
	SDR: "SDR", DDR: "DDR", DDR2: "DDR2", DDR3: "DDR3", DDR4: "DDR4", DDR5: "DDR5",
}

// String returns the interface name.
func (i Interface) String() string { return interfaceNames[i] }

// Prefetch returns the architectural prefetch of the interface: the pin
// data rate doubles at each interface transition while the core frequency
// stays flat, so the prefetch doubles (Section IV.C).
func (i Interface) Prefetch() int {
	switch i {
	case SDR:
		return 1
	case DDR:
		return 2
	case DDR2:
		return 4
	case DDR3, DDR4:
		return 8
	default:
		return 16
	}
}

// Banks returns the typical bank count of the interface generation.
func (i Interface) Banks() int {
	switch i {
	case SDR, DDR:
		return 4
	case DDR2, DDR3:
		return 8
	case DDR4:
		return 16
	default:
		return 32
	}
}

// CellArch describes the cell architecture era (Table II transitions).
type CellArch int

// Cell architectures: 8F² folded bitline (through 75 nm), 6F² open bitline
// (65–44 nm), 4F² vertical access transistor (36 nm on, forecast).
const (
	Cell8F2 CellArch = iota
	Cell6F2
	Cell4F2
)

// String names the cell architecture.
func (c CellArch) String() string {
	switch c {
	case Cell8F2:
		return "8F2 folded"
	case Cell6F2:
		return "6F2 open"
	default:
		return "4F2 vertical"
	}
}

// AreaFactor returns the cell area in units of F².
func (c CellArch) AreaFactor() float64 {
	switch c {
	case Cell8F2:
		return 8
	case Cell6F2:
		return 6
	default:
		return 4
	}
}

// Node is one technology generation of the roadmap.
type Node struct {
	// FeatureNm is the minimum feature size in nanometers (the x axis of
	// Figures 5–7 and 11–13).
	FeatureNm float64
	// Year is the approximate year of peak usage.
	Year float64
	// Interface is the mainstream interface at the node's peak.
	Interface Interface
	// DensityBits is the device density chosen so the die lands in the
	// 40–60 mm² sweet spot of Section IV.C.
	DensityBits int64
	// DataRate is the per-pin data rate of a high-end x16 part.
	DataRate units.DataRate
	// Voltages (Figure 11).
	Vdd, Vint, Vbl, Vpp units.Voltage
	// Row timings (Figure 12).
	TRC, TRCD, TRP units.Duration
	// Arch is the cell architecture era.
	Arch CellArch
	// BitsPerBL is the local bitline length in cells (Table II: increases
	// at the 110→90 nm transition).
	BitsPerBL int
}

// DensityMbit returns the density in megabits.
func (n Node) DensityMbit() int64 { return n.DensityBits / (1 << 20) }

// Name identifies the node like the paper does: "2G DDR3 55nm".
func (n Node) Name() string {
	d := n.DensityMbit()
	ds := fmt.Sprintf("%dM", d)
	if d >= 1024 {
		ds = fmt.Sprintf("%dG", d/1024)
	}
	return fmt.Sprintf("%s %s %.0fnm", ds, n.Interface, n.FeatureNm)
}

// roadmap is the generation table. Feature sizes shrink by 16 % per
// generation on average (Section III.C); voltages follow the historical
// JEDEC interfaces and the ITRS forecast (Figure 11); data rates double at
// each interface transition (Figure 12); densities keep the die in the
// 40–60 mm² band (Section IV.C).
var roadmap = []Node{
	{170, 2000.0, SDR, 128 << 20, units.Gbps(0.133), 3.3, 2.9, 2.0, 4.5, units.Nanoseconds(65), units.Nanoseconds(20), units.Nanoseconds(20), Cell8F2, 256},
	{140, 2001.5, SDR, 256 << 20, units.Gbps(0.166), 3.3, 2.8, 1.9, 4.3, units.Nanoseconds(63), units.Nanoseconds(19), units.Nanoseconds(19), Cell8F2, 256},
	{110, 2003.0, DDR, 256 << 20, units.Gbps(0.333), 2.5, 2.2, 1.8, 3.8, units.Nanoseconds(60), units.Nanoseconds(18), units.Nanoseconds(18), Cell8F2, 256},
	{90, 2004.5, DDR, 512 << 20, units.Gbps(0.4), 2.5, 2.0, 1.6, 3.6, units.Nanoseconds(58), units.Nanoseconds(17), units.Nanoseconds(17), Cell8F2, 512},
	{75, 2006.0, DDR2, 1 << 30, units.Gbps(0.667), 1.8, 1.6, 1.4, 3.2, units.Nanoseconds(55), units.Nanoseconds(15), units.Nanoseconds(15), Cell8F2, 512},
	{65, 2007.5, DDR2, 1 << 30, units.Gbps(0.8), 1.8, 1.5, 1.3, 3.0, units.Nanoseconds(52), units.Nanoseconds(15), units.Nanoseconds(15), Cell6F2, 512},
	{55, 2009.0, DDR3, 2 << 30, units.Gbps(1.6), 1.5, 1.3, 1.1, 2.9, units.Nanoseconds(48.75), units.Nanoseconds(13.75), units.Nanoseconds(13.75), Cell6F2, 512},
	{44, 2010.5, DDR3, 2 << 30, units.Gbps(1.6), 1.5, 1.25, 1.05, 2.8, units.Nanoseconds(48), units.Nanoseconds(13.5), units.Nanoseconds(13.5), Cell6F2, 512},
	{36, 2012.0, DDR4, 4 << 30, units.Gbps(2.133), 1.2, 1.15, 1.0, 2.7, units.Nanoseconds(47), units.Nanoseconds(13.5), units.Nanoseconds(13.5), Cell4F2, 512},
	{31, 2013.5, DDR4, 4 << 30, units.Gbps(2.667), 1.2, 1.1, 0.975, 2.6, units.Nanoseconds(47), units.Nanoseconds(13.5), units.Nanoseconds(13.5), Cell4F2, 512},
	{25, 2015.0, DDR4, 8 << 30, units.Gbps(3.2), 1.2, 1.05, 0.95, 2.5, units.Nanoseconds(46), units.Nanoseconds(13.5), units.Nanoseconds(13.5), Cell4F2, 512},
	{21, 2016.5, DDR5, 8 << 30, units.Gbps(4.8), 1.1, 1.0, 0.9, 2.5, units.Nanoseconds(46), units.Nanoseconds(13.5), units.Nanoseconds(13.5), Cell4F2, 512},
	{18, 2017.5, DDR5, 16 << 30, units.Gbps(6.4), 1.1, 1.0, 0.9, 2.4, units.Nanoseconds(45), units.Nanoseconds(13.5), units.Nanoseconds(13.5), Cell4F2, 512},
	{16, 2018.0, DDR5, 16 << 30, units.Gbps(6.4), 1.05, 0.95, 0.85, 2.4, units.Nanoseconds(45), units.Nanoseconds(13.5), units.Nanoseconds(13.5), Cell4F2, 512},
}

// Roadmap returns the full generation table in shrinking-feature order.
func Roadmap() []Node {
	out := make([]Node, len(roadmap))
	copy(out, roadmap)
	return out
}

// NodeFor returns the roadmap node with the given feature size in
// nanometers.
func NodeFor(featureNm float64) (Node, error) {
	for _, n := range roadmap {
		if math.Abs(n.FeatureNm-featureNm) < 0.5 {
			return n, nil
		}
	}
	return Node{}, fmt.Errorf("scaling: no roadmap node at %g nm", featureNm)
}

// AverageShrink returns the mean feature shrink per generation across the
// roadmap; the paper states 16 %.
func AverageShrink() float64 {
	first := roadmap[0].FeatureNm
	last := roadmap[len(roadmap)-1].FeatureNm
	gens := float64(len(roadmap) - 1)
	return 1 - math.Pow(last/first, 1/gens)
}

// Disruption is one row of Table II: a disruptive technology change at a
// specific transition.
type Disruption struct {
	Transition string
	Change     string
	Background string
}

// DisruptiveChanges returns Table II of the paper.
func DisruptiveChanges() []Disruption {
	return []Disruption{
		{"250nm to 110nm", "Stitched wordline to segmented wordline",
			"Minimum feature size of aluminum wiring no longer feasible"},
		{"110nm to 90nm", "Increase in number of cells per bitline and/or local wordline",
			"Leads to smaller die size; better control of technology and design"},
		{"110nm to 90nm", "Introduction of dual gate oxide",
			"Allows lower voltage operation and better performance of standard logic transistors"},
		{"90nm to 75nm", "Introduction of p+ gate doping of PMOS transistors",
			"Buried channel pfet performance not sufficient for standard logic of high data rate DRAMs"},
		{"90nm to 75nm", "Introduction of 3-dimensional access transistor",
			"Planar transistor device length got too short for threshold voltage control"},
		{"75nm to 65nm", "Cell architecture 8f2 folded bitline to 6f2 open bitline",
			"Leads to smaller die size; better control of technology and design"},
		{"55nm to 44nm", "Cu metallization",
			"Lower resistance and/or capacitance in wiring for improved performance and/or power reduction"},
		{"40nm to 36nm", "Cell architecture 6f2 to 4f2 with vertical access transistor",
			"Leads to smaller die size; better control of technology and design"},
		{"36nm to 31nm", "High-k dielectric gate oxide",
			"Better subthreshold behavior and reduced gate leakage"},
	}
}
