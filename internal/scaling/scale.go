package scaling

import (
	"math"
	"sort"
)

// The shrink-curve model of Figures 5–7: each technology parameter scales
// as (f/f₀)^α relative to its value at the 55 nm anchor node. α = 1 means
// the parameter follows the feature size ("f-shrink", the solid reference
// line of the figures); α < 1 means it shrinks more slowly, which is the
// general observation of Section III.C; α = 0 means it does not scale.
//
// The exponents encode the qualitative content of the figures: gate oxides
// and junction capacitances scale slowly, channel lengths follow the
// feature size closely, the cell capacitance is held nearly constant to
// preserve refresh time, specific wire capacitance barely changes, and
// device widths track lengths to keep W/L ratios constant.

// anchorNm is the feature size whose parameter values are taken as the
// anchor (the calibrated 55 nm DDR3 device).
const anchorNm = 55.0

// ScaleExponents maps parameter families to their shrink exponent α.
var ScaleExponents = map[string]float64{
	// Figure 5: transistor parameters.
	"GateOxideLogic":     0.60,
	"GateOxideHV":        0.30,
	"GateOxideCell":      0.30,
	"MinGateLengthLogic": 0.90,
	"MinGateLengthHV":    0.70,
	"JunctionCap":        0.20,
	"CellAccessLength":   0.30, // 3-D access transistor decouples L from F
	"CellAccessWidth":    1.00, // follows the feature size

	// Figure 6: capacitances, logic width, stripe widths.
	"BitlineCapPerCell": 0.20, // bitline cap per cell shrinks slowly
	"CellCap":           0.00, // held constant for refresh
	"WireCap":           0.05, // specific wire capacitance nearly constant
	"MiscLogicWidth":    0.85,
	"BLSAStripeWidth":   0.75,
	"LWDStripeWidth":    0.75,

	// Figure 7: core device widths and lengths.
	"BLSADeviceWidth":  0.85,
	"BLSADeviceLength": 0.80,
	"RowDeviceWidth":   0.85,
}

// cuMetalFactor is the wiring-capacitance improvement of the Cu (and
// low-k) metallization introduced at the 55→44 nm transition (Table II).
const cuMetalFactor = 0.85

// ScaleFrom55 returns the multiplier for a parameter family at feature
// size f (nm): (f/55)^α. Unknown families scale with α = 0.5 (a moderate
// shrink, the paper's default assumption when the ITRS gives no guidance).
func ScaleFrom55(family string, featureNm float64) float64 {
	alpha, ok := ScaleExponents[family]
	if !ok {
		alpha = 0.5
	}
	s := math.Pow(featureNm/anchorNm, alpha)
	if isWiringFamily(family) && featureNm <= 44 {
		s *= cuMetalFactor
	}
	return s
}

func isWiringFamily(family string) bool {
	return family == "WireCap" || family == "BitlineCapPerCell"
}

// ShrinkTable returns, for each roadmap node, the shrink factor of every
// listed parameter family relative to the 170 nm generation — the series
// plotted in Figures 5–7 (which normalize to the oldest node). The
// families are returned in sorted order for stable output.
func ShrinkTable(families []string) (nodes []Node, rows map[string][]float64) {
	nodes = Roadmap()
	rows = make(map[string][]float64, len(families))
	sorted := append([]string(nil), families...)
	sort.Strings(sorted)
	base := nodes[0].FeatureNm
	for _, fam := range sorted {
		series := make([]float64, len(nodes))
		ref := ScaleFrom55(fam, base)
		for i, n := range nodes {
			series[i] = ScaleFrom55(fam, n.FeatureNm) / ref
		}
		rows[fam] = series
	}
	return nodes, rows
}

// FShrinkSeries returns the reference feature-size shrink line of the
// figures: f/170 for each node.
func FShrinkSeries() []float64 {
	nodes := Roadmap()
	out := make([]float64, len(nodes))
	for i, n := range nodes {
		out[i] = n.FeatureNm / nodes[0].FeatureNm
	}
	return out
}

// Figure5Families lists the parameter families of Figure 5.
func Figure5Families() []string {
	return []string{"GateOxideLogic", "GateOxideHV", "GateOxideCell",
		"MinGateLengthLogic", "JunctionCap", "CellAccessLength", "CellAccessWidth"}
}

// Figure6Families lists the parameter families of Figure 6.
func Figure6Families() []string {
	return []string{"BitlineCapPerCell", "CellCap", "WireCap",
		"MiscLogicWidth", "BLSAStripeWidth", "LWDStripeWidth"}
}

// Figure7Families lists the parameter families of Figure 7.
func Figure7Families() []string {
	return []string{"BLSADeviceWidth", "BLSADeviceLength", "RowDeviceWidth"}
}
