package scaling

import (
	"math"
	"testing"
	"testing/quick"

	"drampower/internal/core"
	"drampower/internal/desc"
)

func TestRoadmapShape(t *testing.T) {
	nodes := Roadmap()
	if len(nodes) < 12 {
		t.Fatalf("roadmap too short: %d nodes", len(nodes))
	}
	if nodes[0].FeatureNm != 170 {
		t.Errorf("first node: got %g nm, want 170 nm", nodes[0].FeatureNm)
	}
	if last := nodes[len(nodes)-1]; last.FeatureNm != 16 {
		t.Errorf("last node: got %g nm, want 16 nm", last.FeatureNm)
	}
	// Monotonic shrink, years, voltages, data rate growth.
	for i := 1; i < len(nodes); i++ {
		p, n := nodes[i-1], nodes[i]
		if n.FeatureNm >= p.FeatureNm {
			t.Errorf("feature size not shrinking at %s", n.Name())
		}
		if n.Year < p.Year {
			t.Errorf("year not advancing at %s", n.Name())
		}
		if n.Vdd > p.Vdd {
			t.Errorf("Vdd increases at %s", n.Name())
		}
		if n.Vint > p.Vint || n.Vbl > p.Vbl || n.Vpp > p.Vpp {
			t.Errorf("internal voltage increases at %s", n.Name())
		}
		if n.DataRate < p.DataRate {
			t.Errorf("data rate decreases at %s", n.Name())
		}
		if n.Interface < p.Interface {
			t.Errorf("interface regresses at %s", n.Name())
		}
		if n.DensityBits < p.DensityBits {
			t.Errorf("density decreases at %s", n.Name())
		}
	}
}

func TestAverageShrink(t *testing.T) {
	// Section III.C: the average feature shrink between generations is 16 %.
	got := AverageShrink()
	if got < 0.13 || got > 0.19 {
		t.Errorf("average shrink: got %.3f, want about 0.16", got)
	}
}

func TestNodeFor(t *testing.T) {
	n, err := NodeFor(55)
	if err != nil {
		t.Fatal(err)
	}
	if n.Interface != DDR3 {
		t.Errorf("55 nm interface: got %v, want DDR3", n.Interface)
	}
	if n.Name() != "2G DDR3 55nm" {
		t.Errorf("55 nm name: got %q", n.Name())
	}
	if _, err := NodeFor(123); err == nil {
		t.Error("expected error for unknown node")
	}
}

func TestPaperDevices(t *testing.T) {
	// The three devices of Figure 10 / Table III exist on the roadmap.
	for _, c := range []struct {
		nm   float64
		name string
	}{
		{170, "128M SDR 170nm"},
		{55, "2G DDR3 55nm"},
		{18, "16G DDR5 18nm"},
	} {
		n, err := NodeFor(c.nm)
		if err != nil {
			t.Errorf("NodeFor(%g): %v", c.nm, err)
			continue
		}
		if n.Name() != c.name {
			t.Errorf("NodeFor(%g).Name() = %q, want %q", c.nm, n.Name(), c.name)
		}
	}
}

func TestInterfaceProperties(t *testing.T) {
	// Prefetch doubles at each interface transition (DDR3->DDR4 is the
	// one exception: both are 8n prefetch, DDR4 gaining speed from bank
	// groups instead).
	if SDR.Prefetch() != 1 || DDR.Prefetch() != 2 || DDR2.Prefetch() != 4 ||
		DDR3.Prefetch() != 8 || DDR4.Prefetch() != 8 || DDR5.Prefetch() != 16 {
		t.Error("prefetch sequence wrong")
	}
	if SDR.Banks() != 4 || DDR3.Banks() != 8 || DDR5.Banks() != 32 {
		t.Error("bank counts wrong")
	}
	if DDR3.String() != "DDR3" {
		t.Errorf("interface name: %q", DDR3.String())
	}
}

func TestCellPitches(t *testing.T) {
	wl, bl := CellPitches(Cell6F2, 55)
	if math.Abs(wl.Nanometers()-165) > 1e-9 || math.Abs(bl.Nanometers()-110) > 1e-9 {
		t.Errorf("6F² at 55nm: got %g x %g nm, want 165 x 110", wl.Nanometers(), bl.Nanometers())
	}
	wl, bl = CellPitches(Cell8F2, 90)
	if math.Abs(wl.Nanometers()-360) > 1e-9 || math.Abs(bl.Nanometers()-180) > 1e-9 {
		t.Errorf("8F² at 90nm: got %g x %g nm", wl.Nanometers(), bl.Nanometers())
	}
	// Area factors.
	if Cell8F2.AreaFactor() != 8 || Cell6F2.AreaFactor() != 6 || Cell4F2.AreaFactor() != 4 {
		t.Error("cell area factors wrong")
	}
}

func TestTableII(t *testing.T) {
	rows := DisruptiveChanges()
	if len(rows) != 9 {
		t.Fatalf("Table II rows: got %d, want 9", len(rows))
	}
	// Spot checks against the paper.
	if rows[0].Transition != "250nm to 110nm" {
		t.Errorf("row 0 transition: %q", rows[0].Transition)
	}
	found := false
	for _, r := range rows {
		if r.Transition == "55nm to 44nm" && r.Change == "Cu metallization" {
			found = true
		}
	}
	if !found {
		t.Error("Table II missing the Cu metallization row")
	}
}

func TestScaleFrom55(t *testing.T) {
	// At the anchor node every family scales to 1 (except wiring families
	// at or below 44 nm; 55 is above).
	for fam := range ScaleExponents {
		if got := ScaleFrom55(fam, 55); math.Abs(got-1) > 1e-12 {
			t.Errorf("ScaleFrom55(%s, 55) = %g, want 1", fam, got)
		}
	}
	// CellCap does not scale.
	if got := ScaleFrom55("CellCap", 16); math.Abs(got-1) > 1e-12 {
		t.Errorf("cell cap should not scale, got %g", got)
	}
	// Cu metallization kicks in at 44 nm for wiring.
	above := ScaleFrom55("WireCap", 55)
	below := ScaleFrom55("WireCap", 44)
	if below >= above*math.Pow(44.0/55.0, 0.05) {
		t.Errorf("Cu factor missing: WireCap(44)=%g vs WireCap(55)=%g", below, above)
	}
	// Unknown family gets the moderate default.
	if got := ScaleFrom55("Mystery", 110); math.Abs(got-math.Pow(2, 0.5)) > 1e-9 {
		t.Errorf("unknown family at 110nm: got %g, want sqrt(2)", got)
	}
}

// Property: parameters shrink more slowly than the feature size (α ≤ 1 for
// every family), the headline observation of Section III.C.
func TestPropParametersShrinkSlower(t *testing.T) {
	f := func(idxRaw uint8) bool {
		nodes := Roadmap()
		n := nodes[int(idxRaw)%len(nodes)]
		fshrink := n.FeatureNm / 170
		for fam := range ScaleExponents {
			rel := ScaleFrom55(fam, n.FeatureNm) / ScaleFrom55(fam, 170)
			// Allow the Cu step a little slack.
			if rel < fshrink*0.8-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShrinkTable(t *testing.T) {
	nodes, rows := ShrinkTable(Figure5Families())
	if len(nodes) != len(Roadmap()) {
		t.Fatalf("nodes: got %d", len(nodes))
	}
	for fam, series := range rows {
		if len(series) != len(nodes) {
			t.Fatalf("%s: series length %d", fam, len(series))
		}
		if math.Abs(series[0]-1) > 1e-12 {
			t.Errorf("%s: first entry %g, want 1 (normalized to 170nm)", fam, series[0])
		}
		for i := 1; i < len(series); i++ {
			if series[i] > series[i-1]+1e-12 {
				t.Errorf("%s: shrink factor grows at index %d", fam, i)
			}
		}
	}
	fs := FShrinkSeries()
	if fs[0] != 1 || fs[len(fs)-1] >= fs[0] {
		t.Errorf("f-shrink series wrong: %v", fs)
	}
}

func TestBuildAllValidates(t *testing.T) {
	ds, err := BuildAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != len(Roadmap()) {
		t.Fatalf("built %d descriptions", len(ds))
	}
}

func TestGenerationDescriptions(t *testing.T) {
	for _, n := range Roadmap() {
		n := n
		t.Run(n.Name(), func(t *testing.T) {
			d := n.Description()
			if err := d.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
			m, err := core.Build(d)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			// Density must match the roadmap exactly.
			if got := m.Density(); got != n.DensityBits {
				t.Errorf("density: got %d, want %d", got, n.DensityBits)
			}
			// Die area in a plausible manufacturing band (the paper aims
			// at 40–60 mm²; allow generous quantization slack).
			mm2 := float64(m.DieArea()) / 1e-6
			if mm2 < 20 || mm2 > 100 {
				t.Errorf("die area %g mm² implausible", mm2)
			}
			// The cell array must dominate the die (array efficiency).
			cellArea := n.Arch.AreaFactor() * n.FeatureNm * n.FeatureNm * 1e-18 *
				float64(n.DensityBits)
			eff := cellArea / float64(m.DieArea())
			if eff < 0.35 || eff > 0.80 {
				t.Errorf("array efficiency %.2f outside [0.35, 0.80]", eff)
			}
			// IDD currents exist and are ordered.
			idd := m.IDD()
			if !(idd.IDD2N < idd.IDD0 && idd.IDD0 < idd.IDD7) {
				t.Errorf("IDD ordering broken: 2N=%v 0=%v 7=%v",
					idd.IDD2N, idd.IDD0, idd.IDD7)
			}
			// Folded architectures appear exactly in the 8F² era.
			wantArch := desc.Open
			if n.Arch == Cell8F2 {
				wantArch = desc.Folded
			}
			if d.Floorplan.Arch != wantArch {
				t.Errorf("bitline arch: got %v", d.Floorplan.Arch)
			}
		})
	}
}

func TestFig13EnergyTrend(t *testing.T) {
	// The headline result of Section IV.C: energy per bit falls by about
	// 1.5x per generation from 170 nm (2000) to 44 nm (2010) and by about
	// 1.2x per generation in the forecast to 16 nm (2018).
	energies := map[float64]float64{}
	for _, n := range Roadmap() {
		m, err := core.Build(n.Description())
		if err != nil {
			t.Fatalf("%s: %v", n.Name(), err)
		}
		energies[n.FeatureNm] = float64(m.EnergyPerBitIDD7())
	}
	gensHist := 7.0 // 170 -> 44
	histRatio := math.Pow(energies[170]/energies[44], 1/gensHist)
	if histRatio < 1.35 || histRatio > 1.7 {
		t.Errorf("historic energy reduction %.2fx/gen, want about 1.5x", histRatio)
	}
	gensFore := 6.0 // 44 -> 16
	foreRatio := math.Pow(energies[44]/energies[16], 1/gensFore)
	if foreRatio < 1.1 || foreRatio > 1.35 {
		t.Errorf("forecast energy reduction %.2fx/gen, want about 1.2x", foreRatio)
	}
	// The flattening itself: forecast improvements are slower.
	if foreRatio >= histRatio {
		t.Errorf("forecast (%.2fx) should be slower than historic (%.2fx)",
			foreRatio, histRatio)
	}
}

func TestFig11VoltageTrend(t *testing.T) {
	// Vpp > Vdd >= Vint > Vbl at every node (the four domains of
	// Section III.A keep their ordering across Figure 11).
	for _, n := range Roadmap() {
		if !(n.Vpp > n.Vdd) {
			t.Errorf("%s: Vpp (%v) should exceed Vdd (%v)", n.Name(), n.Vpp, n.Vdd)
		}
		if !(n.Vdd >= n.Vint) {
			t.Errorf("%s: Vdd (%v) should be >= Vint (%v)", n.Name(), n.Vdd, n.Vint)
		}
		if !(n.Vint > n.Vbl) {
			t.Errorf("%s: Vint (%v) should exceed Vbl (%v)", n.Name(), n.Vint, n.Vbl)
		}
	}
}

func TestFig12DataRateTrend(t *testing.T) {
	// Data rate per pin doubles at each interface transition (within
	// rounding): compare the peak rate of each interface generation.
	peak := map[Interface]float64{}
	for _, n := range Roadmap() {
		if r := float64(n.DataRate); r > peak[n.Interface] {
			peak[n.Interface] = r
		}
	}
	for i := DDR; i <= DDR5; i++ {
		ratio := peak[i] / peak[i-1]
		if ratio < 1.8 || ratio > 2.6 {
			t.Errorf("peak data rate %v->%v: ratio %.2f, want about 2", i-1, i, ratio)
		}
	}
}

func TestBitsPerActivationGrowAcrossGenerations(t *testing.T) {
	// The bandwidth shift of Section IV.B: activation rates are pinned by
	// row timings while per-pin bandwidth doubles per interface, so the
	// data moved per activation in the interleaved pattern grows
	// monotonically across the roadmap.
	prev := 0
	prevName := ""
	byIface := map[Interface]int{}
	for _, n := range Roadmap() {
		m, err := core.Build(n.Description())
		if err != nil {
			t.Fatalf("%s: %v", n.Name(), err)
		}
		bits := m.BurstsPerActivation() * m.BitsPerBurst()
		if bits < prev {
			t.Errorf("bits per activation shrink from %s (%d) to %s (%d)",
				prevName, prev, n.Name(), bits)
		}
		prev, prevName = bits, n.Name()
		if bits > byIface[n.Interface] {
			byIface[n.Interface] = bits
		}
	}
	if byIface[DDR5] < 4*byIface[DDR2] {
		t.Errorf("DDR5 moves %d bits per activation, want at least 4x DDR2's %d",
			byIface[DDR5], byIface[DDR2])
	}
}
