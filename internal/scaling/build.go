package scaling

import (
	"fmt"
	"math"

	"drampower/internal/desc"
	"drampower/internal/engine"
	"drampower/internal/units"
)

// Generation-builder anchor values: the calibrated 55 nm DDR3 technology
// (see desc.Sample1GbDDR3). Every parameter scales from these by the
// Figure 5–7 curves.
const (
	anchorGateOxideLogic = 4.0   // nm
	anchorGateOxideHV    = 7.0   // nm
	anchorGateOxideCell  = 6.5   // nm
	anchorMinLenLogic    = 90.0  // nm
	anchorMinLenHV       = 250.0 // nm
	anchorJuncLogic      = 0.8   // fF/um
	anchorJuncHV         = 1.2   // fF/um
	anchorCellAccessLen  = 100.0 // nm
	anchorBitlineCap     = 90.0  // fF at 512 cells
	anchorCellCap        = 25.0  // fF
	anchorWireCapMWL     = 0.25  // fF/um
	anchorWireCapLWL     = 0.15  // fF/um
	anchorWireCapSignal  = 0.20  // fF/um
	anchorBLSAStripe     = 20.0  // um
	anchorLWDStripe      = 3.0   // um
)

// CellPitches returns the cell pitches of the architecture: the pitch of
// cells along the bitline (the wordline pitch of Table I) and across it.
func CellPitches(arch CellArch, featureNm float64) (wl, bl units.Length) {
	f := units.Nanometers(featureNm)
	switch arch {
	case Cell8F2:
		return 4 * f, 2 * f // 8F² folded: 4F × 2F
	case Cell6F2:
		return 3 * f, 2 * f // 6F² open: 3F × 2F
	default:
		return 2 * f, 2 * f // 4F² vertical: 2F × 2F
	}
}

// Device is a buildable DRAM: a roadmap node's technology combined with a
// possibly overridden interface, density, width and data rate. The
// datasheet verification of Section IV.A builds e.g. a 1 Gb DDR3 x4 on
// both 65 nm and 55 nm technology from the same node table.
type Device struct {
	Node        Node
	Interface   Interface
	DensityBits int64
	IOWidth     int
	DataRate    units.DataRate
	Vdd         units.Voltage
	Vint        units.Voltage
	Vbl         units.Voltage
	Vpp         units.Voltage
}

// Device returns the node's default device: its own interface, density,
// a x16 part at the node's peak data rate.
func (n Node) Device() Device {
	return Device{
		Node: n, Interface: n.Interface, DensityBits: n.DensityBits,
		IOWidth: 16, DataRate: n.DataRate,
		Vdd: n.Vdd, Vint: n.Vint, Vbl: n.Vbl, Vpp: n.Vpp,
	}
}

// interfaceVdd is the JEDEC supply voltage of each interface.
func interfaceVdd(i Interface) units.Voltage {
	switch i {
	case SDR:
		return 3.3
	case DDR:
		return 2.5
	case DDR2:
		return 1.8
	case DDR3:
		return 1.5
	case DDR4:
		return 1.2
	default:
		return 1.1
	}
}

// DeviceFor builds a device with an explicit interface, density, width and
// per-pin data rate on the technology of the given node. The supply
// voltage follows the interface standard; the internal voltages are the
// node's, clamped below the supply.
func DeviceFor(featureNm float64, iface Interface, density int64, ioWidth int, rate units.DataRate) (Device, error) {
	n, err := NodeFor(featureNm)
	if err != nil {
		return Device{}, err
	}
	dv := n.Device()
	dv.Interface = iface
	dv.DensityBits = density
	dv.IOWidth = ioWidth
	dv.DataRate = rate
	dv.Vdd = interfaceVdd(iface)
	if dv.Vint > dv.Vdd {
		dv.Vint = dv.Vdd
	}
	if dv.Vbl > dv.Vint-0.05 {
		dv.Vbl = dv.Vint - 0.05
	}
	return dv, nil
}

// Description builds a complete DRAM description for the node: the
// generation builder of Section IV.C. The result validates and feeds the
// power engine directly.
func (n Node) Description() *desc.Description {
	return n.Device().Build()
}

// Build synthesizes the full description of the device: floorplan,
// signaling, technology, specification, electrical information and the
// calibrated miscellaneous logic.
func (dv Device) Build() *desc.Description {
	n := dv.Node
	f := n.FeatureNm
	s := func(family string) float64 { return ScaleFrom55(family, f) }
	umScaled := func(base float64, family string) units.Length {
		return units.Micrometers(base * s(family))
	}
	nmScaled := func(base float64, family string) units.Length {
		return units.Nanometers(base * s(family))
	}

	iface := dv.Interface
	prefetch := iface.Prefetch()
	banks := iface.Banks()
	bankAddr := int(math.Round(math.Log2(float64(banks))))
	colAddr := 10
	if iface <= DDR {
		colAddr = 9
	}
	ioWidth := dv.IOWidth
	if ioWidth == 4 {
		// Narrow parts keep the same page by doubling the column depth.
		colAddr++
	}
	pageBits := (1 << uint(colAddr)) * ioWidth
	rowAddr := int(math.Round(math.Log2(float64(dv.DensityBits)))) -
		bankAddr - colAddr - int(math.Round(math.Log2(float64(ioWidth))))

	d := &desc.Description{Name: deviceName(dv)}

	// ---- floorplan ----
	wlPitch, blPitch := CellPitches(n.Arch, f)
	arch := desc.Open
	if n.Arch == Cell8F2 {
		arch = desc.Folded
	}
	rowsPerBank := int(dv.DensityBits / int64(banks) / int64(pageBits))
	bitsPerBL := n.BitsPerBL
	bitsPerLWL := n.BitsPerBL
	blsaStripe := umScaled(anchorBLSAStripe, "BLSAStripeWidth")
	lwdStripe := umScaled(anchorLWDStripe, "LWDStripeWidth")

	subsBL := (rowsPerBank + bitsPerBL - 1) / bitsPerBL
	subsWL := (pageBits + bitsPerLWL - 1) / bitsPerLWL
	// Exact fence-post extents plus a hair of slack so ResolveArray's
	// floor division recovers the same sub-array counts.
	bankH := units.Length(float64(rowsPerBank)*float64(wlPitch) +
		float64(subsBL+1)*float64(blsaStripe) + 1e-9)
	bankW := units.Length(float64(pageBits)*float64(blPitch) +
		float64(subsWL+1)*float64(lwdStripe) + 1e-9)

	banksX := 4
	if banks >= 32 {
		// High-bank-count parts widen the bank array to keep the die
		// aspect ratio manufacturable.
		banksX = 8
	} else if banks < 4 {
		banksX = banks
	}
	banksY := banks / banksX
	if banksY < 1 {
		banksY = 1
	}

	// Horizontal: the Figure 1 arrangement — bank pairs separated by row
	// logic, a central spine with the off-pitch column of the center
	// stripe. Four banks per strip for most generations, eight for the
	// high-bank-count interfaces.
	horizontal := []string{"A1", "R1", "A1", "C0", "A1", "R1", "A1"}
	switch banksX {
	case 8:
		horizontal = []string{"A1", "R1", "A1", "A1", "R1", "A1", "C0",
			"A1", "R1", "A1", "A1", "R1", "A1"}
	case 2:
		horizontal = []string{"A1", "R1", "A1", "C0"}
	case 1:
		horizontal = []string{"A1", "C0"}
	}
	// Vertical: banksY array strips with column logic between, the center
	// stripe in the middle.
	var vertical []string
	topStrips := (banksY + 1) / 2
	for i := 0; i < topStrips; i++ {
		vertical = append(vertical, "A1", "P1")
	}
	vertical = append(vertical, "P2")
	for i := 0; i < banksY-topStrips; i++ {
		vertical = append(vertical, "P1", "A1")
	}
	centerY := 2 * topStrips // index of P2
	spineX := len(horizontal) - 1
	for i, b := range horizontal {
		if b == "C0" {
			spineX = i
		}
	}

	d.Floorplan = desc.Floorplan{
		BitlineDir:           desc.Vertical,
		BitsPerBitline:       bitsPerBL,
		BitsPerLocalWordline: bitsPerLWL,
		Arch:                 arch,
		BlocksPerCSL:         1,
		WordlinePitch:        wlPitch,
		BitlinePitch:         blPitch,
		BLSAStripeWidth:      blsaStripe,
		LWDStripeWidth:       lwdStripe,
		HorizontalBlocks:     horizontal,
		VerticalBlocks:       vertical,
		BlockWidth: map[string]units.Length{
			"A1": bankW,
			"R1": umScaled(150, "MiscLogicWidth"),
			"C0": umScaled(260, ""),
		},
		BlockHeight: map[string]units.Length{
			"A1": bankH,
			"P1": umScaled(180, "MiscLogicWidth"),
			"P2": umScaled(700, "CenterStripe"),
		},
	}

	// ---- signaling ----
	bufBig := func() (nw, pw units.Length) {
		return umScaled(9.6, "MiscLogicWidth"), umScaled(19.2, "MiscLogicWidth")
	}
	bufMid := func() (nw, pw units.Length) {
		return umScaled(4.8, "MiscLogicWidth"), umScaled(9.6, "MiscLogicWidth")
	}
	bufSmall := func() (nw, pw units.Length) {
		return umScaled(2.4, "MiscLogicWidth"), umScaled(4.8, "MiscLogicWidth")
	}
	ref := func(x, y int) *desc.BlockRef { return &desc.BlockRef{X: x, Y: y} }
	seg := func(s desc.Segment) desc.Segment { s.Toggle = -1; return s }
	bn, bp := bufBig()
	mn, mp := bufMid()
	sn, sp := bufSmall()
	lastX := len(horizontal) - 1
	rowLogicX := 1
	if banksX == 1 {
		rowLogicX = 0
	}
	d.Signals = []desc.Segment{
		seg(desc.Segment{Name: "DataW0", Kind: desc.SigDataWrite, Inside: ref(spineX, centerY),
			Fraction: 0.25, Dir: desc.Horizontal, MuxRatio: prefetch, BufNWidth: bn, BufPWidth: bp}),
		seg(desc.Segment{Name: "DataW1", Kind: desc.SigDataWrite,
			Start: ref(spineX, centerY), End: ref(rowLogicX, centerY), BufNWidth: bn, BufPWidth: bp}),
		seg(desc.Segment{Name: "DataW2", Kind: desc.SigDataWrite,
			Start: ref(rowLogicX, centerY), End: ref(rowLogicX, 0), BufNWidth: mn, BufPWidth: mp}),
		seg(desc.Segment{Name: "DataW3", Kind: desc.SigDataWrite, Inside: ref(0, 0),
			Fraction: 0.5, Dir: desc.Horizontal, BufNWidth: mn, BufPWidth: mp}),
		seg(desc.Segment{Name: "DataR0", Kind: desc.SigDataRead, Inside: ref(0, 0),
			Fraction: 0.5, Dir: desc.Horizontal, BufNWidth: mn, BufPWidth: mp}),
		seg(desc.Segment{Name: "DataR1", Kind: desc.SigDataRead,
			Start: ref(rowLogicX, 0), End: ref(rowLogicX, centerY), BufNWidth: mn, BufPWidth: mp}),
		seg(desc.Segment{Name: "DataR2", Kind: desc.SigDataRead,
			Start: ref(rowLogicX, centerY), End: ref(spineX, centerY), BufNWidth: bn, BufPWidth: bp}),
		seg(desc.Segment{Name: "DataR3", Kind: desc.SigDataRead, Inside: ref(spineX, centerY),
			Fraction: 0.25, Dir: desc.Horizontal, MuxRatio: prefetch, BufNWidth: bn, BufPWidth: bp}),
		seg(desc.Segment{Name: "Clk0", Kind: desc.SigClock,
			Start: ref(0, centerY), End: ref(lastX, centerY), Wires: clockWires(iface),
			BufNWidth: bn, BufPWidth: bp}),
		seg(desc.Segment{Name: "Ctrl0", Kind: desc.SigControl,
			Start: ref(0, centerY), End: ref(lastX, centerY), BufNWidth: sn, BufPWidth: sp}),
		seg(desc.Segment{Name: "AddrRow0", Kind: desc.SigAddrRow,
			Start: ref(spineX, centerY), End: ref(rowLogicX, centerY), BufNWidth: sn, BufPWidth: sp}),
		seg(desc.Segment{Name: "AddrRow1", Kind: desc.SigAddrRow,
			Start: ref(rowLogicX, centerY), End: ref(rowLogicX, 0), BufNWidth: sn, BufPWidth: sp}),
		seg(desc.Segment{Name: "AddrCol0", Kind: desc.SigAddrCol,
			Start: ref(spineX, centerY), End: ref(rowLogicX, centerY-1), BufNWidth: sn, BufPWidth: sp}),
		seg(desc.Segment{Name: "AddrBank0", Kind: desc.SigAddrBank,
			Start: ref(spineX, centerY), End: ref(rowLogicX, centerY), BufNWidth: sn, BufPWidth: sp}),
	}

	// ---- technology ----
	gateOxideLogic := nmScaled(anchorGateOxideLogic, "GateOxideLogic")
	gateOxideHV := nmScaled(anchorGateOxideHV, "GateOxideHV")
	if f > 90 {
		// Table II: dual gate oxide arrives at the 110→90 transition;
		// before it, logic transistors use the thick oxide.
		gateOxideLogic = gateOxideHV
	}
	foldedMuxW, foldedMuxL := units.Length(0), units.Length(0)
	if arch == desc.Folded {
		foldedMuxW = umScaled(0.4, "BLSADeviceWidth")
		foldedMuxL = nmScaled(90, "BLSADeviceLength")
	}
	d.Technology = desc.Technology{
		GateOxideLogic:     gateOxideLogic,
		GateOxideHV:        gateOxideHV,
		GateOxideCell:      nmScaled(anchorGateOxideCell, "GateOxideCell"),
		MinGateLengthLogic: nmScaled(anchorMinLenLogic, "MinGateLengthLogic"),
		JunctionCapLogic:   units.FemtofaradsPerMicrometer(anchorJuncLogic * s("JunctionCap")),
		MinGateLengthHV:    nmScaled(anchorMinLenHV, "MinGateLengthHV"),
		JunctionCapHV:      units.FemtofaradsPerMicrometer(anchorJuncHV * s("JunctionCap")),
		CellAccessLength:   nmScaled(anchorCellAccessLen, "CellAccessLength"),
		CellAccessWidth:    units.Nanometers(f),
		BitlineCap: units.Femtofarads(anchorBitlineCap *
			float64(bitsPerBL) / 512 * s("BitlineCapPerCell")),
		CellCap:            units.Femtofarads(anchorCellCap),
		BitlineToWLShare:   0.30,
		BitsPerCSL:         8,
		WireCapMWL:         units.FemtofaradsPerMicrometer(anchorWireCapMWL * s("WireCap")),
		MWLPredecodeRatio:  0.25,
		MWLDecoderNMOS:     umScaled(1.0, "RowDeviceWidth"),
		MWLDecoderPMOS:     umScaled(2.0, "RowDeviceWidth"),
		MWLDecoderActivity: 0.25,
		WLControlLoadNMOS:  umScaled(2.0, "RowDeviceWidth"),
		WLControlLoadPMOS:  umScaled(4.0, "RowDeviceWidth"),
		SWDriverNMOS:       umScaled(0.6, "RowDeviceWidth"),
		SWDriverPMOS:       umScaled(1.2, "RowDeviceWidth"),
		SWDriverRestore:    umScaled(0.3, "RowDeviceWidth"),
		WireCapLWL:         units.FemtofaradsPerMicrometer(anchorWireCapLWL * s("WireCap")),

		BLSASenseNMOSWidth:  umScaled(0.7, "BLSADeviceWidth"),
		BLSASenseNMOSLength: nmScaled(120, "BLSADeviceLength"),
		BLSASensePMOSWidth:  umScaled(0.9, "BLSADeviceWidth"),
		BLSASensePMOSLength: nmScaled(120, "BLSADeviceLength"),
		BLSAEqualizeWidth:   umScaled(0.3, "BLSADeviceWidth"),
		BLSAEqualizeLength:  nmScaled(90, "BLSADeviceLength"),
		BLSABitSwitchWidth:  umScaled(0.5, "BLSADeviceWidth"),
		BLSABitSwitchLength: nmScaled(90, "BLSADeviceLength"),
		BLSAMuxWidth:        foldedMuxW,
		BLSAMuxLength:       foldedMuxL,
		BLSANSetWidth:       umScaled(0.8, "BLSADeviceWidth"),
		BLSANSetLength:      nmScaled(120, "BLSADeviceLength"),
		BLSAPSetWidth:       umScaled(0.8, "BLSADeviceWidth"),
		BLSAPSetLength:      nmScaled(120, "BLSADeviceLength"),

		WireCapSignal: units.FemtofaradsPerMicrometer(anchorWireCapSignal * s("WireCap")),
	}

	// ---- specification ----
	dataClock := units.Frequency(float64(dv.DataRate) / 2)
	if iface == SDR {
		dataClock = units.Frequency(float64(dv.DataRate))
	}
	d.Spec = desc.Specification{
		IOWidth:          ioWidth,
		DataRate:         dv.DataRate,
		ClockWires:       clockWires(iface),
		DataClock:        dataClock,
		ControlClock:     dataClock,
		BankAddrBits:     bankAddr,
		RowAddrBits:      rowAddr,
		ColAddrBits:      colAddr,
		MiscCtrlSignals:  6 + int(iface),
		BurstLength:      burstLength(iface),
		RowCycle:         n.TRC,
		RowToColumnDelay: n.TRCD,
		PrechargeTime:    n.TRP,
		CASLatency:       n.TRCD,
		FourBankWindow:   fourBankWindow(iface),
		RowToRowDelay:    rowToRow(iface),
		RefreshInterval:  units.Duration(7.8 * units.Micro),
		RefreshCycle: units.Duration(35e-9*math.Sqrt(float64(dv.DensityBits)/float64(128<<20)) +
			40e-9),
	}

	// ---- electrical ----
	// Constant sink: reference currents plus the DC bias of the DLL and
	// the input receivers — absent on SDR (TTL inputs, no DLL), heavy on
	// DDR2 designs, improving afterwards, growing again with data rate.
	constBase := map[Interface]float64{
		SDR: 3e-3, DDR: 8e-3, DDR2: 16e-3, DDR3: 12e-3, DDR4: 12e-3, DDR5: 14e-3,
	}[iface]
	constCurrent := constBase * math.Sqrt(float64(dv.DataRate)/float64(n.DataRate))
	if constCurrent < 1e-3 {
		constCurrent = 1e-3
	}
	d.Electrical = desc.Electrical{
		Vdd: dv.Vdd, Vint: dv.Vint, Vbl: dv.Vbl, Vpp: dv.Vpp,
		EffInt: 0.95, EffBl: 0.90, EffPp: 0.50,
		ConstantCurrent: units.Current(constCurrent),
	}

	// ---- miscellaneous logic (Section III.B.5 fit parameters) ----
	// Peripheral logic complexity grows with each interface generation;
	// the gate counts scale from the DDR3 calibration by a per-generation
	// complexity factor, and device widths shrink with the MiscLogicWidth
	// curve of Figure 6.
	complexity := math.Pow(1.35, float64(iface)-float64(DDR3))
	gw := func(um float64) units.Length { return umScaled(um, "MiscLogicWidth") }
	gates := func(base float64, c float64) int { return int(base*c + 0.5) }
	d.LogicBlocks = []desc.LogicBlock{
		{Name: "clocktree", Gates: gates(2400, complexity), AvgNMOSWidth: gw(0.6),
			AvgPMOSWidth: gw(1.2), TransistorsPerGate: 4,
			GateDensity: 0.30, WiringDensity: 0.45, Toggle: 0.6},
		{Name: "control", Gates: gates(4800, complexity), AvgNMOSWidth: gw(0.5),
			AvgPMOSWidth: gw(1.0), TransistorsPerGate: 4,
			GateDensity: 0.25, WiringDensity: 0.40, Toggle: 0.2},
		{Name: "rowlogic", Gates: gates(12000, math.Sqrt(complexity)), AvgNMOSWidth: gw(0.5),
			AvgPMOSWidth: gw(1.0), TransistorsPerGate: 4,
			GateDensity: 0.25, WiringDensity: 0.40, Toggle: 0.8,
			ActiveDuring: []desc.Op{desc.OpActivate, desc.OpPrecharge, desc.OpRefresh}},
		{Name: "columnlogic", Gates: gates(21600, complexity), AvgNMOSWidth: gw(0.5),
			AvgPMOSWidth: gw(1.0), TransistorsPerGate: 4,
			GateDensity: 0.25, WiringDensity: 0.40, Toggle: 0.25,
			ActiveDuring: []desc.Op{desc.OpRead, desc.OpWrite}},
		{Name: "interface", Gates: gates(24000, complexity), AvgNMOSWidth: gw(0.6),
			AvgPMOSWidth: gw(1.2), TransistorsPerGate: 4,
			GateDensity: 0.30, WiringDensity: 0.45, Toggle: 0.5,
			ActiveDuring: []desc.Op{desc.OpRead, desc.OpWrite}},
	}

	d.Pattern = desc.Pattern{Loop: []desc.Op{
		desc.OpActivate, desc.OpNop, desc.OpWrite, desc.OpNop,
		desc.OpRead, desc.OpNop, desc.OpPrecharge, desc.OpNop,
	}}
	return d
}

// burstLength returns the mode-register burst length of the interface: a
// column command bursts eight beats per pin on every generation up to
// DDR4 (on SDR that is eight internal column cycles through the open
// row; from DDR3 on a single 8n prefetch), sixteen on DDR5.
func burstLength(i Interface) int {
	if i == DDR5 {
		return 16
	}
	return 8
}

func clockWires(i Interface) int {
	if i == SDR {
		return 1
	}
	return 2
}

func fourBankWindow(i Interface) units.Duration {
	if i >= DDR2 {
		return units.Nanoseconds(40)
	}
	return 0
}

func rowToRow(i Interface) units.Duration {
	if i >= DDR2 {
		return units.Nanoseconds(7.5)
	}
	return units.Nanoseconds(15)
}

// BuildAll returns descriptions for every roadmap node.
func BuildAll() ([]*desc.Description, error) {
	return BuildAllOpts(engine.Options{Workers: 1})
}

// BuildAllOpts is BuildAll with batch-evaluation options: the nodes
// synthesize and validate concurrently, in roadmap order.
func BuildAllOpts(opts engine.Options) ([]*desc.Description, error) {
	out, err := engine.Map(Roadmap(), func(_ int, n Node) (*desc.Description, error) {
		d := n.Description()
		if err := d.Validate(); err != nil {
			return nil, fmt.Errorf("scaling: node %s: %w", n.Name(), err)
		}
		return d, nil
	}, opts)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// deviceName labels a device like the paper's figures: "1G DDR3 x16
// 1600Mbps 55nm".
func deviceName(dv Device) string {
	d := dv.DensityBits / (1 << 20)
	ds := fmt.Sprintf("%dM", d)
	if d >= 1024 {
		ds = fmt.Sprintf("%dG", d/1024)
	}
	return fmt.Sprintf("%s %s x%d %.0fMbps %.0fnm", ds, dv.Interface,
		dv.IOWidth, float64(dv.DataRate)/1e6, dv.Node.FeatureNm)
}
