package scaling

import (
	"fmt"
	"math"

	"drampower/internal/core"
	"drampower/internal/engine"
)

// TrendPoint is one generation of the Figure 13 energy-per-bit and
// die-area trend: the roadmap node with its built model's headline
// figures.
type TrendPoint struct {
	Node Node
	// DieAreaMM2 is the die area in mm².
	DieAreaMM2 float64
	// EnergyPerBitPJ is the energy per bit of the interleaved (IDD7)
	// pattern in picojoules.
	EnergyPerBitPJ float64
	// GenRatio is the energy reduction versus the previous roadmap node
	// (previous energy / this energy; 1.5 means a 1.5x reduction). Zero
	// for the first node.
	GenRatio float64
}

// EnergyTrend builds every roadmap node and reports the Figure 13 series
// in roadmap order. The node models build concurrently per opts; the
// generation ratios chain serially afterwards, so any worker count
// produces the same series.
func EnergyTrend(opts engine.Options) ([]TrendPoint, error) {
	pts, err := engine.Map(Roadmap(), func(_ int, n Node) (TrendPoint, error) {
		m, err := core.Build(n.Description())
		if err != nil {
			return TrendPoint{}, fmt.Errorf("scaling: node %s: %w", n.Name(), err)
		}
		return TrendPoint{
			Node:           n,
			DieAreaMM2:     float64(m.DieArea()) / 1e-6,
			EnergyPerBitPJ: m.EnergyPerBitIDD7().Picojoules(),
		}, nil
	}, opts)
	if err != nil {
		return nil, err
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].EnergyPerBitPJ > 0 {
			pts[i].GenRatio = pts[i-1].EnergyPerBitPJ / pts[i].EnergyPerBitPJ
		}
	}
	return pts, nil
}

// ReductionPerGeneration returns the geometric-mean energy reduction
// factor per generation between the nodes with the given feature sizes
// (the paper's headline: ~1.5x historic from 170 nm to 44 nm, ~1.2x
// forecast from 44 nm to 16 nm). Zero if either node is missing or the
// range is empty.
func ReductionPerGeneration(pts []TrendPoint, fromNm, toNm float64) float64 {
	fromIdx, toIdx := -1, -1
	for i, p := range pts {
		if p.Node.FeatureNm == fromNm {
			fromIdx = i
		}
		if p.Node.FeatureNm == toNm {
			toIdx = i
		}
	}
	if fromIdx < 0 || toIdx < 0 || toIdx <= fromIdx || pts[toIdx].EnergyPerBitPJ <= 0 {
		return 0
	}
	return math.Pow(pts[fromIdx].EnergyPerBitPJ/pts[toIdx].EnergyPerBitPJ,
		1.0/float64(toIdx-fromIdx))
}
