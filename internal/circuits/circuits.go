// Package circuits models the on-pitch DRAM circuitry of Section II and
// III.B.3 of the paper: the bitline sense-amplifier (Figure 2, 11
// transistors per bitline pair), the local wordline driver (Figure 3, 3
// transistors per local wordline), the master wordline path with its
// decoder, and the column access path (column select lines, bit switches,
// local array data lines).
//
// Each model yields ChargeItems: named capacitance × events × domain
// records that the power engine (package core) turns into charge, current
// and power via Q = C·V·n and E = C·V²·n. "Events" counts charging events
// — discharging draws nothing from the supply, so a full swing up and down
// is one event, which is equivalent to the paper's convention of ½·C·V²
// per half-swing counted twice (Eq. 1–2).
package circuits

import (
	"drampower/internal/desc"
	"drampower/internal/geom"
	"drampower/internal/tech"
	"drampower/internal/units"
)

// Group classifies charge items for reporting and for the shift analysis
// of Section IV.B (array-related vs wiring vs logic power).
type Group int

// Reporting groups.
const (
	GroupArray    Group = iota // bitlines, cells, sense amplifiers
	GroupRow                   // wordlines, row decode
	GroupColumn                // column select, local data lines
	GroupDataPath              // data bus segments, serializer
	GroupClock                 // clock distribution
	GroupLogic                 // miscellaneous peripheral logic
	GroupStatic                // constant current sinks
)

var groupNames = map[Group]string{
	GroupArray: "array", GroupRow: "row", GroupColumn: "column",
	GroupDataPath: "datapath", GroupClock: "clock", GroupLogic: "logic",
	GroupStatic: "static",
}

// String returns the lower-case group name.
func (g Group) String() string { return groupNames[g] }

// ChargeItem is one named contribution: Cap is the capacitance charged per
// event, Events the number of charging events per operation, and Domain
// the supply the charge is drawn from.
type ChargeItem struct {
	Name   string
	Group  Group
	Domain desc.Domain
	Cap    units.Capacitance
	Events float64
}

// Charge returns the total charge the item draws from its domain supply
// per operation: Q = C·V·n.
func (it ChargeItem) Charge(v units.Voltage) units.Charge {
	return units.Charge(float64(it.Cap) * float64(v) * it.Events)
}

// Energy returns the energy the item draws from its domain supply per
// operation: E = C·V²·n.
func (it ChargeItem) Energy(v units.Voltage) units.Energy {
	return units.Energy(float64(it.Cap) * float64(v) * float64(v) * it.Events)
}

// setDeviceSharing is the number of sense-amplifier pairs that share one
// pair of set (sense-enable) drivers along a stripe. Typical stripe
// layouts place one NSET/PSET driver per 4–16 pairs; the model uses 8.
const setDeviceSharing = 8

// equalizeTransistors is the transistor count of the equalize block of
// Figure 2: one bitline-to-bitline equalizer plus two devices to the
// bitline precharge level.
const equalizeTransistors = 3

// ActivateItems returns the charge items of one activate command: master
// wordline and row decode, local wordlines with their drivers and cell
// gates, bitline sensing, cell restore and sense-amplifier device loads.
func ActivateItems(p tech.Params, d *desc.Description, a *geom.ArrayLayout) []ChargeItem {
	t := d.Technology
	var items []ChargeItem
	// Partial-activation schemes (Section V) raise only a fraction of the
	// row's local wordlines and sense amplifiers; the master wordline and
	// the row decode still run for the full row.
	frac := d.Floorplan.EffectiveActivation()

	// Master wordline: the M2 wire across the bank plus the junction of
	// its decoder pull-down and the select-gate loads of every local
	// wordline driver stripe it crosses. Boosted domain.
	mwlCap := tech.WireCap(a.MasterWLLength, t.WireCapMWL) +
		p.DrainLoad(t.MWLDecoderNMOS, tech.ClassHV) +
		p.DrainLoad(t.MWLDecoderPMOS, tech.ClassHV) +
		// Each LWD stripe taps the master wordline with the gates of the
		// local driver pair it selects (Figure 3).
		(p.GateLoad(t.SWDriverNMOS, 0, tech.ClassHV) +
			p.GateLoad(t.SWDriverPMOS, 0, tech.ClassHV)).Times(float64(a.LWDStripes))
	items = append(items, ChargeItem{
		Name: "master wordline", Group: GroupRow, Domain: desc.DomainVpp,
		Cap: mwlCap, Events: 1,
	})

	// Row predecode and decoder switching (Vint domain): the address
	// predecode lines toggle with the given activity across the decoder.
	if t.MWLPredecodeRatio > 0 {
		predecodeLines := 1 / t.MWLPredecodeRatio
		decCap := p.GateLoad(t.MWLDecoderNMOS, 0, tech.ClassHV) +
			p.GateLoad(t.MWLDecoderPMOS, 0, tech.ClassHV)
		items = append(items, ChargeItem{
			Name: "row decoder", Group: GroupRow, Domain: desc.DomainVint,
			Cap:    decCap.Times(t.MWLDecoderActivity),
			Events: predecodeLines,
		})
	}

	// Wordline controller: the phase/control lines distributed along the
	// selected row of LWD stripes.
	wlCtlCap := p.GateLoad(t.WLControlLoadNMOS, 0, tech.ClassHV) +
		p.GateLoad(t.WLControlLoadPMOS, 0, tech.ClassHV)
	items = append(items, ChargeItem{
		Name: "wordline control", Group: GroupRow, Domain: desc.DomainVpp,
		Cap: wlCtlCap, Events: float64(a.LWDStripes),
	})

	// Local wordlines: one per sub-array across the bank. Load = poly
	// wire + the gates of every cell on the line + the driver's own
	// junctions (Figure 3's three devices).
	lwlCap := tech.WireCap(a.LocalWLLength, t.WireCapLWL) +
		p.CellAccessGateCap().Times(float64(d.Floorplan.BitsPerLocalWordline)) +
		p.DrainLoad(t.SWDriverNMOS, tech.ClassHV) +
		p.DrainLoad(t.SWDriverPMOS, tech.ClassHV) +
		p.DrainLoad(t.SWDriverRestore, tech.ClassHV)
	items = append(items, ChargeItem{
		Name: "local wordlines", Group: GroupRow, Domain: desc.DomainVpp,
		Cap: lwlCap, Events: frac * float64(a.SubarraysAlongWL),
	})

	// Bitline sensing: each pair develops from the Vbl/2 precharge level;
	// the supply delivers Cbl·Vbl/2 of charge into the high-going bitline,
	// i.e. an effective capacitance of Cbl/2 at Vbl per pair.
	items = append(items, ChargeItem{
		Name: "bitline sensing", Group: GroupArray, Domain: desc.DomainVbl,
		Cap: t.BitlineCap.Times(0.5), Events: frac * float64(a.PageBits),
	})

	// Bitline-to-wordline coupling: the rising wordline couples into every
	// bitline it crosses through the given share of the bitline
	// capacitance; the sense amplifier restores the disturbance from Vbl.
	items = append(items, ChargeItem{
		Name: "bitline-wordline coupling", Group: GroupArray, Domain: desc.DomainVbl,
		Cap:    t.BitlineCap.Times(t.BitlineToWLShare * 0.5),
		Events: frac * float64(a.PageBits),
	})

	// Cell restore: on average the cells of the page take Ccell·Vbl/4 of
	// charge (half the cells store a high level, restored by half a swing
	// after charge sharing with the bitline).
	items = append(items, ChargeItem{
		Name: "cell restore", Group: GroupArray, Domain: desc.DomainVbl,
		Cap: t.CellCap.Times(0.25), Events: frac * float64(a.PageBits),
	})

	// Sense-amplifier devices: the cross-coupled pairs' gates and
	// junctions swing with the bitlines; the shared set drivers switch
	// once per sharing group.
	saCap := (tech.GateCap(t.BLSASenseNMOSWidth, t.BLSASenseNMOSLength, p.Oxide(tech.ClassLogic)) +
		tech.GateCap(t.BLSASensePMOSWidth, t.BLSASensePMOSLength, p.Oxide(tech.ClassLogic))).Times(2) +
		(p.DrainLoad(t.BLSASenseNMOSWidth, tech.ClassLogic) +
			p.DrainLoad(t.BLSASensePMOSWidth, tech.ClassLogic)).Times(2)
	setCap := (tech.GateCap(t.BLSANSetWidth, t.BLSANSetLength, p.Oxide(tech.ClassLogic)) +
		tech.GateCap(t.BLSAPSetWidth, t.BLSAPSetLength, p.Oxide(tech.ClassLogic))).Times(1.0 / setDeviceSharing)
	items = append(items, ChargeItem{
		Name: "sense amplifier devices", Group: GroupArray, Domain: desc.DomainVbl,
		Cap: saCap + setCap, Events: frac * float64(a.PageBits),
	})

	// Folded-bitline arrays add a bitline multiplexer per pair whose gate
	// is boosted to pass the full bitline level.
	if d.Floorplan.Arch == desc.Folded && t.BLSAMuxWidth > 0 {
		muxCap := tech.GateCap(t.BLSAMuxWidth, t.BLSAMuxLength, p.Oxide(tech.ClassHV)).Times(2)
		items = append(items, ChargeItem{
			Name: "bitline multiplexers", Group: GroupArray, Domain: desc.DomainVpp,
			Cap: muxCap, Events: frac * float64(a.PageBits),
		})
	}
	return items
}

// PrechargeItems returns the charge items of one precharge command. The
// bitlines themselves are equalized by charge sharing (no supply draw, the
// one adiabatic saving the paper notes); what costs energy is driving the
// equalize gates, the wordline restore devices and the master wordline
// path control.
func PrechargeItems(p tech.Params, d *desc.Description, a *geom.ArrayLayout) []ChargeItem {
	t := d.Technology
	var items []ChargeItem
	frac := d.Floorplan.EffectiveActivation()

	// Equalize gates: three boosted devices per pair (Figure 2).
	eqCap := tech.GateCap(t.BLSAEqualizeWidth, t.BLSAEqualizeLength, p.Oxide(tech.ClassHV)).
		Times(equalizeTransistors)
	items = append(items, ChargeItem{
		Name: "equalize gates", Group: GroupArray, Domain: desc.DomainVpp,
		Cap: eqCap, Events: frac * float64(a.PageBits),
	})

	// Wordline restore devices: pull the local wordlines low again.
	restoreCap := p.GateLoad(t.SWDriverRestore, 0, tech.ClassHV)
	items = append(items, ChargeItem{
		Name: "wordline restore", Group: GroupRow, Domain: desc.DomainVpp,
		Cap: restoreCap, Events: frac * float64(a.SubarraysAlongWL),
	})

	// Wordline control returns to the precharge state.
	wlCtlCap := p.GateLoad(t.WLControlLoadNMOS, 0, tech.ClassHV) +
		p.GateLoad(t.WLControlLoadPMOS, 0, tech.ClassHV)
	items = append(items, ChargeItem{
		Name: "wordline control", Group: GroupRow, Domain: desc.DomainVpp,
		Cap: wlCtlCap, Events: float64(a.LWDStripes),
	})

	// Precharge level regeneration: equalizing true and complement bitline
	// recovers the midlevel for free only in the ideal case; in practice
	// the bitline reference generator restores the charge-sharing midpoint
	// against sense-amplifier imbalance, array leakage and the charge the
	// column access removed. Modeled as a quarter of the bitline
	// capacitance recharged from the Vbl domain per pair.
	items = append(items, ChargeItem{
		Name: "precharge level regeneration", Group: GroupArray, Domain: desc.DomainVbl,
		Cap: t.BitlineCap.Times(0.25), Events: frac * float64(a.PageBits),
	})
	return items
}

// ColumnItems returns the charge items of one column command (read or
// write) transferring `bits` bits between the sense amplifiers and the
// master array data lines: column select pulses with the bit-switch gates
// they drive, and the local array data lines. The master array data lines
// and everything downstream belong to the signaling floorplan. For writes
// the flipped bitlines and cells are added.
func ColumnItems(p tech.Params, d *desc.Description, a *geom.ArrayLayout, bits int, write bool) []ChargeItem {
	t := d.Technology
	var items []ChargeItem
	if t.BitsPerCSL <= 0 || bits <= 0 {
		return items
	}
	cslPulses := float64(bits) / float64(t.BitsPerCSL)

	// Column select line: M3 wire over BlocksPerCSL array blocks plus the
	// gates of the bit switches it turns on (two per accessed pair).
	cslCap := tech.WireCap(a.CSLLength, t.WireCapSignal) +
		tech.GateCap(t.BLSABitSwitchWidth, t.BLSABitSwitchLength, p.Oxide(tech.ClassLogic)).
			Times(2*float64(t.BitsPerCSL))
	items = append(items, ChargeItem{
		Name: "column select lines", Group: GroupColumn, Domain: desc.DomainVint,
		Cap: cslCap, Events: cslPulses,
	})

	// Local array data lines: differential pairs along the sense-amplifier
	// stripe; per transferred bit one line of the pair swings, loaded by
	// the wire and the bit-switch junctions hanging on it.
	ldqCap := tech.WireCap(a.LocalWLLength, t.WireCapSignal) +
		p.DrainLoad(t.BLSABitSwitchWidth, tech.ClassLogic).Times(float64(t.BitsPerCSL))
	items = append(items, ChargeItem{
		Name: "local data lines", Group: GroupColumn, Domain: desc.DomainVint,
		Cap: ldqCap, Events: float64(bits),
	})

	if write {
		// Writing flips on average half the accessed bitline pairs
		// rail-to-rail and rewrites the corresponding cells.
		items = append(items, ChargeItem{
			Name: "written bitlines", Group: GroupArray, Domain: desc.DomainVbl,
			Cap: t.BitlineCap, Events: 0.5 * float64(bits),
		})
		items = append(items, ChargeItem{
			Name: "written cells", Group: GroupArray, Domain: desc.DomainVbl,
			Cap: t.CellCap, Events: 0.5 * float64(bits),
		})
	}
	return items
}

// BLSATransistorsPerPair returns the transistor count of the Figure 2
// sense amplifier for the given architecture: 4 sense devices, 3 equalize
// devices, 2 bit switches, and for folded bitlines 2 multiplexers — the
// "typical 11 transistors per bitline pair" of Section II (the open
// architecture saves the two multiplexers).
func BLSATransistorsPerPair(arch desc.BitlineArch) int {
	n := 4 + equalizeTransistors + 2
	if arch == desc.Folded {
		n += 2
	}
	return n
}

// LWDTransistorsPerLine returns the transistor count of the Figure 3 local
// wordline driver: the CMOS pair plus the restore device.
func LWDTransistorsPerLine() int { return 3 }
