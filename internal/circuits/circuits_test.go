package circuits

import (
	"math"
	"testing"
	"testing/quick"

	"drampower/internal/desc"
	"drampower/internal/geom"
	"drampower/internal/tech"
	"drampower/internal/units"
)

func setup(t *testing.T) (tech.Params, *desc.Description, *geom.ArrayLayout) {
	t.Helper()
	d := desc.Sample1GbDDR3()
	g, err := geom.NewGrid(&d.Floorplan)
	if err != nil {
		t.Fatal(err)
	}
	w, h, err := geom.ArrayBlockExtents(g)
	if err != nil {
		t.Fatal(err)
	}
	a, err := geom.ResolveArray(&d.Floorplan, w, h)
	if err != nil {
		t.Fatal(err)
	}
	return tech.Params{T: &d.Technology}, d, a
}

func findItem(t *testing.T, items []ChargeItem, name string) ChargeItem {
	t.Helper()
	for _, it := range items {
		if it.Name == name {
			return it
		}
	}
	t.Fatalf("item %q not found in %v", name, itemNames(items))
	return ChargeItem{}
}

func itemNames(items []ChargeItem) []string {
	names := make([]string, len(items))
	for i, it := range items {
		names[i] = it.Name
	}
	return names
}

func TestChargeItemMath(t *testing.T) {
	it := ChargeItem{Cap: units.Femtofarads(100), Events: 3}
	q := it.Charge(2)
	if got := float64(q); math.Abs(got-600e-15) > 1e-24 {
		t.Errorf("charge: got %g, want 600fC", got)
	}
	e := it.Energy(2)
	if got := float64(e); math.Abs(got-1200e-15) > 1e-24 {
		t.Errorf("energy: got %g, want 1.2pJ", got)
	}
}

func TestActivateItems(t *testing.T) {
	p, d, a := setup(t)
	items := ActivateItems(p, d, a)

	sensing := findItem(t, items, "bitline sensing")
	if sensing.Domain != desc.DomainVbl {
		t.Errorf("bitline sensing domain: got %v", sensing.Domain)
	}
	if sensing.Events != float64(a.PageBits) {
		t.Errorf("bitline sensing events: got %g, want %d", sensing.Events, a.PageBits)
	}
	// Effective cap is half the bitline cap.
	if math.Abs(float64(sensing.Cap)-0.5*float64(d.Technology.BitlineCap)) > 1e-24 {
		t.Errorf("bitline sensing cap: got %v", sensing.Cap)
	}
	// Bitline sensing charge for a 16k-ish page at 80fF/1.0V should be in
	// the high hundreds of picocoulombs.
	q := sensing.Charge(d.Electrical.Vbl)
	if qn := float64(q) / 1e-9; qn < 0.3 || qn > 1.5 {
		t.Errorf("bitline sensing charge out of ballpark: %g nC", qn)
	}

	mwl := findItem(t, items, "master wordline")
	if mwl.Domain != desc.DomainVpp {
		t.Errorf("master wordline domain: got %v", mwl.Domain)
	}
	if mwl.Events != 1 {
		t.Errorf("master wordline events: got %g", mwl.Events)
	}
	// A ~2mm M2 wire at 0.25fF/um is ~475fF plus device loads.
	if ff := mwl.Cap.Femtofarads(); ff < 400 || ff > 900 {
		t.Errorf("master wordline cap out of ballpark: %g fF", ff)
	}

	lwl := findItem(t, items, "local wordlines")
	if lwl.Events != float64(a.SubarraysAlongWL) {
		t.Errorf("local wordline events: got %g, want %d", lwl.Events, a.SubarraysAlongWL)
	}
	// LWL: 84.5um(wrong dir? ~56um) wire + 512 cell gates (~0.029fF each)
	// + driver junctions: tens of fF.
	if ff := lwl.Cap.Femtofarads(); ff < 10 || ff > 100 {
		t.Errorf("local wordline cap out of ballpark: %g fF", ff)
	}

	// Cell restore must be much smaller than bitline sensing (the paper:
	// power depends only very little on the cell capacitance).
	restore := findItem(t, items, "cell restore")
	if float64(restore.Cap) >= float64(sensing.Cap) {
		t.Errorf("cell restore cap (%v) should be below bitline sensing (%v)",
			restore.Cap, sensing.Cap)
	}

	// No bitline multiplexers in an open architecture.
	for _, it := range items {
		if it.Name == "bitline multiplexers" {
			t.Error("open architecture should not have bitline multiplexers")
		}
	}
}

func TestActivateItemsFolded(t *testing.T) {
	p, d, a := setup(t)
	d.Floorplan.Arch = desc.Folded
	d.Technology.BLSAMuxWidth = units.Micrometers(0.4)
	d.Technology.BLSAMuxLength = units.Nanometers(90)
	items := ActivateItems(p, d, a)
	mux := findItem(t, items, "bitline multiplexers")
	if mux.Domain != desc.DomainVpp {
		t.Errorf("mux domain: got %v", mux.Domain)
	}
	if mux.Events != float64(a.PageBits) {
		t.Errorf("mux events: got %g", mux.Events)
	}
}

func TestPrechargeItems(t *testing.T) {
	p, d, a := setup(t)
	items := PrechargeItems(p, d, a)
	eq := findItem(t, items, "equalize gates")
	if eq.Domain != desc.DomainVpp {
		t.Errorf("equalize domain: got %v", eq.Domain)
	}
	if eq.Events != float64(a.PageBits) {
		t.Errorf("equalize events: got %g", eq.Events)
	}
	// Precharge must cost much less than activate: no bitline charge from
	// the supply (midlevel precharge via charge sharing).
	actItems := ActivateItems(p, d, a)
	actE, preE := 0.0, 0.0
	for _, it := range actItems {
		v, _ := d.Electrical.DomainVoltageAndEff(it.Domain)
		actE += float64(it.Energy(v))
	}
	for _, it := range items {
		v, _ := d.Electrical.DomainVoltageAndEff(it.Domain)
		preE += float64(it.Energy(v))
	}
	if preE >= actE/2 {
		t.Errorf("precharge energy (%g) should be well below activate (%g)", preE, actE)
	}
}

func TestColumnItemsRead(t *testing.T) {
	p, d, a := setup(t)
	bits := d.Spec.IOWidth * d.Spec.BurstLength // 128
	items := ColumnItems(p, d, a, bits, false)
	csl := findItem(t, items, "column select lines")
	if csl.Events != float64(bits)/float64(d.Technology.BitsPerCSL) {
		t.Errorf("CSL pulses: got %g, want %g", csl.Events,
			float64(bits)/float64(d.Technology.BitsPerCSL))
	}
	ldq := findItem(t, items, "local data lines")
	if ldq.Events != float64(bits) {
		t.Errorf("local DQ events: got %g", ldq.Events)
	}
	// Reads must not flip bitlines.
	for _, it := range items {
		if it.Name == "written bitlines" || it.Name == "written cells" {
			t.Errorf("read column items contain %q", it.Name)
		}
	}
}

func TestColumnItemsWrite(t *testing.T) {
	p, d, a := setup(t)
	bits := 128
	items := ColumnItems(p, d, a, bits, true)
	wb := findItem(t, items, "written bitlines")
	if wb.Events != 0.5*float64(bits) {
		t.Errorf("written bitline events: got %g, want %g", wb.Events, 0.5*float64(bits))
	}
	if wb.Domain != desc.DomainVbl {
		t.Errorf("written bitline domain: got %v", wb.Domain)
	}
	// Write energy exceeds read energy for the same bit count.
	rd := ColumnItems(p, d, a, bits, false)
	we, re := 0.0, 0.0
	for _, it := range items {
		v, _ := d.Electrical.DomainVoltageAndEff(it.Domain)
		we += float64(it.Energy(v))
	}
	for _, it := range rd {
		v, _ := d.Electrical.DomainVoltageAndEff(it.Domain)
		re += float64(it.Energy(v))
	}
	if we <= re {
		t.Errorf("write energy (%g) should exceed read energy (%g)", we, re)
	}
}

func TestColumnItemsZeroBits(t *testing.T) {
	p, d, a := setup(t)
	if items := ColumnItems(p, d, a, 0, false); len(items) != 0 {
		t.Errorf("zero-bit column command should produce no items, got %v", itemNames(items))
	}
}

func TestTransistorCounts(t *testing.T) {
	// Section II: "a typical bitline sense-amplifier stripe has 11
	// transistors per bitline pair" (folded), "a typical local wordline
	// driver stripe has 3 transistors per local wordline".
	if got := BLSATransistorsPerPair(desc.Folded); got != 11 {
		t.Errorf("folded BLSA transistors: got %d, want 11", got)
	}
	if got := BLSATransistorsPerPair(desc.Open); got != 9 {
		t.Errorf("open BLSA transistors: got %d, want 9", got)
	}
	if got := LWDTransistorsPerLine(); got != 3 {
		t.Errorf("LWD transistors: got %d, want 3", got)
	}
}

// Property: activate charge scales linearly with page size (PageBits).
func TestPropActivateLinearInPage(t *testing.T) {
	p, d, a := setup(t)
	f := func(mult uint8) bool {
		m := int(mult%8) + 1
		a1 := *a
		a2 := *a
		a2.PageBits = a1.PageBits * m
		e1 := findItemQuiet(ActivateItems(p, d, &a1), "bitline sensing").Events
		e2 := findItemQuiet(ActivateItems(p, d, &a2), "bitline sensing").Events
		return math.Abs(e2-float64(m)*e1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: column charge is linear in transferred bits.
func TestPropColumnLinearInBits(t *testing.T) {
	p, d, a := setup(t)
	f := func(nRaw uint8) bool {
		bits := (int(nRaw%16) + 1) * 8
		q1 := totalEnergy(d, ColumnItems(p, d, a, bits, false))
		q2 := totalEnergy(d, ColumnItems(p, d, a, 2*bits, false))
		return math.Abs(q2-2*q1) < 1e-9*q2+1e-30
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func findItemQuiet(items []ChargeItem, name string) ChargeItem {
	for _, it := range items {
		if it.Name == name {
			return it
		}
	}
	return ChargeItem{}
}

func totalEnergy(d *desc.Description, items []ChargeItem) float64 {
	var e float64
	for _, it := range items {
		v, _ := d.Electrical.DomainVoltageAndEff(it.Domain)
		e += float64(it.Energy(v))
	}
	return e
}
