package ctl

// The fused schedule→replay pipeline: ScheduleInto streams bounded
// per-channel command batches into a Sink instead of materializing the
// merged trace, mirroring the replay engine's decode/simulate pipeline
// (trace.ReplaySource) — a demultiplexer goroutine fills round N+1 with
// per-channel request batches while the batch engine schedules round N's
// channels and hands each channel's commands to the sink, the two rounds
// double-buffered through a 2-slot free/full ring. Peak memory is
// O(round), not O(trace); with a trace.Replayer as the sink, scheduling
// and energy accounting overlap and the merged command slice never
// exists.
//
// Determinism carries over from the sharded Schedule path: each
// channel's command sequence is independent of round boundaries (the
// scheduler is a stateful per-channel loop, and splitting its input
// into batches changes nothing), the refresh-debt fixpoint runs after
// the last round exactly as Schedule's does, and the per-channel
// simulators accumulate in the same order as a two-phase
// schedule-then-replay run — so fused stats and energy are bit-identical
// to the materializing path. DESIGN §14 has the argument.

import (
	"io"
	"sync"

	"drampower/internal/core"
	"drampower/internal/engine"
	"drampower/internal/trace"
)

// Sink consumes the scheduled command stream channel by channel. One
// channel's batches arrive in trace order; batches for distinct channels
// may be delivered concurrently (from different engine workers), so a
// Sink aggregating across channels must either be channel-partitioned —
// like the replayer's per-channel simulators — or lock. The batch slice
// is reused after Consume returns: a sink that retains commands must
// copy them.
type Sink interface {
	Consume(channel int, batch []trace.Command) error
}

// Discard drops every batch: schedule-only runs that want stats without
// a trace or energy accounting.
var Discard Sink = discardSink{}

type discardSink struct{}

func (discardSink) Consume(int, []trace.Command) error { return nil }

// replaySink feeds each channel's batches to the matching per-channel
// simulator of a trace.Replayer.
type replaySink struct{ r *trace.Replayer }

func (s replaySink) Consume(ch int, batch []trace.Command) error {
	return s.r.RunChannel(ch, batch)
}

// ReplaySink returns a Sink that issues each channel's batches on the
// replayer's per-channel simulator (trace.Replayer.RunChannel). The
// replayer must have at least as many channels as the controller.
func ReplaySink(r *trace.Replayer) Sink { return replaySink{r} }

// schedBatch is the number of requests demultiplexed per pipeline round.
// A round expands to at most a few times this many commands, which
// bounds the fused path's memory regardless of trace length.
const schedBatch = 4096

// schedRound is one double-buffered demux round: per-channel request
// batches plus the terminal error, if the source ended inside this
// round. Rounds are pooled across ScheduleInto calls, so the steady
// state allocates nothing per round.
type schedRound struct {
	reqs [][]mappedReq
	n    int   // requests demultiplexed into this round
	err  error // terminal source/demux error (schedule the round, then report)
}

var schedRoundPool = sync.Pool{New: func() any { return new(schedRound) }}

// getSchedRound takes a pooled round sized for the channel count,
// retaining previously grown batch capacities.
func getSchedRound(channels int) *schedRound {
	r := schedRoundPool.Get().(*schedRound)
	for len(r.reqs) < channels {
		r.reqs = append(r.reqs, nil)
	}
	r.reqs = r.reqs[:channels]
	r.reset()
	return r
}

// reset clears a round for refilling, keeping allocated capacity.
func (r *schedRound) reset() {
	for i := range r.reqs {
		r.reqs[i] = r.reqs[i][:0]
	}
	r.n, r.err = 0, nil
}

// cmdBufs recycles the per-channel command batch buffers across
// ScheduleInto calls (each a few hundred KB once grown), keeping the
// fused path's per-call allocations to the controller itself.
var cmdBufsPool = sync.Pool{New: func() any { return new([][]trace.Command) }}

// fillSchedRound demultiplexes up to schedBatch requests into rnd,
// reporting whether the stream is exhausted (end of input or error —
// the round still carries the valid prefix demultiplexed before the
// error, which is scheduled for stats parity with the serial path).
func (c *Controller) fillSchedRound(src Source, rnd *schedRound, last *int64, idx *int) (terminal bool) {
	for rnd.n < schedBatch {
		if !src.Scan() {
			rnd.err = src.Err()
			return true
		}
		req := src.Request()
		co, err := c.checkAndMap(req, *idx, last)
		if err != nil {
			rnd.err = err
			return true
		}
		rnd.reqs[co.Channel] = append(rnd.reqs[co.Channel],
			mappedReq{slot: req.Slot, row: int32(co.Row), bank: int32(co.Bank), write: req.Write})
		rnd.n++
		*idx++
	}
	return false
}

// ScheduleInto schedules the access stream and streams the resulting
// commands into sink as bounded per-channel batches, never building the
// merged trace. The command sequences, stats and any sink-side
// accounting are bit-identical to Schedule's output fed through the
// sink afterwards; only the peak memory (O(round) versus O(trace)) and
// the overlap of scheduling with consumption differ.
//
// The first error wins deterministically: a sink error from the
// lowest-numbered failing channel of the earliest failing round, or the
// source/demux error that truncated the stream (the scheduled prefix's
// batches reach the sink first in both cases, exactly the requests the
// serial path would have counted). On a clean end of stream the refresh
// debt is retired (flushRefreshDebt) and each channel's final batch is
// delivered in channel order.
func (c *Controller) ScheduleInto(src Source, sink Sink) (Stats, error) {
	channels := len(c.chans)

	bufsp := cmdBufsPool.Get().(*[][]trace.Command)
	bufs := *bufsp
	for len(bufs) < channels {
		bufs = append(bufs, nil)
	}
	bufs = bufs[:channels]
	defer func() {
		*bufsp = bufs
		cmdBufsPool.Put(bufsp)
	}()

	rndA, rndB := getSchedRound(channels), getSchedRound(channels)
	free := make(chan *schedRound, 2)
	full := make(chan *schedRound, 2)
	quit := make(chan struct{})
	done := make(chan struct{})
	free <- rndA
	free <- rndB

	// Demultiplexer: pull an empty round from the ring, fill it from the
	// source, hand it over. Only this goroutine touches src.
	go func() {
		defer close(done)
		defer close(full)
		var last int64 = -1
		idx := 0
		for {
			var rnd *schedRound
			select {
			case rnd = <-free:
			case <-quit:
				return
			}
			rnd.reset()
			terminal := c.fillSchedRound(src, rnd, &last, &idx)
			select {
			case full <- rnd:
			case <-quit:
				return
			}
			if terminal {
				return
			}
		}
	}()
	defer func() {
		// On every exit: stop the demultiplexer, then reclaim both rounds
		// (the channel handoffs order its writes before this point).
		close(quit)
		<-done
		schedRoundPool.Put(rndA)
		schedRoundPool.Put(rndB)
	}()

	// One job per channel per round: schedule the channel's batch into
	// its (reused) command buffer and hand it to the sink. Sink errors
	// return as values so the lowest failing channel wins, mirroring the
	// replay pipeline's violation selection.
	eo := c.engineOpts()
	issue := func(i int, reqs []mappedReq) (error, error) {
		if len(reqs) == 0 {
			return nil, nil
		}
		ch := &c.chans[i]
		ch.cmds = bufs[i][:0]
		c.runChannel(ch, reqs)
		bufs[i] = ch.cmds
		return sink.Consume(i, ch.cmds), nil
	}

	for rnd := range full {
		if rnd.n > 0 {
			sinkErrs, _ := engine.Map(rnd.reqs, issue, eo)
			for _, err := range sinkErrs {
				if err != nil {
					return c.sumStats(), err
				}
			}
		}
		if rnd.err != nil {
			return c.sumStats(), rnd.err
		}
		free <- rnd
	}

	// Clean end of stream: retire the refresh debt (the one cross-channel
	// step, after the barrier the ring's drain provides) and deliver the
	// final batches in channel order.
	for i := range c.chans {
		c.chans[i].cmds = bufs[i][:0]
	}
	c.flushRefreshDebt()
	for i := range c.chans {
		ch := &c.chans[i]
		bufs[i] = ch.cmds
		if len(ch.cmds) > 0 {
			if err := sink.Consume(i, ch.cmds); err != nil {
				return c.sumStats(), err
			}
		}
	}
	return c.sumStats(), nil
}

// ScheduleReplay schedules an access trace read from rd (text or .dab,
// sniffed) and replays it through per-channel simulators as it is
// scheduled — the fused pipeline. It returns the scheduling stats and
// the merged energy result, ending the accounting one burst after the
// last command, exactly like replaying the materialized trace with
// trace.Replay: stats, energies and counts are bit-identical to the
// two-phase path, while peak memory stays O(batch). The replayer's
// channel count is forced to the controller's.
func ScheduleReplay(m *core.Model, rd io.Reader, opts Options, ropts trace.ReplayOptions) (Stats, trace.Result, error) {
	return scheduleReplay(m, NewAccessSource(rd), opts, ropts)
}

// ScheduleReplayRequests is ScheduleReplay over an in-memory request
// slice.
func ScheduleReplayRequests(m *core.Model, reqs []Request, opts Options, ropts trace.ReplayOptions) (Stats, trace.Result, error) {
	return scheduleReplay(m, NewSliceSource(reqs), opts, ropts)
}

func scheduleReplay(m *core.Model, src Source, opts Options, ropts trace.ReplayOptions) (Stats, trace.Result, error) {
	c, err := NewController(m, opts)
	if err != nil {
		return Stats{}, trace.Result{}, err
	}
	ropts.Channels = c.Channels()
	r := trace.NewReplayer(m, ropts)
	stats, err := c.ScheduleInto(src, ReplaySink(r))
	if err != nil {
		return stats, trace.Result{}, err
	}
	return stats, r.Result(r.Now() + int64(m.BurstSlots())), nil
}
