package ctl

import (
	"strings"
	"testing"

	"drampower/internal/desc"

	"drampower/internal/core"
)

// specs lists every interleave order (all 24 permutations of the four
// fields) so the round-trip property is pinned for the whole supported
// space, not just the default.
func specs() []string {
	fields := []string{"ch", "ba", "ro", "co"}
	var out []string
	var rec func(cur []string, rest []string)
	rec = func(cur, rest []string) {
		if len(rest) == 0 {
			out = append(out, strings.Join(cur, ":"))
			return
		}
		for i := range rest {
			next := append(append([]string{}, rest[:i]...), rest[i+1:]...)
			rec(append(cur, rest[i]), next)
		}
	}
	rec(nil, fields)
	return out
}

// TestMapperRoundTrip is the satellite pin: for each supported
// interleave spec, map→unmap over random addresses is the identity, and
// distinct addresses never collide on one coordinate tuple.
func TestMapperRoundTrip(t *testing.T) {
	m, err := core.Build(desc.Sample1GbDDR3())
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs() {
		for _, channels := range []int{1, 2, 4} {
			mp, err := MapperFor(m, channels, spec)
			if err != nil {
				t.Fatalf("%s/%dch: %v", spec, channels, err)
			}
			limit := int64(1) << uint(mp.AddressBits())
			seen := make(map[Coord]int64)
			rng := uint64(0xfeed)
			for i := 0; i < 4096; i++ {
				addr := int64(splitmix64(&rng) % uint64(limit))
				co, err := mp.Map(addr)
				if err != nil {
					t.Fatalf("%s/%dch: Map(%#x): %v", spec, channels, addr, err)
				}
				if co.Channel >= channels {
					t.Fatalf("%s/%dch: Map(%#x) channel %d out of range", spec, channels, addr, co.Channel)
				}
				back, err := mp.Unmap(co)
				if err != nil {
					t.Fatalf("%s/%dch: Unmap(%+v): %v", spec, channels, co, err)
				}
				if back != addr {
					t.Fatalf("%s/%dch: %#x -> %+v -> %#x not the identity", spec, channels, addr, co, back)
				}
				if prev, dup := seen[co]; dup && prev != addr {
					t.Fatalf("%s/%dch: addresses %#x and %#x collide on %+v", spec, channels, prev, addr, co)
				}
				seen[co] = addr
			}
		}
	}
}

// TestMapperExhaustiveSmall walks an entire small address space: the map
// must be a bijection (every coordinate tuple hit exactly once).
func TestMapperExhaustiveSmall(t *testing.T) {
	mp, err := ParseMap("co:ro:ba:ch", 1, 2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(1) << uint(mp.AddressBits())
	if n != 256 {
		t.Fatalf("address bits: got %d values, want 256", n)
	}
	seen := make(map[Coord]bool, n)
	for addr := int64(0); addr < n; addr++ {
		co, err := mp.Map(addr)
		if err != nil {
			t.Fatal(err)
		}
		if seen[co] {
			t.Fatalf("coordinate %+v hit twice", co)
		}
		seen[co] = true
		back, err := mp.Unmap(co)
		if err != nil || back != addr {
			t.Fatalf("round trip %#x -> %+v -> %#x (%v)", addr, co, back, err)
		}
	}
	if int64(len(seen)) != n {
		t.Fatalf("bijection covered %d of %d tuples", len(seen), n)
	}
}

func TestMapperErrors(t *testing.T) {
	mp, err := ParseMap(DefaultMap, 1, 3, 13, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mp.Map(-1); err == nil {
		t.Error("negative address accepted")
	}
	if _, err := mp.Map(1 << uint(mp.AddressBits())); err == nil {
		t.Error("address above the space accepted")
	}
	if _, err := mp.Unmap(Coord{Row: 1 << 13}); err == nil {
		t.Error("row outside field accepted")
	}
	if _, err := mp.Unmap(Coord{Channel: 2}); err == nil {
		t.Error("channel outside the 1-bit field accepted")
	}
	for _, bad := range []string{"", "ro", "ro:ba:ch", "ro:ba:ch:co:xx", "ro:ro:ch:co", "ro:bank:ch:co"} {
		if _, err := ParseMap(bad, 1, 3, 13, 7); err == nil {
			t.Errorf("ParseMap(%q) accepted", bad)
		}
	}
	if _, err := ParseMap(DefaultMap, -1, 3, 13, 7); err == nil {
		t.Error("negative width accepted")
	}
	if _, err := ParseMap(DefaultMap, 31, 3, 13, 7); err == nil {
		t.Error("31-bit width accepted")
	}
}

func TestMapperForBurstColumns(t *testing.T) {
	m, err := core.Build(desc.Sample1GbDDR3())
	if err != nil {
		t.Fatal(err)
	}
	mp, err := MapperFor(m, 1, DefaultMap)
	if err != nil {
		t.Fatal(err)
	}
	// 1Gb x16 DDR3: 13 row bits, 3 bank bits, 10 column bits minus 3
	// burst bits (BL8) = 7 column bits, 0 channel bits -> 23 total.
	if got := mp.AddressBits(); got != 23 {
		t.Fatalf("AddressBits: got %d, want 23", got)
	}
	if _, err := MapperFor(m, 3, DefaultMap); err == nil {
		t.Fatal("3 channels accepted")
	}
	if mp.Spec() != DefaultMap {
		t.Fatalf("Spec: got %q", mp.Spec())
	}
}
