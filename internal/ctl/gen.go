package ctl

// Synthetic access-stream generation with a controllable locality knob.
// The generator exists so the rest of the stack can exercise the row-hit
// spectrum — the paper's headline variable — without shipping real
// workload traces: RowHit is the probability that a request lands in the
// row its bank already has open, and sweeping it from 0 to 1 walks a
// stream from pathological (every access a fresh row) to streaming
// (every access a hit).
//
// Generation is deterministic: a hand-rolled splitmix64 PRNG seeded from
// GenOptions.Seed, no global state, no dependence on Go's math/rand
// sequence. Same options -> same requests, forever.

import (
	"fmt"

	"drampower/internal/core"
)

// GenOptions configures GenerateAccesses.
type GenOptions struct {
	// N is the number of requests to generate.
	N int
	// RowHit in [0,1] is the probability a request reuses its bank's
	// current row; the rest pick a fresh row uniformly. Zero is the
	// pathological no-locality stream, one the perfectly streaming one.
	RowHit float64
	// ReadShare in [0,1] is the probability a request is a read
	// (default 1 when negative).
	ReadShare float64
	// Gap is the arrival spacing in slots between consecutive requests
	// (minimum 1; requests arrive at i*Gap).
	Gap int64
	// Seed selects the deterministic request sequence.
	Seed uint64
	// Map and Channels shape the address space (DefaultMap / 1 channel
	// when zero); generated addresses always fit the mapper.
	Map      string
	Channels int
}

// splitmix64 is the PRNG step: tiny, seedable, stable across Go versions.
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit maps a PRNG draw onto [0,1).
func unit(u uint64) float64 { return float64(u>>11) / (1 << 53) }

// below draws one uniform [0,1) variate and compares it against p.
func below(s *uint64, p float64) bool { return unit(splitmix64(s)) < p }

// intn draws a uniform integer in [0,n) (n >= 1).
func intn(s *uint64, n int) int { return int(splitmix64(s) % uint64(n)) }

// GenerateAccesses builds a deterministic access stream for the model:
// each request picks a uniform (channel, bank), stays in that bank's
// open row with probability RowHit, and arrives Gap slots after its
// predecessor.
func GenerateAccesses(m *core.Model, opts GenOptions) ([]Request, error) {
	if opts.N < 0 {
		return nil, fmt.Errorf("ctl: negative request count %d", opts.N)
	}
	if opts.RowHit < 0 || opts.RowHit > 1 {
		return nil, fmt.Errorf("ctl: row-hit probability %v outside [0,1]", opts.RowHit)
	}
	if opts.ReadShare > 1 {
		return nil, fmt.Errorf("ctl: read share %v above 1", opts.ReadShare)
	}
	if opts.ReadShare < 0 {
		opts.ReadShare = 1
	}
	if opts.Gap < 1 {
		opts.Gap = 1
	}
	if opts.Channels < 1 {
		opts.Channels = 1
	}
	spec := opts.Map
	if spec == "" {
		spec = DefaultMap
	}
	mapper, err := MapperFor(m, opts.Channels, spec)
	if err != nil {
		return nil, err
	}
	rows := 1 << uint(mapper.bits[FieldRow])
	cols := 1 << uint(mapper.bits[FieldColumn])
	banks := 1 << uint(mapper.bits[FieldBank])
	// The current row per (channel, bank); -1 until first touched.
	cur := make([]int, opts.Channels*banks)
	for i := range cur {
		cur[i] = -1
	}
	rng := opts.Seed
	reqs := make([]Request, 0, opts.N)
	for i := 0; i < opts.N; i++ {
		ch := 0
		if opts.Channels > 1 {
			ch = intn(&rng, opts.Channels)
		}
		ba := intn(&rng, banks)
		row := cur[ch*banks+ba]
		if row < 0 || !below(&rng, opts.RowHit) {
			row = intn(&rng, rows)
			cur[ch*banks+ba] = row
		}
		co := Coord{Channel: ch, Bank: ba, Row: row, Col: intn(&rng, cols)}
		addr, err := mapper.Unmap(co)
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, Request{
			Slot:  int64(i) * opts.Gap,
			Write: !below(&rng, opts.ReadShare),
			Addr:  addr,
		})
	}
	return reqs, nil
}
