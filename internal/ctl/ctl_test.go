package ctl

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"drampower/internal/core"
	"drampower/internal/desc"
	"drampower/internal/trace"
)

func model(t *testing.T) *core.Model {
	t.Helper()
	m, err := core.Build(desc.Sample1GbDDR3())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// replayAll runs a scheduled trace through the real Simulator/Replayer
// and fails the test on any timing violation — the legality contract.
func replayAll(t *testing.T, m *core.Model, cmds []trace.Command, channels, banksPerChannel int) trace.Result {
	t.Helper()
	if channels <= 1 {
		s := trace.New(m)
		if err := s.Run(cmds); err != nil {
			t.Fatalf("scheduled trace illegal: %v", err)
		}
		return s.Result(s.Now() + 4)
	}
	r := trace.NewReplayer(m, trace.ReplayOptions{Channels: channels})
	if err := r.ReplaySource(trace.NewSliceSource(cmds)); err != nil {
		t.Fatalf("scheduled trace illegal: %v", err)
	}
	return r.Result(r.Now() + 4)
}

// genOpts is the shared workload shape for the policy tests: enough
// requests to cycle every bank, a gap wide enough for power-down to pay.
func genOpts(n int, rowHit float64, gap int64) GenOptions {
	return GenOptions{N: n, RowHit: rowHit, ReadShare: 0.7, Gap: gap, Seed: 42}
}

func schedule(t *testing.T, m *core.Model, reqs []Request, opts Options) ([]trace.Command, Stats) {
	t.Helper()
	cmds, stats, err := ScheduleRequests(m, reqs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return cmds, stats
}

// TestScheduleLegalAllPolicies is the acceptance-criteria pin: for every
// policy (and with power-down and self-refresh in play), replaying the
// scheduler's output reports zero timing violations.
func TestScheduleLegalAllPolicies(t *testing.T) {
	m := model(t)
	for _, tc := range []struct {
		name string
		opts Options
		gen  GenOptions
	}{
		{"open-dense", Options{Policy: PolicyOpen}, genOpts(3000, 0.5, 2)},
		{"open-sparse", Options{Policy: PolicyOpen, PowerDownAfter: 16}, genOpts(1000, 0.5, 200)},
		{"closed-dense", Options{Policy: PolicyClosed}, genOpts(3000, 0.5, 2)},
		{"closed-pd", Options{Policy: PolicyClosed, PowerDownAfter: 16}, genOpts(1000, 0.5, 200)},
		{"closed-sr", Options{Policy: PolicyClosed, PowerDownAfter: 16, SelfRefreshAfter: 300}, genOpts(500, 0.5, 1500)},
		{"timeout", Options{Policy: PolicyTimeout, PageTimeout: 64}, genOpts(2000, 0.5, 30)},
		{"timeout-pd", Options{Policy: PolicyTimeout, PageTimeout: 64, PowerDownAfter: 32}, genOpts(1000, 0.5, 400)},
		{"no-locality", Options{Policy: PolicyOpen}, genOpts(2000, 0, 1)},
		{"all-hits", Options{Policy: PolicyTimeout, PageTimeout: 1000}, genOpts(2000, 1, 1)},
	} {
		for _, channels := range []int{1, 2} {
			name := tc.name
			if channels > 1 {
				name += "-2ch"
			}
			t.Run(name, func(t *testing.T) {
				opts := tc.opts
				opts.Channels = channels
				gen := tc.gen
				gen.Channels = channels
				reqs, err := GenerateAccesses(m, gen)
				if err != nil {
					t.Fatal(err)
				}
				cmds, stats := schedule(t, m, reqs, opts)
				if stats.Requests != int64(gen.N) {
					t.Fatalf("scheduled %d of %d requests", stats.Requests, gen.N)
				}
				if got := stats.RowHits + stats.RowMisses + stats.RowConflicts; got != stats.Requests {
					t.Fatalf("outcome counts %d don't sum to requests %d", got, stats.Requests)
				}
				res := replayAll(t, m, cmds, channels, m.D.Spec.Banks())
				wantBursts := int64(gen.N)
				if got := res.Counts[desc.OpRead] + res.Counts[desc.OpWrite]; got != wantBursts {
					t.Fatalf("replayed %d column commands, want %d", got, wantBursts)
				}
				if opts.PowerDownAfter > 0 && tc.gen.Gap >= 200 && opts.Policy != PolicyOpen {
					if stats.PowerDowns+stats.SelfRefreshes == 0 {
						t.Fatalf("no low-power entries on a gap-%d stream", tc.gen.Gap)
					}
				}
			})
		}
	}
}

// TestScheduleDeterministic pins the byte-identity contract: scheduling
// the same access trace twice yields byte-identical dtb output.
func TestScheduleDeterministic(t *testing.T) {
	m := model(t)
	reqs, err := GenerateAccesses(m, GenOptions{N: 2000, RowHit: 0.6, ReadShare: 0.5, Gap: 7, Seed: 7, Channels: 2})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Policy: PolicyTimeout, PageTimeout: 100, PowerDownAfter: 50, Channels: 2}
	var a, b bytes.Buffer
	cmds1, stats1 := schedule(t, m, reqs, opts)
	if err := trace.WriteBinaryTrace(&a, cmds1); err != nil {
		t.Fatal(err)
	}
	cmds2, stats2 := schedule(t, m, reqs, opts)
	if err := trace.WriteBinaryTrace(&b, cmds2); err != nil {
		t.Fatal(err)
	}
	if stats1 != stats2 {
		t.Fatalf("stats differ between runs:\n%+v\n%+v", stats1, stats2)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("dtb output differs between identical scheduling runs")
	}
	// And through the serialized access-trace round trip too: text and
	// binary .dab inputs must schedule to the same commands.
	var text, bin bytes.Buffer
	if err := WriteAccessTrace(&text, reqs); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinaryAccessTrace(&bin, reqs); err != nil {
		t.Fatal(err)
	}
	for name, rd := range map[string]*bytes.Buffer{"text": &text, "binary": &bin} {
		cmds, stats, err := Schedule(m, rd, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if stats != stats1 {
			t.Fatalf("%s: stats diverge from in-memory run", name)
		}
		var out bytes.Buffer
		if err := trace.WriteBinaryTrace(&out, cmds); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), a.Bytes()) {
			t.Fatalf("%s round trip changed the scheduled trace", name)
		}
	}
}

// TestRowHitKnob checks the generator's locality knob reaches the
// scheduler: higher RowHit must yield a strictly higher measured row-hit
// rate under the open policy.
func TestRowHitKnob(t *testing.T) {
	m := model(t)
	rate := func(rowHit float64) float64 {
		reqs, err := GenerateAccesses(m, genOpts(4000, rowHit, 2))
		if err != nil {
			t.Fatal(err)
		}
		_, stats := schedule(t, m, reqs, Options{Policy: PolicyOpen})
		return stats.RowHitRate()
	}
	lo, mid, hi := rate(0), rate(0.5), rate(0.95)
	if !(lo < mid && mid < hi) {
		t.Fatalf("row-hit rate not monotone in the knob: %.3f, %.3f, %.3f", lo, mid, hi)
	}
	if hi < 0.8 {
		t.Fatalf("rowhit=0.95 stream measured only %.3f hit rate", hi)
	}
	// Closed-page never hits: the bank is precharged after every access.
	reqs, err := GenerateAccesses(m, genOpts(1000, 0.95, 2))
	if err != nil {
		t.Fatal(err)
	}
	_, stats := schedule(t, m, reqs, Options{Policy: PolicyClosed})
	if stats.RowHits != 0 {
		t.Fatalf("closed policy reported %d row hits", stats.RowHits)
	}
}

// TestPolicyEnergyCrossover pins the paper-motivated headline: with a
// power-down policy in play, closed-page beats open-page energy on a
// low-locality stream and loses on a high-locality one.
func TestPolicyEnergyCrossover(t *testing.T) {
	m := model(t)
	energy := func(p Policy, rowHit float64) float64 {
		reqs, err := GenerateAccesses(m, genOpts(2000, rowHit, 100))
		if err != nil {
			t.Fatal(err)
		}
		cmds, _ := schedule(t, m, reqs, Options{Policy: p, PowerDownAfter: 24})
		res := replayAll(t, m, cmds, 1, m.D.Spec.Banks())
		return float64(res.Total)
	}
	if open, closed := energy(PolicyOpen, 0.05), energy(PolicyClosed, 0.05); closed >= open {
		t.Errorf("low locality: closed %.3g J should beat open %.3g J", closed, open)
	}
	if open, closed := energy(PolicyOpen, 0.98), energy(PolicyClosed, 0.98); open >= closed {
		t.Errorf("high locality: open %.3g J should beat closed %.3g J", open, closed)
	}
}

// TestTimeoutPolicyCloses checks the idle window actually fires and that
// the resulting trace still replays.
func TestTimeoutPolicyCloses(t *testing.T) {
	m := model(t)
	reqs, err := GenerateAccesses(m, genOpts(500, 0.9, 300))
	if err != nil {
		t.Fatal(err)
	}
	_, stats := schedule(t, m, reqs, Options{Policy: PolicyTimeout, PageTimeout: 80})
	if stats.TimeoutPrecharges == 0 {
		t.Fatal("no timeout precharges on a gap-300 stream with an 80-slot window")
	}
	_, open := schedule(t, m, reqs, Options{Policy: PolicyOpen})
	if open.TimeoutPrecharges != 0 {
		t.Fatal("open policy emitted timeout precharges")
	}
	if stats.RowHits >= open.RowHits {
		t.Fatalf("timeout policy should lose some hits to closures: %d vs open's %d", stats.RowHits, open.RowHits)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in      string
		policy  Policy
		timeout int64
		ok      bool
	}{
		{"open", PolicyOpen, 0, true},
		{"closed", PolicyClosed, 0, true},
		{"timeout=64", PolicyTimeout, 64, true},
		{"timeout=0", 0, 0, false},
		{"timeout=x", 0, 0, false},
		{"timeout", 0, 0, false},
		{"adaptive", 0, 0, false},
		{"", 0, 0, false},
	} {
		p, n, err := ParsePolicy(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParsePolicy(%q): err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && (p != tc.policy || n != tc.timeout) {
			t.Errorf("ParsePolicy(%q) = %v,%d, want %v,%d", tc.in, p, n, tc.policy, tc.timeout)
		}
	}
}

func TestScheduleErrors(t *testing.T) {
	m := model(t)
	// Out-of-order arrivals.
	_, _, err := ScheduleRequests(m, []Request{{Slot: 10, Addr: 0}, {Slot: 5, Addr: 0}}, Options{})
	var se *ScheduleError
	if !errors.As(err, &se) || se.Index != 1 {
		t.Fatalf("out-of-order: got %v", err)
	}
	// Address outside the mapped space.
	_, _, err = ScheduleRequests(m, []Request{{Slot: 0, Addr: 1 << 40}}, Options{})
	if !errors.As(err, &se) || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("overrange address: got %v", err)
	}
	// Bad options surface as plain errors.
	if _, err := NewController(m, Options{Channels: 3}); err == nil {
		t.Fatal("3 channels accepted")
	}
	if _, err := NewController(m, Options{Policy: PolicyTimeout}); err == nil {
		t.Fatal("timeout policy without a window accepted")
	}
	if _, err := NewController(m, Options{Map: "ro:ba:co"}); err == nil {
		t.Fatal("3-field map accepted")
	}
	// A parse error in the access stream propagates as *ParseError.
	_, _, err = Schedule(m, strings.NewReader("0 q 12\n"), Options{})
	var pe *ParseError
	if !errors.As(err, &pe) || pe.Line != 1 {
		t.Fatalf("bad op: got %v", err)
	}
}

// TestPowerDownRequiresClosedBanks pins the policy coupling: under the
// open policy a bank held open blocks power-down entirely.
func TestPowerDownRequiresClosedBanks(t *testing.T) {
	m := model(t)
	reqs, err := GenerateAccesses(m, genOpts(200, 0.5, 500))
	if err != nil {
		t.Fatal(err)
	}
	_, stats := schedule(t, m, reqs, Options{Policy: PolicyOpen, PowerDownAfter: 16})
	if stats.PowerDowns != 0 {
		t.Fatalf("open policy powered down %d times with rows held open", stats.PowerDowns)
	}
	_, closed := schedule(t, m, reqs, Options{Policy: PolicyClosed, PowerDownAfter: 16})
	if closed.PowerDowns == 0 {
		t.Fatal("closed policy never powered down on a gap-500 stream")
	}
}

// TestSelfRefreshPreferred checks long gaps pick sre over pde and short
// ones fall back.
func TestSelfRefreshPreferred(t *testing.T) {
	m := model(t)
	opts := Options{Policy: PolicyClosed, PowerDownAfter: 16, SelfRefreshAfter: 400}
	long, err := GenerateAccesses(m, genOpts(100, 0, 3000))
	if err != nil {
		t.Fatal(err)
	}
	_, stats := schedule(t, m, long, opts)
	if stats.SelfRefreshes == 0 {
		t.Fatal("no self-refresh on a gap-3000 stream")
	}
	short, err := GenerateAccesses(m, genOpts(100, 0, 250))
	if err != nil {
		t.Fatal(err)
	}
	_, stats = schedule(t, m, short, opts)
	if stats.SelfRefreshes != 0 {
		t.Fatalf("gap-250 stream self-refreshed %d times (threshold 400)", stats.SelfRefreshes)
	}
	if stats.PowerDowns == 0 {
		t.Fatal("gap-250 stream never power-downed")
	}
}
