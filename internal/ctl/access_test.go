package ctl

import (
	"bytes"
	"errors"
	"io"
	"os"
	"strings"
	"testing"
	"testing/iotest"
)

func scanAll(t *testing.T, src Source) []Request {
	t.Helper()
	var reqs []Request
	for src.Scan() {
		reqs = append(reqs, src.Request())
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	return reqs
}

func TestScannerSample(t *testing.T) {
	text, err := os.ReadFile("testdata/sample_access.txt")
	if err != nil {
		t.Fatal(err)
	}
	reqs := scanAll(t, NewScanner(bytes.NewReader(text)))
	want := []Request{
		{0, false, 0x2400},
		{12, false, 0x2401},
		{24, false, 0x2402},
		{40, true, 0x93400},
		{180, false, 9437184},
		{2200, true, 0x100},
		{2300, true, 0x101},
		{2400, true, 257},
	}
	if len(reqs) != len(want) {
		t.Fatalf("got %d requests, want %d", len(reqs), len(want))
	}
	for i := range want {
		if reqs[i] != want[i] {
			t.Errorf("request %d = %+v, want %+v", i, reqs[i], want[i])
		}
	}
}

// TestTextRoundTrip pins the canonical rendering: AppendRequest output
// reparses to the same requests, and a second render is byte-identical.
func TestTextRoundTrip(t *testing.T) {
	reqs := []Request{{0, false, 0}, {7, true, 0x1fffe}, {7, false, 12345}, {1 << 40, true, 1 << 50}}
	var a bytes.Buffer
	if err := WriteAccessTrace(&a, reqs); err != nil {
		t.Fatal(err)
	}
	got := scanAll(t, NewScanner(bytes.NewReader(a.Bytes())))
	if len(got) != len(reqs) {
		t.Fatalf("got %d requests, want %d", len(got), len(reqs))
	}
	for i := range reqs {
		if got[i] != reqs[i] {
			t.Errorf("request %d = %+v, want %+v", i, got[i], reqs[i])
		}
	}
	var b bytes.Buffer
	if err := WriteAccessTrace(&b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("canonical rendering is not a fixed point")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	reqs := []Request{{0, false, 99}, {5, true, 3}, {5, false, 1 << 40}, {100000, true, 0}}
	var buf bytes.Buffer
	if err := WriteBinaryAccessTrace(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	if buf.Bytes()[0] != AccessBinaryMagicByte {
		t.Fatalf("first byte %#x, want %#x", buf.Bytes()[0], AccessBinaryMagicByte)
	}
	got := scanAll(t, NewBinaryScanner(bytes.NewReader(buf.Bytes())))
	if len(got) != len(reqs) {
		t.Fatalf("got %d requests, want %d", len(got), len(reqs))
	}
	for i := range reqs {
		if got[i] != reqs[i] {
			t.Errorf("request %d = %+v, want %+v", i, got[i], reqs[i])
		}
	}
	// An empty trace is just the header, and scans as empty.
	buf.Reset()
	if err := WriteBinaryAccessTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 5 {
		t.Fatalf("empty trace encodes to %d bytes, want 5", buf.Len())
	}
	if got := scanAll(t, NewBinaryScanner(bytes.NewReader(buf.Bytes()))); len(got) != 0 {
		t.Fatalf("empty trace scanned %d requests", len(got))
	}
}

// TestNewAccessSourceSniff checks both encodings arrive at the same
// requests through the sniffing constructor.
func TestNewAccessSourceSniff(t *testing.T) {
	reqs := []Request{{3, false, 17}, {9, true, 0x2400}}
	var text, bin bytes.Buffer
	if err := WriteAccessTrace(&text, reqs); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinaryAccessTrace(&bin, reqs); err != nil {
		t.Fatal(err)
	}
	for name, rd := range map[string]io.Reader{
		"text":           bytes.NewReader(text.Bytes()),
		"binary":         bytes.NewReader(bin.Bytes()),
		"text-dribble":   iotest.OneByteReader(bytes.NewReader(text.Bytes())),
		"binary-dribble": iotest.OneByteReader(bytes.NewReader(bin.Bytes())),
	} {
		got := scanAll(t, NewAccessSource(rd))
		if len(got) != len(reqs) {
			t.Fatalf("%s: got %d requests, want %d", name, len(got), len(reqs))
		}
		for i := range reqs {
			if got[i] != reqs[i] {
				t.Errorf("%s: request %d = %+v, want %+v", name, i, got[i], reqs[i])
			}
		}
	}
	if got := scanAll(t, NewAccessSource(strings.NewReader(""))); len(got) != 0 {
		t.Fatalf("empty input scanned %d requests", len(got))
	}
}

func TestScannerErrors(t *testing.T) {
	for _, tc := range []struct {
		name   string
		in     string
		line   int
		substr string
	}{
		{"bad-slot", "x r 0\n", 1, "bad slot"},
		{"negative-slot", "-1 r 0\n", 1, "bad slot"},
		{"bad-op", "0 q 0\n", 1, "unknown operation"},
		{"missing-op", "0\n", 1, "missing operation"},
		{"missing-addr", "0 r\n", 1, "missing address"},
		{"bad-addr", "0 r zz\n", 1, "bad address"},
		{"bad-hex", "0 r 0x\n", 1, "bad address"},
		{"trailing", "0 r 0 9\n", 1, "trailing field"},
		{"later-line", "0 r 0\n1 r 1\nbad\n", 3, "bad slot"},
		{"slot-overflow", "99999999999999999999 r 0\n", 1, "bad slot"},
		{"addr-overflow", "0 r 0xffffffffffffffffff\n", 1, "bad address"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sc := NewScanner(strings.NewReader(tc.in))
			for sc.Scan() {
			}
			var pe *ParseError
			if !errors.As(sc.Err(), &pe) {
				t.Fatalf("got %v, want *ParseError", sc.Err())
			}
			if pe.Line != tc.line || !strings.Contains(pe.Msg, tc.substr) {
				t.Fatalf("got line %d %q, want line %d containing %q", pe.Line, pe.Msg, tc.line, tc.substr)
			}
		})
	}
	// A reader failure surfaces as a ParseError wrapping the cause.
	boom := errors.New("boom")
	sc := NewScanner(iotest.ErrReader(boom))
	for sc.Scan() {
	}
	if !errors.Is(sc.Err(), boom) {
		t.Fatalf("reader error not wrapped: %v", sc.Err())
	}
}

func TestBinaryScannerErrors(t *testing.T) {
	hdr := []byte{0xDA, 'D', 'A', 'B', 1}
	for _, tc := range []struct {
		name   string
		in     []byte
		substr string
	}{
		{"truncated-header", []byte{0xDA, 'D'}, "truncated access-trace header"},
		{"bad-magic", []byte{0xDA, 'D', 'T', 'B', 1}, "bad access-trace magic"},
		{"bad-version", []byte{0xDA, 'D', 'A', 'B', 9}, "unsupported access-trace version"},
		{"reserved-flags", append(append([]byte{}, hdr...), 0x82, 0x00, 0x00), "reserved flag bits"},
		{"truncated-record", append(append([]byte{}, hdr...), 0x01, 0x02), "truncated request record"},
		{"negative-slot", append(append([]byte{}, hdr...), 0x00, 0x01, 0x00), "negative slot"},
		{"negative-addr", append(append([]byte{}, hdr...), 0x00, 0x00, 0x01), "negative address"},
		{"overlong-varint", append(append([]byte{}, hdr...), 0x00, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x00), "varint"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sc := NewBinaryScanner(bytes.NewReader(tc.in))
			for sc.Scan() {
			}
			var pe *ParseError
			if !errors.As(sc.Err(), &pe) {
				t.Fatalf("got %v, want *ParseError", sc.Err())
			}
			if !strings.Contains(pe.Msg, tc.substr) {
				t.Fatalf("got %q, want substring %q", pe.Msg, tc.substr)
			}
		})
	}
	// The writer refuses negative fields rather than encoding them.
	bw := NewBinaryWriter(io.Discard)
	if err := bw.Write(Request{Slot: -1}); err == nil {
		t.Fatal("negative slot encoded")
	}
}

func TestRequestString(t *testing.T) {
	if got := (Request{Slot: 12, Write: true, Addr: 255}).String(); got != "12 w 0xff" {
		t.Fatalf("String: %q", got)
	}
	if got := (Request{Slot: 0, Addr: 0}).String(); got != "0 r 0x0" {
		t.Fatalf("String: %q", got)
	}
}

// TestScannerZeroAllocs pins the allocation discipline on the accept
// path, matching the command-trace scanners.
func TestScannerZeroAllocs(t *testing.T) {
	reqs := make([]Request, 512)
	for i := range reqs {
		reqs[i] = Request{Slot: int64(i * 3), Write: i%2 == 0, Addr: int64(i * 977)}
	}
	var text bytes.Buffer
	if err := WriteAccessTrace(&text, reqs); err != nil {
		t.Fatal(err)
	}
	rd := bytes.NewReader(text.Bytes())
	sc := NewScanner(rd)
	n := 0
	avg := testing.AllocsPerRun(100, func() {
		if !sc.Scan() {
			rd.Seek(0, io.SeekStart)
			sc = NewScanner(rd)
			return
		}
		n++
	})
	if n == 0 {
		t.Fatal("scanner never advanced")
	}
	// Budget covers the periodic re-construction of the scanner, not the
	// per-line path (which must be allocation-free).
	if avg > 0.5 {
		t.Fatalf("text scan path allocates %.2f allocs/op", avg)
	}
}
