package ctl

// The scheduler: turns a FIFO access stream into per-channel command
// streams that trace.Simulator accepts without a single timing
// violation, then merges them with trace.Interleave.
//
// The controller is deliberately simple — in-order, one request at a
// time, one command per slot per channel — because the paper's question
// is not "how fast can a controller go" but "how much energy does a
// policy cost". Four decisions shape the answer and all four are
// options here: the address map (mapper.go) fixes which requests share a
// row, the page policy decides when rows close (open until conflict,
// closed after every access, or closed after an idle timeout), the
// power-down policy decides whether idle gaps are spent in precharged
// standby, precharge power-down or self-refresh, and the refresh
// scheduler keeps every channel retention-clean: an all-bank ref every
// tREFI, postponed JEDEC-style (up to Options.MaxPostponed) while
// requests are in flight, forced in a catch-up burst before a deadline
// can pass, and suppressed inside self-refresh windows, which cover
// retention on their own.
//
// Scheduling is deterministic by construction: no maps are iterated, no
// randomness or wall-clock time is read, and every placement is the
// arithmetic earliest legal slot given prior placements. Same input,
// same options -> byte-identical trace. See DESIGN §12 for the legality
// argument (each emit mirrors one Simulator check) and §13 for the
// refresh scheduler's determinism and retention argument.
//
// All of that state is channel-local, which is what the sharded
// execution in this file exploits: requests demultiplex by the mapper's
// channel bits into per-channel queues, each channel schedules as an
// independent job on the batch engine, and only the end-of-trace
// refresh-debt fixpoint (which needs the global trace end) runs after
// the barrier. DESIGN §14 has the full argument; pipeline.go has the
// streaming variant that feeds per-channel sinks without materializing
// the merged trace.

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"drampower/internal/core"
	"drampower/internal/desc"
	"drampower/internal/engine"
	"drampower/internal/trace"
)

// Policy selects the page-management strategy.
type Policy int

const (
	// PolicyOpen leaves a row open after access until a conflicting
	// request or the end of the trace closes it. Cheapest when locality
	// is high (row hits cost only a RD/WR), costly when it is low (every
	// conflict pays PRE+ACT back to back, and an open row blocks
	// power-down).
	PolicyOpen Policy = iota
	// PolicyClosed precharges the bank immediately after every access.
	// Every request pays ACT+RD/WR+PRE, but the device returns to
	// all-banks-closed at once, so idle gaps can drop into power-down.
	PolicyClosed
	// PolicyTimeout leaves rows open but closes any bank whose row has
	// been idle for Options.PageTimeout slots — the middle ground real
	// controllers ship.
	PolicyTimeout
)

// String returns the -policy flag spelling of the policy.
func (p Policy) String() string {
	switch p {
	case PolicyOpen:
		return "open"
	case PolicyClosed:
		return "closed"
	case PolicyTimeout:
		return "timeout"
	}
	return "policy(" + strconv.Itoa(int(p)) + ")"
}

// ParsePolicy parses a -policy flag value: "open", "closed" or
// "timeout=N" with N a positive idle window in slots.
func ParsePolicy(s string) (Policy, int64, error) {
	switch s {
	case "open":
		return PolicyOpen, 0, nil
	case "closed":
		return PolicyClosed, 0, nil
	}
	if rest, ok := strings.CutPrefix(s, "timeout="); ok {
		n, err := strconv.ParseInt(rest, 10, 64)
		if err != nil || n < 1 {
			return 0, 0, fmt.Errorf("ctl: bad page timeout %q (want timeout=N with N >= 1)", s)
		}
		return PolicyTimeout, n, nil
	}
	return 0, 0, fmt.Errorf("ctl: unknown policy %q (want open, closed or timeout=N)", s)
}

// Options configures a Controller.
type Options struct {
	// Policy is the page-management policy; PageTimeout is the idle
	// window (slots) for PolicyTimeout and ignored otherwise.
	Policy      Policy
	PageTimeout int64

	// Map is the address interleave spec (DefaultMap when empty).
	Map string

	// Channels is the number of independent channels the flat address
	// space spreads over (power of two; 1 when zero).
	Channels int

	// PowerDownAfter, when positive, enters precharge power-down once a
	// channel has had all banks closed and no work for that many slots —
	// provided the gap to the next request is long enough to come back
	// out (tCKEmin + tXP) without delaying it. Zero disables.
	PowerDownAfter int64

	// SelfRefreshAfter, when positive, prefers self-refresh over
	// power-down for idle gaps at least that long (it must exceed
	// PowerDownAfter to ever win; the exit pays tXS instead of tXP).
	// Zero disables.
	SelfRefreshAfter int64

	// RefreshEvery overrides the refresh interval (tREFI) in slots. Zero
	// resolves it from the spec's RefreshInterval; refresh scheduling is
	// off when neither is available. It must exceed the spec's tRFC — a
	// device that spends its whole interval refreshing can never meet
	// retention.
	RefreshEvery int64

	// MaxPostponed bounds JEDEC-style refresh postponement: the k-th
	// refresh obligation (due at k*tREFI) may slip to (k+MaxPostponed)*
	// tREFI before the scheduler forces a catch-up burst. Zero means the
	// JEDEC default of 8 (trace.MaxPostponedRefreshes).
	MaxPostponed int

	// DisableRefresh turns refresh scheduling off entirely — the
	// pre-refresh controller behavior, kept for A/B comparisons. The
	// replay auditor will report the missed deadlines.
	DisableRefresh bool

	// Workers bounds the per-channel scheduling parallelism (engine
	// semantics: <= 0 selects one worker per CPU, 1 schedules serially).
	// The worker count never changes the output: per-channel state is
	// independent and stats merge in channel order.
	Workers int

	// Pool, when set, runs the channel jobs on a shared long-lived
	// engine pool instead of per-call goroutines (see
	// engine.Options.Pool); the dramserved server threads its pool
	// through here so concurrent requests share one bounded worker set.
	Pool *engine.Pool
}

// Stats summarizes one scheduling run.
type Stats struct {
	Requests int64 `json:"requests"`
	Reads    int64 `json:"reads"`
	Writes   int64 `json:"writes"`

	// Row-buffer outcome per request: a hit finds the row open, a miss
	// finds the bank closed, a conflict finds a different row open.
	RowHits      int64 `json:"row_hits"`
	RowMisses    int64 `json:"row_misses"`
	RowConflicts int64 `json:"row_conflicts"`

	// Commands is the total emitted, including power-state commands.
	Commands int64 `json:"commands"`
	// TimeoutPrecharges counts banks closed by the PolicyTimeout idle
	// window (zero under other policies).
	TimeoutPrecharges int64 `json:"timeout_precharges,omitempty"`
	// PowerDowns and SelfRefreshes count inserted pde/pdx and sre/srx
	// pairs.
	PowerDowns    int64 `json:"power_downs,omitempty"`
	SelfRefreshes int64 `json:"self_refreshes,omitempty"`

	// Refreshes counts all-bank ref commands issued. PostponedRefreshes
	// counts those that landed after their nominal due slot (k*tREFI);
	// ForcedRefreshes those issued under deadline pressure — the catch-up
	// bursts, power-down segmentation boundaries and the end-of-trace
	// debt retirement — rather than opportunistically in an idle gap.
	Refreshes          int64 `json:"refreshes,omitempty"`
	PostponedRefreshes int64 `json:"postponed_refreshes,omitempty"`
	ForcedRefreshes    int64 `json:"forced_refreshes,omitempty"`

	// Slots is the slot of the last scheduled command (zero for an empty
	// trace).
	Slots int64 `json:"slots"`
}

// RowHitRate returns RowHits over total requests (zero when empty).
func (st Stats) RowHitRate() float64 {
	if st.Requests == 0 {
		return 0
	}
	return float64(st.RowHits) / float64(st.Requests)
}

// ScheduleError reports a request the scheduler cannot place: out of
// FIFO order, or outside the mapped address space.
type ScheduleError struct {
	Index int // 0-based request ordinal
	Req   Request
	Msg   string
	err   error
}

// Error implements the error interface.
func (e *ScheduleError) Error() string {
	return fmt.Sprintf("ctl: request %d (%s): %s", e.Index, e.Req, e.Msg)
}

// Unwrap exposes the underlying cause (e.g. the mapper error).
func (e *ScheduleError) Unwrap() error { return e.err }

// farPast mirrors the simulator's "never happened" timestamp sentinel.
const farPast = math.MinInt64 / 2

// bankMirror tracks one bank's scheduler-visible state.
type bankMirror struct {
	open     bool
	row      int
	actSlot  int64 // last activate
	preSlot  int64 // last precharge
	lastUse  int64 // last column access (timeout policy clock)
	burstEnd int64 // this bank's burst drains at this slot (gates PRE)
}

// chanState mirrors the per-channel timing state the Simulator enforces,
// so every placement below is legal by the same arithmetic the replay
// checks with.
type chanState struct {
	cmds      []trace.Command
	banks     []bankMirror
	now       int64    // slot of the last emitted command (-1 when none)
	busUntil  int64    // data bus free at this slot
	exitValid int64    // row/column commands legal from this slot (tXP/tXS)
	actRing   [4]int64 // last four activates, for tFAW
	actCount  int64
	openBanks int

	// Refresh scheduler state. Obligation k of the current epoch is due
	// at refBase + k*tREFI and must complete by refBase + (k+maxPost)*
	// tREFI; refCredit counts obligations already served. A self-refresh
	// exit restarts the epoch (refBase moves, refCredit resets), exactly
	// mirroring the replay auditor.
	refUntil  int64 // previous refresh completes (tRFC) at this slot
	refBase   int64 // epoch origin: 0, or the last srx slot
	refCredit int64 // refreshes issued since refBase

	// stats accumulates this channel's share of the run: every field is
	// an additive counter, so summing the channels in index order
	// (sumStats) reproduces the single-accumulator totals exactly — the
	// property that lets the channels schedule concurrently without
	// sharing a stats struct.
	stats Stats
}

// Controller schedules one access stream. It is single-use: build with
// NewController, feed one Source to Schedule.
type Controller struct {
	opts   Options
	mapper *Mapper
	chans  []chanState

	// timing constraints, hoisted from a throwaway Simulator so the
	// mirror can never drift from what replay enforces
	tRC, tRCD, tRP, tRAS, tRRD, tFAW, burst int64
	tCKE, tXP, tXS                          int64
	tRFC                                    int64
	tREFI                                   int64 // resolved refresh interval (0 = refresh off)
	maxPost                                 int64 // postponement bound (obligations)
}

// NewController builds a controller for the model. The zero Options
// value means: open-page policy, DefaultMap, one channel, no power-down.
func NewController(m *core.Model, opts Options) (*Controller, error) {
	if opts.Channels < 1 {
		opts.Channels = 1
	}
	spec := opts.Map
	if spec == "" {
		spec = DefaultMap
	}
	mapper, err := MapperFor(m, opts.Channels, spec)
	if err != nil {
		return nil, err
	}
	if opts.Policy == PolicyTimeout && opts.PageTimeout < 1 {
		return nil, fmt.Errorf("ctl: timeout policy needs PageTimeout >= 1 (got %d)", opts.PageTimeout)
	}
	if opts.PowerDownAfter < 0 || opts.SelfRefreshAfter < 0 {
		return nil, fmt.Errorf("ctl: negative power-down/self-refresh threshold")
	}
	if opts.RefreshEvery < 0 {
		return nil, fmt.Errorf("ctl: negative RefreshEvery")
	}
	if opts.MaxPostponed < 0 {
		return nil, fmt.Errorf("ctl: negative MaxPostponed")
	}
	c := &Controller{opts: opts, mapper: mapper}
	sim := trace.New(m)
	c.tRC, c.tRCD, c.tRP, c.tRAS, c.tRRD, c.tFAW, c.burst = sim.TimingSlots()
	c.tCKE, c.tXP, c.tXS = sim.PowerStateSlots()
	c.tRFC = sim.RefreshCycleSlots()
	if !opts.DisableRefresh {
		c.tREFI = opts.RefreshEvery
		if c.tREFI == 0 {
			c.tREFI = sim.RefreshIntervalSlots()
		}
	}
	if c.tREFI > 0 && c.tREFI <= c.tRFC {
		return nil, fmt.Errorf("ctl: refresh interval %d slots must exceed tRFC (%d slots)", c.tREFI, c.tRFC)
	}
	c.maxPost = int64(opts.MaxPostponed)
	if c.maxPost == 0 {
		c.maxPost = trace.MaxPostponedRefreshes
	}
	banks := m.D.Spec.Banks()
	c.chans = make([]chanState, opts.Channels)
	for i := range c.chans {
		ch := &c.chans[i]
		ch.banks = make([]bankMirror, banks)
		for b := range ch.banks {
			ch.banks[b].actSlot = farPast
			ch.banks[b].preSlot = farPast
			ch.banks[b].lastUse = farPast
			ch.banks[b].burstEnd = farPast
		}
		ch.now = -1
		ch.busUntil = farPast
		ch.exitValid = farPast
		ch.refUntil = farPast
	}
	return c, nil
}

// RefreshIntervalSlots returns the resolved tREFI in slots (0 when
// refresh scheduling is off).
func (c *Controller) RefreshIntervalSlots() int64 { return c.tREFI }

// BanksPerChannel returns the per-channel bank count (for
// trace.ReplayOptions and global-bank interpretation).
func (c *Controller) BanksPerChannel() int {
	return len(c.chans[0].banks)
}

// Channels returns the resolved channel count.
func (c *Controller) Channels() int { return len(c.chans) }

// Mapper returns the address mapper in use.
func (c *Controller) Mapper() *Mapper { return c.mapper }

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// emit places one command on the channel at the later of want and the
// next free command-bus slot (one command per slot per channel, so
// per-channel slots are strictly increasing and the merged trace is in
// non-decreasing slot order). It returns the slot actually used.
func (c *Controller) emit(ch *chanState, want int64, op desc.Op, bank, row int) int64 {
	slot := maxI64(want, ch.now+1)
	ch.cmds = append(ch.cmds, trace.Command{Slot: slot, Op: op, Bank: bank, Row: row})
	ch.now = slot
	ch.stats.Commands++
	return slot
}

// earliestAct mirrors the Simulator's activate checks: tRC and tRP on
// the bank, tRRD against the previous activate, tFAW against the
// fourth-last, the refresh cycle and the low-power exit window.
func (c *Controller) earliestAct(ch *chanState, b *bankMirror, t int64) int64 {
	at := maxI64(t, b.actSlot+c.tRC)
	at = maxI64(at, b.preSlot+c.tRP)
	at = maxI64(at, ch.exitValid)
	at = maxI64(at, ch.refUntil)
	if ch.actCount > 0 {
		at = maxI64(at, ch.actRing[(ch.actCount-1)&3]+c.tRRD)
	}
	if c.tFAW > 0 && ch.actCount >= 4 {
		at = maxI64(at, ch.actRing[(ch.actCount-4)&3]+c.tFAW)
	}
	return at
}

// activate emits ACT on bank b at its earliest legal slot at or after t
// and updates the mirror.
func (c *Controller) activate(ch *chanState, bi int, row int, t int64) int64 {
	b := &ch.banks[bi]
	slot := c.emit(ch, c.earliestAct(ch, b, t), desc.OpActivate, bi, row)
	b.open, b.row, b.actSlot = true, row, slot
	ch.actRing[ch.actCount&3] = slot
	ch.actCount++
	ch.openBanks++
	return slot
}

// precharge emits PRE on bank b no earlier than tRAS allows and never
// inside the bank's own draining burst.
func (c *Controller) precharge(ch *chanState, bi int, want int64) int64 {
	b := &ch.banks[bi]
	want = maxI64(want, b.actSlot+c.tRAS)
	want = maxI64(want, b.burstEnd)
	want = maxI64(want, ch.exitValid)
	slot := c.emit(ch, want, desc.OpPrecharge, bi, 0)
	b.open = false
	b.preSlot = slot
	ch.openBanks--
	return slot
}

// column emits RD/WR on the open row of bank b, honoring tRCD and the
// data bus.
func (c *Controller) column(ch *chanState, bi int, write bool, want int64) int64 {
	b := &ch.banks[bi]
	want = maxI64(want, b.actSlot+c.tRCD)
	want = maxI64(want, ch.busUntil)
	want = maxI64(want, ch.exitValid)
	op := desc.OpRead
	if write {
		op = desc.OpWrite
	}
	slot := c.emit(ch, want, op, bi, b.row)
	ch.busUntil = slot + c.burst
	b.burstEnd = slot + c.burst
	b.lastUse = slot
	return slot
}

// sweepTimeouts closes banks whose rows have idled past the page
// timeout, in (expiry, bank) order so placement is independent of bank
// numbering accidents.
func (c *Controller) sweepTimeouts(ch *chanState, t int64) {
	if c.opts.Policy != PolicyTimeout {
		return
	}
	for {
		// Smallest unexpired-first: pick the open bank with the earliest
		// expiry at or before t, lowest bank index on ties.
		best, bestExpiry := -1, int64(0)
		for bi := range ch.banks {
			b := &ch.banks[bi]
			if !b.open {
				continue
			}
			exp := maxI64(b.lastUse, b.actSlot) + c.opts.PageTimeout
			if exp <= t && (best < 0 || exp < bestExpiry) {
				best, bestExpiry = bi, exp
			}
		}
		if best < 0 {
			return
		}
		c.precharge(ch, best, bestExpiry)
		ch.stats.TimeoutPrecharges++
	}
}

// quietSlot is the first slot the channel is fully quiet: past the last
// command, the draining burst, any low-power exit window and any
// refresh still in progress.
func (c *Controller) quietSlot(ch *chanState) int64 {
	q := maxI64(ch.now, ch.busUntil)
	q = maxI64(q, ch.exitValid)
	q = maxI64(q, ch.refUntil)
	if q < 0 {
		q = 0
	}
	return q
}

// refDue is the nominal due slot of refresh obligation k (1-based) in
// the current epoch; refDeadline is the latest slot it may complete
// after JEDEC postponement.
func (c *Controller) refDue(ch *chanState, k int64) int64 {
	return ch.refBase + k*c.tREFI
}

func (c *Controller) refDeadline(ch *chanState, k int64) int64 {
	return ch.refBase + (k+c.maxPost)*c.tREFI
}

// issueRef emits one all-bank refresh at the earliest legal slot at or
// after want: open rows are precharged first (fixed bank-index order, so
// placement is deterministic), then the refresh waits out tRP on those
// precharges, the previous refresh's tRFC and any low-power exit window.
// The tRP wait is stricter than the Simulator (which only demands all
// banks closed) — the real device cannot refresh a row mid-precharge.
// Callers pass the obligation's due slot as want, so credit never runs
// ahead of the epoch clock.
func (c *Controller) issueRef(ch *chanState, want int64) int64 {
	if ch.openBanks > 0 {
		pre := int64(farPast)
		for bi := range ch.banks {
			if ch.banks[bi].open {
				pre = maxI64(pre, c.precharge(ch, bi, 0))
			}
		}
		want = maxI64(want, pre+c.tRP)
	}
	want = maxI64(want, ch.refUntil)
	want = maxI64(want, ch.exitValid)
	slot := c.emit(ch, want, desc.OpRefresh, 0, 0)
	ch.refUntil = slot + c.tRFC
	ch.refCredit++
	ch.stats.Refreshes++
	if slot > c.refDue(ch, ch.refCredit) {
		ch.stats.PostponedRefreshes++
	}
	return slot
}

// forceRefresh catches up on obligations that can no longer wait: any
// whose postponement deadline falls within one interval of the
// channel's near future is served before the request (a catch-up burst
// when several are overdue). The horizon uses the channel clock, not
// the arrival slot — a backlogged channel emits commands far past
// arrival times, and deadlines bind in trace time.
func (c *Controller) forceRefresh(ch *chanState, t int64) {
	for c.refDeadline(ch, ch.refCredit+1) <= maxI64(t, ch.now)+c.tREFI {
		c.issueRef(ch, c.refDue(ch, ch.refCredit+1))
		ch.stats.ForcedRefreshes++
	}
}

// fillGap schedules the idle gap ending at the next request's first
// command slot (start): the refreshes that belong inside it, and
// self-refresh or power-down windows around them. Low-power insertion
// is self-contained — entry and exit are emitted together, sized so the
// pending command at start stays legal — and only happens when all
// banks were closed at gap entry, which is what couples page policy to
// idle energy: an open-page controller holding a row open cannot power
// down (a refresh's precharge-all mid-gap does not retroactively grant
// the window; the open row was the policy's choice). Refreshes are not
// so gated: under the open policy they force the rows closed, which is
// the open page's refresh tax.
func (c *Controller) fillGap(ch *chanState, start int64) {
	lowPower := ch.openBanks == 0 &&
		(c.opts.PowerDownAfter > 0 || c.opts.SelfRefreshAfter > 0)

	// Prefer self-refresh for long gaps: deeper state, slower exit, and
	// retention is covered internally — the refresh epoch restarts at
	// the exit. Obligations whose deadline precedes the entry must still
	// issue first.
	if lowPower && c.opts.SelfRefreshAfter > 0 {
		for {
			enter := maxI64(c.quietSlot(ch)+c.opts.SelfRefreshAfter, ch.now+1)
			exit := start - c.tXS
			if exit < enter+c.tCKE {
				break // no room for self-refresh; try power-down below
			}
			if c.tREFI > 0 && c.refDeadline(ch, ch.refCredit+1) < enter {
				c.issueRef(ch, c.refDue(ch, ch.refCredit+1))
				ch.stats.ForcedRefreshes++
				continue
			}
			c.emit(ch, enter, trace.OpSelfRefreshEnter, 0, 0)
			c.emit(ch, exit, trace.OpSelfRefreshExit, 0, 0)
			ch.exitValid = exit + c.tXS
			ch.stats.SelfRefreshes++
			if c.tREFI > 0 {
				ch.refBase = exit
				ch.refCredit = 0
			}
			return
		}
	}

	// Refreshes that belong to this gap, with power-down windows
	// segmented between them: a window never spans a refresh — it ends
	// tXP before the ref lands, so the ref is legal the slot the exit
	// window closes. An obligation is served in this gap when it can
	// complete before the request's first command (at its due slot, not
	// postponed: the refresh costs the same now or later, and serving it
	// now keeps the observed interval at tREFI) or when its postponement
	// deadline falls inside the gap (then it issues even if the request
	// slips by tRFC). Anything else is postponed to a later gap or to
	// forceRefresh's catch-up burst.
	for c.tREFI > 0 {
		k := ch.refCredit + 1
		due, deadline := c.refDue(ch, k), c.refDeadline(ch, k)
		quiet := c.quietSlot(ch)
		refAt := maxI64(due, quiet) // where issueRef would land it
		fits := refAt+c.tRFC <= start
		must := deadline <= start
		if !fits && !must {
			break // next obligation is a later gap's (or catch-up's) problem
		}
		if lowPower && c.opts.PowerDownAfter > 0 {
			enter := maxI64(quiet+c.opts.PowerDownAfter, ch.now+1)
			exit := refAt - c.tXP
			if exit >= enter+c.tCKE {
				c.emit(ch, enter, trace.OpPowerDownEnter, 0, 0)
				c.emit(ch, exit, trace.OpPowerDownExit, 0, 0)
				ch.exitValid = exit + c.tXP
				ch.stats.PowerDowns++
			}
		}
		c.issueRef(ch, due)
		if must && !fits {
			ch.stats.ForcedRefreshes++ // deadline inside the gap: issue even if it delays the request
		}
	}

	// A power-down window over whatever remains of the gap (or all of it
	// when no refresh came due).
	if lowPower && c.opts.PowerDownAfter > 0 {
		enter := maxI64(c.quietSlot(ch)+c.opts.PowerDownAfter, ch.now+1)
		exit := start - c.tXP
		if exit >= enter+c.tCKE {
			c.emit(ch, enter, trace.OpPowerDownEnter, 0, 0)
			c.emit(ch, exit, trace.OpPowerDownExit, 0, 0)
			ch.exitValid = exit + c.tXP
			ch.stats.PowerDowns++
		}
	}
}

// firstCommandSlot computes where the request's first command would land
// given current channel state, without emitting anything — the
// power-down inserter needs it to size the idle gap.
func (c *Controller) firstCommandSlot(ch *chanState, bi int, row int, t int64) int64 {
	b := &ch.banks[bi]
	switch {
	case b.open && b.row == row: // hit: RD/WR directly
		want := maxI64(t, b.actSlot+c.tRCD)
		want = maxI64(want, ch.busUntil)
		want = maxI64(want, ch.exitValid)
		return maxI64(want, ch.now+1)
	case b.open: // conflict: PRE first
		want := maxI64(t, b.actSlot+c.tRAS)
		want = maxI64(want, b.burstEnd)
		want = maxI64(want, ch.exitValid)
		return maxI64(want, ch.now+1)
	default: // miss: ACT first
		return maxI64(c.earliestAct(ch, b, t), ch.now+1)
	}
}

// request schedules one mapped request arriving at slot t.
func (c *Controller) request(ch *chanState, co Coord, write bool, t int64) {
	bi := co.Bank
	c.sweepTimeouts(ch, t)
	if c.tREFI > 0 {
		c.forceRefresh(ch, t)
	}
	c.fillGap(ch, c.firstCommandSlot(ch, bi, co.Row, t))
	b := &ch.banks[bi]
	switch {
	case b.open && b.row == co.Row:
		ch.stats.RowHits++
	case b.open:
		ch.stats.RowConflicts++
		c.precharge(ch, bi, t)
		c.activate(ch, bi, co.Row, t)
	default:
		ch.stats.RowMisses++
		c.activate(ch, bi, co.Row, t)
	}
	c.column(ch, bi, write, t)
	if c.opts.Policy == PolicyClosed {
		c.precharge(ch, bi, t)
	}
	if write {
		ch.stats.Writes++
	} else {
		ch.stats.Reads++
	}
	ch.stats.Requests++
}

// mappedReq is one demultiplexed request: validated, mapped to its
// channel-local device coordinates, and queued for the per-channel
// scheduler. At 24 bytes it is also smaller than the ~3 commands it
// expands into, so queueing requests (not commands) is the cheaper side
// to buffer.
type mappedReq struct {
	slot  int64
	row   int32
	bank  int32
	write bool
}

// checkAndMap validates FIFO arrival order and maps one request to
// device coordinates — the demultiplex step shared by the materializing
// (Schedule) and streaming (ScheduleInto) front-ends, so both report
// identical errors at identical request ordinals.
func (c *Controller) checkAndMap(req Request, idx int, last *int64) (Coord, error) {
	if req.Slot < *last {
		return Coord{}, &ScheduleError{Index: idx, Req: req,
			Msg: fmt.Sprintf("out of order (previous request at slot %d)", *last)}
	}
	*last = req.Slot
	co, err := c.mapper.Map(req.Addr)
	if err != nil {
		return Coord{}, &ScheduleError{Index: idx, Req: req, Msg: err.Error(), err: err}
	}
	return co, nil
}

// sourceLen reports how many requests remain in src when the source
// knows (in-memory slices), so the demux queues and command buffers can
// be sized up front instead of growing by append doubling.
func sourceLen(src Source) (int, bool) {
	if s, ok := src.(interface{ Len() int }); ok {
		return s.Len(), true
	}
	return 0, false
}

// demux drains the source into per-channel request queues. On error the
// queues hold the valid prefix (everything before the failing request),
// which the caller still schedules so partial stats match the old
// serial accumulation exactly.
func (c *Controller) demux(src Source, queues [][]mappedReq) error {
	var last int64 = -1
	idx := 0
	for src.Scan() {
		req := src.Request()
		co, err := c.checkAndMap(req, idx, &last)
		if err != nil {
			return err
		}
		queues[co.Channel] = append(queues[co.Channel],
			mappedReq{slot: req.Slot, row: int32(co.Row), bank: int32(co.Bank), write: req.Write})
		idx++
	}
	return src.Err()
}

// runChannel schedules one channel's demultiplexed requests in arrival
// order. It touches only ch and the controller's immutable timing
// fields — the independence that makes per-channel jobs safe to run
// concurrently.
func (c *Controller) runChannel(ch *chanState, reqs []mappedReq) {
	for i := range reqs {
		r := &reqs[i]
		c.request(ch, Coord{Bank: int(r.bank), Row: int(r.row)}, r.write, r.slot)
	}
}

// engineOpts is the batch-engine configuration for the channel jobs.
func (c *Controller) engineOpts() engine.Options {
	return engine.Options{Workers: c.opts.Workers, Pool: c.opts.Pool}
}

// runChannels fans the per-channel queues out as one scheduling job per
// channel. The jobs cannot fail and share no mutable state; the engine's
// deterministic job order plus the channel-order stats merge make the
// outcome independent of the worker count.
func (c *Controller) runChannels(queues [][]mappedReq) {
	if len(c.chans) == 1 {
		c.runChannel(&c.chans[0], queues[0])
		return
	}
	_, _ = engine.Map(queues, func(i int, reqs []mappedReq) (struct{}, error) {
		c.runChannel(&c.chans[i], reqs)
		return struct{}{}, nil
	}, c.engineOpts())
}

// presizeCmds sizes each channel's command buffer from its queued
// request count (the BenchmarkSchedule* B/op noise was repeated append
// doubling on these buffers). Three commands bound any request (worst
// case PRE+ACT+RD/WR, or ACT+RD/WR+PRE under the closed policy);
// refreshes add the channel-span steady-state floor, low-power windows
// an entry/exit pair around gaps. The estimate is clamped — a silly
// far-future arrival slot must not translate into a huge up-front
// allocation; undersized buffers merely fall back to append growth.
func (c *Controller) presizeCmds(queues [][]mappedReq) {
	for i := range c.chans {
		ch := &c.chans[i]
		nq := len(queues[i])
		if nq == 0 || cap(ch.cmds) > 0 {
			continue
		}
		lowPower := c.opts.PowerDownAfter > 0 || c.opts.SelfRefreshAfter > 0
		est := int64(3*nq + 8)
		if c.tREFI > 0 {
			refs := queues[i][nq-1].slot/c.tREFI + c.maxPost + 2
			if lowPower {
				refs *= 3 // the pde/pdx or sre/srx pair segmenting each refresh
			}
			if bound := int64(4*nq + 1024); refs > bound {
				refs = bound
			}
			est += refs
		}
		if lowPower {
			est += int64(nq)
		}
		ch.cmds = make([]trace.Command, 0, est)
	}
}

// flushRefreshDebt retires the end-of-trace refresh debt: every channel
// owes one refresh per tREFI elapsed up to the trace's global end — an
// idle channel is still a powered channel whose cells leak, and
// postponed obligations don't vanish at trace end; a trace spanning T
// slots pays its steady-state floor(T/tREFI) refreshes, which is exactly
// the paper's IDD5-over-tREFI refresh energy term. Serving the debt can
// itself extend the end, so iterate to a fixed point (each round's new
// debt shrinks by tRFC/tREFI, which NewController guarantees is < 1).
//
// The global end couples the channels, so this runs serially after the
// per-channel jobs' barrier, always in channel-index order — the one
// cross-channel step of a scheduling run.
func (c *Controller) flushRefreshDebt() {
	if c.tREFI <= 0 {
		return
	}
	for {
		end := int64(0)
		for i := range c.chans {
			end = maxI64(end, c.chans[i].now)
		}
		progress := false
		for i := range c.chans {
			ch := &c.chans[i]
			for c.refDue(ch, ch.refCredit+1) <= end {
				c.issueRef(ch, c.refDue(ch, ch.refCredit+1))
				ch.stats.ForcedRefreshes++
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}

// sumStats merges the per-channel stats in channel-index order. Every
// field is additive except Slots, which is the latest slot any channel
// emitted at.
func (c *Controller) sumStats() Stats {
	var st Stats
	for i := range c.chans {
		ch := &c.chans[i]
		s := &ch.stats
		st.Requests += s.Requests
		st.Reads += s.Reads
		st.Writes += s.Writes
		st.RowHits += s.RowHits
		st.RowMisses += s.RowMisses
		st.RowConflicts += s.RowConflicts
		st.Commands += s.Commands
		st.TimeoutPrecharges += s.TimeoutPrecharges
		st.PowerDowns += s.PowerDowns
		st.SelfRefreshes += s.SelfRefreshes
		st.Refreshes += s.Refreshes
		st.PostponedRefreshes += s.PostponedRefreshes
		st.ForcedRefreshes += s.ForcedRefreshes
		st.Slots = maxI64(st.Slots, ch.now)
	}
	return st
}

// Schedule consumes the access stream and returns the merged command
// trace (global bank indices, non-decreasing slots) plus scheduling
// stats. Requests must arrive in non-decreasing slot order.
//
// Execution is sharded: the stream demultiplexes into per-channel
// queues, the channels schedule concurrently (Options.Workers/Pool),
// the refresh debt flushes serially after the barrier, and the merge is
// trace.Interleave's fixed channel-order merge — so the trace and stats
// are byte-identical to a serial run regardless of worker count.
func (c *Controller) Schedule(src Source) ([]trace.Command, Stats, error) {
	queues := make([][]mappedReq, len(c.chans))
	if n, ok := sourceLen(src); ok && n > 0 {
		per := n/len(c.chans) + n/16 + 8
		for i := range queues {
			queues[i] = make([]mappedReq, 0, per)
		}
	}
	demuxErr := c.demux(src, queues)
	c.presizeCmds(queues)
	c.runChannels(queues)
	if demuxErr != nil {
		// The valid prefix is scheduled (partial stats count everything
		// before the failing request, as the serial loop's did), but no
		// refresh flush and no merged trace.
		return nil, c.sumStats(), demuxErr
	}
	c.flushRefreshDebt()
	perChan := make([][]trace.Command, len(c.chans))
	for i := range c.chans {
		perChan[i] = c.chans[i].cmds
	}
	merged := trace.Interleave(perChan, c.BanksPerChannel())
	return merged, c.sumStats(), nil
}

// Schedule builds a controller and schedules an access trace read from
// rd (text or .dab, sniffed).
func Schedule(m *core.Model, rd io.Reader, opts Options) ([]trace.Command, Stats, error) {
	c, err := NewController(m, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	return c.Schedule(NewAccessSource(rd))
}

// ScheduleRequests schedules an in-memory request slice.
func ScheduleRequests(m *core.Model, reqs []Request, opts Options) ([]trace.Command, Stats, error) {
	c, err := NewController(m, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	return c.Schedule(NewSliceSource(reqs))
}
