package ctl

// The scheduler: turns a FIFO access stream into per-channel command
// streams that trace.Simulator accepts without a single timing
// violation, then merges them with trace.Interleave.
//
// The controller is deliberately simple — in-order, one request at a
// time, one command per slot per channel — because the paper's question
// is not "how fast can a controller go" but "how much energy does a
// policy cost". Four decisions shape the answer and all four are
// options here: the address map (mapper.go) fixes which requests share a
// row, the page policy decides when rows close (open until conflict,
// closed after every access, or closed after an idle timeout), the
// power-down policy decides whether idle gaps are spent in precharged
// standby, precharge power-down or self-refresh, and the refresh
// scheduler keeps every channel retention-clean: an all-bank ref every
// tREFI, postponed JEDEC-style (up to Options.MaxPostponed) while
// requests are in flight, forced in a catch-up burst before a deadline
// can pass, and suppressed inside self-refresh windows, which cover
// retention on their own.
//
// Scheduling is deterministic by construction: no maps are iterated, no
// randomness or wall-clock time is read, and every placement is the
// arithmetic earliest legal slot given prior placements. Same input,
// same options -> byte-identical trace. See DESIGN §12 for the legality
// argument (each emit mirrors one Simulator check) and §13 for the
// refresh scheduler's determinism and retention argument.

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"drampower/internal/core"
	"drampower/internal/desc"
	"drampower/internal/trace"
)

// Policy selects the page-management strategy.
type Policy int

const (
	// PolicyOpen leaves a row open after access until a conflicting
	// request or the end of the trace closes it. Cheapest when locality
	// is high (row hits cost only a RD/WR), costly when it is low (every
	// conflict pays PRE+ACT back to back, and an open row blocks
	// power-down).
	PolicyOpen Policy = iota
	// PolicyClosed precharges the bank immediately after every access.
	// Every request pays ACT+RD/WR+PRE, but the device returns to
	// all-banks-closed at once, so idle gaps can drop into power-down.
	PolicyClosed
	// PolicyTimeout leaves rows open but closes any bank whose row has
	// been idle for Options.PageTimeout slots — the middle ground real
	// controllers ship.
	PolicyTimeout
)

// String returns the -policy flag spelling of the policy.
func (p Policy) String() string {
	switch p {
	case PolicyOpen:
		return "open"
	case PolicyClosed:
		return "closed"
	case PolicyTimeout:
		return "timeout"
	}
	return "policy(" + strconv.Itoa(int(p)) + ")"
}

// ParsePolicy parses a -policy flag value: "open", "closed" or
// "timeout=N" with N a positive idle window in slots.
func ParsePolicy(s string) (Policy, int64, error) {
	switch s {
	case "open":
		return PolicyOpen, 0, nil
	case "closed":
		return PolicyClosed, 0, nil
	}
	if rest, ok := strings.CutPrefix(s, "timeout="); ok {
		n, err := strconv.ParseInt(rest, 10, 64)
		if err != nil || n < 1 {
			return 0, 0, fmt.Errorf("ctl: bad page timeout %q (want timeout=N with N >= 1)", s)
		}
		return PolicyTimeout, n, nil
	}
	return 0, 0, fmt.Errorf("ctl: unknown policy %q (want open, closed or timeout=N)", s)
}

// Options configures a Controller.
type Options struct {
	// Policy is the page-management policy; PageTimeout is the idle
	// window (slots) for PolicyTimeout and ignored otherwise.
	Policy      Policy
	PageTimeout int64

	// Map is the address interleave spec (DefaultMap when empty).
	Map string

	// Channels is the number of independent channels the flat address
	// space spreads over (power of two; 1 when zero).
	Channels int

	// PowerDownAfter, when positive, enters precharge power-down once a
	// channel has had all banks closed and no work for that many slots —
	// provided the gap to the next request is long enough to come back
	// out (tCKEmin + tXP) without delaying it. Zero disables.
	PowerDownAfter int64

	// SelfRefreshAfter, when positive, prefers self-refresh over
	// power-down for idle gaps at least that long (it must exceed
	// PowerDownAfter to ever win; the exit pays tXS instead of tXP).
	// Zero disables.
	SelfRefreshAfter int64

	// RefreshEvery overrides the refresh interval (tREFI) in slots. Zero
	// resolves it from the spec's RefreshInterval; refresh scheduling is
	// off when neither is available. It must exceed the spec's tRFC — a
	// device that spends its whole interval refreshing can never meet
	// retention.
	RefreshEvery int64

	// MaxPostponed bounds JEDEC-style refresh postponement: the k-th
	// refresh obligation (due at k*tREFI) may slip to (k+MaxPostponed)*
	// tREFI before the scheduler forces a catch-up burst. Zero means the
	// JEDEC default of 8 (trace.MaxPostponedRefreshes).
	MaxPostponed int

	// DisableRefresh turns refresh scheduling off entirely — the
	// pre-refresh controller behavior, kept for A/B comparisons. The
	// replay auditor will report the missed deadlines.
	DisableRefresh bool
}

// Stats summarizes one scheduling run.
type Stats struct {
	Requests int64 `json:"requests"`
	Reads    int64 `json:"reads"`
	Writes   int64 `json:"writes"`

	// Row-buffer outcome per request: a hit finds the row open, a miss
	// finds the bank closed, a conflict finds a different row open.
	RowHits      int64 `json:"row_hits"`
	RowMisses    int64 `json:"row_misses"`
	RowConflicts int64 `json:"row_conflicts"`

	// Commands is the total emitted, including power-state commands.
	Commands int64 `json:"commands"`
	// TimeoutPrecharges counts banks closed by the PolicyTimeout idle
	// window (zero under other policies).
	TimeoutPrecharges int64 `json:"timeout_precharges,omitempty"`
	// PowerDowns and SelfRefreshes count inserted pde/pdx and sre/srx
	// pairs.
	PowerDowns    int64 `json:"power_downs,omitempty"`
	SelfRefreshes int64 `json:"self_refreshes,omitempty"`

	// Refreshes counts all-bank ref commands issued. PostponedRefreshes
	// counts those that landed after their nominal due slot (k*tREFI);
	// ForcedRefreshes those issued under deadline pressure — the catch-up
	// bursts, power-down segmentation boundaries and the end-of-trace
	// debt retirement — rather than opportunistically in an idle gap.
	Refreshes          int64 `json:"refreshes,omitempty"`
	PostponedRefreshes int64 `json:"postponed_refreshes,omitempty"`
	ForcedRefreshes    int64 `json:"forced_refreshes,omitempty"`

	// Slots is the slot of the last scheduled command (zero for an empty
	// trace).
	Slots int64 `json:"slots"`
}

// RowHitRate returns RowHits over total requests (zero when empty).
func (st Stats) RowHitRate() float64 {
	if st.Requests == 0 {
		return 0
	}
	return float64(st.RowHits) / float64(st.Requests)
}

// ScheduleError reports a request the scheduler cannot place: out of
// FIFO order, or outside the mapped address space.
type ScheduleError struct {
	Index int // 0-based request ordinal
	Req   Request
	Msg   string
	err   error
}

// Error implements the error interface.
func (e *ScheduleError) Error() string {
	return fmt.Sprintf("ctl: request %d (%s): %s", e.Index, e.Req, e.Msg)
}

// Unwrap exposes the underlying cause (e.g. the mapper error).
func (e *ScheduleError) Unwrap() error { return e.err }

// farPast mirrors the simulator's "never happened" timestamp sentinel.
const farPast = math.MinInt64 / 2

// bankMirror tracks one bank's scheduler-visible state.
type bankMirror struct {
	open     bool
	row      int
	actSlot  int64 // last activate
	preSlot  int64 // last precharge
	lastUse  int64 // last column access (timeout policy clock)
	burstEnd int64 // this bank's burst drains at this slot (gates PRE)
}

// chanState mirrors the per-channel timing state the Simulator enforces,
// so every placement below is legal by the same arithmetic the replay
// checks with.
type chanState struct {
	cmds      []trace.Command
	banks     []bankMirror
	now       int64    // slot of the last emitted command (-1 when none)
	busUntil  int64    // data bus free at this slot
	exitValid int64    // row/column commands legal from this slot (tXP/tXS)
	actRing   [4]int64 // last four activates, for tFAW
	actCount  int64
	openBanks int

	// Refresh scheduler state. Obligation k of the current epoch is due
	// at refBase + k*tREFI and must complete by refBase + (k+maxPost)*
	// tREFI; refCredit counts obligations already served. A self-refresh
	// exit restarts the epoch (refBase moves, refCredit resets), exactly
	// mirroring the replay auditor.
	refUntil  int64 // previous refresh completes (tRFC) at this slot
	refBase   int64 // epoch origin: 0, or the last srx slot
	refCredit int64 // refreshes issued since refBase
}

// Controller schedules one access stream. It is single-use: build with
// NewController, feed one Source to Schedule.
type Controller struct {
	opts   Options
	mapper *Mapper
	chans  []chanState

	// timing constraints, hoisted from a throwaway Simulator so the
	// mirror can never drift from what replay enforces
	tRC, tRCD, tRP, tRAS, tRRD, tFAW, burst int64
	tCKE, tXP, tXS                          int64
	tRFC                                    int64
	tREFI                                   int64 // resolved refresh interval (0 = refresh off)
	maxPost                                 int64 // postponement bound (obligations)

	stats Stats
}

// NewController builds a controller for the model. The zero Options
// value means: open-page policy, DefaultMap, one channel, no power-down.
func NewController(m *core.Model, opts Options) (*Controller, error) {
	if opts.Channels < 1 {
		opts.Channels = 1
	}
	spec := opts.Map
	if spec == "" {
		spec = DefaultMap
	}
	mapper, err := MapperFor(m, opts.Channels, spec)
	if err != nil {
		return nil, err
	}
	if opts.Policy == PolicyTimeout && opts.PageTimeout < 1 {
		return nil, fmt.Errorf("ctl: timeout policy needs PageTimeout >= 1 (got %d)", opts.PageTimeout)
	}
	if opts.PowerDownAfter < 0 || opts.SelfRefreshAfter < 0 {
		return nil, fmt.Errorf("ctl: negative power-down/self-refresh threshold")
	}
	if opts.RefreshEvery < 0 {
		return nil, fmt.Errorf("ctl: negative RefreshEvery")
	}
	if opts.MaxPostponed < 0 {
		return nil, fmt.Errorf("ctl: negative MaxPostponed")
	}
	c := &Controller{opts: opts, mapper: mapper}
	sim := trace.New(m)
	c.tRC, c.tRCD, c.tRP, c.tRAS, c.tRRD, c.tFAW, c.burst = sim.TimingSlots()
	c.tCKE, c.tXP, c.tXS = sim.PowerStateSlots()
	c.tRFC = sim.RefreshCycleSlots()
	if !opts.DisableRefresh {
		c.tREFI = opts.RefreshEvery
		if c.tREFI == 0 {
			c.tREFI = sim.RefreshIntervalSlots()
		}
	}
	if c.tREFI > 0 && c.tREFI <= c.tRFC {
		return nil, fmt.Errorf("ctl: refresh interval %d slots must exceed tRFC (%d slots)", c.tREFI, c.tRFC)
	}
	c.maxPost = int64(opts.MaxPostponed)
	if c.maxPost == 0 {
		c.maxPost = trace.MaxPostponedRefreshes
	}
	banks := m.D.Spec.Banks()
	c.chans = make([]chanState, opts.Channels)
	for i := range c.chans {
		ch := &c.chans[i]
		ch.banks = make([]bankMirror, banks)
		for b := range ch.banks {
			ch.banks[b].actSlot = farPast
			ch.banks[b].preSlot = farPast
			ch.banks[b].lastUse = farPast
			ch.banks[b].burstEnd = farPast
		}
		ch.now = -1
		ch.busUntil = farPast
		ch.exitValid = farPast
		ch.refUntil = farPast
	}
	return c, nil
}

// RefreshIntervalSlots returns the resolved tREFI in slots (0 when
// refresh scheduling is off).
func (c *Controller) RefreshIntervalSlots() int64 { return c.tREFI }

// BanksPerChannel returns the per-channel bank count (for
// trace.ReplayOptions and global-bank interpretation).
func (c *Controller) BanksPerChannel() int {
	return len(c.chans[0].banks)
}

// Mapper returns the address mapper in use.
func (c *Controller) Mapper() *Mapper { return c.mapper }

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// emit places one command on the channel at the later of want and the
// next free command-bus slot (one command per slot per channel, so
// per-channel slots are strictly increasing and the merged trace is in
// non-decreasing slot order). It returns the slot actually used.
func (c *Controller) emit(ch *chanState, want int64, op desc.Op, bank, row int) int64 {
	slot := maxI64(want, ch.now+1)
	ch.cmds = append(ch.cmds, trace.Command{Slot: slot, Op: op, Bank: bank, Row: row})
	ch.now = slot
	c.stats.Commands++
	return slot
}

// earliestAct mirrors the Simulator's activate checks: tRC and tRP on
// the bank, tRRD against the previous activate, tFAW against the
// fourth-last, the refresh cycle and the low-power exit window.
func (c *Controller) earliestAct(ch *chanState, b *bankMirror, t int64) int64 {
	at := maxI64(t, b.actSlot+c.tRC)
	at = maxI64(at, b.preSlot+c.tRP)
	at = maxI64(at, ch.exitValid)
	at = maxI64(at, ch.refUntil)
	if ch.actCount > 0 {
		at = maxI64(at, ch.actRing[(ch.actCount-1)&3]+c.tRRD)
	}
	if c.tFAW > 0 && ch.actCount >= 4 {
		at = maxI64(at, ch.actRing[(ch.actCount-4)&3]+c.tFAW)
	}
	return at
}

// activate emits ACT on bank b at its earliest legal slot at or after t
// and updates the mirror.
func (c *Controller) activate(ch *chanState, bi int, row int, t int64) int64 {
	b := &ch.banks[bi]
	slot := c.emit(ch, c.earliestAct(ch, b, t), desc.OpActivate, bi, row)
	b.open, b.row, b.actSlot = true, row, slot
	ch.actRing[ch.actCount&3] = slot
	ch.actCount++
	ch.openBanks++
	return slot
}

// precharge emits PRE on bank b no earlier than tRAS allows and never
// inside the bank's own draining burst.
func (c *Controller) precharge(ch *chanState, bi int, want int64) int64 {
	b := &ch.banks[bi]
	want = maxI64(want, b.actSlot+c.tRAS)
	want = maxI64(want, b.burstEnd)
	want = maxI64(want, ch.exitValid)
	slot := c.emit(ch, want, desc.OpPrecharge, bi, 0)
	b.open = false
	b.preSlot = slot
	ch.openBanks--
	return slot
}

// column emits RD/WR on the open row of bank b, honoring tRCD and the
// data bus.
func (c *Controller) column(ch *chanState, bi int, write bool, want int64) int64 {
	b := &ch.banks[bi]
	want = maxI64(want, b.actSlot+c.tRCD)
	want = maxI64(want, ch.busUntil)
	want = maxI64(want, ch.exitValid)
	op := desc.OpRead
	if write {
		op = desc.OpWrite
	}
	slot := c.emit(ch, want, op, bi, b.row)
	ch.busUntil = slot + c.burst
	b.burstEnd = slot + c.burst
	b.lastUse = slot
	return slot
}

// sweepTimeouts closes banks whose rows have idled past the page
// timeout, in (expiry, bank) order so placement is independent of bank
// numbering accidents.
func (c *Controller) sweepTimeouts(ch *chanState, t int64) {
	if c.opts.Policy != PolicyTimeout {
		return
	}
	for {
		// Smallest unexpired-first: pick the open bank with the earliest
		// expiry at or before t, lowest bank index on ties.
		best, bestExpiry := -1, int64(0)
		for bi := range ch.banks {
			b := &ch.banks[bi]
			if !b.open {
				continue
			}
			exp := maxI64(b.lastUse, b.actSlot) + c.opts.PageTimeout
			if exp <= t && (best < 0 || exp < bestExpiry) {
				best, bestExpiry = bi, exp
			}
		}
		if best < 0 {
			return
		}
		c.precharge(ch, best, bestExpiry)
		c.stats.TimeoutPrecharges++
	}
}

// quietSlot is the first slot the channel is fully quiet: past the last
// command, the draining burst, any low-power exit window and any
// refresh still in progress.
func (c *Controller) quietSlot(ch *chanState) int64 {
	q := maxI64(ch.now, ch.busUntil)
	q = maxI64(q, ch.exitValid)
	q = maxI64(q, ch.refUntil)
	if q < 0 {
		q = 0
	}
	return q
}

// refDue is the nominal due slot of refresh obligation k (1-based) in
// the current epoch; refDeadline is the latest slot it may complete
// after JEDEC postponement.
func (c *Controller) refDue(ch *chanState, k int64) int64 {
	return ch.refBase + k*c.tREFI
}

func (c *Controller) refDeadline(ch *chanState, k int64) int64 {
	return ch.refBase + (k+c.maxPost)*c.tREFI
}

// issueRef emits one all-bank refresh at the earliest legal slot at or
// after want: open rows are precharged first (fixed bank-index order, so
// placement is deterministic), then the refresh waits out tRP on those
// precharges, the previous refresh's tRFC and any low-power exit window.
// The tRP wait is stricter than the Simulator (which only demands all
// banks closed) — the real device cannot refresh a row mid-precharge.
// Callers pass the obligation's due slot as want, so credit never runs
// ahead of the epoch clock.
func (c *Controller) issueRef(ch *chanState, want int64) int64 {
	if ch.openBanks > 0 {
		pre := int64(farPast)
		for bi := range ch.banks {
			if ch.banks[bi].open {
				pre = maxI64(pre, c.precharge(ch, bi, 0))
			}
		}
		want = maxI64(want, pre+c.tRP)
	}
	want = maxI64(want, ch.refUntil)
	want = maxI64(want, ch.exitValid)
	slot := c.emit(ch, want, desc.OpRefresh, 0, 0)
	ch.refUntil = slot + c.tRFC
	ch.refCredit++
	c.stats.Refreshes++
	if slot > c.refDue(ch, ch.refCredit) {
		c.stats.PostponedRefreshes++
	}
	return slot
}

// forceRefresh catches up on obligations that can no longer wait: any
// whose postponement deadline falls within one interval of the
// channel's near future is served before the request (a catch-up burst
// when several are overdue). The horizon uses the channel clock, not
// the arrival slot — a backlogged channel emits commands far past
// arrival times, and deadlines bind in trace time.
func (c *Controller) forceRefresh(ch *chanState, t int64) {
	for c.refDeadline(ch, ch.refCredit+1) <= maxI64(t, ch.now)+c.tREFI {
		c.issueRef(ch, c.refDue(ch, ch.refCredit+1))
		c.stats.ForcedRefreshes++
	}
}

// fillGap schedules the idle gap ending at the next request's first
// command slot (start): the refreshes that belong inside it, and
// self-refresh or power-down windows around them. Low-power insertion
// is self-contained — entry and exit are emitted together, sized so the
// pending command at start stays legal — and only happens when all
// banks were closed at gap entry, which is what couples page policy to
// idle energy: an open-page controller holding a row open cannot power
// down (a refresh's precharge-all mid-gap does not retroactively grant
// the window; the open row was the policy's choice). Refreshes are not
// so gated: under the open policy they force the rows closed, which is
// the open page's refresh tax.
func (c *Controller) fillGap(ch *chanState, start int64) {
	lowPower := ch.openBanks == 0 &&
		(c.opts.PowerDownAfter > 0 || c.opts.SelfRefreshAfter > 0)

	// Prefer self-refresh for long gaps: deeper state, slower exit, and
	// retention is covered internally — the refresh epoch restarts at
	// the exit. Obligations whose deadline precedes the entry must still
	// issue first.
	if lowPower && c.opts.SelfRefreshAfter > 0 {
		for {
			enter := maxI64(c.quietSlot(ch)+c.opts.SelfRefreshAfter, ch.now+1)
			exit := start - c.tXS
			if exit < enter+c.tCKE {
				break // no room for self-refresh; try power-down below
			}
			if c.tREFI > 0 && c.refDeadline(ch, ch.refCredit+1) < enter {
				c.issueRef(ch, c.refDue(ch, ch.refCredit+1))
				c.stats.ForcedRefreshes++
				continue
			}
			c.emit(ch, enter, trace.OpSelfRefreshEnter, 0, 0)
			c.emit(ch, exit, trace.OpSelfRefreshExit, 0, 0)
			ch.exitValid = exit + c.tXS
			c.stats.SelfRefreshes++
			if c.tREFI > 0 {
				ch.refBase = exit
				ch.refCredit = 0
			}
			return
		}
	}

	// Refreshes that belong to this gap, with power-down windows
	// segmented between them: a window never spans a refresh — it ends
	// tXP before the ref lands, so the ref is legal the slot the exit
	// window closes. An obligation is served in this gap when it can
	// complete before the request's first command (at its due slot, not
	// postponed: the refresh costs the same now or later, and serving it
	// now keeps the observed interval at tREFI) or when its postponement
	// deadline falls inside the gap (then it issues even if the request
	// slips by tRFC). Anything else is postponed to a later gap or to
	// forceRefresh's catch-up burst.
	for c.tREFI > 0 {
		k := ch.refCredit + 1
		due, deadline := c.refDue(ch, k), c.refDeadline(ch, k)
		quiet := c.quietSlot(ch)
		refAt := maxI64(due, quiet) // where issueRef would land it
		fits := refAt+c.tRFC <= start
		must := deadline <= start
		if !fits && !must {
			break // next obligation is a later gap's (or catch-up's) problem
		}
		if lowPower && c.opts.PowerDownAfter > 0 {
			enter := maxI64(quiet+c.opts.PowerDownAfter, ch.now+1)
			exit := refAt - c.tXP
			if exit >= enter+c.tCKE {
				c.emit(ch, enter, trace.OpPowerDownEnter, 0, 0)
				c.emit(ch, exit, trace.OpPowerDownExit, 0, 0)
				ch.exitValid = exit + c.tXP
				c.stats.PowerDowns++
			}
		}
		c.issueRef(ch, due)
		if must && !fits {
			c.stats.ForcedRefreshes++ // deadline inside the gap: issue even if it delays the request
		}
	}

	// A power-down window over whatever remains of the gap (or all of it
	// when no refresh came due).
	if lowPower && c.opts.PowerDownAfter > 0 {
		enter := maxI64(c.quietSlot(ch)+c.opts.PowerDownAfter, ch.now+1)
		exit := start - c.tXP
		if exit >= enter+c.tCKE {
			c.emit(ch, enter, trace.OpPowerDownEnter, 0, 0)
			c.emit(ch, exit, trace.OpPowerDownExit, 0, 0)
			ch.exitValid = exit + c.tXP
			c.stats.PowerDowns++
		}
	}
}

// firstCommandSlot computes where the request's first command would land
// given current channel state, without emitting anything — the
// power-down inserter needs it to size the idle gap.
func (c *Controller) firstCommandSlot(ch *chanState, bi int, row int, t int64) int64 {
	b := &ch.banks[bi]
	switch {
	case b.open && b.row == row: // hit: RD/WR directly
		want := maxI64(t, b.actSlot+c.tRCD)
		want = maxI64(want, ch.busUntil)
		want = maxI64(want, ch.exitValid)
		return maxI64(want, ch.now+1)
	case b.open: // conflict: PRE first
		want := maxI64(t, b.actSlot+c.tRAS)
		want = maxI64(want, b.burstEnd)
		want = maxI64(want, ch.exitValid)
		return maxI64(want, ch.now+1)
	default: // miss: ACT first
		return maxI64(c.earliestAct(ch, b, t), ch.now+1)
	}
}

// request schedules one mapped request arriving at slot t.
func (c *Controller) request(ch *chanState, co Coord, write bool, t int64) {
	bi := co.Bank
	c.sweepTimeouts(ch, t)
	if c.tREFI > 0 {
		c.forceRefresh(ch, t)
	}
	c.fillGap(ch, c.firstCommandSlot(ch, bi, co.Row, t))
	b := &ch.banks[bi]
	switch {
	case b.open && b.row == co.Row:
		c.stats.RowHits++
	case b.open:
		c.stats.RowConflicts++
		c.precharge(ch, bi, t)
		c.activate(ch, bi, co.Row, t)
	default:
		c.stats.RowMisses++
		c.activate(ch, bi, co.Row, t)
	}
	c.column(ch, bi, write, t)
	if c.opts.Policy == PolicyClosed {
		c.precharge(ch, bi, t)
	}
	if write {
		c.stats.Writes++
	} else {
		c.stats.Reads++
	}
	c.stats.Requests++
}

// Schedule consumes the access stream and returns the merged command
// trace (global bank indices, non-decreasing slots) plus scheduling
// stats. Requests must arrive in non-decreasing slot order.
func (c *Controller) Schedule(src Source) ([]trace.Command, Stats, error) {
	var last int64 = -1
	idx := 0
	for src.Scan() {
		req := src.Request()
		if req.Slot < last {
			return nil, c.stats, &ScheduleError{Index: idx, Req: req,
				Msg: fmt.Sprintf("out of order (previous request at slot %d)", last)}
		}
		last = req.Slot
		co, err := c.mapper.Map(req.Addr)
		if err != nil {
			return nil, c.stats, &ScheduleError{Index: idx, Req: req, Msg: err.Error(), err: err}
		}
		c.request(&c.chans[co.Channel], co, req.Write, req.Slot)
		idx++
	}
	if err := src.Err(); err != nil {
		return nil, c.stats, err
	}
	// Retire the refresh debt: every channel owes one refresh per tREFI
	// elapsed up to the trace's global end — an idle channel is still a
	// powered channel whose cells leak, and postponed obligations don't
	// vanish at trace end; a trace spanning T slots pays its steady-state
	// floor(T/tREFI) refreshes, which is exactly the paper's IDD5-over-
	// tREFI refresh energy term. Serving the debt can itself extend the
	// end, so iterate to a fixed point (each round's new debt shrinks by
	// tRFC/tREFI, which NewController guarantees is < 1).
	if c.tREFI > 0 {
		for {
			end := int64(0)
			for i := range c.chans {
				end = maxI64(end, c.chans[i].now)
			}
			progress := false
			for i := range c.chans {
				ch := &c.chans[i]
				for c.refDue(ch, ch.refCredit+1) <= end {
					c.issueRef(ch, c.refDue(ch, ch.refCredit+1))
					c.stats.ForcedRefreshes++
					progress = true
				}
			}
			if !progress {
				break
			}
		}
	}
	perChan := make([][]trace.Command, len(c.chans))
	for i := range c.chans {
		perChan[i] = c.chans[i].cmds
		if n := len(c.chans[i].cmds); n > 0 {
			c.stats.Slots = maxI64(c.stats.Slots, c.chans[i].cmds[n-1].Slot)
		}
	}
	merged := trace.Interleave(perChan, c.BanksPerChannel())
	return merged, c.stats, nil
}

// Schedule builds a controller and schedules an access trace read from
// rd (text or .dab, sniffed).
func Schedule(m *core.Model, rd io.Reader, opts Options) ([]trace.Command, Stats, error) {
	c, err := NewController(m, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	return c.Schedule(NewAccessSource(rd))
}

// ScheduleRequests schedules an in-memory request slice.
func ScheduleRequests(m *core.Model, reqs []Request, opts Options) ([]trace.Command, Stats, error) {
	c, err := NewController(m, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	return c.Schedule(NewSliceSource(reqs))
}
