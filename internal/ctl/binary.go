package ctl

// The binary half of the access-trace format (.dab), mirroring the dtb
// command-trace encoding in internal/trace/binary.go: a 5-byte header
// then one variable-length record per request.
//
//	magic   0xDA 'D' 'A' 'B' 0x01
//	record  flags byte ++ zigzag-varint slot delta ++ zigzag-varint addr delta
//
// The flags byte carries the operation in bit 0 (0 = read, 1 = write);
// bits 1..7 are reserved and must be zero. Slot and address are both
// delta-encoded against the previous record (zigzag, so regressions and
// strides in either direction stay short); the first record's deltas are
// against zero. The 0xDA first byte cannot begin a text access trace
// (which starts with whitespace, '#' or a digit) or a dtb stream (0xD7),
// so NewAccessSource sniffs the format from one byte.

import (
	"bufio"
	"errors"
	"fmt"
	"io"
)

// accessMagic is the .dab header: sentinel byte, format name, version.
var accessMagic = [5]byte{0xDA, 'D', 'A', 'B', 0x01}

// AccessBinaryMagicByte is the first byte of every .dab stream, used for
// format sniffing.
const AccessBinaryMagicByte = 0xDA

// accessFlagWrite is bit 0 of the record flags byte.
const accessFlagWrite = 0x01

// accessFlagReserved masks the bits that must be zero in this version.
const accessFlagReserved = ^byte(accessFlagWrite)

// zigzag folds signed deltas into unsigned varint space: 0, -1, 1, -2 ->
// 0, 1, 2, 3.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendUvarint is binary.AppendUvarint without the import.
func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// BinaryWriter encodes requests into the .dab format. The header is
// written lazily on the first request (or by Flush for an empty trace).
type BinaryWriter struct {
	w        *bufio.Writer
	buf      []byte
	lastSlot int64
	lastAddr int64
	started  bool
	err      error
}

// NewBinaryWriter returns a BinaryWriter emitting to w.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{w: bufio.NewWriter(w), buf: make([]byte, 0, 24)}
}

func (bw *BinaryWriter) start() error {
	if bw.started {
		return nil
	}
	bw.started = true
	_, err := bw.w.Write(accessMagic[:])
	return err
}

// Write encodes one request. Requests may arrive in any slot/address
// order — deltas are signed — though the scheduler itself wants
// non-decreasing slots.
func (bw *BinaryWriter) Write(r Request) error {
	if bw.err != nil {
		return bw.err
	}
	if err := bw.start(); err != nil {
		bw.err = err
		return err
	}
	if r.Slot < 0 || r.Addr < 0 {
		bw.err = fmt.Errorf("ctl: negative slot or address in request %v", r)
		return bw.err
	}
	flags := byte(0)
	if r.Write {
		flags = accessFlagWrite
	}
	b := append(bw.buf[:0], flags)
	b = appendUvarint(b, zigzag(r.Slot-bw.lastSlot))
	b = appendUvarint(b, zigzag(r.Addr-bw.lastAddr))
	bw.buf = b
	bw.lastSlot, bw.lastAddr = r.Slot, r.Addr
	if _, err := bw.w.Write(b); err != nil {
		bw.err = err
		return err
	}
	return nil
}

// Flush writes any buffered output (and the header, if no request was
// ever written) to the underlying writer.
func (bw *BinaryWriter) Flush() error {
	if bw.err != nil {
		return bw.err
	}
	if err := bw.start(); err != nil {
		bw.err = err
		return err
	}
	if err := bw.w.Flush(); err != nil {
		bw.err = err
		return err
	}
	return nil
}

// WriteBinaryAccessTrace encodes requests as a complete .dab stream.
func WriteBinaryAccessTrace(w io.Writer, reqs []Request) error {
	bw := NewBinaryWriter(w)
	for i := range reqs {
		if err := bw.Write(reqs[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// BinaryScanner decodes a .dab stream. Errors are positioned by request
// ordinal (reported in ParseError.Line, Col zero), matching the text
// scanner's contract closely enough that callers handle both uniformly.
type BinaryScanner struct {
	r        *bufio.Reader
	req      Request
	lastSlot int64
	lastAddr int64
	n        int // requests decoded so far
	started  bool
	err      error
}

// NewBinaryScanner returns a BinaryScanner reading a .dab stream from r.
// The header is validated on the first Scan.
func NewBinaryScanner(r io.Reader) *BinaryScanner {
	return &BinaryScanner{r: bufio.NewReader(r)}
}

func (bs *BinaryScanner) fail(msg string, err error) bool {
	bs.err = &ParseError{Line: bs.n + 1, Msg: msg, err: err}
	return false
}

// Scan advances to the next request; false at end of stream or error.
func (bs *BinaryScanner) Scan() bool {
	if bs.err != nil {
		return false
	}
	if !bs.started {
		bs.started = true
		var hdr [5]byte
		if _, err := io.ReadFull(bs.r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return bs.fail("truncated access-trace header", io.ErrUnexpectedEOF)
			}
			return bs.fail(err.Error(), err)
		}
		if hdr != accessMagic {
			if hdr[0] != AccessBinaryMagicByte || hdr[1] != 'D' || hdr[2] != 'A' || hdr[3] != 'B' {
				return bs.fail(fmt.Sprintf("bad access-trace magic % x", hdr[:4]), nil)
			}
			return bs.fail(fmt.Sprintf("unsupported access-trace version %d", hdr[4]), nil)
		}
	}
	flags, err := bs.r.ReadByte()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return false // clean end of stream
		}
		return bs.fail(err.Error(), err)
	}
	if flags&accessFlagReserved != 0 {
		return bs.fail(fmt.Sprintf("reserved flag bits %#02x set", flags&accessFlagReserved), nil)
	}
	dSlot, ok := bs.varint()
	if !ok {
		return false
	}
	dAddr, ok := bs.varint()
	if !ok {
		return false
	}
	slot := bs.lastSlot + dSlot
	addr := bs.lastAddr + dAddr
	if slot < 0 {
		return bs.fail(fmt.Sprintf("negative slot %d", slot), nil)
	}
	if addr < 0 {
		return bs.fail(fmt.Sprintf("negative address %d", addr), nil)
	}
	bs.lastSlot, bs.lastAddr = slot, addr
	bs.req = Request{Slot: slot, Write: flags&accessFlagWrite != 0, Addr: addr}
	bs.n++
	return true
}

// varint decodes one zigzag varint, recording a positioned error on
// truncation or overlong encodings.
func (bs *BinaryScanner) varint() (int64, bool) {
	var u uint64
	var shift uint
	for {
		c, err := bs.r.ReadByte()
		if err != nil {
			if errors.Is(err, io.EOF) {
				bs.fail("truncated request record", io.ErrUnexpectedEOF)
				return 0, false
			}
			bs.fail(err.Error(), err)
			return 0, false
		}
		if shift == 63 && c > 1 {
			bs.fail("varint overflows 64 bits", nil)
			return 0, false
		}
		u |= uint64(c&0x7f) << shift
		if c&0x80 == 0 {
			return unzigzag(u), true
		}
		shift += 7
		if shift > 63 {
			bs.fail("varint longer than 10 bytes", nil)
			return 0, false
		}
	}
}

// Request returns the request of the last successful Scan.
func (bs *BinaryScanner) Request() Request { return bs.req }

// Err returns the first error encountered (a *ParseError), or nil after
// a clean end of stream.
func (bs *BinaryScanner) Err() error { return bs.err }

// oneByteReader replays a sniffed first byte ahead of the rest of the
// stream.
type oneByteReader struct {
	b    byte
	done bool
	r    io.Reader
}

func (o *oneByteReader) Read(p []byte) (int, error) {
	if !o.done {
		if len(p) == 0 {
			return 0, nil
		}
		o.done = true
		p[0] = o.b
		return 1, nil
	}
	return o.r.Read(p)
}

// errSource is a Source that failed before producing any request.
type errSource struct{ err error }

func (e *errSource) Scan() bool       { return false }
func (e *errSource) Request() Request { return Request{} }
func (e *errSource) Err() error       { return e.err }

// NewAccessSource sniffs the access-trace format from the first byte of
// r and returns the matching scanner: 0xDA selects the .dab binary
// decoder, anything else the text scanner. An empty stream is a valid
// empty text trace.
func NewAccessSource(r io.Reader) Source {
	var first [1]byte
	n, err := r.Read(first[:])
	for n == 0 && err == nil {
		n, err = r.Read(first[:])
	}
	if n == 0 {
		if err == nil || errors.Is(err, io.EOF) {
			return NewScanner(r)
		}
		return &errSource{err: &ParseError{Line: 1, Msg: err.Error(), err: err}}
	}
	rest := &oneByteReader{b: first[0], r: r}
	if first[0] == AccessBinaryMagicByte {
		return NewBinaryScanner(rest)
	}
	return NewScanner(rest)
}
