package ctl

// Access-trace ingestion: the text half of the .dab format plus the
// Source interface the scheduler consumes. An access trace is the
// controller-side counterpart of a command trace — timestamped read and
// write requests against a flat physical address space, with no DRAM
// commands in sight; the scheduler turns it into a legal command trace.
//
// The text format is one request per line,
//
//	<slot> <r|w> <addr>
//
// with fields separated by spaces or tabs, '#' starting a comment that
// runs to the end of the line, and blank lines ignored. <slot> is the
// request's arrival time in control-clock slots; <r|w> also accepts rd,
// wr, read and write, ASCII-case-insensitively; <addr> is a non-negative
// flat byte^W burst address, decimal or 0x-prefixed hex.
//
//	# a row hit pair, then a write far away
//	0   r 0x2400
//	12  r 0x2401
//	400 w 0x91f00
//
// The equivalent binary encoding lives in binary.go; NewAccessSource
// sniffs the two apart from the first byte, exactly like trace.NewSource
// does for command traces.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// Request is one access-trace entry: a read or write of one burst at a
// flat physical address, arriving at a control-clock slot. Arrival order
// is FIFO — the scheduler requires non-decreasing slots.
type Request struct {
	Slot  int64
	Write bool
	Addr  int64
}

// String renders the request in the text format (without the newline).
func (r Request) String() string {
	op := "r"
	if r.Write {
		op = "w"
	}
	return fmt.Sprintf("%d %s %#x", r.Slot, op, r.Addr)
}

// ParseError reports a malformed access-trace input at a 1-based
// position: Line/Col for text, the request ordinal (Col zero) for
// binary. It mirrors trace.ParseError so tooling surfaces description,
// command-trace and access-trace errors uniformly.
type ParseError struct {
	Line int
	Col  int
	Msg  string
	err  error // underlying reader error, when the input itself failed
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	if e.Col > 0 {
		return fmt.Sprintf("access: line %d, col %d: %s", e.Line, e.Col, e.Msg)
	}
	return fmt.Sprintf("access: line %d: %s", e.Line, e.Msg)
}

// Unwrap exposes the reader error behind a stream failure (nil for
// ordinary syntax errors).
func (e *ParseError) Unwrap() error { return e.err }

// Source is a stream of access requests: the common face of the text
// Scanner, the BinaryScanner and in-memory slices, and what the
// scheduler consumes.
type Source interface {
	Scan() bool
	Request() Request
	Err() error
}

// maxLineBytes bounds a single access-trace line.
const maxLineBytes = 1 << 16

// Scanner reads an access trace from an io.Reader one line at a time,
// with the same allocation discipline as the command-trace scanner:
// lines tokenize in place on the bufio buffer, integers and mnemonics
// decode without forming strings, and only error paths allocate.
type Scanner struct {
	s    *bufio.Scanner
	line int
	req  Request
	err  error
}

// NewScanner returns a Scanner reading access-trace text from r.
func NewScanner(r io.Reader) *Scanner {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 4096), maxLineBytes)
	return &Scanner{s: s}
}

// Scan advances to the next request, skipping blank and comment lines.
// It returns false at end of input or on the first error; Err
// disambiguates the two.
func (sc *Scanner) Scan() bool {
	if sc.err != nil {
		return false
	}
	for sc.s.Scan() {
		sc.line++
		req, ok, err := parseAccessLine(sc.s.Bytes(), sc.line)
		if err != nil {
			sc.err = err
			return false
		}
		if ok {
			sc.req = req
			return true
		}
	}
	if err := sc.s.Err(); err != nil {
		sc.err = &ParseError{Line: sc.line + 1, Msg: err.Error(), err: err}
	}
	return false
}

// Request returns the request of the last successful Scan.
func (sc *Scanner) Request() Request { return sc.req }

// Err returns the first error encountered (a *ParseError), or nil after
// a clean end of input.
func (sc *Scanner) Err() error { return sc.err }

// Line returns the 1-based number of the last line read.
func (sc *Scanner) Line() int { return sc.line }

// parseAccessLine decodes one access-trace line. ok is false for blank
// and comment-only lines.
func parseAccessLine(b []byte, line int) (req Request, ok bool, err error) {
	i := skipSpace(b, 0)
	if i >= len(b) || b[i] == '#' {
		return Request{}, false, nil
	}
	slot, j, numOK := parseUint(b, i)
	if !numOK {
		return Request{}, false, &ParseError{Line: line, Col: i + 1, Msg: fmt.Sprintf("bad slot %q (want non-negative integer)", field(b, i))}
	}
	req.Slot = slot

	i = skipSpace(b, j)
	if i >= len(b) || b[i] == '#' {
		return Request{}, false, &ParseError{Line: line, Col: 0, Msg: "missing operation"}
	}
	j = endOfField(b, i)
	w, opOK := parseAccessOp(b[i:j])
	if !opOK {
		return Request{}, false, &ParseError{Line: line, Col: i + 1, Msg: fmt.Sprintf("unknown operation %q (want r or w)", field(b, i))}
	}
	req.Write = w

	i = skipSpace(b, j)
	if i >= len(b) || b[i] == '#' {
		return Request{}, false, &ParseError{Line: line, Col: 0, Msg: "missing address"}
	}
	addr, j, addrOK := parseAddr(b, i)
	if !addrOK {
		return Request{}, false, &ParseError{Line: line, Col: i + 1, Msg: fmt.Sprintf("bad address %q (want non-negative integer, decimal or 0x hex)", field(b, i))}
	}
	req.Addr = addr

	i = skipSpace(b, j)
	if i < len(b) && b[i] != '#' {
		return Request{}, false, &ParseError{Line: line, Col: i + 1, Msg: fmt.Sprintf("trailing field %q (want <slot> <r|w> <addr>)", field(b, i))}
	}
	return req, true, nil
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' }

// skipSpace returns the index of the first non-space byte at or after i.
func skipSpace(b []byte, i int) int {
	for i < len(b) && isSpace(b[i]) {
		i++
	}
	return i
}

// endOfField returns the index just past the field starting at i.
func endOfField(b []byte, i int) int {
	for i < len(b) && !isSpace(b[i]) && b[i] != '#' {
		i++
	}
	return i
}

// field extracts the field starting at i for error messages (this path
// may allocate; the accept path never calls it).
func field(b []byte, i int) string { return string(b[i:endOfField(b, i)]) }

// parseUint decodes a non-negative decimal integer field starting at i
// without allocating. It returns the value, the index just past the
// field, and whether the field was well formed and ended at a field
// boundary.
func parseUint(b []byte, i int) (int64, int, bool) {
	j := i
	start := j
	var v int64
	for j < len(b) && b[j] >= '0' && b[j] <= '9' {
		// Bound before the multiply: v*10 can wrap past negative back
		// into the positive range, so a post-hoc v < 0 check is not
		// enough.
		if v > ((1<<63-1)-9)/10 {
			return 0, j, false // overflow
		}
		v = v*10 + int64(b[j]-'0')
		j++
	}
	if j == start {
		return 0, j, false
	}
	if j < len(b) && !isSpace(b[j]) && b[j] != '#' {
		return 0, j, false
	}
	return v, j, true
}

// parseAddr decodes an address field: decimal, or hex behind 0x/0X.
func parseAddr(b []byte, i int) (int64, int, bool) {
	if i+1 < len(b) && b[i] == '0' && (b[i+1] == 'x' || b[i+1] == 'X') {
		j := i + 2
		start := j
		var v int64
		for j < len(b) {
			c := b[j]
			var d int64
			switch {
			case c >= '0' && c <= '9':
				d = int64(c - '0')
			case c >= 'a' && c <= 'f':
				d = int64(c-'a') + 10
			case c >= 'A' && c <= 'F':
				d = int64(c-'A') + 10
			default:
				if j == start || (!isSpace(c) && c != '#') {
					return 0, j, false
				}
				return v, j, true
			}
			if v >= 1<<59 {
				return 0, j, false // v<<4 would overflow int64
			}
			v = v<<4 | d
			j++
		}
		if j == start {
			return 0, j, false
		}
		return v, j, true
	}
	return parseUint(b, i)
}

// parseAccessOp matches a read/write mnemonic ASCII-case-insensitively.
func parseAccessOp(b []byte) (write, ok bool) {
	switch {
	case eqFold(b, "r"), eqFold(b, "rd"), eqFold(b, "read"):
		return false, true
	case eqFold(b, "w"), eqFold(b, "wr"), eqFold(b, "write"):
		return true, true
	}
	return false, false
}

// eqFold reports whether b equals the lower-case string s under ASCII
// case folding, without allocating.
func eqFold(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != s[i] {
			return false
		}
	}
	return true
}

// AppendRequest appends the access-trace text line for r, including the
// trailing newline, to dst and returns the extended slice. Addresses
// render in hex (the canonical form the scanner round-trips).
func AppendRequest(dst []byte, r Request) []byte {
	dst = strconv.AppendInt(dst, r.Slot, 10)
	if r.Write {
		dst = append(dst, " w 0x"...)
	} else {
		dst = append(dst, " r 0x"...)
	}
	dst = strconv.AppendInt(dst, r.Addr, 16)
	return append(dst, '\n')
}

// WriteAccessTrace renders requests in the access-trace text format, one
// line per request, buffered. The output round-trips through NewScanner.
func WriteAccessTrace(w io.Writer, reqs []Request) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	for i := range reqs {
		buf = AppendRequest(buf[:0], reqs[i])
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// sliceSource adapts an in-memory request slice to the Source interface.
type sliceSource struct {
	reqs []Request
	i    int
}

// NewSliceSource returns a Source over an in-memory request slice.
func NewSliceSource(reqs []Request) Source { return &sliceSource{reqs: reqs} }

func (s *sliceSource) Scan() bool {
	if s.i >= len(s.reqs) {
		return false
	}
	s.i++
	return true
}

func (s *sliceSource) Request() Request { return s.reqs[s.i-1] }

func (s *sliceSource) Err() error { return nil }

// Len reports the requests remaining — the scheduler uses it to pre-size
// its per-channel buffers when the source is an in-memory slice.
func (s *sliceSource) Len() int { return len(s.reqs) - s.i }
