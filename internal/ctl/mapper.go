// Package ctl is the memory-controller front-end of the trace engine: it
// consumes an access trace (timestamped read/write requests against a
// flat physical address space) and schedules it into a legal DRAM
// command trace for trace.Simulator/Replayer. The paper's central result
// is that DRAM energy is dominated by how the device is used — row-hit
// rate, page policy, idle-state residency — and the controller is where
// all three are decided: the address mapper (this file) sets the row-hit
// and bank-parallelism structure, the page policy (ctl.go) decides when
// rows close, and the power-down policy decides the low-power residency.
// See DESIGN §12 for the scheduling determinism and legality argument.
package ctl

import (
	"fmt"
	"strings"

	"drampower/internal/core"
)

// Field names a component of the physical address in an interleave spec.
type Field int

// The four address components, in the order their mnemonics appear in
// interleave specs.
const (
	FieldChannel Field = iota // "ch"
	FieldBank                 // "ba"
	FieldRow                  // "ro"
	FieldColumn               // "co"
	numFields
)

// String returns the spec mnemonic of the field.
func (f Field) String() string {
	switch f {
	case FieldChannel:
		return "ch"
	case FieldBank:
		return "ba"
	case FieldRow:
		return "ro"
	case FieldColumn:
		return "co"
	}
	return "??"
}

// DefaultMap is the default interleave spec: row above bank above channel
// above column. Keeping the column bits lowest sends consecutive
// addresses through one open row (maximum spatial locality becomes
// maximum row-hit rate), and bank above channel spreads row conflicts
// across channels before banks.
const DefaultMap = "ro:ba:ch:co"

// Coord is a decomposed physical address.
type Coord struct {
	Channel int
	Bank    int
	Row     int
	Col     int
}

// Mapper translates flat physical addresses to (channel, bank, row,
// column) coordinates by bit interleave. A mapper is a pure bijection
// between [0, 2^AddressBits) and the coordinate space: Map followed by
// Unmap is the identity in both directions (pinned by the round-trip
// tests), so distinct addresses never collide on one coordinate tuple.
type Mapper struct {
	// order lists the fields from most to least significant, as written
	// in the spec string.
	order [numFields]Field
	bits  [numFields]int // width per field, indexed by Field
	spec  string
}

// ParseMap builds a mapper from an interleave spec string: the four field
// mnemonics ch, ba, ro, co joined by ':', most significant first (e.g.
// "ro:ba:ch:co"). Every field must appear exactly once; a field whose
// width is zero (one channel, one bank) still appears but consumes no
// address bits.
func ParseMap(spec string, chBits, baBits, roBits, coBits int) (*Mapper, error) {
	widths := [numFields]int{FieldChannel: chBits, FieldBank: baBits, FieldRow: roBits, FieldColumn: coBits}
	for f, w := range widths {
		if w < 0 || w > 30 {
			return nil, fmt.Errorf("ctl: %s width %d outside 0..30", Field(f), w)
		}
	}
	parts := strings.Split(spec, ":")
	if len(parts) != int(numFields) {
		return nil, fmt.Errorf("ctl: bad address map %q (want 4 ':'-separated fields, e.g. %q)", spec, DefaultMap)
	}
	m := &Mapper{bits: widths, spec: spec}
	var seen [numFields]bool
	for i, p := range parts {
		var f Field
		switch p {
		case "ch":
			f = FieldChannel
		case "ba":
			f = FieldBank
		case "ro":
			f = FieldRow
		case "co":
			f = FieldColumn
		default:
			return nil, fmt.Errorf("ctl: bad address map field %q (want ch, ba, ro or co)", p)
		}
		if seen[f] {
			return nil, fmt.Errorf("ctl: address map %q repeats field %q", spec, p)
		}
		seen[f] = true
		m.order[i] = f
	}
	return m, nil
}

// MapperFor derives a mapper for the model over the given channel count:
// bank and row widths come from the specification, the column width is
// the column address bits above the burst (one access moves one burst),
// and the channel width is log2(channels), which must be a power of two
// for a bit interleave to exist.
func MapperFor(m *core.Model, channels int, spec string) (*Mapper, error) {
	if channels < 1 {
		channels = 1
	}
	chBits := 0
	for 1<<uint(chBits) < channels {
		chBits++
	}
	if 1<<uint(chBits) != channels {
		return nil, fmt.Errorf("ctl: %d channels not a power of two (bit interleave needs one)", channels)
	}
	s := m.D.Spec
	// One access is one burst, so the in-burst column bits are not
	// addressable: a burst of length 8 covers 8 column addresses.
	burstBits := 0
	bl := s.BurstLength
	if bl <= 0 {
		bl = s.Prefetch()
	}
	for 1<<uint(burstBits+1) <= bl {
		burstBits++
	}
	coBits := s.ColAddrBits - burstBits
	if coBits < 0 {
		coBits = 0
	}
	return ParseMap(spec, chBits, s.BankAddrBits, s.RowAddrBits, coBits)
}

// AddressBits is the total width of the flat address space.
func (m *Mapper) AddressBits() int {
	t := 0
	for _, w := range m.bits {
		t += w
	}
	return t
}

// Spec returns the interleave spec the mapper was built from.
func (m *Mapper) Spec() string { return m.spec }

// Map decomposes a flat address. Addresses outside [0, 2^AddressBits)
// are rejected, so a trace that overruns the device is a scheduling
// error rather than a silent wrap.
func (m *Mapper) Map(addr int64) (Coord, error) {
	if addr < 0 {
		return Coord{}, fmt.Errorf("ctl: negative address %d", addr)
	}
	rest := addr
	var vals [numFields]int
	// Fields are consumed least significant first: the spec lists them
	// MSB -> LSB, so walk the order backwards.
	for i := int(numFields) - 1; i >= 0; i-- {
		f := m.order[i]
		w := uint(m.bits[f])
		vals[f] = int(rest & (1<<w - 1))
		rest >>= w
	}
	if rest != 0 {
		return Coord{}, fmt.Errorf("ctl: address %#x outside the %d-bit space", addr, m.AddressBits())
	}
	return Coord{
		Channel: vals[FieldChannel],
		Bank:    vals[FieldBank],
		Row:     vals[FieldRow],
		Col:     vals[FieldColumn],
	}, nil
}

// Unmap recomposes the flat address of a coordinate, the exact inverse
// of Map. Coordinates outside their field width are rejected.
func (m *Mapper) Unmap(c Coord) (int64, error) {
	vals := [numFields]int{FieldChannel: c.Channel, FieldBank: c.Bank, FieldRow: c.Row, FieldColumn: c.Col}
	for f, v := range vals {
		if v < 0 || v >= 1<<uint(m.bits[f]) {
			return 0, fmt.Errorf("ctl: %s %d outside the %d-bit field", Field(f), v, m.bits[f])
		}
	}
	var addr int64
	for _, f := range m.order {
		addr = addr<<uint(m.bits[f]) | int64(vals[f])
	}
	return addr, nil
}
