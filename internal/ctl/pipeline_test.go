package ctl

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"drampower/internal/core"
	"drampower/internal/trace"
)

// collectSink gathers per-channel command streams. Consume may run
// concurrently for distinct channels; each channel writes only its own
// slot, so no lock is needed.
type collectSink struct {
	chans [][]trace.Command
}

func newCollectSink(channels int) *collectSink {
	return &collectSink{chans: make([][]trace.Command, channels)}
}

func (s *collectSink) Consume(ch int, batch []trace.Command) error {
	s.chans[ch] = append(s.chans[ch], batch...) // must copy: the batch is reused
	return nil
}

// TestScheduleParallelMatchesSerial pins the sharded scheduler's
// determinism contract: the merged trace bytes and the stats are
// independent of the worker count.
func TestScheduleParallelMatchesSerial(t *testing.T) {
	m := model(t)
	for _, channels := range []int{2, 4} {
		t.Run(fmt.Sprintf("%dch", channels), func(t *testing.T) {
			gen := genOpts(5000, 0.6, 9)
			gen.Channels = channels
			reqs, err := GenerateAccesses(m, gen)
			if err != nil {
				t.Fatal(err)
			}
			opts := Options{Policy: PolicyTimeout, PageTimeout: 80, PowerDownAfter: 40, Channels: channels}
			opts.Workers = 1
			serialCmds, serialStats := schedule(t, m, reqs, opts)
			opts.Workers = 4
			parCmds, parStats := schedule(t, m, reqs, opts)
			if serialStats != parStats {
				t.Fatalf("stats differ: serial %+v, parallel %+v", serialStats, parStats)
			}
			var a, b bytes.Buffer
			if err := trace.WriteBinaryTrace(&a, serialCmds); err != nil {
				t.Fatal(err)
			}
			if err := trace.WriteBinaryTrace(&b, parCmds); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatal("parallel schedule produced different trace bytes than serial")
			}
		})
	}
}

// fusedReplay runs the streaming pipeline with a replayer sink and
// closes the accounting at endSlack past the last command, matching the
// two-phase test helpers.
func fusedReplay(t *testing.T, m *core.Model, reqs []Request, opts Options, endSlack int64) (Stats, trace.Result) {
	t.Helper()
	c, err := NewController(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep := trace.NewReplayer(m, trace.ReplayOptions{Channels: c.Channels(), Workers: opts.Workers})
	stats, err := c.ScheduleInto(NewSliceSource(reqs), ReplaySink(rep))
	if err != nil {
		t.Fatalf("fused schedule: %v", err)
	}
	return stats, rep.Result(rep.Now() + endSlack)
}

// TestFusedMatchesTwoPhase is the fused pipeline's bit-identity pin over
// a multi-round stream (three+ pipeline rounds, so round boundaries and
// the final flush are all exercised): ScheduleInto with a replayer sink
// must produce exactly the stats and energy result of Schedule followed
// by a slice replay, and with a collecting sink exactly the per-channel
// command streams behind Schedule's merged trace.
func TestFusedMatchesTwoPhase(t *testing.T) {
	m := model(t)
	n := 3*schedBatch + 57 // spill into a fourth round
	for _, channels := range []int{1, 4} {
		t.Run(fmt.Sprintf("%dch", channels), func(t *testing.T) {
			gen := genOpts(n, 0.6, 11)
			gen.Channels = channels
			reqs, err := GenerateAccesses(m, gen)
			if err != nil {
				t.Fatal(err)
			}
			opts := Options{Policy: PolicyOpen, PowerDownAfter: 64, Channels: channels, Workers: 4}
			cmds, stats := schedule(t, m, reqs, opts)
			res := replayAll(t, m, cmds, channels, m.D.Spec.Banks())

			fstats, fres := fusedReplay(t, m, reqs, opts, 4)
			if fstats != stats {
				t.Fatalf("fused stats differ:\nfused     %+v\ntwo-phase %+v", fstats, stats)
			}
			if !reflect.DeepEqual(fres, res) {
				t.Fatalf("fused result differs:\nfused     %+v\ntwo-phase %+v", fres, res)
			}

			// The streamed per-channel commands, interleaved, are the
			// merged trace.
			c, err := NewController(m, opts)
			if err != nil {
				t.Fatal(err)
			}
			sink := newCollectSink(channels)
			if _, err := c.ScheduleInto(NewSliceSource(reqs), sink); err != nil {
				t.Fatal(err)
			}
			merged := trace.Interleave(sink.chans, m.D.Spec.Banks())
			if !reflect.DeepEqual(merged, cmds) {
				t.Fatalf("streamed commands interleave to a different trace (%d vs %d commands)", len(merged), len(cmds))
			}
		})
	}
}

// errAfterSource yields its requests, then fails with err — a source
// error striking mid-stream (after several pipeline rounds, given
// enough requests).
type errAfterSource struct {
	reqs []Request
	i    int
	err  error
}

func (s *errAfterSource) Scan() bool {
	if s.i >= len(s.reqs) {
		return false
	}
	s.i++
	return true
}

func (s *errAfterSource) Request() Request { return s.reqs[s.i-1] }

func (s *errAfterSource) Err() error {
	if s.i >= len(s.reqs) {
		return s.err
	}
	return nil
}

// waitGoroutines polls until the goroutine count drops back to the
// baseline (the pipeline's demultiplexer must exit on every error
// path), failing after a generous deadline.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(time.Millisecond)
	}
}

// TestScheduleIntoMidStreamError: a source error several rounds in must
// shut the pipeline down cleanly — the error surfaces, the stats cover
// exactly the valid prefix (matching the materializing path's partial
// stats), the sink got exactly the prefix's commands, and no goroutine
// leaks. Run under -race this also proves the demux/schedule handoff is
// properly synchronized on the error path.
func TestScheduleIntoMidStreamError(t *testing.T) {
	m := model(t)
	gen := genOpts(2*schedBatch+123, 0.5, 5)
	gen.Channels = 2
	reqs, err := GenerateAccesses(m, gen)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Policy: PolicyClosed, Channels: 2, Workers: 4}
	srcErr := errors.New("stream truncated")

	base := runtime.NumGoroutine()
	c, err := NewController(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	sink := newCollectSink(2)
	stats, err := c.ScheduleInto(&errAfterSource{reqs: reqs, err: srcErr}, sink)
	if !errors.Is(err, srcErr) {
		t.Fatalf("got error %v, want %v", err, srcErr)
	}
	waitGoroutines(t, base)

	// Partial-stats parity with the materializing path.
	c2, err := NewController(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, serialStats, serialErr := c2.Schedule(&errAfterSource{reqs: reqs, err: srcErr})
	if !errors.Is(serialErr, srcErr) {
		t.Fatalf("materializing path: got error %v, want %v", serialErr, srcErr)
	}
	if stats != serialStats {
		t.Fatalf("partial stats differ:\nfused  %+v\nserial %+v", stats, serialStats)
	}
	if got := stats.Requests; got != int64(len(reqs)) {
		t.Fatalf("prefix stats cover %d requests, want %d", got, len(reqs))
	}

	// An out-of-order request mid-stream reports the same ordinal as the
	// serial path.
	bad := make([]Request, len(reqs))
	copy(bad, reqs)
	badAt := schedBatch + 77
	bad[badAt].Slot = 0
	c3, err := NewController(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c3.ScheduleInto(NewSliceSource(bad), Discard)
	var se *ScheduleError
	if !errors.As(err, &se) || se.Index != badAt {
		t.Fatalf("got %v, want ScheduleError at index %d", err, badAt)
	}
	waitGoroutines(t, base)
}

// failSink fails on a chosen channel after a chosen number of batches.
type failSink struct {
	ch    int
	after int
	seen  int
	err   error
}

func (s *failSink) Consume(ch int, batch []trace.Command) error {
	if ch == s.ch {
		s.seen++
		if s.seen > s.after {
			return s.err
		}
	}
	return nil
}

// TestScheduleIntoSinkError: a sink error stops the pipeline — first
// error wins (the earliest failing round, lowest channel), the stream
// stops being consumed, and the demultiplexer goroutine exits without
// leaking even though it may be blocked handing over the next round.
func TestScheduleIntoSinkError(t *testing.T) {
	m := model(t)
	gen := genOpts(3*schedBatch, 0.5, 5)
	gen.Channels = 4
	reqs, err := GenerateAccesses(m, gen)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Policy: PolicyClosed, Channels: 4, Workers: 4}
	sinkErr := errors.New("sink full")

	base := runtime.NumGoroutine()
	c, err := NewController(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.ScheduleInto(NewSliceSource(reqs), &failSink{ch: 1, after: 1, err: sinkErr})
	if !errors.Is(err, sinkErr) {
		t.Fatalf("got error %v, want %v", err, sinkErr)
	}
	waitGoroutines(t, base)
}

// TestScheduleReplayRequests covers the packaged fused entry point: it
// must agree with the facade-level two-phase combination, including the
// end-of-accounting slot (one burst after the last command).
func TestScheduleReplayRequests(t *testing.T) {
	m := model(t)
	gen := genOpts(1200, 0.5, 40)
	gen.Channels = 2
	reqs, err := GenerateAccesses(m, gen)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Policy: PolicyOpen, Channels: 2, Workers: 2}
	stats, res, err := ScheduleReplayRequests(m, reqs, opts, trace.ReplayOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cmds, tstats := schedule(t, m, reqs, opts)
	rep := trace.NewReplayer(m, trace.ReplayOptions{Channels: 2})
	if err := rep.ReplaySource(trace.NewSliceSource(cmds)); err != nil {
		t.Fatal(err)
	}
	tres := rep.Result(rep.Now() + int64(m.BurstSlots()))
	if stats != tstats {
		t.Fatalf("stats differ:\nfused     %+v\ntwo-phase %+v", stats, tstats)
	}
	if !reflect.DeepEqual(res, tres) {
		t.Fatalf("result differs:\nfused     %+v\ntwo-phase %+v", res, tres)
	}
}
