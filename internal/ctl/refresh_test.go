package ctl

import (
	"reflect"
	"strings"
	"testing"

	"drampower/internal/trace"
)

// TestScheduledTraceLegalitySweep is the retention acceptance pin: every
// policy × address map × channel count × low-power combination schedules
// a trace that replays with zero timing violations AND zero missed tREFI
// deadlines, and long traces actually carry refreshes. This is the sweep
// `make legality` (and CI) runs on its own.
func TestScheduledTraceLegalitySweep(t *testing.T) {
	m := model(t)
	tREFI := trace.New(m).RefreshIntervalSlots()
	if tREFI <= 0 {
		t.Fatal("sample spec lost its refresh interval")
	}
	policies := []struct {
		name string
		opts Options
	}{
		{"open", Options{Policy: PolicyOpen}},
		{"closed", Options{Policy: PolicyClosed}},
		{"timeout", Options{Policy: PolicyTimeout, PageTimeout: 64}},
	}
	lowPower := []struct {
		name string
		pd   int64
		sr   int64
	}{
		{"none", 0, 0},
		{"pd", 24, 0},
		{"pd-sr", 24, 400},
	}
	maps := []string{DefaultMap, "ch:ro:ba:co", "ba:ro:ch:co"}
	for _, pol := range policies {
		for _, lp := range lowPower {
			for _, mapSpec := range maps {
				for _, channels := range []int{1, 2} {
					name := pol.name + "/" + lp.name + "/" + strings.ReplaceAll(mapSpec, ":", "") + "/"
					if channels > 1 {
						name += "2ch"
					} else {
						name += "1ch"
					}
					t.Run(name, func(t *testing.T) {
						opts := pol.opts
						opts.PowerDownAfter = lp.pd
						opts.SelfRefreshAfter = lp.sr
						opts.Map = mapSpec
						opts.Channels = channels
						// gap 120 over 600 requests spans ~72k slots per
						// channel: a dozen tREFI obligations each.
						gen := genOpts(600, 0.5, 120)
						gen.Channels = channels
						reqs, err := GenerateAccesses(m, gen)
						if err != nil {
							t.Fatal(err)
						}
						cmds, stats := schedule(t, m, reqs, opts)
						res := replayAll(t, m, cmds, channels, m.D.Spec.Banks())
						if res.MissedRefreshDeadlines != 0 {
							t.Fatalf("replay reports %d missed tREFI deadlines", res.MissedRefreshDeadlines)
						}
						// The fused streaming pipeline (sharded scheduling
						// feeding a replayer sink directly, Workers: 4) must
						// reproduce the two-phase stats and energy result
						// bit-for-bit across this whole sweep.
						fopts := opts
						fopts.Workers = 4
						fstats, fres := fusedReplay(t, m, reqs, fopts, 4)
						if fstats != stats {
							t.Fatalf("fused stats differ:\nfused     %+v\ntwo-phase %+v", fstats, stats)
						}
						if !reflect.DeepEqual(fres, res) {
							t.Fatalf("fused result differs:\nfused     %+v\ntwo-phase %+v", fres, res)
						}
						// Self-refresh covers retention on its own; outside
						// it a long trace must pay its refresh floor.
						if stats.SelfRefreshes == 0 && stats.Refreshes == 0 {
							t.Fatal("no refreshes scheduled on a multi-tREFI trace")
						}
						if res.Refreshes != stats.Refreshes {
							t.Fatalf("replay counted %d refreshes, scheduler reported %d", res.Refreshes, stats.Refreshes)
						}
						if stats.SelfRefreshes == 0 && res.MaxRefreshInterval > (trace.MaxPostponedRefreshes+1)*tREFI+trace.New(m).RefreshCycleSlots() {
							t.Fatalf("max refresh interval %d slots exceeds the postponement bound", res.MaxRefreshInterval)
						}
					})
				}
			}
		}
	}
}

// TestRefreshSurvivesPowerDown pins the deadline-vs-power-down
// interaction: an idle gap spanning many tREFI with power-down armed must
// be segmented into pd windows separated by refreshes — no deadline may
// slide past the postponement bound just because the rank was asleep.
func TestRefreshSurvivesPowerDown(t *testing.T) {
	m := model(t)
	tREFI := trace.New(m).RefreshIntervalSlots()
	gap := 12 * tREFI // far beyond the 8-deep postponement window
	reqs := []Request{
		{Slot: 0, Addr: 0},
		{Slot: gap, Addr: 1 << 20},
	}
	cmds, stats := schedule(t, m, reqs, Options{Policy: PolicyClosed, PowerDownAfter: 24})
	res := replayAll(t, m, cmds, 1, m.D.Spec.Banks())
	if res.MissedRefreshDeadlines != 0 {
		t.Fatalf("%d missed deadlines across a %d-slot power-down gap", res.MissedRefreshDeadlines, gap)
	}
	if stats.Refreshes < 10 {
		t.Fatalf("only %d refreshes across 12 tREFI", stats.Refreshes)
	}
	// The gap must still be power-managed: multiple windows around the
	// refreshes, not one window abandoned for them.
	if stats.PowerDowns < 2 {
		t.Fatalf("gap segmented into %d power-down windows, want >= 2", stats.PowerDowns)
	}
	if res.MaxRefreshInterval > (trace.MaxPostponedRefreshes+1)*tREFI {
		t.Fatalf("max refresh interval %d exceeds deadline bound %d",
			res.MaxRefreshInterval, (trace.MaxPostponedRefreshes+1)*tREFI)
	}
}

// TestDisableRefreshReportsMisses: with the scheduler's refresh off, the
// replayer's retention audit must flag the trace, and the refresh
// counters must stay zero.
func TestDisableRefreshReportsMisses(t *testing.T) {
	m := model(t)
	reqs, err := GenerateAccesses(m, genOpts(600, 0.5, 120))
	if err != nil {
		t.Fatal(err)
	}
	cmds, stats := schedule(t, m, reqs, Options{Policy: PolicyClosed, DisableRefresh: true})
	if stats.Refreshes != 0 || stats.PostponedRefreshes != 0 || stats.ForcedRefreshes != 0 {
		t.Fatalf("DisableRefresh still scheduled refreshes: %+v", stats)
	}
	res := replayAll(t, m, cmds, 1, m.D.Spec.Banks())
	if res.MissedRefreshDeadlines == 0 {
		t.Fatal("refresh-free multi-tREFI trace audited clean")
	}
}

// TestRefreshEveryOverride: halving the interval roughly doubles the
// refresh count, and an interval at or below tRFC is rejected.
func TestRefreshEveryOverride(t *testing.T) {
	m := model(t)
	tREFI := trace.New(m).RefreshIntervalSlots()
	tRFC := trace.New(m).RefreshCycleSlots()
	reqs, err := GenerateAccesses(m, genOpts(600, 0.5, 120))
	if err != nil {
		t.Fatal(err)
	}
	_, base := schedule(t, m, reqs, Options{Policy: PolicyClosed})
	cmds, half := schedule(t, m, reqs, Options{Policy: PolicyClosed, RefreshEvery: tREFI / 2})
	if half.Refreshes < 2*base.Refreshes-2 {
		t.Fatalf("tREFI/2 scheduled %d refreshes vs %d at tREFI", half.Refreshes, base.Refreshes)
	}
	if res := replayAll(t, m, cmds, 1, m.D.Spec.Banks()); res.MissedRefreshDeadlines != 0 {
		t.Fatalf("override trace missed %d deadlines", res.MissedRefreshDeadlines)
	}
	if _, err := NewController(m, Options{RefreshEvery: tRFC}); err == nil {
		t.Fatal("refresh interval == tRFC accepted")
	}
	if _, err := NewController(m, Options{RefreshEvery: -1}); err == nil {
		t.Fatal("negative refresh interval accepted")
	}
	if _, err := NewController(m, Options{MaxPostponed: -1}); err == nil {
		t.Fatal("negative postponement bound accepted")
	}
}

// TestMaxPostponedBoundsInterval: a tighter postponement bound tightens
// the audited worst-case refresh interval on a backlogged stream.
func TestMaxPostponedBoundsInterval(t *testing.T) {
	m := model(t)
	tREFI := trace.New(m).RefreshIntervalSlots()
	// Dense arrivals keep every slot contended so the scheduler leans on
	// postponement; the bound is what separates the two runs.
	reqs, err := GenerateAccesses(m, genOpts(6000, 0.5, 1))
	if err != nil {
		t.Fatal(err)
	}
	run := func(maxPost int) trace.Result {
		cmds, _ := schedule(t, m, reqs, Options{Policy: PolicyOpen, MaxPostponed: maxPost})
		return replayAll(t, m, cmds, 1, m.D.Spec.Banks())
	}
	tight, loose := run(1), run(trace.MaxPostponedRefreshes)
	if tight.MissedRefreshDeadlines != 0 || loose.MissedRefreshDeadlines != 0 {
		t.Fatalf("missed deadlines: tight %d, loose %d", tight.MissedRefreshDeadlines, loose.MissedRefreshDeadlines)
	}
	if tight.MaxRefreshInterval > 2*tREFI+trace.New(m).RefreshCycleSlots() {
		t.Fatalf("maxPost=1 interval %d exceeds 2*tREFI bound", tight.MaxRefreshInterval)
	}
	if tight.MaxRefreshInterval >= loose.MaxRefreshInterval {
		t.Fatalf("tight bound interval %d not below loose %d", tight.MaxRefreshInterval, loose.MaxRefreshInterval)
	}
}

// TestSelfRefreshCoversRetention: a trace that parks in self-refresh
// through its long gaps needs no ref commands for those spans and still
// audits clean — sre/srx reset the retention epoch.
func TestSelfRefreshCoversRetention(t *testing.T) {
	m := model(t)
	reqs, err := GenerateAccesses(m, genOpts(100, 0, 3000))
	if err != nil {
		t.Fatal(err)
	}
	cmds, stats := schedule(t, m, reqs, Options{Policy: PolicyClosed, PowerDownAfter: 16, SelfRefreshAfter: 400})
	if stats.SelfRefreshes == 0 {
		t.Fatal("no self-refresh on a gap-3000 stream")
	}
	res := replayAll(t, m, cmds, 1, m.D.Spec.Banks())
	if res.MissedRefreshDeadlines != 0 {
		t.Fatalf("self-refresh trace missed %d deadlines", res.MissedRefreshDeadlines)
	}
}
