package ctl

import (
	"bytes"
	"errors"
	"os"
	"testing"
)

// convertAccessTrace renders a text access trace in the .dab binary
// encoding, for seeding the binary half of the fuzz corpus from the
// shared testdata.
func convertAccessTrace(f *testing.F, text []byte) []byte {
	f.Helper()
	sc := NewScanner(bytes.NewReader(text))
	var reqs []Request
	for sc.Scan() {
		reqs = append(reqs, sc.Request())
	}
	if err := sc.Err(); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinaryAccessTrace(&buf, reqs); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzAccessScanner drives both access-trace parsers through the
// sniffing NewAccessSource with mutated inputs, seeded from the testdata
// sample (text and converted binary) plus handcrafted edge cases. The
// parsers must never panic, must only fail with positioned *ParseError,
// and every accepted request stream must survive its format's canonical
// round-trip.
func FuzzAccessScanner(f *testing.F) {
	if text, err := os.ReadFile("testdata/sample_access.txt"); err == nil {
		f.Add(text)
		f.Add(convertAccessTrace(f, text))
	}
	f.Add([]byte("0 r 0x2400\n12 w 0x2401\n"))
	f.Add([]byte("# only a comment\n\n  \t\n"))
	f.Add([]byte("9223372036854775807 WRITE 0xfffff # max slot\n"))
	f.Add([]byte("5 rd 0x # bad hex\n"))
	f.Add([]byte("0 r 1 trailing\n"))
	hdr := []byte{0xDA, 'D', 'A', 'B', 1}
	f.Add(append([]byte(nil), hdr...))                           // empty binary trace
	f.Add(append(append([]byte(nil), hdr...), 0x01, 0x02, 0x08)) // one write
	f.Add(append(append([]byte(nil), hdr...), 0x82, 0x00, 0x00)) // reserved flags
	f.Add(append(append([]byte(nil), hdr...), 0x00, 0x01, 0x00)) // negative slot
	f.Add([]byte{0xDA, 'D', 'A', 'B', 9})                        // bad version
	f.Add([]byte{0xDA, 'D'})                                     // truncated header

	f.Fuzz(func(t *testing.T, data []byte) {
		src := NewAccessSource(bytes.NewReader(data))
		var reqs []Request
		for src.Scan() {
			reqs = append(reqs, src.Request())
			if len(reqs) >= 4096 {
				break
			}
		}
		if err := src.Err(); err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("non-positioned scanner error %T: %v", err, err)
			}
			if pe.Line < 1 {
				t.Fatalf("scanner error with position %d: %v", pe.Line, pe)
			}
		}
		if len(reqs) == 0 {
			return
		}
		// Canonical round trips through both encodings.
		var text bytes.Buffer
		if err := WriteAccessTrace(&text, reqs); err != nil {
			t.Fatalf("accepted requests failed to render: %v", err)
		}
		rt := NewScanner(bytes.NewReader(text.Bytes()))
		for i := 0; rt.Scan(); i++ {
			if got := rt.Request(); got != reqs[i] {
				t.Fatalf("text round-trip request %d = %+v, want %+v", i, got, reqs[i])
			}
		}
		if err := rt.Err(); err != nil {
			t.Fatalf("canonical text failed to rescan: %v", err)
		}
		var bin bytes.Buffer
		if err := WriteBinaryAccessTrace(&bin, reqs); err != nil {
			t.Fatalf("accepted requests failed to encode: %v", err)
		}
		brt := NewBinaryScanner(bytes.NewReader(bin.Bytes()))
		for i := 0; brt.Scan(); i++ {
			if got := brt.Request(); got != reqs[i] {
				t.Fatalf("binary round-trip request %d = %+v, want %+v", i, got, reqs[i])
			}
		}
		if err := brt.Err(); err != nil {
			t.Fatalf("re-encoded trace failed to rescan: %v", err)
		}
	})
}
