// Package metrics is a small, dependency-free instrumentation layer:
// counters, gauges and histograms registered in a Registry that renders
// the Prometheus text exposition format (version 0.0.4). It exists so the
// server can expose operational state on GET /metrics without pulling an
// external client library into a reproduction repo.
//
// All instruments are safe for concurrent use and allocation-free on the
// update path (atomic integers; histogram observations touch one bucket
// counter and two accumulators). Instruments are identified by a family
// name plus an optional pre-rendered label set:
//
//	reg := metrics.NewRegistry()
//	hits := reg.Counter("dramserved_cache_hits_total", "", "Model cache hits.")
//	lat := reg.Histogram("dramserved_request_seconds", `path="/v1/evaluate"`,
//		"Request latency.", metrics.LatencyBuckets)
//	hits.Inc()
//	lat.Observe(0.0041)
//	reg.WritePrometheus(w)
//
// Registering the same name+labels twice returns the existing instrument,
// so call sites don't need to thread instrument handles around.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// LatencyBuckets is a set of histogram upper bounds (seconds) that covers
// sub-millisecond model-cache hits up to multi-second trace replays.
var LatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the exposition to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one; Dec subtracts one.
func (g *Gauge) Inc() { g.v.Add(1) }
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into cumulative buckets, Prometheus
// style: bucket i counts observations <= bounds[i], plus an implicit +Inf
// bucket, a running sum and a total count.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	sum    atomicFloat
	total  atomic.Int64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.add(v)
	h.total.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// atomicFloat accumulates a float64 with a CAS loop on its bit pattern.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// kind tags an instrument family for the exposition TYPE line.
type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// instrument is one registered name+labels series.
type instrument struct {
	name   string // family name
	labels string // pre-rendered `k="v",k2="v2"` or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups the series of one metric name.
type family struct {
	kind kind
	help string
	ins  []*instrument
}

// Registry holds instruments and renders them. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	byKey    map[string]*instrument
	names    []string // registration order of families
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		families: map[string]*family{},
		byKey:    map[string]*instrument{},
	}
}

// lookup finds or creates the series name{labels}. It panics if the name
// was previously registered with a different instrument kind — that is a
// programming error, not an operational condition.
func (r *Registry) lookup(name, labels, help string, k kind) *instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := name + "{" + labels + "}"
	f := r.families[name]
	if f != nil && f.kind != k {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.kind, k))
	}
	if in, ok := r.byKey[key]; ok {
		return in
	}
	if f == nil {
		f = &family{kind: k, help: help}
		r.families[name] = f
		r.names = append(r.names, name)
	}
	in := &instrument{name: name, labels: labels}
	f.ins = append(f.ins, in)
	r.byKey[key] = in
	return in
}

// Counter finds or creates a counter. labels is a pre-rendered label set
// like `path="/v1/evaluate",code="200"`, or "" for none.
func (r *Registry) Counter(name, labels, help string) *Counter {
	in := r.lookup(name, labels, help, counterKind)
	if in.c == nil {
		in.c = &Counter{}
	}
	return in.c
}

// Gauge finds or creates a gauge.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	in := r.lookup(name, labels, help, gaugeKind)
	if in.g == nil {
		in.g = &Gauge{}
	}
	return in.g
}

// Histogram finds or creates a histogram with the given upper bounds
// (ascending; +Inf is implicit). Re-registrations ignore the bounds and
// return the existing histogram.
func (r *Registry) Histogram(name, labels, help string, bounds []float64) *Histogram {
	in := r.lookup(name, labels, help, histogramKind)
	if in.h == nil {
		h := &Histogram{bounds: append([]float64(nil), bounds...)}
		h.counts = make([]atomic.Int64, len(h.bounds)+1)
		in.h = h
	}
	return in.h
}

// Labels renders pairs (key, value, key, value, ...) into the label
// string format Counter/Gauge/Histogram accept, escaping values. It
// panics on an odd pair count.
func Labels(kv ...string) string {
	if len(kv)%2 != 0 {
		panic("metrics: Labels requires key/value pairs")
	}
	out := ""
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			out += ","
		}
		out += kv[i] + "=" + strconv.Quote(kv[i+1])
	}
	return out
}

// WritePrometheus renders every registered instrument in the text
// exposition format, families in registration order, series within a
// family sorted by label set (deterministic output for tests and diffing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	type familySnapshot struct {
		name string
		kind kind
		help string
		ins  []*instrument
	}
	snap := make([]familySnapshot, 0, len(r.names))
	for _, name := range r.names {
		f := r.families[name]
		ins := append([]*instrument(nil), f.ins...)
		sort.Slice(ins, func(i, j int) bool { return ins[i].labels < ins[j].labels })
		snap = append(snap, familySnapshot{name, f.kind, f.help, ins})
	}
	r.mu.Unlock()

	for _, f := range snap {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, in := range f.ins {
			if err := writeSeries(w, in, f.kind); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, in *instrument, k kind) error {
	switch k {
	case counterKind:
		_, err := fmt.Fprintf(w, "%s %d\n", series(in.name, in.labels), in.c.Value())
		return err
	case gaugeKind:
		_, err := fmt.Fprintf(w, "%s %d\n", series(in.name, in.labels), in.g.Value())
		return err
	default:
		h := in.h
		cum := int64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			le := strconv.FormatFloat(bound, 'g', -1, 64)
			if _, err := fmt.Fprintf(w, "%s %d\n",
				series(in.name+"_bucket", joinLabels(in.labels, `le="`+le+`"`)), cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s %d\n",
			series(in.name+"_bucket", joinLabels(in.labels, `le="+Inf"`)), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", series(in.name+"_sum", in.labels),
			strconv.FormatFloat(h.Sum(), 'g', -1, 64)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", series(in.name+"_count", in.labels), h.Count())
		return err
	}
}

// series renders `name{labels}` (or bare name without labels).
func series(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// joinLabels appends extra to a (possibly empty) label set.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}
