package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "", "Total requests.")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("inflight", "", "In-flight requests.")
	g.Inc()
	g.Inc()
	g.Dec()
	g.Add(10)
	if got := g.Value(); got != 11 {
		t.Fatalf("gauge = %d, want 11", got)
	}
	g.Set(3)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge after Set = %d, want 3", got)
	}
}

func TestLookupReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits_total", `path="/a"`, "")
	b := r.Counter("hits_total", `path="/a"`, "")
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	other := r.Counter("hits_total", `path="/b"`, "")
	if a == other {
		t.Fatal("different labels returned the same counter")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x as gauge after counter did not panic")
		}
	}()
	r.Gauge("x", "", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+2+100; got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		`latency_seconds_bucket{le="0.1"} 2`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="10"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		`latency_seconds_count 5`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", Labels("path", "/v1/evaluate", "code", "200"), "Requests served.").Add(7)
	r.Gauge("ready", "", "Readiness.").Set(1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		"# HELP requests_total Requests served.",
		"# TYPE requests_total counter",
		`requests_total{path="/v1/evaluate",code="200"} 7`,
		"# TYPE ready gauge",
		"ready 1",
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

func TestLabelsEscaping(t *testing.T) {
	got := Labels("msg", `a "quoted" path`+"\n")
	want := `msg="a \"quoted\" path\n"`
	if got != want {
		t.Fatalf("Labels = %s, want %s", got, want)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "", "")
	g := r.Gauge("g", "", "")
	h := r.Histogram("h", "", "", LatencyBuckets)
	var wg sync.WaitGroup
	const workers, perWorker = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.001)
				// Concurrent re-registration must return the same series.
				r.Counter("c", "", "").Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 2*workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, 2*workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Fatalf("gauge = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}
