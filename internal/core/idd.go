package core

import (
	"math"

	"drampower/internal/desc"
	"drampower/internal/units"
)

// IDD collects the datasheet-style supply currents the model reproduces
// for the verification of Section IV.A (Figures 8–9).
type IDD struct {
	// IDD0: one activate-precharge cycle per tRC, no data transfer.
	IDD0 units.Current
	// IDD2N: precharge standby, clock running. The model does not
	// distinguish bank-state-dependent standby leakage, so IDD2N and
	// IDD3N both report the background current.
	IDD2N units.Current
	// IDD3N: active standby.
	IDD3N units.Current
	// IDD4R: gapless read bursts.
	IDD4R units.Current
	// IDD4W: gapless write bursts.
	IDD4W units.Current
	// IDD5: auto-refresh at the minimum refresh cycle time.
	IDD5 units.Current
	// IDD7: interleaved activate-read-precharge across banks at the
	// four-activate-window limit.
	IDD7 units.Current
}

// slotsFor converts a duration into control-clock slots (at least min).
func (m *Model) slotsFor(d units.Duration, min int) int {
	f := m.D.Spec.ControlClock
	n := int(math.Round(float64(d) * float64(f)))
	if n < min {
		n = min
	}
	return n
}

// PatternIDD0 returns the IDD0 measurement loop: one activate and one
// precharge per row cycle time.
func (m *Model) PatternIDD0() desc.Pattern {
	n := m.slotsFor(m.D.Spec.RowCycle, 2)
	loop := make([]desc.Op, n)
	for i := range loop {
		loop[i] = desc.OpNop
	}
	loop[0] = desc.OpActivate
	loop[n/2] = desc.OpPrecharge
	return desc.Pattern{Loop: loop}
}

// PatternIDD4 returns the gapless-burst loop for reads (write=false) or
// writes (write=true): one column command per burst duration.
func (m *Model) PatternIDD4(write bool) desc.Pattern {
	n := m.BurstSlots()
	loop := make([]desc.Op, n)
	for i := range loop {
		loop[i] = desc.OpNop
	}
	if write {
		loop[0] = desc.OpWrite
	} else {
		loop[0] = desc.OpRead
	}
	return desc.Pattern{Loop: loop}
}

// PatternIDD5 returns the refresh loop: one all-bank refresh per refresh
// cycle time (tRFC).
func (m *Model) PatternIDD5() desc.Pattern {
	n := m.slotsFor(m.D.Spec.RefreshCycle, 2)
	loop := make([]desc.Op, n)
	for i := range loop {
		loop[i] = desc.OpNop
	}
	loop[0] = desc.OpRefresh
	return desc.Pattern{Loop: loop}
}

// idd7Group returns the activate spacing of the interleaved pattern in
// control-clock slots: the largest of the burst occupancy, tRRD, tFAW/4
// and the same-bank row cycle spread across the banks.
func (m *Model) idd7Group() int {
	spec := m.D.Spec
	group := 1 + m.BurstSlots() + 1
	if n := m.slotsFor(spec.RowToRowDelay, 1); n > group {
		group = n
	}
	if spec.FourBankWindow > 0 {
		if n := m.slotsFor(units.Duration(float64(spec.FourBankWindow)/4), 1); n > group {
			group = n
		}
	}
	banks := spec.Banks()
	if banks > 0 {
		if n := (m.slotsFor(spec.RowCycle, 1) + banks - 1) / banks; n > group {
			group = n
		}
	}
	if group < 3 {
		group = 3
	}
	return group
}

// BurstsPerActivation returns the number of column bursts the interleaved
// IDD7-style pattern issues per row activation: as many as fit between
// consecutive activates. Activation rates are pinned by row timings
// (tRRD, tFAW, tRC) that barely changed across generations, while the per
// pin bandwidth doubled with every interface — so the bursts per
// activation grow from 1 (SDR) to several (DDR4/DDR5), which is exactly
// the shift of power "from the activate and precharge operation to the
// read and write operation" that Section IV.B describes.
func (m *Model) BurstsPerActivation() int {
	// Round to the nearest burst count: the pattern generator may overlap
	// the last burst with the precharge slot (auto-precharge), so a group
	// that fits one and a half bursts runs two.
	slots := m.BurstSlots()
	n := (m.idd7Group() - 2 + slots/2) / slots
	if n < 1 {
		n = 1
	}
	return n
}

// PatternIDD7 returns the bank-interleaved loop: activates as fast as the
// row timings allow, the data bus filled with column bursts to the open
// row (see BurstsPerActivation), a precharge closing each group.
// writeShare selects the fraction of column commands that are writes; the
// paper's Figure 10 pattern uses 0.5 ("Idd7 but half of the read
// operations replaced by write operations"), the plain IDD7 uses 0.
func (m *Model) PatternIDD7(writeShare float64) desc.Pattern {
	spec := m.D.Spec
	bursts := m.BurstsPerActivation()
	group := m.idd7Group()
	banks := spec.Banks()
	if banks < 1 {
		banks = 1
	}
	loop := make([]desc.Op, 0, banks*group)
	writesOwed := 0.0
	for b := 0; b < banks; b++ {
		g := make([]desc.Op, group)
		for i := range g {
			g[i] = desc.OpNop
		}
		g[0] = desc.OpActivate
		writesOwed += writeShare
		col := desc.OpRead
		if writesOwed >= 0.5 {
			col = desc.OpWrite
			writesOwed--
		}
		for c := 0; c < bursts; c++ {
			g[1+c*m.BurstSlots()] = col
		}
		g[group-1] = desc.OpPrecharge
		loop = append(loop, g...)
	}
	return desc.Pattern{Loop: loop}
}

// IDD reports all datasheet currents from the resolved parameter set:
// the loop currents were evaluated from their measurement patterns at
// derive time (and possibly overridden by a calibration overlay), the
// standby currents are the resolved background power referred through
// Vdd.
func (m *Model) IDD() IDD {
	var idd IDD
	if v := m.D.Electrical.Vdd; v > 0 {
		idd.IDD2N = units.Current(float64(m.params.StandbyPower) / float64(v))
	}
	idd.IDD3N = idd.IDD2N
	idd.IDD0 = m.params.IDD0
	idd.IDD4R = m.params.IDD4R
	idd.IDD4W = m.params.IDD4W
	idd.IDD5 = m.params.IDD5
	idd.IDD7 = m.params.IDD7
	return idd
}

// EnergyPerBitIDD4 returns the energy per transferred bit in a gapless
// read/write mix (the paper's Idd4-style energy metric: the row is open,
// only column and data-path energy counts).
func (m *Model) EnergyPerBitIDD4() units.Energy {
	rd := m.EvaluatePattern(m.PatternIDD4(false))
	wr := m.EvaluatePattern(m.PatternIDD4(true))
	return units.Energy(0.5 * (float64(rd.EnergyPerBit) + float64(wr.EnergyPerBit)))
}

// EnergyPerBitIDD7 returns the energy per transferred bit in the
// interleaved activate/read/write pattern of Figure 10/13 (half reads,
// half writes), the metric the paper reports in mW/Gbps = pJ/bit.
func (m *Model) EnergyPerBitIDD7() units.Energy {
	res := m.EvaluatePattern(m.PatternIDD7(0.5))
	return res.EnergyPerBit
}

// PowerDownFactors describe how much of the background survives in the
// precharge power-down state (CKE low): the external clock still toggles
// the input stage, internal clocking is gated, and the DLL keeps a
// fraction of its bias for fast exit. These are the levers the
// controller-side power management of Hur & Lin (HPCA 2008, cited in
// Section V) exploits.
const (
	pdLogicFactor    = 0.10 // clock-gated always-on logic residue
	pdConstantFactor = 0.30 // DLL / receiver bias retained for fast exit
	pdWireFactor     = 0.15 // input clock stage only
)

// PowerDownPower returns the resolved power of the precharge power-down
// state (derived by derivePowerDownPower, possibly calibrated).
func (m *Model) PowerDownPower() units.Power { return m.params.PowerDownPower }

// IDD2P returns the precharge power-down current.
func (m *Model) IDD2P() units.Current {
	if v := m.D.Electrical.Vdd; v > 0 {
		return units.Current(float64(m.PowerDownPower()) / float64(v))
	}
	return 0
}

// PowerDownSavings quantifies the controller-side opportunity: the share
// of standby power a power-down entry removes (Section V's system-level
// power management schemes schedule exactly this).
func (m *Model) PowerDownSavings() float64 {
	bg := float64(m.params.StandbyPower)
	if bg <= 0 {
		return 0
	}
	return 1 - float64(m.params.PowerDownPower)/bg
}

// SelfRefreshFactors describe the residue of the background power in the
// self-refresh state (CKE low, external clock stopped, DLL off): only a
// minimal bias survives, the input clock stage is quiesced, and the
// always-on logic is reduced to the internal refresh oscillator. On top
// of that residue the device pays for the refreshes it now performs
// itself — one all-bank refresh per refresh interval, the same energy
// the controller would otherwise issue as explicit ref commands.
const (
	srLogicFactor    = 0.02 // internal oscillator + refresh counter only
	srConstantFactor = 0.15 // DLL off, minimal receiver bias retained
	srWireFactor     = 0.02 // external clock stopped; leakage-level residue
)

// SelfRefreshPower returns the resolved power of the self-refresh state:
// the scaled-down background residue plus the internally generated
// refresh stream (see deriveSelfRefreshPower), possibly calibrated. This
// is the IDD6 analogue of PowerDownPower/IDD2P and sits below both — the
// datasheet ordering IDD6 < IDD2P < IDD2N is pinned by tests.
func (m *Model) SelfRefreshPower() units.Power { return m.params.SelfRefreshPower }

// IDD6 returns the self-refresh current, the datasheet ballpark the
// trace simulator's self-refresh residency accounting draws.
func (m *Model) IDD6() units.Current {
	if v := m.D.Electrical.Vdd; v > 0 {
		return units.Current(float64(m.SelfRefreshPower()) / float64(v))
	}
	return 0
}
