package core

import (
	"fmt"
	"strings"

	"drampower/internal/desc"
	"drampower/internal/units"
)

// ParamSet is the resolved parameter set of a model: every scalar the
// evaluation layers (pattern evaluation, trace simulation, IDD reporting)
// consume, detached from the charge-item derivation that produced it. It
// is the hand-off point of the derive → overlay → seal pipeline:
//
//   - derive: Build runs the circuit math of Section III and fills a
//     ParamSet from the charge ledgers (charge × voltage × frequency),
//   - overlay: an optional calibration overlay (desc.Overlay) overrides
//     or scales individual resolved parameters — closing the gap between
//     analytically derived and measured values without touching the
//     capacitance model,
//   - seal: the model keeps the final ParamSet immutable; the trace
//     simulator and pattern evaluator read it, never re-derive.
//
// An overlay never feeds back into the derivation: overriding IDD0 does
// not change the activate energy — each key pins exactly one resolved
// parameter, and everything not overridden keeps its derived value.
type ParamSet struct {
	// OpEnergy is the Vdd-referred energy one occurrence of each
	// operation draws, indexed by desc.Op.
	OpEnergy [desc.NumOps]units.Energy
	// StandbyPower is the continuous background power (precharge standby,
	// clock running — the IDD2N/IDD3N state).
	StandbyPower units.Power
	// PowerDownPower is the precharge power-down power (the IDD2P state).
	PowerDownPower units.Power
	// SelfRefreshPower is the self-refresh power (the IDD6 state),
	// including the internally generated refresh stream.
	SelfRefreshPower units.Power
	// IDD0, IDD4R, IDD4W, IDD5, IDD7 are the datasheet loop currents
	// evaluated from their measurement patterns at derive time.
	IDD0  units.Current
	IDD4R units.Current
	IDD4W units.Current
	IDD5  units.Current
	IDD7  units.Current
}

// Params returns the resolved (possibly calibrated) parameter set the
// model evaluates with. The returned copy is the caller's to keep.
func (m *Model) Params() ParamSet { return m.params }

// DerivedParams returns the parameter set as derived from the circuit
// model, before any calibration overlay was applied. Comparing it against
// Params shows exactly what a calibration changed.
func (m *Model) DerivedParams() ParamSet { return m.derived }

// Calibrated reports whether a non-empty calibration overlay was applied
// to this model.
func (m *Model) Calibrated() bool { return m.calibrated }

// CalibrationName returns the name of the applied overlay ("" when
// uncalibrated or the overlay was unnamed).
func (m *Model) CalibrationName() string { return m.calibration }

// BackgroundPower returns the resolved continuous background power. This
// is the value residency accounting must use: unlike Background().Power
// (the derived itemized ledger, kept for breakdown reporting) it reflects
// calibration overrides of the standby parameter.
func (m *Model) BackgroundPower() units.Power { return m.params.StandbyPower }

// derive fills the resolved parameter set from the charge ledgers and
// measurement-pattern evaluations (the first pipeline stage). It runs
// once per Build, after buildLedger; the IDD loop currents are evaluated
// with the derived set already installed, so their pattern evaluations
// see scale ratios of exactly 1 and reproduce the uncalibrated numbers
// bit for bit.
func (m *Model) derive() {
	m.params.OpEnergy = m.opEnergy
	m.params.StandbyPower = m.background.Power
	m.params.PowerDownPower = m.derivePowerDownPower()
	m.params.SelfRefreshPower = m.deriveSelfRefreshPower()
	m.derived = m.params

	m.params.IDD0 = m.EvaluatePattern(m.PatternIDD0()).Current
	m.params.IDD4R = m.EvaluatePattern(m.PatternIDD4(false)).Current
	m.params.IDD4W = m.EvaluatePattern(m.PatternIDD4(true)).Current
	m.params.IDD5 = m.EvaluatePattern(m.PatternIDD5()).Current
	m.params.IDD7 = m.EvaluatePattern(m.PatternIDD7(0)).Current
	m.derived = m.params
}

// applyOverlay applies a calibration overlay to the resolved parameter
// set (the second pipeline stage). Entries apply in order; later entries
// see the result of earlier ones. Each key pins one resolved parameter:
//
//	idd0, idd4r, idd4w, idd5, idd7       -> the loop currents
//	idd2n, idd3n, standby                -> StandbyPower (set: I × Vdd)
//	idd2p, powerdown                     -> PowerDownPower
//	idd6, selfrefresh                    -> SelfRefreshPower
//	op.<op>.energy                       -> OpEnergy[op]
//
// The current-valued aliases (idd2n/idd2p/idd6) convert overrides through
// Vdd; scalings are unit-free and apply to either view identically.
func (m *Model) applyOverlay(ov *desc.Overlay) error {
	if ov.Empty() {
		return nil
	}
	vdd := float64(m.D.Electrical.Vdd)
	for _, e := range ov.Entries {
		if err := m.applyOverlayEntry(e, vdd); err != nil {
			return err
		}
	}
	m.calibrated = true
	m.calibration = ov.Name
	return nil
}

func (m *Model) applyOverlayEntry(e desc.OverlayEntry, vdd float64) error {
	setCurrent := func(dst *units.Current) {
		if e.Scale {
			*dst = units.Current(float64(*dst) * e.Value)
		} else {
			*dst = units.Current(e.Value)
		}
	}
	// setPowerFromCurrent handles the current-valued aliases of the
	// background powers: an override is a current, so the stored power is
	// I × Vdd; a scaling is dimensionless and applies directly.
	setPowerFromCurrent := func(dst *units.Power) {
		if e.Scale {
			*dst = units.Power(float64(*dst) * e.Value)
		} else {
			*dst = units.Power(e.Value * vdd)
		}
	}
	setPower := func(dst *units.Power) {
		if e.Scale {
			*dst = units.Power(float64(*dst) * e.Value)
		} else {
			*dst = units.Power(e.Value)
		}
	}
	switch e.Key {
	case "idd0":
		setCurrent(&m.params.IDD0)
	case "idd4r":
		setCurrent(&m.params.IDD4R)
	case "idd4w":
		setCurrent(&m.params.IDD4W)
	case "idd5":
		setCurrent(&m.params.IDD5)
	case "idd7":
		setCurrent(&m.params.IDD7)
	case "idd2n", "idd3n":
		setPowerFromCurrent(&m.params.StandbyPower)
	case "idd2p":
		setPowerFromCurrent(&m.params.PowerDownPower)
	case "idd6":
		setPowerFromCurrent(&m.params.SelfRefreshPower)
	case "standby":
		setPower(&m.params.StandbyPower)
	case "powerdown":
		setPower(&m.params.PowerDownPower)
	case "selfrefresh":
		setPower(&m.params.SelfRefreshPower)
	default:
		// op.<op>.energy — the overlay parser only emits keys from
		// desc.OverlayKeys, so anything else here is a programming error.
		parts := strings.Split(e.Key, ".")
		if len(parts) != 3 || parts[0] != "op" || parts[2] != "energy" {
			return fmt.Errorf("core: unknown calibration key %q", e.Key)
		}
		op, err := desc.ParseOp(parts[1])
		if err != nil {
			return fmt.Errorf("core: calibration key %q: %v", e.Key, err)
		}
		if e.Scale {
			m.params.OpEnergy[op] = units.Energy(float64(m.params.OpEnergy[op]) * e.Value)
		} else {
			m.params.OpEnergy[op] = units.Energy(e.Value)
		}
	}
	return nil
}

// derivePowerDownPower derives the precharge power-down power from the
// background ledger (see PowerDownFactors).
func (m *Model) derivePowerDownPower() units.Power {
	bg := m.Background()
	var p float64
	for _, it := range bg.Items {
		switch {
		case it.Name == "constant current":
			p += float64(it.Power) * pdConstantFactor
		case len(it.Name) > 5 && it.Name[:5] == "logic":
			p += float64(it.Power) * pdLogicFactor
		default: // clock / control wires
			p += float64(it.Power) * pdWireFactor
		}
	}
	return units.Power(p)
}

// deriveSelfRefreshPower derives the self-refresh power: the scaled-down
// background residue plus the internally generated refresh stream
// (OpEnergy(ref) amortized over the refresh interval). See
// SelfRefreshFactors.
func (m *Model) deriveSelfRefreshPower() units.Power {
	bg := m.Background()
	var p float64
	for _, it := range bg.Items {
		switch {
		case it.Name == "constant current":
			p += float64(it.Power) * srConstantFactor
		case len(it.Name) > 5 && it.Name[:5] == "logic":
			p += float64(it.Power) * srLogicFactor
		default: // clock / control wires
			p += float64(it.Power) * srWireFactor
		}
	}
	if ival := m.D.Spec.RefreshInterval; ival > 0 {
		p += float64(m.opEnergy[desc.OpRefresh]) / float64(ival)
	}
	return units.Power(p)
}
