package core

import (
	"testing"

	"drampower/internal/desc"
	"drampower/internal/units"
)

func mustBuildCalibrated(t *testing.T, src string) *Model {
	t.Helper()
	ov, err := desc.ParseOverlayString(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildCalibrated(desc.Sample1GbDDR3(), ov)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestEmptyOverlayIsNoOp pins the seal-stage contract: a nil or empty
// overlay produces a model whose every observable is bit-identical to
// Build's.
func TestEmptyOverlayIsNoOp(t *testing.T) {
	base, err := Build(desc.Sample1GbDDR3())
	if err != nil {
		t.Fatal(err)
	}
	for name, ov := range map[string]*desc.Overlay{
		"nil":   nil,
		"empty": {},
		"named": {Name: "just a name"},
	} {
		m, err := BuildCalibrated(desc.Sample1GbDDR3(), ov)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Calibrated() {
			t.Errorf("%s: model reports calibrated", name)
		}
		if m.Params() != base.Params() {
			t.Errorf("%s: params differ:\n%+v\n%+v", name, m.Params(), base.Params())
		}
		if m.Params() != m.DerivedParams() {
			t.Errorf("%s: params differ from derived", name)
		}
		br, cr := base.EvaluatePattern(base.PatternIDD7(0.5)), m.EvaluatePattern(m.PatternIDD7(0.5))
		if br.Power != cr.Power || br.Background != cr.Background || br.Command != cr.Command {
			t.Errorf("%s: pattern result differs: %+v vs %+v", name, br, cr)
		}
		for g, p := range br.ByGroup {
			if cr.ByGroup[g] != p {
				t.Errorf("%s: group %v: %v != %v", name, g, cr.ByGroup[g], p)
			}
		}
		if base.IDD() != m.IDD() {
			t.Errorf("%s: IDD differs", name)
		}
	}
}

// TestDerivedMatchesLegacyAccounting checks the derive stage reproduces
// the quantities it replaced: the params powers equal the background
// ledger total and the IDD currents equal fresh pattern evaluations.
func TestDerivedMatchesLegacyAccounting(t *testing.T) {
	m, err := Build(desc.Sample1GbDDR3())
	if err != nil {
		t.Fatal(err)
	}
	p := m.Params()
	if p.StandbyPower != m.Background().Power {
		t.Errorf("StandbyPower %v != background %v", p.StandbyPower, m.Background().Power)
	}
	if p.StandbyPower != m.BackgroundPower() {
		t.Errorf("BackgroundPower accessor mismatch")
	}
	if got := m.EvaluatePattern(m.PatternIDD0()).Current; p.IDD0 != got {
		t.Errorf("IDD0 %v != fresh evaluation %v", p.IDD0, got)
	}
	if got := m.EvaluatePattern(m.PatternIDD5()).Current; p.IDD5 != got {
		t.Errorf("IDD5 %v != fresh evaluation %v", p.IDD5, got)
	}
	for _, op := range desc.AllOps {
		if p.OpEnergy[op] != m.Charges(op).EnergyFromVdd(m.D.Electrical) {
			t.Errorf("OpEnergy[%v] differs from ledger", op)
		}
	}
}

// TestOverlaySetAndScale checks override and scaling semantics on each
// parameter family.
func TestOverlaySetAndScale(t *testing.T) {
	base, err := Build(desc.Sample1GbDDR3())
	if err != nil {
		t.Fatal(err)
	}
	bp := base.Params()

	m := mustBuildCalibrated(t, "Calibration measured\nidd0 = 58mA\nop.rd.energy *= 1.07\nstandby *= 0.9\n")
	if !m.Calibrated() {
		t.Fatal("model not calibrated")
	}
	if m.CalibrationName() != "measured" {
		t.Errorf("calibration name = %q", m.CalibrationName())
	}
	p := m.Params()
	if float64(p.IDD0) != 58e-3 {
		t.Errorf("IDD0 = %v, want 58mA", p.IDD0)
	}
	if want := units.Energy(float64(bp.OpEnergy[desc.OpRead]) * 1.07); p.OpEnergy[desc.OpRead] != want {
		t.Errorf("read energy = %v, want %v", p.OpEnergy[desc.OpRead], want)
	}
	if want := units.Power(float64(bp.StandbyPower) * 0.9); p.StandbyPower != want {
		t.Errorf("standby = %v, want %v", p.StandbyPower, want)
	}
	// The derived set is untouched.
	if m.DerivedParams() != bp {
		t.Error("calibration changed the derived parameter set")
	}
	// No back-propagation: pinning IDD0 does not move the activate energy.
	if p.OpEnergy[desc.OpActivate] != bp.OpEnergy[desc.OpActivate] {
		t.Error("IDD0 override back-propagated into activate energy")
	}
	if m.IDD().IDD0 != p.IDD0 {
		t.Error("IDD() does not report the calibrated IDD0")
	}
}

// TestOverlayCurrentAliases checks the current-valued views of the
// background powers: overrides convert through Vdd, scalings apply
// directly.
func TestOverlayCurrentAliases(t *testing.T) {
	base, err := Build(desc.Sample1GbDDR3())
	if err != nil {
		t.Fatal(err)
	}
	vdd := float64(base.D.Electrical.Vdd)

	m := mustBuildCalibrated(t, "idd2n = 40mA\nidd2p *= 1.5\nidd6 = 4.2mA\n")
	p := m.Params()
	if want := units.Power(40e-3 * vdd); p.StandbyPower != want {
		t.Errorf("idd2n=40mA: standby = %v, want %v", p.StandbyPower, want)
	}
	if want := units.Power(float64(base.Params().PowerDownPower) * 1.5); p.PowerDownPower != want {
		t.Errorf("idd2p*=1.5: powerdown = %v, want %v", p.PowerDownPower, want)
	}
	milli := 1e-3
	if want := units.Power(4.2 * milli * vdd); p.SelfRefreshPower != want {
		t.Errorf("idd6=4.2mA: selfrefresh = %v, want %v", p.SelfRefreshPower, want)
	}
	// The reported currents round-trip: IDD2N = StandbyPower / Vdd.
	if got := float64(m.IDD().IDD2N); got != 40e-3*vdd/vdd {
		t.Errorf("IDD2N = %v, want 40mA", got)
	}
	if got := float64(m.IDD2P()); got != float64(p.PowerDownPower)/vdd {
		t.Errorf("IDD2P = %v inconsistent with powerdown %v", got, p.PowerDownPower)
	}
}

// TestOverlaySequentialApplication checks entries apply in order, later
// entries seeing earlier results.
func TestOverlaySequentialApplication(t *testing.T) {
	m := mustBuildCalibrated(t, "idd0 = 50mA\nidd0 *= 2\n")
	if got := float64(m.Params().IDD0); got != 50e-3*2 {
		t.Errorf("IDD0 = %v, want 100mA", got)
	}
	m = mustBuildCalibrated(t, "op.act.energy = 2nJ\nop.act.energy *= 0.5\nop.act.energy *= 0.5\n")
	nano := 1e-9
	if got := float64(m.Params().OpEnergy[desc.OpActivate]); got != 2*nano*0.5*0.5 {
		t.Errorf("act energy = %v, want 0.5nJ", got)
	}
}

// TestCalibratedPatternEvaluation checks the seal stage: pattern totals
// follow the calibrated parameters and the breakdowns track them.
func TestCalibratedPatternEvaluation(t *testing.T) {
	base, err := Build(desc.Sample1GbDDR3())
	if err != nil {
		t.Fatal(err)
	}
	m := mustBuildCalibrated(t, "standby *= 0.8\nop.rd.energy *= 1.25\n")

	br := base.EvaluatePattern(base.PatternIDD4(false))
	cr := m.EvaluatePattern(m.PatternIDD4(false))
	if float64(cr.Background) != float64(br.Background)*0.8 {
		t.Errorf("background %v, want %v×0.8", cr.Background, br.Background)
	}
	if got, want := float64(cr.ByOp[desc.OpRead]), float64(br.ByOp[desc.OpRead])*1.25; got != want {
		t.Errorf("read op power %v, want %v", got, want)
	}
	if cr.Power <= br.Power*0.7 || cr.Power >= br.Power*1.3 {
		t.Errorf("calibrated power %v implausible vs base %v", cr.Power, br.Power)
	}
	// Breakdown closure: groups still sum to the total (within float
	// accumulation noise).
	var sum float64
	for _, p := range cr.ByGroup {
		sum += float64(p)
	}
	if tot := float64(cr.Power); sum < tot*0.999999 || sum > tot*1.000001 {
		t.Errorf("group breakdown sums to %v, total is %v", sum, tot)
	}
}
