package core

import (
	"drampower/internal/circuits"
	"drampower/internal/desc"
	"drampower/internal/units"
)

// OpCharges collects the charge items of one operation (one command).
type OpCharges struct {
	Op    desc.Op
	Items []circuits.ChargeItem
}

// EnergyFromVdd returns the energy one occurrence of the operation draws
// from the external supply. The accounting is charge-referred, following
// Section III.B.6 ("multiplying the current with the external supply
// voltage and in case of derived voltages the generator or pump efficiency
// factor"): a regulator passes the domain charge through at the external
// voltage (Q_in = Q_out / η with η ≈ 1), a charge pump multiplies it
// (η ≈ 0.5 for a doubler). Hence E = Q_domain · Vdd / η — linear in every
// individual voltage, quadratic only when all voltages scale together,
// which is why a ±20 % Vdd sweep moves power by exactly 40 % (Section
// IV.B).
func (oc *OpCharges) EnergyFromVdd(el desc.Electrical) units.Energy {
	var e float64
	for _, it := range oc.Items {
		v, eff := el.DomainVoltageAndSafeEff(it.Domain)
		e += float64(it.Charge(v)) * float64(el.Vdd) / eff
	}
	return units.Energy(e)
}

// ChargeFromVdd returns the equivalent charge drawn from the external
// supply per occurrence: E / Vdd.
func (oc *OpCharges) ChargeFromVdd(el desc.Electrical) units.Charge {
	if el.Vdd <= 0 {
		return 0
	}
	return units.Charge(float64(oc.EnergyFromVdd(el)) / float64(el.Vdd))
}

// EnergyByGroup splits the Vdd-referred energy per occurrence by reporting
// group.
func (oc *OpCharges) EnergyByGroup(el desc.Electrical) map[circuits.Group]units.Energy {
	out := map[circuits.Group]units.Energy{}
	for _, it := range oc.Items {
		v, eff := el.DomainVoltageAndSafeEff(it.Domain)
		out[it.Group] += units.Energy(float64(it.Charge(v)) * float64(el.Vdd) / eff)
	}
	return out
}

// EnergyByDomain splits the Vdd-referred energy per occurrence by voltage
// domain.
func (oc *OpCharges) EnergyByDomain(el desc.Electrical) map[desc.Domain]units.Energy {
	out := map[desc.Domain]units.Energy{}
	for _, it := range oc.Items {
		v, eff := el.DomainVoltageAndSafeEff(it.Domain)
		out[it.Domain] += units.Energy(float64(it.Charge(v)) * float64(el.Vdd) / eff)
	}
	return out
}

// Charges returns the charge items of one occurrence of op from the
// model's cached ledger. The items cover the array and row/column
// circuitry (package circuits), the signaling floorplan segments that
// fire for the operation, and the miscellaneous logic blocks active
// during it. Background contributions (clock, control bus, always-on
// logic, constant current) are *not* included — see Background.
//
// The ledger is computed once by Build and shared: the returned OpCharges
// is immutable and must not be modified. Callers that mutate the
// description after Build must use RecomputeCharges instead (or rebuild).
func (m *Model) Charges(op desc.Op) *OpCharges {
	if int(op) >= 0 && int(op) < len(m.ledger) {
		if oc := m.ledger[op]; oc != nil {
			return oc
		}
	}
	return m.computeCharges(op)
}

// RecomputeCharges rebuilds the charge items of op from the current
// description state, bypassing the ledger cached at Build time. It is the
// escape hatch for callers that mutated the description in place; the
// cached ledger is left untouched.
func (m *Model) RecomputeCharges(op desc.Op) *OpCharges {
	return m.computeCharges(op)
}

// computeCharges derives the charge-event list of one occurrence of op
// from scratch (steps 2–3 of the Figure 4 program flow).
func (m *Model) computeCharges(op desc.Op) *OpCharges {
	oc := &OpCharges{Op: op}
	d := m.D
	bits := m.BitsPerBurst()
	switch op {
	case desc.OpActivate:
		oc.Items = append(oc.Items, circuits.ActivateItems(m.P, d, m.Array)...)
		oc.Items = append(oc.Items, m.segmentItems(desc.SigAddrRow, 1)...)
		oc.Items = append(oc.Items, m.segmentItems(desc.SigAddrBank, 1)...)
	case desc.OpPrecharge:
		oc.Items = append(oc.Items, circuits.PrechargeItems(m.P, d, m.Array)...)
		oc.Items = append(oc.Items, m.segmentItems(desc.SigAddrBank, 1)...)
	case desc.OpRead:
		oc.Items = append(oc.Items, circuits.ColumnItems(m.P, d, m.Array, bits, false)...)
		oc.Items = append(oc.Items, m.segmentItems(desc.SigAddrCol, 1)...)
		oc.Items = append(oc.Items, m.segmentItems(desc.SigAddrBank, 1)...)
		oc.Items = append(oc.Items, m.dataPathItems(desc.SigDataRead, bits)...)
	case desc.OpWrite:
		oc.Items = append(oc.Items, circuits.ColumnItems(m.P, d, m.Array, bits, true)...)
		oc.Items = append(oc.Items, m.segmentItems(desc.SigAddrCol, 1)...)
		oc.Items = append(oc.Items, m.segmentItems(desc.SigAddrBank, 1)...)
		oc.Items = append(oc.Items, m.dataPathItems(desc.SigDataWrite, bits)...)
	case desc.OpRefresh:
		// A refresh command activates and precharges one row in every
		// bank (all-bank auto-refresh).
		banks := float64(d.Spec.Banks())
		for _, it := range circuits.ActivateItems(m.P, d, m.Array) {
			it.Events *= banks
			oc.Items = append(oc.Items, it)
		}
		for _, it := range circuits.PrechargeItems(m.P, d, m.Array) {
			it.Events *= banks
			oc.Items = append(oc.Items, it)
		}
		oc.Items = append(oc.Items, m.segmentItems(desc.SigAddrRow, banks)...)
	case desc.OpNop:
		// Only background power; no command charge.
	}
	oc.Items = append(oc.Items, m.logicItems(op)...)
	return oc
}

// segmentItems returns charge items for all segments of the given kind:
// events = toggle × wires × scale (one bus transition per command).
func (m *Model) segmentItems(kind desc.SignalKind, scale float64) []circuits.ChargeItem {
	var items []circuits.ChargeItem
	for _, rs := range m.Segments {
		if rs.Seg.Kind != kind {
			continue
		}
		items = append(items, circuits.ChargeItem{
			Name:   "wire " + rs.Seg.Name,
			Group:  circuits.GroupDataPath,
			Domain: desc.DomainVint,
			Cap:    rs.TotalCapPerWire(),
			Events: rs.Toggle * float64(rs.Wires) * scale,
		})
	}
	return items
}

// dataPathItems returns charge items for a data transfer of the given
// direction: each segment of the matching bus (including shared-data
// segments) sees every transferred bit once, charging toggle × bits events
// regardless of the bus width at that point.
func (m *Model) dataPathItems(kind desc.SignalKind, bits int) []circuits.ChargeItem {
	var items []circuits.ChargeItem
	for _, rs := range m.Segments {
		k := rs.Seg.Kind
		if k != kind && k != desc.SigDataShared {
			continue
		}
		items = append(items, circuits.ChargeItem{
			Name:   "wire " + rs.Seg.Name,
			Group:  circuits.GroupDataPath,
			Domain: desc.DomainVint,
			Cap:    rs.TotalCapPerWire(),
			Events: rs.Toggle * float64(bits),
		})
	}
	return items
}

// logicItems returns the charge of the miscellaneous logic blocks that are
// active only during specific operations. A block toggles at its rate for
// every control-clock cycle the operation occupies: column commands keep
// the column and interface logic busy for the whole burst (BurstSlots
// cycles — eight internal column cycles on a BL8 SDR, half a data-clock
// burst on DDR3). Always-on blocks are background (see Background) and
// excluded here.
func (m *Model) logicItems(op desc.Op) []circuits.ChargeItem {
	var items []circuits.ChargeItem
	slots := 1.0
	if op == desc.OpRead || op == desc.OpWrite {
		slots = float64(m.BurstSlots())
	}
	for i := range m.D.LogicBlocks {
		b := &m.D.LogicBlocks[i]
		if len(b.ActiveDuring) == 0 || !b.ActiveFor(op) {
			continue
		}
		cap := m.P.LogicGateCap(b, m.D.Technology.WireCapSignal)
		items = append(items, circuits.ChargeItem{
			Name:   "logic " + b.Name,
			Group:  circuits.GroupLogic,
			Domain: desc.DomainVint,
			Cap:    cap,
			Events: b.Toggle * float64(b.Gates) * slots,
		})
	}
	return items
}

// Background is the continuously dissipated power: clock distribution at
// the data clock, the control bus at the control clock, always-on logic
// blocks at the control clock, and the constant current sink. This is the
// power of the no-operation state ("the clock is running and the control
// is operating", Section III.B.4).
type Background struct {
	Items []BackgroundItem
	// Power is the total, referred to the external supply.
	Power units.Power
}

// BackgroundItem is one continuous contribution with its Vdd-referred
// power.
type BackgroundItem struct {
	Name  string
	Group circuits.Group
	Power units.Power
}

// Background returns the background power of the model from the ledger
// cached at Build time. The returned struct is shared and must not be
// modified; callers that mutate the description in place must use
// RecomputeBackground.
func (m *Model) Background() Background {
	if m.background != nil {
		return *m.background
	}
	return m.RecomputeBackground()
}

// RecomputeBackground rebuilds the background ledger from the current
// description state, bypassing the Build-time cache.
func (m *Model) RecomputeBackground() Background {
	var bg Background
	el := m.D.Electrical
	add := func(name string, group circuits.Group, p units.Power) {
		bg.Items = append(bg.Items, BackgroundItem{Name: name, Group: group, Power: p})
		bg.Power += p
	}

	for _, rs := range m.Segments {
		var f units.Frequency
		switch rs.Seg.Kind {
		case desc.SigClock:
			f = m.D.Spec.DataClock
		case desc.SigControl:
			f = m.D.Spec.ControlClock
		default:
			continue
		}
		v, eff := el.DomainVoltageAndSafeEff(desc.DomainVint)
		e := float64(rs.TotalCapPerWire()) * float64(v) * float64(el.Vdd) *
			rs.Toggle * float64(rs.Wires) / eff
		group := circuits.GroupClock
		if rs.Seg.Kind == desc.SigControl {
			group = circuits.GroupDataPath
		}
		add("wire "+rs.Seg.Name, group, units.Energy(e).PowerAt(f))
	}

	for i := range m.D.LogicBlocks {
		b := &m.D.LogicBlocks[i]
		if len(b.ActiveDuring) != 0 {
			continue
		}
		cap := m.P.LogicGateCap(b, m.D.Technology.WireCapSignal)
		v, eff := el.DomainVoltageAndSafeEff(desc.DomainVint)
		e := float64(cap) * float64(v) * float64(el.Vdd) * b.Toggle * float64(b.Gates) / eff
		add("logic "+b.Name, circuits.GroupLogic, units.Energy(e).PowerAt(m.D.Spec.ControlClock))
	}

	if el.ConstantCurrent > 0 {
		add("constant current", circuits.GroupStatic,
			units.Power(float64(el.ConstantCurrent)*float64(el.Vdd)))
	}
	return bg
}

// OpPower returns the power one operation contributes when issued every
// control-clock cycle: E_op × f_ctrl, with E_op the resolved (possibly
// calibrated) per-op energy. The pattern evaluation scales this by the
// operation's slot share, which is exactly the paper's "12.5% of the
// power associated with each of these commands" accounting.
func (m *Model) OpPower(op desc.Op) units.Power {
	return m.OpEnergy(op).PowerAt(m.D.Spec.ControlClock)
}

// PatternResult is the evaluation of a command pattern.
type PatternResult struct {
	Pattern desc.Pattern
	// Background is the continuous power.
	Background units.Power
	// Command is the pattern-weighted command power.
	Command units.Power
	// Power is the total average power.
	Power units.Power
	// Current is Power / Vdd.
	Current units.Current
	// BitsPerLoop counts data bits moved per loop traversal.
	BitsPerLoop int
	// EnergyPerBit is the average energy per transferred bit; 0 when the
	// pattern moves no data.
	EnergyPerBit units.Energy
	// ByOp is each operation's average power contribution (share × OpPower).
	ByOp map[desc.Op]units.Power
	// ByGroup splits the total average power by reporting group.
	ByGroup map[circuits.Group]units.Power
	// ByDomain splits the total average power by voltage domain. Constant
	// current and background wires/logic are attributed to their domains
	// (Vdd for the constant sink, Vint for wires and logic).
	ByDomain map[desc.Domain]units.Power
}

// EvaluatePattern computes the average power of the given pattern, one
// control-clock slot per loop entry.
func (m *Model) EvaluatePattern(p desc.Pattern) *PatternResult {
	el := m.D.Electrical
	fctl := m.D.Spec.ControlClock
	res := &PatternResult{
		Pattern:  p,
		ByOp:     map[desc.Op]units.Power{},
		ByGroup:  map[circuits.Group]units.Power{},
		ByDomain: map[desc.Domain]units.Power{},
	}

	// The totals come from the resolved parameter set (possibly
	// calibrated); the by-group/by-domain breakdowns come from the derived
	// charge ledgers, scaled by the calibration ratio so they track the
	// resolved totals. Uncalibrated models have a ratio of exactly 1.0,
	// and multiplying a float64 by 1.0 is exact in IEEE-754, so the
	// uncalibrated path stays bit-identical to the pre-pipeline code.
	bg := m.Background()
	res.Background = m.params.StandbyPower
	bgScale := 1.0
	if m.params.StandbyPower != m.derived.StandbyPower && m.derived.StandbyPower != 0 {
		bgScale = float64(m.params.StandbyPower) / float64(m.derived.StandbyPower)
	}
	for _, it := range bg.Items {
		p := units.Power(float64(it.Power) * bgScale)
		res.ByGroup[it.Group] += p
		if it.Group == circuits.GroupStatic {
			res.ByDomain[desc.DomainVdd] += p
		} else {
			res.ByDomain[desc.DomainVint] += p
		}
	}

	// Iterate in canonical op order, not map order: float accumulation must
	// be deterministic so repeated (and parallel) evaluations are
	// bit-identical.
	mix := p.Mix()
	for _, op := range desc.AllOps {
		share := mix[op]
		if op == desc.OpNop || share == 0 {
			continue
		}
		oc := m.Charges(op)
		opE := m.params.OpEnergy[op]
		opScale := 1.0
		if opE != m.derived.OpEnergy[op] && m.derived.OpEnergy[op] != 0 {
			opScale = float64(opE) / float64(m.derived.OpEnergy[op])
		}
		opPower := units.Power(share) * units.Power(float64(opE)*float64(fctl))
		res.ByOp[op] += opPower
		res.Command += opPower
		for g, e := range oc.EnergyByGroup(el) {
			res.ByGroup[g] += units.Power(share * float64(e) * opScale * float64(fctl))
		}
		for dom, e := range oc.EnergyByDomain(el) {
			res.ByDomain[dom] += units.Power(share * float64(e) * opScale * float64(fctl))
		}
	}
	res.Power = res.Background + res.Command
	if el.Vdd > 0 {
		res.Current = units.Current(float64(res.Power) / float64(el.Vdd))
	}

	bits := 0
	perBurst := m.BitsPerBurst()
	for _, op := range p.Loop {
		if op == desc.OpRead || op == desc.OpWrite {
			bits += perBurst
		}
	}
	res.BitsPerLoop = bits
	if bits > 0 && fctl > 0 {
		loopTime := float64(len(p.Loop)) / float64(fctl)
		res.EnergyPerBit = units.Energy(float64(res.Power) * loopTime / float64(bits))
	}
	return res
}

// Evaluate evaluates the description's own pattern.
func (m *Model) Evaluate() *PatternResult {
	return m.EvaluatePattern(m.D.Pattern)
}
