package core

import (
	"math"
	"testing"
	"testing/quick"

	"drampower/internal/circuits"
	"drampower/internal/desc"
	"drampower/internal/units"
)

func hasItem(items []circuits.ChargeItem, name string) bool {
	for _, it := range items {
		if it.Name == name {
			return true
		}
	}
	return false
}

func TestChargesActivate(t *testing.T) {
	m := build(t)
	oc := m.Charges(desc.OpActivate)
	for _, want := range []string{"bitline sensing", "master wordline",
		"local wordlines", "wire AddrRow0", "wire AddrBank0", "logic rowlogic"} {
		if !hasItem(oc.Items, want) {
			t.Errorf("activate charges missing %q", want)
		}
	}
	if hasItem(oc.Items, "wire DataW1") {
		t.Error("activate charges should not include data wires")
	}
	if hasItem(oc.Items, "logic interface") {
		t.Error("activate charges should not include read/write logic")
	}
	if e := oc.EnergyFromVdd(m.D.Electrical); e <= 0 {
		t.Errorf("activate energy: got %v", e)
	}
}

func TestChargesRead(t *testing.T) {
	m := build(t)
	oc := m.Charges(desc.OpRead)
	for _, want := range []string{"column select lines", "local data lines",
		"wire AddrCol0", "wire DataR0", "wire DataR3", "logic columnlogic",
		"logic interface"} {
		if !hasItem(oc.Items, want) {
			t.Errorf("read charges missing %q", want)
		}
	}
	if hasItem(oc.Items, "wire DataW0") {
		t.Error("read charges should not include write-path wires")
	}
	if hasItem(oc.Items, "written bitlines") {
		t.Error("read charges should not flip bitlines")
	}
}

func TestChargesWrite(t *testing.T) {
	m := build(t)
	oc := m.Charges(desc.OpWrite)
	for _, want := range []string{"written bitlines", "written cells",
		"wire DataW0", "wire DataW3"} {
		if !hasItem(oc.Items, want) {
			t.Errorf("write charges missing %q", want)
		}
	}
	if hasItem(oc.Items, "wire DataR1") {
		t.Error("write charges should not include read-path wires")
	}
}

func TestChargesNop(t *testing.T) {
	m := build(t)
	oc := m.Charges(desc.OpNop)
	if len(oc.Items) != 0 {
		t.Errorf("nop should carry no command charge, got %d items", len(oc.Items))
	}
}

func TestChargesRefresh(t *testing.T) {
	m := build(t)
	ref := m.Charges(desc.OpRefresh).EnergyFromVdd(m.D.Electrical)
	act := m.Charges(desc.OpActivate).EnergyFromVdd(m.D.Electrical)
	pre := m.Charges(desc.OpPrecharge).EnergyFromVdd(m.D.Electrical)
	// Refresh = banks × (act+pre) array charges; logic charges are not
	// multiplied, so the total is close to but below banks × (act+pre).
	banks := float64(m.D.Spec.Banks())
	if float64(ref) > banks*float64(act+pre) {
		t.Errorf("refresh energy %v exceeds %g x (act+pre) %v", ref, banks, act+pre)
	}
	if float64(ref) < 0.7*banks*float64(act+pre) {
		t.Errorf("refresh energy %v too far below %g x (act+pre) %v", ref, banks, act+pre)
	}
}

func TestEnergyBreakdownsSum(t *testing.T) {
	m := build(t)
	el := m.D.Electrical
	for _, op := range []desc.Op{desc.OpActivate, desc.OpRead, desc.OpWrite} {
		oc := m.Charges(op)
		total := float64(oc.EnergyFromVdd(el))
		var byG, byD float64
		for _, e := range oc.EnergyByGroup(el) {
			byG += float64(e)
		}
		for _, e := range oc.EnergyByDomain(el) {
			byD += float64(e)
		}
		if math.Abs(byG-total) > 1e-9*total {
			t.Errorf("%v: group breakdown sums to %g, total %g", op, byG, total)
		}
		if math.Abs(byD-total) > 1e-9*total {
			t.Errorf("%v: domain breakdown sums to %g, total %g", op, byD, total)
		}
	}
}

func TestChargeFromVdd(t *testing.T) {
	m := build(t)
	oc := m.Charges(desc.OpActivate)
	e := oc.EnergyFromVdd(m.D.Electrical)
	q := oc.ChargeFromVdd(m.D.Electrical)
	want := float64(e) / float64(m.D.Electrical.Vdd)
	if math.Abs(float64(q)-want) > 1e-12*want {
		t.Errorf("charge from Vdd: got %v, want %g", q, want)
	}
}

func TestBackground(t *testing.T) {
	m := build(t)
	bg := m.Background()
	if bg.Power <= 0 {
		t.Fatalf("background power: got %v", bg.Power)
	}
	var names []string
	var sum units.Power
	for _, it := range bg.Items {
		names = append(names, it.Name)
		sum += it.Power
		if it.Power <= 0 {
			t.Errorf("background item %s has non-positive power", it.Name)
		}
	}
	if math.Abs(float64(sum-bg.Power)) > 1e-12*float64(bg.Power) {
		t.Errorf("background items sum %v != total %v", sum, bg.Power)
	}
	joined := ""
	for _, n := range names {
		joined += n + ";"
	}
	for _, want := range []string{"wire Clk0", "wire Ctrl0", "logic clocktree",
		"logic control", "constant current"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("background missing %q (have %s)", want, joined)
		}
	}
	// Idle current of a DDR3 device: tens of mA.
	idle := float64(bg.Power) / float64(m.D.Electrical.Vdd)
	if idle < 0.010 || idle > 0.060 {
		t.Errorf("idle current out of datasheet ballpark: %g A", idle)
	}
}

func TestIDDSanity(t *testing.T) {
	m := build(t)
	idd := m.IDD()
	ma := func(c units.Current) float64 { return c.Milliamps() }

	// Ordering invariants.
	if !(idd.IDD2N < idd.IDD0) {
		t.Errorf("IDD2N (%v) should be below IDD0 (%v)", idd.IDD2N, idd.IDD0)
	}
	if !(idd.IDD0 < idd.IDD4R) {
		t.Errorf("IDD0 (%v) should be below IDD4R (%v)", idd.IDD0, idd.IDD4R)
	}
	if !(idd.IDD4R < idd.IDD7) {
		t.Errorf("IDD4R (%v) should be below IDD7 (%v)", idd.IDD4R, idd.IDD7)
	}
	if !(idd.IDD4R < idd.IDD4W) {
		t.Errorf("IDD4R (%v) should be slightly below IDD4W (%v)", idd.IDD4R, idd.IDD4W)
	}
	if idd.IDD2N != idd.IDD3N {
		t.Errorf("model IDD2N (%v) and IDD3N (%v) should coincide", idd.IDD2N, idd.IDD3N)
	}

	// Datasheet ballpark for a 1 Gb x16 DDR3-1600 (Section IV.A spread).
	checks := []struct {
		name    string
		val, lo float64
		hi      float64
	}{
		{"IDD0", ma(idd.IDD0), 40, 110},
		{"IDD2N", ma(idd.IDD2N), 15, 50},
		{"IDD4R", ma(idd.IDD4R), 100, 250},
		{"IDD4W", ma(idd.IDD4W), 100, 250},
		{"IDD5", ma(idd.IDD5), 80, 250},
		// IDD7 here keeps the data bus full (two bursts per activation on
		// a x16), so it sits above the JEDEC one-burst measurement.
		{"IDD7", ma(idd.IDD7), 150, 400},
	}
	for _, c := range checks {
		if c.val < c.lo || c.val > c.hi {
			t.Errorf("%s = %.1f mA outside datasheet ballpark [%g, %g]",
				c.name, c.val, c.lo, c.hi)
		}
	}
}

func TestPatternIDD0MatchesDirectFormula(t *testing.T) {
	m := build(t)
	el := m.D.Electrical
	res := m.EvaluatePattern(m.PatternIDD0())
	// Direct: background + (E_act + E_pre) / (slots/fctl).
	slots := float64(len(m.PatternIDD0().Loop))
	eAct := float64(m.Charges(desc.OpActivate).EnergyFromVdd(el))
	ePre := float64(m.Charges(desc.OpPrecharge).EnergyFromVdd(el))
	direct := float64(m.Background().Power) +
		(eAct+ePre)*float64(m.D.Spec.ControlClock)/slots
	if math.Abs(float64(res.Power)-direct) > 1e-9*direct {
		t.Errorf("pattern IDD0 power %v != direct %g", res.Power, direct)
	}
}

func TestPatternNopOnlyIsBackground(t *testing.T) {
	m := build(t)
	res := m.EvaluatePattern(desc.Pattern{Loop: []desc.Op{desc.OpNop, desc.OpNop}})
	if math.Abs(float64(res.Power-res.Background)) > 1e-15 {
		t.Errorf("nop-only pattern power %v != background %v", res.Power, res.Background)
	}
	if res.BitsPerLoop != 0 || res.EnergyPerBit != 0 {
		t.Errorf("nop-only pattern moved bits: %d, %v", res.BitsPerLoop, res.EnergyPerBit)
	}
}

func TestPatternBreakdownsSum(t *testing.T) {
	m := build(t)
	res := m.Evaluate()
	var byG, byD, byOp float64
	for _, p := range res.ByGroup {
		byG += float64(p)
	}
	for _, p := range res.ByDomain {
		byD += float64(p)
	}
	for _, p := range res.ByOp {
		byOp += float64(p)
	}
	total := float64(res.Power)
	if math.Abs(byG-total) > 1e-9*total {
		t.Errorf("group breakdown sums to %g, total %g", byG, total)
	}
	if math.Abs(byD-total) > 1e-9*total {
		t.Errorf("domain breakdown sums to %g, total %g", byD, total)
	}
	if math.Abs(byOp-float64(res.Command)) > 1e-9*float64(res.Command) {
		t.Errorf("op breakdown sums to %g, command power %g", byOp, float64(res.Command))
	}
}

func TestPatternEnergyPerBit(t *testing.T) {
	m := build(t)
	res := m.Evaluate() // act nop wrt nop rd nop pre nop: 2 bursts per loop
	if res.BitsPerLoop != 2*m.BitsPerBurst() {
		t.Errorf("bits per loop: got %d, want %d", res.BitsPerLoop, 2*m.BitsPerBurst())
	}
	loopTime := float64(len(m.D.Pattern.Loop)) / float64(m.D.Spec.ControlClock)
	want := float64(res.Power) * loopTime / float64(res.BitsPerLoop)
	if math.Abs(float64(res.EnergyPerBit)-want) > 1e-9*want {
		t.Errorf("energy per bit: got %v, want %g", res.EnergyPerBit, want)
	}
	// The paper's Figure 13 scale: tens of pJ/bit for this generation.
	if pj := res.EnergyPerBit.Picojoules(); pj < 5 || pj > 100 {
		t.Errorf("energy per bit out of Figure 13 ballpark: %g pJ", pj)
	}
}

func TestEnergyPerBitMetrics(t *testing.T) {
	m := build(t)
	e4 := m.EnergyPerBitIDD4()
	e7 := m.EnergyPerBitIDD7()
	if e4 <= 0 || e7 <= 0 {
		t.Fatalf("energy metrics: e4=%v e7=%v", e4, e7)
	}
	// Random-access traffic costs more per bit than streaming (row
	// activation amortized over one burst instead of many).
	if float64(e7) <= float64(e4) {
		t.Errorf("IDD7 energy/bit (%v) should exceed IDD4 energy/bit (%v)", e7, e4)
	}
}

func TestPatternIDD7Structure(t *testing.T) {
	m := build(t)
	p := m.PatternIDD7(0.5)
	counts := map[desc.Op]int{}
	for _, op := range p.Loop {
		counts[op]++
	}
	banks := m.D.Spec.Banks()
	if counts[desc.OpActivate] != banks {
		t.Errorf("IDD7 activates: got %d, want %d", counts[desc.OpActivate], banks)
	}
	if counts[desc.OpPrecharge] != banks {
		t.Errorf("IDD7 precharges: got %d, want %d", counts[desc.OpPrecharge], banks)
	}
	wantCols := banks * m.BurstsPerActivation()
	if counts[desc.OpRead]+counts[desc.OpWrite] != wantCols {
		t.Errorf("IDD7 column commands: got %d, want %d",
			counts[desc.OpRead]+counts[desc.OpWrite], wantCols)
	}
	// Half reads, half writes.
	if counts[desc.OpRead] != counts[desc.OpWrite] {
		t.Errorf("IDD7(0.5) should balance reads (%d) and writes (%d)",
			counts[desc.OpRead], counts[desc.OpWrite])
	}
	// The activate spacing honors tFAW/4 = 10ns = 8 slots at 800 MHz.
	group := len(p.Loop) / banks
	if group != 8 {
		t.Errorf("IDD7 activate spacing: got %d slots, want 8", group)
	}

	// Pure-read IDD7.
	p0 := m.PatternIDD7(0)
	for _, op := range p0.Loop {
		if op == desc.OpWrite {
			t.Error("IDD7(0) should contain no writes")
		}
	}
}

func TestOpPowerLinearInEnergy(t *testing.T) {
	m := build(t)
	p := m.OpPower(desc.OpActivate)
	e := m.Charges(desc.OpActivate).EnergyFromVdd(m.D.Electrical)
	want := float64(e) * float64(m.D.Spec.ControlClock)
	if math.Abs(float64(p)-want) > 1e-9*want {
		t.Errorf("OpPower: got %v, want %g", p, want)
	}
}

// Property: total power scales with the square of all voltages (at fixed
// efficiencies), the fundamental CV² behaviour of Eq. 1.
func TestPropPowerQuadraticInVoltage(t *testing.T) {
	f := func(kRaw uint8) bool {
		k := 1 + float64(kRaw%100)/100 // scale factor in [1,2)
		d1 := desc.Sample1GbDDR3()
		d1.Electrical.ConstantCurrent = 0 // constant sink is linear, not quadratic
		d2 := d1.Clone()
		d2.Electrical.Vdd *= units.Voltage(k)
		d2.Electrical.Vint *= units.Voltage(k)
		d2.Electrical.Vbl *= units.Voltage(k)
		d2.Electrical.Vpp *= units.Voltage(k)
		m1, err1 := Build(d1)
		m2, err2 := Build(d2)
		if err1 != nil || err2 != nil {
			return false
		}
		p1 := float64(m1.Evaluate().Power)
		p2 := float64(m2.Evaluate().Power)
		return math.Abs(p2-k*k*p1) < 1e-6*p2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: command power is linear in the control clock frequency for a
// fixed pattern (charges fixed, frequency scales).
func TestPropCommandPowerLinearInClock(t *testing.T) {
	f := func(kRaw uint8) bool {
		k := 1 + float64(kRaw%4) // 1..4
		d1 := desc.Sample1GbDDR3()
		d2 := d1.Clone()
		d2.Spec.ControlClock = units.Frequency(float64(d2.Spec.ControlClock) * k)
		d2.Spec.DataRate = units.DataRate(float64(d2.Spec.DataRate) * k)
		m1, err1 := Build(d1)
		m2, err2 := Build(d2)
		if err1 != nil || err2 != nil {
			return false
		}
		p1 := float64(m1.Evaluate().Command)
		p2 := float64(m2.Evaluate().Command)
		return math.Abs(p2-k*p1) < 1e-6*p2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: doubling every wire's specific capacitance increases power.
func TestPropPowerMonotonicInWireCap(t *testing.T) {
	d1 := desc.Sample1GbDDR3()
	d2 := d1.Clone()
	d2.Technology.WireCapSignal *= 2
	d2.Technology.WireCapMWL *= 2
	d2.Technology.WireCapLWL *= 2
	m1, err := Build(d1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Build(d2)
	if err != nil {
		t.Fatal(err)
	}
	if !(m2.Evaluate().Power > m1.Evaluate().Power) {
		t.Error("power should increase with wire capacitance")
	}
}

// Property: pattern power is invariant under rotation of the loop.
func TestPropPatternRotationInvariant(t *testing.T) {
	m := build(t)
	f := func(rot uint8) bool {
		loop := append([]desc.Op(nil), m.D.Pattern.Loop...)
		r := int(rot) % len(loop)
		rotated := append(loop[r:], loop[:r]...)
		p1 := float64(m.EvaluatePattern(desc.Pattern{Loop: loop}).Power)
		p2 := float64(m.EvaluatePattern(desc.Pattern{Loop: rotated}).Power)
		return math.Abs(p1-p2) < 1e-9*p1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnergyFromVddZeroEfficiency(t *testing.T) {
	// A zero generator efficiency must act as a pass-through (eff = 1)
	// in every Vdd-referred roll-up, not divide by zero.
	m := build(t)
	el := m.D.Electrical
	el.EffInt, el.EffBl, el.EffPp = 0, 0, 0
	ref := el
	ref.EffInt, ref.EffBl, ref.EffPp = 1, 1, 1

	for _, op := range desc.AllOps {
		oc := m.Charges(op)
		got := float64(oc.EnergyFromVdd(el))
		want := float64(oc.EnergyFromVdd(ref))
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("%v: zero-eff energy is %g", op, got)
		}
		if math.Abs(got-want) > 1e-18 {
			t.Errorf("%v: zero-eff energy %g, want pass-through %g", op, got, want)
		}
		for g, e := range oc.EnergyByGroup(el) {
			if math.IsNaN(float64(e)) || math.IsInf(float64(e), 0) {
				t.Errorf("%v group %v: energy %v", op, g, e)
			}
		}
		for d, e := range oc.EnergyByDomain(el) {
			if math.IsNaN(float64(e)) || math.IsInf(float64(e), 0) {
				t.Errorf("%v domain %v: energy %v", op, d, e)
			}
		}
	}
}

func TestChargesLedgerCachedAndRecompute(t *testing.T) {
	m := build(t)
	for _, op := range desc.AllOps {
		cached := m.Charges(op)
		if again := m.Charges(op); again != cached {
			t.Errorf("%v: Charges not served from the cached ledger", op)
		}
		re := m.RecomputeCharges(op)
		if re == cached {
			t.Errorf("%v: RecomputeCharges returned the cached ledger", op)
		}
		if len(re.Items) != len(cached.Items) {
			t.Fatalf("%v: recompute has %d items, ledger %d", op, len(re.Items), len(cached.Items))
		}
		for i := range re.Items {
			if re.Items[i] != cached.Items[i] {
				t.Errorf("%v item %d: ledger %+v != recompute %+v", op, i, cached.Items[i], re.Items[i])
			}
		}
		if e := m.OpEnergy(op); e != cached.EnergyFromVdd(m.D.Electrical) {
			t.Errorf("%v: OpEnergy cache mismatch", op)
		}
	}
}
