// Package core implements the DRAM power engine of Section III of the
// paper. It follows the program flow of Figure 4:
//
//  1. the description is parsed and syntax-checked (package desc),
//  2. wire and device capacitances are calculated (packages geom, tech,
//     circuits and the signaling resolution here),
//  3. the charge associated with activate, precharge, read and write is
//     determined,
//  4. the currents of each operation follow from charge × frequency,
//  5. the power of each operation is the current referred to the external
//     supply through the generator/pump efficiencies,
//  6. the power of the specified pattern combines the operations'
//     contributions with the pattern mix.
//
// The central quantity is the ChargeItem (package circuits): a named
// capacitance switched a number of times per operation in one of the four
// voltage domains. Everything the model reports — operation energies, IDD
// currents, pattern power, component Paretos — is an aggregation of charge
// items.
package core

import (
	"fmt"
	"math"

	"drampower/internal/desc"
	"drampower/internal/geom"
	"drampower/internal/tech"
	"drampower/internal/units"
)

// Model is a fully resolved DRAM: description plus derived geometry and
// capacitances, ready for power evaluation.
type Model struct {
	D     *desc.Description
	Grid  *geom.Grid
	Array *geom.ArrayLayout
	P     tech.Params

	// Segments are the resolved signaling floorplan wires.
	Segments []ResolvedSegment

	// ledger holds the immutable per-op charge lists precomputed by
	// Build, indexed by desc.Op. Charges serves O(1) reads from it; the
	// slices inside are shared and must never be mutated (RecomputeCharges
	// is the escape hatch for post-Build description changes).
	ledger [desc.NumOps]*OpCharges
	// opEnergy caches each operation's Vdd-referred energy per occurrence
	// so the trace simulator's per-command integration is a plain lookup.
	opEnergy [desc.NumOps]units.Energy
	// background caches the continuous-power ledger (see Background).
	background *Background

	// derived is the parameter set as produced by the circuit derivation
	// (the derive stage); params is the resolved set after the optional
	// calibration overlay (the seal stage). Uncalibrated models have the
	// two bit-identical. See ParamSet.
	derived ParamSet
	params  ParamSet
	// calibrated records that a non-empty overlay was applied;
	// calibration carries the overlay's name.
	calibrated  bool
	calibration string
}

// ResolvedSegment is a signaling floorplan segment with its routed length,
// per-wire capacitance and derived wire count.
type ResolvedSegment struct {
	Seg    desc.Segment
	Length units.Length
	// WireCap is the wire capacitance of one wire of the segment.
	WireCap units.Capacitance
	// BufCap is the device load of the segment's head buffer (per wire).
	BufCap units.Capacitance
	// Wires is the resolved wire count.
	Wires int
	// Toggle is the resolved charging-event rate.
	Toggle float64
}

// TotalCapPerWire returns wire plus buffer capacitance of one wire.
func (r ResolvedSegment) TotalCapPerWire() units.Capacitance {
	return r.WireCap + r.BufCap
}

// Build resolves a description into a model. The description is validated
// first; Build fails on any validation problem. Build is BuildCalibrated
// with no overlay.
func Build(d *desc.Description) (*Model, error) {
	return BuildCalibrated(d, nil)
}

// BuildCalibrated resolves a description into a model and applies a
// calibration overlay to the resolved parameter set — the full
// derive → overlay → seal pipeline. A nil or empty overlay is a strict
// no-op: the model is bit-identical to Build's.
func BuildCalibrated(d *desc.Description, ov *desc.Overlay) (*Model, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	g, err := geom.NewGrid(&d.Floorplan)
	if err != nil {
		return nil, err
	}
	w, h, err := geom.ArrayBlockExtents(g)
	if err != nil {
		return nil, err
	}
	a, err := geom.ResolveArray(&d.Floorplan, w, h)
	if err != nil {
		return nil, err
	}
	m := &Model{D: d, Grid: g, Array: a, P: tech.Params{T: &d.Technology}}
	if err := m.resolveSegments(); err != nil {
		return nil, err
	}
	m.buildLedger()
	m.derive()
	if err := m.applyOverlay(ov); err != nil {
		return nil, err
	}
	return m, nil
}

// buildLedger precomputes the per-op charge ledgers, per-op energies and
// the background ledger (steps 3–5 of Figure 4, run once per Build). After
// this, Charges, OpEnergy, Background, EvaluatePattern and the trace
// simulator read cached immutable state instead of re-deriving the
// charge-event lists on every call.
func (m *Model) buildLedger() {
	for _, op := range desc.AllOps {
		oc := m.computeCharges(op)
		m.ledger[op] = oc
		m.opEnergy[op] = oc.EnergyFromVdd(m.D.Electrical)
	}
	bg := m.RecomputeBackground()
	m.background = &bg
}

// OpEnergy returns the resolved Vdd-referred energy one occurrence of op
// draws, at the electrical state the model was built with — including
// any calibration override. This is the O(1) lookup the trace simulator
// integrates per command.
func (m *Model) OpEnergy(op desc.Op) units.Energy {
	if op.Valid() {
		return m.params.OpEnergy[op]
	}
	return m.computeCharges(op).EnergyFromVdd(m.D.Electrical)
}

// OpEnergies returns the whole resolved per-op energy ledger as an array
// indexed by desc.Op (a copy; the caller may keep it). The trace
// simulator captures it once at construction so per-command energy
// integration is a flat array read with no Model indirection on the hot
// path.
func (m *Model) OpEnergies() [desc.NumOps]units.Energy { return m.params.OpEnergy }

// resolveSegments computes lengths, capacitances, wire counts and toggle
// rates for every signaling segment. Data buses widen by the accumulated
// mux (deserialization) ratio of upstream segments of the same bus.
func (m *Model) resolveSegments() error {
	d := m.D
	serial := map[string]int{} // bus prefix -> accumulated widening
	m.Segments = make([]ResolvedSegment, 0, len(d.Signals))
	for _, s := range d.Signals {
		l, err := m.Grid.SegmentLength(&s)
		if err != nil {
			return err
		}
		frac := s.EffectiveActiveFrac()
		rs := ResolvedSegment{
			Seg:     s,
			Length:  l,
			WireCap: tech.WireCap(l, d.Technology.WireCapSignal).Times(frac),
			Toggle:  s.Toggle,
		}
		if rs.Toggle < 0 {
			rs.Toggle = desc.DefaultToggle(s.Kind)
		}
		if s.BufNWidth > 0 || s.BufPWidth > 0 {
			// Cut-off segmentation (activefrac < 1) idles the buffers
			// beyond the cut as well.
			rs.BufCap = m.P.BufferLoad(s.BufNWidth, s.BufPWidth).Times(frac)
		}
		rs.Wires = m.segmentWires(&s, serial)
		if s.MuxRatio > 1 && isDataKind(s.Kind) {
			serial[busPrefix(s.Kind)] *= s.MuxRatio
		}
		m.Segments = append(m.Segments, rs)
	}
	return nil
}

func isDataKind(k desc.SignalKind) bool {
	return k == desc.SigDataRead || k == desc.SigDataWrite || k == desc.SigDataShared
}

func busPrefix(k desc.SignalKind) string { return k.String() }

// segmentWires derives the wire count of a segment from the specification
// unless overridden.
func (m *Model) segmentWires(s *desc.Segment, serial map[string]int) int {
	if s.Wires > 0 {
		return s.Wires
	}
	spec := m.D.Spec
	switch s.Kind {
	case desc.SigClock:
		if spec.ClockWires > 0 {
			return spec.ClockWires
		}
		return 1
	case desc.SigControl:
		if spec.MiscCtrlSignals > 0 {
			return spec.MiscCtrlSignals
		}
		return 4
	case desc.SigAddrRow:
		return spec.RowAddrBits
	case desc.SigAddrCol:
		return spec.ColAddrBits
	case desc.SigAddrBank:
		return spec.BankAddrBits
	default: // data
		p := busPrefix(s.Kind)
		if serial[p] == 0 {
			serial[p] = 1
		}
		return spec.IOWidth * serial[p]
	}
}

// BitsPerBurst returns the bits moved by one column command: IO width ×
// burst length (burst length defaults to the prefetch when unset).
func (m *Model) BitsPerBurst() int {
	bl := m.D.Spec.BurstLength
	if bl <= 0 {
		bl = m.D.Spec.Prefetch()
	}
	return m.D.Spec.IOWidth * bl
}

// BurstSlots returns the number of control-clock slots one burst occupies
// on the data bus: burst length / data bits per control cycle per pin.
// For a DDR interface clocked at the control clock this is burstLength/2;
// the result is at least 1.
func (m *Model) BurstSlots() int {
	spec := m.D.Spec
	if spec.ControlClock <= 0 || spec.DataRate <= 0 {
		return 1
	}
	bitsPerSlotPerPin := float64(spec.DataRate) / float64(spec.ControlClock)
	bl := spec.BurstLength
	if bl <= 0 {
		bl = spec.Prefetch()
	}
	slots := int(math.Ceil(float64(bl) / bitsPerSlotPerPin))
	if slots < 1 {
		slots = 1
	}
	return slots
}

// DieArea returns the die area of the floorplan.
func (m *Model) DieArea() units.Area { return m.Grid.DieArea() }

// Density returns the device density in bits implied by the addressing:
// banks × rows × page bits.
func (m *Model) Density() int64 {
	s := m.D.Spec
	return int64(s.Banks()) * (1 << uint(s.RowAddrBits)) * int64(s.PageBits())
}

// String identifies the model.
func (m *Model) String() string {
	return fmt.Sprintf("Model(%s, %d banks, %.1f mm²)",
		m.D.Name, m.D.Spec.Banks(), float64(m.DieArea())/1e-6)
}
