package core

import (
	"math"
	"strings"
	"testing"

	"drampower/internal/desc"
)

func build(t *testing.T) *Model {
	t.Helper()
	m, err := Build(desc.Sample1GbDDR3())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuildValidates(t *testing.T) {
	d := desc.Sample1GbDDR3()
	d.Spec.IOWidth = 0
	if _, err := Build(d); err == nil {
		t.Error("Build should reject an invalid description")
	}
}

func TestSegmentResolution(t *testing.T) {
	m := build(t)
	byName := map[string]ResolvedSegment{}
	for _, rs := range m.Segments {
		byName[rs.Seg.Name] = rs
	}

	// DataW0 sits before its own 1:8 mux: pad width of 16 wires.
	if got := byName["DataW0"].Wires; got != 16 {
		t.Errorf("DataW0 wires: got %d, want 16", got)
	}
	// DataW1..3 are downstream of the deserializer: 128 wires.
	for _, n := range []string{"DataW1", "DataW2", "DataW3"} {
		if got := byName[n].Wires; got != 128 {
			t.Errorf("%s wires: got %d, want 128", n, got)
		}
	}
	// The read path mux (serializer) sits at the pad end (DataR3), so the
	// array-side read segments are still at pad width — the widening
	// applies downstream of the mux segment in bus order. DataR0..2 come
	// before DataR3 in the list, so they are 16 wide. This mirrors how the
	// description orders read segments array->pad.
	if got := byName["DataR0"].Wires; got != 16 {
		t.Errorf("DataR0 wires: got %d, want 16", got)
	}
	if got := byName["AddrRow0"].Wires; got != 13 {
		t.Errorf("AddrRow0 wires: got %d, want 13", got)
	}
	if got := byName["AddrCol0"].Wires; got != 10 {
		t.Errorf("AddrCol0 wires: got %d, want 10", got)
	}
	if got := byName["AddrBank0"].Wires; got != 3 {
		t.Errorf("AddrBank0 wires: got %d, want 3", got)
	}
	if got := byName["Clk0"].Wires; got != 2 {
		t.Errorf("Clk0 wires: got %d, want 2", got)
	}
	if got := byName["Ctrl0"].Wires; got != 8 {
		t.Errorf("Ctrl0 wires: got %d, want 8", got)
	}

	// Toggle defaults resolved.
	if got := byName["Clk0"].Toggle; got != 1.0 {
		t.Errorf("Clk0 toggle: got %g, want 1.0", got)
	}
	if got := byName["DataW1"].Toggle; got != 0.25 {
		t.Errorf("DataW1 toggle: got %g, want 0.25", got)
	}

	// Wire capacitance: length × specific cap; buffer load positive.
	rs := byName["DataW1"]
	wantCap := float64(rs.Length) * float64(m.D.Technology.WireCapSignal)
	if math.Abs(float64(rs.WireCap)-wantCap) > 1e-9*wantCap {
		t.Errorf("DataW1 wire cap: got %v", rs.WireCap)
	}
	if rs.BufCap <= 0 {
		t.Errorf("DataW1 buffer cap: got %v", rs.BufCap)
	}
	if rs.TotalCapPerWire() != rs.WireCap+rs.BufCap {
		t.Error("TotalCapPerWire mismatch")
	}
}

func TestSegmentWiresOverride(t *testing.T) {
	d := desc.Sample1GbDDR3()
	d.Signals[0].Wires = 99
	m, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Segments[0].Wires; got != 99 {
		t.Errorf("override wires: got %d, want 99", got)
	}
}

func TestBitsPerBurstAndSlots(t *testing.T) {
	m := build(t)
	if got := m.BitsPerBurst(); got != 128 {
		t.Errorf("bits per burst: got %d, want 128 (16 DQ x BL8)", got)
	}
	// 8 bits per pin at 2 bits per control cycle per pin (1.6G / 800M) = 4.
	if got := m.BurstSlots(); got != 4 {
		t.Errorf("burst slots: got %d, want 4", got)
	}
}

func TestBurstSlotsFallbacks(t *testing.T) {
	d := desc.Sample1GbDDR3()
	d.Spec.BurstLength = 0 // fall back to prefetch = datarate/controlclock = 2
	m, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.BurstSlots(); got != 1 {
		t.Errorf("burst slots with prefetch fallback: got %d, want 1", got)
	}
	if got := m.BitsPerBurst(); got != 32 {
		t.Errorf("bits per burst with prefetch fallback: got %d, want 32", got)
	}
}

func TestDensity(t *testing.T) {
	m := build(t)
	// 8 banks x 2^13 rows x 16384 page bits = 2^30 = 1 Gbit.
	if got := m.Density(); got != 1<<30 {
		t.Errorf("density: got %d, want %d", got, int64(1)<<30)
	}
}

func TestDieArea(t *testing.T) {
	m := build(t)
	mm2 := float64(m.DieArea()) / 1e-6
	// The sample is a ~35 mm² die (Section IV.C targets 40–60 mm² for the
	// trend devices; the 1 Gb sample sits just below).
	if mm2 < 25 || mm2 > 60 {
		t.Errorf("die area out of range: %g mm²", mm2)
	}
	if !strings.Contains(m.String(), "mm²") {
		t.Errorf("String() = %q", m.String())
	}
}

func TestArrayConsistency(t *testing.T) {
	m := build(t)
	// Page bits from the floorplan should match the specification-derived
	// page (2^coladdr × IO) within the stripe-quantization error.
	specPage := m.D.Spec.PageBits()
	geoPage := m.Array.PageBits
	ratio := float64(geoPage) / float64(specPage)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("floorplan page (%d) deviates from spec page (%d) by more than 10%%",
			geoPage, specPage)
	}
}
