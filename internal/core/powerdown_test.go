package core

import (
	"testing"

	"drampower/internal/desc"
	"drampower/internal/units"
)

func TestPowerDown(t *testing.T) {
	m := build(t)
	pd := m.PowerDownPower()
	bg := m.Background().Power
	if pd <= 0 {
		t.Fatalf("power-down power: %v", pd)
	}
	if pd >= bg {
		t.Errorf("power-down (%v) should be well below standby (%v)", pd, bg)
	}
	// Power-down removes most of the standby power — that is the whole
	// point of the controller-side scheduling schemes (Hur & Lin).
	if s := m.PowerDownSavings(); s < 0.5 || s > 0.98 {
		t.Errorf("power-down savings %.2f outside the plausible band", s)
	}
	// IDD2P for a DDR3 part: a few mA.
	idd2p := m.IDD2P().Milliamps()
	if idd2p < 1 || idd2p > 20 {
		t.Errorf("IDD2P %.1f mA outside datasheet ballpark", idd2p)
	}
	// Consistency: IDD2P < IDD2N.
	if m.IDD2P() >= m.IDD().IDD2N {
		t.Error("IDD2P should be below IDD2N")
	}
}

func TestPowerDownScalesWithConstantCurrent(t *testing.T) {
	d1 := desc.Sample1GbDDR3()
	d2 := d1.Clone()
	d2.Electrical.ConstantCurrent *= 2
	m1, err := Build(d1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Build(d2)
	if err != nil {
		t.Fatal(err)
	}
	if !(m2.PowerDownPower() > m1.PowerDownPower()) {
		t.Error("power-down power should grow with the constant sink")
	}
}

func TestPowerDownZeroVdd(t *testing.T) {
	d := desc.Sample1GbDDR3()
	m, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	// Degenerate guard on the current conversion.
	m.D.Electrical.Vdd = 0
	if got := m.IDD2P(); got != 0 {
		t.Errorf("IDD2P with zero Vdd: %v", got)
	}
	m.D.Electrical.Vdd = 1.5
	_ = units.Voltage(0)
}
