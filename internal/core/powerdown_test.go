package core

import (
	"testing"

	"drampower/internal/desc"
	"drampower/internal/units"
)

func TestPowerDown(t *testing.T) {
	m := build(t)
	pd := m.PowerDownPower()
	bg := m.Background().Power
	if pd <= 0 {
		t.Fatalf("power-down power: %v", pd)
	}
	if pd >= bg {
		t.Errorf("power-down (%v) should be well below standby (%v)", pd, bg)
	}
	// Power-down removes most of the standby power — that is the whole
	// point of the controller-side scheduling schemes (Hur & Lin).
	if s := m.PowerDownSavings(); s < 0.5 || s > 0.98 {
		t.Errorf("power-down savings %.2f outside the plausible band", s)
	}
	// IDD2P for a DDR3 part: a few mA.
	idd2p := m.IDD2P().Milliamps()
	if idd2p < 1 || idd2p > 20 {
		t.Errorf("IDD2P %.1f mA outside datasheet ballpark", idd2p)
	}
	// Consistency: IDD2P < IDD2N.
	if m.IDD2P() >= m.IDD().IDD2N {
		t.Error("IDD2P should be below IDD2N")
	}
}

func TestPowerDownScalesWithConstantCurrent(t *testing.T) {
	d1 := desc.Sample1GbDDR3()
	d2 := d1.Clone()
	d2.Electrical.ConstantCurrent *= 2
	m1, err := Build(d1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Build(d2)
	if err != nil {
		t.Fatal(err)
	}
	if !(m2.PowerDownPower() > m1.PowerDownPower()) {
		t.Error("power-down power should grow with the constant sink")
	}
}

func TestSelfRefresh(t *testing.T) {
	m := build(t)
	sr := m.SelfRefreshPower()
	if sr <= 0 {
		t.Fatalf("self-refresh power: %v", sr)
	}
	// Self-refresh keeps only the internal oscillator, the refresh stream
	// and a leakage-level residue: it must undercut precharge power-down,
	// which in turn undercuts standby.
	if sr >= m.PowerDownPower() {
		t.Errorf("self-refresh (%v) should be below power-down (%v)", sr, m.PowerDownPower())
	}
	// IDD6 for a DDR3 part: single-digit mA.
	idd6 := m.IDD6().Milliamps()
	if idd6 <= 0 || idd6 > 12 {
		t.Errorf("IDD6 %.2f mA outside datasheet ballpark", idd6)
	}
	// Datasheet ordering: IDD6 < IDD2P < IDD2N.
	if !(m.IDD6() < m.IDD2P() && m.IDD2P() < m.IDD().IDD2N) {
		t.Errorf("current ordering violated: IDD6 %v, IDD2P %v, IDD2N %v",
			m.IDD6(), m.IDD2P(), m.IDD().IDD2N)
	}
}

func TestSelfRefreshZeroVdd(t *testing.T) {
	m := build(t)
	m.D.Electrical.Vdd = 0
	if got := m.IDD6(); got != 0 {
		t.Errorf("IDD6 with zero Vdd: %v", got)
	}
}

func TestPowerDownZeroVdd(t *testing.T) {
	d := desc.Sample1GbDDR3()
	m, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	// Degenerate guard on the current conversion.
	m.D.Electrical.Vdd = 0
	if got := m.IDD2P(); got != 0 {
		t.Errorf("IDD2P with zero Vdd: %v", got)
	}
	m.D.Electrical.Vdd = 1.5
	_ = units.Voltage(0)
}
