package desc

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"drampower/internal/units"
)

// ParseError reports a syntax or semantic problem at a specific input
// position. Line is 1-based; Col is the 1-based column of the offending
// token, or 0 when the problem concerns the whole line. Parse, ParseString
// and ParseFile surface it (possibly wrapped with the file path), so
// callers recover the position with errors.As:
//
//	var pe *desc.ParseError
//	if errors.As(err, &pe) { editor.Jump(pe.Line, pe.Col) }
type ParseError struct {
	Line int
	Col  int
	Msg  string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	if e.Col > 0 {
		return fmt.Sprintf("desc: line %d, col %d: %s", e.Line, e.Col, e.Msg)
	}
	return fmt.Sprintf("desc: line %d: %s", e.Line, e.Msg)
}

// errMsg formats a ParseError message, dropping a leading "desc: " from
// embedded errors so Error() doesn't render the package prefix twice.
func errMsg(format string, args ...any) string {
	return strings.TrimPrefix(fmt.Sprintf(format, args...), "desc: ")
}

func errAt(n int, format string, args ...any) error {
	return &ParseError{Line: n, Msg: errMsg(format, args...)}
}

// errAtField positions the error at a specific token of the line.
func errAtField(n int, f field, format string, args ...any) error {
	return &ParseError{Line: n, Col: f.col, Msg: errMsg(format, args...)}
}

// ParseFile reads and parses a description file.
func ParseFile(path string) (*Description, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("desc: %v", err)
	}
	defer f.Close()
	d, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// ParseString parses a description from a string.
func ParseString(src string) (*Description, error) {
	return Parse(strings.NewReader(src))
}

// Parse reads a DRAM description in the input language of Section III.B.
// The returned description has been syntax-checked but not validated; call
// Description.Validate to run the semantic checks (the "syntax check" stage
// of Figure 4 covers both here).
func Parse(r io.Reader) (*Description, error) {
	lines, err := lex(r)
	if err != nil {
		return nil, err
	}
	return parseLines(lines)
}

// parseLines runs the description parser over pre-lexed lines (shared
// with ParseDocument, which splits a combined descriptor+calibration
// document before parsing each half).
func parseLines(lines []line) (*Description, error) {
	p := &parser{d: &Description{}}
	p.d.Floorplan.BlockWidth = make(map[string]units.Length)
	p.d.Floorplan.BlockHeight = make(map[string]units.Length)
	for _, ln := range lines {
		if err := p.line(ln); err != nil {
			return nil, err
		}
	}
	return p.d, nil
}

// secNone marks "outside any section"; the other sections are tracked by
// their header spelling ("FloorplanPhysical" etc.).
const secNone = ""

type parser struct {
	d       *Description
	section string
}

func (p *parser) line(ln line) error {
	head := ln.fields[0]
	if head.bare() {
		switch head.value {
		case "FloorplanPhysical", "FloorplanSignaling", "Technology",
			"Specification", "Electrical":
			if len(ln.fields) != 1 {
				return errAtField(ln.num, ln.fields[1], "section header %s takes no arguments", head.value)
			}
			p.section = head.value
			return nil
		case "Name":
			if len(ln.fields) < 2 {
				return errAtField(ln.num, head, "Name takes at least one argument")
			}
			parts := make([]string, 0, len(ln.fields)-1)
			for _, f := range ln.fields[1:] {
				if !f.bare() {
					return errAtField(ln.num, f, "Name takes bare words, got %q", f.text())
				}
				parts = append(parts, f.value)
			}
			p.d.Name = strings.Join(parts, " ")
			p.section = secNone
			return nil
		case "LogicBlock":
			p.section = secNone
			return p.logicBlock(ln)
		case "Pattern":
			p.section = secNone
			return p.pattern(ln)
		}
	}
	switch p.section {
	case "FloorplanPhysical":
		return p.floorplanPhysical(ln)
	case "FloorplanSignaling":
		return p.signaling(ln)
	case "Technology":
		return p.technology(ln)
	case "Specification":
		return p.specification(ln)
	case "Electrical":
		return p.electrical(ln)
	}
	return errAtField(ln.num, head, "unexpected directive %q outside any section", head.text())
}

// ---- attribute helpers ----

// attrs collects the key=value fields of a line and tracks which were used,
// so unknown attributes can be reported. Each attribute remembers the
// column of its field, so value errors point at the offending token.
type attrs struct {
	num  int
	m    map[string]string
	cols map[string]int
	used map[string]bool
	bare []string
}

func newAttrs(ln line, skip int) (*attrs, error) {
	a := &attrs{num: ln.num, m: map[string]string{},
		cols: map[string]int{}, used: map[string]bool{}}
	for _, f := range ln.fields[skip:] {
		if f.bare() {
			a.bare = append(a.bare, f.value)
			continue
		}
		if _, dup := a.m[f.key]; dup {
			return nil, errAtField(ln.num, f, "duplicate attribute %q", f.key)
		}
		a.m[f.key] = f.value
		a.cols[f.key] = f.col
	}
	return a, nil
}

// errKey positions an error at the named attribute's token.
func (a *attrs) errKey(key, format string, args ...any) error {
	return &ParseError{Line: a.num, Col: a.cols[key], Msg: errMsg(format, args...)}
}

func (a *attrs) has(key string) bool { _, ok := a.m[key]; return ok }

func (a *attrs) get(key string) (string, bool) {
	v, ok := a.m[key]
	if ok {
		a.used[key] = true
	}
	return v, ok
}

// leftover returns the unused attribute keys, leftmost first.
func (a *attrs) leftover() []string {
	var extra []string
	for k := range a.m {
		if !a.used[k] {
			extra = append(extra, k)
		}
	}
	sort.Slice(extra, func(i, j int) bool { return a.cols[extra[i]] < a.cols[extra[j]] })
	return extra
}

func (a *attrs) finish(context string) error {
	if extra := a.leftover(); len(extra) > 0 {
		return a.errKey(extra[0], "%s: unknown attribute %q", context, extra[0])
	}
	return nil
}

func (a *attrs) intAttr(key string, dst *int) error {
	v, ok := a.get(key)
	if !ok {
		return nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return a.errKey(key, "attribute %s: bad integer %q", key, v)
	}
	*dst = n
	return nil
}

func (a *attrs) lengthAttr(key string, dst *units.Length) error {
	v, ok := a.get(key)
	if !ok {
		return nil
	}
	l, err := units.ParseLength(v)
	if err != nil {
		return a.errKey(key, "attribute %s: %v", key, err)
	}
	*dst = l
	return nil
}

func (a *attrs) fractionAttr(key string, dst *float64) error {
	v, ok := a.get(key)
	if !ok {
		return nil
	}
	f, err := units.ParseFraction(v)
	if err != nil {
		return a.errKey(key, "attribute %s: %v", key, err)
	}
	*dst = f
	return nil
}

func (a *attrs) durationAttr(key string, dst *units.Duration) error {
	v, ok := a.get(key)
	if !ok {
		return nil
	}
	d, err := units.ParseDuration(v)
	if err != nil {
		return a.errKey(key, "attribute %s: %v", key, err)
	}
	*dst = d
	return nil
}

// ---- FloorplanPhysical ----

func (p *parser) floorplanPhysical(ln line) error {
	head := ln.fields[0]
	if !head.bare() {
		return errAtField(ln.num, head, "expected a floorplan directive, got %q", head.text())
	}
	fp := &p.d.Floorplan
	switch head.value {
	case "CellArray":
		a, err := newAttrs(ln, 1)
		if err != nil {
			return err
		}
		if v, ok := a.get("BL"); ok {
			ax, err := ParseAxis(v)
			if err != nil {
				return a.errKey("BL", "%v", err)
			}
			fp.BitlineDir = ax
		}
		if err := a.intAttr("BitsPerBL", &fp.BitsPerBitline); err != nil {
			return err
		}
		if err := a.intAttr("BitsPerLWL", &fp.BitsPerLocalWordline); err != nil {
			return err
		}
		if v, ok := a.get("BLtype"); ok {
			arch, err := ParseBitlineArch(v)
			if err != nil {
				return a.errKey("BLtype", "%v", err)
			}
			fp.Arch = arch
		}
		if err := a.lengthAttr("WLpitch", &fp.WordlinePitch); err != nil {
			return err
		}
		if err := a.lengthAttr("BLpitch", &fp.BitlinePitch); err != nil {
			return err
		}
		if err := a.fractionAttr("ActFraction", &fp.ActivationFraction); err != nil {
			return err
		}
		return a.finish("CellArray")
	case "Stripes":
		a, err := newAttrs(ln, 1)
		if err != nil {
			return err
		}
		if err := a.lengthAttr("BLSA", &fp.BLSAStripeWidth); err != nil {
			return err
		}
		if err := a.lengthAttr("LWD", &fp.LWDStripeWidth); err != nil {
			return err
		}
		return a.finish("Stripes")
	case "CSL":
		a, err := newAttrs(ln, 1)
		if err != nil {
			return err
		}
		if err := a.intAttr("blocks", &fp.BlocksPerCSL); err != nil {
			return err
		}
		return a.finish("CSL")
	case "Vertical", "Horizontal":
		return p.blockList(ln, head.value == "Vertical")
	case "SizeVertical", "SizeHorizontal":
		return p.blockSizes(ln, head.value == "SizeVertical")
	}
	return errAtField(ln.num, head, "unknown floorplan directive %q", head.value)
}

func (p *parser) blockList(ln line, vertical bool) error {
	// "Vertical blocks = A1 P1 P2 P1 A1" arrives as fields
	// [Vertical] [blocks=A1] [P1] [P2] [P1] [A1].
	if len(ln.fields) < 2 || ln.fields[1].key != "blocks" {
		return errAtField(ln.num, ln.fields[0], "expected 'blocks = <names...>'")
	}
	names := []string{ln.fields[1].value}
	for _, f := range ln.fields[2:] {
		if !f.bare() {
			return errAtField(ln.num, f, "unexpected attribute %q in block list", f.text())
		}
		names = append(names, f.value)
	}
	if names[0] == "" {
		return errAtField(ln.num, ln.fields[1], "empty block list")
	}
	if vertical {
		p.d.Floorplan.VerticalBlocks = names
	} else {
		p.d.Floorplan.HorizontalBlocks = names
	}
	return nil
}

func (p *parser) blockSizes(ln line, vertical bool) error {
	if len(ln.fields) < 2 {
		return errAtField(ln.num, ln.fields[0], "expected block sizes, e.g. 'SizeVertical A1=3396um'")
	}
	dst := p.d.Floorplan.BlockWidth
	if vertical {
		dst = p.d.Floorplan.BlockHeight
	}
	for _, f := range ln.fields[1:] {
		if f.bare() {
			return errAtField(ln.num, f, "expected name=size, got %q", f.text())
		}
		l, err := units.ParseLength(f.value)
		if err != nil {
			return errAtField(ln.num, f, "size of block %s: %v", f.key, err)
		}
		dst[f.key] = l
	}
	return nil
}

// ---- FloorplanSignaling ----

func (p *parser) signaling(ln line) error {
	head := ln.fields[0]
	if !head.bare() {
		return errAtField(ln.num, head, "expected a signal segment name, got %q", head.text())
	}
	kind, err := KindForBus(head.value)
	if err != nil {
		return errAtField(ln.num, head, "%v", err)
	}
	seg := Segment{Name: head.value, Kind: kind, Toggle: -1}
	a, err := newAttrs(ln, 1)
	if err != nil {
		return err
	}
	if v, ok := a.get("inside"); ok {
		ref, err := ParseBlockRef(v)
		if err != nil {
			return a.errKey("inside", "%v", err)
		}
		seg.Inside = &ref
		seg.Fraction = 1
	}
	if err := a.fractionAttr("fraction", &seg.Fraction); err != nil {
		return err
	}
	if v, ok := a.get("dir"); ok {
		ax, err := ParseAxis(v)
		if err != nil {
			return a.errKey("dir", "%v", err)
		}
		seg.Dir = ax
	}
	if v, ok := a.get("start"); ok {
		ref, err := ParseBlockRef(v)
		if err != nil {
			return a.errKey("start", "%v", err)
		}
		seg.Start = &ref
	}
	if v, ok := a.get("end"); ok {
		ref, err := ParseBlockRef(v)
		if err != nil {
			return a.errKey("end", "%v", err)
		}
		seg.End = &ref
	}
	if err := a.lengthAttr("NchW", &seg.BufNWidth); err != nil {
		return err
	}
	if err := a.lengthAttr("PchW", &seg.BufPWidth); err != nil {
		return err
	}
	if v, ok := a.get("mux"); ok {
		// "1:8" means the bus widens 8x downstream.
		frac, err := units.ParseFraction(v)
		if err != nil || frac <= 0 {
			return a.errKey("mux", "bad mux ratio %q", v)
		}
		if frac > 1 {
			seg.MuxRatio = int(frac + 0.5)
		} else {
			seg.MuxRatio = int(1/frac + 0.5)
		}
	}
	if err := a.fractionAttr("toggle", &seg.Toggle); err != nil {
		return err
	}
	if err := a.intAttr("wires", &seg.Wires); err != nil {
		return err
	}
	if err := a.fractionAttr("activefrac", &seg.ActiveFrac); err != nil {
		return err
	}
	if err := a.finish("signal " + seg.Name); err != nil {
		return err
	}
	p.d.Signals = append(p.d.Signals, seg)
	return nil
}

// ---- Technology ----

// technologySetters maps the input-language key of each technology
// parameter to a setter. The keys are the Table I names in compact form.
func technologySetters(t *Technology) map[string]func(string) error {
	lenSet := func(dst *units.Length) func(string) error {
		return func(v string) error {
			l, err := units.ParseLength(v)
			if err != nil {
				return err
			}
			*dst = l
			return nil
		}
	}
	capSet := func(dst *units.Capacitance) func(string) error {
		return func(v string) error {
			c, err := units.ParseCapacitance(v)
			if err != nil {
				return err
			}
			*dst = c
			return nil
		}
	}
	cplSet := func(dst *units.CapacitancePerLength) func(string) error {
		return func(v string) error {
			c, err := units.ParseCapacitancePerLength(v)
			if err != nil {
				return err
			}
			*dst = c
			return nil
		}
	}
	fracSet := func(dst *float64) func(string) error {
		return func(v string) error {
			f, err := units.ParseFraction(v)
			if err != nil {
				return err
			}
			*dst = f
			return nil
		}
	}
	intSet := func(dst *int) func(string) error {
		return func(v string) error {
			n, err := strconv.Atoi(v)
			if err != nil {
				return err
			}
			*dst = n
			return nil
		}
	}
	return map[string]func(string) error{
		"GateOxideLogic":      lenSet(&t.GateOxideLogic),
		"GateOxideHV":         lenSet(&t.GateOxideHV),
		"GateOxideCell":       lenSet(&t.GateOxideCell),
		"MinGateLengthLogic":  lenSet(&t.MinGateLengthLogic),
		"JunctionCapLogic":    cplSet(&t.JunctionCapLogic),
		"MinGateLengthHV":     lenSet(&t.MinGateLengthHV),
		"JunctionCapHV":       cplSet(&t.JunctionCapHV),
		"CellAccessLength":    lenSet(&t.CellAccessLength),
		"CellAccessWidth":     lenSet(&t.CellAccessWidth),
		"BitlineCap":          capSet(&t.BitlineCap),
		"CellCap":             capSet(&t.CellCap),
		"BitlineToWLShare":    fracSet(&t.BitlineToWLShare),
		"BitsPerCSL":          intSet(&t.BitsPerCSL),
		"WireCapMWL":          cplSet(&t.WireCapMWL),
		"MWLPredecodeRatio":   fracSet(&t.MWLPredecodeRatio),
		"MWLDecoderNMOS":      lenSet(&t.MWLDecoderNMOS),
		"MWLDecoderPMOS":      lenSet(&t.MWLDecoderPMOS),
		"MWLDecoderActivity":  fracSet(&t.MWLDecoderActivity),
		"WLControlLoadNMOS":   lenSet(&t.WLControlLoadNMOS),
		"WLControlLoadPMOS":   lenSet(&t.WLControlLoadPMOS),
		"SWDriverNMOS":        lenSet(&t.SWDriverNMOS),
		"SWDriverPMOS":        lenSet(&t.SWDriverPMOS),
		"SWDriverRestore":     lenSet(&t.SWDriverRestore),
		"WireCapLWL":          cplSet(&t.WireCapLWL),
		"BLSASenseNMOSWidth":  lenSet(&t.BLSASenseNMOSWidth),
		"BLSASenseNMOSLength": lenSet(&t.BLSASenseNMOSLength),
		"BLSASensePMOSWidth":  lenSet(&t.BLSASensePMOSWidth),
		"BLSASensePMOSLength": lenSet(&t.BLSASensePMOSLength),
		"BLSAEqualizeWidth":   lenSet(&t.BLSAEqualizeWidth),
		"BLSAEqualizeLength":  lenSet(&t.BLSAEqualizeLength),
		"BLSABitSwitchWidth":  lenSet(&t.BLSABitSwitchWidth),
		"BLSABitSwitchLength": lenSet(&t.BLSABitSwitchLength),
		"BLSAMuxWidth":        lenSet(&t.BLSAMuxWidth),
		"BLSAMuxLength":       lenSet(&t.BLSAMuxLength),
		"BLSANSetWidth":       lenSet(&t.BLSANSetWidth),
		"BLSANSetLength":      lenSet(&t.BLSANSetLength),
		"BLSAPSetWidth":       lenSet(&t.BLSAPSetWidth),
		"BLSAPSetLength":      lenSet(&t.BLSAPSetLength),
		"WireCapSignal":       cplSet(&t.WireCapSignal),
	}
}

// TechnologyParameterNames returns the input-language names of all
// technology parameters in a stable order (used by the sensitivity sweep
// and by documentation).
func TechnologyParameterNames() []string {
	return []string{
		"GateOxideLogic", "GateOxideHV", "GateOxideCell",
		"MinGateLengthLogic", "JunctionCapLogic", "MinGateLengthHV",
		"JunctionCapHV", "CellAccessLength", "CellAccessWidth",
		"BitlineCap", "CellCap", "BitlineToWLShare", "BitsPerCSL",
		"WireCapMWL", "MWLPredecodeRatio", "MWLDecoderNMOS",
		"MWLDecoderPMOS", "MWLDecoderActivity", "WLControlLoadNMOS",
		"WLControlLoadPMOS", "SWDriverNMOS", "SWDriverPMOS",
		"SWDriverRestore", "WireCapLWL",
		"BLSASenseNMOSWidth", "BLSASenseNMOSLength",
		"BLSASensePMOSWidth", "BLSASensePMOSLength",
		"BLSAEqualizeWidth", "BLSAEqualizeLength",
		"BLSABitSwitchWidth", "BLSABitSwitchLength",
		"BLSAMuxWidth", "BLSAMuxLength",
		"BLSANSetWidth", "BLSANSetLength",
		"BLSAPSetWidth", "BLSAPSetLength",
		"WireCapSignal",
	}
}

func (p *parser) technology(ln line) error {
	if len(ln.fields) != 2 || !ln.fields[0].bare() || !ln.fields[1].bare() {
		return errAt(ln.num, "technology parameters are 'Name value' lines")
	}
	key, val := ln.fields[0].value, ln.fields[1].value
	set, ok := technologySetters(&p.d.Technology)[key]
	if !ok {
		return errAtField(ln.num, ln.fields[0], "unknown technology parameter %q", key)
	}
	if err := set(val); err != nil {
		return errAtField(ln.num, ln.fields[1], "technology parameter %s: %v", key, err)
	}
	return nil
}

// ---- Specification ----

func (p *parser) specification(ln line) error {
	head := ln.fields[0]
	if !head.bare() {
		return errAtField(ln.num, head, "expected a specification directive, got %q", head.text())
	}
	s := &p.d.Spec
	a, err := newAttrs(ln, 1)
	if err != nil {
		return err
	}
	switch head.value {
	case "IO":
		if err := a.intAttr("width", &s.IOWidth); err != nil {
			return err
		}
		if v, ok := a.get("datarate"); ok {
			r, err := units.ParseDataRate(v)
			if err != nil {
				return a.errKey("datarate", "datarate: %v", err)
			}
			s.DataRate = r
		}
		return a.finish("IO")
	case "Clock":
		if err := a.intAttr("number", &s.ClockWires); err != nil {
			return err
		}
		if v, ok := a.get("frequency"); ok {
			f, err := units.ParseFrequency(v)
			if err != nil {
				return a.errKey("frequency", "frequency: %v", err)
			}
			s.DataClock = f
		}
		return a.finish("Clock")
	case "Control":
		if v, ok := a.get("frequency"); ok {
			f, err := units.ParseFrequency(v)
			if err != nil {
				return a.errKey("frequency", "frequency: %v", err)
			}
			s.ControlClock = f
		}
		if err := a.intAttr("bankadd", &s.BankAddrBits); err != nil {
			return err
		}
		if err := a.intAttr("rowadd", &s.RowAddrBits); err != nil {
			return err
		}
		if err := a.intAttr("coladd", &s.ColAddrBits); err != nil {
			return err
		}
		if err := a.intAttr("misc", &s.MiscCtrlSignals); err != nil {
			return err
		}
		return a.finish("Control")
	case "Burst":
		if err := a.intAttr("length", &s.BurstLength); err != nil {
			return err
		}
		return a.finish("Burst")
	case "Timing":
		for key, dst := range map[string]*units.Duration{
			"tRC": &s.RowCycle, "tRCD": &s.RowToColumnDelay,
			"tRP": &s.PrechargeTime, "CL": &s.CASLatency,
			"tFAW": &s.FourBankWindow, "tRRD": &s.RowToRowDelay,
			"tREFI": &s.RefreshInterval, "tRFC": &s.RefreshCycle,
		} {
			if err := a.durationAttr(key, dst); err != nil {
				return err
			}
		}
		return a.finish("Timing")
	}
	return errAtField(ln.num, head, "unknown specification directive %q", head.value)
}

// ---- Electrical ----

func (p *parser) electrical(ln line) error {
	head := ln.fields[0]
	if !head.bare() {
		return errAtField(ln.num, head, "expected an electrical directive, got %q", head.text())
	}
	el := &p.d.Electrical
	switch head.value {
	case "Vdd", "Vint", "Vbl", "Vpp":
		if len(ln.fields) < 2 || !ln.fields[1].bare() {
			return errAtField(ln.num, head, "%s needs a voltage, e.g. '%s 1.5V'", head.value, head.value)
		}
		v, err := units.ParseVoltage(ln.fields[1].value)
		if err != nil {
			return errAtField(ln.num, ln.fields[1], "%s: %v", head.value, err)
		}
		a, err := newAttrs(ln, 2)
		if err != nil {
			return err
		}
		eff := 1.0
		if err := a.fractionAttr("eff", &eff); err != nil {
			return err
		}
		if err := a.finish(head.value); err != nil {
			return err
		}
		switch head.value {
		case "Vdd":
			el.Vdd = v
		case "Vint":
			el.Vint, el.EffInt = v, eff
		case "Vbl":
			el.Vbl, el.EffBl = v, eff
		case "Vpp":
			el.Vpp, el.EffPp = v, eff
		}
		return nil
	case "ConstantCurrent":
		if len(ln.fields) != 2 || !ln.fields[1].bare() {
			return errAtField(ln.num, head, "ConstantCurrent needs a current, e.g. 'ConstantCurrent 3mA'")
		}
		v := ln.fields[1].value
		// Currents use the same SI grammar with base unit "A".
		num, err := parseCurrent(v)
		if err != nil {
			return errAtField(ln.num, ln.fields[1], "ConstantCurrent: %v", err)
		}
		el.ConstantCurrent = num
		return nil
	}
	return errAtField(ln.num, head, "unknown electrical directive %q", head.value)
}

func parseCurrent(s string) (units.Current, error) {
	// Reuse the voltage parser's grammar by substituting the unit letter.
	if strings.HasSuffix(s, "A") {
		v, err := units.ParseVoltage(strings.TrimSuffix(s, "A") + "V")
		return units.Current(v), err
	}
	v, err := units.ParseVoltage(s)
	return units.Current(v), err
}

// ---- LogicBlock ----

func (p *parser) logicBlock(ln line) error {
	b := LogicBlock{TransistorsPerGate: 4, Toggle: 0.5, GateDensity: 0.25, WiringDensity: 0.4}
	a, err := newAttrs(ln, 1)
	if err != nil {
		return err
	}
	if v, ok := a.get("name"); ok {
		b.Name = v
	}
	if err := a.intAttr("gates", &b.Gates); err != nil {
		return err
	}
	if err := a.lengthAttr("nmos", &b.AvgNMOSWidth); err != nil {
		return err
	}
	if err := a.lengthAttr("pmos", &b.AvgPMOSWidth); err != nil {
		return err
	}
	if err := a.fractionAttr("pergate", &b.TransistorsPerGate); err != nil {
		return err
	}
	if err := a.fractionAttr("density", &b.GateDensity); err != nil {
		return err
	}
	if err := a.fractionAttr("wiring", &b.WiringDensity); err != nil {
		return err
	}
	if err := a.fractionAttr("toggle", &b.Toggle); err != nil {
		return err
	}
	if v, ok := a.get("active"); ok && v != "always" {
		for _, opName := range strings.Split(v, ",") {
			op, err := ParseOp(opName)
			if err != nil {
				return a.errKey("active", "logic block %s: %v", b.Name, err)
			}
			b.ActiveDuring = append(b.ActiveDuring, op)
		}
	}
	if err := a.finish("LogicBlock " + b.Name); err != nil {
		return err
	}
	if b.Name == "" {
		return errAtField(ln.num, ln.fields[0], "LogicBlock needs a name attribute")
	}
	p.d.LogicBlocks = append(p.d.LogicBlocks, b)
	return nil
}

// ---- Pattern ----

func (p *parser) pattern(ln line) error {
	// "Pattern loop= act nop wrt nop rd nop pre nop" arrives as
	// [Pattern] [loop=act] [nop] [wrt] ...
	if len(ln.fields) < 2 || ln.fields[1].key != "loop" {
		return errAtField(ln.num, ln.fields[0], "expected 'Pattern loop= <ops...>'")
	}
	names := []field{{value: ln.fields[1].value, col: ln.fields[1].col}}
	for _, f := range ln.fields[2:] {
		if !f.bare() {
			return errAtField(ln.num, f, "unexpected attribute %q in pattern", f.text())
		}
		names = append(names, f)
	}
	var loop []Op
	for _, n := range names {
		if n.value == "" {
			continue
		}
		op, err := ParseOp(n.value)
		if err != nil {
			return errAtField(ln.num, n, "%v", err)
		}
		loop = append(loop, op)
	}
	if len(loop) == 0 {
		return errAtField(ln.num, ln.fields[0], "empty pattern loop")
	}
	p.d.Pattern.Loop = loop
	return nil
}
