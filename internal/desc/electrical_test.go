package desc

import (
	"math"
	"testing"
)

func TestDomainVoltageAndSafeEffClampsZero(t *testing.T) {
	// An unparameterized generator (eff == 0) must fall back to a
	// pass-through efficiency of 1 instead of dividing energy by zero.
	el := Electrical{Vdd: 1.5, Vint: 1.2, Vbl: 0.6, Vpp: 2.9,
		EffInt: 0, EffBl: -0.3, EffPp: 0.5}

	v, eff := el.DomainVoltageAndSafeEff(DomainVint)
	if math.Abs(float64(v)-1.2) > 1e-12 || eff != 1 {
		t.Errorf("Vint zero eff: got v=%v eff=%g, want 1.2, 1", v, eff)
	}
	v, eff = el.DomainVoltageAndSafeEff(DomainVbl)
	if math.Abs(float64(v)-0.6) > 1e-12 || eff != 1 {
		t.Errorf("Vbl negative eff: got v=%v eff=%g, want 0.6, 1", v, eff)
	}
	// A real efficiency passes through unchanged.
	v, eff = el.DomainVoltageAndSafeEff(DomainVpp)
	if math.Abs(float64(v)-2.9) > 1e-12 || math.Abs(eff-0.5) > 1e-12 {
		t.Errorf("Vpp: got v=%v eff=%g, want 2.9, 0.5", v, eff)
	}
	// Vdd is always a direct connection.
	if _, eff := el.DomainVoltageAndSafeEff(DomainVdd); eff != 1 {
		t.Errorf("Vdd eff: got %g, want 1", eff)
	}

	// Safe and unsafe variants agree on voltage for every domain.
	for _, d := range AllDomains {
		v1, _ := el.DomainVoltageAndEff(d)
		v2, _ := el.DomainVoltageAndSafeEff(d)
		if v1 != v2 {
			t.Errorf("domain %v: voltage differs (%v vs %v)", d, v1, v2)
		}
	}
}
