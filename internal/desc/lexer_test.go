package desc

import (
	"strings"
	"testing"
)

func lexString(t *testing.T, src string) []line {
	t.Helper()
	lines, err := lex(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return lines
}

func TestLexBasics(t *testing.T) {
	lines := lexString(t, "A b=1 c\n\n# comment only\nD\n")
	if len(lines) != 2 {
		t.Fatalf("lines: got %d, want 2", len(lines))
	}
	if lines[0].num != 1 || lines[1].num != 4 {
		t.Errorf("line numbers: %d, %d", lines[0].num, lines[1].num)
	}
	f := lines[0].fields
	if len(f) != 3 || !f[0].bare() || f[0].value != "A" {
		t.Fatalf("fields: %+v", f)
	}
	if f[1].key != "b" || f[1].value != "1" {
		t.Errorf("attr: %+v", f[1])
	}
	if !f[2].bare() || f[2].value != "c" {
		t.Errorf("bare: %+v", f[2])
	}
}

func TestLexEqualsNormalization(t *testing.T) {
	cases := []struct {
		src  string
		key  string
		val  string
		rest int // additional fields after the head + attr
	}{
		{"X blocks = A1 P1", "blocks", "A1", 1},
		{"X blocks =A1 P1", "blocks", "A1", 1},
		{"X blocks= A1 P1", "blocks", "A1", 1},
		{"X blocks=A1 P1", "blocks", "A1", 1},
		{"X loop= act nop", "loop", "act", 1},
	}
	for _, c := range cases {
		lines := lexString(t, c.src)
		f := lines[0].fields
		if len(f) != 2+c.rest {
			t.Errorf("%q: fields %+v", c.src, f)
			continue
		}
		if f[1].key != c.key || f[1].value != c.val {
			t.Errorf("%q: attr %+v, want %s=%s", c.src, f[1], c.key, c.val)
		}
	}
}

func TestLexTrailingEquals(t *testing.T) {
	lines := lexString(t, "X key=\n")
	f := lines[0].fields
	if len(f) != 2 || f[1].key != "key" || f[1].value != "" {
		t.Errorf("trailing equals: %+v", f)
	}
}

func TestLexDanglingEquals(t *testing.T) {
	if _, err := lex(strings.NewReader("= oops\n")); err == nil {
		t.Error("expected error for leading '='")
	}
	if _, err := lex(strings.NewReader("a=1 = b\n")); err == nil {
		t.Error("expected error for '=' after an attribute")
	}
}

func TestLexComments(t *testing.T) {
	lines := lexString(t, "A b=1 # trailing\nC // slashes\n#only\n//only\n")
	if len(lines) != 2 {
		t.Fatalf("lines: %d", len(lines))
	}
	if len(lines[0].fields) != 2 {
		t.Errorf("comment not stripped: %+v", lines[0].fields)
	}
}

func TestLexLongLine(t *testing.T) {
	// The scanner buffer must handle long block lists.
	var sb strings.Builder
	sb.WriteString("Horizontal blocks = ")
	for i := 0; i < 5000; i++ {
		sb.WriteString("A1 ")
	}
	sb.WriteByte('\n')
	lines := lexString(t, sb.String())
	if len(lines[0].fields) != 5001 {
		t.Errorf("fields: %d", len(lines[0].fields))
	}
}

func TestFieldText(t *testing.T) {
	f := field{key: "a", value: "b"}
	if f.text() != "a=b" {
		t.Errorf("text: %q", f.text())
	}
	f = field{value: "bare"}
	if f.text() != "bare" {
		t.Errorf("text: %q", f.text())
	}
}
