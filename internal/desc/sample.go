package desc

import "drampower/internal/units"

// Sample1GbDDR3 returns a complete description of a 1 Gb x16 DDR3-1600
// device in a 55 nm technology, modeled on the floorplan of Figure 1 of
// the paper: eight banks in a 4×2 arrangement, row logic between the
// banks, column logic at the bank edges facing the center stripe, and the
// pads, interface and control in the horizontal center stripe.
//
// The values are typical for the 55 nm generation (Section III.C / IV.A);
// the miscellaneous logic gate counts are the calibration ("fit")
// parameters of Section III.B.5. This device is the reference input for
// unit tests throughout the repository; the generation builder in package
// scaling derives all other devices.
func Sample1GbDDR3() *Description {
	d := &Description{Name: "1G-DDR3-x16-55nm"}

	d.Floorplan = Floorplan{
		BitlineDir:           Vertical,
		BitsPerBitline:       512,
		BitsPerLocalWordline: 512,
		Arch:                 Open,
		BlocksPerCSL:         1,
		WordlinePitch:        units.Nanometers(165),
		BitlinePitch:         units.Nanometers(110),
		BLSAStripeWidth:      units.Micrometers(20),
		LWDStripeWidth:       units.Micrometers(3),
		// x: bank, row logic, bank, center spine, bank, row logic, bank
		HorizontalBlocks: []string{"A1", "R1", "A1", "C0", "A1", "R1", "A1"},
		// y: bank strip, column logic, center stripe, column logic, bank strip
		VerticalBlocks: []string{"A1", "P1", "P2", "P1", "A1"},
		BlockWidth: map[string]units.Length{
			"A1": units.Micrometers(1900),
			"R1": units.Micrometers(150),
			"C0": units.Micrometers(260),
			"P1": units.Micrometers(150), // not used horizontally
			"P2": units.Micrometers(150),
		},
		BlockHeight: map[string]units.Length{
			"A1": units.Micrometers(1700),
			"P1": units.Micrometers(180),
			"P2": units.Micrometers(700),
			"R1": units.Micrometers(1700),
			"C0": units.Micrometers(1700),
		},
	}

	// Signaling floorplan (Section III.B.2, Figure 1's write bus example).
	// Data path: 1:8 deserializer near the pads in the center stripe, a hop
	// along the center stripe to the bank column, up through the column
	// logic, then master array data lines across the bank.
	seg := func(s Segment) Segment { s.Toggle = -1; return s }
	ref := func(x, y int) *BlockRef { return &BlockRef{X: x, Y: y} }
	d.Signals = []Segment{
		// Write path.
		seg(Segment{Name: "DataW0", Kind: SigDataWrite, Inside: ref(3, 2), Fraction: 0.25, Dir: Horizontal, MuxRatio: 8,
			BufNWidth: units.Micrometers(9.6), BufPWidth: units.Micrometers(19.2)}),
		seg(Segment{Name: "DataW1", Kind: SigDataWrite, Start: ref(3, 2), End: ref(1, 2),
			BufNWidth: units.Micrometers(9.6), BufPWidth: units.Micrometers(19.2)}),
		seg(Segment{Name: "DataW2", Kind: SigDataWrite, Start: ref(1, 2), End: ref(1, 1),
			BufNWidth: units.Micrometers(4.8), BufPWidth: units.Micrometers(9.6)}),
		seg(Segment{Name: "DataW3", Kind: SigDataWrite, Inside: ref(0, 0), Fraction: 0.5, Dir: Horizontal,
			BufNWidth: units.Micrometers(4.8), BufPWidth: units.Micrometers(9.6)}),
		// Read path mirrors the write path.
		seg(Segment{Name: "DataR0", Kind: SigDataRead, Inside: ref(0, 0), Fraction: 0.5, Dir: Horizontal,
			BufNWidth: units.Micrometers(4.8), BufPWidth: units.Micrometers(9.6)}),
		seg(Segment{Name: "DataR1", Kind: SigDataRead, Start: ref(1, 1), End: ref(1, 2),
			BufNWidth: units.Micrometers(4.8), BufPWidth: units.Micrometers(9.6)}),
		seg(Segment{Name: "DataR2", Kind: SigDataRead, Start: ref(1, 2), End: ref(3, 2),
			BufNWidth: units.Micrometers(9.6), BufPWidth: units.Micrometers(19.2)}),
		seg(Segment{Name: "DataR3", Kind: SigDataRead, Inside: ref(3, 2), Fraction: 0.25, Dir: Horizontal, MuxRatio: 8,
			BufNWidth: units.Micrometers(9.6), BufPWidth: units.Micrometers(19.2)}),
		// Clock trunk along the center stripe (true + complement).
		seg(Segment{Name: "Clk0", Kind: SigClock, Start: ref(0, 2), End: ref(6, 2), Wires: 2,
			BufNWidth: units.Micrometers(9.6), BufPWidth: units.Micrometers(19.2)}),
		// Command/control distribution along the center stripe.
		seg(Segment{Name: "Ctrl0", Kind: SigControl, Start: ref(0, 2), End: ref(6, 2),
			BufNWidth: units.Micrometers(2.4), BufPWidth: units.Micrometers(4.8)}),
		// Row address: center stripe to the row logic spines.
		seg(Segment{Name: "AddrRow0", Kind: SigAddrRow, Start: ref(3, 2), End: ref(1, 2),
			BufNWidth: units.Micrometers(2.4), BufPWidth: units.Micrometers(4.8)}),
		seg(Segment{Name: "AddrRow1", Kind: SigAddrRow, Start: ref(1, 2), End: ref(1, 0),
			BufNWidth: units.Micrometers(2.4), BufPWidth: units.Micrometers(4.8)}),
		// Column address: center stripe to the column logic stripes.
		seg(Segment{Name: "AddrCol0", Kind: SigAddrCol, Start: ref(3, 2), End: ref(1, 1),
			BufNWidth: units.Micrometers(2.4), BufPWidth: units.Micrometers(4.8)}),
		// Bank address distributed with the control bus.
		seg(Segment{Name: "AddrBank0", Kind: SigAddrBank, Start: ref(3, 2), End: ref(1, 2),
			BufNWidth: units.Micrometers(2.4), BufPWidth: units.Micrometers(4.8)}),
	}

	d.Technology = Technology{
		GateOxideLogic:     units.Nanometers(4),
		GateOxideHV:        units.Nanometers(7),
		GateOxideCell:      units.Nanometers(6.5),
		MinGateLengthLogic: units.Nanometers(90),
		JunctionCapLogic:   units.FemtofaradsPerMicrometer(0.8),
		MinGateLengthHV:    units.Nanometers(250),
		JunctionCapHV:      units.FemtofaradsPerMicrometer(1.2),
		CellAccessLength:   units.Nanometers(100),
		CellAccessWidth:    units.Nanometers(55),
		BitlineCap:         units.Femtofarads(90),
		CellCap:            units.Femtofarads(25),
		BitlineToWLShare:   0.30,
		BitsPerCSL:         8,
		WireCapMWL:         units.FemtofaradsPerMicrometer(0.25),
		MWLPredecodeRatio:  0.25,
		MWLDecoderNMOS:     units.Micrometers(1.0),
		MWLDecoderPMOS:     units.Micrometers(2.0),
		MWLDecoderActivity: 0.25,
		WLControlLoadNMOS:  units.Micrometers(2.0),
		WLControlLoadPMOS:  units.Micrometers(4.0),
		SWDriverNMOS:       units.Micrometers(0.6),
		SWDriverPMOS:       units.Micrometers(1.2),
		SWDriverRestore:    units.Micrometers(0.3),
		WireCapLWL:         units.FemtofaradsPerMicrometer(0.15),

		BLSASenseNMOSWidth:  units.Micrometers(0.7),
		BLSASenseNMOSLength: units.Nanometers(120),
		BLSASensePMOSWidth:  units.Micrometers(0.9),
		BLSASensePMOSLength: units.Nanometers(120),
		BLSAEqualizeWidth:   units.Micrometers(0.3),
		BLSAEqualizeLength:  units.Nanometers(90),
		BLSABitSwitchWidth:  units.Micrometers(0.5),
		BLSABitSwitchLength: units.Nanometers(90),
		BLSAMuxWidth:        0, // open bitline: no bitline multiplexer
		BLSAMuxLength:       0,
		BLSANSetWidth:       units.Micrometers(0.8),
		BLSANSetLength:      units.Nanometers(120),
		BLSAPSetWidth:       units.Micrometers(0.8),
		BLSAPSetLength:      units.Nanometers(120),

		WireCapSignal: units.FemtofaradsPerMicrometer(0.20),
	}

	d.Spec = Specification{
		IOWidth:          16,
		DataRate:         units.Gbps(1.6),
		ClockWires:       2,
		DataClock:        units.Megahertz(800),
		ControlClock:     units.Megahertz(800),
		BankAddrBits:     3,
		RowAddrBits:      13,
		ColAddrBits:      10,
		MiscCtrlSignals:  8,
		BurstLength:      8,
		RowCycle:         units.Nanoseconds(48.75),
		RowToColumnDelay: units.Nanoseconds(13.75),
		PrechargeTime:    units.Nanoseconds(13.75),
		CASLatency:       units.Nanoseconds(13.75),
		FourBankWindow:   units.Nanoseconds(40),
		RowToRowDelay:    units.Nanoseconds(7.5),
		RefreshInterval:  units.Duration(7.8 * units.Micro),
		RefreshCycle:     units.Nanoseconds(110),
	}

	d.Electrical = Electrical{
		Vdd:  1.5,
		Vint: 1.3,
		Vbl:  1.1,
		Vpp:  2.9,
		// Charge-transfer efficiencies: the regulators pass charge nearly
		// one to one; the Vpp charge pump doubles, drawing two units of
		// supply charge per unit delivered.
		EffInt: 0.95,
		EffBl:  0.90,
		EffPp:  0.50,
		// DLL bias, input receivers and the rest of the power system: the
		// constant sink of Table I ("used e.g. for reference currents,
		// power system").
		ConstantCurrent: units.Milliamps(12),
	}

	// Miscellaneous peripheral logic (fit parameters, Section III.B.5).
	d.LogicBlocks = []LogicBlock{
		{Name: "clocktree", Gates: 2400, AvgNMOSWidth: units.Micrometers(0.6),
			AvgPMOSWidth: units.Micrometers(1.2), TransistorsPerGate: 4,
			GateDensity: 0.30, WiringDensity: 0.45, Toggle: 0.6},
		{Name: "control", Gates: 4800, AvgNMOSWidth: units.Micrometers(0.5),
			AvgPMOSWidth: units.Micrometers(1.0), TransistorsPerGate: 4,
			GateDensity: 0.25, WiringDensity: 0.40, Toggle: 0.2},
		{Name: "rowlogic", Gates: 12000, AvgNMOSWidth: units.Micrometers(0.5),
			AvgPMOSWidth: units.Micrometers(1.0), TransistorsPerGate: 4,
			GateDensity: 0.25, WiringDensity: 0.40, Toggle: 0.8,
			ActiveDuring: []Op{OpActivate, OpPrecharge, OpRefresh}},
		{Name: "columnlogic", Gates: 21600, AvgNMOSWidth: units.Micrometers(0.5),
			AvgPMOSWidth: units.Micrometers(1.0), TransistorsPerGate: 4,
			GateDensity: 0.25, WiringDensity: 0.40, Toggle: 0.25,
			ActiveDuring: []Op{OpRead, OpWrite}},
		{Name: "interface", Gates: 24000, AvgNMOSWidth: units.Micrometers(0.6),
			AvgPMOSWidth: units.Micrometers(1.2), TransistorsPerGate: 4,
			GateDensity: 0.30, WiringDensity: 0.45, Toggle: 0.5,
			ActiveDuring: []Op{OpRead, OpWrite}},
	}

	d.Pattern = Pattern{Loop: []Op{
		OpActivate, OpNop, OpWrite, OpNop, OpRead, OpNop, OpPrecharge, OpNop,
	}}

	return d
}
