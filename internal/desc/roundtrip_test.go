package desc

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"drampower/internal/units"
)

// TestRoundTripSample checks Parse(Format(d)) == d for the sample device.
func TestRoundTripSample(t *testing.T) {
	d := Sample1GbDDR3()
	src := Format(d)
	back, err := ParseString(src)
	if err != nil {
		t.Fatalf("reparsing formatted sample: %v\n%s", err, src)
	}
	diffDescriptions(t, d, back)
}

// TestRoundTripFixpoint checks Format(Parse(Format(d))) == Format(d).
func TestRoundTripFixpoint(t *testing.T) {
	d := Sample1GbDDR3()
	once := Format(d)
	back, err := ParseString(once)
	if err != nil {
		t.Fatal(err)
	}
	twice := Format(back)
	if once != twice {
		t.Errorf("Format is not a fixpoint:\n--- once ---\n%s\n--- twice ---\n%s", once, twice)
	}
}

// TestRoundTripPerturbed fuzzes numeric fields and re-checks the round trip,
// a property test over the serializer precision.
func TestRoundTripPerturbed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 25; i++ {
		d := Sample1GbDDR3()
		scale := 0.5 + rng.Float64()
		d.Technology.BitlineCap = d.Technology.BitlineCap.Times(scale)
		d.Technology.CellCap = d.Technology.CellCap.Times(2 - scale + 0.01)
		d.Electrical.Vdd *= units.Voltage(0.9 + 0.2*rng.Float64())
		d.Spec.IOWidth = []int{4, 8, 16, 32}[rng.Intn(4)]
		d.Floorplan.BitsPerBitline = 256 << uint(rng.Intn(2))
		back, err := ParseString(Format(d))
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		diffDescriptions(t, d, back)
		if t.Failed() {
			t.Fatalf("failed at iteration %d", i)
		}
	}
}

// diffDescriptions compares two descriptions field by field with a small
// relative tolerance on floats (serialization uses %g, which is exact for
// float64, so exact equality is actually expected; the tolerance guards
// against platform printf differences).
func diffDescriptions(t *testing.T, a, b *Description) {
	t.Helper()
	av := reflect.ValueOf(*a)
	bv := reflect.ValueOf(*b)
	diffValue(t, "Description", av, bv)
}

func diffValue(t *testing.T, path string, a, b reflect.Value) {
	t.Helper()
	if a.Type() != b.Type() {
		t.Errorf("%s: type mismatch %v vs %v", path, a.Type(), b.Type())
		return
	}
	switch a.Kind() {
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			diffValue(t, path+"."+a.Type().Field(i).Name, a.Field(i), b.Field(i))
		}
	case reflect.Slice:
		if a.Len() != b.Len() {
			t.Errorf("%s: length %d vs %d", path, a.Len(), b.Len())
			return
		}
		for i := 0; i < a.Len(); i++ {
			diffValue(t, pathIndex(path, i), a.Index(i), b.Index(i))
		}
	case reflect.Map:
		if a.Len() != b.Len() {
			t.Errorf("%s: map length %d vs %d", path, a.Len(), b.Len())
			return
		}
		for _, k := range a.MapKeys() {
			bvv := b.MapIndex(k)
			if !bvv.IsValid() {
				t.Errorf("%s: key %v missing", path, k)
				continue
			}
			diffValue(t, path+"["+k.String()+"]", a.MapIndex(k), bvv)
		}
	case reflect.Ptr:
		if a.IsNil() != b.IsNil() {
			t.Errorf("%s: nil-ness differs", path)
			return
		}
		if !a.IsNil() {
			diffValue(t, path, a.Elem(), b.Elem())
		}
	case reflect.Float64, reflect.Float32:
		af, bf := a.Float(), b.Float()
		if math.Abs(af-bf) > 1e-9*math.Abs(af)+1e-30 {
			t.Errorf("%s: %g vs %g", path, af, bf)
		}
	default:
		ai, bi := a.Interface(), b.Interface()
		if !reflect.DeepEqual(ai, bi) {
			t.Errorf("%s: %v vs %v", path, ai, bi)
		}
	}
}

func pathIndex(path string, i int) string {
	return path + "[" + string(rune('0'+i%10)) + "]"
}

// TestRoundTripSchemeFields covers the partial-activation and segmented-bus
// attributes the Section V scheme transforms set.
func TestRoundTripSchemeFields(t *testing.T) {
	d := Sample1GbDDR3()
	d.Floorplan.ActivationFraction = 0.125
	d.Signals[0].ActiveFrac = 0.55
	back, err := ParseString(Format(d))
	if err != nil {
		t.Fatal(err)
	}
	if back.Floorplan.ActivationFraction != 0.125 {
		t.Errorf("activation fraction: got %g", back.Floorplan.ActivationFraction)
	}
	if back.Signals[0].ActiveFrac != 0.55 {
		t.Errorf("active fraction: got %g", back.Signals[0].ActiveFrac)
	}
	diffDescriptions(t, d, back)
}

// TestRoundTripMultiWordName covers generation-builder names with spaces.
func TestRoundTripMultiWordName(t *testing.T) {
	d := Sample1GbDDR3()
	d.Name = "2G DDR3 x16 1600Mbps 55nm"
	back, err := ParseString(Format(d))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != d.Name {
		t.Errorf("name: got %q, want %q", back.Name, d.Name)
	}
}
