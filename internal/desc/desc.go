// Package desc implements the DRAM description language of Vogelsang
// (MICRO 2010), Section III.B. A Description captures everything Table I of
// the paper lists: the physical floorplan, the signaling floorplan, the
// technology, the interface specification, the basic electrical information,
// the peripheral ("miscellaneous") logic blocks and the command pattern.
//
// Descriptions are usually read from an input file (see Parse) whose syntax
// follows the excerpts printed in the paper:
//
//	FloorplanPhysical
//	  CellArray BL=v BitsPerBL=512 BLtype=open
//	  CellArray WLpitch=165nm BLpitch=110nm
//	  Vertical blocks = A1 P1 P2 P1 A1
//	  SizeVertical A1=3396um P1=200um P2=530um
//	FloorplanSignaling
//	  DataW0 inside=0_2 fraction=25% dir=h mux=1:8
//	  DataW1 start=0_2 end=3_2 PchW=19.2um NchW=9.6um
//	Specification
//	  IO width=16 datarate=1.6Gbps
//	  Pattern loop= act nop wrt nop rd nop pre nop
//
// The package is pure data: geometric reasoning lives in package geom and
// the power calculation in package core.
package desc

import (
	"fmt"
	"strings"

	"drampower/internal/units"
)

// Axis selects one of the two floorplan directions.
type Axis int

// Floorplan axes. Horizontal runs along the pad row / center stripe,
// Vertical is perpendicular to it (see Figure 1 of the paper).
const (
	Horizontal Axis = iota
	Vertical
)

// String returns "h" or "v".
func (a Axis) String() string {
	if a == Horizontal {
		return "h"
	}
	return "v"
}

// ParseAxis parses "h"/"horizontal" or "v"/"vertical".
func ParseAxis(s string) (Axis, error) {
	switch strings.ToLower(s) {
	case "h", "horizontal":
		return Horizontal, nil
	case "v", "vertical":
		return Vertical, nil
	}
	return 0, fmt.Errorf("desc: bad axis %q (want h or v)", s)
}

// BitlineArch distinguishes the two classical cell-array organizations.
type BitlineArch int

// Bitline architectures. Folded pairs true and complement bitline in the
// same sub-array (8F² cells); Open senses against a bitline in the adjacent
// sub-array (6F² cells and denser, the mainstream choice from 75 nm on).
const (
	Folded BitlineArch = iota
	Open
)

// String returns "folded" or "open".
func (b BitlineArch) String() string {
	if b == Folded {
		return "folded"
	}
	return "open"
}

// ParseBitlineArch parses "folded" or "open".
func ParseBitlineArch(s string) (BitlineArch, error) {
	switch strings.ToLower(s) {
	case "folded":
		return Folded, nil
	case "open":
		return Open, nil
	}
	return 0, fmt.Errorf("desc: bad bitline architecture %q (want folded or open)", s)
}

// Op is one of the basic DRAM operations the model distinguishes
// (Section III.B.4 of the paper).
type Op int

// The basic operations. Power is first calculated per operation and then
// combined according to the pattern's mix.
const (
	OpNop Op = iota
	OpActivate
	OpPrecharge
	OpRead
	OpWrite
	OpRefresh
)

// AllOps lists every operation in display order.
var AllOps = []Op{OpNop, OpActivate, OpPrecharge, OpRead, OpWrite, OpRefresh}

// NumOps is the number of distinct operations. Op values are contiguous
// in [0, NumOps), so fixed arrays indexed by Op ([NumOps]T) are valid
// per-op ledgers; the power engine and the trace simulator use such
// arrays on their hot paths instead of maps.
const NumOps = int(OpRefresh) + 1

// Valid reports whether the operation is one of the defined ops, i.e. a
// safe index into a [NumOps]T ledger.
func (o Op) Valid() bool { return o >= 0 && int(o) < NumOps }

var opNames = map[Op]string{
	OpNop: "nop", OpActivate: "act", OpPrecharge: "pre",
	OpRead: "rd", OpWrite: "wrt", OpRefresh: "ref",
}

// String returns the pattern-language mnemonic of the operation.
func (o Op) String() string { return opNames[o] }

// ParseOp parses a pattern mnemonic ("act", "pre", "rd", "wrt", "nop",
// "ref"); a few aliases ("read", "write", "activate", "precharge",
// "refresh") are accepted.
func ParseOp(s string) (Op, error) {
	switch strings.ToLower(s) {
	case "nop":
		return OpNop, nil
	case "act", "activate":
		return OpActivate, nil
	case "pre", "precharge":
		return OpPrecharge, nil
	case "rd", "read":
		return OpRead, nil
	case "wrt", "wr", "write":
		return OpWrite, nil
	case "ref", "refresh":
		return OpRefresh, nil
	}
	return 0, fmt.Errorf("desc: unknown operation %q", s)
}

// BlockRef addresses a block in the floorplan grid by its X (horizontal)
// and Y (vertical) index; the sample DRAM of the paper numbers blocks 0–6
// in x and 0–4 in y. The textual form is "x_y", e.g. "0_2".
type BlockRef struct {
	X, Y int
}

// String returns the "x_y" form.
func (b BlockRef) String() string { return fmt.Sprintf("%d_%d", b.X, b.Y) }

// ParseBlockRef parses the "x_y" form.
func ParseBlockRef(s string) (BlockRef, error) {
	var b BlockRef
	if _, err := fmt.Sscanf(s, "%d_%d", &b.X, &b.Y); err != nil {
		return b, fmt.Errorf("desc: bad block reference %q (want x_y)", s)
	}
	if b.X < 0 || b.Y < 0 {
		return b, fmt.Errorf("desc: negative block reference %q", s)
	}
	return b, nil
}

// Floorplan is the physical floorplan group of Table I. The grid is given
// by the ordered block-name lists along each axis together with a size per
// distinct block name; array blocks (banks) are the blocks whose name
// starts with "A".
type Floorplan struct {
	// BitlineDir is the direction bitlines run in (parallel or
	// perpendicular to the pad row).
	BitlineDir Axis
	// BitsPerBitline is the number of cells along one local bitline
	// (typically 256–512).
	BitsPerBitline int
	// BitsPerLocalWordline is the number of cells driven by one local
	// (sub-) wordline.
	BitsPerLocalWordline int
	// Arch selects folded or open bitline sensing.
	Arch BitlineArch
	// BlocksPerCSL is the number of array blocks sharing a column select
	// line.
	BlocksPerCSL int
	// WordlinePitch is the cell pitch along the bitline direction.
	WordlinePitch units.Length
	// BitlinePitch is the cell pitch along the wordline direction.
	BitlinePitch units.Length
	// BLSAStripeWidth is the width of a bitline sense-amplifier stripe.
	BLSAStripeWidth units.Length
	// LWDStripeWidth is the width of a local wordline driver stripe.
	LWDStripeWidth units.Length
	// HorizontalBlocks and VerticalBlocks name the blocks along each axis
	// in order; indices into these slices are the BlockRef coordinates.
	HorizontalBlocks []string
	VerticalBlocks   []string
	// BlockWidth and BlockHeight give the extent of each distinct block
	// name along the horizontal and vertical axis respectively.
	BlockWidth  map[string]units.Length
	BlockHeight map[string]units.Length
	// ActivationFraction is the share of the row's local wordlines (and
	// hence sense amplifiers) raised per activate command. Commodity
	// DRAMs activate the full row (1); selective-bitline-activation and
	// single-sub-array schemes (Section V, Udipi et al.) activate a
	// fraction. 0 means the default of 1.
	ActivationFraction float64
}

// EffectiveActivation returns the activation fraction, defaulting to 1.
func (f *Floorplan) EffectiveActivation() float64 {
	if f.ActivationFraction <= 0 {
		return 1
	}
	return f.ActivationFraction
}

// IsArrayBlock reports whether the named block is a cell array block
// (a bank). By convention array blocks are named with a leading 'A'.
func IsArrayBlock(name string) bool {
	return len(name) > 0 && (name[0] == 'A' || name[0] == 'a')
}

// SignalKind classifies a signal bus by its role, which determines when it
// toggles and how many wires it has.
type SignalKind int

// Signal bus kinds.
const (
	SigDataWrite  SignalKind = iota // write data path (pad -> array)
	SigDataRead                     // read data path (array -> pad)
	SigDataShared                   // bidirectional / shared data bus
	SigClock                        // clock distribution
	SigControl                      // command/control signals
	SigAddrRow                      // row address bus
	SigAddrCol                      // column address bus
	SigAddrBank                     // bank address bus
)

var signalKindNames = map[SignalKind]string{
	SigDataWrite: "DataW", SigDataRead: "DataR", SigDataShared: "Data",
	SigClock: "Clk", SigControl: "Ctrl", SigAddrRow: "AddrRow",
	SigAddrCol: "AddrCol", SigAddrBank: "AddrBank",
}

// String returns the bus-name prefix of the kind.
func (k SignalKind) String() string { return signalKindNames[k] }

// KindForBus derives the signal kind from a bus name such as "DataW3" or
// "AddrRow0". Longest-prefix match, case sensitive like the paper's input.
func KindForBus(name string) (SignalKind, error) {
	prefixes := []struct {
		p string
		k SignalKind
	}{
		{"DataW", SigDataWrite}, {"DataR", SigDataRead},
		{"AddrRow", SigAddrRow}, {"AddrCol", SigAddrCol},
		{"AddrBank", SigAddrBank},
		{"Data", SigDataShared}, {"Clk", SigClock}, {"Ctrl", SigControl},
		{"Cmd", SigControl},
	}
	for _, pf := range prefixes {
		if strings.HasPrefix(name, pf.p) {
			return pf.k, nil
		}
	}
	return 0, fmt.Errorf("desc: cannot classify signal %q (known prefixes: DataW, DataR, Data, Clk, Ctrl, AddrRow, AddrCol, AddrBank)", name)
}

// Segment is one signal wire segment of the signaling floorplan
// (Section III.B.2). A segment is either inside a single block (relative
// length and direction given) or spans from one block center to another.
type Segment struct {
	// Name is the full segment name from the input, e.g. "DataW1".
	Name string
	// Kind is derived from the name prefix.
	Kind SignalKind
	// Inside-form: the segment lies inside block Inside with length
	// Fraction × (block extent along Dir).
	Inside   *BlockRef
	Fraction float64
	Dir      Axis
	// Span-form: the segment runs from the center of Start to the center
	// of End (Manhattan routing).
	Start, End *BlockRef
	// BufNWidth/BufPWidth give the driver/buffer device widths inserted at
	// the head of this segment (0 = no buffer).
	BufNWidth, BufPWidth units.Length
	// MuxRatio, when > 1, marks a serialization change: downstream of this
	// segment the bus is MuxRatio× wider and MuxRatio× slower (a 1:8
	// deserializer has MuxRatio 8).
	MuxRatio int
	// Toggle is the average number of charging events per relevant clock
	// cycle on each wire of this segment; < 0 selects the kind default.
	Toggle float64
	// Wires overrides the derived wire count of the segment (0 = derive
	// from the specification and the bus kind).
	Wires int
	// ActiveFrac is the average fraction of the segment's wire length that
	// is charged per event: segmented buses with cut-off switches (Jeong
	// et al., Section V) drive only the stretch up to the target bank.
	// 0 means the default of 1 (the full wire switches).
	ActiveFrac float64
}

// EffectiveActiveFrac returns the active wire fraction, defaulting to 1.
func (s *Segment) EffectiveActiveFrac() float64 {
	if s.ActiveFrac <= 0 {
		return 1
	}
	return s.ActiveFrac
}

// DefaultToggle returns the default charging-event rate per clock cycle for
// a bus kind: a clock wire charges once per cycle; random data charges a
// wire on average every fourth bit time; addresses and control toggle less.
func DefaultToggle(k SignalKind) float64 {
	switch k {
	case SigClock:
		return 1.0
	case SigDataRead, SigDataWrite, SigDataShared:
		return 0.25
	case SigAddrRow, SigAddrCol, SigAddrBank:
		return 0.25
	case SigControl:
		return 0.125
	}
	return 0.25
}

// Technology is the technology group of Table I: the 39 parameters that
// describe the process the DRAM is built in.
type Technology struct {
	// Gate oxide (equivalent) thicknesses.
	GateOxideLogic units.Length // general logic transistors
	GateOxideHV    units.Length // high voltage (Vpp domain) transistors
	GateOxideCell  units.Length // cell access transistor

	// Channel lengths and junction capacitances.
	MinGateLengthLogic units.Length
	JunctionCapLogic   units.CapacitancePerLength // per meter of device width
	MinGateLengthHV    units.Length
	JunctionCapHV      units.CapacitancePerLength
	CellAccessLength   units.Length
	CellAccessWidth    units.Length

	// Array capacitances.
	BitlineCap       units.Capacitance
	CellCap          units.Capacitance
	BitlineToWLShare float64 // share of bitline cap coupling to the wordline
	BitsPerCSL       int     // bits accessed per column select line pulse

	// Master wordline path.
	WireCapMWL         units.CapacitancePerLength
	MWLPredecodeRatio  float64      // pre-decode ratio master wordline
	MWLDecoderNMOS     units.Length // gate width, master WL decoder pull-down
	MWLDecoderPMOS     units.Length
	MWLDecoderActivity float64 // average switching of MWL decoder per ACT

	// Wordline controller loads and sub-wordline driver (Figure 3).
	WLControlLoadNMOS units.Length
	WLControlLoadPMOS units.Length
	SWDriverNMOS      units.Length
	SWDriverPMOS      units.Length
	SWDriverRestore   units.Length
	WireCapLWL        units.CapacitancePerLength

	// Bitline sense-amplifier devices (Figure 2); widths and lengths.
	BLSASenseNMOSWidth  units.Length
	BLSASenseNMOSLength units.Length
	BLSASensePMOSWidth  units.Length
	BLSASensePMOSLength units.Length
	BLSAEqualizeWidth   units.Length
	BLSAEqualizeLength  units.Length
	BLSABitSwitchWidth  units.Length
	BLSABitSwitchLength units.Length
	BLSAMuxWidth        units.Length // folded bitline only
	BLSAMuxLength       units.Length
	BLSANSetWidth       units.Length
	BLSANSetLength      units.Length
	BLSAPSetWidth       units.Length
	BLSAPSetLength      units.Length

	// General signal wiring.
	WireCapSignal units.CapacitancePerLength
}

// Specification is the interface specification group of Table I.
type Specification struct {
	IOWidth          int             // number of DQ pins
	DataRate         units.DataRate  // per DQ pin
	ClockWires       int             // clock wires on die
	DataClock        units.Frequency // data clock frequency
	ControlClock     units.Frequency // control/command clock frequency
	BankAddrBits     int
	RowAddrBits      int
	ColAddrBits      int
	MiscCtrlSignals  int
	BurstLength      int            // bits per DQ per column command (0 = prefetch)
	RowCycle         units.Duration // tRC, row cycle time
	RowToColumnDelay units.Duration // tRCD (optional; used by trace engine)
	PrechargeTime    units.Duration // tRP (optional)
	CASLatency       units.Duration // CL (optional)
	FourBankWindow   units.Duration // tFAW (optional)
	RowToRowDelay    units.Duration // tRRD (optional)
	RefreshInterval  units.Duration // tREFI (optional)
	RefreshCycle     units.Duration // tRFC (optional)
}

// Prefetch returns the serialization factor between the pin data rate and
// the internal core clock: datarate / dataclock (e.g. 8 for DDR3-1600 with
// an 800 MHz data clock driving a 200 MHz core... the paper's definition is
// per the 1:n deserializer in the data path; here it is the ratio of pin
// bit rate to control clock).
func (s Specification) Prefetch() int {
	if s.ControlClock == 0 {
		return 1
	}
	p := int(float64(s.DataRate)/float64(s.ControlClock) + 0.5)
	if p < 1 {
		p = 1
	}
	return p
}

// PageBits returns the number of bits held by one open page (sensed per
// activate): 2^ColAddrBits column addresses × IOWidth bits each.
func (s Specification) PageBits() int {
	return (1 << uint(s.ColAddrBits)) * s.IOWidth
}

// Banks returns the number of banks (2^BankAddrBits).
func (s Specification) Banks() int { return 1 << uint(s.BankAddrBits) }

// Electrical is the basic electrical information group of Table I: the four
// voltage domains of Section III.A plus generator efficiencies and the
// constant reference-current sink.
type Electrical struct {
	Vdd  units.Voltage // external supply
	Vint units.Voltage // general logic supply
	Vbl  units.Voltage // bitline (cell restore) voltage
	Vpp  units.Voltage // boosted wordline voltage

	// Generator charge-transfer efficiencies: the domain charge divided
	// by the charge drawn from Vdd to deliver it. A series regulator
	// passes charge through (η ≈ 0.9–1); a Vpp charge-pump doubler draws
	// two units of supply charge per unit delivered (η ≈ 0.5).
	EffInt float64
	EffBl  float64
	EffPp  float64

	// ConstantCurrent is a constant sink from Vdd (references, power
	// system housekeeping).
	ConstantCurrent units.Current
}

// DomainVoltageAndEff returns the voltage and generator efficiency of the
// named domain.
func (e Electrical) DomainVoltageAndEff(d Domain) (units.Voltage, float64) {
	switch d {
	case DomainVdd:
		return e.Vdd, 1
	case DomainVint:
		return e.Vint, e.EffInt
	case DomainVbl:
		return e.Vbl, e.EffBl
	case DomainVpp:
		return e.Vpp, e.EffPp
	}
	return 0, 1
}

// DomainVoltageAndSafeEff returns the voltage and generator efficiency of
// the named domain with the efficiency clamped to a usable value: a zero
// or negative efficiency (an unparameterized generator) falls back to 1,
// i.e. the domain charge passes through to the external supply
// unamplified. This is the single place the power engine's "eff <= 0"
// fallback lives; every Vdd-referred energy roll-up uses it.
func (e Electrical) DomainVoltageAndSafeEff(d Domain) (units.Voltage, float64) {
	v, eff := e.DomainVoltageAndEff(d)
	if eff <= 0 {
		eff = 1
	}
	return v, eff
}

// Domain identifies one of the four supply domains of the model.
type Domain int

// The four voltage domains (Section III.A).
const (
	DomainVdd Domain = iota
	DomainVint
	DomainVbl
	DomainVpp
)

// AllDomains lists the domains in display order.
var AllDomains = []Domain{DomainVdd, DomainVint, DomainVbl, DomainVpp}

var domainNames = map[Domain]string{
	DomainVdd: "Vdd", DomainVint: "Vint", DomainVbl: "Vbl", DomainVpp: "Vpp",
}

// String returns the conventional domain name.
func (d Domain) String() string { return domainNames[d] }

// LogicBlock models one miscellaneous peripheral logic block
// (Section III.B.5): command/address decode, clock synchronization, test
// logic. The gate count is the fit parameter the paper uses to calibrate
// the model against datasheet values.
type LogicBlock struct {
	Name string
	// Gates is the number of toggling gates in the block.
	Gates int
	// AvgNMOSWidth / AvgPMOSWidth are the average device widths.
	AvgNMOSWidth units.Length
	AvgPMOSWidth units.Length
	// TransistorsPerGate is the average transistor count per gate.
	TransistorsPerGate float64
	// GateDensity is the coverage of the block area with transistor gates;
	// WiringDensity the coverage with local wiring. Together with the gate
	// count they determine the block's area and hence its wire load.
	GateDensity   float64
	WiringDensity float64
	// ActiveDuring lists the operations in which the block toggles; an
	// empty list means the block is always active (clock tree etc.).
	ActiveDuring []Op
	// Toggle is the block's switching rate relative to the control clock.
	Toggle float64
}

// ActiveFor reports whether the block dissipates during op. Blocks with an
// empty ActiveDuring list are active during every operation including nop.
func (b LogicBlock) ActiveFor(op Op) bool {
	if len(b.ActiveDuring) == 0 {
		return true
	}
	for _, o := range b.ActiveDuring {
		if o == op {
			return true
		}
	}
	return false
}

// Pattern is the repeating command loop whose average power the model
// reports (Section III.B.4).
type Pattern struct {
	Loop []Op
}

// Mix returns the fraction of pattern slots occupied by each operation.
func (p Pattern) Mix() map[Op]float64 {
	m := make(map[Op]float64, len(AllOps))
	if len(p.Loop) == 0 {
		return m
	}
	inc := 1 / float64(len(p.Loop))
	for _, op := range p.Loop {
		m[op] += inc
	}
	return m
}

// String renders the loop in input-language form.
func (p Pattern) String() string {
	parts := make([]string, len(p.Loop))
	for i, op := range p.Loop {
		parts[i] = op.String()
	}
	return strings.Join(parts, " ")
}

// Description is a complete DRAM description: everything the power model
// needs, organized in the five groups of Table I.
type Description struct {
	// Name identifies the device, e.g. "1G-DDR3-x16-55nm".
	Name string

	Floorplan   Floorplan
	Signals     []Segment
	Technology  Technology
	Spec        Specification
	Electrical  Electrical
	LogicBlocks []LogicBlock
	Pattern     Pattern
}

// Clone returns a deep copy of the description. The sensitivity sweep and
// the scheme evaluations mutate clones rather than the original.
func (d *Description) Clone() *Description {
	c := *d
	c.Floorplan.HorizontalBlocks = append([]string(nil), d.Floorplan.HorizontalBlocks...)
	c.Floorplan.VerticalBlocks = append([]string(nil), d.Floorplan.VerticalBlocks...)
	c.Floorplan.BlockWidth = cloneLenMap(d.Floorplan.BlockWidth)
	c.Floorplan.BlockHeight = cloneLenMap(d.Floorplan.BlockHeight)
	c.Signals = make([]Segment, len(d.Signals))
	for i, s := range d.Signals {
		cs := s
		if s.Inside != nil {
			in := *s.Inside
			cs.Inside = &in
		}
		if s.Start != nil {
			st := *s.Start
			cs.Start = &st
		}
		if s.End != nil {
			en := *s.End
			cs.End = &en
		}
		c.Signals[i] = cs
	}
	c.LogicBlocks = make([]LogicBlock, len(d.LogicBlocks))
	for i, b := range d.LogicBlocks {
		cb := b
		cb.ActiveDuring = append([]Op(nil), b.ActiveDuring...)
		c.LogicBlocks[i] = cb
	}
	c.Pattern.Loop = append([]Op(nil), d.Pattern.Loop...)
	return &c
}

func cloneLenMap(m map[string]units.Length) map[string]units.Length {
	if m == nil {
		return nil
	}
	c := make(map[string]units.Length, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}
