package desc

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzParse drives the description parser with mutated inputs, seeded
// from the real testdata devices and a few degenerate fragments. The
// parser must never panic; on failure it must surface a positioned
// *ParseError; and anything it accepts must survive the canonical
// round-trip (Format output reparses cleanly), since the server derives
// model-cache keys from that canonical form.
func FuzzParse(f *testing.F) {
	paths, _ := filepath.Glob(filepath.Join("..", "..", "testdata", "*.dram"))
	for _, p := range paths {
		if b, err := os.ReadFile(p); err == nil {
			f.Add(string(b))
		}
	}
	f.Add(Format(Sample1GbDDR3()))
	f.Add("")
	f.Add("Name x\n")
	f.Add("FloorplanPhysical\nCellArray BL=h BitsPerBL=9e999\n")
	f.Add("Pattern act nop rd\n")
	f.Add("Technology\nVpp 2.9 V\nTiming tRC=-1ns\n")
	f.Add("# comment only\n\n\t\n")
	f.Add("FloorplanPhysical\nSizeHorizontal 1um 2um\nHorizontal blocks = a b\n")

	f.Fuzz(func(t *testing.T, src string) {
		d, err := ParseString(src)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("non-positioned parse error %T: %v", err, err)
			}
			if pe.Line < 1 {
				t.Fatalf("parse error with line %d: %v", pe.Line, pe)
			}
			return
		}
		if d.Validate() != nil {
			// Parse accepts structurally well-formed fragments that
			// Validate (and therefore Build) rejects; those have no
			// canonical-form guarantee.
			return
		}
		canon := Format(d)
		d2, err := ParseString(canon)
		if err != nil {
			t.Fatalf("valid input failed the canonical round-trip:\ninput: %q\ncanon: %q\nerr: %v",
				src, canon, err)
		}
		if again := Format(d2); again != canon {
			t.Fatalf("canonical form is not a fixed point:\nfirst:  %q\nsecond: %q", canon, again)
		}
		if !strings.HasSuffix(canon, "\n") && canon != "" {
			t.Fatalf("Format output misses the trailing newline: %q", canon)
		}
	})
}
