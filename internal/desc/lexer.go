package desc

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// line is one logical input line: its 1-based number and its fields.
type line struct {
	num    int
	fields []field
}

// field is one whitespace-separated token of a line, either a bare word
// (key == "") or a key=value attribute.
type field struct {
	key, value string
}

// bare reports whether the field is a bare word.
func (f field) bare() bool { return f.key == "" }

// text returns the raw text of the field for error messages.
func (f field) text() string {
	if f.bare() {
		return f.value
	}
	return f.key + "=" + f.value
}

// lex splits the input into logical lines of fields. Comments start with
// '#' or '//' and run to end of line; blank lines are dropped. Tokens of
// the form "a = b", "a= b" and "a =b" are normalized to the attribute a=b,
// matching the free-form spacing the paper's excerpts use
// ("Vertical blocks = A1 P1 P2 P1 A1", "Pattern loop= act nop ...").
func lex(r io.Reader) ([]line, error) {
	var lines []line
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	num := 0
	for sc.Scan() {
		num++
		text := sc.Text()
		if i := strings.Index(text, "#"); i >= 0 {
			text = text[:i]
		}
		if i := strings.Index(text, "//"); i >= 0 {
			text = text[:i]
		}
		toks := strings.Fields(text)
		if len(toks) == 0 {
			continue
		}
		toks, err := normalizeEquals(toks)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", num, err)
		}
		ln := line{num: num}
		for _, t := range toks {
			if k, v, ok := strings.Cut(t, "="); ok {
				ln.fields = append(ln.fields, field{key: k, value: v})
			} else {
				ln.fields = append(ln.fields, field{value: t})
			}
		}
		lines = append(lines, ln)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("desc: reading input: %v", err)
	}
	return lines, nil
}

// normalizeEquals joins "a = b" and "a=" "b" and "a" "=b" token triples /
// pairs into single "a=b" tokens. A trailing "key=" with nothing after it
// on the line is left as-is (empty value).
func normalizeEquals(toks []string) ([]string, error) {
	var out []string
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		switch {
		case t == "=":
			if len(out) == 0 {
				return nil, fmt.Errorf("dangling '='")
			}
			prev := out[len(out)-1]
			if strings.Contains(prev, "=") {
				return nil, fmt.Errorf("unexpected '=' after %q", prev)
			}
			if i+1 < len(toks) {
				out[len(out)-1] = prev + "=" + toks[i+1]
				i++
			} else {
				out[len(out)-1] = prev + "="
			}
		case strings.HasSuffix(t, "=") && i+1 < len(toks) && !strings.Contains(toks[i+1], "="):
			out = append(out, t+toks[i+1])
			i++
		case strings.HasPrefix(t, "=") && len(out) > 0 && !strings.Contains(out[len(out)-1], "="):
			out[len(out)-1] += t
		default:
			out = append(out, t)
		}
	}
	return out, nil
}
