package desc

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// line is one logical input line: its 1-based number and its fields.
type line struct {
	num    int
	fields []field
}

// field is one whitespace-separated token of a line, either a bare word
// (key == "") or a key=value attribute. col is the 1-based column of the
// field's first byte in the raw input line, so parse errors can point at
// the offending token.
type field struct {
	key, value string
	col        int
}

// bare reports whether the field is a bare word.
func (f field) bare() bool { return f.key == "" }

// text returns the raw text of the field for error messages.
func (f field) text() string {
	if f.bare() {
		return f.value
	}
	return f.key + "=" + f.value
}

// token is a raw whitespace-separated token with its 1-based column.
type token struct {
	text string
	col  int
}

// splitTokens splits a line into tokens, recording each token's column.
func splitTokens(text string) []token {
	var toks []token
	i := 0
	for i < len(text) {
		for i < len(text) && (text[i] == ' ' || text[i] == '\t' || text[i] == '\r') {
			i++
		}
		start := i
		for i < len(text) && text[i] != ' ' && text[i] != '\t' && text[i] != '\r' {
			i++
		}
		if i > start {
			toks = append(toks, token{text: text[start:i], col: start + 1})
		}
	}
	return toks
}

// lex splits the input into logical lines of fields. Comments start with
// '#' or '//' and run to end of line; blank lines are dropped. Tokens of
// the form "a = b", "a= b" and "a =b" are normalized to the attribute a=b,
// matching the free-form spacing the paper's excerpts use
// ("Vertical blocks = A1 P1 P2 P1 A1", "Pattern loop= act nop ..."). Every
// field keeps the column of its first byte; lexing problems surface as
// positioned *ParseError values.
func lex(r io.Reader) ([]line, error) {
	var lines []line
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	num := 0
	for sc.Scan() {
		num++
		text := sc.Text()
		if i := strings.Index(text, "#"); i >= 0 {
			text = text[:i]
		}
		if i := strings.Index(text, "//"); i >= 0 {
			text = text[:i]
		}
		toks := splitTokens(text)
		if len(toks) == 0 {
			continue
		}
		toks, err := normalizeEquals(toks)
		if err != nil {
			err.Line = num
			return nil, err
		}
		ln := line{num: num}
		for _, t := range toks {
			if k, v, ok := strings.Cut(t.text, "="); ok {
				ln.fields = append(ln.fields, field{key: k, value: v, col: t.col})
			} else {
				ln.fields = append(ln.fields, field{value: t.text, col: t.col})
			}
		}
		lines = append(lines, ln)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("desc: reading input: %v", err)
	}
	return lines, nil
}

// normalizeEquals joins "a = b" and "a=" "b" and "a" "=b" token triples /
// pairs into single "a=b" tokens, keeping the column of the leftmost piece.
// A trailing "key=" with nothing after it on the line is left as-is (empty
// value). Errors are positioned at the offending '=' (the line is filled in
// by lex).
func normalizeEquals(toks []token) ([]token, *ParseError) {
	var out []token
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		switch {
		case t.text == "=":
			if len(out) == 0 {
				return nil, &ParseError{Col: t.col, Msg: "dangling '='"}
			}
			prev := out[len(out)-1]
			if strings.Contains(prev.text, "=") {
				return nil, &ParseError{Col: t.col,
					Msg: fmt.Sprintf("unexpected '=' after %q", prev.text)}
			}
			if i+1 < len(toks) {
				out[len(out)-1].text = prev.text + "=" + toks[i+1].text
				i++
			} else {
				out[len(out)-1].text = prev.text + "="
			}
		case strings.HasSuffix(t.text, "=") && i+1 < len(toks) && !strings.Contains(toks[i+1].text, "="):
			out = append(out, token{text: t.text + toks[i+1].text, col: t.col})
			i++
		case strings.HasPrefix(t.text, "=") && len(out) > 0 && !strings.Contains(out[len(out)-1].text, "="):
			out[len(out)-1].text += t.text
		default:
			out = append(out, t)
		}
	}
	return out, nil
}
