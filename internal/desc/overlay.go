package desc

import (
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"drampower/internal/units"
)

// Overlay is a calibration document: an ordered list of overrides and
// scalings applied to the derived parameter set of a model (core.ParamSet)
// after the circuit derivation and before the model is sealed. It is the
// middle stage of the derive → overlay → seal pipeline, closing the gap
// between analytically derived values and measured ones ("What Your DRAM
// Power Models Are Not Telling You", Ghose et al., 2018).
//
// The input language mirrors the description grammar (same lexer, same
// comment and spacing rules):
//
//	Calibration micron-mt41k-measured   # optional header with a name
//	idd0 = 58mA                         # override a derived value
//	op.rd.energy *= 1.07                # scale a derived value
//
// Entries apply in order; later entries see the result of earlier ones.
// An overlay never feeds back into the circuit model: overriding idd0
// does not change op.act.energy — each key pins exactly one resolved
// parameter. An empty overlay (no entries) is a strict no-op.
type Overlay struct {
	// Name is the optional label from the Calibration header (e.g. the
	// measurement campaign or vendor part the values came from).
	Name string
	// Entries are the overrides/scalings in input order.
	Entries []OverlayEntry
}

// OverlayEntry is one calibration line.
type OverlayEntry struct {
	// Key is the canonical parameter key (see OverlayKeys).
	Key string
	// Scale selects the "key *= factor" form; false is "key = value".
	Scale bool
	// Value is the SI value (amperes, watts, joules) for an override, or
	// the dimensionless factor for a scaling.
	Value float64
}

// Empty reports whether the overlay changes nothing. A nil overlay and an
// overlay with no entries are both empty (the name alone has no effect on
// the model), which is what lets cache keys collapse no-op calibrations
// onto the uncalibrated entry.
func (o *Overlay) Empty() bool { return o == nil || len(o.Entries) == 0 }

// overlayClass is the quantity class of an overlay key, fixing the unit
// of override values and the canonical rendering.
type overlayClass int

const (
	overlayCurrent overlayClass = iota // amperes ("58mA")
	overlayPower                       // watts ("45mW")
	overlayEnergy                      // joules ("2.4nJ")
)

// overlayKeyClasses maps every valid overlay key to its quantity class.
//
// The idd2n/idd3n/idd2p/idd6 keys are current-valued views of the three
// background powers (standby, power-down, self-refresh): an override sets
// the underlying power to I × Vdd, a scaling scales it. The core package
// interprets the keys; this table only fixes grammar and units.
func overlayKeyClasses() map[string]overlayClass {
	m := map[string]overlayClass{
		"idd0": overlayCurrent, "idd2n": overlayCurrent, "idd2p": overlayCurrent,
		"idd3n": overlayCurrent, "idd4r": overlayCurrent, "idd4w": overlayCurrent,
		"idd5": overlayCurrent, "idd6": overlayCurrent, "idd7": overlayCurrent,
		"standby": overlayPower, "powerdown": overlayPower, "selfrefresh": overlayPower,
	}
	for _, op := range AllOps {
		if op == OpNop {
			// A nop carries no command charge by construction; there is
			// nothing measured to calibrate against.
			continue
		}
		m["op."+op.String()+".energy"] = overlayEnergy
	}
	return m
}

// OverlayKeys returns every valid calibration key in sorted order (for
// documentation and error messages).
func OverlayKeys() []string {
	classes := overlayKeyClasses()
	keys := make([]string, 0, len(classes))
	for k := range classes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ParseOverlayFile reads and parses a calibration overlay file.
func ParseOverlayFile(path string) (*Overlay, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("desc: %v", err)
	}
	defer f.Close()
	ov, err := ParseOverlay(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ov, nil
}

// ParseOverlayString parses a calibration overlay from a string.
func ParseOverlayString(src string) (*Overlay, error) {
	return ParseOverlay(strings.NewReader(src))
}

// ParseOverlay reads a calibration overlay document. The Calibration
// header is optional for a standalone overlay (it is what splits a
// combined descriptor+overlay document, see ParseDocument); when present
// it must come first and may carry a name.
func ParseOverlay(r io.Reader) (*Overlay, error) {
	lines, err := lex(r)
	if err != nil {
		return nil, err
	}
	return parseOverlayLines(lines)
}

func parseOverlayLines(lines []line) (*Overlay, error) {
	ov := &Overlay{}
	for i, ln := range lines {
		head := ln.fields[0]
		if head.bare() && head.value == "Calibration" {
			if i != 0 {
				return nil, errAtField(ln.num, head, "Calibration header must be the first directive")
			}
			parts := make([]string, 0, len(ln.fields)-1)
			for _, f := range ln.fields[1:] {
				if !f.bare() || strings.Contains(f.value, "=") {
					return nil, errAtField(ln.num, f, "Calibration name takes bare words, got %q", f.text())
				}
				parts = append(parts, f.value)
			}
			ov.Name = strings.Join(parts, " ")
			continue
		}
		ent, err := parseOverlayEntry(ln)
		if err != nil {
			return nil, err
		}
		ov.Entries = append(ov.Entries, ent)
	}
	return ov, nil
}

// parseOverlayEntry decodes one calibration line. After the lexer's '='
// normalization the two forms arrive as:
//
//	"idd0 = 58mA"          -> [{key: "idd0", value: "58mA"}]
//	"op.rd.energy *= 1.07" -> [{bare "op.rd.energy"}, {key: "*", value: "1.07"}]
//	"op.rd.energy*=1.07"   -> [{key: "op.rd.energy*", value: "1.07"}]
func parseOverlayEntry(ln line) (OverlayEntry, error) {
	var key, val string
	var scale bool
	f0 := ln.fields[0]
	switch {
	case len(ln.fields) == 1 && !f0.bare() && strings.HasSuffix(f0.key, "*") && len(f0.key) > 1:
		key, val, scale = strings.TrimSuffix(f0.key, "*"), f0.value, true
	case len(ln.fields) == 1 && !f0.bare() && f0.key != "*":
		key, val = f0.key, f0.value
	case len(ln.fields) == 2 && f0.bare() && ln.fields[1].key == "*":
		key, val, scale = f0.value, ln.fields[1].value, true
	default:
		return OverlayEntry{}, errAtField(ln.num, f0,
			"calibration entries are '<key> = <value>' or '<key> *= <factor>' lines")
	}

	class, ok := overlayKeyClasses()[key]
	if !ok {
		return OverlayEntry{}, errAtField(ln.num, f0, "unknown calibration key %q", key)
	}

	ent := OverlayEntry{Key: key, Scale: scale}
	if scale {
		x, err := strconv.ParseFloat(val, 64)
		if err != nil || math.IsNaN(x) || math.IsInf(x, 0) || x <= 0 {
			return OverlayEntry{}, errAt(ln.num, "calibration %s: bad scale factor %q (want a positive number)", key, val)
		}
		ent.Value = x
		return ent, nil
	}
	var v float64
	var err error
	switch class {
	case overlayCurrent:
		var c units.Current
		c, err = units.ParseCurrent(val)
		v = float64(c)
	case overlayPower:
		var p units.Power
		p, err = units.ParsePower(val)
		v = float64(p)
	default:
		var e units.Energy
		e, err = units.ParseEnergy(val)
		v = float64(e)
	}
	if err != nil {
		return OverlayEntry{}, errAt(ln.num, "calibration %s: %v", key, err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return OverlayEntry{}, errAt(ln.num, "calibration %s: value %q must be finite and non-negative", key, val)
	}
	ent.Value = v
	return ent, nil
}

// FormatOverlay renders the overlay in the input language such that
// ParseOverlay(FormatOverlay(o)) reproduces o and the rendering is a
// bit-exact fixed point (the same contract Format has for descriptions).
// The canonical form always starts with the Calibration header; override
// values render in milliamps, milliwatts and nanojoules with the same
// ulp-nudged exact quotients the description serializer uses.
func FormatOverlay(o *Overlay) string {
	if o == nil {
		o = &Overlay{}
	}
	var b strings.Builder
	b.WriteString("Calibration")
	if o.Name != "" {
		b.WriteByte(' ')
		b.WriteString(o.Name)
	}
	b.WriteByte('\n')
	for _, e := range o.Entries {
		if e.Scale {
			fmt.Fprintf(&b, "%s *= %g\n", e.Key, e.Value)
			continue
		}
		fmt.Fprintf(&b, "%s = %s\n", e.Key, overlayValueStr(e.Key, e.Value))
	}
	return b.String()
}

func overlayValueStr(key string, v float64) string {
	// Values large enough to overflow the scaled quotient (v/1e-3 above
	// the float64 range) fall back to the base unit, whose plain %g
	// rendering round-trips exactly through strconv.
	switch overlayKeyClasses()[key] {
	case overlayCurrent:
		q := exactQuot(v, units.Milli, func(q float64) float64 { return q * units.Milli })
		if math.IsInf(q, 0) {
			return fmt.Sprintf("%gA", v)
		}
		return fmt.Sprintf("%gmA", q)
	case overlayPower:
		q := exactQuot(v, units.Milli, func(q float64) float64 { return q * units.Milli })
		if math.IsInf(q, 0) {
			return fmt.Sprintf("%gW", v)
		}
		return fmt.Sprintf("%gmW", q)
	default:
		q := exactQuot(v, units.Nano, func(q float64) float64 { return q * units.Nano })
		if math.IsInf(q, 0) {
			return fmt.Sprintf("%gJ", v)
		}
		return fmt.Sprintf("%gnJ", q)
	}
}

// ParseDocument reads a combined document: a description optionally
// followed by a calibration overlay introduced by a bare "Calibration"
// header line (the transport the HTTP endpoints use, so one request body
// carries both). The returned description is nil when no description
// lines precede the overlay (a calibration-only or empty document);
// the overlay is nil when the document has no Calibration section.
func ParseDocument(r io.Reader) (*Description, *Overlay, error) {
	lines, err := lex(r)
	if err != nil {
		return nil, nil, err
	}
	split := -1
	for i, ln := range lines {
		if ln.fields[0].bare() && ln.fields[0].value == "Calibration" {
			split = i
			break
		}
	}
	if split < 0 {
		if len(lines) == 0 {
			return nil, nil, nil
		}
		d, err := parseLines(lines)
		return d, nil, err
	}
	var d *Description
	if split > 0 {
		if d, err = parseLines(lines[:split]); err != nil {
			return nil, nil, err
		}
	}
	ov, err := parseOverlayLines(lines[split:])
	if err != nil {
		return nil, nil, err
	}
	return d, ov, nil
}
