package desc

import (
	"errors"
	"math"
	"os"
	"strings"
	"testing"

	"drampower/internal/units"
)

// The excerpts of Section III.B of the paper, verbatim (spacing included),
// must parse.
const paperExcerpt = `
FloorplanPhysical
CellArray BL=v BitsPerBL=512 BLtype=open
CellArray WLpitch=165nm BLpitch=110nm
Vertical blocks = A1 P1 P2 P1 A1
SizeVertical A1=3396um P1=200um P2=530um
Horizontal blocks = A1 R1 A1 C0 A1 R1 A1
SizeHorizontal A1=1900um R1=150um C0=260um

FloorplanSignaling
DataW0 inside=0_2 fraction=25% dir=h mux=1:8
DataW1 start=0_2 end=3_2 PchW=19.2um NchW=9.6um

Specification
IO width=16 datarate=1.6Gbps
Clock number=1 frequency=800MHz
Control frequency=800MHz
Control bankadd=3 rowadd=14 coladd=10

Pattern loop= act nop wrt nop rd nop pre nop
`

func TestParsePaperExcerpt(t *testing.T) {
	d, err := ParseString(paperExcerpt)
	if err != nil {
		t.Fatalf("parsing paper excerpt: %v", err)
	}
	fp := d.Floorplan
	if fp.BitlineDir != Vertical {
		t.Errorf("bitline dir: got %v, want v", fp.BitlineDir)
	}
	if fp.BitsPerBitline != 512 {
		t.Errorf("bits per bitline: got %d, want 512", fp.BitsPerBitline)
	}
	if fp.Arch != Open {
		t.Errorf("arch: got %v, want open", fp.Arch)
	}
	if got := fp.WordlinePitch.Nanometers(); math.Abs(got-165) > 1e-9 {
		t.Errorf("wordline pitch: got %gnm, want 165nm", got)
	}
	wantV := []string{"A1", "P1", "P2", "P1", "A1"}
	if len(fp.VerticalBlocks) != len(wantV) {
		t.Fatalf("vertical blocks: got %v, want %v", fp.VerticalBlocks, wantV)
	}
	for i, n := range wantV {
		if fp.VerticalBlocks[i] != n {
			t.Errorf("vertical block %d: got %s, want %s", i, fp.VerticalBlocks[i], n)
		}
	}
	if got := fp.BlockHeight["A1"].Micrometers(); math.Abs(got-3396) > 1e-9 {
		t.Errorf("A1 height: got %gum, want 3396um", got)
	}

	if len(d.Signals) != 2 {
		t.Fatalf("signals: got %d, want 2", len(d.Signals))
	}
	s0 := d.Signals[0]
	if s0.Kind != SigDataWrite {
		t.Errorf("DataW0 kind: got %v", s0.Kind)
	}
	if s0.Inside == nil || s0.Inside.X != 0 || s0.Inside.Y != 2 {
		t.Errorf("DataW0 inside: got %v", s0.Inside)
	}
	if math.Abs(s0.Fraction-0.25) > 1e-12 {
		t.Errorf("DataW0 fraction: got %g, want 0.25", s0.Fraction)
	}
	if s0.MuxRatio != 8 {
		t.Errorf("DataW0 mux: got %d, want 8", s0.MuxRatio)
	}
	s1 := d.Signals[1]
	if s1.Start == nil || s1.End == nil || s1.End.X != 3 {
		t.Errorf("DataW1 span: got start=%v end=%v", s1.Start, s1.End)
	}
	if got := s1.BufPWidth.Micrometers(); math.Abs(got-19.2) > 1e-9 {
		t.Errorf("DataW1 PchW: got %gum, want 19.2um", got)
	}

	if d.Spec.IOWidth != 16 {
		t.Errorf("IO width: got %d", d.Spec.IOWidth)
	}
	if got := d.Spec.DataRate.Gbps(); math.Abs(got-1.6) > 1e-9 {
		t.Errorf("datarate: got %g, want 1.6", got)
	}
	if d.Spec.RowAddrBits != 14 || d.Spec.ColAddrBits != 10 || d.Spec.BankAddrBits != 3 {
		t.Errorf("addressing: got bank=%d row=%d col=%d",
			d.Spec.BankAddrBits, d.Spec.RowAddrBits, d.Spec.ColAddrBits)
	}

	want := []Op{OpActivate, OpNop, OpWrite, OpNop, OpRead, OpNop, OpPrecharge, OpNop}
	if len(d.Pattern.Loop) != len(want) {
		t.Fatalf("pattern: got %v", d.Pattern.Loop)
	}
	for i, op := range want {
		if d.Pattern.Loop[i] != op {
			t.Errorf("pattern[%d]: got %v, want %v", i, d.Pattern.Loop[i], op)
		}
	}
}

func TestPatternMix(t *testing.T) {
	d, err := ParseString(paperExcerpt)
	if err != nil {
		t.Fatal(err)
	}
	mix := d.Pattern.Mix()
	// The paper: 12.5% each of act/wrt/rd/pre, 50% nop.
	for op, want := range map[Op]float64{
		OpActivate: 0.125, OpWrite: 0.125, OpRead: 0.125,
		OpPrecharge: 0.125, OpNop: 0.5,
	} {
		if math.Abs(mix[op]-want) > 1e-12 {
			t.Errorf("mix[%v] = %g, want %g", op, mix[op], want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown section directive", "Bogus stuff\n", "unexpected directive"},
		{"unknown floorplan directive", "FloorplanPhysical\nFrobnicate x=1\n", "unknown floorplan directive"},
		{"bad axis", "FloorplanPhysical\nCellArray BL=q\n", "bad axis"},
		{"bad bltype", "FloorplanPhysical\nCellArray BLtype=curly\n", "bad bitline architecture"},
		{"bad blockref", "FloorplanSignaling\nDataW0 inside=zz\n", "bad block reference"},
		{"unknown signal prefix", "FloorplanSignaling\nFoo0 inside=0_0\n", "cannot classify"},
		{"unknown tech param", "Technology\nFluxCapacitance 1fF\n", "unknown technology parameter"},
		{"tech param bad value", "Technology\nBitlineCap 80xF\n", "BitlineCap"},
		{"unknown spec directive", "Specification\nWheels count=4\n", "unknown specification directive"},
		{"bad pattern op", "Pattern loop= act jump\n", "unknown operation"},
		{"pattern missing loop", "Pattern act nop\n", "expected 'Pattern loop="},
		{"duplicate attr", "FloorplanSignaling\nDataW0 inside=0_0 inside=1_1\n", "duplicate attribute"},
		{"unknown attr", "Specification\nIO width=16 color=red\n", "unknown attribute"},
		{"dangling equals", "FloorplanPhysical\n= A1\n", "dangling"},
		{"electrical junk", "Electrical\nVolts 1.5V\n", "unknown electrical directive"},
		{"section arg", "FloorplanPhysical extra\n", "takes no arguments"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseString(c.src)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestParseErrorHasLineNumber(t *testing.T) {
	_, err := ParseString("FloorplanPhysical\n\n# comment\nCellArray BL=q\n")
	if err == nil {
		t.Fatal("expected error")
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T, want *ParseError", err)
	}
	if pe.Line != 4 {
		t.Errorf("error line: got %d, want 4", pe.Line)
	}
	if pe.Col != 11 {
		t.Errorf("error col: got %d, want 11 (the BL=q token)", pe.Col)
	}
}

func TestParseErrorPositions(t *testing.T) {
	// Every parse error carries the line and, where a single token is at
	// fault, the 1-based column of that token; Col 0 means "whole line".
	cases := []struct {
		name, src         string
		wantLine, wantCol int
	}{
		{"bad axis value", "FloorplanPhysical\n\n# comment\nCellArray BL=q\n", 4, 11},
		{"unknown tech param", "Technology\nFluxCapacitance 1fF\n", 2, 1},
		{"tech param bad value", "Technology\nBitlineCap 80xF\n", 2, 12},
		{"bad pattern op", "Pattern loop= act jump\n", 1, 19},
		{"dangling equals", "FloorplanPhysical\n= A1\n", 2, 1},
		{"unknown attribute", "Specification\nIO width=16 color=red\n", 2, 13},
		{"duplicate attribute", "FloorplanSignaling\nDataW0 inside=0_0 inside=1_1\n", 2, 19},
		{"section header argument", "FloorplanPhysical extra\n", 1, 19},
		{"spaced equals keeps key col", "Specification\nIO width = 16x\n", 2, 4},
		{"whole-line error has col 0", "Technology\nBitlineCap\n", 2, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseString(c.src)
			if err == nil {
				t.Fatal("expected error")
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error is %T (%v), want *ParseError", err, err)
			}
			if pe.Line != c.wantLine || pe.Col != c.wantCol {
				t.Errorf("position: got line %d col %d, want line %d col %d (%v)",
					pe.Line, pe.Col, c.wantLine, c.wantCol, pe)
			}
		})
	}
}

func TestParseFileErrorWrapsParseError(t *testing.T) {
	// ParseFile wraps with the path using %w so errors.As still recovers
	// the position.
	path := t.TempDir() + "/bad.dram"
	if err := os.WriteFile(path, []byte("Technology\nFluxCapacitance 1fF\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ParseFile(path)
	if err == nil {
		t.Fatal("expected error")
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T (%v), want wrapped *ParseError", err, err)
	}
	if pe.Line != 2 || pe.Col != 1 {
		t.Errorf("position: got line %d col %d, want line 2 col 1", pe.Line, pe.Col)
	}
	if !strings.Contains(err.Error(), path) {
		t.Errorf("error %q does not mention the file path", err)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	d, err := ParseString("# leading comment\n\nName test // trailing\n# done\n")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "test" {
		t.Errorf("name: got %q", d.Name)
	}
}

func TestLogicBlockParsing(t *testing.T) {
	src := "LogicBlock name=ctrl gates=15000 nmos=0.5um pmos=1.0um pergate=4 density=25% wiring=40% toggle=0.3 active=rd,wrt\n"
	d, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.LogicBlocks) != 1 {
		t.Fatalf("blocks: got %d", len(d.LogicBlocks))
	}
	b := d.LogicBlocks[0]
	if b.Name != "ctrl" || b.Gates != 15000 {
		t.Errorf("block: got %+v", b)
	}
	if math.Abs(b.GateDensity-0.25) > 1e-12 {
		t.Errorf("density: got %g", b.GateDensity)
	}
	if len(b.ActiveDuring) != 2 || b.ActiveDuring[0] != OpRead || b.ActiveDuring[1] != OpWrite {
		t.Errorf("active: got %v", b.ActiveDuring)
	}
	if b.ActiveFor(OpNop) {
		t.Error("rd/wrt block should not be active in nop")
	}
	if !b.ActiveFor(OpWrite) {
		t.Error("rd/wrt block should be active in wrt")
	}
}

func TestLogicBlockAlwaysActive(t *testing.T) {
	d, err := ParseString("LogicBlock name=clk gates=100 nmos=1um pmos=2um active=always\n")
	if err != nil {
		t.Fatal(err)
	}
	b := d.LogicBlocks[0]
	for _, op := range AllOps {
		if !b.ActiveFor(op) {
			t.Errorf("always-active block inactive for %v", op)
		}
	}
}

func TestElectricalParsing(t *testing.T) {
	src := `Electrical
Vdd 1.5V
Vint 1.3V eff=87%
Vbl 1.0V eff=80%
Vpp 2.9V eff=45%
ConstantCurrent 4mA
`
	d, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	el := d.Electrical
	if math.Abs(float64(el.Vdd)-1.5) > 1e-12 {
		t.Errorf("Vdd: got %v", el.Vdd)
	}
	if math.Abs(el.EffInt-0.87) > 1e-12 {
		t.Errorf("EffInt: got %g", el.EffInt)
	}
	if math.Abs(el.EffPp-0.45) > 1e-12 {
		t.Errorf("EffPp: got %g", el.EffPp)
	}
	if math.Abs(float64(el.ConstantCurrent)-4e-3) > 1e-12 {
		t.Errorf("ConstantCurrent: got %v", el.ConstantCurrent)
	}
	v, eff := el.DomainVoltageAndEff(DomainVpp)
	if math.Abs(float64(v)-2.9) > 1e-12 || math.Abs(eff-0.45) > 1e-12 {
		t.Errorf("DomainVoltageAndEff(Vpp): got %v, %g", v, eff)
	}
	v, eff = el.DomainVoltageAndEff(DomainVdd)
	if math.Abs(float64(v)-1.5) > 1e-12 || eff != 1 {
		t.Errorf("DomainVoltageAndEff(Vdd): got %v, %g", v, eff)
	}
}

func TestTechnologyParsing(t *testing.T) {
	src := `Technology
GateOxideLogic 4nm
BitlineCap 80fF
CellCap 25fF
BitlineToWLShare 30%
BitsPerCSL 8
WireCapSignal 0.2fF/um
`
	d, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	te := d.Technology
	if got := te.GateOxideLogic.Nanometers(); math.Abs(got-4) > 1e-9 {
		t.Errorf("GateOxideLogic: got %gnm", got)
	}
	if got := te.BitlineCap.Femtofarads(); math.Abs(got-80) > 1e-9 {
		t.Errorf("BitlineCap: got %gfF", got)
	}
	if math.Abs(te.BitlineToWLShare-0.3) > 1e-12 {
		t.Errorf("BitlineToWLShare: got %g", te.BitlineToWLShare)
	}
	if te.BitsPerCSL != 8 {
		t.Errorf("BitsPerCSL: got %d", te.BitsPerCSL)
	}
	wantWC := 0.2 * units.Femto / units.Micro
	if math.Abs(float64(te.WireCapSignal)-wantWC) > 1e-20 {
		t.Errorf("WireCapSignal: got %g, want %g", float64(te.WireCapSignal), wantWC)
	}
}

func TestTechnologyParameterNamesComplete(t *testing.T) {
	// Every listed name must have a setter and the list must cover all 39
	// technology parameters of Table I.
	var tech Technology
	setters := technologySetters(&tech)
	names := TechnologyParameterNames()
	if len(names) != 39 {
		t.Errorf("technology parameter count: got %d, want 39 (paper Section III.B.3)", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate parameter name %s", n)
		}
		seen[n] = true
		if _, ok := setters[n]; !ok {
			t.Errorf("parameter %s has no setter", n)
		}
	}
	if len(setters) != len(names) {
		t.Errorf("setters (%d) and names (%d) disagree", len(setters), len(names))
	}
}

func TestSpecificationDerived(t *testing.T) {
	d := Sample1GbDDR3()
	if got := d.Spec.Banks(); got != 8 {
		t.Errorf("banks: got %d, want 8", got)
	}
	// Page = 2^10 col addrs x 16 DQ = 16 Kbit = 2 KB.
	if got := d.Spec.PageBits(); got != 16384 {
		t.Errorf("page bits: got %d, want 16384", got)
	}
	if got := d.Spec.Prefetch(); got != 2 {
		// datarate 1.6G / control clock 800M = 2 (DDR); the burst length
		// field carries the architectural prefetch of 8.
		t.Errorf("prefetch: got %d, want 2", got)
	}
}

func TestSampleValidates(t *testing.T) {
	d := Sample1GbDDR3()
	if err := d.Validate(); err != nil {
		ve := err.(*ValidationError)
		for _, p := range ve.Problems {
			t.Errorf("sample: %s", p)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := Sample1GbDDR3()
	c := d.Clone()
	c.Floorplan.BlockWidth["A1"] = units.Micrometers(1)
	c.Signals[0].Inside.X = 99
	c.LogicBlocks[0].Gates = 1
	c.Pattern.Loop[0] = OpNop
	c.Floorplan.HorizontalBlocks[0] = "Z"
	if d.Floorplan.BlockWidth["A1"] == units.Micrometers(1) {
		t.Error("block width map shared")
	}
	if d.Signals[0].Inside.X == 99 {
		t.Error("signal block ref shared")
	}
	if d.LogicBlocks[0].Gates == 1 {
		t.Error("logic blocks shared")
	}
	if d.Pattern.Loop[0] == OpNop {
		t.Error("pattern shared")
	}
	if d.Floorplan.HorizontalBlocks[0] == "Z" {
		t.Error("horizontal blocks shared")
	}
}

func TestKindForBus(t *testing.T) {
	cases := map[string]SignalKind{
		"DataW0": SigDataWrite, "DataR3": SigDataRead, "Data5": SigDataShared,
		"Clk0": SigClock, "Ctrl1": SigControl, "Cmd0": SigControl,
		"AddrRow0": SigAddrRow, "AddrCol2": SigAddrCol, "AddrBank0": SigAddrBank,
	}
	for name, want := range cases {
		got, err := KindForBus(name)
		if err != nil {
			t.Errorf("KindForBus(%q): %v", name, err)
			continue
		}
		if got != want {
			t.Errorf("KindForBus(%q) = %v, want %v", name, got, want)
		}
	}
	if _, err := KindForBus("Mystery0"); err == nil {
		t.Error("KindForBus(Mystery0): expected error")
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	d := Sample1GbDDR3()
	d.Floorplan.BitsPerBitline = 0
	d.Electrical.Vpp = 0.5 // below Vbl
	d.Pattern.Loop = nil
	d.Signals[0].Fraction = 2
	err := d.Validate()
	if err == nil {
		t.Fatal("expected validation error")
	}
	ve, ok := err.(*ValidationError)
	if !ok {
		t.Fatalf("error is %T", err)
	}
	if len(ve.Problems) < 4 {
		t.Errorf("expected at least 4 problems, got %d: %v", len(ve.Problems), ve.Problems)
	}
	joined := strings.Join(ve.Problems, "\n")
	for _, want := range []string{"BitsPerBL", "Vpp", "pattern", "fraction"} {
		if !strings.Contains(joined, want) {
			t.Errorf("problems missing %q:\n%s", want, joined)
		}
	}
}

func TestValidateSpanNeedsBothEnds(t *testing.T) {
	d := Sample1GbDDR3()
	d.Signals[1].Start = nil // had span form; now end only
	d.Signals[1].Inside = nil
	if err := d.Validate(); err == nil {
		t.Error("expected error for half-open span")
	}
}

func TestDefaultToggle(t *testing.T) {
	if DefaultToggle(SigClock) != 1.0 {
		t.Error("clock toggle should be 1.0")
	}
	if DefaultToggle(SigDataRead) != 0.25 {
		t.Error("data toggle should be 0.25")
	}
	if DefaultToggle(SigControl) >= DefaultToggle(SigDataRead) {
		t.Error("control should toggle less than data")
	}
}
