package desc

import (
	"errors"
	"strings"
	"testing"
)

// FuzzOverlay drives the calibration-overlay parser with mutated inputs,
// extending the FuzzParse contract to the second document type the
// package parses: no panics, positioned errors on rejection, and a
// bit-exact canonical fixed point (FormatOverlay ∘ ParseOverlay is
// idempotent) for everything accepted — the server derives calibrated
// model-cache keys from that canonical form.
func FuzzOverlay(f *testing.F) {
	f.Add("Calibration measured\nidd0 = 58mA\nop.rd.energy *= 1.07\n")
	f.Add("idd2n = 35.8mA\nidd6 = 4.2mA\nstandby = 45mW\n")
	f.Add("op.act.energy = 2.4nJ\nop.wrt.energy*=0.93\nselfrefresh *= 2\n")
	f.Add("")
	f.Add("# comment\n\nCalibration\n")
	f.Add("idd0 *= 1e308\nidd7 = 0.2A\n")
	f.Add("powerdown = 9e999mW\n")
	f.Add("idd0 = 1mA idd5 = 2mA\n")

	f.Fuzz(func(t *testing.T, src string) {
		ov, err := ParseOverlayString(src)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("non-positioned parse error %T: %v", err, err)
			}
			if pe.Line < 1 {
				t.Fatalf("parse error with line %d: %v", pe.Line, pe)
			}
			return
		}
		canon := FormatOverlay(ov)
		ov2, err := ParseOverlayString(canon)
		if err != nil {
			t.Fatalf("accepted input failed the canonical round-trip:\ninput: %q\ncanon: %q\nerr: %v",
				src, canon, err)
		}
		if again := FormatOverlay(ov2); again != canon {
			t.Fatalf("canonical form is not a fixed point:\nfirst:  %q\nsecond: %q", canon, again)
		}
		if !strings.HasSuffix(canon, "\n") {
			t.Fatalf("FormatOverlay output misses the trailing newline: %q", canon)
		}
	})
}
