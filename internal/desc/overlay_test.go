package desc

import (
	"errors"
	"strings"
	"testing"
)

func TestParseOverlayForms(t *testing.T) {
	src := `
# measured against a pool of five vendor parts
Calibration vendor pool
idd0 = 58mA
op.rd.energy *= 1.07
op.wrt.energy*=0.93
standby = 45mW
op.act.energy = 2.4nJ
idd6=4.2mA
`
	ov, err := ParseOverlayString(src)
	if err != nil {
		t.Fatal(err)
	}
	if ov.Name != "vendor pool" {
		t.Errorf("name = %q, want %q", ov.Name, "vendor pool")
	}
	// Expected SI values are computed the way the parser computes them
	// (runtime multiply by the prefix), not as exact decimal literals —
	// 4.2*1e-3 at runtime differs from the literal 0.0042 by one ulp.
	milli := 1e-3
	want := []OverlayEntry{
		{Key: "idd0", Value: 58e-3},
		{Key: "op.rd.energy", Scale: true, Value: 1.07},
		{Key: "op.wrt.energy", Scale: true, Value: 0.93},
		{Key: "standby", Value: 45e-3},
		{Key: "op.act.energy", Value: 2.4e-9},
		{Key: "idd6", Value: 4.2 * milli},
	}
	if len(ov.Entries) != len(want) {
		t.Fatalf("got %d entries, want %d: %+v", len(ov.Entries), len(want), ov.Entries)
	}
	for i, w := range want {
		if ov.Entries[i] != w {
			t.Errorf("entry %d = %+v, want %+v", i, ov.Entries[i], w)
		}
	}
}

func TestParseOverlayEmpty(t *testing.T) {
	for _, src := range []string{"", "# only a comment\n", "Calibration\n", "Calibration a b\n"} {
		ov, err := ParseOverlayString(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if !ov.Empty() {
			t.Errorf("%q: overlay not empty: %+v", src, ov)
		}
	}
	var nilOv *Overlay
	if !nilOv.Empty() {
		t.Error("nil overlay should be empty")
	}
}

func TestParseOverlayErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"bogus = 1mA\n", "unknown calibration key"},
		{"idd0 = 58mW\n", "does not end"},
		{"idd0 *= -2\n", "scale factor"},
		{"idd0 *= NaN\n", "scale factor"},
		{"idd0 *= 0\n", "scale factor"},
		{"idd0 = -1mA\n", "non-negative"},
		{"idd0 = NaNmA\n", "numeric"},
		{"idd0\n", "calibration entries are"},
		{"idd0 = 1mA extra\n", "calibration entries are"},
		{"op.nop.energy = 1nJ\n", "unknown calibration key"},
		{"idd0 = 1mA\nCalibration late\n", "first directive"},
		{"Calibration x=y\n", "bare words"},
	}
	for _, tc := range cases {
		_, err := ParseOverlayString(tc.src)
		if err == nil {
			t.Errorf("%q: expected error", tc.src)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) || pe.Line < 1 {
			t.Errorf("%q: non-positioned error %T: %v", tc.src, err, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%q: error %q does not mention %q", tc.src, err, tc.want)
		}
	}
}

func TestFormatOverlayRoundTrip(t *testing.T) {
	src := "Calibration m\nidd0 = 58mA\nop.rd.energy *= 1.07\nstandby = 45mW\nop.act.energy = 2.4nJ\n"
	ov, err := ParseOverlayString(src)
	if err != nil {
		t.Fatal(err)
	}
	canon := FormatOverlay(ov)
	ov2, err := ParseOverlayString(canon)
	if err != nil {
		t.Fatalf("canonical form does not reparse: %q: %v", canon, err)
	}
	if again := FormatOverlay(ov2); again != canon {
		t.Fatalf("canonical form is not a fixed point:\nfirst:  %q\nsecond: %q", canon, again)
	}
	if ov2.Name != ov.Name || len(ov2.Entries) != len(ov.Entries) {
		t.Fatalf("round trip lost content: %+v vs %+v", ov2, ov)
	}
	for i := range ov.Entries {
		if ov.Entries[i] != ov2.Entries[i] {
			t.Errorf("entry %d: %+v != %+v", i, ov.Entries[i], ov2.Entries[i])
		}
	}
}

func TestOverlayKeysComplete(t *testing.T) {
	keys := OverlayKeys()
	set := map[string]bool{}
	for _, k := range keys {
		set[k] = true
	}
	for _, k := range []string{"idd0", "idd2n", "idd2p", "idd3n", "idd4r", "idd4w",
		"idd5", "idd6", "idd7", "standby", "powerdown", "selfrefresh",
		"op.act.energy", "op.pre.energy", "op.rd.energy", "op.wrt.energy", "op.ref.energy"} {
		if !set[k] {
			t.Errorf("missing overlay key %q", k)
		}
	}
	if set["op.nop.energy"] {
		t.Error("op.nop.energy must not be a calibration key")
	}
}

func TestParseDocumentSplitsCalibration(t *testing.T) {
	base := Format(Sample1GbDDR3())

	d, ov, err := ParseDocument(strings.NewReader(base))
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || ov != nil {
		t.Fatalf("plain descriptor: d=%v ov=%v", d, ov)
	}
	if Format(d) != base {
		t.Error("plain descriptor did not round-trip through ParseDocument")
	}

	combined := base + "\nCalibration measured\nidd0 = 58mA\n"
	d, ov, err = ParseDocument(strings.NewReader(combined))
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || ov == nil {
		t.Fatalf("combined document: d=%v ov=%v", d, ov)
	}
	if Format(d) != base {
		t.Error("combined document changed the descriptor half")
	}
	if ov.Name != "measured" || len(ov.Entries) != 1 || ov.Entries[0].Key != "idd0" {
		t.Errorf("overlay half = %+v", ov)
	}

	d, ov, err = ParseDocument(strings.NewReader("Calibration\nidd5 *= 1.1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d != nil {
		t.Errorf("calibration-only document returned a descriptor: %v", d)
	}
	if ov == nil || len(ov.Entries) != 1 {
		t.Errorf("calibration-only overlay = %+v", ov)
	}

	d, ov, err = ParseDocument(strings.NewReader("  \n# nothing\n"))
	if err != nil || d != nil || ov != nil {
		t.Errorf("empty document: d=%v ov=%v err=%v", d, ov, err)
	}
}
