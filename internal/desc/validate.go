package desc

import (
	"fmt"
)

// ValidationError collects every problem found in a description so a user
// can fix an input file in one pass.
type ValidationError struct {
	Problems []string
}

// Error implements the error interface.
func (e *ValidationError) Error() string {
	switch len(e.Problems) {
	case 0:
		return "desc: invalid description"
	case 1:
		return "desc: " + e.Problems[0]
	}
	return fmt.Sprintf("desc: %d problems, first: %s", len(e.Problems), e.Problems[0])
}

func (e *ValidationError) addf(format string, args ...any) {
	e.Problems = append(e.Problems, fmt.Sprintf(format, args...))
}

// Validate checks the description for internal consistency: required
// parameters present, block references resolvable, voltages ordered
// sensibly, pattern non-empty. It returns nil or a *ValidationError
// listing every problem.
func (d *Description) Validate() error {
	e := &ValidationError{}

	fp := &d.Floorplan
	if fp.BitsPerBitline <= 0 {
		e.addf("floorplan: BitsPerBL must be positive, got %d", fp.BitsPerBitline)
	}
	if fp.BitsPerLocalWordline <= 0 {
		e.addf("floorplan: BitsPerLWL must be positive, got %d", fp.BitsPerLocalWordline)
	}
	if fp.BlocksPerCSL <= 0 {
		e.addf("floorplan: blocks per CSL must be positive, got %d", fp.BlocksPerCSL)
	}
	if fp.WordlinePitch <= 0 {
		e.addf("floorplan: wordline pitch must be positive, got %v", fp.WordlinePitch)
	}
	if fp.BitlinePitch <= 0 {
		e.addf("floorplan: bitline pitch must be positive, got %v", fp.BitlinePitch)
	}
	if fp.BLSAStripeWidth <= 0 {
		e.addf("floorplan: BLSA stripe width must be positive, got %v", fp.BLSAStripeWidth)
	}
	if fp.LWDStripeWidth <= 0 {
		e.addf("floorplan: LWD stripe width must be positive, got %v", fp.LWDStripeWidth)
	}
	if fp.ActivationFraction < 0 || fp.ActivationFraction > 1 {
		e.addf("floorplan: activation fraction %g outside [0,1]", fp.ActivationFraction)
	}
	if len(fp.HorizontalBlocks) == 0 {
		e.addf("floorplan: no horizontal block list")
	}
	if len(fp.VerticalBlocks) == 0 {
		e.addf("floorplan: no vertical block list")
	}
	// Every named block needs a size along both axes, and at least one
	// array block must exist.
	arrays := 0
	for _, n := range fp.HorizontalBlocks {
		if _, ok := fp.BlockWidth[n]; !ok {
			e.addf("floorplan: block %q has no horizontal size", n)
		}
		if IsArrayBlock(n) {
			arrays++
		}
	}
	for _, n := range fp.VerticalBlocks {
		if _, ok := fp.BlockHeight[n]; !ok {
			e.addf("floorplan: block %q has no vertical size", n)
		}
	}
	if arrays == 0 && len(fp.HorizontalBlocks) > 0 {
		e.addf("floorplan: no array block (name starting with 'A') in horizontal list")
	}

	for i, s := range d.Signals {
		hasInside := s.Inside != nil
		hasSpan := s.Start != nil || s.End != nil
		switch {
		case hasInside && hasSpan:
			e.addf("signal %s: both inside-form and span-form given", s.Name)
		case hasInside:
			if s.Fraction <= 0 || s.Fraction > 1 {
				e.addf("signal %s: fraction %g outside (0,1]", s.Name, s.Fraction)
			}
			if !d.blockRefValid(*s.Inside) {
				e.addf("signal %s: block %v outside floorplan grid", s.Name, *s.Inside)
			}
		case hasSpan:
			if s.Start == nil || s.End == nil {
				e.addf("signal %s: span-form needs both start and end", s.Name)
			} else {
				if !d.blockRefValid(*s.Start) {
					e.addf("signal %s: start block %v outside floorplan grid", s.Name, *s.Start)
				}
				if !d.blockRefValid(*s.End) {
					e.addf("signal %s: end block %v outside floorplan grid", s.Name, *s.End)
				}
			}
		default:
			e.addf("signal %s: neither inside-form nor span-form given", s.Name)
		}
		if s.MuxRatio < 0 {
			e.addf("signal %s: negative mux ratio %d", s.Name, s.MuxRatio)
		}
		if s.Wires < 0 {
			e.addf("signal %s: negative wire count %d", s.Name, s.Wires)
		}
		if s.ActiveFrac < 0 || s.ActiveFrac > 1 {
			e.addf("signal %s: active fraction %g outside [0,1]", s.Name, s.ActiveFrac)
		}
		_ = i
	}

	t := &d.Technology
	checkPos := func(what string, v float64) {
		if v <= 0 {
			e.addf("technology: %s must be positive, got %g", what, v)
		}
	}
	checkPos("gate oxide logic", float64(t.GateOxideLogic))
	checkPos("gate oxide HV", float64(t.GateOxideHV))
	checkPos("gate oxide cell", float64(t.GateOxideCell))
	checkPos("min gate length logic", float64(t.MinGateLengthLogic))
	checkPos("min gate length HV", float64(t.MinGateLengthHV))
	checkPos("cell access length", float64(t.CellAccessLength))
	checkPos("cell access width", float64(t.CellAccessWidth))
	checkPos("bitline capacitance", float64(t.BitlineCap))
	checkPos("cell capacitance", float64(t.CellCap))
	checkPos("wire cap master wordline", float64(t.WireCapMWL))
	checkPos("wire cap local wordline", float64(t.WireCapLWL))
	checkPos("wire cap signal", float64(t.WireCapSignal))
	if t.BitlineToWLShare < 0 || t.BitlineToWLShare > 1 {
		e.addf("technology: bitline-to-wordline share %g outside [0,1]", t.BitlineToWLShare)
	}
	if t.BitsPerCSL <= 0 {
		e.addf("technology: bits per CSL must be positive, got %d", t.BitsPerCSL)
	}

	s := &d.Spec
	if s.IOWidth <= 0 {
		e.addf("specification: IO width must be positive, got %d", s.IOWidth)
	}
	if s.DataRate <= 0 {
		e.addf("specification: data rate must be positive, got %v", s.DataRate)
	}
	if s.ControlClock <= 0 {
		e.addf("specification: control clock must be positive, got %v", s.ControlClock)
	}
	if s.DataClock <= 0 {
		e.addf("specification: data clock must be positive, got %v", s.DataClock)
	}
	if s.RowCycle <= 0 {
		e.addf("specification: row cycle time (tRC) must be positive, got %v", s.RowCycle)
	}
	if s.BankAddrBits < 0 || s.RowAddrBits <= 0 || s.ColAddrBits <= 0 {
		e.addf("specification: address bits invalid (bank=%d row=%d col=%d)",
			s.BankAddrBits, s.RowAddrBits, s.ColAddrBits)
	}
	if s.BurstLength < 0 {
		e.addf("specification: negative burst length %d", s.BurstLength)
	}

	el := &d.Electrical
	if el.Vdd <= 0 {
		e.addf("electrical: Vdd must be positive, got %v", el.Vdd)
	}
	if el.Vint <= 0 || el.Vbl <= 0 || el.Vpp <= 0 {
		e.addf("electrical: all domain voltages must be positive (Vint=%v Vbl=%v Vpp=%v)",
			el.Vint, el.Vbl, el.Vpp)
	}
	if el.Vpp > 0 && el.Vpp <= el.Vbl {
		e.addf("electrical: Vpp (%v) must exceed Vbl (%v) for cell write-back", el.Vpp, el.Vbl)
	}
	for _, eff := range []struct {
		name string
		v    float64
	}{{"Vint", el.EffInt}, {"Vbl", el.EffBl}, {"Vpp", el.EffPp}} {
		if eff.v <= 0 || eff.v > 1 {
			e.addf("electrical: %s generator efficiency %g outside (0,1]", eff.name, eff.v)
		}
	}
	if el.ConstantCurrent < 0 {
		e.addf("electrical: negative constant current %v", el.ConstantCurrent)
	}

	for _, b := range d.LogicBlocks {
		if b.Gates <= 0 {
			e.addf("logic block %s: gate count must be positive, got %d", b.Name, b.Gates)
		}
		if b.AvgNMOSWidth <= 0 || b.AvgPMOSWidth <= 0 {
			e.addf("logic block %s: device widths must be positive", b.Name)
		}
		if b.TransistorsPerGate <= 0 {
			e.addf("logic block %s: transistors per gate must be positive", b.Name)
		}
		if b.GateDensity <= 0 || b.GateDensity > 1 {
			e.addf("logic block %s: gate density %g outside (0,1]", b.Name, b.GateDensity)
		}
		if b.WiringDensity < 0 || b.WiringDensity > 1 {
			e.addf("logic block %s: wiring density %g outside [0,1]", b.Name, b.WiringDensity)
		}
		if b.Toggle < 0 {
			e.addf("logic block %s: negative toggle rate %g", b.Name, b.Toggle)
		}
	}

	if len(d.Pattern.Loop) == 0 {
		e.addf("pattern: empty command loop")
	}

	if len(e.Problems) == 0 {
		return nil
	}
	return e
}

// blockRefValid reports whether r lies inside the floorplan grid.
func (d *Description) blockRefValid(r BlockRef) bool {
	return r.X >= 0 && r.X < len(d.Floorplan.HorizontalBlocks) &&
		r.Y >= 0 && r.Y < len(d.Floorplan.VerticalBlocks)
}
