package desc

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"drampower/internal/units"
)

// Format renders the description in the input language such that
// Parse(Format(d)) reproduces d. It is used for golden files, for emitting
// derived descriptions (scaled generations, scheme variants) and for the
// round-trip property test.
func Format(d *Description) string {
	var b strings.Builder
	write(&b, d)
	return b.String()
}

// WriteTo writes the formatted description to w.
func WriteTo(w io.Writer, d *Description) error {
	_, err := io.WriteString(w, Format(d))
	return err
}

func write(b *strings.Builder, d *Description) {
	if d.Name != "" {
		fmt.Fprintf(b, "Name %s\n\n", d.Name)
	}

	fp := &d.Floorplan
	b.WriteString("FloorplanPhysical\n")
	fmt.Fprintf(b, "CellArray BL=%s BitsPerBL=%d BitsPerLWL=%d BLtype=%s\n",
		fp.BitlineDir, fp.BitsPerBitline, fp.BitsPerLocalWordline, fp.Arch)
	fmt.Fprintf(b, "CellArray WLpitch=%s BLpitch=%s\n",
		lenStr(fp.WordlinePitch), lenStr(fp.BitlinePitch))
	fmt.Fprintf(b, "Stripes BLSA=%s LWD=%s\n",
		lenStr(fp.BLSAStripeWidth), lenStr(fp.LWDStripeWidth))
	if fp.ActivationFraction > 0 && fp.ActivationFraction != 1 {
		fmt.Fprintf(b, "CellArray ActFraction=%g\n", fp.ActivationFraction)
	}
	fmt.Fprintf(b, "CSL blocks=%d\n", fp.BlocksPerCSL)
	fmt.Fprintf(b, "Horizontal blocks = %s\n", strings.Join(fp.HorizontalBlocks, " "))
	fmt.Fprintf(b, "SizeHorizontal %s\n", sizeList(fp.BlockWidth))
	fmt.Fprintf(b, "Vertical blocks = %s\n", strings.Join(fp.VerticalBlocks, " "))
	fmt.Fprintf(b, "SizeVertical %s\n", sizeList(fp.BlockHeight))

	b.WriteString("\nFloorplanSignaling\n")
	for _, s := range d.Signals {
		fmt.Fprintf(b, "%s", s.Name)
		if s.Inside != nil {
			fmt.Fprintf(b, " inside=%s fraction=%g dir=%s", s.Inside, s.Fraction, s.Dir)
		}
		if s.Start != nil {
			fmt.Fprintf(b, " start=%s", s.Start)
		}
		if s.End != nil {
			fmt.Fprintf(b, " end=%s", s.End)
		}
		if s.BufNWidth > 0 {
			fmt.Fprintf(b, " NchW=%s", lenStr(s.BufNWidth))
		}
		if s.BufPWidth > 0 {
			fmt.Fprintf(b, " PchW=%s", lenStr(s.BufPWidth))
		}
		if s.MuxRatio > 1 {
			fmt.Fprintf(b, " mux=1:%d", s.MuxRatio)
		}
		if s.Toggle >= 0 {
			fmt.Fprintf(b, " toggle=%g", s.Toggle)
		}
		if s.Wires > 0 {
			fmt.Fprintf(b, " wires=%d", s.Wires)
		}
		if s.ActiveFrac > 0 && s.ActiveFrac != 1 {
			fmt.Fprintf(b, " activefrac=%g", s.ActiveFrac)
		}
		b.WriteByte('\n')
	}

	t := &d.Technology
	b.WriteString("\nTechnology\n")
	for _, kv := range []struct {
		key string
		val string
	}{
		{"GateOxideLogic", lenStr(t.GateOxideLogic)},
		{"GateOxideHV", lenStr(t.GateOxideHV)},
		{"GateOxideCell", lenStr(t.GateOxideCell)},
		{"MinGateLengthLogic", lenStr(t.MinGateLengthLogic)},
		{"JunctionCapLogic", cplStr(t.JunctionCapLogic)},
		{"MinGateLengthHV", lenStr(t.MinGateLengthHV)},
		{"JunctionCapHV", cplStr(t.JunctionCapHV)},
		{"CellAccessLength", lenStr(t.CellAccessLength)},
		{"CellAccessWidth", lenStr(t.CellAccessWidth)},
		{"BitlineCap", capStr(t.BitlineCap)},
		{"CellCap", capStr(t.CellCap)},
		{"BitlineToWLShare", fmt.Sprintf("%g", t.BitlineToWLShare)},
		{"BitsPerCSL", fmt.Sprintf("%d", t.BitsPerCSL)},
		{"WireCapMWL", cplStr(t.WireCapMWL)},
		{"MWLPredecodeRatio", fmt.Sprintf("%g", t.MWLPredecodeRatio)},
		{"MWLDecoderNMOS", lenStr(t.MWLDecoderNMOS)},
		{"MWLDecoderPMOS", lenStr(t.MWLDecoderPMOS)},
		{"MWLDecoderActivity", fmt.Sprintf("%g", t.MWLDecoderActivity)},
		{"WLControlLoadNMOS", lenStr(t.WLControlLoadNMOS)},
		{"WLControlLoadPMOS", lenStr(t.WLControlLoadPMOS)},
		{"SWDriverNMOS", lenStr(t.SWDriverNMOS)},
		{"SWDriverPMOS", lenStr(t.SWDriverPMOS)},
		{"SWDriverRestore", lenStr(t.SWDriverRestore)},
		{"WireCapLWL", cplStr(t.WireCapLWL)},
		{"BLSASenseNMOSWidth", lenStr(t.BLSASenseNMOSWidth)},
		{"BLSASenseNMOSLength", lenStr(t.BLSASenseNMOSLength)},
		{"BLSASensePMOSWidth", lenStr(t.BLSASensePMOSWidth)},
		{"BLSASensePMOSLength", lenStr(t.BLSASensePMOSLength)},
		{"BLSAEqualizeWidth", lenStr(t.BLSAEqualizeWidth)},
		{"BLSAEqualizeLength", lenStr(t.BLSAEqualizeLength)},
		{"BLSABitSwitchWidth", lenStr(t.BLSABitSwitchWidth)},
		{"BLSABitSwitchLength", lenStr(t.BLSABitSwitchLength)},
		{"BLSAMuxWidth", lenStr(t.BLSAMuxWidth)},
		{"BLSAMuxLength", lenStr(t.BLSAMuxLength)},
		{"BLSANSetWidth", lenStr(t.BLSANSetWidth)},
		{"BLSANSetLength", lenStr(t.BLSANSetLength)},
		{"BLSAPSetWidth", lenStr(t.BLSAPSetWidth)},
		{"BLSAPSetLength", lenStr(t.BLSAPSetLength)},
		{"WireCapSignal", cplStr(t.WireCapSignal)},
	} {
		fmt.Fprintf(b, "%s %s\n", kv.key, kv.val)
	}

	s := &d.Spec
	b.WriteString("\nSpecification\n")
	fmt.Fprintf(b, "IO width=%d datarate=%s\n", s.IOWidth, rateStr(s.DataRate))
	fmt.Fprintf(b, "Clock number=%d frequency=%s\n", s.ClockWires, freqStr(s.DataClock))
	fmt.Fprintf(b, "Control frequency=%s bankadd=%d rowadd=%d coladd=%d misc=%d\n",
		freqStr(s.ControlClock), s.BankAddrBits, s.RowAddrBits, s.ColAddrBits,
		s.MiscCtrlSignals)
	if s.BurstLength > 0 {
		fmt.Fprintf(b, "Burst length=%d\n", s.BurstLength)
	}
	b.WriteString("Timing")
	for _, kv := range []struct {
		key string
		val units.Duration
	}{
		{"tRC", s.RowCycle}, {"tRCD", s.RowToColumnDelay},
		{"tRP", s.PrechargeTime}, {"CL", s.CASLatency},
		{"tFAW", s.FourBankWindow}, {"tRRD", s.RowToRowDelay},
		{"tREFI", s.RefreshInterval}, {"tRFC", s.RefreshCycle},
	} {
		if kv.val > 0 {
			fmt.Fprintf(b, " %s=%s", kv.key, durStr(kv.val))
		}
	}
	b.WriteByte('\n')

	el := &d.Electrical
	b.WriteString("\nElectrical\n")
	fmt.Fprintf(b, "Vdd %s\n", voltStr(el.Vdd))
	fmt.Fprintf(b, "Vint %s eff=%g\n", voltStr(el.Vint), el.EffInt)
	fmt.Fprintf(b, "Vbl %s eff=%g\n", voltStr(el.Vbl), el.EffBl)
	fmt.Fprintf(b, "Vpp %s eff=%g\n", voltStr(el.Vpp), el.EffPp)
	if el.ConstantCurrent > 0 {
		fmt.Fprintf(b, "ConstantCurrent %s\n", units.FormatSI(float64(el.ConstantCurrent), "A"))
	}

	b.WriteByte('\n')
	for _, lb := range d.LogicBlocks {
		fmt.Fprintf(b, "LogicBlock name=%s gates=%d nmos=%s pmos=%s pergate=%g density=%g wiring=%g toggle=%g",
			lb.Name, lb.Gates, lenStr(lb.AvgNMOSWidth), lenStr(lb.AvgPMOSWidth),
			lb.TransistorsPerGate, lb.GateDensity, lb.WiringDensity, lb.Toggle)
		if len(lb.ActiveDuring) > 0 {
			names := make([]string, len(lb.ActiveDuring))
			for i, op := range lb.ActiveDuring {
				names[i] = op.String()
			}
			fmt.Fprintf(b, " active=%s", strings.Join(names, ","))
		}
		b.WriteByte('\n')
	}

	if len(d.Pattern.Loop) > 0 {
		fmt.Fprintf(b, "\nPattern loop= %s\n", d.Pattern.String())
	}
}

func sizeList(m map[string]units.Length) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%s", k, lenStr(m[k]))
	}
	return strings.Join(parts, " ")
}

// Precise (non-rounding) formatters: serialization must round-trip exactly,
// so these use full float precision in fixed convenient units.
//
// Exactness is subtle: the parser reconstructs the SI value from the
// printed quotient with its own float rounding (sometimes two roundings,
// as for fF/um which multiplies by 1e-15 and then divides by 1e-6), so
// the naive division here can land one ulp away from a quotient that
// reproduces the stored value bit-exactly. exactQuot nudges the quotient
// by a few ulps until the parse-side reconstruction matches, which makes
// Format a true inverse of Parse — and the canonical form a fixed point —
// whenever the stored value was itself produced by parsing.
func exactQuot(v, div float64, recon func(float64) float64) float64 {
	q := v / div
	if recon(q) == v {
		return q
	}
	for _, dir := range [...]float64{math.Inf(1), math.Inf(-1)} {
		p := q
		for i := 0; i < 4; i++ {
			p = math.Nextafter(p, dir)
			if recon(p) == v {
				return p
			}
		}
	}
	return q
}

func lenStr(l units.Length) string {
	q := exactQuot(float64(l), units.Nano, func(q float64) float64 { return q * units.Nano })
	return fmt.Sprintf("%gnm", q)
}

func capStr(c units.Capacitance) string {
	q := exactQuot(float64(c), units.Femto, func(q float64) float64 { return q * units.Femto })
	return fmt.Sprintf("%gfF", q)
}

func cplStr(c units.CapacitancePerLength) string {
	// The parser computes (q fF) / (1 um) with two separate roundings.
	q := exactQuot(float64(c), units.Femto/units.Micro,
		func(q float64) float64 { return (q * units.Femto) / units.Micro })
	return fmt.Sprintf("%gfF/um", q)
}

func voltStr(v units.Voltage) string { return fmt.Sprintf("%gV", float64(v)) }

func freqStr(f units.Frequency) string {
	q := exactQuot(float64(f), units.Mega, func(q float64) float64 { return q * units.Mega })
	return fmt.Sprintf("%gMHz", q)
}

func rateStr(r units.DataRate) string {
	q := exactQuot(float64(r), units.Mega, func(q float64) float64 { return q * units.Mega })
	return fmt.Sprintf("%gMbps", q)
}

func durStr(d units.Duration) string {
	q := exactQuot(float64(d), units.Nano, func(q float64) float64 { return q * units.Nano })
	return fmt.Sprintf("%gns", q)
}
