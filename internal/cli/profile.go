package cli

import (
	"flag"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiler is the shared -cpuprofile/-memprofile registration of the
// cmd/* binaries, so scheduling and replay hot paths can be profiled
// without recompiling:
//
//	prof := cli.ProfileVars()
//	flag.Parse()
//	defer prof.Start(tool)()
//
// Start begins CPU profiling when -cpuprofile was given; the returned
// stop function flushes the CPU profile and writes the -memprofile heap
// snapshot (after a GC, so it reflects live memory). Both files are in
// the pprof format `go tool pprof` reads. Error exits through
// cli.Fatal* bypass the deferred stop — profiles cover successful runs.
type Profiler struct {
	cpu *string
	mem *string
	f   *os.File
}

// ProfileVars registers the -cpuprofile and -memprofile flags.
func ProfileVars() *Profiler {
	return &Profiler{
		cpu: flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)"),
		mem: flag.String("memprofile", "", "write a heap profile to this file at exit (go tool pprof)"),
	}
}

// Start begins CPU profiling if requested and returns the function that
// flushes both profiles; defer it in main after flag.Parse.
func (p *Profiler) Start(tool string) func() {
	if *p.cpu != "" {
		f, err := os.Create(*p.cpu)
		if err != nil {
			Fatal(tool, err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			Fatal(tool, err)
		}
		p.f = f
	}
	return func() { p.stop(tool) }
}

func (p *Profiler) stop(tool string) {
	if p.f != nil {
		pprof.StopCPUProfile()
		if err := p.f.Close(); err != nil {
			Fatal(tool, err)
		}
		p.f = nil
	}
	if *p.mem != "" {
		f, err := os.Create(*p.mem)
		if err != nil {
			Fatal(tool, err)
		}
		runtime.GC() // the heap profile should show live memory, not garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			Fatal(tool, err)
		}
		if err := f.Close(); err != nil {
			Fatal(tool, err)
		}
	}
}
