package cli

import (
	"flag"
	"fmt"

	"drampower/internal/desc"
	"drampower/internal/scaling"
)

// This file centralizes the flags every cmd/* binary used to register by
// hand: the -workers pool size, the -format selector, the description
// source (-f/-desc plus optionally -node) and the -calib calibration
// overlay. Registering through these helpers keeps the flag names, help
// strings and failure diagnostics identical across the tools.

// WorkersVar registers the -workers flag into dst with the shared help
// text; what names the work the pool runs ("the sweep", "the replay").
func WorkersVar(dst *int, what string) {
	flag.IntVar(dst, "workers", 0,
		fmt.Sprintf("worker pool size for %s (0 = one per CPU, 1 = serial)", what))
}

// FormatVar registers the -format flag (text or json). Validate the
// parsed value with MustFormat before first use.
func FormatVar() *string {
	return flag.String("format", "text", "output format: text or json")
}

// MustFormat exits with a diagnostic unless format is a known -format
// value.
func MustFormat(tool, format string) {
	if format != "text" && format != "json" {
		Fatalf(tool, "bad -format %q (want text or json)", format)
	}
}

// OverlayVar registers the -calib flag: a calibration overlay file whose
// entries are applied on top of the derived model (see the README
// "Calibration" section). Resolve the parsed path with LoadOverlay.
func OverlayVar() *string {
	return flag.String("calib", "",
		"calibration overlay file applied on top of the derived model")
}

// LoadOverlay parses the overlay file named by a -calib flag. An empty
// path (the flag's default) returns nil — no calibration. Parse errors
// exit with a positioned diagnostic like every other bad input.
func LoadOverlay(tool, path string) *desc.Overlay {
	if path == "" {
		return nil
	}
	ov, err := desc.ParseOverlayFile(path)
	if err != nil {
		FatalInput(tool, path, err)
		return nil
	}
	return ov
}

// Source is the shared description selection of the cmd/* binaries: a
// description file flag (-f, or -desc for dramtrace), optionally a
// roadmap -node flag, falling back to the built-in 1 Gb DDR3 sample.
type Source struct {
	tool  string
	file  *string
	node  *float64
	label string
}

// NewSource registers the description-selection flags. fileFlag is the
// file flag's name; withNode additionally registers -node.
func NewSource(tool, fileFlag string, withNode bool) *Source {
	s := &Source{tool: tool}
	s.file = flag.String(fileFlag, "",
		"description file (.dram); default: built-in 1 Gb DDR3 sample")
	if withNode {
		s.node = flag.Float64("node", 0,
			"roadmap node to use instead of the sample (feature size in nm)")
	}
	return s
}

// File reports the parsed file flag ("" when absent).
func (s *Source) File() string { return *s.file }

// Node reports the parsed -node flag (0 when absent or unregistered).
func (s *Source) Node() float64 {
	if s.node == nil {
		return 0
	}
	return *s.node
}

// Explicit reports whether the user selected a description (file or
// node) rather than falling through to the sample.
func (s *Source) Explicit() bool { return s.File() != "" || s.Node() != 0 }

// Description resolves the selected description, exiting with a
// diagnostic on bad input: the file when given, else the roadmap node,
// else the built-in sample. It also records the Label.
func (s *Source) Description() *desc.Description {
	switch {
	case s.File() != "":
		d, err := desc.ParseFile(s.File())
		if err != nil {
			FatalInput(s.tool, s.File(), err)
			return nil
		}
		s.label = d.Name
		return d
	case s.Node() != 0:
		n, err := scaling.NodeFor(s.Node())
		if err != nil {
			Fatal(s.tool, err)
			return nil
		}
		s.label = n.Name()
		return n.Description()
	default:
		d := desc.Sample1GbDDR3()
		s.label = d.Name
		return d
	}
}

// Label is a display name for the last Description() result: the node's
// roadmap name when -node selected it, else the description's own name.
func (s *Source) Label() string { return s.label }
