package cli

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"drampower/internal/desc"
	"drampower/internal/trace"
)

// capture intercepts exit and stderr around fn.
func capture(fn func()) (out string, code int) {
	var b strings.Builder
	code = -1
	oldExit, oldErr := exit, stderr
	exit = func(c int) { code = c }
	stderr = &b
	defer func() { exit, stderr = oldExit, oldErr }()
	fn()
	return b.String(), code
}

func TestFatalExitsNonZero(t *testing.T) {
	out, code := capture(func() { Fatal("tool", errors.New("boom")) })
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if out != "tool: boom\n" {
		t.Fatalf("stderr = %q", out)
	}
}

func TestFatalInputPrefixesPositionedErrors(t *testing.T) {
	err := fmt.Errorf("wrapped: %w", &desc.ParseError{Line: 3, Col: 7, Msg: "bad token"})
	out, code := capture(func() { FatalInput("tool", "dev.dram", err) })
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.HasPrefix(out, "tool: dev.dram: ") || !strings.Contains(out, "line 3") {
		t.Fatalf("stderr = %q, want input-prefixed positioned diagnostic", out)
	}

	terr := &trace.ParseError{Line: 9, Col: 2, Msg: "bad bank"}
	out, _ = capture(func() { FatalInput("tool", "t.txt", terr) })
	if !strings.HasPrefix(out, "tool: t.txt: ") || !strings.Contains(out, "line 9") {
		t.Fatalf("stderr = %q", out)
	}
}

func TestFatalInputSkipsPrefixForPlainErrors(t *testing.T) {
	out, _ := capture(func() { FatalInput("tool", "dev.dram", errors.New("no such file")) })
	if out != "tool: no such file\n" {
		t.Fatalf("stderr = %q (plain errors usually already carry the path)", out)
	}
}
