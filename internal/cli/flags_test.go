package cli

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"drampower/internal/desc"
)

// withFlagSet swaps the global flag set for one test so the helpers
// (which register on flag.CommandLine like the binaries do) can be
// exercised repeatedly.
func withFlagSet(t *testing.T, fn func()) {
	t.Helper()
	old := flag.CommandLine
	flag.CommandLine = flag.NewFlagSet("test", flag.ContinueOnError)
	defer func() { flag.CommandLine = old }()
	fn()
}

func TestWorkersVar(t *testing.T) {
	withFlagSet(t, func() {
		var w int
		WorkersVar(&w, "the tests")
		if err := flag.CommandLine.Parse([]string{"-workers", "7"}); err != nil {
			t.Fatal(err)
		}
		if w != 7 {
			t.Fatalf("workers = %d, want 7", w)
		}
	})
}

func TestMustFormat(t *testing.T) {
	for _, ok := range []string{"text", "json"} {
		if out, code := capture(func() { MustFormat("tool", ok) }); code != -1 {
			t.Fatalf("MustFormat(%q) exited %d: %s", ok, code, out)
		}
	}
	out, code := capture(func() { MustFormat("tool", "xml") })
	if code != 1 || !strings.Contains(out, "bad -format") {
		t.Fatalf("MustFormat(xml): code=%d stderr=%q", code, out)
	}
}

func TestSourceDefaultsToSample(t *testing.T) {
	withFlagSet(t, func() {
		s := NewSource("tool", "f", true)
		if err := flag.CommandLine.Parse(nil); err != nil {
			t.Fatal(err)
		}
		if s.Explicit() {
			t.Error("no flags given but Explicit() = true")
		}
		d := s.Description()
		want := desc.Sample1GbDDR3()
		if d.Name != want.Name || s.Label() != want.Name {
			t.Errorf("default description %q label %q, want sample %q", d.Name, s.Label(), want.Name)
		}
	})
}

func TestSourceNode(t *testing.T) {
	withFlagSet(t, func() {
		s := NewSource("tool", "f", true)
		if err := flag.CommandLine.Parse([]string{"-node", "55"}); err != nil {
			t.Fatal(err)
		}
		if !s.Explicit() || s.Node() != 55 {
			t.Fatalf("node flag not picked up: %+v", s)
		}
		d := s.Description()
		if d == nil || s.Label() == "" || !strings.Contains(s.Label(), "55nm") {
			t.Errorf("node description label = %q", s.Label())
		}
	})

	// An off-roadmap node exits with a diagnostic.
	withFlagSet(t, func() {
		s := NewSource("tool", "f", true)
		if err := flag.CommandLine.Parse([]string{"-node", "3"}); err != nil {
			t.Fatal(err)
		}
		out, code := capture(func() { s.Description() })
		if code != 1 || out == "" {
			t.Errorf("bad node: code=%d stderr=%q", code, out)
		}
	})
}

func TestSourceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.dram")
	if err := os.WriteFile(path, []byte(desc.Format(desc.Sample1GbDDR3())), 0o644); err != nil {
		t.Fatal(err)
	}
	withFlagSet(t, func() {
		s := NewSource("tool", "desc", false)
		if err := flag.CommandLine.Parse([]string{"-desc", path}); err != nil {
			t.Fatal(err)
		}
		if s.Node() != 0 {
			t.Error("Node() != 0 without a -node flag registered")
		}
		d := s.Description()
		if d.Name != desc.Sample1GbDDR3().Name || s.Label() != d.Name {
			t.Errorf("file description %q label %q", d.Name, s.Label())
		}
	})
}

func TestLoadOverlay(t *testing.T) {
	if ov := LoadOverlay("tool", ""); ov != nil {
		t.Errorf("empty path: overlay = %+v, want nil", ov)
	}
	path := filepath.Join(t.TempDir(), "m.calib")
	if err := os.WriteFile(path, []byte("Calibration measured\nidd0 = 58mA\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ov := LoadOverlay("tool", path)
	if ov == nil || ov.Name != "measured" || len(ov.Entries) != 1 {
		t.Fatalf("overlay = %+v", ov)
	}

	bad := filepath.Join(t.TempDir(), "bad.calib")
	if err := os.WriteFile(bad, []byte("bogus = 1mA\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := capture(func() { LoadOverlay("tool", bad) })
	if code != 1 || !strings.Contains(out, "tool:") {
		t.Errorf("bad overlay: code=%d stderr=%q", code, out)
	}
}
