// Package cli centralizes the error-exit path of the cmd/* binaries so
// all of them behave identically on bad input: diagnostics go to stderr
// only (never interleaved into stdout, which may be carrying -format json
// or emitted descriptors/traces), positioned parse errors render with
// their input coordinates, and the process exits with a non-zero status.
package cli

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"

	"drampower/internal/desc"
	"drampower/internal/trace"
)

// exit allows tests to intercept the process exit.
var exit = os.Exit

// stderr allows tests to capture the diagnostic stream.
var stderr io.Writer = os.Stderr

// Fatal prints "tool: error" to stderr and exits 1. Positioned errors
// (desc.ParseError, trace.ParseError) already carry their line/column in
// Error(); Fatal additionally prefixes the offending input name when one
// is known, producing editor-friendly "tool: file: line N, col M: msg".
func Fatal(tool string, err error) {
	FatalInput(tool, "", err)
}

// FatalInput is Fatal with the name of the input (file path or "<stdin>")
// the error came from; empty means no input context.
func FatalInput(tool, input string, err error) {
	var dpe *desc.ParseError
	var tpe *trace.ParseError
	positioned := errors.As(err, &dpe) || errors.As(err, &tpe)
	// Some entry points (desc.ParseFile) already wrap the path into the
	// error text; don't prefix it twice.
	if strings.Contains(err.Error(), input) {
		input = ""
	}
	if input != "" && positioned {
		fmt.Fprintf(stderr, "%s: %s: %v\n", tool, input, err)
	} else {
		fmt.Fprintf(stderr, "%s: %v\n", tool, err)
	}
	exit(1)
}

// Fatalf is Fatal with formatting.
func Fatalf(tool, format string, args ...any) {
	Fatal(tool, fmt.Errorf(format, args...))
}
