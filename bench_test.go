package drampower

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Each benchmark
// measures the cost of regenerating its artifact and reports the headline
// numbers of that artifact as custom metrics, so a `go test -bench=.`
// run doubles as the reproduction log. The full row/series output is
// printed by the cmd/ tools (dramverify, dramsweep, dramtrends,
// dramschemes).

import (
	"bytes"
	"math"
	"testing"

	"drampower/internal/ctl"
	"drampower/internal/datasheet"
	"drampower/internal/desc"
	"drampower/internal/scaling"
	"drampower/internal/schemes"
	"drampower/internal/sensitivity"
	"drampower/internal/trace"
)

// BenchmarkTableI_ParameterRegistry regenerates the Table I parameter
// inventory (E1): parsing a full description exercises every parameter of
// the input language.
func BenchmarkTableI_ParameterRegistry(b *testing.B) {
	src := Format(Sample1GbDDR3())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseString(src); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(desc.TechnologyParameterNames())), "tech-params")
}

// BenchmarkTableII_DisruptiveChanges regenerates Table II (E2).
func BenchmarkTableII_DisruptiveChanges(b *testing.B) {
	b.ReportMetric(float64(len(scaling.DisruptiveChanges())), "rows")
	for i := 0; i < b.N; i++ {
		_ = scaling.DisruptiveChanges()
	}
}

// BenchmarkFig5_TechScaling regenerates the Figure 5 shrink curves (E3).
func BenchmarkFig5_TechScaling(b *testing.B) {
	benchShrink(b, scaling.Figure5Families())
}

// BenchmarkFig6_MiscScaling regenerates the Figure 6 shrink curves (E4).
func BenchmarkFig6_MiscScaling(b *testing.B) {
	benchShrink(b, scaling.Figure6Families())
}

// BenchmarkFig7_CoreDeviceScaling regenerates the Figure 7 curves (E5).
func BenchmarkFig7_CoreDeviceScaling(b *testing.B) {
	benchShrink(b, scaling.Figure7Families())
}

func benchShrink(b *testing.B, families []string) {
	b.Helper()
	nodes, rows := scaling.ShrinkTable(families)
	// Report the final shrink of the first family vs. the feature shrink:
	// the qualitative content is "parameters shrink more slowly than f".
	last := len(nodes) - 1
	fshrink := scaling.FShrinkSeries()[last]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = scaling.ShrinkTable(families)
	}
	b.ReportMetric(fshrink, "f-shrink-170-to-16")
	b.ReportMetric(rows[families[0]][last], families[0][:min(len(families[0]), 20)])
}

// BenchmarkFig8_DDR2Verification regenerates the Figure 8 datasheet
// comparison (E6) and reports how many points fall inside the vendor
// spread.
func BenchmarkFig8_DDR2Verification(b *testing.B) {
	benchVerify(b, datasheet.DDR2)
}

// BenchmarkFig9_DDR3Verification regenerates Figure 9 (E7).
func BenchmarkFig9_DDR3Verification(b *testing.B) {
	benchVerify(b, datasheet.DDR3)
}

func benchVerify(b *testing.B, std datasheet.Standard) {
	b.Helper()
	rows, err := datasheet.Compare(std)
	if err != nil {
		b.Fatal(err)
	}
	within := 0
	for _, c := range rows {
		if c.WithinSpread(0.25) {
			within++
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := datasheet.Compare(std); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(within), "points-within-spread")
	b.ReportMetric(float64(len(rows)), "points-total")
}

// BenchmarkFig10_SensitivityPareto regenerates the ±20% parameter sweep
// (E8) on the 2G DDR3 55nm device and reports the top sensitivity.
func BenchmarkFig10_SensitivityPareto(b *testing.B) {
	n, err := scaling.NodeFor(55)
	if err != nil {
		b.Fatal(err)
	}
	d := n.Description()
	res, err := sensitivity.Sweep(d)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sensitivity.Sweep(d); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res[0].RangePct, "top-range-pct")
}

// BenchmarkTableIII_Top10Ranking regenerates the Table III rankings (E9)
// for the three paper devices and reports whether Vint leads all three.
func BenchmarkTableIII_Top10Ranking(b *testing.B) {
	nodes := []float64{170, 55, 18}
	vintFirst := 0
	for _, nm := range nodes {
		n, err := scaling.NodeFor(nm)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sensitivity.Sweep(n.Description())
		if err != nil {
			b.Fatal(err)
		}
		if res[0].Name == "Internal voltage Vint" {
			vintFirst++
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, _ := scaling.NodeFor(55)
		if _, err := sensitivity.Sweep(n.Description()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(vintFirst), "devices-with-Vint-first")
}

// BenchmarkFig11_VoltageTrends regenerates the voltage roadmap (E10).
func BenchmarkFig11_VoltageTrends(b *testing.B) {
	nodes := scaling.Roadmap()
	b.ReportMetric(float64(nodes[0].Vdd), "Vdd-170nm")
	b.ReportMetric(float64(nodes[len(nodes)-1].Vdd), "Vdd-16nm")
	for i := 0; i < b.N; i++ {
		_ = scaling.Roadmap()
	}
}

// BenchmarkFig12_TimingTrends regenerates the data-rate / timing roadmap
// (E11) and reports the bandwidth growth against the near-flat tRC.
func BenchmarkFig12_TimingTrends(b *testing.B) {
	nodes := scaling.Roadmap()
	first, last := nodes[0], nodes[len(nodes)-1]
	b.ReportMetric(float64(last.DataRate)/float64(first.DataRate), "datarate-growth")
	b.ReportMetric(float64(first.TRC)/float64(last.TRC), "tRC-ratio")
	for i := 0; i < b.N; i++ {
		_ = scaling.Roadmap()
	}
}

// BenchmarkFig13_EnergyPerBitTrend regenerates the energy-per-bit trend
// (E12) across the full roadmap and reports the historic and forecast
// per-generation reduction factors (paper: ~1.5x and ~1.2x).
func BenchmarkFig13_EnergyPerBitTrend(b *testing.B) {
	energies := map[float64]float64{}
	for _, n := range scaling.Roadmap() {
		m, err := Build(n.Description())
		if err != nil {
			b.Fatal(err)
		}
		energies[n.FeatureNm] = float64(m.EnergyPerBitIDD7())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range scaling.Roadmap() {
			m, err := Build(n.Description())
			if err != nil {
				b.Fatal(err)
			}
			_ = m.EnergyPerBitIDD7()
		}
	}
	b.ReportMetric(math.Pow(energies[170]/energies[44], 1.0/7), "historic-x-per-gen")
	b.ReportMetric(math.Pow(energies[44]/energies[16], 1.0/6), "forecast-x-per-gen")
	b.ReportMetric(energies[55]/1e-12, "pJ-per-bit-55nm")
}

// BenchmarkSecV_SchemeComparison regenerates the Section V scheme
// comparison (E13) and reports the best energy saving and its area cost.
func BenchmarkSecV_SchemeComparison(b *testing.B) {
	d := Sample1GbDDR3()
	res, err := schemes.Evaluate(d)
	if err != nil {
		b.Fatal(err)
	}
	best := 0.0
	bestArea := 0.0
	for _, r := range res[1:] {
		if r.EnergyDeltaPct < best {
			best = r.EnergyDeltaPct
			bestArea = r.AreaDeltaPct
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := schemes.Evaluate(d); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(-best, "best-energy-saving-pct")
	b.ReportMetric(bestArea, "its-area-cost-pct")
}

// ---- engine micro-benchmarks (hot paths) ----

// BenchmarkParse measures parsing a full description file.
func BenchmarkParse(b *testing.B) {
	src := Format(Sample1GbDDR3())
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := ParseString(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuild measures model resolution (geometry + capacitances).
func BenchmarkBuild(b *testing.B) {
	d := Sample1GbDDR3()
	for i := 0; i < b.N; i++ {
		if _, err := Build(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluatePattern measures a full pattern evaluation.
func BenchmarkEvaluatePattern(b *testing.B) {
	m, err := Build(Sample1GbDDR3())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_ = m.Evaluate()
	}
}

// BenchmarkIDD measures the full IDD suite evaluation.
func BenchmarkIDD(b *testing.B) {
	m, err := Build(Sample1GbDDR3())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_ = m.IDD()
	}
}

// BenchmarkTraceSimulation measures the command-trace simulator on a
// closed-page workload.
func BenchmarkTraceSimulation(b *testing.B) {
	m, err := Build(Sample1GbDDR3())
	if err != nil {
		b.Fatal(err)
	}
	cmds := trace.RandomClosedPage(m, 1000, 0.5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Evaluate(m, cmds); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(cmds)), "commands")
}

// BenchmarkSweepSerial measures the full sensitivity sweep evaluated
// serially (Workers=1), the pre-engine behavior.
func BenchmarkSweepSerial(b *testing.B) {
	d := Sample1GbDDR3()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sweep(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepParallel measures the same sweep on the batch engine with
// one worker per CPU. The results are identical to the serial sweep, and
// the wall time only improves when the runner actually has spare CPUs:
// with GOMAXPROCS == 1 this coincides with BenchmarkSweepSerial. Read the
// numbers against the env block benchjson records in BENCH_trace.json
// (go version, GOMAXPROCS, CPU count) before drawing scaling conclusions.
func BenchmarkSweepParallel(b *testing.B) {
	d := Sample1GbDDR3()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SweepParallel(d, BatchOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceCached measures the trace simulator on the charge ledgers
// cached at Build time: per-command energy integration is an O(1) lookup.
func BenchmarkTraceCached(b *testing.B) {
	m, err := Build(Sample1GbDDR3())
	if err != nil {
		b.Fatal(err)
	}
	cmds := trace.RandomClosedPage(m, 1000, 0.5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Evaluate(m, cmds); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(cmds)), "commands")
}

// BenchmarkTraceEnergyRecompute measures the pre-ledger cost of the same
// trace's energy integration: every command's charge-event list is derived
// from scratch (RecomputeCharges). Comparing against BenchmarkTraceCached
// shows the speedup the Build-time ledger buys.
func BenchmarkTraceEnergyRecompute(b *testing.B) {
	m, err := Build(Sample1GbDDR3())
	if err != nil {
		b.Fatal(err)
	}
	cmds := trace.RandomClosedPage(m, 1000, 0.5, 1)
	el := m.D.Electrical
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var e float64
		for _, c := range cmds {
			e += float64(m.RecomputeCharges(c.Op).EnergyFromVdd(el))
		}
		if e <= 0 {
			b.Fatal("no energy accumulated")
		}
	}
	b.ReportMetric(float64(len(cmds)), "commands")
}

// ---- trace-engine throughput benchmarks ----
//
// The streaming/replay subsystem's perf trajectory: `make bench` runs
// these (plus the engine benchmarks) with -benchmem and snapshots the
// numbers into BENCH_trace.json for future PRs to compare against.

// BenchmarkTraceIssue measures the simulator hot path alone: one Issue
// per iteration, no scanning, no result accounting. The accept path is
// 0 allocs/op (enforced by TestIssueZeroAllocs).
func BenchmarkTraceIssue(b *testing.B) {
	m, err := Build(Sample1GbDDR3())
	if err != nil {
		b.Fatal(err)
	}
	cmds := trace.RandomClosedPage(m, 1<<14, 0.5, 1)
	b.ReportAllocs()
	b.ResetTimer()
	s := trace.New(m)
	j := 0
	for i := 0; i < b.N; i++ {
		if j == len(cmds) {
			s = trace.New(m) // fresh timing state; amortized over 49k issues
			j = 0
		}
		if err := s.Issue(cmds[j]); err != nil {
			b.Fatal(err)
		}
		j++
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cmds/s")
}

// BenchmarkTraceScan measures streaming ingestion alone: tokenizing and
// decoding trace text without simulating it. MB/s comes from SetBytes.
func BenchmarkTraceScan(b *testing.B) {
	m, err := Build(Sample1GbDDR3())
	if err != nil {
		b.Fatal(err)
	}
	cmds := trace.RandomClosedPage(m, 1<<13, 0.5, 1)
	var buf bytes.Buffer
	if err := trace.WriteTrace(&buf, cmds); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := trace.NewScanner(bytes.NewReader(data))
		n := 0
		for sc.Scan() {
			n++
		}
		if err := sc.Err(); err != nil || n != len(cmds) {
			b.Fatalf("scanned %d/%d commands: %v", n, len(cmds), err)
		}
	}
	b.ReportMetric(float64(len(cmds))*float64(b.N)/b.Elapsed().Seconds(), "cmds/s")
}

// BenchmarkTraceScanBinary measures binary (dtb) ingestion alone:
// decoding the packed varint encoding without simulating it, the
// counterpart of BenchmarkTraceScan. MB/s comes from SetBytes — note the
// binary trace is ~5x smaller than the same commands as text.
func BenchmarkTraceScanBinary(b *testing.B) {
	m, err := Build(Sample1GbDDR3())
	if err != nil {
		b.Fatal(err)
	}
	cmds := trace.RandomClosedPage(m, 1<<13, 0.5, 1)
	var buf bytes.Buffer
	if err := trace.WriteBinaryTrace(&buf, cmds); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := trace.NewBinaryScanner(bytes.NewReader(data))
		n := 0
		for sc.Scan() {
			n++
		}
		if err := sc.Err(); err != nil || n != len(cmds) {
			b.Fatalf("scanned %d/%d commands: %v", n, len(cmds), err)
		}
	}
	b.ReportMetric(float64(len(cmds))*float64(b.N)/b.Elapsed().Seconds(), "cmds/s")
}

// benchTraceReplay measures the full streaming replay pipeline — scan,
// shard, simulate, merge — over a generated multi-channel closed-page
// trace, rendered as text or dtb binary. cmds/s counts commands through
// the whole pipeline; MB/s is the trace ingestion rate.
func benchTraceReplay(b *testing.B, channels, workers int, binary bool) {
	b.Helper()
	m, err := Build(Sample1GbDDR3())
	if err != nil {
		b.Fatal(err)
	}
	per := make([][]trace.Command, channels)
	for ch := range per {
		per[ch] = trace.RandomClosedPage(m, 20000/channels, 0.5, int64(ch+1))
	}
	var buf bytes.Buffer
	cmds := trace.Interleave(per, m.D.Spec.Banks())
	write := trace.WriteTrace
	if binary {
		write = trace.WriteBinaryTrace
	}
	if err := write(&buf, cmds); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := trace.Replay(m, bytes.NewReader(data),
			trace.ReplayOptions{Channels: channels, Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if res.Bits == 0 {
			b.Fatal("replay moved no data")
		}
	}
	b.ReportMetric(float64(len(cmds))*float64(b.N)/b.Elapsed().Seconds(), "cmds/s")
}

// BenchmarkTraceReplay1Ch is the single-channel, single-worker baseline —
// the serial streaming path over trace text.
func BenchmarkTraceReplay1Ch(b *testing.B) { benchTraceReplay(b, 1, 1, false) }

// BenchmarkTraceReplay8Ch1Worker replays an 8-channel text trace
// serially: the fair denominator for the parallel speedup.
func BenchmarkTraceReplay8Ch1Worker(b *testing.B) { benchTraceReplay(b, 8, 1, false) }

// BenchmarkTraceReplay8Ch replays an 8-channel text trace with one worker
// per CPU; on a 4+ core machine this shows the multi-channel speedup over
// BenchmarkTraceReplay8Ch1Worker.
func BenchmarkTraceReplay8Ch(b *testing.B) { benchTraceReplay(b, 8, 0, false) }

// BenchmarkTraceReplay1ChBinary replays the single-channel workload from
// the dtb binary encoding: the decode cost drops out of the text
// tokenizer's ~65ns/cmd into the varint decoder's ~10ns/cmd.
func BenchmarkTraceReplay1ChBinary(b *testing.B) { benchTraceReplay(b, 1, 1, true) }

// BenchmarkTraceReplay8ChBinary is the headline ingest benchmark: an
// 8-channel replay fed from dtb binary input through the pipelined
// decoder (ISSUE 7 target: ≥3x the committed text-input cmds/s).
func BenchmarkTraceReplay8ChBinary(b *testing.B) { benchTraceReplay(b, 8, 0, true) }

// benchSchedule measures the memory-controller front-end: scheduling a
// pre-generated in-memory access stream into a legal command trace under
// the given page policy. req/s counts access requests through the
// scheduler (the ISSUE 8 target is >= 1M req/s); cmds/s the commands it
// emits.
func benchSchedule(b *testing.B, opts ctl.Options) {
	b.Helper()
	m, err := Build(Sample1GbDDR3())
	if err != nil {
		b.Fatal(err)
	}
	reqs, err := ctl.GenerateAccesses(m, ctl.GenOptions{
		N: 1 << 14, RowHit: 0.7, ReadShare: 0.7, Gap: 4, Seed: 1,
		Channels: opts.Channels,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var emitted int64
	for i := 0; i < b.N; i++ {
		cmds, stats, err := ctl.ScheduleRequests(m, reqs, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(cmds) == 0 || stats.Requests != int64(len(reqs)) {
			b.Fatalf("scheduled %d commands for %d requests", len(cmds), stats.Requests)
		}
		emitted = stats.Commands
	}
	b.ReportMetric(float64(len(reqs))*float64(b.N)/b.Elapsed().Seconds(), "req/s")
	b.ReportMetric(float64(emitted)*float64(b.N)/b.Elapsed().Seconds(), "cmds/s")
}

// BenchmarkScheduleOpen schedules a 70%-locality stream open-page: the
// fast path is one column command per row hit.
func BenchmarkScheduleOpen(b *testing.B) {
	benchSchedule(b, ctl.Options{Policy: ctl.PolicyOpen})
}

// BenchmarkScheduleClosed schedules the same stream closed-page: every
// request emits the full ACT/column/PRE triple.
func BenchmarkScheduleClosed(b *testing.B) {
	benchSchedule(b, ctl.Options{Policy: ctl.PolicyClosed})
}

// BenchmarkScheduleTimeout exercises the timeout policy's expiry sweep
// plus the power-down inserter — the scheduler's bookkeeping-heavy
// configuration.
func BenchmarkScheduleTimeout(b *testing.B) {
	benchSchedule(b, ctl.Options{Policy: ctl.PolicyTimeout, PageTimeout: 64, PowerDownAfter: 32})
}

// BenchmarkSchedule4Ch spreads the stream over four channels (open
// page): per-channel state is independent, so the mapper and the merge
// are the only cross-channel costs. Workers is pinned to 1 so this stays
// the serial baseline that BenchmarkSchedule4ChParallel is gated against.
func BenchmarkSchedule4Ch(b *testing.B) {
	benchSchedule(b, ctl.Options{Policy: ctl.PolicyOpen, Channels: 4, Workers: 1})
}

// BenchmarkSchedule4ChParallel schedules the same four-channel stream
// with one worker per CPU: each channel's scheduler runs as an
// independent job, so on a 4+ core machine req/s approaches 4x the
// serial BenchmarkSchedule4Ch (the ISSUE 10 target is >= 3x). On a
// single-core machine the engine falls back to the serial loop and the
// two benchmarks coincide.
func BenchmarkSchedule4ChParallel(b *testing.B) {
	benchSchedule(b, ctl.Options{Policy: ctl.PolicyOpen, Channels: 4, Workers: 0})
}

// benchScheduleReplay measures schedule→replay end to end over a
// four-channel closed-page stream (every request emits its full command
// triple, so the replayer sees the heaviest command flow per request).
// fused=true streams per-channel batches straight into the replayer
// (ctl.ScheduleReplayRequests); fused=false materializes the merged
// trace and replays it — the B/op gap between the two is the pipeline's
// memory win (ISSUE 10 target: fused <= 1/10 of two-phase).
func benchScheduleReplay(b *testing.B, fused bool) {
	b.Helper()
	m, err := Build(Sample1GbDDR3())
	if err != nil {
		b.Fatal(err)
	}
	opts := ctl.Options{Policy: ctl.PolicyClosed, Channels: 4, Workers: 1}
	reqs, err := ctl.GenerateAccesses(m, ctl.GenOptions{
		N: 1 << 14, RowHit: 0.7, ReadShare: 0.7, Gap: 4, Seed: 1,
		Channels: opts.Channels,
	})
	if err != nil {
		b.Fatal(err)
	}
	ropts := trace.ReplayOptions{Channels: opts.Channels, Workers: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var res trace.Result
		if fused {
			_, res, err = ctl.ScheduleReplayRequests(m, reqs, opts, ropts)
			if err != nil {
				b.Fatal(err)
			}
		} else {
			cmds, _, serr := ctl.ScheduleRequests(m, reqs, opts)
			if serr != nil {
				b.Fatal(serr)
			}
			rep := trace.NewReplayer(m, ropts)
			if err := rep.ReplaySource(trace.NewSliceSource(cmds)); err != nil {
				b.Fatal(err)
			}
			res = rep.Result(rep.Now() + int64(m.BurstSlots()))
		}
		if res.Bits == 0 {
			b.Fatal("replay moved no data")
		}
	}
	b.ReportMetric(float64(len(reqs))*float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkScheduleReplayFused is the streaming pipeline: per-channel
// command batches flow from the scheduler into the replayer through a
// recycled double-buffered ring, never materializing the merged trace.
func BenchmarkScheduleReplayFused(b *testing.B) { benchScheduleReplay(b, true) }

// BenchmarkScheduleReplayTwoPhase is the materializing denominator:
// schedule the full trace, then replay it.
func BenchmarkScheduleReplayTwoPhase(b *testing.B) { benchScheduleReplay(b, false) }

// BenchmarkScheduleScanAccess measures access-trace ingestion alone:
// parsing the .dab text format without scheduling it.
func BenchmarkScheduleScanAccess(b *testing.B) {
	m, err := Build(Sample1GbDDR3())
	if err != nil {
		b.Fatal(err)
	}
	reqs, err := ctl.GenerateAccesses(m, ctl.GenOptions{
		N: 1 << 13, RowHit: 0.7, ReadShare: 0.7, Gap: 4, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ctl.WriteAccessTrace(&buf, reqs); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := ctl.NewScanner(bytes.NewReader(data))
		n := 0
		for sc.Scan() {
			n++
		}
		if err := sc.Err(); err != nil || n != len(reqs) {
			b.Fatalf("scanned %d/%d requests: %v", n, len(reqs), err)
		}
	}
	b.ReportMetric(float64(len(reqs))*float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
