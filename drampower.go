// Package drampower is a Go implementation of the flexible DRAM power
// model of Thomas Vogelsang, "Understanding the Energy Consumption of
// Dynamic Random Access Memories", MICRO-43 (2010).
//
// The model computes DRAM power from first principles: a description of
// the device's physical floorplan, signaling floorplan, technology,
// interface specification and operating pattern is resolved into a large
// number of charge/discharge events (P = Σ ½·C·V²·f, Eq. 2 of the paper),
// organized in four voltage domains (Vpp, Vbl, Vint, Vdd) and rolled up
// into per-operation energies, datasheet-style IDD currents and pattern
// power.
//
// # Quick start
//
//	d := drampower.Sample1GbDDR3()          // a calibrated 1 Gb DDR3-1600 x16
//	m, err := drampower.Build(d)            // resolve geometry + capacitances
//	if err != nil { ... }
//	idd := m.IDD()                          // IDD0, IDD2N, IDD4R/W, IDD5, IDD7
//	res := m.Evaluate()                     // power of the description's pattern
//	fmt.Println(idd.IDD0, res.Power, res.EnergyPerBit)
//
// Descriptions can also be read from files in the paper's input language
// (ParseFile / ParseString), generated for any technology node of the
// 170 nm → 16 nm roadmap (Roadmap, NodeFor), swept for parameter
// sensitivity (Sweep), compared against the embedded DDR2/DDR3 datasheet
// values (CompareDatasheet), transformed by the Section V power-reduction
// schemes (EvaluateSchemes) and exercised with timing-validated command
// traces (NewSimulator and the workload generators).
package drampower

import (
	"io"

	"drampower/internal/core"
	"drampower/internal/ctl"
	"drampower/internal/datasheet"
	"drampower/internal/desc"
	"drampower/internal/engine"
	"drampower/internal/scaling"
	"drampower/internal/schemes"
	"drampower/internal/sensitivity"
	"drampower/internal/server"
	"drampower/internal/trace"
	"drampower/internal/units"
)

// Re-exported description types: the DRAM description language of
// Section III.B of the paper (see package internal/desc for details).
type (
	// Description is a complete DRAM description (Table I of the paper).
	Description = desc.Description
	// Floorplan, Segment, Technology, Specification, Electrical and
	// LogicBlock are the five parameter groups of Table I.
	Floorplan     = desc.Floorplan
	Segment       = desc.Segment
	Technology    = desc.Technology
	Specification = desc.Specification
	Electrical    = desc.Electrical
	LogicBlock    = desc.LogicBlock
	// Pattern is the repeating command loop whose power is evaluated.
	Pattern = desc.Pattern
	// Op is a basic DRAM operation (act, pre, rd, wrt, nop, ref).
	Op = desc.Op
)

// Basic operations.
const (
	OpNop       = desc.OpNop
	OpActivate  = desc.OpActivate
	OpPrecharge = desc.OpPrecharge
	OpRead      = desc.OpRead
	OpWrite     = desc.OpWrite
	OpRefresh   = desc.OpRefresh
)

// Trace-level power-state commands (pde, pdx, sre, srx): power-down and
// self-refresh entry/exit. They are legal in traces but not in patterns;
// the simulator's background integral drops to PowerDownPower (IDD2P) or
// SelfRefreshPower (IDD6) for the slots between entry and exit.
const (
	OpPowerDownEnter   = trace.OpPowerDownEnter
	OpPowerDownExit    = trace.OpPowerDownExit
	OpSelfRefreshEnter = trace.OpSelfRefreshEnter
	OpSelfRefreshExit  = trace.OpSelfRefreshExit
)

// TraceOpName renders any trace operation, including the power-state
// commands Op.String does not know (use it for TraceResult.Counts keys).
func TraceOpName(op Op) string { return trace.OpName(op) }

// MaxPostponedRefreshes is the JEDEC refresh postponement bound: up to
// this many consecutive tREFI obligations may slide past their nominal
// due slot before the controller must catch up. The replayer's retention
// audit (TraceResult.MissedRefreshDeadlines) and the controller's
// refresh scheduler both use it as the default.
const MaxPostponedRefreshes = trace.MaxPostponedRefreshes

// Re-exported engine types.
type (
	// Model is a resolved DRAM ready for power evaluation.
	Model = core.Model
	// IDD collects the datasheet-style currents (Section IV.A).
	IDD = core.IDD
	// PatternResult is the evaluation of a command pattern.
	PatternResult = core.PatternResult
)

// Re-exported physical quantity types (SI base units).
type (
	Volts   = units.Voltage
	Watts   = units.Power
	Amperes = units.Current
	Joules  = units.Energy
)

// ParseError reports a parse failure at a specific input position (Line
// 1-based; Col the 1-based byte column of the offending token, 0 for
// whole-line problems). All parse entry points surface it, possibly
// wrapped, so recover it with errors.As:
//
//	var pe *drampower.ParseError
//	if errors.As(err, &pe) { editor.Jump(pe.Line, pe.Col) }
type ParseError = desc.ParseError

// Parse reads a DRAM description in the paper's input language.
func Parse(r io.Reader) (*Description, error) { return desc.Parse(r) }

// ParseFile reads and parses a description file.
func ParseFile(path string) (*Description, error) { return desc.ParseFile(path) }

// ParseString parses a description from a string.
func ParseString(src string) (*Description, error) { return desc.ParseString(src) }

// Format renders a description back into the input language.
func Format(d *Description) string { return desc.Format(d) }

// Sample1GbDDR3 returns the calibrated 1 Gb x16 DDR3-1600 reference device
// (55 nm technology, Figure 1 floorplan).
func Sample1GbDDR3() *Description { return desc.Sample1GbDDR3() }

// Build validates a description and resolves it into a model.
func Build(d *Description) (*Model, error) { return core.Build(d) }

// Calibration overlay types: an Overlay is an ordered list of overrides
// and scalings applied to the derived parameter set (the middle stage of
// the derive → overlay → seal pipeline). See BuildCalibrated.
type (
	Overlay      = desc.Overlay
	OverlayEntry = desc.OverlayEntry
	ParamSet     = core.ParamSet
)

// BuildCalibrated resolves a description and applies a calibration
// overlay to the derived parameter set: measured values (datasheet
// currents, measured per-op energies) override or scale the analytically
// derived ones, while the charge-level circuit model stays untouched. A
// nil or empty overlay makes BuildCalibrated identical to Build, bit for
// bit.
func BuildCalibrated(d *Description, ov *Overlay) (*Model, error) {
	return core.BuildCalibrated(d, ov)
}

// ParseOverlay reads a calibration overlay document ("idd0 = 58mA",
// "op.rd.energy *= 1.07" lines, optional "Calibration <name>" header).
func ParseOverlay(r io.Reader) (*Overlay, error) { return desc.ParseOverlay(r) }

// ParseOverlayFile reads and parses a calibration overlay file.
func ParseOverlayFile(path string) (*Overlay, error) { return desc.ParseOverlayFile(path) }

// ParseOverlayString parses a calibration overlay from a string.
func ParseOverlayString(src string) (*Overlay, error) { return desc.ParseOverlayString(src) }

// FormatOverlay renders an overlay in its canonical form (a bit-exact
// fixed point, like Format for descriptions).
func FormatOverlay(ov *Overlay) string { return desc.FormatOverlay(ov) }

// OverlayKeys lists every valid calibration key in sorted order.
func OverlayKeys() []string { return desc.OverlayKeys() }

// ParseDocument reads a combined document: a description optionally
// followed by a Calibration section. Either half may be absent (nil).
func ParseDocument(r io.Reader) (*Description, *Overlay, error) { return desc.ParseDocument(r) }

// Re-exported generation roadmap types (Section III.C / IV.C).
type (
	// Node is one technology generation (feature size, interface,
	// voltages, timings).
	Node = scaling.Node
	// Device is a buildable DRAM: node technology + interface, density,
	// width and data rate.
	Device = scaling.Device
	// Interface is a DRAM interface generation (SDR … DDR5).
	Interface = scaling.Interface
)

// Interface generations.
const (
	SDR  = scaling.SDR
	DDR  = scaling.DDR
	DDR2 = scaling.DDR2
	DDR3 = scaling.DDR3
	DDR4 = scaling.DDR4
	DDR5 = scaling.DDR5
)

// Roadmap returns the technology generations from 170 nm (SDR, 2000) to
// 16 nm (DDR5, forecast 2018).
func Roadmap() []Node { return scaling.Roadmap() }

// NodeFor returns the roadmap node with the given feature size in
// nanometers.
func NodeFor(featureNm float64) (Node, error) { return scaling.NodeFor(featureNm) }

// DeviceFor builds a device with an explicit interface, density, I/O width
// and per-pin data rate on the technology of the given node.
func DeviceFor(featureNm float64, iface Interface, densityBits int64, ioWidth int, gbps float64) (Device, error) {
	return scaling.DeviceFor(featureNm, iface, densityBits, ioWidth, units.Gbps(gbps))
}

// Re-exported analysis types.
type (
	// SensitivityResult is one row of the Figure 10 Pareto.
	SensitivityResult = sensitivity.Result
	// SchemeResult is one row of the Section V comparison.
	SchemeResult = schemes.Result
	// DatasheetComparison is one row of the Figures 8–9 verification.
	DatasheetComparison = datasheet.Comparison
)

// Sweep varies every model parameter by ±20 % on the given description and
// returns the power responses sorted by impact (Figure 10, Table III).
func Sweep(d *Description) ([]SensitivityResult, error) { return sensitivity.Sweep(d) }

// EvaluateSchemes runs the Section V power-reduction schemes against the
// given baseline and reports energy-per-bit and die-area impact.
func EvaluateSchemes(base *Description) ([]SchemeResult, error) { return schemes.Evaluate(base) }

// CompareDatasheetDDR2 regenerates the Figure 8 verification (1 Gb DDR2
// model vs. five-vendor datasheet values).
func CompareDatasheetDDR2() ([]DatasheetComparison, error) {
	return datasheet.Compare(datasheet.DDR2)
}

// CompareDatasheetDDR3 regenerates the Figure 9 verification (1 Gb DDR3).
func CompareDatasheetDDR3() ([]DatasheetComparison, error) {
	return datasheet.Compare(datasheet.DDR3)
}

// BatchOptions configures the shared batch-evaluation engine behind the
// *Parallel entry points: Workers is the worker-pool size (<= 0 means one
// worker per CPU, 1 reproduces the serial evaluation exactly). Results are
// deterministic — ordered by job, independent of the worker count.
type BatchOptions = engine.Options

// SweepParallel is Sweep on a worker pool. The results are byte-identical
// to Sweep's for any worker count.
func SweepParallel(d *Description, opts BatchOptions) ([]SensitivityResult, error) {
	return sensitivity.SweepOpts(d, opts)
}

// EvaluateSchemesParallel is EvaluateSchemes on a worker pool.
func EvaluateSchemesParallel(base *Description, opts BatchOptions) ([]SchemeResult, error) {
	return schemes.EvaluateOpts(base, opts)
}

// CompareDatasheetDDR2Parallel is CompareDatasheetDDR2 on a worker pool.
func CompareDatasheetDDR2Parallel(opts BatchOptions) ([]DatasheetComparison, error) {
	return datasheet.CompareOpts(datasheet.DDR2, opts)
}

// CompareDatasheetDDR3Parallel is CompareDatasheetDDR3 on a worker pool.
func CompareDatasheetDDR3Parallel(opts BatchOptions) ([]DatasheetComparison, error) {
	return datasheet.CompareOpts(datasheet.DDR3, opts)
}

// TrendPoint is one generation of the Figure 13 energy/area trend.
type TrendPoint = scaling.TrendPoint

// GenerationTrend builds every roadmap node (concurrently per opts) and
// reports the Figure 13 energy-per-bit and die-area series with
// per-generation reduction ratios.
func GenerationTrend(opts BatchOptions) ([]TrendPoint, error) {
	return scaling.EnergyTrend(opts)
}

// EvalBatch builds and evaluates many descriptions on a worker pool and
// returns each description's pattern evaluation in input order. On failure
// it returns the first error (by input position) together with the partial
// results: entries whose build failed are nil, the rest are valid.
func EvalBatch(ds []*Description, opts BatchOptions) ([]*PatternResult, error) {
	return engine.Map(ds, func(_ int, d *Description) (*PatternResult, error) {
		m, err := core.Build(d)
		if err != nil {
			return nil, err
		}
		return m.Evaluate(), nil
	}, opts)
}

// Re-exported trace types: the timing-validated command-trace simulator
// and the streaming/replay layer on top of it.
type (
	// Simulator executes command traces with JEDEC timing checks and
	// integrates energy.
	Simulator = trace.Simulator
	// Command is one trace entry.
	Command = trace.Command
	// TraceResult summarizes a finished trace.
	TraceResult = trace.Result
	// TraceScanner streams a trace text file (<slot> <op> [<bank>
	// [<row>]], '#' comments) without materializing it; see
	// internal/trace for the format.
	TraceScanner = trace.Scanner
	// TraceParseError reports a malformed trace line with its 1-based
	// line and column, mirroring ParseError's shape.
	TraceParseError = trace.ParseError
	// BinaryTraceScanner streams the compact dtb binary trace encoding
	// (magic+version header, varint-delta slots, packed op/bank/row);
	// see internal/trace for the layout.
	BinaryTraceScanner = trace.BinaryScanner
	// BinaryTraceWriter encodes commands into the dtb binary format.
	BinaryTraceWriter = trace.BinaryWriter
	// TraceSource is a command stream: the common interface of
	// TraceScanner and BinaryTraceScanner that the replayer consumes.
	TraceSource = trace.Source
	// Replayer shards a multi-channel trace across one simulator per
	// channel and replays the channels concurrently.
	Replayer = trace.Replayer
	// ReplayOptions selects the channel count and worker pool of a
	// replay.
	ReplayOptions = trace.ReplayOptions
)

// NewSimulator creates a trace simulator for the model.
func NewSimulator(m *Model) *Simulator { return trace.New(m) }

// StreamingWorkload generates an open-page streaming trace (IDD4-like).
func StreamingWorkload(m *Model, bursts int, readShare float64, seed int64) []Command {
	return trace.Streaming(m, bursts, readShare, seed)
}

// RandomClosedPageWorkload generates a closed-page random-access trace
// (IDD7-like).
func RandomClosedPageWorkload(m *Model, accesses int, readShare float64, seed int64) []Command {
	return trace.RandomClosedPage(m, accesses, readShare, seed)
}

// RefreshOnlyWorkload generates the standby-with-refresh trace over the
// given number of refresh intervals (IDD2N-like until combined with
// InsertPowerDown).
func RefreshOnlyWorkload(m *Model, intervals int) []Command {
	return trace.RefreshOnly(m, intervals)
}

// InsertPowerDown inserts power-down entry/exit pairs into every idle gap
// of at least minIdle slots of a sorted single-channel trace, keeping the
// result timing-legal (tCKEmin residency, tXP exit-to-valid). minIdle < 1
// selects the smallest insertable window. This is the controller-side
// power-management policy of the paper's Section V applied to a trace:
// the returned trace's background energy drops by the power-down
// residency times PowerDownSavings.
func InsertPowerDown(m *Model, cmds []Command, minIdle int64) []Command {
	return trace.WithPowerDown(m, cmds, minIdle)
}

// RunTrace executes a trace against the model and reports the energy
// accounting.
func RunTrace(m *Model, cmds []Command) (TraceResult, error) {
	return trace.Evaluate(m, cmds)
}

// NewTraceScanner returns a streaming scanner over trace text. Feed it to
// Simulator.RunStream or Replayer.ReplayScanner to evaluate traces of any
// length in constant memory.
func NewTraceScanner(r io.Reader) *TraceScanner { return trace.NewScanner(r) }

// NewReplayer creates a multi-channel trace replayer for the model.
func NewReplayer(m *Model, opts ReplayOptions) *Replayer {
	return trace.NewReplayer(m, opts)
}

// ReplayTrace streams a command trace from r against the model — text or
// dtb binary, sniffed from the first byte — sharded across opts.Channels
// channels replayed concurrently by opts.Workers workers, and reports the
// deterministically merged result. Decode is pipelined with simulation
// (round N+1 decodes while round N issues). With one channel the energy
// totals are bit-identical to RunTrace on the materialized commands.
func ReplayTrace(m *Model, r io.Reader, opts ReplayOptions) (TraceResult, error) {
	return trace.Replay(m, r, opts)
}

// WriteTrace renders commands in the trace text format; the output
// round-trips through NewTraceScanner.
func WriteTrace(w io.Writer, cmds []Command) error { return trace.WriteTrace(w, cmds) }

// NewBinaryTraceScanner returns a streaming scanner over the dtb binary
// trace encoding. It yields exactly the Command stream the text scanner
// yields for the equivalent text trace, at several times the decode rate.
func NewBinaryTraceScanner(r io.Reader) *BinaryTraceScanner { return trace.NewBinaryScanner(r) }

// NewBinaryTraceWriter returns a buffered dtb binary trace encoder over
// w (the header is written immediately; call Flush when done).
func NewBinaryTraceWriter(w io.Writer) *BinaryTraceWriter { return trace.NewBinaryWriter(w) }

// WriteBinaryTrace renders commands in the dtb binary trace format; the
// output round-trips through NewBinaryTraceScanner.
func WriteBinaryTrace(w io.Writer, cmds []Command) error { return trace.WriteBinaryTrace(w, cmds) }

// NewTraceSource returns a command stream over either trace encoding,
// sniffing text vs. dtb binary from the first byte. ReplayTrace does
// this internally; use NewTraceSource to feed format-agnostic input to a
// Replayer or Simulator directly.
func NewTraceSource(r io.Reader) TraceSource { return trace.NewSource(r) }

// InterleaveChannels merges per-channel traces into one multi-channel
// trace with global bank indices (channel ch's bank b becomes bank
// ch*banksPerChannel+b), ordered by slot.
func InterleaveChannels(channels [][]Command, banksPerChannel int) []Command {
	return trace.Interleave(channels, banksPerChannel)
}

// Re-exported controller types: the memory-controller front-end behind
// the dramctl binary (see internal/ctl). The controller consumes an
// access trace — timestamped read/write requests against a flat address
// space — and schedules it into a legal command trace for the replayer,
// under a configurable address map, page policy and power-down policy.
type (
	// AccessRequest is one access-trace entry: a read or write of one
	// burst at a flat physical address, arriving at a control-clock slot.
	AccessRequest = ctl.Request
	// AccessScanner streams the access-trace text format (<slot> <r|w>
	// <addr>, '#' comments).
	AccessScanner = ctl.Scanner
	// BinaryAccessScanner streams the .dab binary access-trace encoding.
	BinaryAccessScanner = ctl.BinaryScanner
	// AccessSource is a request stream: the common interface of the two
	// access scanners that the controller consumes.
	AccessSource = ctl.Source
	// AccessParseError reports a malformed access-trace input with its
	// 1-based position, mirroring TraceParseError's shape.
	AccessParseError = ctl.ParseError
	// Controller schedules one access stream into a command trace.
	Controller = ctl.Controller
	// ControllerOptions selects the page policy, address map, channel
	// count, power-down policy and refresh policy of a scheduling run.
	// Refresh scheduling is on by default when the device spec carries a
	// refresh interval: an all-bank ref every tREFI per channel,
	// postponed JEDEC-style (up to MaxPostponedRefreshes) while requests
	// are in flight.
	ControllerOptions = ctl.Options
	// ControllerPolicy is the page-management policy (open, closed or
	// timeout).
	ControllerPolicy = ctl.Policy
	// ScheduleStats summarizes a scheduling run: row-buffer outcomes,
	// command counts and low-power insertions.
	ScheduleStats = ctl.Stats
	// ScheduleError reports a request the scheduler cannot place.
	ScheduleError = ctl.ScheduleError
	// AddressMapper is the configurable flat-address → (channel, bank,
	// row, column) bit interleave.
	AddressMapper = ctl.Mapper
	// AccessGenOptions configures GenerateAccesses, including the RowHit
	// locality knob.
	AccessGenOptions = ctl.GenOptions
)

// Controller page policies (see ParseControllerPolicy for the flag
// spellings).
const (
	PolicyOpenPage    = ctl.PolicyOpen
	PolicyClosedPage  = ctl.PolicyClosed
	PolicyPageTimeout = ctl.PolicyTimeout
)

// DefaultAddressMap is the controller's default interleave spec: row
// above bank above channel above column, so consecutive addresses walk
// one open row.
const DefaultAddressMap = ctl.DefaultMap

// NewController builds a memory-controller model. The zero options mean
// open-page policy, the default "ro:ba:ch:co" address map, one channel
// and no power-down.
func NewController(m *Model, opts ControllerOptions) (*Controller, error) {
	return ctl.NewController(m, opts)
}

// ScheduleTrace schedules an access trace read from r (text or .dab
// binary, sniffed from the first byte) into a legal command trace with
// global bank indices, plus scheduling stats. The result is
// deterministic: same input and options, byte-identical trace.
func ScheduleTrace(m *Model, r io.Reader, opts ControllerOptions) ([]Command, ScheduleStats, error) {
	return ctl.Schedule(m, r, opts)
}

// ScheduleAccesses schedules an in-memory access-request slice.
func ScheduleAccesses(m *Model, reqs []AccessRequest, opts ControllerOptions) ([]Command, ScheduleStats, error) {
	return ctl.ScheduleRequests(m, reqs, opts)
}

// ScheduleSink consumes a scheduled command stream channel by channel:
// one channel's batches arrive in trace order, distinct channels may be
// delivered concurrently, and the batch slice is reused after Consume
// returns (see ctl.Sink).
type ScheduleSink = ctl.Sink

// DiscardScheduleSink drops every batch — schedule-only runs that want
// stats without materializing or replaying the trace.
var DiscardScheduleSink ScheduleSink = ctl.Discard

// NewReplaySink adapts a Replayer to the streaming scheduler: each
// channel's batches issue directly on the matching per-channel
// simulator.
func NewReplaySink(r *Replayer) ScheduleSink { return ctl.ReplaySink(r) }

// ScheduleStream schedules an access trace read from r (text or .dab,
// sniffed) and streams the commands into sink as bounded per-channel
// batches, never materializing the merged trace: peak memory is
// O(batch) instead of O(commands), and the command sequences and stats
// are bit-identical to ScheduleTrace's.
func ScheduleStream(m *Model, r io.Reader, opts ControllerOptions, sink ScheduleSink) (ScheduleStats, error) {
	c, err := ctl.NewController(m, opts)
	if err != nil {
		return ScheduleStats{}, err
	}
	return c.ScheduleInto(ctl.NewAccessSource(r), sink)
}

// ScheduleAndReplay schedules an access trace and replays it as it is
// scheduled — the fused pipeline: scheduling and energy accounting
// overlap, the merged command slice never exists, and the stats and
// energy result are bit-identical to ScheduleTrace followed by a replay
// of the materialized trace (the accounting ends one burst after the
// last command, like ReplayTrace). The replayer inherits the
// controller's channel count; ropts selects its worker pool.
func ScheduleAndReplay(m *Model, r io.Reader, opts ControllerOptions, ropts ReplayOptions) (ScheduleStats, TraceResult, error) {
	return ctl.ScheduleReplay(m, r, opts, ropts)
}

// ScheduleAndReplayAccesses is ScheduleAndReplay over an in-memory
// access-request slice.
func ScheduleAndReplayAccesses(m *Model, reqs []AccessRequest, opts ControllerOptions, ropts ReplayOptions) (ScheduleStats, TraceResult, error) {
	return ctl.ScheduleReplayRequests(m, reqs, opts, ropts)
}

// ParseControllerPolicy parses a page-policy flag value: "open",
// "closed" or "timeout=N" (N the idle window in slots, returned
// separately).
func ParseControllerPolicy(s string) (ControllerPolicy, int64, error) {
	return ctl.ParsePolicy(s)
}

// NewAccessScanner returns a streaming scanner over access-trace text.
func NewAccessScanner(r io.Reader) *AccessScanner { return ctl.NewScanner(r) }

// NewBinaryAccessScanner returns a streaming scanner over the .dab
// binary access-trace encoding.
func NewBinaryAccessScanner(r io.Reader) *BinaryAccessScanner { return ctl.NewBinaryScanner(r) }

// NewAccessSource returns a request stream over either access-trace
// encoding, sniffing text vs. .dab binary from the first byte.
func NewAccessSource(r io.Reader) AccessSource { return ctl.NewAccessSource(r) }

// WriteAccessTrace renders requests in the access-trace text format; the
// output round-trips through NewAccessScanner.
func WriteAccessTrace(w io.Writer, reqs []AccessRequest) error {
	return ctl.WriteAccessTrace(w, reqs)
}

// WriteBinaryAccessTrace renders requests in the .dab binary access
// format; the output round-trips through NewBinaryAccessScanner.
func WriteBinaryAccessTrace(w io.Writer, reqs []AccessRequest) error {
	return ctl.WriteBinaryAccessTrace(w, reqs)
}

// GenerateAccesses builds a deterministic synthetic access stream whose
// RowHit knob sweeps the row-locality spectrum the paper's policy
// comparisons turn on.
func GenerateAccesses(m *Model, opts AccessGenOptions) ([]AccessRequest, error) {
	return ctl.GenerateAccesses(m, opts)
}

// NewCommandSliceSource adapts an in-memory command slice to the
// replayer's TraceSource interface, so a scheduled trace replays without
// a serialize/re-parse round trip.
func NewCommandSliceSource(cmds []Command) TraceSource { return trace.NewSliceSource(cmds) }

// Re-exported serving types: the HTTP model-evaluation service behind the
// dramserved binary (see internal/server).
type (
	// Server is the HTTP service: JSON evaluation endpoints over a
	// model cache, bounded admission queue and built-in metrics.
	Server = server.Server
	// ServerOptions configures cache size, admission limits, timeouts,
	// body limits, worker pool and access logging; the zero value
	// serves with production defaults.
	ServerOptions = server.Options
)

// NewServer creates the HTTP model-evaluation service. Mount it with
// Handler(), run it with Serve(ctx, listener, drainTimeout), and release
// its worker pool with Close(). Responses are bit-identical to the
// corresponding direct library calls.
func NewServer(opts ServerOptions) *Server { return server.New(opts) }

// ModelKey derives the server's model-cache key for a description: the
// SHA-256 hex of the canonical Format(d) rendering. POST /v1/evaluate
// returns it as model_key, and POST /v1/trace?model=<key> replays traces
// against the cached model.
func ModelKey(d *Description) string { return server.DescriptorKey(d) }

// ModelKeyCalibrated derives the server's model-cache key for a
// description plus a calibration overlay. An empty overlay collapses
// onto ModelKey; a non-empty one yields a distinct key, so calibrated and
// uncalibrated models never share a cache entry.
func ModelKeyCalibrated(d *Description, ov *Overlay) string { return server.CalibratedKey(d, ov) }
