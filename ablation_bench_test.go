package drampower

// Ablation benchmarks for the design choices DESIGN.md calls out: each
// toggles one modeling decision on the calibrated DDR3 device and reports
// the resulting energy-per-bit shift, quantifying how much the conclusion
// depends on the choice.

import (
	"testing"

	"drampower/internal/desc"
	"drampower/internal/units"
)

func ePerBit(b *testing.B, d *desc.Description) float64 {
	b.Helper()
	m, err := Build(d)
	if err != nil {
		b.Fatal(err)
	}
	return m.EnergyPerBitIDD7().Picojoules()
}

// BenchmarkAblation_PageSize sweeps the activation fraction — the knob
// behind every Section V row-energy scheme — and reports the energy at
// full, half and eighth page activation.
func BenchmarkAblation_PageSize(b *testing.B) {
	base := Sample1GbDDR3()
	for i := 0; i < b.N; i++ {
		for _, f := range []float64{1, 0.5, 0.125} {
			d := base.Clone()
			d.Floorplan.ActivationFraction = f
			if _, err := Build(d); err != nil {
				b.Fatal(err)
			}
		}
	}
	full := ePerBit(b, base)
	half := func() float64 {
		d := base.Clone()
		d.Floorplan.ActivationFraction = 0.5
		return ePerBit(b, d)
	}()
	eighth := func() float64 {
		d := base.Clone()
		d.Floorplan.ActivationFraction = 0.125
		return ePerBit(b, d)
	}()
	b.ReportMetric(full, "pJ-full-page")
	b.ReportMetric(half, "pJ-half-page")
	b.ReportMetric(eighth, "pJ-eighth-page")
}

// BenchmarkAblation_PumpEfficiency sweeps the Vpp charge-pump efficiency:
// the paper's Pareto shows it matters little because the Vpp charge is
// small; this ablation quantifies that.
func BenchmarkAblation_PumpEfficiency(b *testing.B) {
	base := Sample1GbDDR3()
	for i := 0; i < b.N; i++ {
		if _, err := Build(base); err != nil {
			b.Fatal(err)
		}
	}
	ideal := func() float64 {
		d := base.Clone()
		d.Electrical.EffPp = 1.0
		return ePerBit(b, d)
	}()
	poor := func() float64 {
		d := base.Clone()
		d.Electrical.EffPp = 0.25
		return ePerBit(b, d)
	}()
	b.ReportMetric(ePerBit(b, base), "pJ-baseline")
	b.ReportMetric(ideal, "pJ-ideal-pump")
	b.ReportMetric(poor, "pJ-quarter-pump")
}

// BenchmarkAblation_BitsPerCSL sweeps the column granularity: more bits
// per column-select pulse amortize the CSL wire charge (the mechanism
// behind the paper's 8:1 proposal).
func BenchmarkAblation_BitsPerCSL(b *testing.B) {
	base := Sample1GbDDR3()
	for i := 0; i < b.N; i++ {
		if _, err := Build(base); err != nil {
			b.Fatal(err)
		}
	}
	for _, n := range []int{4, 8, 32} {
		d := base.Clone()
		d.Technology.BitsPerCSL = n
		m, err := Build(d)
		if err != nil {
			b.Fatal(err)
		}
		e := m.Charges(OpRead).EnergyFromVdd(d.Electrical)
		b.ReportMetric(float64(e)/1e-12, "pJ-read-csl"+itoa(n))
	}
}

// BenchmarkAblation_DataToggle sweeps the data-bus toggle assumption
// (charging events per bit): precharged/pulsed buses cost up to 4x the
// random-data minimum.
func BenchmarkAblation_DataToggle(b *testing.B) {
	base := Sample1GbDDR3()
	for i := 0; i < b.N; i++ {
		if _, err := Build(base); err != nil {
			b.Fatal(err)
		}
	}
	for _, tog := range []float64{0.25, 0.5, 1.0} {
		d := base.Clone()
		for i := range d.Signals {
			k := d.Signals[i].Kind
			if k == desc.SigDataRead || k == desc.SigDataWrite || k == desc.SigDataShared {
				d.Signals[i].Toggle = tog
			}
		}
		b.ReportMetric(ePerBit(b, d), "pJ-toggle-"+ftoa(tog))
	}
}

// BenchmarkAblation_CuMetallization quantifies the Table II Cu step: the
// 44 nm device with and without the wiring-capacitance improvement.
func BenchmarkAblation_CuMetallization(b *testing.B) {
	n, err := NodeFor(44)
	if err != nil {
		b.Fatal(err)
	}
	with := n.Description()
	without := with.Clone()
	// Undo the 0.85x Cu factor on all wiring capacitances.
	const cu = 0.85
	without.Technology.WireCapSignal = units.CapacitancePerLength(float64(without.Technology.WireCapSignal) / cu)
	without.Technology.WireCapMWL = units.CapacitancePerLength(float64(without.Technology.WireCapMWL) / cu)
	without.Technology.WireCapLWL = units.CapacitancePerLength(float64(without.Technology.WireCapLWL) / cu)
	without.Technology.BitlineCap = units.Capacitance(float64(without.Technology.BitlineCap) / cu)
	for i := 0; i < b.N; i++ {
		if _, err := Build(with); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ePerBit(b, with), "pJ-with-Cu")
	b.ReportMetric(ePerBit(b, without), "pJ-without-Cu")
}

// BenchmarkAblation_PowerDown reports the standby power with and without
// the power-down state (the controller-side opportunity of Section V).
func BenchmarkAblation_PowerDown(b *testing.B) {
	m, err := Build(Sample1GbDDR3())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_ = m.PowerDownPower()
	}
	b.ReportMetric(float64(m.Background().Power)/1e-3, "mW-standby")
	b.ReportMetric(float64(m.PowerDownPower())/1e-3, "mW-powerdown")
	b.ReportMetric(m.PowerDownSavings()*100, "savings-pct")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func ftoa(f float64) string {
	switch {
	case f == 0.25:
		return "0.25"
	case f == 0.5:
		return "0.5"
	default:
		return "1.0"
	}
}
