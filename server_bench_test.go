package drampower

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// BenchmarkServerEvaluate measures /v1/evaluate throughput over a real
// loopback HTTP server, separating the two regimes that matter for
// serving: cached (the canonical descriptor is already in the model
// cache, so a request costs parse + key + encode) and uncached (every
// request names a distinct device and pays the full core.Build). The
// gap between the two is the value of the model cache; `make bench`
// snapshots both into BENCH_trace.json.
func BenchmarkServerEvaluate(b *testing.B) {
	post := func(ts *httptest.Server, body string) error {
		resp, err := http.Post(ts.URL+"/v1/evaluate", "text/plain", strings.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}

	b.Run("cached", func(b *testing.B) {
		s := NewServer(ServerOptions{})
		defer s.Close()
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		src := Format(Sample1GbDDR3())
		if err := post(ts, src); err != nil { // warm the cache
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := post(ts, src); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	})

	b.Run("uncached", func(b *testing.B) {
		// A cache smaller than the request stream plus a unique name per
		// iteration forces a build on every request.
		s := NewServer(ServerOptions{CacheSize: 1})
		defer s.Close()
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		d := Sample1GbDDR3()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.Name = fmt.Sprintf("bench-uncached-%d", i)
			if err := post(ts, Format(d)); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	})
}
