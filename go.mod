module drampower

go 1.22
