GO ?= go

.PHONY: all build vet test race bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# The full gate: everything CI (and a reviewer) expects to be green.
check: build vet race
