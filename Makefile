GO ?= go

.PHONY: all build vet test race bench bench-all check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Trace + engine benchmarks, snapshotted into BENCH_trace.json (ns/op,
# allocs/op, cmds/s, MB/s) so future PRs have a perf trajectory to
# compare against. The human-readable output still lands on stderr.
bench:
	$(GO) test -run '^$$' -bench 'Trace|Sweep' -benchmem . \
		| $(GO) run ./tools/benchjson -echo > BENCH_trace.json

# Every benchmark in the repo (the full reproduction log).
bench-all:
	$(GO) test -bench=. -benchmem .

# The full gate: everything CI (and a reviewer) expects to be green.
check: build vet race
