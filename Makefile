GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race bench bench-all bench-gate check serve-smoke fuzz-short legality legality-race lint

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. staticcheck is optional locally (skipped
# with a note when not installed); CI installs it and runs this as its
# own job, so lint findings fail the build there.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Trace + engine + server benchmarks, snapshotted into BENCH_trace.json
# (ns/op, allocs/op, cmds/s, MB/s, req/s) so future PRs have a perf
# trajectory to compare against. The human-readable output still lands
# on stderr.
bench:
	$(GO) test -run '^$$' -bench 'Trace|Sweep|Server|Schedule' -benchmem . \
		| $(GO) run ./tools/benchjson -echo > BENCH_trace.json

# Regression gate: rerun the bench snapshot into a scratch file and
# compare it against the committed BENCH_trace.json; >10% regressions in
# ns/op or cmds/s fail the build. Override BENCH_THRESHOLD for noisier
# runners. The -floor line pins the sharded scheduler against its own
# serial baseline from the same run (machine-independent): parallel
# scheduling may never fall below 0.9x serial — on a single-core runner
# the engine's serial fallback makes the two coincide, and on multi-core
# any sharding overhead regression fails the gate.
BENCH_THRESHOLD ?= 10
bench-gate:
	$(GO) test -run '^$$' -bench 'Trace|Sweep|Server|Schedule' -benchmem . \
		| $(GO) run ./tools/benchjson > BENCH_new.json
	$(GO) run ./tools/benchjson -compare BENCH_trace.json -threshold $(BENCH_THRESHOLD) \
		-floor 'BenchmarkSchedule4ChParallel:req/s>=0.9*BenchmarkSchedule4Ch:req/s' \
		BENCH_new.json

# Every benchmark in the repo (the full reproduction log).
bench-all:
	$(GO) test -bench=. -benchmem .

# Black-box smoke of the HTTP service: builds dramserved, starts it on a
# random port, exercises every endpoint (including a 429 overload case),
# then SIGTERMs it and checks the graceful drain.
serve-smoke:
	$(GO) run ./tools/servesmoke

# Short fuzz passes over the hand-written parsers; go's fuzzer runs one
# target per invocation, hence one line each. Override FUZZTIME for a
# longer hunt.
fuzz-short:
	$(GO) test -fuzz 'FuzzParse$$' -fuzztime $(FUZZTIME) -run '^$$' ./internal/desc/
	$(GO) test -fuzz FuzzOverlay -fuzztime $(FUZZTIME) -run '^$$' ./internal/desc/
	$(GO) test -fuzz FuzzTraceScanner -fuzztime $(FUZZTIME) -run '^$$' ./internal/trace/
	$(GO) test -fuzz FuzzBinaryScanner -fuzztime $(FUZZTIME) -run '^$$' ./internal/trace/
	$(GO) test -fuzz FuzzAccessScanner -fuzztime $(FUZZTIME) -run '^$$' ./internal/ctl/

# Retention legality sweep: every page policy × address map × channel
# count × low-power combination is scheduled and replayed — both
# two-phase and through the fused streaming pipeline — asserting zero
# timing violations, zero missed tREFI deadlines, and fused/two-phase
# bit-identity. Part of the regular test pass too; this target runs it
# uncached and on its own so the refresh-scheduler contract has a named
# gate.
LEGALITY_TESTS = TestScheduledTraceLegalitySweep|TestRefreshSurvivesPowerDown|TestFusedMatchesTwoPhase|TestScheduleParallelMatchesSerial
legality:
	$(GO) test ./internal/ctl -run '$(LEGALITY_TESTS)' -count=1

# The same sweep under the race detector, plus the pipeline's error-path
# shutdown tests: proves the sharded schedule → replay handoff is
# properly synchronized, including mid-stream source and sink failures.
legality-race:
	$(GO) test -race ./internal/ctl -run '$(LEGALITY_TESTS)|TestScheduleInto' -count=1

# The full gate: everything CI (and a reviewer) expects to be green.
# CI runs the race detector as its own job (ci.yml "race"), so check
# keeps the fast non-instrumented test pass.
check: build vet test legality serve-smoke fuzz-short
