// Command benchjson converts `go test -bench` output on stdin into a
// JSON summary on stdout, so benchmark runs leave a machine-readable
// perf trajectory (see the `bench` Makefile target, which snapshots the
// trace/engine benchmarks into BENCH_trace.json).
//
// Every value/unit pair a benchmark line reports becomes a metrics entry,
// so -benchmem columns (B/op, allocs/op) and custom b.ReportMetric units
// (cmds/s, MB/s, ...) come through without special cases. A top-level env
// block records the runner (go version, GOOS/GOARCH, GOMAXPROCS, CPU
// count), so a snapshot where the parallel benchmarks match the serial
// ones is explainable as a one-CPU runner rather than a regression:
//
//	{
//	  "env": {
//	    "go_version": "go1.22.0", "goos": "linux", "goarch": "amd64",
//	    "gomaxprocs": 8, "num_cpu": 8
//	  },
//	  "benchmarks": [
//	    {
//	      "name": "BenchmarkTraceIssue-8",
//	      "iterations": 28043592,
//	      "metrics": {"ns/op": 42.8, "allocs/op": 0, "cmds/s": 2.3e7}
//	    }
//	  ]
//	}
//
// With -echo the input is copied to stderr, keeping the human-readable
// output visible when benchjson sits at the end of a pipe.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

type benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// env describes the machine and runtime the benchmarks ran on.
type env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

func main() {
	echo := flag.Bool("echo", false, "copy input lines to stderr")
	flag.Parse()

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 64*1024), 1024*1024)
	var out struct {
		Env        env         `json:"env"`
		Benchmarks []benchmark `json:"benchmarks"`
	}
	out.Env = env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	for in.Scan() {
		line := in.Text()
		if *echo {
			fmt.Fprintln(os.Stderr, line)
		}
		b, ok := parseLine(line)
		if ok {
			out.Benchmarks = append(out.Benchmarks, b)
		}
	}
	if err := in.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine decodes one `go test -bench` result line:
//
//	BenchmarkName-8   123456   987.6 ns/op   12 B/op   3 allocs/op
func parseLine(line string) (benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return benchmark{}, false
	}
	f := strings.Fields(line)
	if len(f) < 4 {
		return benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b := benchmark{Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, len(b.Metrics) > 0
}
