// Command benchjson converts `go test -bench` output on stdin into a
// JSON summary on stdout, so benchmark runs leave a machine-readable
// perf trajectory (see the `bench` Makefile target, which snapshots the
// trace/engine benchmarks into BENCH_trace.json).
//
// Every value/unit pair a benchmark line reports becomes a metrics entry,
// so -benchmem columns (B/op, allocs/op) and custom b.ReportMetric units
// (cmds/s, MB/s, ...) come through without special cases. A top-level env
// block records the runner (go version, GOOS/GOARCH, GOMAXPROCS, CPU
// count), so a snapshot where the parallel benchmarks match the serial
// ones is explainable as a one-CPU runner rather than a regression:
//
//	{
//	  "env": {
//	    "go_version": "go1.22.0", "goos": "linux", "goarch": "amd64",
//	    "gomaxprocs": 8, "num_cpu": 8
//	  },
//	  "benchmarks": [
//	    {
//	      "name": "BenchmarkTraceIssue-8",
//	      "iterations": 28043592,
//	      "metrics": {"ns/op": 42.8, "allocs/op": 0, "cmds/s": 2.3e7}
//	    }
//	  ]
//	}
//
// With -echo the input is copied to stderr, keeping the human-readable
// output visible when benchjson sits at the end of a pipe.
//
// With -compare the tool switches from conversion to regression
// gating:
//
//	benchjson -compare old.json -threshold 10 new.json
//
// compares two snapshots it previously produced and exits non-zero when
// any benchmark present in both regressed beyond the threshold — ns/op
// rising, or any per-second throughput metric (a unit ending in "/s":
// cmds/s, req/s, MB/s, ...) falling, by more than the given percent.
// Other metrics are informational (allocation counts move legitimately
// with algorithm changes; the throughput and latency numbers are the
// contract).
// Benchmarks present in only one snapshot are reported but never fail
// the gate, so adding or retiring a benchmark does not break CI.
//
// -floor adds cross-benchmark constraints within one snapshot, so a
// parallel variant can be pinned against its serial baseline from the
// same run (machine-independent, unlike -compare against a committed
// snapshot):
//
//	-floor 'BenchmarkSchedule4ChParallel:req/s>=0.9*BenchmarkSchedule4Ch:req/s'
//	-floor 'BenchmarkTraceIssue:cmds/s>=1e6'
//
// The flag repeats. In conversion mode floors are checked against the
// snapshot just produced; with -compare, against the new snapshot. A
// floor that cannot be evaluated (missing benchmark or metric) fails —
// a gate must not pass by silently losing its inputs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

type benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// env describes the machine and runtime the benchmarks ran on.
type env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// summary is the JSON document benchjson writes and -compare reads back.
type summary struct {
	Env        env         `json:"env"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	echo := flag.Bool("echo", false, "copy input lines to stderr")
	compare := flag.String("compare", "", "baseline snapshot JSON; compare the positional snapshot against it and exit 1 on regressions")
	threshold := flag.Float64("threshold", 10, "with -compare, tolerated regression percent in ns/op (rise) or any */s throughput metric (fall)")
	var floors []floorRule
	flag.Func("floor", "cross-benchmark floor 'Name:unit>=factor*Name:unit' (or an absolute 'Name:unit>=value'); repeatable, exit 1 when violated", func(spec string) error {
		r, err := parseFloor(spec)
		if err != nil {
			return err
		}
		floors = append(floors, r)
		return nil
	})
	flag.Parse()

	if *compare != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare old.json [-threshold pct] new.json")
			os.Exit(2)
		}
		oldS, err := loadSummary(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		newS, err := loadSummary(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		bad, notes := regressions(oldS, newS, *threshold)
		for _, n := range notes {
			fmt.Fprintln(os.Stderr, "benchjson:", n)
		}
		for _, r := range bad {
			fmt.Fprintln(os.Stderr, "benchjson: REGRESSION", r)
		}
		viol := checkFloors(newS, floors)
		for _, v := range viol {
			fmt.Fprintln(os.Stderr, "benchjson: FLOOR", v)
		}
		if len(bad)+len(viol) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) beyond %g%%, %d floor violation(s) against %s\n", len(bad), *threshold, len(viol), *compare)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: no regressions beyond %g%% against %s\n", *threshold, *compare)
		return
	}

	if len(floors) > 0 && flag.NArg() == 1 {
		// Floor-check an existing snapshot without a baseline compare.
		s, err := loadSummary(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		viol := checkFloors(s, floors)
		for _, v := range viol {
			fmt.Fprintln(os.Stderr, "benchjson: FLOOR", v)
		}
		if len(viol) > 0 {
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: %d floor(s) hold in %s\n", len(floors), flag.Arg(0))
		return
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 64*1024), 1024*1024)
	var out summary
	out.Env = env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	for in.Scan() {
		line := in.Text()
		if *echo {
			fmt.Fprintln(os.Stderr, line)
		}
		b, ok := parseLine(line)
		if ok {
			out.Benchmarks = append(out.Benchmarks, b)
		}
	}
	if err := in.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if viol := checkFloors(out, floors); len(viol) > 0 {
		for _, v := range viol {
			fmt.Fprintln(os.Stderr, "benchjson: FLOOR", v)
		}
		os.Exit(1)
	}
}

// floorRule is one -floor constraint: lhs >= factor * rhs, where lhs and
// rhs name a (benchmark, metric unit) pair. An absolute floor has no rhs
// benchmark (rhsName == "") and reads lhs >= factor.
type floorRule struct {
	lhsName, lhsUnit string
	factor           float64
	rhsName, rhsUnit string
}

// parseFloor decodes 'Name:unit>=factor*Name:unit' or 'Name:unit>=value'.
func parseFloor(spec string) (floorRule, error) {
	lhs, rhs, ok := strings.Cut(spec, ">=")
	if !ok {
		return floorRule{}, fmt.Errorf("floor %q: want 'Name:unit>=factor*Name:unit'", spec)
	}
	var r floorRule
	if r.lhsName, r.lhsUnit, ok = strings.Cut(strings.TrimSpace(lhs), ":"); !ok {
		return floorRule{}, fmt.Errorf("floor %q: left side %q is not Name:unit", spec, lhs)
	}
	factor, ref, hasRef := strings.Cut(strings.TrimSpace(rhs), "*")
	f, err := strconv.ParseFloat(strings.TrimSpace(factor), 64)
	if err != nil {
		return floorRule{}, fmt.Errorf("floor %q: bad factor %q", spec, factor)
	}
	r.factor = f
	if hasRef {
		if r.rhsName, r.rhsUnit, ok = strings.Cut(strings.TrimSpace(ref), ":"); !ok {
			return floorRule{}, fmt.Errorf("floor %q: right side %q is not Name:unit", spec, ref)
		}
	}
	return r, nil
}

// checkFloors evaluates every rule against one snapshot. Rules that
// cannot be evaluated (missing benchmark or metric) are violations: a
// gate must not pass by losing its inputs.
func checkFloors(s summary, rules []floorRule) (viol []string) {
	byName := make(map[string]benchmark, len(s.Benchmarks))
	for _, b := range s.Benchmarks {
		byName[baseName(b.Name)] = b
	}
	metric := func(name, unit string) (float64, error) {
		b, ok := byName[name]
		if !ok {
			return 0, fmt.Errorf("benchmark %s not in snapshot", name)
		}
		v, ok := b.Metrics[unit]
		if !ok {
			return 0, fmt.Errorf("%s reports no %s", name, unit)
		}
		return v, nil
	}
	for _, r := range rules {
		lhs, err := metric(r.lhsName, r.lhsUnit)
		if err != nil {
			viol = append(viol, err.Error())
			continue
		}
		bound := r.factor
		desc := fmt.Sprintf("%g", r.factor)
		if r.rhsName != "" {
			rhs, err := metric(r.rhsName, r.rhsUnit)
			if err != nil {
				viol = append(viol, err.Error())
				continue
			}
			bound = r.factor * rhs
			desc = fmt.Sprintf("%g*%s:%s = %.4g", r.factor, r.rhsName, r.rhsUnit, bound)
		}
		if lhs < bound {
			viol = append(viol, fmt.Sprintf("%s:%s = %.4g below floor %s", r.lhsName, r.lhsUnit, lhs, desc))
		}
	}
	return viol
}

// parseLine decodes one `go test -bench` result line:
//
//	BenchmarkName-8   123456   987.6 ns/op   12 B/op   3 allocs/op
func parseLine(line string) (benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return benchmark{}, false
	}
	f := strings.Fields(line)
	if len(f) < 4 {
		return benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b := benchmark{Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, len(b.Metrics) > 0
}

func loadSummary(path string) (summary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return summary{}, err
	}
	var s summary
	if err := json.Unmarshal(data, &s); err != nil {
		return summary{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// baseName strips the -N GOMAXPROCS suffix go test appends on
// multi-processor runners ("BenchmarkTraceIssue-8" -> "BenchmarkTraceIssue"),
// so snapshots from runners with different core counts still pair up.
func baseName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// regressions pairs the two snapshots by (suffix-stripped) benchmark name
// and applies the gate: a paired benchmark fails when its ns/op rose, or
// any of its per-second throughput metrics (unit ending "/s") fell, by
// more than pct percent. It returns the failures and informational notes
// (unpaired benchmarks), both in new-snapshot order (throughput metrics
// sorted by unit within a benchmark, so the report is deterministic).
func regressions(oldS, newS summary, pct float64) (bad, notes []string) {
	byName := make(map[string]benchmark, len(oldS.Benchmarks))
	for _, b := range oldS.Benchmarks {
		byName[baseName(b.Name)] = b
	}
	paired := make(map[string]bool, len(newS.Benchmarks))
	for _, nb := range newS.Benchmarks {
		name := baseName(nb.Name)
		ob, ok := byName[name]
		if !ok {
			notes = append(notes, fmt.Sprintf("%s: not in baseline (new benchmark, not gated)", name))
			continue
		}
		paired[name] = true
		if oldV, okO := ob.Metrics["ns/op"]; okO && oldV > 0 {
			if newV, okN := nb.Metrics["ns/op"]; okN {
				if change := 100 * (newV - oldV) / oldV; change > pct {
					bad = append(bad, fmt.Sprintf("%s: ns/op %+.1f%% (%.4g -> %.4g)", name, change, oldV, newV))
				}
			}
		}
		units := make([]string, 0, len(nb.Metrics))
		for unit := range nb.Metrics {
			if strings.HasSuffix(unit, "/s") {
				units = append(units, unit)
			}
		}
		sort.Strings(units)
		for _, unit := range units {
			oldV, okO := ob.Metrics[unit]
			if !okO || oldV <= 0 {
				continue
			}
			if change := 100 * (nb.Metrics[unit] - oldV) / oldV; change < -pct {
				bad = append(bad, fmt.Sprintf("%s: %s %+.1f%% (%.4g -> %.4g)", name, unit, change, oldV, nb.Metrics[unit]))
			}
		}
	}
	for _, ob := range oldS.Benchmarks {
		if name := baseName(ob.Name); !paired[name] {
			notes = append(notes, fmt.Sprintf("%s: in baseline only (retired benchmark, not gated)", name))
		}
	}
	return bad, notes
}
