package main

import (
	"strings"
	"testing"
)

func bench(name string, metrics map[string]float64) benchmark {
	return benchmark{Name: name, Iterations: 100, Metrics: metrics}
}

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkTraceIssue-8   28043592   42.8 ns/op   0 B/op   0 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if b.Name != "BenchmarkTraceIssue-8" || b.Iterations != 28043592 {
		t.Fatalf("parsed %+v", b)
	}
	if b.Metrics["ns/op"] != 42.8 || b.Metrics["allocs/op"] != 0 {
		t.Fatalf("metrics %+v", b.Metrics)
	}
	for _, bad := range []string{"ok  \tdrampower\t1.2s", "PASS", "Benchmark", "BenchmarkX notanumber 1 ns/op"} {
		if _, ok := parseLine(bad); ok {
			t.Errorf("parseLine(%q) accepted", bad)
		}
	}
}

func TestBaseName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkTraceIssue-8":             "BenchmarkTraceIssue",
		"BenchmarkTraceIssue":               "BenchmarkTraceIssue",
		"BenchmarkServerEvaluate/cached-16": "BenchmarkServerEvaluate/cached",
		"BenchmarkOddly-named":              "BenchmarkOddly-named",
	}
	for in, want := range cases {
		if got := baseName(in); got != want {
			t.Errorf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRegressionsGate(t *testing.T) {
	oldS := summary{Benchmarks: []benchmark{
		bench("BenchmarkA", map[string]float64{"ns/op": 100, "cmds/s": 1e6}),
		bench("BenchmarkB", map[string]float64{"ns/op": 50}),
		bench("BenchmarkRetired", map[string]float64{"ns/op": 10}),
	}}
	newS := summary{Benchmarks: []benchmark{
		// A: ns/op +25% (regression), cmds/s -25% (regression).
		bench("BenchmarkA-8", map[string]float64{"ns/op": 125, "cmds/s": 0.75e6}),
		// B: +5%, inside the threshold.
		bench("BenchmarkB", map[string]float64{"ns/op": 52.5}),
		// New benchmark: noted, never gated.
		bench("BenchmarkNew", map[string]float64{"ns/op": 9999}),
	}}

	bad, notes := regressions(oldS, newS, 10)
	if len(bad) != 2 {
		t.Fatalf("regressions = %v, want 2 entries", bad)
	}
	if !strings.Contains(bad[0], "BenchmarkA: ns/op +25.0%") {
		t.Errorf("ns/op regression line %q", bad[0])
	}
	if !strings.Contains(bad[1], "BenchmarkA: cmds/s -25.0%") {
		t.Errorf("cmds/s regression line %q", bad[1])
	}
	var sawNew, sawRetired bool
	for _, n := range notes {
		sawNew = sawNew || strings.Contains(n, "BenchmarkNew: not in baseline")
		sawRetired = sawRetired || strings.Contains(n, "BenchmarkRetired: in baseline only")
	}
	if !sawNew || !sawRetired {
		t.Errorf("notes missing unpaired benchmarks: %v", notes)
	}

	// A looser threshold passes everything.
	if bad, _ := regressions(oldS, newS, 30); len(bad) != 0 {
		t.Errorf("30%% threshold still flags %v", bad)
	}

	// Improvements never fail: faster ns/op and higher cmds/s are fine at
	// any threshold.
	improved := summary{Benchmarks: []benchmark{
		bench("BenchmarkA", map[string]float64{"ns/op": 10, "cmds/s": 5e6}),
	}}
	if bad, _ := regressions(oldS, improved, 0.0001); len(bad) != 0 {
		t.Errorf("improvement flagged as regression: %v", bad)
	}
}

// TestFloors pins the cross-benchmark floor gate: relative floors bind a
// benchmark's metric to a factor of another's from the same snapshot,
// absolute floors to a constant, and a floor whose inputs are missing is
// itself a violation.
func TestFloors(t *testing.T) {
	s := summary{Benchmarks: []benchmark{
		bench("BenchmarkSchedule4Ch-8", map[string]float64{"req/s": 1e6}),
		bench("BenchmarkSchedule4ChParallel-8", map[string]float64{"req/s": 2.5e6}),
	}}

	parse := func(spec string) floorRule {
		t.Helper()
		r, err := parseFloor(spec)
		if err != nil {
			t.Fatalf("parseFloor(%q): %v", spec, err)
		}
		return r
	}

	// Holding floors: parallel >= 0.9x serial (it is 2.5x), and an
	// absolute bound under the measured value.
	hold := []floorRule{
		parse("BenchmarkSchedule4ChParallel:req/s>=0.9*BenchmarkSchedule4Ch:req/s"),
		parse("BenchmarkSchedule4Ch:req/s>=5e5"),
	}
	if viol := checkFloors(s, hold); len(viol) != 0 {
		t.Fatalf("holding floors reported %v", viol)
	}

	// Violated relative floor: parallel demanded at 3x serial.
	broken := []floorRule{parse("BenchmarkSchedule4ChParallel:req/s>=3*BenchmarkSchedule4Ch:req/s")}
	viol := checkFloors(s, broken)
	if len(viol) != 1 || !strings.Contains(viol[0], "BenchmarkSchedule4ChParallel:req/s") || !strings.Contains(viol[0], "below floor") {
		t.Fatalf("violated floor reported %v", viol)
	}

	// Missing benchmark and missing metric both fail rather than pass.
	missing := []floorRule{
		parse("BenchmarkGone:req/s>=0.5*BenchmarkSchedule4Ch:req/s"),
		parse("BenchmarkSchedule4Ch:cmds/s>=1"),
	}
	if viol := checkFloors(s, missing); len(viol) != 2 {
		t.Fatalf("unevaluable floors reported %v, want 2 violations", viol)
	}

	// Parse errors.
	for _, bad := range []string{"nope", "A:req/s>=x*B:req/s", "A>=2*B:req/s", "A:req/s>=0.9*B"} {
		if _, err := parseFloor(bad); err == nil {
			t.Errorf("parseFloor(%q) accepted", bad)
		}
	}
}

// TestRegressionsGateAnyThroughputUnit pins the generic gate: every
// metric whose unit ends in "/s" is a throughput contract, not just
// cmds/s, and multiple falling units on one benchmark all report (in
// sorted unit order). Non-throughput extras (B/op) stay informational.
func TestRegressionsGateAnyThroughputUnit(t *testing.T) {
	oldS := summary{Benchmarks: []benchmark{
		bench("BenchmarkSchedule", map[string]float64{"ns/op": 100, "req/s": 2e6, "MB/s": 500, "B/op": 64}),
	}}
	newS := summary{Benchmarks: []benchmark{
		// Both throughput units fall 20%; allocations triple (not gated).
		bench("BenchmarkSchedule-8", map[string]float64{"ns/op": 100, "req/s": 1.6e6, "MB/s": 400, "B/op": 192}),
	}}
	bad, _ := regressions(oldS, newS, 10)
	if len(bad) != 2 {
		t.Fatalf("regressions = %v, want 2 entries", bad)
	}
	if !strings.Contains(bad[0], "BenchmarkSchedule: MB/s -20.0%") {
		t.Errorf("MB/s regression line %q", bad[0])
	}
	if !strings.Contains(bad[1], "BenchmarkSchedule: req/s -20.0%") {
		t.Errorf("req/s regression line %q", bad[1])
	}

	// A throughput unit present only in the new snapshot is not gated,
	// and a zero baseline cannot divide.
	oldS = summary{Benchmarks: []benchmark{
		bench("BenchmarkX", map[string]float64{"ns/op": 100, "rows/s": 0}),
	}}
	newS = summary{Benchmarks: []benchmark{
		bench("BenchmarkX", map[string]float64{"ns/op": 100, "rows/s": 1, "req/s": 5}),
	}}
	if bad, _ := regressions(oldS, newS, 10); len(bad) != 0 {
		t.Errorf("unpaired/zero-baseline units gated: %v", bad)
	}
}
