// Command servesmoke is an end-to-end smoke test for dramserved: it
// builds (or is pointed at) the server binary, starts it on a random
// port, exercises every endpoint over real HTTP — including the 429
// backpressure path and the SIGTERM drain — and tears it down. It is
// wired into `make serve-smoke` (and `make check`) so the served API is
// exercised as a black box on every gate run, not just in-process.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

func main() {
	bin := flag.String("bin", "", "path to a dramserved binary (empty: go build one)")
	flag.Parse()
	if err := run(*bin); err != nil {
		fmt.Fprintf(os.Stderr, "servesmoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("servesmoke: OK")
}

func run(bin string) error {
	if bin == "" {
		dir, err := os.MkdirTemp("", "servesmoke")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		bin = filepath.Join(dir, "dramserved")
		build := exec.Command("go", "build", "-o", bin, "./cmd/dramserved")
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("building dramserved: %w", err)
		}
	}

	// One execution slot and a short queue wait make the backpressure
	// path reachable with a single parked request.
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-max-inflight", "1",
		"-queue-wait", "75ms",
		"-quiet")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	reaped := false
	defer func() {
		if reaped {
			return
		}
		cmd.Process.Kill()
		<-exited
	}()

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		return fmt.Errorf("server exited before announcing its address")
	}
	line := sc.Text()
	addr, ok := strings.CutPrefix(line, "dramserved listening on ")
	if !ok {
		return fmt.Errorf("unexpected startup line %q", line)
	}
	base := "http://" + addr
	client := &http.Client{Timeout: 30 * time.Second}

	if err := smoke(client, base); err != nil {
		return err
	}
	if err := backpressure(client, base); err != nil {
		return err
	}

	// Graceful shutdown: SIGTERM must drain and exit 0 well inside the
	// default -drain window.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case err := <-exited:
		reaped = true
		if err != nil {
			return fmt.Errorf("server exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(10 * time.Second):
		return fmt.Errorf("server did not exit within 10s of SIGTERM")
	}
	return nil
}

// smoke exercises every endpoint once and checks the model cache is
// doing its job via the /metrics counters.
func smoke(client *http.Client, base string) error {
	get := func(path string, want int) (string, error) {
		resp, err := client.Get(base + path)
		if err != nil {
			return "", fmt.Errorf("GET %s: %w", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != want {
			return "", fmt.Errorf("GET %s = %d, want %d: %s", path, resp.StatusCode, want, body)
		}
		return string(body), nil
	}
	post := func(path, body string, want int) (map[string]any, error) {
		resp, err := client.Post(base+path, "text/plain", strings.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("POST %s: %w", path, err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != want {
			return nil, fmt.Errorf("POST %s = %d, want %d: %s", path, resp.StatusCode, want, raw)
		}
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, fmt.Errorf("POST %s: non-JSON response %q", path, raw)
		}
		return m, nil
	}

	if _, err := get("/healthz", http.StatusOK); err != nil {
		return err
	}
	if _, err := get("/readyz", http.StatusOK); err != nil {
		return err
	}

	// Empty body evaluates the built-in sample; the second, identical
	// request must be a cache hit.
	ev, err := post("/v1/evaluate", "", http.StatusOK)
	if err != nil {
		return err
	}
	key, _ := ev["model_key"].(string)
	if len(key) != 64 {
		return fmt.Errorf("evaluate: model_key %q is not a SHA-256 hex key", key)
	}
	if _, err := post("/v1/evaluate", "", http.StatusOK); err != nil {
		return err
	}

	if _, err := post("/v1/sweep", "", http.StatusOK); err != nil {
		return err
	}
	if _, err := post("/v1/schemes", "", http.StatusOK); err != nil {
		return err
	}
	if _, err := post("/v1/trace?model="+key, "0 act 2 17\n11 rd 2 17\n28 pre 2 17\n", http.StatusOK); err != nil {
		return err
	}
	sched, err := post("/v1/schedule?model="+key+"&policy=closed&pd_timeout=24",
		"0 r 0x2400\n200 w 0x93400\n400 r 0x2401\n", http.StatusOK)
	if err != nil {
		return err
	}
	if stats, ok := sched["schedule"].(map[string]any); !ok || stats["requests"] != float64(3) {
		return fmt.Errorf("schedule: response stats %v, want 3 requests", sched["schedule"])
	}
	if _, err := get("/v1/roadmap", http.StatusOK); err != nil {
		return err
	}

	// Positioned parse diagnostics come back as structured 400s.
	bad, err := post("/v1/evaluate", "FloorplanPhysical\nCellArray BL=\n", http.StatusBadRequest)
	if err != nil {
		return err
	}
	if _, ok := bad["line"]; !ok {
		return fmt.Errorf("parse-error response lacks a line field: %v", bad)
	}

	metricsBody, err := get("/metrics", http.StatusOK)
	if err != nil {
		return err
	}
	for _, want := range []string{
		"dramserved_requests_total",
		"dramserved_model_cache_hits_total",
		"dramserved_request_seconds_bucket",
	} {
		if !strings.Contains(metricsBody, want) {
			return fmt.Errorf("/metrics output lacks %s", want)
		}
	}
	if hits := metricValue(metricsBody, "dramserved_model_cache_hits_total"); hits < 1 {
		return fmt.Errorf("repeated evaluate did not register a cache hit:\n%s",
			grepLines(metricsBody, "model_cache"))
	}
	return nil
}

// backpressure parks a streaming trace upload in the single execution
// slot and checks that a concurrent request is rejected with 429 and a
// Retry-After hint, then that the server recovers once the slot frees.
func backpressure(client *http.Client, base string) error {
	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		resp, err := client.Post(base+"/v1/trace", "text/plain", pr)
		if err != nil {
			done <- err
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			done <- fmt.Errorf("parked trace request = %d", resp.StatusCode)
			return
		}
		done <- nil
	}()
	if _, err := io.WriteString(pw, "0 act 2 17\n11 rd 2 17\n"); err != nil {
		return err
	}
	// Give the parked request time to claim the slot, then collide.
	time.Sleep(200 * time.Millisecond)
	resp, err := client.Post(base+"/v1/evaluate", "text/plain", bytes.NewReader(nil))
	if err != nil {
		return fmt.Errorf("colliding evaluate: %w", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		return fmt.Errorf("overload response = %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		return fmt.Errorf("429 response lacks Retry-After")
	}
	if _, err := io.WriteString(pw, "28 pre 2 17\n"); err != nil {
		return err
	}
	pw.Close()
	if err := <-done; err != nil {
		return err
	}
	// Slot free again: the same request is now admitted.
	resp, err = client.Post(base+"/v1/evaluate", "text/plain", bytes.NewReader(nil))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("post-overload evaluate = %d, want 200", resp.StatusCode)
	}
	return nil
}

// metricValue returns the value of an unlabelled series in Prometheus
// text exposition, or -1 if absent.
func metricValue(body, name string) float64 {
	for _, l := range strings.Split(body, "\n") {
		f := strings.Fields(l)
		if len(f) == 2 && f[0] == name {
			var v float64
			if _, err := fmt.Sscanf(f[1], "%g", &v); err == nil {
				return v
			}
		}
	}
	return -1
}

func grepLines(s, substr string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
